// Package vdisk simulates the secondary-storage device underneath the
// buffer manager.
//
// The paper evaluates its operators against a real disk accessed with
// O_DIRECT; the decisive physical effects are (a) random page accesses pay
// a seek whose cost grows with head travel distance, (b) sequential
// accesses pay only transfer time, and (c) an asynchronous request queue
// lets the device reorder pending requests (shortest-seek-time-first or
// elevator), overlapping I/O with CPU work. This package reproduces those
// three effects with a deterministic, machine-independent virtual clock.
//
// Pages are real byte arrays: the storage engine genuinely round-trips its
// data through this device, so the simulation cannot cheat by peeking at
// in-memory structures.
//
// Timing model. The disk owns a head position and a busy-until instant.
// Synchronous reads start when both the caller (virtual now) and the disk
// are free. Asynchronous requests are queued; whenever the disk is idle it
// starts the pending request chosen by the scheduling policy. The drain is
// computed lazily when the CPU looks at the disk, which makes the whole
// simulation reproducible while still modelling CPU/I-O overlap exactly.
//
// Concurrency. A mutex serializes every operation that touches device
// state, so multiple goroutines may share one Disk. Beyond plain mutual
// exclusion, the device supports clock *domains* (NewDomain): each domain
// pairs the shared head/queue with its own ledger, so several engines —
// each running its own virtual clock — can share one physical device.
// Requests and completions are tagged with their domain; WaitAny on a
// domain only delivers that domain's completions. Submission timestamps
// from different domains are compared on one merged timeline, which is the
// usual simplification for multi-initiator device models.
package vdisk

import (
	"fmt"
	"sync"

	"pathdb/internal/rng"
	"pathdb/internal/stats"
)

// PageID identifies a physical page by its position on the platter; seek
// distance between two pages is the difference of their PageIDs.
type PageID uint32

// InvalidPage is the nil PageID.
const InvalidPage PageID = ^PageID(0)

// Policy selects how the device orders pending asynchronous requests.
type Policy uint8

// Scheduling policies for the asynchronous request queue.
const (
	// SSTF picks the pending request closest to the current head position
	// (shortest seek time first). This is the default and models a command
	// queue on an intelligent disk (Sec. 3.7).
	SSTF Policy = iota
	// Elevator sweeps upward through pending requests, wrapping at the end
	// (C-SCAN), trading a little locality for fairness.
	Elevator
	// FIFO processes requests in submission order; used by ablations to
	// quantify the value of reordering.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case SSTF:
		return "sstf"
	case Elevator:
		return "elevator"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// CostModel holds the device and CPU cost constants, in virtual time. The
// CPU constants are charged by the buffer and algebra layers but live here
// so one struct configures a whole experiment.
type CostModel struct {
	// Device characteristics (2005-era 7200rpm disk, 8 KiB pages).
	SeekBase    stats.Ticks // settle + average rotational latency
	SeekPerPage stats.Ticks // incremental head travel per page of distance
	SeekMax     stats.Ticks // full-stroke cap
	Transfer    stats.Ticks // per-page transfer time

	// CPU work constants charged by upper layers.
	CPUHashLookup stats.Ticks // buffer-manager hash probe + latch
	CPUSwizzle    stats.Ticks // NodeID -> pointer (buffer lookup + table)
	CPUUnswizzle  stats.Ticks // pointer -> NodeID
	CPUNodeVisit  stats.Ticks // navigation primitive touching one node
	CPUTupleMove  stats.Ticks // passing one path instance between operators
	CPUSetOp      stats.Ticks // one R/S set probe or insert
}

// DefaultCostModel returns constants calibrated so that the three plans
// of the paper's evaluation reproduce its orderings, factors and CPU
// shares (see EXPERIMENTS.md): a 2005-era disk with sub-millisecond
// near seeks growing to ~8.5 ms across the volume, ~30 MB/s effective
// media rate on 8 KiB pages, and an interpretive record-at-a-time engine
// costing ≈0.7 µs per node touched (our packed pages hold ≈330 records,
// about twice Natix's density, which is why the per-node constant is
// lower than Natix's measured ≈3.5 µs). The CPU/I-O balance, not the
// absolute numbers, is what the reproduction depends on.
func DefaultCostModel() CostModel {
	return CostModel{
		SeekBase:    800 * stats.Microsecond,
		SeekPerPage: 4 * stats.Microsecond,
		SeekMax:     8500 * stats.Microsecond,
		Transfer:    270 * stats.Microsecond,

		CPUHashLookup: 500 * stats.Nanosecond,
		CPUSwizzle:    1000 * stats.Nanosecond,
		CPUUnswizzle:  80 * stats.Nanosecond,
		CPUNodeVisit:  700 * stats.Nanosecond,
		CPUTupleMove:  250 * stats.Nanosecond,
		CPUSetOp:      400 * stats.Nanosecond,
	}
}

// SeekCost returns the repositioning cost for a head travel of dist pages.
func (m CostModel) SeekCost(dist int64) stats.Ticks {
	if dist < 0 {
		dist = -dist
	}
	c := m.SeekBase + stats.Ticks(dist)*m.SeekPerPage
	if c > m.SeekMax {
		c = m.SeekMax
	}
	return c
}

// ReadError reports a failed page read: the device performed the
// repositioning and transfer but delivered no usable data (a transient
// media or transfer error injected by the fault plane). Retrying the read
// may succeed; the typed storage-layer errors wrap it.
type ReadError struct {
	Page PageID
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("vdisk: transient read error on page %d", e.Page)
}

// Faults configures the deterministic fault plane: a seeded per-operation
// fault schedule over the device's reads and writes. Every read draws from
// one splitmix64 stream (in device operation order), so a given seed
// reproduces the same failure sequence exactly; under concurrent load the
// operation order — and therefore fault placement — follows the
// interleaving, but the schedule itself stays deterministic per sequence.
// The zero Faults disables the plane.
type Faults struct {
	// Seed drives the fault schedule's random stream.
	Seed uint64
	// ReadError is the probability a read completes with a ReadError
	// (transient: the medium is intact, a re-read may succeed).
	ReadError float64
	// Corrupt is the probability a read delivers a corrupted page image
	// (torn transfer: the returned bytes are damaged, the medium is
	// intact). Upper layers detect this via page checksums.
	Corrupt float64
	// Latency is the probability a read pays an extra latency spike of
	// Spike ticks (default 5ms) on top of the modelled cost.
	Latency float64
	Spike   stats.Ticks
	// WriteCrash arms crash-at-write-N: the first WriteCrashAfter writes
	// succeed, every later write is silently dropped — the moment the
	// power went out (the generalized form of SetWriteFault).
	WriteCrash      bool
	WriteCrashAfter int
}

// faultPlane is the armed fault schedule.
type faultPlane struct {
	cfg Faults
	rng *rng.RNG
}

// readFault is the fault drawn for one read operation.
type readFault struct {
	err     bool
	corrupt bool
	off     int // corruption offset within the page
	spike   stats.Ticks
}

// drawFault draws the fault outcome for one read, charging observation
// counters to led. Caller holds d.mu.
func (d *Disk) drawFault(led *stats.Ledger) readFault {
	if d.faults == nil {
		return readFault{}
	}
	var f readFault
	r, c := d.faults.rng, d.faults.cfg
	if c.Latency > 0 && r.Float64() < c.Latency {
		f.spike = c.Spike
		stats.Inc(&led.LatencySpikes)
	}
	if c.ReadError > 0 && r.Float64() < c.ReadError {
		f.err = true
		stats.Inc(&led.ReadFaults)
		return f
	}
	if c.Corrupt > 0 && r.Float64() < c.Corrupt {
		f.corrupt = true
		f.off = r.Intn(d.pageSize)
	}
	return f
}

// corruptSpan is how many bytes a torn transfer damages.
const corruptSpan = 16

// corruptCopy damages buf in place starting at off (the injected torn
// image; the stored page is untouched).
func corruptCopy(buf []byte, off int) {
	for i := 0; i < corruptSpan && off+i < len(buf); i++ {
		buf[off+i] ^= 0xA5
	}
}

// SetFaults arms (or, with the zero Faults, disarms) the fault plane.
// Arming resets the schedule's random stream to the seed.
func (d *Disk) SetFaults(f Faults) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f == (Faults{}) {
		d.faults = nil
		d.faultArmed = false
		return
	}
	if f.Spike == 0 {
		f.Spike = 5 * stats.Millisecond
	}
	d.faults = &faultPlane{cfg: f, rng: rng.New(f.Seed)}
	d.faultArmed = f.WriteCrash
	d.writesLeft = f.WriteCrashAfter
}

// CorruptPage deterministically damages the stored bytes of page p
// (persistent medium corruption, unlike the transient torn images of
// Faults.Corrupt): every subsequent read returns the damaged image until
// the page is rewritten. The damage is reproducible from seed.
func (d *Disk) CorruptPage(p PageID, seed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(p)
	r := rng.New(seed)
	corruptCopy(d.pages[p], r.Intn(d.pageSize))
}

// request is a queued asynchronous read. dom is nil for the disk's root
// clock domain; led is the ledger the physical read will be charged to
// (the submitter's — under per-query accounting each gang member pays for
// the pages it asked for, even when another member's drain services them).
type request struct {
	page      PageID
	submitted stats.Ticks
	dom       *Domain
	led       *stats.Ledger
}

type completion struct {
	page  PageID
	at    stats.Ticks
	dom   *Domain
	fault readFault // drawn at service time, applied at delivery
}

// Disk is the simulated device. All operations are serialized by an
// internal mutex, so a Disk may be shared by concurrent goroutines and by
// multiple clock domains.
type Disk struct {
	model    CostModel
	led      *stats.Ledger
	pageSize int

	mu    sync.Mutex
	pages [][]byte

	policy    Policy
	head      PageID
	busyUntil stats.Ticks

	pending   []request
	completed []completion // ascending completion time

	faultArmed bool // crash fault injection (SetWriteFault)
	writesLeft int
	dropped    int64       // writes silently dropped by the crash fault
	faults     *faultPlane // seeded read-fault schedule (nil: disabled)

	tracing bool
	trace   []TraceEvent
}

// TraceEvent is one device operation in an I/O trace.
type TraceEvent struct {
	Op   string // "read", "read-seq", "read-async", "write"
	Page PageID
	At   stats.Ticks // completion time on the virtual clock
}

// SetTrace enables or disables I/O tracing (disabled by default); enabling
// clears any previous trace.
func (d *Disk) SetTrace(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracing = on
	d.trace = nil
}

// Trace returns a copy of the recorded I/O events in completion order.
func (d *Disk) Trace() []TraceEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]TraceEvent(nil), d.trace...)
}

func (d *Disk) traceEvent(op string, p PageID, at stats.Ticks) {
	if d.tracing {
		d.trace = append(d.trace, TraceEvent{Op: op, Page: p, At: at})
	}
}

// New returns an empty disk with the given page size.
func New(model CostModel, led *stats.Ledger, pageSize int) *Disk {
	if pageSize <= 0 {
		panic("vdisk: non-positive page size")
	}
	return &Disk{model: model, led: led, pageSize: pageSize, head: InvalidPage}
}

// SetPolicy selects the asynchronous scheduling policy.
func (d *Disk) SetPolicy(p Policy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policy = p
}

// Model returns the disk's cost model (upper layers read the CPU constants).
func (d *Disk) Model() CostModel { return d.model }

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Ledger returns the root cost ledger.
func (d *Disk) Ledger() *stats.Ledger { return d.led }

// Alloc appends a fresh zeroed page and returns its id. Allocation itself
// is free; the subsequent Write pays the I/O.
func (d *Disk) Alloc() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// SetWriteFault arms a crash fault: the first n subsequent writes succeed,
// everything after them is silently dropped — the moment the power went
// out. Pass a negative n to disarm. Reads keep working (the surviving
// medium), so recovery code can be exercised against the truncated state.
func (d *Disk) SetWriteFault(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faultArmed = n >= 0
	d.writesLeft = n
}

// DroppedWrites returns how many writes the armed crash fault has silently
// dropped so far. Commit pipelines use it to classify acknowledgements:
// an ack handed out while the count is still zero is durable by
// construction (the fault plane drops a strict suffix of the write
// sequence), so recovery tests can demand exactly those commits back.
func (d *Disk) DroppedWrites() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dropped
}

// Clock returns the device's current virtual instant (the time its last
// scheduled operation completes). The concurrent engine seeds per-query
// ledgers with it so queries are billed from their arrival, not from the
// beginning of device history.
func (d *Disk) Clock() stats.Ticks {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busyUntil
}

// Write stores data (at most one page) at page p, charging a synchronous
// random write. The positioning cost occupies the device (delaying readers
// that arrive behind it) and is added to the ledger's clock as work — not
// BlockUntil'd — because the volume ledger's clock is a running sum across
// many owners, not a single caller's instant.
func (d *Disk) Write(p PageID, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(p)
	if d.faultArmed {
		if d.writesLeft <= 0 {
			d.dropped++
			return // dropped on the floor: the crash already happened
		}
		d.writesLeft--
	}
	if len(data) > d.pageSize {
		panic("vdisk: write larger than page")
	}
	copy(d.pages[p], data)
	for i := len(data); i < d.pageSize; i++ {
		d.pages[p][i] = 0
	}
	stats.Inc(&d.led.PageWrites)
	cost := d.cost(d.led, p)
	d.head = p
	d.busyUntil += cost
	d.led.Advance(cost)
	d.traceEvent("write", p, d.busyUntil)
}

// ReadSync reads page p synchronously into buf (which must hold a page),
// blocking the virtual clock until the transfer completes. Any pending
// asynchronous requests the device would have finished first are drained.
// A non-nil error is a *ReadError injected by the fault plane; the device
// time is spent either way.
func (d *Disk) ReadSync(p PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readSync(d.led, p, buf)
}

// ReadSyncOn is ReadSync billed to led instead of the root ledger. The
// parallel engine gives every query its own ledger; the queries still share
// the root clock domain (one queue, one head) because gang members overlap
// on the same device, but each blocks and charges its own virtual clock.
func (d *Disk) ReadSyncOn(led *stats.Ledger, p PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readSync(led, p, buf)
}

func (d *Disk) readSync(led *stats.Ledger, p PageID, buf []byte) error {
	d.checkPage(p)
	d.drainUntil(led.Total())
	seq := d.head != InvalidPage && p == d.head+1
	f := d.drawFault(led)
	d.access(led, p, f.spike)
	op := "read"
	if seq {
		op = "read-seq"
	}
	d.traceEvent(op, p, d.busyUntil)
	if f.err {
		return &ReadError{Page: p}
	}
	copy(buf, d.pages[p])
	if f.corrupt {
		corruptCopy(buf[:d.pageSize], f.off)
	}
	return nil
}

// access performs the positioning + transfer for page p starting when both
// the caller and the device are free, blocking the caller's clock on the
// result. spike is extra injected latency on top of the modelled cost.
func (d *Disk) access(led *stats.Ledger, p PageID, spike stats.Ticks) {
	start := led.Total()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + d.cost(led, p) + spike
	d.head = p
	d.busyUntil = done
	led.BlockUntil(done)
}

// cost computes the positioning+transfer cost of touching page p from the
// current head position and charges the seek statistics to the ledger of
// whoever asked for the page.
func (d *Disk) cost(led *stats.Ledger, p PageID) stats.Ticks {
	stats.Inc(&led.PageReads)
	if d.head != InvalidPage && p == d.head+1 {
		stats.Inc(&led.SeqPageReads)
		return d.model.Transfer
	}
	var dist int64
	if d.head == InvalidPage {
		dist = int64(p)
	} else {
		dist = int64(p) - int64(d.head)
	}
	stats.Inc(&led.Seeks)
	if dist < 0 {
		stats.Add(&led.SeekDistance, -dist)
	} else {
		stats.Add(&led.SeekDistance, dist)
	}
	return d.model.SeekCost(dist) + d.model.Transfer
}

// Submit queues an asynchronous read of page p. Submission is free on the
// virtual clock, so a burst of Submit calls is atomic: the device sees the
// whole burst before choosing what to service first, which is exactly the
// "forward many requests at once to the lower layers" behaviour of Sec. 1.
func (d *Disk) Submit(p PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.submit(d.led, nil, p)
}

// SubmitOn is Submit billed to led instead of the root ledger (same clock
// domain, private accounting — see ReadSyncOn).
func (d *Disk) SubmitOn(led *stats.Ledger, p PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.submit(led, nil, p)
}

func (d *Disk) submit(led *stats.Ledger, dom *Domain, p PageID) {
	d.checkPage(p)
	stats.Inc(&led.AsyncSubmitted)
	d.pending = append(d.pending, request{page: p, submitted: led.Total(), dom: dom, led: led})
}

// PendingAsync returns the number of submitted-but-undelivered requests in
// the root clock domain.
func (d *Disk) PendingAsync() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pendingIn(nil)
}

func (d *Disk) pendingIn(dom *Domain) int {
	n := 0
	for _, r := range d.pending {
		if r.dom == dom {
			n++
		}
	}
	for _, c := range d.completed {
		if c.dom == dom {
			n++
		}
	}
	return n
}

// WaitAny blocks until some asynchronous request of the root domain has
// completed, copies its page into buf and returns its id. ok is false if no
// such request is pending. A non-nil error (with ok true) is a *ReadError
// injected by the fault plane for the returned page.
func (d *Disk) WaitAny(buf []byte) (p PageID, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waitMatch(d.led, nil, nil, buf)
}

// WaitMatchOn blocks led until some root-domain request whose page satisfies
// match has completed, copies its page into buf and returns its id. ok is
// false if no matching request is pending. Completions that do not match are
// left queued for their owners — this is the device half of the buffer
// manager's completion fanout: two gang members waiting on different
// clusters each see only their own wakeups, so neither can steal the
// other's completion (or have its clock blocked by it).
func (d *Disk) WaitMatchOn(led *stats.Ledger, match func(PageID) bool, buf []byte) (p PageID, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waitMatch(led, nil, match, buf)
}

// waitMatch delivers one completion of dom whose page satisfies match (nil
// matches everything), advancing led. While a matching request is pending
// but not yet complete, the device keeps servicing requests of any domain —
// overlap across gang members is preserved even though delivery is filtered.
func (d *Disk) waitMatch(led *stats.Ledger, dom *Domain, match func(PageID) bool, buf []byte) (PageID, bool, error) {
	d.drainUntil(led.Total())
	for {
		for i, c := range d.completed {
			if c.dom != dom || (match != nil && !match(c.page)) {
				continue
			}
			d.completed = append(d.completed[:i], d.completed[i+1:]...)
			led.BlockUntil(c.at)
			stats.Inc(&led.AsyncCompleted)
			if c.fault.err {
				return c.page, true, &ReadError{Page: c.page}
			}
			copy(buf, d.pages[c.page])
			if c.fault.corrupt {
				corruptCopy(buf[:d.pageSize], c.fault.off)
			}
			return c.page, true, nil
		}
		outstanding := false
		for _, r := range d.pending {
			if r.dom == dom && (match == nil || match(r.page)) {
				outstanding = true
				break
			}
		}
		if !outstanding {
			return InvalidPage, false, nil
		}
		// Keep the device working (any domain's requests) until one of
		// ours completes.
		d.processNext()
	}
}

// CancelPending discards the root domain's queued-but-undelivered requests
// and completions. Page data already transferred is dropped; the device
// time it consumed remains spent. Used when a query is cancelled so its
// in-flight prefetches cannot leak into the next query.
func (d *Disk) CancelPending() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cancelPending(nil)
}

// CancelMatch discards root-domain queued-but-undelivered requests and
// completions whose page satisfies match. A cancelled query's buffer waiter
// uses this to withdraw only the prefetches it alone owns, leaving the rest
// of its gang's in-flight requests untouched.
func (d *Disk) CancelMatch(match func(PageID) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pending := d.pending[:0]
	for _, r := range d.pending {
		if r.dom != nil || !match(r.page) {
			pending = append(pending, r)
		}
	}
	d.pending = pending
	completed := d.completed[:0]
	for _, c := range d.completed {
		if c.dom != nil || !match(c.page) {
			completed = append(completed, c)
		}
	}
	d.completed = completed
}

func (d *Disk) cancelPending(dom *Domain) {
	pending := d.pending[:0]
	for _, r := range d.pending {
		if r.dom != dom {
			pending = append(pending, r)
		}
	}
	d.pending = pending
	completed := d.completed[:0]
	for _, c := range d.completed {
		if c.dom != dom {
			completed = append(completed, c)
		}
	}
	d.completed = completed
}

// drainUntil lets the device work through pending requests in the
// background until virtual time t: every request whose service would start
// strictly before t is processed.
func (d *Disk) drainUntil(t stats.Ticks) {
	for len(d.pending) > 0 {
		start := d.busyUntil
		if earliest := d.earliestSubmit(); earliest > start {
			start = earliest
		}
		if start >= t {
			return
		}
		d.processNext()
	}
}

func (d *Disk) earliestSubmit() stats.Ticks {
	e := d.pending[0].submitted
	for _, r := range d.pending[1:] {
		if r.submitted < e {
			e = r.submitted
		}
	}
	return e
}

// processNext services one pending request according to the policy. The
// physical read is charged to the ledger of the request's domain.
func (d *Disk) processNext() {
	idx := d.pickNext()
	r := d.pending[idx]
	d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	start := d.busyUntil
	if r.submitted > start {
		start = r.submitted
	}
	led := r.led
	if led == nil {
		led = d.led
	}
	f := d.drawFault(led)
	done := start + d.cost(led, r.page) + f.spike
	d.head = r.page
	d.busyUntil = done
	d.completed = append(d.completed, completion{page: r.page, at: done, dom: r.dom, fault: f})
	d.traceEvent("read-async", r.page, done)
}

// pickNext returns the index of the next pending request per the policy.
func (d *Disk) pickNext() int {
	switch d.policy {
	case FIFO:
		best := 0
		for i, r := range d.pending {
			if r.submitted < d.pending[best].submitted {
				best = i
			}
		}
		return best
	case Elevator:
		// C-SCAN: smallest page >= head; wrap to global smallest.
		best, bestWrap := -1, 0
		for i, r := range d.pending {
			if d.head != InvalidPage && r.page >= d.head {
				if best == -1 || r.page < d.pending[best].page {
					best = i
				}
			}
			if r.page < d.pending[bestWrap].page {
				bestWrap = i
			}
		}
		if best >= 0 {
			return best
		}
		return bestWrap
	default: // SSTF
		best := 0
		bestDist := d.distTo(d.pending[0].page)
		for i, r := range d.pending[1:] {
			if dd := d.distTo(r.page); dd < bestDist {
				best, bestDist = i+1, dd
			}
		}
		return best
	}
}

func (d *Disk) distTo(p PageID) int64 {
	if d.head == InvalidPage {
		return int64(p)
	}
	dd := int64(p) - int64(d.head)
	if dd < 0 {
		return -dd
	}
	return dd
}

func (d *Disk) checkPage(p PageID) {
	if int(p) >= len(d.pages) {
		panic(fmt.Sprintf("vdisk: page %d out of range (have %d)", p, len(d.pages)))
	}
}

// ResetClockState clears the device's temporal state (head position, busy
// time, queues — across all clock domains) without touching page contents.
// Benchmarks call this between plan runs so each run starts from a cold,
// parked device.
func (d *Disk) ResetClockState() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.head = InvalidPage
	d.busyUntil = 0
	d.pending = nil
	d.completed = nil
}

// Domain pairs the shared device with a private virtual clock: requests
// issued through a Domain block that domain's ledger, while head movement
// and queue contention are shared with every other domain on the device.
// This is what lets several engines, each with its own notion of "now",
// drive one simulated disk. The zero Disk methods (ReadSync, Submit,
// WaitAny) are the root domain over the disk's own ledger.
type Domain struct {
	d   *Disk
	led *stats.Ledger
}

// NewDomain creates a clock domain over the disk billing to led.
func (d *Disk) NewDomain(led *stats.Ledger) *Domain {
	if led == nil {
		panic("vdisk: nil domain ledger")
	}
	return &Domain{d: d, led: led}
}

// Ledger returns the domain's ledger.
func (dom *Domain) Ledger() *stats.Ledger { return dom.led }

// ReadSync reads page p synchronously on the domain's clock.
func (dom *Domain) ReadSync(p PageID, buf []byte) error {
	dom.d.mu.Lock()
	defer dom.d.mu.Unlock()
	return dom.d.readSync(dom.led, p, buf)
}

// Submit queues an asynchronous read tagged with this domain.
func (dom *Domain) Submit(p PageID) {
	dom.d.mu.Lock()
	defer dom.d.mu.Unlock()
	dom.d.submit(dom.led, dom, p)
}

// WaitAny delivers one of this domain's completed requests, advancing the
// domain's clock; requests of other domains are serviced in passing but
// never delivered here.
func (dom *Domain) WaitAny(buf []byte) (PageID, bool, error) {
	dom.d.mu.Lock()
	defer dom.d.mu.Unlock()
	return dom.d.waitMatch(dom.led, dom, nil, buf)
}

// Pending returns the number of submitted-but-undelivered requests in this
// domain.
func (dom *Domain) Pending() int {
	dom.d.mu.Lock()
	defer dom.d.mu.Unlock()
	return dom.d.pendingIn(dom)
}

// CancelPending discards this domain's queued-but-undelivered requests.
func (dom *Domain) CancelPending() {
	dom.d.mu.Lock()
	defer dom.d.mu.Unlock()
	dom.d.cancelPending(dom)
}
