// Package buffer implements the page buffer manager between the storage
// engine and the virtual disk.
//
// It models the costs the paper attributes to this layer (Sec. 1, 3.6): a
// page access requires a hash-table probe (with its latch), a miss adds a
// disk read and possibly an eviction, and translating a NodeID into an
// in-memory pointer ("swizzling") is charged separately by the storage
// layer on top of Fix.
//
// The manager also fronts the asynchronous interface the XSchedule operator
// expects (Sec. 3.7): Request enqueues a cluster load without blocking, and
// WaitLoaded returns some cluster whose load has completed — already-cached
// clusters complete immediately. Under the parallel engine each query (or
// shared gang group) owns a Waiter, which scopes Request/WaitLoaded to that
// query: deliveries are fanned out per waiter, so two workers waiting on
// different clusters never steal each other's wakeups, and a page wanted by
// several waiters is submitted to the device once and delivered to each.
//
// Concurrency. The page table is split into latch shards (the classic
// buffer-manager design the CPUHashLookup constant already models), pin
// counts are atomic, and a single manager mutex serializes the cold paths:
// LRU maintenance, misses, eviction and the async waiter bookkeeping. Lock
// ordering is strict — the manager mutex may acquire shard latches and the
// device mutex, never the reverse — and the hit path touches the LRU under
// the manager mutex after pinning under the shard latch, which doubles as
// the barrier that keeps a concurrently-loading frame's Data invisible
// until complete.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

// nShards is the number of page-table latch shards. Plenty for the worker
// counts the engine admits; must be a power of two.
const nShards = 64

type shard struct {
	mu     sync.RWMutex
	frames map[vdisk.PageID]*Frame
}

// Frame is a buffered page. Data aliases the manager's internal copy; it is
// valid while the frame is pinned (and until eviction otherwise).
type Frame struct {
	Page vdisk.PageID
	Data []byte

	pins       atomic.Int32
	prev, next *Frame // LRU list, most recent at head
}

// Pinned reports whether the frame is currently pinned.
func (f *Frame) Pinned() bool { return f.pins.Load() > 0 }

// Manager is the buffer pool. Safe for concurrent use; see the package
// comment for the latching discipline.
type Manager struct {
	disk     *vdisk.Disk
	led      *stats.Ledger
	capacity int

	shards [nShards]shard

	mu      sync.Mutex // guards everything below; may take shard latches
	nFrames int        // mapped frames across all shards
	head    *Frame     // MRU
	tail    *Frame     // LRU

	// Async request bookkeeping, shared across waiters. submitted[p] means
	// an undelivered root-domain request or completion for p exists on the
	// device (dedup: one physical submission no matter how many waiters
	// want p). wanted[p] counts waiters with p in their pending set; when
	// it hits zero any device entry for p is withdrawn.
	submitted map[vdisk.PageID]bool
	wanted    map[vdisk.PageID]int
	root      *Waiter // backs the legacy Manager-level Request/WaitLoaded

	// Read-failure bookkeeping. failed[p] holds the terminal error of a
	// page whose load exhausted its retries; every waiter wanting p is
	// handed that error (the frame is poisoned, not mapped). attempts[p]
	// counts async re-reads already spent on p.
	failed   map[vdisk.PageID]error
	attempts map[vdisk.PageID]int

	retry  RetryPolicy
	verify func(vdisk.PageID, []byte) error // page-image verifier (storage checksums)

	overflow int64 // frames allocated beyond capacity (all pinned)

	onEvict func(vdisk.PageID) // notifies upper layers (swizzle caches)
}

// RetryPolicy bounds the verified-read retry loop: a page read that fails
// (transient device error or checksum mismatch) is re-read up to Attempts
// times in total, backing the reader's virtual clock off by Backoff before
// the first retry and doubling it each further attempt.
type RetryPolicy struct {
	Attempts int         // total read attempts per page (>= 1)
	Backoff  stats.Ticks // initial backoff, doubling per retry
}

// DefaultRetryPolicy is the pool's initial retry policy: four attempts with
// a 200µs initial backoff (well under one device access, so retrying is
// always cheaper than surfacing a transient fault).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, Backoff: 200 * stats.Microsecond}
}

// New returns a buffer pool over disk holding at most capacity pages.
func New(disk *vdisk.Disk, capacity int) *Manager {
	if capacity <= 0 {
		panic("buffer: non-positive capacity")
	}
	m := &Manager{
		disk:      disk,
		led:       disk.Ledger(),
		capacity:  capacity,
		submitted: make(map[vdisk.PageID]bool),
		wanted:    make(map[vdisk.PageID]int),
		failed:    make(map[vdisk.PageID]error),
		attempts:  make(map[vdisk.PageID]int),
		retry:     DefaultRetryPolicy(),
	}
	m.root = m.NewWaiter(disk.Ledger())
	for i := range m.shards {
		m.shards[i].frames = make(map[vdisk.PageID]*Frame)
	}
	return m
}

func (m *Manager) shardOf(p vdisk.PageID) *shard {
	return &m.shards[uint32(p)&(nShards-1)]
}

// SetVerifier registers a page-image verifier run against every page read
// from the device before the frame is published (the storage layer installs
// its checksum-trailer check). A verification failure counts as a failed
// read: it is retried under the pool's RetryPolicy and escalates to the
// caller when the retries are exhausted. The verifier runs with manager
// locks held; it must not call back into the pool.
func (m *Manager) SetVerifier(f func(vdisk.PageID, []byte) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verify = f
}

// SetRetryPolicy replaces the pool's read-retry policy. Attempts below 1 is
// clamped to 1 (a single try, no retries).
func (m *Manager) SetRetryPolicy(p RetryPolicy) {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retry = p
}

// SetEvictHandler registers f to be called whenever a page leaves the pool
// (eviction or FlushAll). The storage layer uses this to invalidate its
// swizzled in-memory representations, the "swapping out" concern of
// Sec. 5.3.2.3. The handler runs with manager locks held; it must not call
// back into the pool.
func (m *Manager) SetEvictHandler(f func(vdisk.PageID)) { m.onEvict = f }

// Capacity returns the configured page capacity.
func (m *Manager) Capacity() int { return m.capacity }

// Len returns the number of buffered pages.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nFrames
}

// Overflow returns how many times the pool had to exceed its capacity
// because every frame was pinned.
func (m *Manager) Overflow() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overflow
}

// Contains reports whether page p is buffered, without charging costs or
// touching the LRU order (for tests and the scheduler's bookkeeping).
func (m *Manager) Contains(p vdisk.PageID) bool {
	s := m.shardOf(p)
	s.mu.RLock()
	_, ok := s.frames[p]
	s.mu.RUnlock()
	return ok
}

// Disk exposes the underlying device (the storage layer needs its cost
// model and page size).
func (m *Manager) Disk() *vdisk.Disk { return m.disk }

// probe looks p up in its shard and, on a hit, pins the frame under the
// shard latch — the pin taken there is what makes it safe against a
// concurrent eviction, which re-checks pins under the exclusive latch.
func (m *Manager) probe(p vdisk.PageID) *Frame {
	s := m.shardOf(p)
	s.mu.RLock()
	f := s.frames[p]
	if f != nil {
		f.pins.Add(1)
	}
	s.mu.RUnlock()
	return f
}

// Fix returns a pinned frame for page p, reading it from disk on a miss.
// The caller must Unfix it. Each call charges one hash probe. A non-nil
// error means the page could not be read within the retry policy (the
// device error or checksum failure that exhausted the attempts).
func (m *Manager) Fix(p vdisk.PageID) (*Frame, error) { return m.FixOn(m.led, p) }

// FixOn is Fix with the probe, hit/miss statistics and any disk read billed
// to led instead of the pool's root ledger — the per-query accounting entry
// point of the parallel engine. The frame itself is shared pool state either
// way.
func (m *Manager) FixOn(led *stats.Ledger, p vdisk.PageID) (*Frame, error) {
	stats.Inc(&led.HashLookups)
	led.AdvanceCPU(m.disk.Model().CPUHashLookup)
	if f := m.probe(p); f != nil {
		// Passing through the manager mutex guarantees the loader of a
		// freshly-published frame has finished filling Data before we hand
		// it out — and lets us confirm the load did not fail and unmap the
		// frame after our pin-under-read-latch.
		m.mu.Lock()
		if m.mapped(p) == f {
			stats.Inc(&led.BufferHits)
			m.touch(f)
			m.mu.Unlock()
			return f, nil
		}
		m.mu.Unlock()
		m.Unfix(f) // loader failed and withdrew the frame; treat as a miss
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-probe: another goroutine may have loaded p while we waited.
	// Unmapping requires m.mu, so a frame found here is live.
	if f := m.probe(p); f != nil {
		stats.Inc(&led.BufferHits)
		m.touch(f)
		return f, nil
	}
	stats.Inc(&led.BufferMisses)
	f := m.newFrame(p)
	if err := m.loadFrame(led, p, f); err != nil {
		s := m.shardOf(p)
		s.mu.Lock()
		delete(s.frames, p)
		s.mu.Unlock()
		m.unlink(f)
		m.nFrames--
		return nil, err
	}
	delete(m.failed, p) // a fresh successful read supersedes older failures
	delete(m.attempts, p)
	f.pins.Add(1)
	return f, nil
}

// mapped returns the frame currently registered for p, or nil. Caller holds
// m.mu (which is what excludes concurrent unmapping).
func (m *Manager) mapped(p vdisk.PageID) *Frame {
	s := m.shardOf(p)
	s.mu.RLock()
	f := s.frames[p]
	s.mu.RUnlock()
	return f
}

// loadFrame reads page p into f under the retry policy: transient device
// errors and checksum failures are retried with doubling virtual-clock
// backoff; the last error escalates once attempts are exhausted. Caller
// holds m.mu.
func (m *Manager) loadFrame(led *stats.Ledger, p vdisk.PageID, f *Frame) error {
	backoff := m.retry.Backoff
	var lastErr error
	for attempt := 0; attempt < m.retry.Attempts; attempt++ {
		if attempt > 0 {
			stats.Inc(&led.ReadRetries)
			led.BlockUntil(led.Total() + backoff)
			backoff *= 2
		}
		if err := m.disk.ReadSyncOn(led, p, f.Data); err != nil {
			lastErr = err
			continue
		}
		if m.verify != nil {
			if err := m.verify(p, f.Data); err != nil {
				stats.Inc(&led.ChecksumFails)
				lastErr = err
				continue
			}
		}
		return nil
	}
	return lastErr
}

// Unfix releases a pin taken by Fix.
func (m *Manager) Unfix(f *Frame) {
	if f.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("buffer: unfix of unpinned page %d", f.Page))
	}
}

// Waiter scopes the asynchronous Request/WaitLoaded interface to one query
// (or one shared gang group): each waiter tracks its own pending set and is
// woken only by completions of pages it asked for. Wall-clock waits and
// completion charges go to the waiter's ledger. Waiters sharing a manager
// dedup physical submissions — a page wanted by several waiters is read
// once and delivered to each of them. A Waiter is not itself safe for
// concurrent use; one goroutine (its query's worker) drives it.
type Waiter struct {
	m       *Manager
	led     *stats.Ledger
	pending map[vdisk.PageID]bool
	order   []vdisk.PageID // FIFO of pending pages: deterministic delivery
}

// NewWaiter returns a waiter billing to led (the pool's root ledger if nil).
func (m *Manager) NewWaiter(led *stats.Ledger) *Waiter {
	if led == nil {
		led = m.led
	}
	return &Waiter{m: m, led: led, pending: make(map[vdisk.PageID]bool)}
}

// Request schedules an asynchronous load of page p for this waiter. If p is
// already buffered (or another waiter already submitted it), no device
// request is issued, but a later WaitLoaded still delivers it. Duplicate
// requests for an undelivered page are folded into one delivery.
func (w *Waiter) Request(p vdisk.PageID) {
	m := w.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if w.pending[p] {
		return
	}
	w.pending[p] = true
	w.order = append(w.order, p)
	m.wanted[p]++
	if !m.Contains(p) && !m.submitted[p] {
		m.submitted[p] = true
		m.disk.SubmitOn(w.led, p)
	}
}

// WaitLoaded blocks until some page this waiter requested is available and
// returns it. ok is false when nothing deliverable is outstanding (callers
// re-Request and retry; the buffer may have evicted a page between its load
// and this wait). Already-buffered pages are delivered first, oldest
// request first, without touching the device. A non-nil error (with ok
// true) reports a page whose load failed terminally — the read and its
// retries were exhausted or the image kept failing verification; every
// waiter wanting that page receives the same error exactly once.
func (w *Waiter) WaitLoaded() (p vdisk.PageID, ok bool, err error) {
	m := w.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if p, ok := w.takeBuffered(); ok {
			return p, true, nil
		}
		// Poisoned pages: deliver the terminal error to this waiter. The
		// entry survives until every waiter wanting the page has seen it
		// (unwant clears it with the last reference).
		for _, p := range w.order {
			if ferr, bad := m.failed[p]; bad {
				w.deliverLocked(p)
				return p, true, ferr
			}
		}
		if len(w.order) == 0 {
			return vdisk.InvalidPage, false, nil
		}
		f := m.newFrame(vdisk.InvalidPage) // placeholder; page set below
		page, got, derr := m.disk.WaitMatchOn(w.led, func(p vdisk.PageID) bool { return w.pending[p] }, f.Data)
		if !got {
			// None of our pages is on the device (submissions superseded by
			// sync reads and since evicted, or withdrawn): drop the stale
			// pending set so the caller's re-request issues fresh reads.
			m.unlink(f)
			w.clearLocked()
			return vdisk.InvalidPage, false, nil
		}
		delete(m.submitted, page) // consumed the device entry
		if derr == nil && m.verify != nil {
			if verr := m.verify(page, f.Data); verr != nil {
				stats.Inc(&w.led.ChecksumFails)
				derr = verr
			}
		}
		if derr != nil {
			// Failed delivery: never publish the frame. Retry by
			// resubmitting (the device draws a fresh fault) until the
			// policy is exhausted, then poison the page for all waiters.
			m.unlink(f)
			if m.attempts[page]++; m.attempts[page] < m.retry.Attempts {
				stats.Inc(&w.led.ReadRetries)
				w.led.BlockUntil(w.led.Total() + m.retry.Backoff<<(m.attempts[page]-1))
				m.submitted[page] = true
				m.disk.SubmitOn(w.led, page)
				continue
			}
			delete(m.attempts, page)
			m.failed[page] = derr
			continue // the poisoned-page scan above delivers it
		}
		s := m.shardOf(page)
		s.mu.Lock()
		if old, exists := s.frames[page]; exists {
			// Already (re)loaded synchronously in the meantime; keep the
			// existing frame and discard the fresh buffer.
			s.mu.Unlock()
			m.unlink(f)
			m.touch(old)
		} else {
			f.Page = page
			s.frames[page] = f
			s.mu.Unlock()
			m.nFrames++
		}
		w.deliverLocked(page)
		return page, true, nil
	}
}

// takeBuffered delivers the oldest pending page that is already buffered.
// Caller holds m.mu.
func (w *Waiter) takeBuffered() (vdisk.PageID, bool) {
	for _, p := range w.order {
		if w.m.Contains(p) {
			w.deliverLocked(p)
			return p, true
		}
	}
	return vdisk.InvalidPage, false
}

// deliverLocked removes p from the pending set and releases the shared
// wanted/submitted bookkeeping. Caller holds m.mu.
func (w *Waiter) deliverLocked(page vdisk.PageID) {
	for i, p := range w.order {
		if p == page {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	delete(w.pending, page)
	w.m.unwant([]vdisk.PageID{page})
}

// clearLocked abandons every pending request of this waiter, withdrawing
// device entries no other waiter wants. Caller holds m.mu.
func (w *Waiter) clearLocked() {
	pages := w.order
	w.order = nil
	for _, p := range pages {
		delete(w.pending, p)
	}
	w.m.unwant(pages)
}

// unwant decrements the wanted count of each page and withdraws from the
// device those nobody wants anymore. Caller holds m.mu.
func (m *Manager) unwant(pages []vdisk.PageID) {
	var orphans map[vdisk.PageID]bool
	for _, p := range pages {
		if m.wanted[p]--; m.wanted[p] > 0 {
			continue
		}
		delete(m.wanted, p)
		delete(m.failed, p) // last interested waiter has seen (or dropped) it
		delete(m.attempts, p)
		if m.submitted[p] {
			delete(m.submitted, p)
			if orphans == nil {
				orphans = make(map[vdisk.PageID]bool)
			}
			orphans[p] = true
		}
	}
	if orphans != nil {
		m.disk.CancelMatch(func(p vdisk.PageID) bool { return orphans[p] })
		stats.Add(&m.led.AsyncWithdrawn, int64(len(orphans)))
	}
}

// Cancel abandons this waiter's outstanding requests. Device entries still
// wanted by other waiters stay in flight; the rest are withdrawn, so a
// cancelled query's prefetches cannot linger on the simulated device.
func (w *Waiter) Cancel() {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	w.clearLocked()
}

// Outstanding returns the number of undelivered requests of this waiter.
func (w *Waiter) Outstanding() int {
	w.m.mu.Lock()
	defer w.m.mu.Unlock()
	return len(w.order)
}

// Request schedules an asynchronous load of page p on the manager's root
// waiter (single-query callers that need no per-query accounting).
func (m *Manager) Request(p vdisk.PageID) { m.root.Request(p) }

// WaitLoaded delivers one of the root waiter's requested pages.
func (m *Manager) WaitLoaded() (p vdisk.PageID, ok bool, err error) { return m.root.WaitLoaded() }

// OutstandingRequests returns the number of async requests not yet
// delivered to the root waiter.
func (m *Manager) OutstandingRequests() int { return m.root.Outstanding() }

// CancelRequests abandons the root waiter's outstanding async requests.
func (m *Manager) CancelRequests() { m.root.Cancel() }

// Invalidate drops page p from the pool after an out-of-band write (the
// update path rewrites pages directly). It panics if the frame is pinned.
func (m *Manager) Invalidate(p vdisk.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.shardOf(p)
	s.mu.Lock()
	f, ok := s.frames[p]
	if !ok {
		s.mu.Unlock()
		return
	}
	if f.Pinned() {
		s.mu.Unlock()
		panic(fmt.Sprintf("buffer: invalidate of pinned page %d", p))
	}
	delete(s.frames, p)
	s.mu.Unlock()
	m.unlink(f)
	m.nFrames--
	if m.onEvict != nil {
		m.onEvict(p)
	}
}

// Discard is Invalidate for version reclamation: it drops page p from the
// pool if present, but — unlike Invalidate, which treats a pinned frame as
// a protocol violation — it reports false and leaves the frame alone when
// the page is still pinned. Superseded page versions are unreachable from
// any live snapshot, so a pin is at worst a transient read finishing up;
// the reclaimer retries on the next pass.
func (m *Manager) Discard(p vdisk.PageID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.shardOf(p)
	s.mu.Lock()
	f, ok := s.frames[p]
	if !ok {
		s.mu.Unlock()
		return true
	}
	if f.Pinned() {
		s.mu.Unlock()
		return false
	}
	delete(s.frames, p)
	s.mu.Unlock()
	m.unlink(f)
	m.nFrames--
	if m.onEvict != nil {
		m.onEvict(p)
	}
	return true
}

// FlushAll drops every unpinned frame (used between benchmark runs to
// start cold) and resets the async bookkeeping, including the root
// waiter's pending set. It panics if any frame is still pinned. Per-query
// waiters must be cancelled before FlushAll; surviving ones hold stale
// pending sets.
func (m *Manager) FlushAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for p, f := range s.frames {
			if f.Pinned() {
				s.mu.Unlock()
				panic(fmt.Sprintf("buffer: FlushAll with pinned page %d", p))
			}
			if m.onEvict != nil {
				m.onEvict(p)
			}
		}
		s.frames = make(map[vdisk.PageID]*Frame)
		s.mu.Unlock()
	}
	m.nFrames = 0
	m.head, m.tail = nil, nil
	m.submitted = make(map[vdisk.PageID]bool)
	m.wanted = make(map[vdisk.PageID]int)
	m.failed = make(map[vdisk.PageID]error)
	m.attempts = make(map[vdisk.PageID]int)
	m.root.pending = make(map[vdisk.PageID]bool)
	m.root.order = nil
}

// newFrame allocates (or steals via eviction) a frame, links it at MRU and
// registers it under page p (unless p is InvalidPage, for placeholders).
// Caller holds m.mu.
func (m *Manager) newFrame(p vdisk.PageID) *Frame {
	if m.nFrames >= m.capacity {
		if !m.evictOne() {
			m.overflow++
		}
	}
	f := &Frame{Page: p, Data: make([]byte, m.disk.PageSize())}
	m.linkFront(f)
	if p != vdisk.InvalidPage {
		s := m.shardOf(p)
		s.mu.Lock()
		s.frames[p] = f
		s.mu.Unlock()
		m.nFrames++
	}
	return f
}

// evictOne drops the least recently used unpinned frame. It returns false
// if every frame is pinned. Caller holds m.mu; the victim's pin count is
// re-checked under its shard's exclusive latch, which excludes the hit
// path's pin-under-read-latch.
func (m *Manager) evictOne() bool {
	for f := m.tail; f != nil; f = f.prev {
		if f.Pinned() || f.Page == vdisk.InvalidPage {
			continue // pinned, or a placeholder still being filled
		}
		s := m.shardOf(f.Page)
		s.mu.Lock()
		if f.Pinned() {
			s.mu.Unlock()
			continue
		}
		delete(s.frames, f.Page)
		s.mu.Unlock()
		m.unlink(f)
		m.nFrames--
		stats.Inc(&m.led.Evictions)
		if m.onEvict != nil {
			m.onEvict(f.Page)
		}
		return true
	}
	return false
}

func (m *Manager) touch(f *Frame) {
	if m.head == f {
		return
	}
	m.unlink(f)
	m.linkFront(f)
}

func (m *Manager) linkFront(f *Frame) {
	f.prev = nil
	f.next = m.head
	if m.head != nil {
		m.head.prev = f
	}
	m.head = f
	if m.tail == nil {
		m.tail = f
	}
}

func (m *Manager) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if m.head == f {
		m.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if m.tail == f {
		m.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
