module pathdb

go 1.22
