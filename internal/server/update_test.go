package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"pathdb"
)

func postUpdate(t *testing.T, url string, req UpdateRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func fetchMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return parsePromText(t, buf.String())
}

func decodeUpdate(t *testing.T, data []byte) UpdateResponse {
	t.Helper()
	var ur UpdateResponse
	if err := json.Unmarshal(data, &ur); err != nil {
		t.Fatalf("update response not valid JSON: %v\n%s", err, data)
	}
	return ur
}

// TestUpdateEndpoint drives the full insert → query → delete → query loop
// over HTTP and checks the transaction counters surface on /metrics.
func TestUpdateEndpoint(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	resp, data := postUpdate(t, ts.URL, UpdateRequest{
		Op:     "insert",
		Parent: "/site",
		XML:    `<annotation><note>added over http</note></annotation>`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, data)
	}
	ur := decodeUpdate(t, data)
	if ur.Op != "insert" || ur.Inserted == nil || ur.Inserted.Name != "annotation" {
		t.Fatalf("insert response: %+v", ur)
	}
	if ur.Epoch == 0 {
		t.Fatalf("insert did not advance the epoch: %+v", ur)
	}

	// The committed fragment is visible to queries.
	qresp, qdata := postQuery(t, ts.URL, QueryRequest{Path: "/site/annotation/note"})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query after insert: status %d: %s", qresp.StatusCode, qdata)
	}
	if qr := decodeResponse(t, qdata); qr.Count != 1 {
		t.Fatalf("query after insert: count %d, want 1", qr.Count)
	}

	// Delete removes every match and reports the count.
	resp, data = postUpdate(t, ts.URL, UpdateRequest{Op: "delete", Path: "/site/annotation"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, data)
	}
	if ur = decodeUpdate(t, data); ur.Deleted != 1 {
		t.Fatalf("delete response: %+v", ur)
	}
	_, qdata = postQuery(t, ts.URL, QueryRequest{Path: "/site/annotation"})
	if qr := decodeResponse(t, qdata); qr.Count != 0 {
		t.Fatalf("query after delete: count %d, want 0", qr.Count)
	}

	// Deleting a path with no matches commits nothing and still answers.
	resp, data = postUpdate(t, ts.URL, UpdateRequest{Op: "delete", Path: "/site/annotation"})
	if resp.StatusCode != http.StatusOK || decodeUpdate(t, data).Deleted != 0 {
		t.Fatalf("empty delete: status %d: %s", resp.StatusCode, data)
	}

	// The transaction counters surface on /metrics.
	m := fetchMetrics(t, ts.URL)
	if m["pathdb_txn_commits_total"] < 2 {
		t.Fatalf("txn commits on /metrics: %v", m["pathdb_txn_commits_total"])
	}
	if m["pathdb_server_updated_total"] != 3 {
		t.Fatalf("server updated_total: %v, want 3", m["pathdb_server_updated_total"])
	}
	if m["pathdb_engine_updates_total"] < 2 {
		t.Fatalf("engine updates_total: %v", m["pathdb_engine_updates_total"])
	}
}

// TestUpdateValidation exercises the 400 paths: malformed bodies, unknown
// ops, missing fields, bad fragments and ambiguous insert targets.
func TestUpdateValidation(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	cases := []struct {
		name string
		req  UpdateRequest
	}{
		{"unknown op", UpdateRequest{Op: "rename", Path: "/site"}},
		{"insert missing xml", UpdateRequest{Op: "insert", Parent: "/site"}},
		{"insert missing parent", UpdateRequest{Op: "insert", XML: "<x/>"}},
		{"delete missing path", UpdateRequest{Op: "delete"}},
		{"malformed fragment", UpdateRequest{Op: "insert", Parent: "/site", XML: "<broken"}},
		{"two fragment roots", UpdateRequest{Op: "insert", Parent: "/site", XML: "<x/><y/>"}},
		{"ambiguous parent", UpdateRequest{Op: "insert", Parent: "/site/regions//item", XML: "<x/>"}},
		{"negative timeout", UpdateRequest{Op: "delete", Path: "/site", TimeoutMS: -1}},
	}
	for _, c := range cases {
		resp, data := postUpdate(t, ts.URL, c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, data)
		}
	}

	resp, _ := http.Get(ts.URL + "/update")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()

	m := fetchMetrics(t, ts.URL)
	if m["pathdb_server_update_errors_total"] != float64(len(cases)) {
		t.Fatalf("update_errors_total: %v, want %d", m["pathdb_server_update_errors_total"], len(cases))
	}
}

// TestUpdateConcurrentWithQueries hammers the server with parallel readers
// and writers: every response must be coherent (200s only), inserts must
// accumulate exactly, and group commit should keep the WAL flush rate at or
// below one flush per commit.
func TestUpdateConcurrentWithQueries(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{MaxInFlight: 8}, Options{})

	const writers, perWriter, readers = 2, 10, 4
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp, data := postUpdate(t, ts.URL, UpdateRequest{
					Op:     "insert",
					Parent: "/site",
					XML:    fmt.Sprintf("<probe w='%d' i='%d'/>", w, i),
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d insert %d: status %d: %s", w, i, resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, data := postQuery(t, ts.URL, QueryRequest{Path: "/site/probe"})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader: status %d: %s", resp.StatusCode, data)
					return
				}
				if qr := decodeResponse(t, data); qr.Count > writers*perWriter {
					errs <- fmt.Errorf("reader saw %d probes, max possible %d", qr.Count, writers*perWriter)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	_, data := postQuery(t, ts.URL, QueryRequest{Path: "/site/probe"})
	if qr := decodeResponse(t, data); qr.Count != writers*perWriter {
		t.Fatalf("final probe count %d, want %d", qr.Count, writers*perWriter)
	}
	m := fetchMetrics(t, ts.URL)
	if c, f := m["pathdb_txn_commits_total"], m["pathdb_txn_wal_flushes_total"]; c == 0 || f > c {
		t.Fatalf("group commit regressed: %v flushes for %v commits", f, c)
	}
}

// TestQueryChoiceExposed checks the auto-strategy decision rides along in
// the /query response.
func TestQueryChoiceExposed(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	resp, data := postQuery(t, ts.URL, QueryRequest{Path: descQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, data)
	}
	qr := decodeResponse(t, data)
	if qr.Choice == nil {
		t.Fatalf("auto query response carries no choice: %s", data)
	}
	if qr.Choice.ChosenStrategy != qr.Strategy {
		t.Fatalf("choice strategy %q != resolved strategy %q", qr.Choice.ChosenStrategy, qr.Strategy)
	}
	if qr.Choice.Coverage <= 0 || qr.Choice.ScheduleCostNs <= 0 || qr.Choice.ScanCostNs <= 0 {
		t.Fatalf("degenerate choice estimates: %+v", qr.Choice)
	}

	// A forced strategy bypasses the model: no choice in the response.
	resp, data = postQuery(t, ts.URL, QueryRequest{Path: descQuery, Strategy: "xscan"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced query: status %d: %s", resp.StatusCode, data)
	}
	if qr = decodeResponse(t, data); qr.Choice != nil {
		t.Fatalf("forced-strategy response carries a choice: %s", data)
	}
}
