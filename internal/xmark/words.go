package xmark

import "strings"

// wordList is the vocabulary for generated prose, standing in for the
// Shakespeare word list xmlgen ships with.
var wordList = strings.Fields(`
the of and to in that was his he it with is for as had you not be her on at
by which have or from this him but all she they were my are me one their so
an said them we who would been will no when there if more out up into do any
your what has man could other than our some very time upon about may its only
now little like then can made should did us such a great before must two
these see know over much down after first mister good men own never most old
shall day where those came come himself way work life without go make well
through being long say might among even soul house malicious fortune attack
rapid rebuild golden ships crew merchant duty iron crown castle silver stone
bridge harbour winter summer spring autumn journey letter answer question
market garden mountain river forest village captain soldier doctor lawyer
king queen prince princess knight squire farmer hunter miller baker butcher
purple orange yellow crimson scarlet azure emerald amber ivory ebony marble
quiet loud gentle fierce brave timid clever foolish wise noble humble proud
`)

// word returns one pseudo-random vocabulary word.
func (g *generator) word() string {
	return wordList[g.r.Intn(len(wordList))]
}

// words returns a phrase of lo..hi words.
func (g *generator) words(lo, hi int) string {
	n := g.r.IntRange(lo, hi)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(g.word())
	}
	return b.String()
}
