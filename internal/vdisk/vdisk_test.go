package vdisk

import (
	"bytes"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/stats"
)

func newDisk(t testing.TB, npages int) (*Disk, *stats.Ledger) {
	led := stats.NewLedger()
	d := New(DefaultCostModel(), led, 4096)
	for i := 0; i < npages; i++ {
		p := d.Alloc()
		buf := bytes.Repeat([]byte{byte(i)}, 8)
		d.Write(p, buf)
	}
	led.Reset()
	d.ResetClockState()
	return d, led
}

func TestRoundTrip(t *testing.T) {
	d, _ := newDisk(t, 10)
	buf := make([]byte, d.PageSize())
	for i := 0; i < 10; i++ {
		d.ReadSync(PageID(i), buf)
		if buf[0] != byte(i) || buf[7] != byte(i) {
			t.Fatalf("page %d content wrong: % x", i, buf[:8])
		}
		if buf[8] != 0 {
			t.Fatal("page tail not zeroed")
		}
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	d, led := newDisk(t, 1000)
	buf := make([]byte, d.PageSize())
	for i := 0; i < 100; i++ {
		d.ReadSync(PageID(i), buf)
	}
	seq := led.Now

	d2, led2 := newDisk(t, 1000)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		d2.ReadSync(PageID(r.Intn(1000)), buf)
	}
	rand := led2.Now
	if rand < 5*seq {
		t.Fatalf("random (%v) should be >5x sequential (%v)", rand, seq)
	}
	if led.SeqPageReads != 99 { // first read seeks, rest are sequential
		t.Fatalf("SeqPageReads = %d, want 99", led.SeqPageReads)
	}
}

func TestSeekCostMonotoneAndCapped(t *testing.T) {
	m := DefaultCostModel()
	if m.SeekCost(1) >= m.SeekCost(1000) {
		t.Fatal("seek cost not monotone")
	}
	if m.SeekCost(1<<30) != m.SeekMax {
		t.Fatal("seek cost not capped")
	}
	if m.SeekCost(-5) != m.SeekCost(5) {
		t.Fatal("seek cost not symmetric")
	}
}

func TestAsyncOverlapsWithCPU(t *testing.T) {
	// Submit a request, then burn more CPU than the I/O takes: the
	// subsequent wait must be free.
	d, led := newDisk(t, 100)
	buf := make([]byte, d.PageSize())
	d.Submit(50)
	led.AdvanceCPU(100 * stats.Millisecond) // plenty of time for one read
	before := led.IOWait
	p, ok, _ := d.WaitAny(buf)
	if !ok || p != 50 {
		t.Fatalf("WaitAny = %d, %v", p, ok)
	}
	if led.IOWait != before {
		t.Fatalf("overlapped I/O charged wait time: %v", led.IOWait-before)
	}
}

func TestAsyncBlocksWhenCPUIsAhead(t *testing.T) {
	d, led := newDisk(t, 100)
	buf := make([]byte, d.PageSize())
	d.Submit(50)
	if _, ok, _ := d.WaitAny(buf); !ok {
		t.Fatal("WaitAny failed")
	}
	if led.IOWait == 0 {
		t.Fatal("immediate wait should block")
	}
}

func TestWaitAnyNoPending(t *testing.T) {
	d, _ := newDisk(t, 10)
	buf := make([]byte, d.PageSize())
	if _, ok, _ := d.WaitAny(buf); ok {
		t.Fatal("WaitAny succeeded with empty queue")
	}
}

func TestSSTFReordersRequests(t *testing.T) {
	// Head parks at page 0 after a sync read; submitting far, near must
	// complete near first under SSTF.
	d, _ := newDisk(t, 1000)
	buf := make([]byte, d.PageSize())
	d.ReadSync(0, buf)
	d.Submit(900)
	d.Submit(10)
	first, _, _ := d.WaitAny(buf)
	second, _, _ := d.WaitAny(buf)
	if first != 10 || second != 900 {
		t.Fatalf("SSTF order = %d, %d; want 10, 900", first, second)
	}
}

func TestFIFOPreservesOrder(t *testing.T) {
	d, _ := newDisk(t, 1000)
	d.SetPolicy(FIFO)
	buf := make([]byte, d.PageSize())
	d.ReadSync(0, buf)
	d.Submit(900)
	d.Submit(10)
	first, _, _ := d.WaitAny(buf)
	if first != 900 {
		t.Fatalf("FIFO first = %d, want 900", first)
	}
}

func TestElevatorSweeps(t *testing.T) {
	d, _ := newDisk(t, 1000)
	d.SetPolicy(Elevator)
	buf := make([]byte, d.PageSize())
	d.ReadSync(500, buf)
	d.Submit(400) // behind head: served after the upward sweep
	d.Submit(600)
	d.Submit(550)
	order := []PageID{}
	for i := 0; i < 3; i++ {
		p, ok, _ := d.WaitAny(buf)
		if !ok {
			t.Fatal("WaitAny failed")
		}
		order = append(order, p)
	}
	want := []PageID{550, 600, 400}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("elevator order = %v, want %v", order, want)
		}
	}
}

func TestSSTFFasterThanFIFOOnScatteredLoad(t *testing.T) {
	run := func(p Policy) stats.Ticks {
		d, led := newDisk(t, 4000)
		d.SetPolicy(p)
		buf := make([]byte, d.PageSize())
		r := rng.New(7)
		for i := 0; i < 64; i++ {
			d.Submit(PageID(r.Intn(4000)))
		}
		for {
			if _, ok, _ := d.WaitAny(buf); !ok {
				break
			}
		}
		return led.Now
	}
	sstf, fifo := run(SSTF), run(FIFO)
	if sstf >= fifo {
		t.Fatalf("SSTF (%v) not faster than FIFO (%v)", sstf, fifo)
	}
}

func TestDrainIsLazyButComplete(t *testing.T) {
	// All submitted requests are eventually retrievable, exactly once.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		d, led := newDisk(t, 512)
		r := rng.New(seed)
		want := map[PageID]int{}
		for i := 0; i < n; i++ {
			p := PageID(r.Intn(512))
			want[p]++
			d.Submit(p)
			if r.Bool(0.5) {
				led.AdvanceCPU(stats.Ticks(r.Intn(10)) * stats.Millisecond)
			}
		}
		buf := make([]byte, d.PageSize())
		got := map[PageID]int{}
		for {
			p, ok, _ := d.WaitAny(buf)
			if !ok {
				break
			}
			got[p]++
		}
		if len(got) != len(want) {
			return false
		}
		for p, c := range want {
			if got[p] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotoneUnderMixedOps(t *testing.T) {
	f := func(seed uint64) bool {
		d, led := newDisk(t, 256)
		r := rng.New(seed)
		buf := make([]byte, d.PageSize())
		prev := led.Now
		for i := 0; i < 100; i++ {
			switch r.Intn(3) {
			case 0:
				d.ReadSync(PageID(r.Intn(256)), buf)
			case 1:
				d.Submit(PageID(r.Intn(256)))
			case 2:
				d.WaitAny(buf)
			}
			if led.Now < prev {
				return false
			}
			prev = led.Now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionTimesNonDecreasing(t *testing.T) {
	d, led := newDisk(t, 1000)
	buf := make([]byte, d.PageSize())
	for i := 0; i < 20; i++ {
		d.Submit(PageID(i * 37 % 1000))
	}
	prev := stats.Ticks(-1)
	for {
		_, ok, _ := d.WaitAny(buf)
		if !ok {
			break
		}
		if led.Now < prev {
			t.Fatal("completion times regressed")
		}
		prev = led.Now
	}
}

func TestWriteThenReadOtherPage(t *testing.T) {
	led := stats.NewLedger()
	d := New(DefaultCostModel(), led, 128)
	a, b := d.Alloc(), d.Alloc()
	d.Write(a, []byte("aaaa"))
	d.Write(b, []byte("bbbb"))
	buf := make([]byte, 128)
	d.ReadSync(a, buf)
	if string(buf[:4]) != "aaaa" {
		t.Fatalf("page a = %q", buf[:4])
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d, _ := newDisk(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.ReadSync(5, make([]byte, d.PageSize()))
}

func TestPolicyString(t *testing.T) {
	if SSTF.String() != "sstf" || Elevator.String() != "elevator" || FIFO.String() != "fifo" {
		t.Fatal("policy names wrong")
	}
}

func TestPendingAsyncCount(t *testing.T) {
	d, _ := newDisk(t, 100)
	if d.PendingAsync() != 0 {
		t.Fatal("fresh disk has pending requests")
	}
	d.Submit(1)
	d.Submit(2)
	if d.PendingAsync() != 2 {
		t.Fatalf("PendingAsync = %d", d.PendingAsync())
	}
	buf := make([]byte, d.PageSize())
	d.WaitAny(buf)
	if d.PendingAsync() != 1 {
		t.Fatalf("PendingAsync after wait = %d", d.PendingAsync())
	}
}

func TestWriteFaultDropsWrites(t *testing.T) {
	led := stats.NewLedger()
	d := New(DefaultCostModel(), led, 64)
	a := d.Alloc()
	d.Write(a, []byte("before"))

	d.SetWriteFault(1)
	d.Write(a, []byte("first-ok"))
	d.Write(a, []byte("dropped"))
	buf := make([]byte, 64)
	d.ReadSync(a, buf)
	if string(buf[:8]) != "first-ok" {
		t.Fatalf("page = %q", buf[:8])
	}
	// Disarm restores writes.
	d.SetWriteFault(-1)
	d.Write(a, []byte("after"))
	d.ReadSync(a, buf)
	if string(buf[:5]) != "after" {
		t.Fatalf("page after disarm = %q", buf[:5])
	}
}

func TestTraceRecordsOperations(t *testing.T) {
	d, _ := newDisk(t, 100)
	d.SetTrace(true)
	buf := make([]byte, d.PageSize())
	d.ReadSync(5, buf)
	d.ReadSync(6, buf) // sequential
	d.Submit(50)
	d.Submit(20)
	d.WaitAny(buf)
	d.WaitAny(buf)
	tr := d.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace length = %d: %v", len(tr), tr)
	}
	if tr[0].Op != "read" || tr[1].Op != "read-seq" {
		t.Fatalf("sync ops = %s, %s", tr[0].Op, tr[1].Op)
	}
	// SSTF from head 6: page 20 before 50.
	if tr[2].Op != "read-async" || tr[2].Page != 20 || tr[3].Page != 50 {
		t.Fatalf("async trace = %v", tr[2:])
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatal("trace times not monotone")
		}
	}
	d.SetTrace(false)
	d.ReadSync(5, buf)
	if len(d.Trace()) != 0 {
		t.Fatal("tracing not disabled")
	}
}
