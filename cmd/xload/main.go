// Command xload is a closed-loop load generator for the concurrent query
// engine: N client goroutines each submit queries back-to-back and the tool
// reports throughput and latency percentiles in both clocks — virtual (the
// calibrated disk/CPU model, machine independent) and wall (what the
// simulation itself cost).
//
// It drives either an in-process pathdb.Engine (default) or, with -url, a
// running xserved instance over real sockets — the same request multiset
// through the same reporting, so in-process and networked throughput are
// directly comparable. In -url mode 503 responses (load shedding) are
// retried and counted, and -timeout sets a per-request budget whose expiry
// (504) is counted as a timeout.
//
// Usage:
//
//	xload -xmark 0.5 -clients 8 -requests 64
//	xload -xmark 0.5 -clients 1 -requests 64      # same work, sequential
//	xload -xml doc.xml -mix q7 -strategy xschedule
//	xload -xmark 0.5 -mix q6,q7,q15 -clients 8    # heavy-tailed multi-query mix
//	xload -xmark 0.5 -write-frac 0.25 -clients 8  # mixed read/write workload
//	xload -xmark 0.5 -clients 8 -parallel 8 -cpuprofile cpu.pprof -json .
//	xload -url http://localhost:8080 -clients 16 -requests 256 -timeout 250
//
// -mix takes one name (q6, q7, q15, all) or a comma-separated list, which
// is weighted heavy-tailed: the first name gets half the requests, the
// second a quarter, and so on (powers of two, last two equal) — a skewed
// multi-query workload over one volume.
//
// -write-frac turns that fraction of requests into write transactions:
// each inserts an empty <xloadpad/> element under /site (invisible to the
// query mixes, so read counts stay stable) and reports commit latency.
// Writes go through DB.Update in engine mode and POST /update in url mode;
// concurrent writers exercise the group-commit WAL, whose batching shows
// up as flushes_per_commit < 1 in the report.
//
// The request multiset is fixed by -requests and -mix and distributed
// round-robin, so per-query result counts are independent of -clients —
// the tool self-checks this and exits non-zero if any path's count varies
// between completed requests.
//
// -shards N (engine mode) splits the corpus across N independent volumes
// and drives the scatter-gather coordinator instead of a single engine:
// counts are merged cluster-wide (so the self-check still holds), the
// report adds per-shard throughput, and the snapshot is written as
// BENCH_xload_sharded.json with shards/per-shard/degraded fields so
// benchgate gates sharded runs separately from single-volume ones. With
// -degrade-shard I the -fault-* flags apply to shard I alone; requests
// that lost that shard come back as typed partial results (counted, not
// fatal) under the coordinator's quorum policy. In -url mode the tool
// detects a sharded server from pathdb_cluster_shards in /metrics and
// reads the per-shard series off the shard-labeled samples.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathdb"
	"pathdb/internal/bench"
	"pathdb/internal/shard"
	"pathdb/internal/stats"
)

var mixes = map[string][]string{
	"q6": {"/site/regions//item"},
	"q7": {"/site//description", "/site//annotation", "/site//emailaddress"},
	"q15": {
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	},
	// Branching paths: structural predicates over wide candidate sets, the
	// workload where the set-at-a-time semi-join (XJoin) earns its keep
	// over per-candidate probing.
	"branch": {
		`/site//item[.//keyword="golden"]`,
		"/site//item[mailbox/mail//keyword]",
		"/site//parlist[(listitem/parlist){1,2}]",
	},
}

// sample is the outcome of one request. A timed-out request has timedOut
// set and carries no count or virtual latency.
type sample struct {
	path     string
	count    int
	virt     stats.Ticks
	wall     time.Duration
	ttfr     time.Duration // streamed: submit to first result node
	isWrite  bool          // a commit; wall is the transaction's commit latency
	timedOut bool
	errKind  string // non-empty for a typed storage fault ("io", "corrupt")
	partial  bool   // sharded: a degraded shard was excluded from the merge
	degraded int    // sharded: how many shards faulted out of this request
}

// backend issues one query and reports cluster-wide engine state at the
// end. Implemented over an in-process engine and over HTTP.
type backend interface {
	// do runs one request; shed is the number of 503-and-retry rounds it
	// took to get admitted.
	do(path string) (s sample, shed int64, err error)
	// stream runs one request with streamed delivery (a cursor in engine
	// mode, NDJSON in url mode), draining it fully; the sample's ttfr is
	// the time to the first result node.
	stream(path string) (s sample, shed int64, err error)
	// update commits one write transaction (an <xloadpad/> insert under
	// /site); the sample's wall is the commit latency.
	update() (s sample, shed int64, err error)
	// virtualTotal is the volume's virtual clock advance since start.
	virtualTotal() stats.Ticks
	// engineMetrics returns the engine's admission/dispatch counters.
	engineMetrics() (pathdb.EngineMetrics, error)
	// txnMetrics returns the transaction subsystem's counters.
	txnMetrics() (pathdb.TxnMetrics, error)
	close()
}

// predConfigurable lets the -pred-compare pass swap the predicate
// evaluator (and pin the access strategy) between replays of the branch
// mix. Every backend implements it: the engine and cluster backends
// thread it through QueryOptions, the HTTP backend through the request
// body.
type predConfigurable interface {
	setPredEval(pathdb.PredEval)
	setStrategy(pathdb.Strategy)
}

// shardAware is the optional backend extension for sharded runs: the
// cluster backend always implements it meaningfully; the HTTP backend
// does once it detects pathdb_cluster_shards in /metrics.
type shardAware interface {
	shardCount() int
	// perShard reports each shard's slice of the run; wall is the run's
	// total wall time (for per-shard q/s).
	perShard(wall time.Duration) ([]bench.ShardLoadJSON, error)
}

// resolveMix expands -mix into the request pattern. A single name maps to
// its path set; a comma-separated list is weighted heavy-tailed (the i-th
// of n names gets weight 2^(n-1-i)), with every member's paths cycled
// round-robin inside its weight share so the full path set is exercised.
func resolveMix(mixName string) ([]string, error) {
	expand := func(name string) ([]string, error) {
		if ps, ok := mixes[name]; ok {
			return ps, nil
		}
		if name == "all" {
			var ps []string
			for _, n := range []string{"q6", "q7", "q15", "branch"} {
				ps = append(ps, mixes[n]...)
			}
			return ps, nil
		}
		return nil, fmt.Errorf("unknown mix %q (want q6, q7, q15, branch or all)", name)
	}
	names := strings.Split(mixName, ",")
	if len(names) == 1 {
		return expand(names[0])
	}
	groups := make([][]string, len(names))
	cycles := 1
	for i, name := range names {
		ps, err := expand(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		groups[i] = ps
		cycles = lcm(cycles, len(ps))
	}
	// One cycle interleaves every group at its weight; `cycles` cycles
	// bring every group's round-robin counter back to zero.
	var pattern []string
	ctr := make([]int, len(groups))
	for c := 0; c < cycles; c++ {
		for i, ps := range groups {
			// Weights halve down the list, last two equal: 4,2,2 for three
			// names — the first gets half the requests, exactly.
			w := 1 << (len(groups) - 1 - i)
			if i == len(groups)-1 {
				w = 2
			}
			for k := 0; k < w; k++ {
				pattern = append(pattern, ps[ctr[i]%len(ps)])
				ctr[i]++
			}
		}
	}
	return pattern, nil
}

func lcm(a, b int) int {
	x, y := a, b
	for y != 0 {
		x, y = y, x%y
	}
	return a / x * b
}

func main() {
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document with this scale factor instead")
	scale := flag.Float64("scale", 0.1, "entity scale for -xmark")
	seed := flag.Uint64("seed", 42, "seed for -xmark and fragmented layouts")
	layoutName := flag.String("layout", "natural", "physical layout: natural, contiguous, shuffled")
	buffer := flag.Int("buffer", 0, "buffer pool pages (default 1000)")
	faultRead := flag.Float64("fault-read", 0, "probability a page read fails transiently (engine mode only)")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "probability a page read returns a torn image (engine mode only)")
	faultLatency := flag.Float64("fault-latency", 0, "probability a page read takes a latency spike (engine mode only)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault plane")
	shards := flag.Int("shards", 1, "split the corpus across N volumes behind the scatter-gather coordinator (engine mode)")
	degradeShard := flag.Int("degrade-shard", -1, "apply the -fault-* schedule to this shard only (requires -shards > 1)")

	url := flag.String("url", "", "drive a running xserved at this base URL instead of an in-process engine")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 64, "total queries across all clients")
	mixName := flag.String("mix", "q6", "query mix: q6, q7, q15, all, or a comma-separated heavy-tailed list (q6,q7,q15)")
	writeFrac := flag.Float64("write-frac", 0, "fraction of requests that are write transactions (0..0.9)")
	strategy := flag.String("strategy", "auto", "plan strategy: auto, simple, xschedule, xscan")
	predsName := flag.String("preds", "auto", "predicate evaluator: auto, nested, join")
	predCompare := flag.Bool("pred-compare", false, "after the main run, replay the 'branch' mix under per-candidate (nested) and chooser-picked predicate evaluation and record both in the JSON snapshot")
	timeoutMS := flag.Int64("timeout", 0, "per-request budget in milliseconds (0 = none)")
	inflight := flag.Int("inflight", 0, "engine MaxInFlight (default 8)")
	queue := flag.Int("queue", 0, "engine QueueDepth (default 64)")
	parallel := flag.Int("parallel", 0, "engine worker-pool width per gang (default min(MaxInFlight, GOMAXPROCS))")
	sorted := flag.Bool("sorted", false, "request document-order results")
	streamMode := flag.Bool("stream", false, "streamed delivery: drain a cursor (engine mode) or NDJSON (url mode) per request and report time-to-first-result")
	jsonDir := flag.String("json", "", "write BENCH_xload.json into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	flag.Parse()

	strat, err := pathdb.ParseStrategy(*strategy)
	if err != nil {
		fail("%v", err)
	}
	predEval, err := pathdb.ParsePredEval(*predsName)
	if err != nil {
		fail("%v", err)
	}
	paths, err := resolveMix(*mixName)
	if err != nil {
		fail("%v", err)
	}
	if *clients < 1 || *requests < 1 {
		fail("-clients and -requests must be positive")
	}
	if *writeFrac < 0 || *writeFrac > 0.9 {
		fail("-write-frac must be in [0, 0.9]")
	}
	// Request i is a write when a fixed hash of i lands on the write
	// stride. The hash keeps the choice deterministic in i — the read
	// multiset (and the per-path count self-check) stays independent of
	// -clients — while scattering writes across client residues; a plain
	// i%N stride would pin every write to one client and writers would
	// never meet in the group-commit window.
	writeEvery := 0
	if *writeFrac > 0 {
		writeEvery = int(1 / *writeFrac)
		if writeEvery < 2 {
			writeEvery = 2
		}
	}
	isWriteReq := func(i int) bool {
		if writeEvery == 0 {
			return false
		}
		h := uint64(i) * 0x9E3779B97F4A7C15 // Fibonacci hashing
		return int(h>>33)%writeEvery == 0
	}

	// Resolve the effective worker-pool width for reporting (the engine
	// applies the same default; meaningless in -url mode, where the server
	// owns the engine).
	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = *inflight
		if effParallel <= 0 {
			effParallel = 8
		}
		if g := runtime.GOMAXPROCS(0); effParallel > g {
			effParallel = g
		}
	}

	faultsOn := *faultRead > 0 || *faultCorrupt > 0 || *faultLatency > 0

	// One QueryOptions for the whole run: strategy, ordering, per-request
	// budget and (streamed runs) limit all travel in the same struct every
	// evaluation surface takes, instead of per-call-site flag plumbing.
	queryOpts := pathdb.QueryOptions{
		Strategy: strat,
		Sorted:   *sorted,
		PredEval: predEval,
		Timeout:  time.Duration(*timeoutMS) * time.Millisecond,
	}

	if *shards < 1 {
		fail("-shards must be >= 1")
	}
	if *degradeShard >= *shards {
		fail("-degrade-shard %d out of range for %d shards", *degradeShard, *shards)
	}

	var be backend
	mode := "engine"
	if *url != "" {
		if faultsOn {
			fail("-fault-* flags require engine mode (the server owns its disk)")
		}
		if *shards > 1 {
			fail("-shards requires engine mode (a sharded server is detected from its /metrics)")
		}
		mode = "url"
		be = newHTTPBackend(strings.TrimRight(*url, "/"), queryOpts)
	} else if *shards > 1 {
		layout, ok := map[string]pathdb.Layout{
			"natural": pathdb.Natural, "contiguous": pathdb.Contiguous, "shuffled": pathdb.Shuffled,
		}[*layoutName]
		if !ok {
			fail("unknown -layout %q", *layoutName)
		}
		opts := pathdb.Options{Layout: layout, LayoutSeed: *seed, BufferPages: *buffer}
		cfg := shard.Config{
			Shards: *shards,
			Engine: pathdb.EngineConfig{MaxInFlight: *inflight, QueueDepth: *queue, Parallel: *parallel},
		}
		var cl *shard.Cluster
		switch {
		case *xmlFile != "":
			data, rerr := os.ReadFile(*xmlFile)
			if rerr != nil {
				fail("%v", rerr)
			}
			cl, err = shard.NewXML(data, opts, cfg)
		case *xmarkSF > 0:
			cl, err = shard.NewXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts, cfg)
		default:
			fail("need -xml, -xmark or -url")
		}
		if err != nil {
			fail("%v", err)
		}
		var pages []string
		for _, sm := range cl.Metrics() {
			pages = append(pages, strconv.Itoa(sm.Pages))
		}
		fmt.Printf("cluster: %d shards, pages per shard: %s\n", cl.Shards(), strings.Join(pages, "/"))
		if faultsOn {
			if *degradeShard < 0 {
				fail("-fault-* with -shards needs -degrade-shard to pick the faulty volume")
			}
			cl.SetFaults(*degradeShard, pathdb.FaultConfig{
				Seed:      *faultSeed,
				ReadError: *faultRead,
				Corrupt:   *faultCorrupt,
				Latency:   *faultLatency,
			})
			cl.MarkDegraded(*degradeShard, true)
			fmt.Printf("faults on shard %d: read=%g corrupt=%g latency=%g seed=%d\n",
				*degradeShard, *faultRead, *faultCorrupt, *faultLatency, *faultSeed)
		}
		be = &clusterBackend{cl: cl, opts: queryOpts}
	} else {
		layout, ok := map[string]pathdb.Layout{
			"natural": pathdb.Natural, "contiguous": pathdb.Contiguous, "shuffled": pathdb.Shuffled,
		}[*layoutName]
		if !ok {
			fail("unknown -layout %q", *layoutName)
		}
		opts := pathdb.Options{Layout: layout, LayoutSeed: *seed, BufferPages: *buffer}
		var db *pathdb.DB
		switch {
		case *xmlFile != "":
			data, rerr := os.ReadFile(*xmlFile)
			if rerr != nil {
				fail("%v", rerr)
			}
			db, err = pathdb.LoadXML(data, opts)
		case *xmarkSF > 0:
			db, err = pathdb.GenerateXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts)
		default:
			fail("need -xml, -xmark or -url")
		}
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("document: %d pages\n", db.Pages())
		eng := db.NewEngine(pathdb.EngineConfig{MaxInFlight: *inflight, QueueDepth: *queue, Parallel: *parallel})
		db.ResetStats() // cold start after the cost model's offline pass
		if faultsOn {
			db.SetFaults(pathdb.FaultConfig{
				Seed:      *faultSeed,
				ReadError: *faultRead,
				Corrupt:   *faultCorrupt,
				Latency:   *faultLatency,
			})
			fmt.Printf("faults: read=%g corrupt=%g latency=%g seed=%d\n",
				*faultRead, *faultCorrupt, *faultLatency, *faultSeed)
		}
		be = &engineBackend{db: db, eng: eng, opts: queryOpts}
	}
	defer be.close()

	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *cpuprofile != "" {
		f, cerr := os.Create(*cpuprofile)
		if cerr != nil {
			fail("%v", cerr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fail("cpu profile: %v", perr)
		}
	}

	// Request i evaluates paths[i%len(paths)]; client c takes the requests
	// with i%clients == c. The multiset of executed queries is therefore
	// the same for every -clients value.
	samples := make([]sample, *requests)
	var shedTotal atomic.Int64
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wallStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < *requests; i += *clients {
				var (
					s    sample
					shed int64
					err  error
				)
				switch {
				case isWriteReq(i):
					s, shed, err = be.update()
				case *streamMode:
					s, shed, err = be.stream(paths[i%len(paths)])
				default:
					s, shed, err = be.do(paths[i%len(paths)])
				}
				if err != nil {
					fail("request %d: %v", i, err)
				}
				shedTotal.Add(shed)
				samples[i] = s
			}
		}(c)
	}
	wg.Wait()
	wallTotal := time.Since(wallStart)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	allocsPerOp := int64(ms1.Mallocs-ms0.Mallocs) / int64(*requests)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	virtTotal := be.virtualTotal()

	// Per-path counts over completed requests, self-checked for
	// consistency.
	counts := map[string]int{}
	countOK := true
	var timeouts, partials, degradedHits int64
	faultKinds := map[string]int64{}
	for _, s := range samples {
		if s.timedOut {
			timeouts++
			continue
		}
		if s.errKind != "" {
			faultKinds[s.errKind]++
			continue
		}
		if s.isWrite { // commits don't return result counts
			continue
		}
		if s.partial {
			// A degraded shard was excluded, so this count legitimately
			// misses that shard's entities; it would poison the
			// determinism self-check.
			partials++
			degradedHits += int64(s.degraded)
			continue
		}
		if prev, seen := counts[s.path]; seen && prev != s.count {
			fmt.Fprintf(os.Stderr, "xload: count(%s) varies between requests: %d vs %d\n", s.path, prev, s.count)
			countOK = false
		}
		counts[s.path] = s.count
	}
	for _, p := range sortedKeys(counts) {
		fmt.Printf("count(%s) = %d\n", p, counts[p])
	}

	// Partial (degraded-shard) results completed with real work done, so
	// they count toward throughput and latency; only the count self-check
	// above excludes them.
	var virtLat, wallLat, commitLat []float64
	var writes int64
	for _, s := range samples {
		if s.timedOut || s.errKind != "" {
			continue
		}
		if s.isWrite {
			writes++
			commitLat = append(commitLat, s.wall.Seconds())
			continue
		}
		virtLat = append(virtLat, s.virt.Seconds())
		wallLat = append(wallLat, s.wall.Seconds())
	}
	completed := len(wallLat)
	if completed == 0 {
		fail("every request timed out")
	}
	fmt.Printf("mode=%s clients=%d requests=%d strategy=%s mix=%s", mode, *clients, *requests, strat, *mixName)
	if writes > 0 {
		fmt.Printf(" writes=%d (write-frac %.2f)", writes, *writeFrac)
	}
	fmt.Println()
	fmt.Printf("throughput: %.2f q/s virtual (%d in %.3fs), %.1f q/s wall (%.3fs)\n",
		float64(completed)/virtTotal.Seconds(), completed, virtTotal.Seconds(),
		float64(completed)/wallTotal.Seconds(), wallTotal.Seconds())
	fmt.Printf("latency virtual [s]: %s\n", percentiles(virtLat))
	fmt.Printf("latency wall    [s]: %s\n", percentiles(wallLat))
	fmt.Printf("allocs/op: %d\n", allocsPerOp)
	if shedTotal.Load() > 0 || timeouts > 0 {
		fmt.Printf("shed retries=%d timeouts=%d\n", shedTotal.Load(), timeouts)
	}
	if len(faultKinds) > 0 {
		fmt.Printf("faulted: io=%d corrupt=%d\n", faultKinds["io"], faultKinds["corrupt"])
	}
	if partials > 0 {
		fmt.Printf("partial results=%d (degraded-shard faults absorbed: %d)\n", partials, degradedHits)
	}
	m, merr := be.engineMetrics()
	if merr != nil {
		fail("engine metrics: %v", merr)
	}
	fmt.Printf("engine: gangs=%d batched=%d/%d rejected=%d faulted=%d overhead=%v\n",
		m.Gangs, m.Batched, m.Submitted, m.Rejected, m.Faulted, m.OverheadV)

	// Per-shard slice of the run (sharded engine mode, or a sharded server
	// detected over /metrics).
	var perShard []bench.ShardLoadJSON
	shardCount := 0
	if sa, ok := be.(shardAware); ok && sa.shardCount() > 1 {
		shardCount = sa.shardCount()
		var perr error
		perShard, perr = sa.perShard(wallTotal)
		if perr != nil {
			fail("per-shard metrics: %v", perr)
		}
		for _, ps := range perShard {
			fmt.Printf("shard %d: %.1f q/s wall, completed=%d faulted=%d degraded_hits=%d\n",
				ps.Shard, ps.WallQPS, ps.Completed, ps.Faulted, ps.DegradedHits)
		}
	}
	var tm pathdb.TxnMetrics
	if writes > 0 {
		var terr error
		tm, terr = be.txnMetrics()
		if terr != nil {
			fail("txn metrics: %v", terr)
		}
		fmt.Printf("txn: commits=%d aborts=%d groups=%d max_group=%d flushes/commit=%.3f\n",
			tm.Commits, tm.Aborts, tm.Groups, tm.MaxGroup, tm.FlushesPerCommit)
		fmt.Printf("commit latency wall [s]: %s\n", percentiles(commitLat))
	}

	// Streamed runs add a dedicated time-to-first-result pass. TTFR is a
	// per-request property: in the closed loop above, the engine's
	// gang-sequential dispatch makes queue wait dominate both the first
	// and the last node, so contended TTFR cannot distinguish genuine
	// incremental delivery from buffer-then-replay. One client replaying
	// the read mix sequentially can — the drain percentiles below are the
	// same pass's full-drain wall times, so ttfr≪drain is the streaming
	// win and ttfr≈drain is a delivery regression.
	var ttfrLat, drainLat []float64
	if *streamMode {
		n := 2 * len(paths)
		if n < 32 {
			n = 32
		}
		if n > 96 {
			n = 96
		}
		for i := 0; i < n; i++ {
			s, _, serr := be.stream(paths[i%len(paths)])
			if serr != nil {
				fail("ttfr pass: %v", serr)
			}
			if s.timedOut || s.errKind != "" {
				continue
			}
			ttfrLat = append(ttfrLat, s.ttfr.Seconds())
			drainLat = append(drainLat, s.wall.Seconds())
		}
		if len(ttfrLat) > 0 {
			fmt.Printf("ttfr wall       [s]: %s (uncontended pass, %d requests)\n", percentiles(ttfrLat), len(ttfrLat))
			fmt.Printf("drain wall      [s]: %s\n", percentiles(drainLat))
		}
	}

	// -pred-compare: replay the branch mix — structural predicates over
	// wide candidate sets — under both predicate evaluators, at the same
	// client/parallel configuration as the main run. The access strategy is
	// pinned to Simple for both replays — the lowest, identical navigation
	// floor — so the comparison isolates the predicate evaluator, not the
	// I/O operator choice; a warm-up pass first, so both measured replays
	// run against the same buffer-pool and filter-set-cache state and
	// measure steady state.
	var predCmp *bench.PredCompareJSON
	if *predCompare {
		pc, ok := be.(predConfigurable)
		if !ok {
			fail("-pred-compare is not supported by this backend")
		}
		pc.setStrategy(pathdb.Simple)
		branchPaths := mixes["branch"]
		n := *requests
		replay := func(pe pathdb.PredEval) (float64, int64) {
			pc.setPredEval(pe)
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < *clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < n; i += *clients {
						if _, _, err := be.do(branchPaths[i%len(branchPaths)]); err != nil {
							fail("pred-compare request %d: %v", i, err)
						}
					}
				}(c)
			}
			wg.Wait()
			wall := time.Since(t0).Seconds()
			runtime.ReadMemStats(&ms1)
			return wall, int64(ms1.Mallocs-ms0.Mallocs) / int64(n)
		}
		// Warm-up, discarded: forced join seeds the epoch-keyed filter-set
		// cache, so the chooser prices the resident builds and both measured
		// replays run at steady state.
		replay(pathdb.PredJoin)
		nestedWall, nestedAllocs := replay(pathdb.PredNested)
		autoWall, autoAllocs := replay(pathdb.PredAuto) // chooser-picked
		pc.setPredEval(predEval)                        // restore the run's settings
		pc.setStrategy(strat)
		predCmp = &bench.PredCompareJSON{
			Mix:          "branch",
			Requests:     n,
			NestedWallS:  nestedWall,
			JoinWallS:    autoWall,
			NestedAllocs: nestedAllocs,
			JoinAllocs:   autoAllocs,
		}
		if autoWall > 0 {
			predCmp.Speedup = nestedWall / autoWall
		}
		fmt.Printf("pred-compare (branch mix, %d requests): nested %.3fs, chooser-picked %.3fs (%.2fx), allocs/op %d vs %d\n",
			n, nestedWall, autoWall, predCmp.Speedup, nestedAllocs, autoAllocs)
	}

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fail("%v", merr)
		}
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			fail("heap profile: %v", perr)
		}
		f.Close()
	}
	if *mutexprofile != "" {
		f, merr := os.Create(*mutexprofile)
		if merr != nil {
			fail("%v", merr)
		}
		if perr := pprof.Lookup("mutex").WriteTo(f, 0); perr != nil {
			fail("mutex profile: %v", perr)
		}
		f.Close()
	}
	if *jsonDir != "" {
		sort.Float64s(virtLat)
		sort.Float64s(wallLat)
		sort.Float64s(ttfrLat)
		sort.Float64s(drainLat)
		sort.Float64s(commitLat)
		pick := func(xs []float64, p float64) float64 {
			if len(xs) == 0 {
				return 0
			}
			return xs[int(p*float64(len(xs)-1))]
		}
		name := "xload"
		if shardCount > 1 {
			name = "xload_sharded"
		}
		jerr := bench.WriteLoadJSON(*jsonDir, name, bench.LoadJSON{
			Mode:             mode,
			Clients:          *clients,
			Requests:         *requests,
			Mix:              *mixName,
			Strategy:         strat.String(),
			Preds:            predEval.String(),
			PredCompare:      predCmp,
			Parallel:         effParallel,
			VirtualSec:       virtTotal.Seconds(),
			WallSec:          wallTotal.Seconds(),
			VirtualQPS:       float64(completed) / virtTotal.Seconds(),
			WallQPS:          float64(completed) / wallTotal.Seconds(),
			AllocsPerOp:      allocsPerOp,
			P50WallSec:       pick(wallLat, 0.50),
			P99WallSec:       pick(wallLat, 0.99),
			P50VirtSec:       pick(virtLat, 0.50),
			P99VirtSec:       pick(virtLat, 0.99),
			Stream:           *streamMode,
			P50TTFRSec:       pick(ttfrLat, 0.50),
			P99TTFRSec:       pick(ttfrLat, 0.99),
			P50DrainSec:      pick(drainLat, 0.50),
			P99DrainSec:      pick(drainLat, 0.99),
			Submitted:        m.Submitted,
			Rejected:         m.Rejected,
			Gangs:            m.Gangs,
			Batched:          m.Batched,
			ShedRetries:      shedTotal.Load(),
			Timeouts:         timeouts,
			WriteFrac:        *writeFrac,
			Writes:           writes,
			Commits:          tm.Commits,
			Aborts:           tm.Aborts,
			Groups:           tm.Groups,
			FlushesPerCommit: tm.FlushesPerCommit,
			P50CommitSec:     pick(commitLat, 0.50),
			P99CommitSec:     pick(commitLat, 0.99),
			Shards:           shardCount,
			PartialResults:   partials,
			DegradedHits:     degradedHits,
			PerShard:         perShard,
		})
		if jerr != nil {
			fail("%v", jerr)
		}
	}

	if !countOK {
		os.Exit(1)
	}
}

// engineBackend drives an in-process pathdb.Engine (the original mode).
// The run's whole query configuration — strategy, ordering, per-request
// budget — travels in one pathdb.QueryOptions.
type engineBackend struct {
	db   *pathdb.DB
	eng  *pathdb.Engine
	opts pathdb.QueryOptions

	once sync.Once
	ses  *pathdb.Session

	rootOnce sync.Once
	root     pathdb.Node
	rootErr  error
}

// classify maps a failed request onto a sample: timeouts and typed storage
// faults are recorded outcomes, anything else aborts the run.
func classify(path string, err error, t0 time.Time, isWrite bool) (sample, bool) {
	if errors.Is(err, pathdb.ErrTimeout) {
		return sample{path: path, wall: time.Since(t0), timedOut: true, isWrite: isWrite}, true
	}
	if k := pathdb.KindOf(err); k == pathdb.KindIO || k == pathdb.KindCorrupt {
		return sample{path: path, wall: time.Since(t0), errKind: k.String(), isWrite: isWrite}, true
	}
	return sample{}, false
}

func (b *engineBackend) session() *pathdb.Session {
	b.once.Do(func() { b.ses = b.eng.NewSession() })
	return b.ses // sessions are safe for concurrent use
}

func (b *engineBackend) do(path string) (sample, int64, error) {
	t0 := time.Now()
	res, err := b.session().Do(context.Background(), path, b.opts)
	if err != nil {
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	return sample{path: path, count: res.Count(), virt: res.VirtualLatency, wall: time.Since(t0)}, 0, nil
}

// stream drains a cursor, timing the first Next — the in-process
// time-to-first-result, with no HTTP framing in the way.
func (b *engineBackend) stream(path string) (sample, int64, error) {
	t0 := time.Now()
	cur, err := b.session().Stream(context.Background(), path, b.opts)
	if err != nil {
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	defer cur.Close()
	var ttfr time.Duration
	for cur.Next() {
		if cur.Count() == 1 {
			ttfr = time.Since(t0)
		}
	}
	if err := cur.Err(); err != nil {
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	wall := time.Since(t0)
	var virt stats.Ticks
	if res, ok := cur.Summary(); ok {
		virt = res.VirtualLatency
	}
	return sample{path: path, count: cur.Count(), virt: virt, wall: wall, ttfr: ttfr}, 0, nil
}

// update commits one <xloadpad/> insert under the document root through
// the engine's write admission; wall is the full commit latency including
// the group-commit window.
func (b *engineBackend) update() (sample, int64, error) {
	b.rootOnce.Do(func() {
		res, err := b.db.Query("/site")
		if err != nil {
			b.rootErr = err
			return
		}
		nodes := res.Nodes()
		if len(nodes) != 1 {
			b.rootErr = fmt.Errorf("expected one /site root, found %d", len(nodes))
			return
		}
		b.root = nodes[0]
	})
	if b.rootErr != nil {
		return sample{}, 0, b.rootErr
	}
	t0 := time.Now()
	err := b.eng.Update(func(tx *pathdb.Tx) error {
		_, ierr := tx.InsertXML(b.root, "<xloadpad/>")
		return ierr
	})
	if err != nil {
		if k := pathdb.KindOf(err); k == pathdb.KindIO || k == pathdb.KindCorrupt {
			return sample{isWrite: true, wall: time.Since(t0), errKind: k.String()}, 0, nil
		}
		return sample{}, 0, err
	}
	return sample{isWrite: true, wall: time.Since(t0)}, 0, nil
}

func (b *engineBackend) setPredEval(pe pathdb.PredEval) { b.opts.PredEval = pe }

func (b *engineBackend) setStrategy(st pathdb.Strategy) { b.opts.Strategy = st }

func (b *engineBackend) virtualTotal() stats.Ticks { return b.db.CostReport().Total }

func (b *engineBackend) engineMetrics() (pathdb.EngineMetrics, error) { return b.eng.Metrics(), nil }

func (b *engineBackend) txnMetrics() (pathdb.TxnMetrics, error) { return b.db.TxnMetrics(), nil }

func (b *engineBackend) close() { b.eng.Close() }

// clusterBackend drives the scatter-gather coordinator over N independent
// volumes in-process — the sharded counterpart of engineBackend. Counts
// come back merged cluster-wide, so the per-path self-check holds at any
// shard count; a request that lost a degraded shard is marked partial and
// skipped by the check instead.
type clusterBackend struct {
	cl   *shard.Cluster
	opts pathdb.QueryOptions
}

// ctx applies the run's per-request budget to operations that take a bare
// context (cluster writes); queries carry the budget inside opts.Timeout.
func (b *clusterBackend) ctx() (context.Context, context.CancelFunc) {
	if b.opts.Timeout > 0 {
		return context.WithTimeout(context.Background(), b.opts.Timeout)
	}
	return context.Background(), func() {}
}

func (b *clusterBackend) do(path string) (sample, int64, error) {
	t0 := time.Now()
	m, err := b.cl.Query(context.Background(), path, b.opts, false)
	if err != nil {
		// classify covers beyond-quorum storage faults (or PolicyAll): the
		// whole request failed.
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	// The shards run in parallel; the request's virtual latency is the
	// slowest shard's.
	var virt stats.Ticks
	for _, ps := range m.PerShard {
		if !ps.Failed && ps.VirtLat > virt {
			virt = ps.VirtLat
		}
	}
	return sample{
		path:     path,
		count:    m.Count,
		virt:     virt,
		wall:     time.Since(t0),
		partial:  m.Partial,
		degraded: len(m.Degraded),
	}, 0, nil
}

// stream drains the cluster's k-way merge cursor, timing the first merged
// node — cross-shard time-to-first-result without HTTP framing.
func (b *clusterBackend) stream(path string) (sample, int64, error) {
	t0 := time.Now()
	sc, err := b.cl.Stream(context.Background(), path, b.opts)
	if err != nil {
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	defer sc.Close()
	var ttfr time.Duration
	for sc.Next() {
		if sc.Count() == 1 {
			ttfr = time.Since(t0)
		}
	}
	if err := sc.Err(); err != nil {
		if s, ok := classify(path, err, t0, false); ok {
			return s, 0, nil
		}
		return sample{}, 0, err
	}
	wall := time.Since(t0)
	s := sample{path: path, count: sc.Count(), wall: wall, ttfr: ttfr}
	if sum, ok := sc.Summary(); ok {
		s.partial = sum.Partial
		s.degraded = len(sum.Degraded)
		for _, ps := range sum.PerShard {
			if !ps.Failed && ps.VirtLat > s.virt {
				s.virt = ps.VirtLat
			}
		}
	}
	return s, 0, nil
}

func (b *clusterBackend) update() (sample, int64, error) {
	ctx, cancel := b.ctx()
	defer cancel()
	t0 := time.Now()
	_, err := b.cl.Insert(ctx, "/site", "<xloadpad/>")
	if err != nil {
		if errors.Is(err, pathdb.ErrTimeout) {
			return sample{isWrite: true, wall: time.Since(t0), timedOut: true}, 0, nil
		}
		if k := pathdb.KindOf(err); k == pathdb.KindIO || k == pathdb.KindCorrupt {
			return sample{isWrite: true, wall: time.Since(t0), errKind: k.String()}, 0, nil
		}
		return sample{}, 0, err
	}
	return sample{isWrite: true, wall: time.Since(t0)}, 0, nil
}

func (b *clusterBackend) setPredEval(pe pathdb.PredEval) { b.opts.PredEval = pe }

func (b *clusterBackend) setStrategy(st pathdb.Strategy) { b.opts.Strategy = st }

func (b *clusterBackend) virtualTotal() stats.Ticks {
	var total stats.Ticks
	for _, db := range b.cl.Set().Shards {
		total += db.CostReport().Total
	}
	return total
}

func (b *clusterBackend) engineMetrics() (pathdb.EngineMetrics, error) {
	var sum pathdb.EngineMetrics
	for _, sm := range b.cl.Metrics() {
		sum.Submitted += sm.Engine.Submitted
		sum.Rejected += sm.Engine.Rejected
		sum.Completed += sm.Engine.Completed
		sum.Cancelled += sm.Engine.Cancelled
		sum.Gangs += sm.Engine.Gangs
		sum.Batched += sm.Engine.Batched
		sum.Faulted += sm.Engine.Faulted
		sum.Updates += sm.Engine.Updates
		sum.OverheadV += sm.Engine.OverheadV
	}
	return sum, nil
}

func (b *clusterBackend) txnMetrics() (pathdb.TxnMetrics, error) {
	var sum pathdb.TxnMetrics
	for _, sm := range b.cl.Metrics() {
		sum.Commits += sm.Txn.Commits
		sum.Aborts += sm.Txn.Aborts
		sum.Groups += sm.Txn.Groups
		sum.Flushes += sm.Txn.Flushes
		if sm.Txn.MaxGroup > sum.MaxGroup {
			sum.MaxGroup = sm.Txn.MaxGroup
		}
	}
	if sum.Commits > 0 {
		sum.FlushesPerCommit = float64(sum.Flushes) / float64(sum.Commits)
	}
	return sum, nil
}

func (b *clusterBackend) shardCount() int { return b.cl.Shards() }

func (b *clusterBackend) perShard(wall time.Duration) ([]bench.ShardLoadJSON, error) {
	out := make([]bench.ShardLoadJSON, 0, b.cl.Shards())
	for _, sm := range b.cl.Metrics() {
		out = append(out, bench.ShardLoadJSON{
			Shard:        sm.Shard,
			WallQPS:      float64(sm.Engine.Completed) / wall.Seconds(),
			Submitted:    sm.Engine.Submitted,
			Completed:    sm.Engine.Completed,
			Faulted:      sm.Engine.Faulted,
			DegradedHits: sm.DegradedHits,
		})
	}
	return out, nil
}

func (b *clusterBackend) close() { b.cl.Close() }

// httpBackend drives a running xserved over real sockets. It detects a
// sharded server (router mode) from the pathdb_cluster_shards gauge and
// then reads the labeled per-shard /metrics rollup: counters are summed
// across shard labels, which reduces to the plain series when the server
// is single-volume.
type httpBackend struct {
	base   string
	client *http.Client
	opts   pathdb.QueryOptions

	shards int         // from pathdb_cluster_shards; 0 for a single-volume server
	virt0  stats.Ticks // virtual clock at start, from /metrics
}

func newHTTPBackend(base string, opts pathdb.QueryOptions) *httpBackend {
	b := &httpBackend{
		base:   base,
		client: &http.Client{},
		opts:   opts,
	}
	m, err := b.scrape()
	if err != nil {
		fail("cannot reach %s: %v", base, err)
	}
	b.shards = int(m["pathdb_cluster_shards"])
	// Sharded: per-shard virtual clocks are independent domains; their sum
	// is still a consistent "work done" baseline for throughput deltas.
	b.virt0 = stats.Ticks(sumOf(m, "pathdb_ledger_now_virtual_seconds_total") * 1e9)
	return b
}

// retryAfter returns how long to back off before re-offering a shed
// request: the server's Retry-After, capped at 50ms so the closed loop
// keeps offering load.
func retryAfter(resp *http.Response) time.Duration {
	wait := 5 * time.Millisecond
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		if d := time.Duration(ra) * time.Second; d < 50*time.Millisecond {
			wait = d
		} else {
			wait = 50 * time.Millisecond
		}
	}
	return wait
}

// queryBody marshals the run's QueryOptions into one /v1/query request.
func (b *httpBackend) queryBody(path string) ([]byte, error) {
	req := map[string]any{"path": path}
	if b.opts.Strategy != pathdb.Auto {
		req["strategy"] = b.opts.Strategy.String()
	}
	if b.opts.Timeout > 0 {
		req["timeout_ms"] = b.opts.Timeout.Milliseconds()
	}
	if b.opts.Sorted {
		req["sorted"] = true
	}
	if b.opts.PredEval != pathdb.PredAuto {
		req["preds"] = b.opts.PredEval.String()
	}
	return json.Marshal(req)
}

// do POSTs one query. 503 (shedding or drain) and 429 (per-tenant quota,
// router mode) are retried after the server's Retry-After (capped at 50ms
// so the closed loop keeps offering load); 504 marks the sample timed out.
func (b *httpBackend) do(path string) (sample, int64, error) {
	body, err := b.queryBody(path)
	if err != nil {
		return sample{}, 0, err
	}

	var shed int64
	t0 := time.Now()
	for {
		resp, err := b.client.Post(b.base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{}, shed, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return sample{}, shed, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var qr struct {
				Count            int   `json:"count"`
				VirtualLatencyNs int64 `json:"virtual_latency_ns"` // single-volume server
				CostVNs          int64 `json:"cost_v_ns"`          // sharded router
				Partial          bool  `json:"partial"`
				Degraded         []struct {
					Shard int `json:"shard"`
				} `json:"degraded"`
			}
			if err := json.Unmarshal(data, &qr); err != nil {
				return sample{}, shed, fmt.Errorf("bad response: %v\n%s", err, data)
			}
			virt := qr.VirtualLatencyNs
			if virt == 0 {
				virt = qr.CostVNs
			}
			return sample{
				path:     path,
				count:    qr.Count,
				virt:     stats.Ticks(virt),
				wall:     time.Since(t0),
				partial:  qr.Partial,
				degraded: len(qr.Degraded),
			}, shed, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			shed++
			time.Sleep(retryAfter(resp))
		case http.StatusGatewayTimeout:
			return sample{path: path, wall: time.Since(t0), timedOut: true}, shed, nil
		default:
			return sample{}, shed, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
	}
}

// streamRecord is one NDJSON line of a /v1/query stream: node lines carry
// ord/name, the trailing summary line (Summary true) carries the totals.
type streamRecord struct {
	Summary          bool  `json:"summary"`
	Count            int   `json:"count"`
	VirtualLatencyNs int64 `json:"virtual_latency_ns"`
	CostVNs          int64 `json:"cost_v_ns"`
	Partial          bool  `json:"partial"`
	Degraded         []struct {
		Shard int `json:"shard"`
	} `json:"degraded"`
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// stream POSTs one query negotiating NDJSON delivery and scans the response
// line by line; ttfr is the time to the first node line on the wire. The
// trailing summary line supplies count and cost; a mid-stream failure
// arrives there too (the status line was long since 200). A stream that
// ends without a summary line was aborted by the server.
func (b *httpBackend) stream(path string) (sample, int64, error) {
	body, err := b.queryBody(path)
	if err != nil {
		return sample{}, 0, err
	}

	var shed int64
	t0 := time.Now()
	for {
		req, err := http.NewRequest(http.MethodPost, b.base+"/v1/query", bytes.NewReader(body))
		if err != nil {
			return sample{}, shed, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := b.client.Do(req)
		if err != nil {
			return sample{}, shed, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			s, err := b.scanStream(resp.Body, path, t0)
			resp.Body.Close()
			return s, shed, err
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			resp.Body.Close()
			shed++
			time.Sleep(retryAfter(resp))
		case http.StatusGatewayTimeout:
			resp.Body.Close()
			return sample{path: path, wall: time.Since(t0), timedOut: true}, shed, nil
		default:
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return sample{}, shed, fmt.Errorf("stream status %d: %s", resp.StatusCode, data)
		}
	}
}

func (b *httpBackend) scanStream(body io.Reader, path string, t0 time.Time) (sample, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var (
		ttfr   time.Duration
		lines  int
		sum    streamRecord
		sawSum bool
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec streamRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return sample{}, fmt.Errorf("bad stream line: %v\n%s", err, line)
		}
		if rec.Summary {
			sum, sawSum = rec, true
			break
		}
		lines++
		if lines == 1 {
			ttfr = time.Since(t0)
		}
	}
	if err := sc.Err(); err != nil {
		return sample{}, err
	}
	if !sawSum {
		return sample{}, fmt.Errorf("stream for %s aborted: no summary line after %d nodes", path, lines)
	}
	wall := time.Since(t0)
	if sum.Error != "" {
		switch sum.Kind {
		case "timeout":
			return sample{path: path, wall: wall, timedOut: true}, nil
		case "io", "corrupt":
			return sample{path: path, wall: wall, errKind: sum.Kind}, nil
		default:
			return sample{}, fmt.Errorf("stream for %s failed: %s (%s)", path, sum.Error, sum.Kind)
		}
	}
	virt := sum.VirtualLatencyNs
	if virt == 0 {
		virt = sum.CostVNs
	}
	return sample{
		path:     path,
		count:    sum.Count,
		virt:     stats.Ticks(virt),
		wall:     wall,
		ttfr:     ttfr,
		partial:  sum.Partial,
		degraded: len(sum.Degraded),
	}, nil
}

// update POSTs one <xloadpad/> insert to /v1/update, with the same
// 503-retry and 504-timeout handling as do.
func (b *httpBackend) update() (sample, int64, error) {
	req := map[string]any{"op": "insert", "parent": "/site", "xml": "<xloadpad/>"}
	if b.opts.Timeout > 0 {
		req["timeout_ms"] = b.opts.Timeout.Milliseconds()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return sample{}, 0, err
	}

	var shed int64
	t0 := time.Now()
	for {
		resp, err := b.client.Post(b.base+"/v1/update", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{}, shed, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return sample{}, shed, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return sample{isWrite: true, wall: time.Since(t0)}, shed, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			shed++
			time.Sleep(retryAfter(resp))
		case http.StatusGatewayTimeout:
			return sample{isWrite: true, wall: time.Since(t0), timedOut: true}, shed, nil
		default:
			return sample{}, shed, fmt.Errorf("update status %d: %s", resp.StatusCode, data)
		}
	}
}

func (b *httpBackend) setPredEval(pe pathdb.PredEval) { b.opts.PredEval = pe }

func (b *httpBackend) setStrategy(st pathdb.Strategy) { b.opts.Strategy = st }

func (b *httpBackend) txnMetrics() (pathdb.TxnMetrics, error) {
	m, err := b.scrape()
	if err != nil {
		return pathdb.TxnMetrics{}, err
	}
	t := pathdb.TxnMetrics{
		Commits:          uint64(sumOf(m, "pathdb_txn_commits_total")),
		Aborts:           uint64(sumOf(m, "pathdb_txn_aborts_total")),
		Groups:           uint64(sumOf(m, "pathdb_txn_groups_total")),
		Flushes:          uint64(sumOf(m, "pathdb_txn_wal_flushes_total")),
		MaxGroup:         uint64(maxOf(m, "pathdb_txn_max_group_size")),
		Epoch:            uint64(maxOf(m, "pathdb_txn_epoch")),
		FlushesPerCommit: m["pathdb_txn_flushes_per_commit"],
	}
	// The router exposes per-shard flush and commit counters but no
	// derived ratio; recompute it from the sums.
	if t.FlushesPerCommit == 0 && t.Commits > 0 {
		t.FlushesPerCommit = float64(t.Flushes) / float64(t.Commits)
	}
	return t, nil
}

func (b *httpBackend) virtualTotal() stats.Ticks {
	m, err := b.scrape()
	if err != nil {
		fail("metrics: %v", err)
	}
	return stats.Ticks(sumOf(m, "pathdb_ledger_now_virtual_seconds_total")*1e9) - b.virt0
}

func (b *httpBackend) engineMetrics() (pathdb.EngineMetrics, error) {
	m, err := b.scrape()
	if err != nil {
		return pathdb.EngineMetrics{}, err
	}
	return pathdb.EngineMetrics{
		Submitted: int64(sumOf(m, "pathdb_engine_submitted_total")),
		Rejected:  int64(sumOf(m, "pathdb_engine_rejected_total")),
		Completed: int64(sumOf(m, "pathdb_engine_completed_total")),
		Cancelled: int64(sumOf(m, "pathdb_engine_cancelled_total")),
		Gangs:     int64(sumOf(m, "pathdb_engine_gangs_total")),
		Batched:   int64(sumOf(m, "pathdb_engine_batched_total")),
		Faulted:   int64(sumOf(m, "pathdb_engine_faulted_total")),
		OverheadV: stats.Ticks(sumOf(m, "pathdb_engine_overhead_virtual_seconds_total") * 1e9),
	}, nil
}

func (b *httpBackend) shardCount() int {
	if b.shards > 1 {
		return b.shards
	}
	return 1
}

// perShard reconstructs each shard's slice of the run from the labeled
// /metrics rollup — the networked equivalent of clusterBackend.perShard.
func (b *httpBackend) perShard(wall time.Duration) ([]bench.ShardLoadJSON, error) {
	m, err := b.scrape()
	if err != nil {
		return nil, err
	}
	out := make([]bench.ShardLoadJSON, 0, b.shards)
	for i := 0; i < b.shards; i++ {
		l := labelKey("shard", strconv.Itoa(i))
		completed := m["pathdb_engine_completed_total"+l]
		out = append(out, bench.ShardLoadJSON{
			Shard:        i,
			WallQPS:      completed / wall.Seconds(),
			Submitted:    int64(m["pathdb_engine_submitted_total"+l]),
			Completed:    int64(completed),
			Faulted:      int64(m["pathdb_engine_faulted_total"+l]),
			DegradedHits: int64(m["pathdb_shard_degraded_hits_total"+l]),
		})
	}
	return out, nil
}

func (b *httpBackend) close() {}

var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// scrape fetches and parses the server's Prometheus text exposition.
// Labeled samples (router mode) are keyed by name plus their literal
// label set, e.g. `pathdb_engine_completed_total{shard="2"}`.
func (b *httpBackend) scrape() (map[string]float64, error) {
	resp, err := b.client.Get(b.base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if m := promSample.FindStringSubmatch(line); m != nil {
			if v, err := strconv.ParseFloat(m[3], 64); err == nil {
				out[m[1]+m[2]] = v
			}
		}
	}
	return out, nil
}

// labelKey renders a one-label sample suffix exactly as scrape keys it.
func labelKey(name, value string) string {
	return `{` + name + `="` + value + `"}`
}

// sumOf totals a series across its label sets: the plain sample plus any
// labeled samples of the same name. For a single-volume server this is
// just the plain sample; for a sharded one, the sum over shards.
func sumOf(m map[string]float64, name string) float64 {
	total := m[name]
	for k, v := range m {
		if len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '{' {
			total += v
		}
	}
	return total
}

// maxOf is sumOf's max-reduction counterpart, for gauges where summing
// across shards is meaningless (epochs, max group sizes).
func maxOf(m map[string]float64, name string) float64 {
	best := m[name]
	for k, v := range m {
		if len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '{' && v > best {
			best = v
		}
	}
	return best
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// percentiles renders p50/p90/p99/max of xs.
func percentiles(xs []float64) string {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pick := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p50=%.4f p90=%.4f p99=%.4f max=%.4f",
		pick(0.50), pick(0.90), pick(0.99), sorted[len(sorted)-1])
	return b.String()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xload: "+format+"\n", args...)
	os.Exit(1)
}
