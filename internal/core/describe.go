package core

import (
	"fmt"
	"strings"

	"pathdb/internal/xmltree"
)

// Describe renders the physical operator tree of the plan, one operator
// per line, producer-first — the EXPLAIN output of this engine. Example:
//
//	XAssembly(|π|=2, feedback→XSchedule)
//	  XStep₂(descendant::item)
//	    XStep₁(child::regions)
//	      XSchedule(k=100, speculative=false)
//	        Context(1 node)
func (p *Plan) Describe(dict *xmltree.Dictionary) string {
	var b strings.Builder
	describeOp(&b, p.root, dict, 0)
	return b.String()
}

func describeOp(b *strings.Builder, op Operator, dict *xmltree.Dictionary, depth int) {
	indent := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *SortByDocumentOrder:
		fmt.Fprintf(b, "%sSortByDocumentOrder\n", indent)
		describeOp(b, o.input, dict, depth+1)
	case *Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		describeOp(b, o.input, dict, depth+1)
	case *XAssembly:
		feedback := "none (scan plan)"
		if o.sched != nil {
			feedback = "XSchedule queue"
		}
		extra := ""
		if o.FirstStepAll {
			extra = ", //-optimisation"
		}
		fmt.Fprintf(b, "%sXAssembly(|π|=%d, feedback→%s%s)\n", indent, o.pathLen, feedback, extra)
		describeOp(b, o.input, dict, depth+1)
	case *PredFilter:
		fmt.Fprintf(b, "%sPredFilter(step %d, %d predicates)\n", indent, o.i, len(o.preds))
		describeOp(b, o.input, dict, depth+1)
	case *XJoin:
		fmt.Fprintf(b, "%sXJoin(step %d, %d predicates, structural semi-join)\n", indent, o.i, len(o.preds))
		describeOp(b, o.input, dict, depth+1)
	case *XStep:
		mode := ""
		if o.CrossBorders {
			mode = ", unnest-map"
		}
		fmt.Fprintf(b, "%sXStep%s(%s%s)\n", indent, subscript(o.i), o.step.Render(dict), mode)
		describeOp(b, o.input, dict, depth+1)
	case *XSchedule:
		fmt.Fprintf(b, "%sXSchedule(k=%d, speculative=%v)\n", indent, o.K, o.Speculative)
		describeOp(b, o.producer, dict, depth+1)
	case *XScan:
		fmt.Fprintf(b, "%sXScan(%d clusters, sequential)\n", indent, o.n)
		describeOp(b, o.producer, dict, depth+1)
	case *ContextOp:
		fmt.Fprintf(b, "%sContext(%d nodes)\n", indent, len(o.ids))
	default:
		fmt.Fprintf(b, "%s%T\n", indent, op)
	}
}

// subscript renders a step number with Unicode subscript digits.
func subscript(i int) string {
	const digits = "₀₁₂₃₄₅₆₇₈₉"
	if i == 0 {
		return "₀"
	}
	var out []rune
	for i > 0 {
		d := i % 10
		out = append([]rune{[]rune(digits)[d]}, out...)
		i /= 10
	}
	return string(out)
}
