package shard

import (
	"container/heap"
	"context"

	"pathdb"
)

// StreamSummary is the trailing summary of a streamed scatter — what the
// buffered Merged reports, minus the node list (the nodes went through the
// cursor).
type StreamSummary struct {
	// Count is how many merged nodes the cursor yielded (spine replicas
	// counted once). For a Limit-capped stream it is the cap.
	Count int
	// SpineMatches is how many matches fall on the replicated spine —
	// the probe result the merge deduplicates replicas against.
	SpineMatches int
	// PerShard has one entry per shard that participated; Count there is
	// the number of nodes the shard fed into the merge before dedup.
	PerShard []ShardStat
	// Degraded lists shards lost to tolerable storage faults; Partial is
	// true when at least one was dropped mid-merge.
	Degraded []ShardFailure
	Partial  bool
}

// StreamCursor is a streaming k-way merge over per-shard cursors: nodes
// surface in global document order as the shards produce them, and the
// coordinator holds only the heap of stream heads plus the spine probe's
// order-key set — never the merged result. Spine replicas (identical
// order keys on every answering shard) are deduplicated on the fly,
// keeping the lowest answering shard's copy; distinct entities that
// coincide on a local order key across shards are NOT spine replicas and
// all surface, in shard order — exactly the buffered merge's semantics,
// which is why the probe against the spine volume is required rather
// than deduplicating on order-key equality alone.
//
// Close is mandatory and idempotent; it closes every shard cursor, which
// cancels their queries and withdraws in-flight prefetches.
//
// A StreamCursor is not safe for concurrent use.
type StreamCursor struct {
	c      *Cluster
	cancel context.CancelFunc
	limit  int

	h       mergeHeap
	streams []*shardStream

	// spineOrds is the replicated spine's order-key set for this path;
	// only these keys deduplicate (the spine volume is a few pages, so
	// the probe is cheap relative to any scatter).
	spineOrds    map[string]bool
	spineMatches int

	node     ShardNode
	lastOrd  string
	hasLast  bool
	yielded  int
	failures []ShardFailure
	stats    []ShardStat

	done   bool
	closed bool
	err    error
	sum    *StreamSummary
}

// shardStream is one shard's contribution to the merge.
type shardStream struct {
	shard  int
	cur    *pathdb.Cursor
	count  int // nodes fed into the merge
	closed bool
}

// mergeEntry is one stream head waiting in the heap.
type mergeEntry struct {
	node ShardNode
	src  *shardStream
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(a, b int) bool {
	if d := pathdb.CompareDocOrder(h[a].node.Node, h[b].node.Node); d != 0 {
		return d < 0
	}
	return h[a].node.Shard < h[b].node.Shard
}
func (h mergeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Stream fans path across every shard as sorted per-shard streams and
// returns a cursor merging them in global document order. Admission is
// non-blocking per shard (an overloaded shard fails the open, like the
// buffered scatter's TryDo); the failure policy applies both at open and
// mid-merge — under PolicyQuorum a shard lost to a storage fault mid-way
// is dropped from the heap (its already-merged prefix stands, and the
// trailing summary reports it degraded), under PolicyAll any failure
// aborts the stream.
//
// opts.Sorted is implied (the merge requires per-shard document order);
// opts.Limit caps the merged sequence, and is also pushed down to each
// shard — the global first N in document order draws at most N from any
// single shard.
func (c *Cluster) Stream(ctx context.Context, path string, opts pathdb.QueryOptions) (*StreamCursor, error) {
	opts.Sorted = true
	sctx, cancel := context.WithCancel(ctx)
	sc := &StreamCursor{c: c, cancel: cancel, limit: opts.Limit}

	// Spine probe: the replica dedup below keys on the spine's order-key
	// set, exactly like the buffered merge (order-key equality alone is
	// not replication — distinct entities on different shards may share a
	// local key). The probe must see every spine match, so the caller's
	// Limit does not apply to it.
	if c.spineSes != nil {
		popts := opts
		popts.Limit = 0
		res, err := c.spineSes.Do(sctx, path, popts)
		if err != nil {
			sc.close()
			return nil, err
		}
		sc.spineMatches = res.Count()
		sc.spineOrds = make(map[string]bool, res.Count())
		for _, sn := range res.Nodes {
			sc.spineOrds[sn.OrdPath()] = true
		}
	}

	for i := range c.sessions {
		cur, err := c.sessions[i].TryStream(sctx, path, opts)
		if err != nil {
			if tolerable(err) && c.cfg.Policy == PolicyQuorum {
				sc.failures = append(sc.failures, ShardFailure{Shard: i, Kind: pathdb.KindOf(err), Err: err})
				c.degradedHits[i].Add(1)
				continue
			}
			sc.close()
			return nil, err
		}
		sc.streams = append(sc.streams, &shardStream{shard: i, cur: cur})
	}
	if len(c.sessions)-len(sc.failures) < c.cfg.Quorum {
		qerr := &QuorumError{
			Healthy:  len(c.sessions) - len(sc.failures),
			Needed:   c.cfg.Quorum,
			Failures: sc.failures,
		}
		sc.close()
		return nil, qerr
	}

	// Prime the heap with each stream's head. The first merged node needs
	// every head anyway (it is their minimum), so this is the stream's
	// genuine time-to-first-result, not an implementation stall.
	for _, s := range sc.streams {
		if err := sc.advance(s); err != nil {
			sc.close()
			return nil, err
		}
	}
	return sc, nil
}

// advance pulls the next node from s, pushing it on the heap; a drained
// stream is settled (summary harvested, cursor closed) and a failed one is
// classified under the policy. The returned error is fatal to the merge.
func (sc *StreamCursor) advance(s *shardStream) error {
	if s.cur.Next() {
		s.count++
		heap.Push(&sc.h, mergeEntry{node: ShardNode{Shard: s.shard, Node: s.cur.Node()}, src: s})
		return nil
	}
	if err := s.cur.Err(); err != nil {
		sc.settle(s)
		if tolerable(err) && sc.c.cfg.Policy == PolicyQuorum {
			sc.failures = append(sc.failures, ShardFailure{Shard: s.shard, Kind: pathdb.KindOf(err), Err: err})
			sc.c.degradedHits[s.shard].Add(1)
			if len(sc.c.sessions)-len(sc.failures) < sc.c.cfg.Quorum {
				return &QuorumError{
					Healthy:  len(sc.c.sessions) - len(sc.failures),
					Needed:   sc.c.cfg.Quorum,
					Failures: sc.failures,
				}
			}
			return nil
		}
		return err
	}
	// Clean exhaustion: harvest the shard's execution stats.
	if res, ok := s.cur.Summary(); ok {
		sc.stats = append(sc.stats, ShardStat{
			Shard:    s.shard,
			Count:    s.count,
			Strategy: res.Strategy,
			Shared:   res.Shared,
			CostV:    res.CostV,
			VirtLat:  res.VirtualLatency,
			WallExec: res.WallExec.Nanoseconds(),
		})
	}
	sc.settle(s)
	return nil
}

// settle closes one shard cursor (idempotent).
func (sc *StreamCursor) settle(s *shardStream) {
	if !s.closed {
		s.closed = true
		s.cur.Close()
	}
}

// Next advances the merge to the next node in global document order,
// reporting false on exhaustion, failure, or the Limit cap. Err
// distinguishes afterwards.
func (sc *StreamCursor) Next() bool {
	if sc.done || sc.closed {
		return false
	}
	for {
		if sc.h.Len() == 0 {
			sc.finish()
			return false
		}
		e := heap.Pop(&sc.h).(mergeEntry)
		if err := sc.advance(e.src); err != nil {
			sc.fail(err)
			return false
		}
		// Spine replicas carry identical order keys on every answering
		// shard; the heap (order key, then shard) pops the lowest shard's
		// copy first, so an equal-key successor on a spine key is a
		// replica to drop. Equal keys off the spine are distinct entities
		// and all surface (the heap's shard tiebreak orders them).
		ord := e.node.Node.OrdPath()
		if sc.hasLast && ord == sc.lastOrd && sc.spineOrds[ord] {
			continue
		}
		sc.lastOrd, sc.hasLast = ord, true
		sc.node = e.node
		sc.yielded++
		if sc.limit > 0 && sc.yielded >= sc.limit {
			sc.finish()
		}
		return true
	}
}

// Node returns the node Next positioned the cursor on.
func (sc *StreamCursor) Node() ShardNode { return sc.node }

// Err returns the error that terminated the merge, nil on clean completion
// (including a Limit cut or an explicit Close).
func (sc *StreamCursor) Err() error { return sc.err }

// Count returns how many merged nodes the cursor has yielded so far.
func (sc *StreamCursor) Count() int { return sc.yielded }

// Summary returns the scatter's trailing summary once the merge has
// terminated.
func (sc *StreamCursor) Summary() (*StreamSummary, bool) {
	if sc.sum == nil {
		return nil, false
	}
	return sc.sum, true
}

// Close terminates the merge: every shard cursor is closed (cancelling its
// query and withdrawing prefetches). Idempotent; always returns nil.
func (sc *StreamCursor) Close() error {
	if sc.closed {
		return nil
	}
	sc.close()
	sc.closed = true
	if sc.sum == nil {
		sc.buildSummary()
	}
	return nil
}

func (sc *StreamCursor) close() {
	sc.cancel()
	for _, s := range sc.streams {
		sc.settle(s)
	}
	sc.h = nil
}

func (sc *StreamCursor) finish() {
	sc.done = true
	sc.close()
	sc.buildSummary()
}

func (sc *StreamCursor) fail(err error) {
	sc.err = err
	sc.done = true
	sc.close()
	sc.buildSummary()
}

func (sc *StreamCursor) buildSummary() {
	sum := &StreamSummary{
		Count:        sc.yielded,
		SpineMatches: sc.spineMatches,
		Degraded:     sc.failures,
		Partial:      len(sc.failures) > 0,
	}
	byShard := make(map[int]ShardStat, len(sc.c.sessions))
	for _, st := range sc.stats {
		byShard[st.Shard] = st
	}
	for _, f := range sc.failures {
		byShard[f.Shard] = ShardStat{Shard: f.Shard, Failed: true, Kind: f.Kind}
	}
	for i := range sc.c.sessions {
		st, ok := byShard[i]
		if !ok {
			// Closed or capped before this shard drained; report what it
			// contributed to the merge.
			for _, s := range sc.streams {
				if s.shard == i {
					st = ShardStat{Shard: i, Count: s.count}
					break
				}
			}
			st.Shard = i
		}
		sum.PerShard = append(sum.PerShard, st)
	}
	if sum.Partial {
		sc.c.partials.Add(1)
	}
	sc.sum = sum
}
