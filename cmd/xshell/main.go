// Command xshell is an interactive query shell over a stored document.
//
// Usage:
//
//	xshell -xml doc.xml
//	xshell -xmark 0.5
//
// Each input line is a location path (evaluated with the current strategy)
// or a backslash command:
//
//	\strategy auto|simple|xschedule|xscan   pick the physical strategy
//	\limit <n>                              stop queries after n results (0 = all)
//	\timeout <ms>                           per-query budget (0 = none)
//	\explain <path>                         cost-model decision for a path
//	\plan <path>                            physical operator tree
//	\print <path>                           stream result nodes in document order
//	\insert <parent-path> <xml-fragment>    append a fragment
//	\delete <path>                          delete all matching subtrees
//	\stats                                  volume statistics
//	\help                                   this list
//	\quit                                   exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pathdb"
)

func main() {
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document instead")
	seed := flag.Uint64("seed", 42, "seed")
	scale := flag.Float64("scale", 0.05, "entity scale for -xmark")
	flag.Parse()

	var db *pathdb.DB
	var err error
	switch {
	case *xmlFile != "":
		data, rerr := os.ReadFile(*xmlFile)
		if rerr != nil {
			fail("%v", rerr)
		}
		db, err = pathdb.LoadXML(data, pathdb.Options{})
	case *xmarkSF > 0:
		db, err = pathdb.GenerateXMark(
			pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale},
			pathdb.Options{})
	default:
		fail("need -xml or -xmark")
	}
	if err != nil {
		fail("%v", err)
	}

	sh := &shell{db: db, opts: pathdb.QueryOptions{Strategy: pathdb.Auto}, out: os.Stdout}
	fmt.Printf("pathdb shell — %d pages loaded; \\help for commands\n", db.Pages())
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("pathdb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if sh.exec(strings.TrimSpace(sc.Text())) {
			return
		}
	}
}

// shell holds the session's query configuration as one QueryOptions —
// \strategy, \limit and \timeout each adjust a field, and every evaluation
// (count, \print) passes the same struct.
type shell struct {
	db   *pathdb.DB
	opts pathdb.QueryOptions
	out  *os.File
}

// exec runs one input line; it reports whether the shell should exit.
func (sh *shell) exec(line string) bool {
	if line == "" {
		return false
	}
	if !strings.HasPrefix(line, `\`) {
		sh.query(line)
		return false
	}
	cmd, rest, _ := strings.Cut(line[1:], " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "quit", "q", "exit":
		return true
	case "help":
		fmt.Fprintln(sh.out, `paths evaluate directly; commands:
  \strategy auto|simple|xschedule|xscan
  \limit <n>         \timeout <ms>
  \explain <path>    \plan <path>     \print <path>
  \insert <parent-path> <xml-fragment>
  \delete <path>     \stats           \quit`)
	case "strategy":
		s, err := pathdb.ParseStrategy(rest)
		if err != nil {
			fmt.Fprintln(sh.out, err)
			return false
		}
		sh.opts.Strategy = s
		fmt.Fprintln(sh.out, "strategy:", s)
	case "limit":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			fmt.Fprintln(sh.out, `usage: \limit <n> (0 clears)`)
			return false
		}
		sh.opts.Limit = n
		fmt.Fprintln(sh.out, "limit:", n)
	case "timeout":
		ms, err := strconv.Atoi(rest)
		if err != nil || ms < 0 {
			fmt.Fprintln(sh.out, `usage: \timeout <ms> (0 clears)`)
			return false
		}
		sh.opts.Timeout = time.Duration(ms) * time.Millisecond
		fmt.Fprintln(sh.out, "timeout:", sh.opts.Timeout)
	case "explain":
		if q := sh.compile(rest); q != nil {
			fmt.Fprintln(sh.out, q.Explain())
		}
	case "plan":
		if q := sh.compile(rest); q != nil {
			fmt.Fprint(sh.out, q.Plan())
		}
	case "print":
		if rest == "" {
			fmt.Fprintln(sh.out, "missing path")
			return false
		}
		// Streamed delivery in document order; the session \limit (default
		// 50, to keep interactive output bounded) stops evaluation early.
		opts := sh.opts
		opts.Sorted = true
		if opts.Limit == 0 {
			opts.Limit = 50
		}
		cur, err := sh.db.QueryStream(context.Background(), rest, opts)
		if err != nil {
			fmt.Fprintln(sh.out, err)
			return false
		}
		for cur.Next() {
			fmt.Fprintln(sh.out, cur.Node().XML())
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			fmt.Fprintln(sh.out, "print:", err)
			return false
		}
		if cur.Count() == opts.Limit {
			fmt.Fprintf(sh.out, "… (truncated at %d)\n", opts.Limit)
		}
	case "insert":
		parentPath, frag, ok := strings.Cut(rest, " ")
		if !ok {
			fmt.Fprintln(sh.out, `usage: \insert <parent-path> <xml-fragment>`)
			return false
		}
		q := sh.compile(parentPath)
		if q == nil {
			return false
		}
		parents := q.Nodes()
		if len(parents) != 1 {
			fmt.Fprintf(sh.out, "parent path matches %d nodes, need exactly 1\n", len(parents))
			return false
		}
		if _, err := sh.db.InsertXML(parents[0], strings.TrimSpace(frag)); err != nil {
			fmt.Fprintln(sh.out, "insert:", err)
			return false
		}
		fmt.Fprintln(sh.out, "inserted; volume now has", sh.db.Pages(), "pages")
	case "delete":
		q := sh.compile(rest)
		if q == nil {
			return false
		}
		victims := q.Nodes()
		for _, v := range victims {
			if err := sh.db.Delete(v); err != nil {
				fmt.Fprintln(sh.out, "delete:", err)
				return false
			}
		}
		fmt.Fprintf(sh.out, "deleted %d subtrees\n", len(victims))
	case "stats":
		fmt.Fprintf(sh.out, "pages: %d, documents: %d\n", sh.db.Pages(), sh.db.Documents())
	default:
		fmt.Fprintf(sh.out, "unknown command \\%s (try \\help)\n", cmd)
	}
	return false
}

// query evaluates a path with the session's QueryOptions, printing count
// and cost. A \timeout expiry or storage fault prints as its typed error.
func (sh *shell) query(path string) {
	sh.db.ResetStats()
	res, err := sh.db.QueryCtx(context.Background(), path, sh.opts)
	if err != nil {
		fmt.Fprintln(sh.out, err)
		return
	}
	fmt.Fprintf(sh.out, "count = %d   [%s]  %s\n", res.Count(), sh.opts.Strategy, sh.db.CostReport())
}

func (sh *shell) compile(path string) *pathdb.Query {
	if path == "" {
		fmt.Fprintln(sh.out, "missing path")
		return nil
	}
	q, err := sh.db.Query(path)
	if err != nil {
		fmt.Fprintln(sh.out, err)
		return nil
	}
	return q.WithStrategy(sh.opts.Strategy)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xshell: "+format+"\n", args...)
	os.Exit(1)
}
