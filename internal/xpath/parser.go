package xpath

import (
	"fmt"
	"strings"

	"pathdb/internal/xmltree"
)

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath: offset %d: %s", e.Pos, e.Msg)
}

// Parse parses a location path in (abbreviated or verbose) XPath syntax.
//
// Grammar:
//
//	path     = ("/" | "//")? part (("/" | "//") part)*
//	         | "/"                      (the document root itself)
//	part     = step | group
//	group    = "(" path ")" ("{" count ("," count)? "}")?
//	step     = axis "::" nodetest | "@" nodetest | nodetest | "." | ".."
//	nodetest = NCName | "*" | "node()" | "text()" | "comment()"
//	         | "processing-instruction()"
//
// "//" abbreviates /descendant-or-self::node()/ as usual; inside a
// predicate a leading "//" abbreviates .//, recursion anchored at the
// candidate node. A group with a bounded repetition count, (a/b){1,3},
// expands at parse time into one alternative step sequence per repeat
// count (regular-path-style repetition with a static bound). A range of
// counts therefore yields several alternatives: allowed wherever a union
// already is — inside predicates and through ParseUnion — and rejected by
// the single-path Parse. Tag names are interned into dict so the
// resulting tests are integer comparisons.
func Parse(dict *xmltree.Dictionary, src string) (*Path, error) {
	paths, err := parseAlternatives(dict, src)
	if err != nil {
		return nil, err
	}
	if len(paths) > 1 {
		return nil, &ParseError{Msg: "bounded repetition with a count range needs a union context (predicate or ParseUnion)"}
	}
	return paths[0], nil
}

// parseAlternatives parses src fully, returning every alternative the
// path's repetition ranges expand to (exactly one for range-free paths).
func parseAlternatives(dict *xmltree.Dictionary, src string) ([]*Path, error) {
	p := &pathParser{dict: dict, src: src}
	paths, err := p.parsePaths("", false)
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if !p.eof() {
		return nil, p.errf("unexpected %q", p.src[p.pos:])
	}
	return paths, nil
}

// MustParse is Parse, panicking on error; for tests and fixed queries.
func MustParse(dict *xmltree.Dictionary, src string) *Path {
	path, err := Parse(dict, src)
	if err != nil {
		panic(err)
	}
	return path
}

type pathParser struct {
	dict *xmltree.Dictionary
	src  string
	pos  int
}

func (p *pathParser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *pathParser) eof() bool { return p.pos >= len(p.src) }

func (p *pathParser) skipWS() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *pathParser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// Expansion bounds: a repetition range may multiply alternatives, so both
// the per-group fanout and the whole path's cross product are capped.
const (
	maxRepeat       = 4  // largest count in {min,max}
	maxAlternatives = 16 // alternatives one path may expand to
)

// parsePaths reads a path until EOF or one of the stop characters and
// returns the alternative step sequences it expands to — exactly one
// unless a repetition range is present. relative marks predicate/group
// context: absolute paths are rejected there and a leading "//" recurses
// from the context node instead of the root.
func (p *pathParser) parsePaths(stops string, relative bool) ([]*Path, error) {
	p.skipWS()
	if p.eof() {
		return nil, p.errf("empty path")
	}
	absolute := false
	alts := [][]Step{nil}
	switch {
	case p.consume("//"):
		absolute = !relative
		for i := range alts {
			alts[i] = append(alts[i], Step{Axis: DescendantOrSelf, Test: AnyNode()})
		}
	case p.consume("/"):
		if relative {
			return nil, p.errf("absolute path inside predicate")
		}
		absolute = true
		p.skipWS()
		if p.eof() {
			return []*Path{{Absolute: true}}, nil // "/" selects the document root
		}
	}
	for {
		p.skipWS()
		if !p.eof() && p.src[p.pos] == '(' {
			seqs, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			alts, err = p.crossAlts(alts, seqs)
			if err != nil {
				return nil, err
			}
		} else {
			steps, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			for i := range alts {
				alts[i] = append(alts[i], steps...)
			}
		}
		p.skipWS()
		if p.eof() || strings.IndexByte(stops, p.src[p.pos]) >= 0 {
			out := make([]*Path, len(alts))
			for i, s := range alts {
				out[i] = &Path{Absolute: absolute, Steps: s}
			}
			return out, nil
		}
		switch {
		case p.consume("//"):
			for i := range alts {
				alts[i] = append(alts[i], Step{Axis: DescendantOrSelf, Test: AnyNode()})
			}
		case p.consume("/"):
		default:
			return nil, p.errf("unexpected %q", p.src[p.pos:])
		}
	}
}

// parseGroup parses "(" path ")" with an optional "{min,max}" repetition
// count and returns the expanded step sequences: each inner alternative
// concatenated with itself k times for every k in min..max.
func (p *pathParser) parseGroup() ([][]Step, error) {
	p.pos++ // '('
	inner, err := p.parsePaths(")", true)
	if err != nil {
		return nil, err
	}
	if p.eof() || p.src[p.pos] != ')' {
		return nil, p.errf("unterminated group")
	}
	p.pos++
	min, max := 1, 1
	if !p.eof() && p.src[p.pos] == '{' {
		p.pos++
		if min, err = p.parseCount(); err != nil {
			return nil, err
		}
		max = min
		p.skipWS()
		if !p.eof() && p.src[p.pos] == ',' {
			p.pos++
			if max, err = p.parseCount(); err != nil {
				return nil, err
			}
		}
		p.skipWS()
		if p.eof() || p.src[p.pos] != '}' {
			return nil, p.errf("unterminated repetition count")
		}
		p.pos++
		if min < 1 || max < min || max > maxRepeat {
			return nil, p.errf("repetition count out of range (1 <= min <= max <= %d)", maxRepeat)
		}
	}
	var seqs [][]Step
	for k := min; k <= max; k++ {
		// k-fold concatenations over the inner alternatives.
		combos := [][]Step{nil}
		for r := 0; r < k; r++ {
			next := make([][]Step, 0, len(combos)*len(inner))
			for _, c := range combos {
				for _, in := range inner {
					seq := make([]Step, 0, len(c)+len(in.Steps))
					seq = append(append(seq, c...), in.Steps...)
					next = append(next, seq)
				}
			}
			combos = next
			if len(combos) > maxAlternatives {
				return nil, p.errf("repetition expands to more than %d alternatives", maxAlternatives)
			}
		}
		seqs = append(seqs, combos...)
		if len(seqs) > maxAlternatives {
			return nil, p.errf("repetition expands to more than %d alternatives", maxAlternatives)
		}
	}
	return seqs, nil
}

// crossAlts appends every expanded group sequence to every alternative
// accumulated so far (the cross product), enforcing the expansion cap.
func (p *pathParser) crossAlts(alts [][]Step, seqs [][]Step) ([][]Step, error) {
	if len(alts)*len(seqs) > maxAlternatives {
		return nil, p.errf("repetition expands to more than %d alternatives", maxAlternatives)
	}
	out := make([][]Step, 0, len(alts)*len(seqs))
	for _, a := range alts {
		for _, s := range seqs {
			seq := make([]Step, 0, len(a)+len(s))
			seq = append(append(seq, a...), s...)
			out = append(out, seq)
		}
	}
	return out, nil
}

// parseCount reads a decimal repetition count.
func (p *pathParser) parseCount() (int, error) {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || p.pos-start > 2 {
		return 0, p.errf("expected repetition count")
	}
	n := 0
	for _, c := range []byte(p.src[start:p.pos]) {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// parsePredicates reads zero or more [..] predicates and attaches them to
// the last step of steps.
func (p *pathParser) parsePredicates(steps []Step) ([]Step, error) {
	for {
		p.skipWS()
		if p.eof() || p.src[p.pos] != '[' {
			return steps, nil
		}
		p.pos++
		var branches []*Path
		for {
			// Repetition ranges expand in place: every alternative the
			// nested path expands to becomes one existential union branch.
			nested, err := p.parsePaths("]=|", true)
			if err != nil {
				return nil, err
			}
			branches = append(branches, nested...)
			p.skipWS()
			if !p.eof() && p.src[p.pos] == '|' {
				p.pos++
				continue
			}
			break
		}
		pred := Predicate{Paths: branches}
		p.skipWS()
		if !p.eof() && p.src[p.pos] == '=' {
			p.pos++
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			pred.Literal = lit
			pred.HasLit = true
			p.skipWS()
		}
		if p.eof() || p.src[p.pos] != ']' {
			return nil, p.errf("unterminated predicate")
		}
		p.pos++
		last := &steps[len(steps)-1]
		last.Predicates = append(last.Predicates, pred)
	}
}

// parseLiteral reads a single- or double-quoted string.
func (p *pathParser) parseLiteral() (string, error) {
	p.skipWS()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected string literal")
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != quote {
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated string literal")
	}
	out := p.src[start:p.pos]
	p.pos++
	return out, nil
}

func (p *pathParser) parseStep() ([]Step, error) {
	p.skipWS()
	if p.eof() {
		return nil, p.errf("expected step")
	}
	// Abbreviations.
	if p.consume("..") {
		return []Step{{Axis: Parent, Test: AnyNode()}}, nil
	}
	if p.src[p.pos] == '.' {
		p.pos++
		return []Step{{Axis: Self, Test: AnyNode()}}, nil
	}
	if p.consume("@") {
		test, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		return p.parsePredicates([]Step{{Axis: AttributeAxis, Test: test}})
	}
	// Verbose axis?
	save := p.pos
	if name := p.peekName(); name != "" {
		after := p.pos + len(name)
		if strings.HasPrefix(p.src[after:], "::") {
			p.pos = after + 2
			test, err := p.parseNodeTest()
			if err != nil {
				return nil, err
			}
			if axis, ok := axisByName(name); ok {
				return p.parsePredicates([]Step{{Axis: axis, Test: test}})
			}
			// The document-order axes are supported through their classic
			// set-equivalent rewrites (the duplicate-eliminating operators
			// downstream restore node-set semantics):
			//   following::T  = ancestor-or-self::node()
			//                   /following-sibling::node()
			//                   /descendant-or-self::T
			//   preceding::T  = ancestor-or-self::node()
			//                   /preceding-sibling::node()
			//                   /descendant-or-self::T
			switch name {
			case "following":
				return p.parsePredicates([]Step{
					{Axis: AncestorOrSelf, Test: AnyNode()},
					{Axis: FollowingSibling, Test: AnyNode()},
					{Axis: DescendantOrSelf, Test: test},
				})
			case "preceding":
				return p.parsePredicates([]Step{
					{Axis: AncestorOrSelf, Test: AnyNode()},
					{Axis: PrecedingSibling, Test: AnyNode()},
					{Axis: DescendantOrSelf, Test: test},
				})
			}
			return nil, p.errf("unknown axis %q", name)
		}
	}
	p.pos = save
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	return p.parsePredicates([]Step{{Axis: Child, Test: test}})
}

func (p *pathParser) parseNodeTest() (NodeTest, error) {
	p.skipWS()
	if p.eof() {
		return NodeTest{}, p.errf("expected node test")
	}
	if p.consume("*") {
		return Wildcard(), nil
	}
	name := p.peekName()
	if name == "" {
		return NodeTest{}, p.errf("expected node test, found %q", p.src[p.pos:])
	}
	p.pos += len(name)
	if p.consume("()") {
		switch name {
		case "node":
			return AnyNode(), nil
		case "text":
			return TextTest(), nil
		case "comment":
			return CommentTest(), nil
		case "processing-instruction":
			return PITest(), nil
		default:
			return NodeTest{}, p.errf("unknown kind test %s()", name)
		}
	}
	return NameTest(p.dict.Intern(name)), nil
}

// peekName returns the NCName at the cursor without consuming it.
func (p *pathParser) peekName() string {
	i := p.pos
	if i >= len(p.src) || !isNCNameStart(p.src[i]) {
		return ""
	}
	for i < len(p.src) && isNCNameChar(p.src[i]) {
		i++
	}
	return p.src[p.pos:i]
}

func isNCNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNCNameChar(c byte) bool {
	return isNCNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func axisByName(name string) (Axis, bool) {
	for a, n := range axisNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

// ParseUnion parses a union of location paths separated by top-level '|'
// (the XPath union operator). Each branch is a full location path;
// '|' inside predicates belongs to the nested path and is not split on.
func ParseUnion(dict *xmltree.Dictionary, src string) ([]*Path, error) {
	var out []*Path
	depth := 0
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(src[start:end])
		if part == "" {
			return &ParseError{Pos: start, Msg: "empty union branch"}
		}
		ps, err := parseAlternatives(dict, part)
		if err != nil {
			return err
		}
		out = append(out, ps...)
		return nil
	}
	inQuote := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == '|' && depth == 0:
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(len(src)); err != nil {
		return nil, err
	}
	return out, nil
}
