package pathdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"pathdb/internal/core"
	"pathdb/internal/engine"
	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// Typed engine errors. Callers (and the HTTP server's status-code mapping)
// classify failures with errors.Is against these sentinels instead of
// string-matching internal errors.
var (
	// ErrOverloaded is the admission-control rejection: the engine's queue
	// is at QueueDepth and the submission chose not to wait (TryDo). It
	// wraps the internal engine.ErrQueueFull, so errors.Is sees both.
	ErrOverloaded = fmt.Errorf("pathdb: engine overloaded: %w", engine.ErrQueueFull)
	// ErrClosed is returned for queries submitted to (or stranded in) an
	// engine that has been closed or is draining.
	ErrClosed = fmt.Errorf("pathdb: engine closed: %w", engine.ErrClosed)
)

// IsTimeout reports whether err is a deadline classification: a context
// deadline (the usual way an engine query times out), an I/O deadline, or
// anything implementing net.Error-style Timeout().
//
// Deprecated: use errors.Is(err, ErrTimeout). Every query path now returns
// a typed *Error whose Is method matches the taxonomy sentinels; nothing in
// this module calls IsTimeout anymore and it will be deleted in a future
// release.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}

// EngineConfig tunes the concurrent engine's admission control.
type EngineConfig struct {
	// MaxInFlight caps how many admitted queries execute together as one
	// gang, sharing the I/O scheduler where possible (default 8).
	MaxInFlight int
	// QueueDepth bounds the admission queue: TrySubmit beyond it is
	// rejected, Do/Submit block (default 64).
	QueueDepth int
	// Parallel is the worker-pool width per gang: how many gang tasks
	// (shared scheduler groups and solo queries) execute concurrently.
	// Default min(MaxInFlight, GOMAXPROCS).
	Parallel int
}

// Engine executes queries from many goroutines concurrently against one
// loaded document — the concurrent counterpart of DB.Query. Open sessions
// with NewSession; Close shuts the dispatcher down.
//
// See internal/engine for the execution model: submissions are admitted
// into a bounded queue, gathered into gangs by a single dispatcher, and
// executed on a worker pool over concurrent read-only storage views, with
// compatible XSchedule plans batched onto shared schedulers so the
// asynchronous I/O layer reorders cluster loads across query boundaries.
// Every query pays its costs on a private virtual clock that is folded
// into the volume clock at completion.
type Engine struct {
	db *DB
	e  *engine.Engine
}

// NewEngine starts a concurrent engine over the document. The cost model's
// offline statistics pass runs here; call ResetStats afterwards when
// measuring cold runs. Close the engine before using blocking single-query
// DB methods again.
func (db *DB) NewEngine(cfg EngineConfig) *Engine {
	return &Engine{
		db: db,
		e: engine.New(db.store, engine.Config{
			MaxInFlight: cfg.MaxInFlight,
			QueueDepth:  cfg.QueueDepth,
			Parallel:    cfg.Parallel,
			// Each gang pins one MVCC snapshot for all its members, so
			// concurrent Updates never tear a gang's reads (see txn.go).
			Snapshots: dbSnapshots{db: db},
			// Share the facade's chooser (concurrency-safe) so the volume
			// collects document statistics exactly once.
			Chooser: db.getChooser(),
		}),
	}
}

// Update runs fn in a write transaction while the engine keeps serving
// reads: queries in flight finish on the snapshot their gang pinned at
// admission, and gangs dispatched after Update returns see the committed
// state. Concurrent Updates group-commit — they batch onto shared WAL
// flushes (see DB.Update for the transaction semantics).
//
// The write is admitted against the engine's lifecycle: once Close or
// Shutdown has begun, Update fails with ErrClosed, and the engine waits
// for admitted writers before its storage goes away.
func (e *Engine) Update(fn func(*Tx) error) error {
	_, err := e.UpdateEpoch(fn)
	return err
}

// UpdateEpoch is Update, but additionally returns the publish epoch of the
// committed version (see DB.UpdateEpoch).
func (e *Engine) UpdateEpoch(fn func(*Tx) error) (uint64, error) {
	release, err := e.e.AdmitWrite()
	if err != nil {
		return 0, wrapErr("update", "", err)
	}
	defer release()
	epoch, uerr := e.db.UpdateEpoch(fn)
	return epoch, wrapErr("update", "", uerr)
}

// TxnMetrics returns a snapshot of the underlying volume's transaction
// counters (all zeros before the first write).
func (e *Engine) TxnMetrics() TxnMetrics { return e.db.TxnMetrics() }

// Close stops the engine; queries still queued fail with ErrClosed.
func (e *Engine) Close() { e.e.Close() }

// Shutdown drains the engine gracefully: admission stops immediately (new
// submissions fail with ErrClosed), every query already admitted — queued
// or in flight — runs to completion, then the dispatcher exits. If ctx
// expires first the engine hard-closes (remaining queued queries fail with
// ErrClosed) and Shutdown returns the context's error.
func (e *Engine) Shutdown(ctx context.Context) error {
	return wrapErr("shutdown", "", e.e.Drain(ctx))
}

// Draining reports whether the engine has stopped admitting queries
// (Shutdown or Close has begun).
func (e *Engine) Draining() bool { return e.e.Draining() }

// CostLedger returns an atomic snapshot of the volume's cost ledger — the
// clocks and physical counters accumulated by every query since the last
// ResetStats. stats.Ledger.Named enumerates the fields under stable
// exported names; the HTTP server's /metrics endpoint is built on it.
func (e *Engine) CostLedger() stats.Ledger { return e.db.store.Ledger().Snapshot() }

// EngineMetrics is a snapshot of the engine's counters.
type EngineMetrics struct {
	Submitted int64       // admitted queries
	Rejected  int64       // admission-queue rejections
	Completed int64       // finished without error
	Cancelled int64       // failed with a context error
	Gangs     int64       // dispatcher batches executed
	Batched   int64       // queries that ran on a gang-shared scheduler
	Faulted   int64       // queries failed by a page fault (I/O or corruption)
	Updates   int64       // write transactions admitted
	OverheadV stats.Ticks // virtual time spent on dispatch bookkeeping
}

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() EngineMetrics {
	m := e.e.Metrics()
	return EngineMetrics{
		Submitted: m.Submitted,
		Rejected:  m.Rejected,
		Completed: m.Completed,
		Cancelled: m.Cancelled,
		Gangs:     m.Gangs,
		Batched:   m.Batched,
		Faulted:   m.Faulted,
		Updates:   m.Updates,
		OverheadV: m.OverheadV,
	}
}

// NewSession opens a submission handle. Sessions are cheap; give each
// client goroutine its own.
func (e *Engine) NewSession() *Session { return &Session{eng: e, s: e.e.NewSession()} }

// Session submits queries to an Engine. Its methods are safe for
// concurrent use.
type Session struct {
	eng *Engine
	s   *engine.Session
}

// QueryOptions tunes one engine query.
type QueryOptions struct {
	// Strategy forces a physical strategy (default Auto: the cost model
	// decides per query).
	Strategy Strategy
	// Sorted requests results in document order.
	Sorted bool
	// MemLimit bounds the speculative structure S (0 = unlimited).
	MemLimit int
}

// ExecResult is the outcome of one engine query.
type ExecResult struct {
	Nodes    []Node
	Strategy Strategy // resolved strategy (meaningful when Auto was used)
	Shared   bool     // ran on a gang-shared scheduler (batched I/O)
	Gang     int      // gang size this query executed in

	// Choice is the cost model's full decision — strategy, coverage and
	// per-candidate cost estimates. Nil when a strategy was forced (the
	// model never ran). Union queries report the first branch's choice.
	Choice *PlanChoice

	// VirtualLatency is submit-to-done on the volume's virtual clock.
	VirtualLatency stats.Ticks
	// CostV is the query's own elapsed virtual time (CPUV + IOWaitV),
	// measured on its private ledger — deterministic on a warm buffer
	// regardless of how many workers the gang ran on. SharedV is the
	// gang-shared scheduler's clock (pooled prefetch I/O, reported to
	// every member of the group; zero for solo runs). Union queries sum
	// their branches.
	CostV   stats.Ticks
	CPUV    stats.Ticks
	IOWaitV stats.Ticks
	SharedV stats.Ticks
	// WallQueue and WallExec split the real (simulation) latency into
	// time queued and time executing.
	WallQueue time.Duration
	WallExec  time.Duration
}

// Count returns the result cardinality.
func (r *ExecResult) Count() int { return len(r.Nodes) }

func fromCore(s core.Strategy) Strategy {
	switch s {
	case core.StrategySimple:
		return Simple
	case core.StrategyScan:
		return Scan
	default:
		return Schedule
	}
}

// Do evaluates an absolute location path (or a '|' union of paths) through
// the engine, blocking until the result is ready or ctx is done.
// Cancelling ctx abandons the query: if still queued it never runs, if
// running it stops at the next operator poll point. A full admission queue
// makes Do wait (backpressure); use TryDo to shed instead.
func (s *Session) Do(ctx context.Context, path string, opts QueryOptions) (ExecResult, error) {
	return s.do(ctx, path, opts, false)
}

// TryDo is Do with non-blocking admission: when the engine's queue is at
// QueueDepth it fails immediately with ErrOverloaded instead of waiting —
// the load-shedding half of admission control, which a front end maps to
// "try again later". For union queries the shedding decision is made on
// the first branch; once that is admitted the remaining branches submit
// blocking (the union is committed).
func (s *Session) TryDo(ctx context.Context, path string, opts QueryOptions) (ExecResult, error) {
	return s.do(ctx, path, opts, true)
}

func (s *Session) do(ctx context.Context, path string, opts QueryOptions, try bool) (ExecResult, error) {
	queries, err := s.compile(path, opts)
	if err != nil {
		return ExecResult{}, err
	}

	// Submit every branch before waiting so union branches can share a
	// gang; the dispatcher drains the queue independently of this
	// goroutine, so sequential Submit calls cannot deadlock.
	pendings := make([]*engine.Pending, 0, len(queries))
	for i, q := range queries {
		var p *engine.Pending
		var perr error
		if try && i == 0 {
			p, perr = s.s.TrySubmit(ctx, q)
		} else {
			p, perr = s.s.Submit(ctx, q)
		}
		if perr != nil {
			return ExecResult{}, wrapErr("submit", path, perr)
		}
		pendings = append(pendings, p)
	}

	var branch []engine.Result
	for _, p := range pendings {
		res, werr := p.Wait(ctx)
		if werr != nil {
			return ExecResult{}, wrapErr("query", path, werr)
		}
		branch = append(branch, res)
	}
	return s.merge(branch, len(queries) > 1, opts), nil
}

// compile parses the path and maps it onto engine queries, one per union
// branch.
func (s *Session) compile(path string, opts QueryOptions) ([]engine.Query, error) {
	branches, err := xpathParseUnion(s.eng.db, path)
	if err != nil {
		return nil, err
	}
	queries := make([]engine.Query, len(branches))
	for i, b := range branches {
		queries[i] = engine.Query{
			Label:    path,
			Path:     b,
			Auto:     opts.Strategy == Auto,
			Strategy: opts.Strategy.internal(),
			// Union branches are merged and re-sorted below; plain paths
			// sort inside the engine.
			Sorted:   opts.Sorted && len(branches) == 1,
			MemLimit: opts.MemLimit,
		}
	}
	return queries, nil
}

// merge combines branch results into one ExecResult (union semantics: a
// node set).
func (s *Session) merge(branch []engine.Result, isUnion bool, opts QueryOptions) ExecResult {
	out := ExecResult{Strategy: fromCore(branch[0].Strategy), Gang: branch[0].Gang}
	if c := branch[0].Choice; c != nil {
		pc := fromPlanChoice(*c)
		out.Choice = &pc
	}

	var all []core.Result
	minSubmit, maxDone := branch[0].SubmitV, branch[0].DoneV
	for _, r := range branch {
		all = append(all, r.Results...)
		out.Shared = out.Shared || r.Shared
		out.CostV += r.CostV
		out.CPUV += r.CPUV
		out.IOWaitV += r.IOWaitV
		out.SharedV += r.SharedV
		out.WallQueue += r.WallQueue
		out.WallExec += r.WallExec
		if r.SubmitV < minSubmit {
			minSubmit = r.SubmitV
		}
		if r.DoneV > maxDone {
			maxDone = r.DoneV
		}
	}
	out.VirtualLatency = maxDone - minSubmit

	if isUnion {
		seen := make(map[storage.NodeID]bool, len(all))
		dedup := all[:0]
		for _, r := range all {
			if seen[r.Node] {
				continue
			}
			seen[r.Node] = true
			dedup = append(dedup, r)
		}
		all = dedup
		if opts.Sorted {
			sort.Slice(all, func(i, j int) bool {
				return ordpath.Compare(all[i].Ord, all[j].Ord) < 0
			})
		}
	}
	out.Nodes = make([]Node, len(all))
	for i, r := range all {
		out.Nodes[i] = Node{db: s.eng.db, id: r.Node}
	}
	return out
}

// xpathParseUnion parses an absolute location path (or union) into
// simplified step lists.
func xpathParseUnion(db *DB, path string) ([][]xpath.Step, error) {
	branches, err := xpath.ParseUnion(db.dict, path)
	if err != nil {
		return nil, err
	}
	out := make([][]xpath.Step, len(branches))
	for i, b := range branches {
		if !b.Absolute {
			return nil, fmt.Errorf("pathdb: engine query %q must be absolute", path)
		}
		out[i] = b.Simplify().Steps
	}
	return out, nil
}
