package xpath

import (
	"testing"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
)

var pathCorpus = []string{
	"/site/regions//item",
	"//a[b/c='x']/@id | //d",
	"a/following::b[.='v']",
	"/descendant-or-self::node()/child::x",
	"../preceding-sibling::*[y]",
	// Branching-path grammar: bounded repetition, predicate recursion,
	// nested predicates, unions and attributes inside predicates.
	"//a[(b/c){1,3}]/d",
	"//a[.//b='x'][@id]",
	"//a[b[c][.//d]]|/e[(f){2}]",
	"/a[b|c/d]//e[@k='v']",
	"//a[(b[c]){1,2}]",
}

// TestPathParserNeverPanics mutates path inputs; Parse and ParseUnion must
// never panic, and accepted paths must render and reparse stably.
func TestPathParserNeverPanics(t *testing.T) {
	r := rng.New(0xBADC0DE)
	for trial := 0; trial < 6000; trial++ {
		mut := []byte(pathCorpus[r.Intn(len(pathCorpus))])
		for k, n := 0, r.IntRange(1, 4); k < n && len(mut) > 0; k++ {
			switch r.Intn(3) {
			case 0:
				mut[r.Intn(len(mut))] = byte(r.Intn(128))
			case 1:
				i := r.Intn(len(mut))
				mut = append(mut[:i], mut[i+1:]...)
			case 2:
				i := r.Intn(len(mut) + 1)
				extra := []byte{'/', '[', ']', '|', '@', ':', '"', '*', 'a'}[r.Intn(9)]
				mut = append(mut[:i], append([]byte{extra}, mut[i:]...)...)
			}
		}
		dict := xmltree.NewDictionary()
		ps, err := ParseUnion(dict, string(mut))
		if err != nil {
			continue
		}
		for _, p := range ps {
			rendered := p.Render(dict)
			p2, err := Parse(dict, rendered)
			if err != nil {
				t.Fatalf("accepted %q rendered to unparseable %q: %v", mut, rendered, err)
			}
			if p2.Render(dict) != rendered {
				t.Fatalf("render not a fixpoint for %q: %q vs %q", mut, rendered, p2.Render(dict))
			}
		}
	}
}

// FuzzParsePath is the native fuzzing entry point for the path parser.
func FuzzParsePath(f *testing.F) {
	for _, s := range pathCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		dict := xmltree.NewDictionary()
		ps, err := ParseUnion(dict, src)
		if err != nil {
			return
		}
		for _, p := range ps {
			rendered := p.Render(dict)
			p2, err := Parse(dict, rendered)
			if err != nil {
				t.Fatalf("accepted %q rendered to unparseable %q", src, rendered)
			}
			if p2.Render(dict) != rendered {
				t.Fatalf("render not a fixpoint for %q: %q vs %q", src, rendered, p2.Render(dict))
			}
		}
	})
}
