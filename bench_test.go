package pathdb

// Benchmarks regenerating the paper's evaluation (Sec. 6): one benchmark
// per figure/table, with a sub-benchmark per measured cell. Each records
// two numbers:
//
//   - vsec/op — the *virtual* execution time from the calibrated disk/CPU
//     model, the quantity to compare against the paper's figures;
//   - ns/op — the wall-clock time of this Go implementation, reported by
//     the testing framework as usual.
//
// The default entity scale is 0.05 so the full suite stays fast; set
// PATHDB_BENCH_SCALE=0.2 for the calibrated scale used in EXPERIMENTS.md
// (one tenth of official XMark by byte volume), or 2 for full size.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"pathdb/internal/bench"
	"pathdb/internal/core"
)

var (
	benchOnce sync.Once
	benchW    *bench.Workload
)

func benchWorkload() *bench.Workload {
	benchOnce.Do(func() {
		scale := 0.05
		if s := os.Getenv("PATHDB_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		benchW = bench.NewWorkload(bench.Config{EntityScale: scale, Seed: 42})
	})
	return benchW
}

var benchSFs = []float64{0.25, 0.5, 1, 2}

var benchStrategies = []core.Strategy{
	core.StrategySimple, core.StrategySchedule, core.StrategyScan,
}

// benchFigure runs one figure's grid as sub-benchmarks.
func benchFigure(b *testing.B, q bench.Query) {
	w := benchWorkload()
	for _, sf := range benchSFs {
		for _, strat := range benchStrategies {
			b.Run(fmt.Sprintf("sf=%.2f/%s", sf, strat), func(b *testing.B) {
				var m bench.Measurement
				for i := 0; i < b.N; i++ {
					m = w.Run(sf, q, strat)
				}
				b.ReportMetric(m.Total.Seconds(), "vsec/op")
				b.ReportMetric(float64(m.Count), "results")
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: Q6' = count(/site/regions//item).
func BenchmarkFig9(b *testing.B) { benchFigure(b, bench.Q6) }

// BenchmarkFig10 regenerates Figure 10: Q7 = sum of three prose counts.
func BenchmarkFig10(b *testing.B) { benchFigure(b, bench.Q7) }

// BenchmarkFig11 regenerates Figure 11: Q15, the long selective path.
func BenchmarkFig11(b *testing.B) { benchFigure(b, bench.Q15) }

// BenchmarkTable3 regenerates Table 3: total and CPU time of every plan
// for every query at scale factor 1.
func BenchmarkTable3(b *testing.B) {
	w := benchWorkload()
	for _, q := range bench.AllQueries {
		for _, strat := range benchStrategies {
			b.Run(fmt.Sprintf("%s/%s", q.Name, strat), func(b *testing.B) {
				var m bench.Measurement
				for i := 0; i < b.N; i++ {
					m = w.Run(1, q, strat)
				}
				b.ReportMetric(m.Total.Seconds(), "vsec/op")
				b.ReportMetric(m.CPU.Seconds(), "vcpu/op")
				b.ReportMetric(100*m.CPUFraction(), "cpu%")
			})
		}
	}
}

// BenchmarkAblationK sweeps XSchedule's queue fill target (Sec. 5.3.4.2).
func BenchmarkAblationK(b *testing.B) {
	w := benchWorkload()
	for _, k := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var rows []bench.AblationRow
			for i := 0; i < b.N; i++ {
				rows = w.AblationK(1, []int{k})
			}
			b.ReportMetric(rows[0].Total.Seconds(), "vsec/op")
		})
	}
}

// BenchmarkAblationLayout measures the layout sensitivity of each plan.
func BenchmarkAblationLayout(b *testing.B) {
	cfg := benchWorkload().Config()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.AblationLayout(cfg, 1, bench.Q6)
	}
	for _, r := range rows {
		b.ReportMetric(r.Total.Seconds(), r.Label+"-vsec")
	}
}

// BenchmarkAblationMultiQuery compares concurrent separate plans against
// one shared I/O operator (Sec. 7 outlook).
func BenchmarkAblationMultiQuery(b *testing.B) {
	w := benchWorkload()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = w.AblationMultiQuery(1)
	}
	for _, r := range rows {
		b.ReportMetric(r.Total.Seconds(), r.Label[:1]+"-vsec")
	}
}

// BenchmarkQueryWallClock measures the raw Go-implementation throughput of
// the three strategies on Q6' (wall time only; no virtual-clock metric).
func BenchmarkQueryWallClock(b *testing.B) {
	w := benchWorkload()
	for _, strat := range benchStrategies {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Run(1, bench.Q6, strat)
			}
		})
	}
}
