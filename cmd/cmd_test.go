// Package cmd_test runs the command-line tools end to end through `go
// run`, checking that every binary builds and produces sane output on a
// real document. These are integration tests; skip with -short.
package cmd_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a tool via `go run` from the repository root.
func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".." // repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")

	// xmarkgen writes a document.
	out := run(t, "./cmd/xmarkgen", "-sf", "0.2", "-scale", "0.01", "-seed", "5", "-o", docPath)
	if out != "" {
		t.Fatalf("xmarkgen output: %q", out)
	}
	data, err := os.ReadFile(docPath)
	if err != nil || !strings.Contains(string(data), "<site>") {
		t.Fatalf("generated doc bad: %v", err)
	}

	// xpathq evaluates a query against it, for each strategy plus auto.
	var counts []string
	for _, strat := range []string{"simple", "xschedule", "xscan", "auto"} {
		out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions//item",
			"-strategy", strat, "-explain", "-plan")
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "count(") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("xpathq (%s) printed no count:\n%s", strat, out)
		}
		counts = append(counts, strings.Fields(line)[2])
		if !strings.Contains(out, "cost:") {
			t.Fatalf("xpathq (%s) printed no cost report", strat)
		}
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("strategies disagree across CLI runs: %v", counts)
		}
	}

	// xpathq -print serializes results.
	out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions/africa/item", "-print")
	if !strings.Contains(out, "<item") {
		t.Fatalf("xpathq -print produced no items:\n%.300s", out)
	}

	// xvolume inspects the volume.
	out = run(t, "./cmd/xvolume", "-xml", docPath, "-tags")
	for _, want := range []string{"volume:", "records:", "dictionary:", "item"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xvolume missing %q:\n%s", want, out)
		}
	}

	// xbench runs a tiny figure and emits machine-readable JSON.
	jsonDir := filepath.Join(dir, "bench")
	out = run(t, "./cmd/xbench", "-scale", "0.01", "-quick", "-fig", "11", "-json", jsonDir)
	if !strings.Contains(out, "xschedule") || !strings.Contains(out, "0.25") {
		t.Fatalf("xbench figure output:\n%s", out)
	}
	data, err = os.ReadFile(filepath.Join(jsonDir, "BENCH_fig11.json"))
	if err != nil {
		t.Fatalf("xbench -json wrote no file: %v", err)
	}
	var benchFile struct {
		Name         string `json:"name"`
		Measurements []struct {
			Query    string  `json:"query"`
			Strategy string  `json:"strategy"`
			SF       float64 `json:"sf"`
			TotalSec float64 `json:"total_s"`
		} `json:"measurements"`
	}
	if err := json.Unmarshal(data, &benchFile); err != nil {
		t.Fatalf("BENCH_fig11.json invalid: %v\n%s", err, data)
	}
	if benchFile.Name != "fig11" || len(benchFile.Measurements) != 9 {
		t.Fatalf("BENCH_fig11.json content: name %q, %d measurements",
			benchFile.Name, len(benchFile.Measurements))
	}

	// xbench -strategy restricts the sweep through ParseStrategy.
	out = run(t, "./cmd/xbench", "-scale", "0.01", "-quick", "-fig", "11", "-strategy", "xscan")
	if !strings.Contains(out, "xscan") {
		t.Fatalf("xbench -strategy output:\n%s", out)
	}
}

// TestLoadGenerator runs the closed-loop load generator and checks the
// acceptance property of the concurrent engine: per-query result counts
// are identical for 1 and 8 clients on the same volume.
func TestLoadGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	countLines := func(out string) []string {
		var counts []string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "count(") {
				counts = append(counts, l)
			}
		}
		return counts
	}
	base := []string{"./cmd/xload", "-xmark", "0.25", "-scale", "0.05", "-requests", "12", "-mix", "all"}
	seq := run(t, append(base, "-clients", "1")...)
	conc := run(t, append(base, "-clients", "8")...)

	seqCounts, concCounts := countLines(seq), countLines(conc)
	if len(seqCounts) != 5 {
		t.Fatalf("xload -clients 1 reported %d paths, want 5:\n%s", len(seqCounts), seq)
	}
	if strings.Join(seqCounts, "\n") != strings.Join(concCounts, "\n") {
		t.Fatalf("per-query results differ between 1 and 8 clients:\n%v\nvs\n%v", seqCounts, concCounts)
	}
	for _, out := range []string{seq, conc} {
		for _, want := range []string{"throughput:", "latency virtual", "latency wall", "engine: gangs="} {
			if !strings.Contains(out, want) {
				t.Fatalf("xload output missing %q:\n%s", want, out)
			}
		}
	}
}

func TestShellSession(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", "run", "./cmd/xshell", "-xmark", "0.2", "-scale", "0.01")
	cmd.Dir = ".."
	cmd.Stdin = strings.NewReader(
		"/site/regions//item\n" +
			"\\strategy xscan\n" +
			"\\plan /site\n" +
			"\\insert /site <extra/>\n" +
			"/site/extra\n" +
			"\\quit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("xshell: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"pathdb shell", "count = ", "XScan(", "inserted", "count = 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("shell output missing %q:\n%s", want, s)
		}
	}
}
