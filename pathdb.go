// Package pathdb is a small XML path-query engine built around
// cost-sensitive reordering of navigational primitives (Kanne, Brantner,
// Moerkotte; SIGMOD 2005).
//
// Documents are stored in a paged tree store whose clusters (pages) are
// connected subtree fragments with explicit border nodes at inter-cluster
// edges. Location paths are evaluated by a physical algebra over *partial
// path instances*: cheap intra-cluster navigation runs immediately
// (XStep), while every expensive cluster load is pooled in a single
// I/O-performing operator — XSchedule (asynchronous, reordered I/O) or
// XScan (one sequential scan with speculative evaluation) — and a
// cost-based chooser picks between them per query.
//
// Quick start:
//
//	db, err := pathdb.LoadXMLString(`<a><b/><b/></a>`, pathdb.Options{})
//	q, err := db.Query("/a/b")
//	n := q.Count()
//
// All I/O runs against a deterministic simulated disk with a calibrated
// 2005-era cost model; db.CostReport() returns the virtual time, CPU
// share and physical counters of the work done since the last reset.
package pathdb

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pathdb/internal/core"
	"pathdb/internal/ordpath"
	"pathdb/internal/plan"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/txn"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmark"
	"pathdb/internal/xmlparse"
	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
	"pathdb/internal/xpath"
)

// Strategy selects the physical evaluation method.
type Strategy uint8

// Evaluation strategies. Auto lets the cost model decide between
// Schedule and Scan (Simple exists as the baseline).
const (
	Auto Strategy = iota
	Simple
	Schedule
	Scan
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Simple:
		return "simple"
	case Schedule:
		return "xschedule"
	case Scan:
		return "xscan"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses a strategy name, round-tripping Strategy.String:
// "auto", "simple", "xschedule" and "xscan" (case-insensitive; the
// paper-agnostic aliases "schedule" and "scan" are also accepted). Every
// command-line tool resolves its -strategy flag through this function.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return Auto, nil
	case "simple":
		return Simple, nil
	case "xschedule", "schedule":
		return Schedule, nil
	case "xscan", "scan":
		return Scan, nil
	}
	return Auto, fmt.Errorf("pathdb: unknown strategy %q (want auto, simple, xschedule or xscan)", s)
}

func (s Strategy) internal() core.Strategy {
	switch s {
	case Simple:
		return core.StrategySimple
	case Scan:
		return core.StrategyScan
	default:
		return core.StrategySchedule
	}
}

// PredEval selects the evaluator for step predicates ([path] and
// [path = "lit"] filters).
type PredEval uint8

// Predicate evaluators. PredAuto lets the cost model pick per query
// between per-candidate probing (PredFilter) and the set-at-a-time
// structural semi-join (XJoin).
const (
	PredAuto PredEval = iota
	PredNested
	PredJoin
)

func (p PredEval) String() string {
	switch p {
	case PredAuto:
		return "auto"
	case PredNested:
		return "nested"
	case PredJoin:
		return "join"
	default:
		return fmt.Sprintf("predeval(%d)", uint8(p))
	}
}

// ParsePredEval parses a predicate-evaluator name, round-tripping
// PredEval.String: "auto", "nested" and "join" (case-insensitive).
func ParsePredEval(s string) (PredEval, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return PredAuto, nil
	case "nested":
		return PredNested, nil
	case "join":
		return PredJoin, nil
	}
	return PredAuto, fmt.Errorf("pathdb: unknown predicate evaluator %q (want auto, nested or join)", s)
}

func (p PredEval) internal() core.PredEval {
	switch p {
	case PredNested:
		return core.PredNested
	case PredJoin:
		return core.PredJoin
	default:
		return core.PredAuto
	}
}

func fromCorePredEval(p core.PredEval) PredEval {
	switch p {
	case core.PredNested:
		return PredNested
	case core.PredJoin:
		return PredJoin
	default:
		return PredAuto
	}
}

// Layout selects the physical cluster placement at load time.
type Layout uint8

// Cluster layouts (see the paper's introduction on why layout matters).
const (
	// Natural keeps document order but displaces a fraction of clusters,
	// modelling a database aged by updates. The default.
	Natural Layout = iota
	// Contiguous places clusters in document order — a freshly imported,
	// unfragmented database.
	Contiguous
	// Shuffled permutes all clusters randomly — heavy fragmentation.
	Shuffled
)

func (l Layout) internal() storage.Layout {
	switch l {
	case Contiguous:
		return storage.LayoutContiguous
	case Shuffled:
		return storage.LayoutShuffled
	default:
		return storage.LayoutNatural
	}
}

// Options configures document loading.
type Options struct {
	// PageSize in bytes (default 8192).
	PageSize int
	// BufferPages is the buffer-pool capacity (default 1000, the paper's
	// configuration).
	BufferPages int
	// Layout is the physical cluster placement (default Natural).
	Layout Layout
	// LayoutSeed makes fragmented layouts reproducible.
	LayoutSeed uint64
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.BufferPages == 0 {
		o.BufferPages = storage.DefaultBufferPages
	}
	return o
}

// DB is one loaded document plus its evaluation machinery. The embedded
// volumeAPI provides the write/transaction surface (Update, UpdateEpoch,
// TxnMetrics, SetTxnOptions), shared with Engine.
type DB struct {
	volumeAPI

	dict  *xmltree.Dictionary
	store *storage.Store

	mu      sync.Mutex // guards chooser and manager creation
	chooser *plan.Chooser

	// The MVCC transaction manager, created lazily by the first write
	// (see txn.go). Reads load it lock-free.
	mgr     atomic.Pointer[txn.Manager]
	txnOpts txn.Options
}

// newDB wires a loaded store into a DB, closing the volumeAPI self-link.
func newDB(dict *xmltree.Dictionary, st *storage.Store) *DB {
	db := &DB{dict: dict, store: st}
	db.volumeAPI = volumeAPI{vol: db}
	return db
}

// getChooser returns the document's cost-model chooser, building it on
// first use and incrementally refreshing its statistics from the per-cluster
// synopses when commits have advanced the volume since. Both paths run over
// a snapshot view with a throwaway ledger: statistics collection is offline
// bookkeeping, not query work, and must not inflate the volume's cost report
// or any query's measured latency.
func (db *DB) getChooser() *plan.Chooser {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.chooser == nil {
		db.chooser = plan.NewChooser(db.store.SnapshotView(new(stats.Ledger)))
	} else {
		db.chooser.Refresh(db.store.SnapshotView(new(stats.Ledger)))
	}
	return db.chooser
}

// LoadXML parses an XML document and stores it.
func LoadXML(data []byte, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	dict := xmltree.NewDictionary()
	doc, err := xmlparse.Parse(dict, data)
	if err != nil {
		return nil, err
	}
	return loadTree(dict, doc, opts)
}

// LoadXMLString is LoadXML over a string.
func LoadXMLString(src string, opts Options) (*DB, error) {
	return LoadXML([]byte(src), opts)
}

// LoadXMLCollection parses several XML documents and stores them in one
// volume. Absolute queries evaluate over the whole collection; a single
// XScan plan then serves all members with one sequential pass (Sec. 5.4.3
// of the paper covers collections explicitly).
func LoadXMLCollection(docs [][]byte, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	dict := xmltree.NewDictionary()
	trees := make([]*xmltree.Node, len(docs))
	for i, data := range docs {
		t, err := xmlparse.Parse(dict, data)
		if err != nil {
			return nil, fmt.Errorf("document %d: %w", i, err)
		}
		trees[i] = t
	}
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), opts.PageSize)
	st, err := storage.ImportCollection(disk, dict, trees, storage.ImportOptions{
		PageSize: opts.PageSize,
		Layout:   opts.Layout.internal(),
		Seed:     opts.LayoutSeed,
	})
	if err != nil {
		return nil, err
	}
	st.SetBufferCapacity(opts.BufferPages)
	return newDB(dict, st), nil
}

// Documents returns the number of documents in the stored collection.
func (db *DB) Documents() int { return len(db.store.Roots()) }

// XMarkConfig configures the built-in XMark-shaped document generator.
type XMarkConfig struct {
	// ScaleFactor is the XMark scale factor (default 1).
	ScaleFactor float64
	// Seed makes the document reproducible.
	Seed uint64
	// EntityScale shrinks the standard XMark populations (default 0.1).
	EntityScale float64
}

// GenerateXMark builds and stores an XMark-shaped benchmark document.
func GenerateXMark(cfg XMarkConfig, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	dict := xmltree.NewDictionary()
	doc := xmark.Generate(dict, xmark.Config{
		ScaleFactor: cfg.ScaleFactor,
		Seed:        cfg.Seed,
		EntityScale: cfg.EntityScale,
	})
	return loadTree(dict, doc, opts)
}

func loadTree(dict *xmltree.Dictionary, doc *xmltree.Node, opts Options) (*DB, error) {
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), opts.PageSize)
	st, err := storage.Import(disk, dict, doc, storage.ImportOptions{
		PageSize: opts.PageSize,
		Layout:   opts.Layout.internal(),
		Seed:     opts.LayoutSeed,
	})
	if err != nil {
		return nil, err
	}
	st.SetBufferCapacity(opts.withDefaults().BufferPages)
	return newDB(dict, st), nil
}

// Pages returns the number of data pages the document occupies, including
// clusters appended by updates.
func (db *DB) Pages() int { return db.store.NumDataPages() }

// ResetStats flushes the buffer pool and zeroes the cost ledger, so the
// next query is measured from a cold start.
func (db *DB) ResetStats() { db.store.ResetForRun() }

// CostReport is a snapshot of the virtual cost ledger.
type CostReport struct {
	Total       stats.Ticks
	CPU         stats.Ticks
	IOWait      stats.Ticks
	PageReads   int64
	SeqReads    int64
	BufferHits  int64
	BufferMiss  int64
	ClustersHit int64
}

// CostReport returns the work accounted since the last ResetStats.
func (db *DB) CostReport() CostReport {
	l := db.store.Ledger()
	return CostReport{
		Total:       l.Total(),
		CPU:         l.CPU,
		IOWait:      l.IOWait,
		PageReads:   l.PageReads,
		SeqReads:    l.SeqPageReads,
		BufferHits:  l.BufferHits,
		BufferMiss:  l.BufferMisses,
		ClustersHit: l.ClustersVisited,
	}
}

// String renders the report compactly.
func (r CostReport) String() string {
	cpuPct := 0.0
	if r.Total > 0 {
		cpuPct = 100 * float64(r.CPU) / float64(r.Total)
	}
	return fmt.Sprintf("total=%v cpu=%v (%.0f%%) reads=%d (seq=%d) hits=%d misses=%d",
		r.Total, r.CPU, cpuPct, r.PageReads, r.SeqReads, r.BufferHits, r.BufferMiss)
}

// SetIOTrace enables or disables recording of every physical I/O event.
func (db *DB) SetIOTrace(on bool) { db.store.Disk().SetTrace(on) }

// IOTraceEvent is one physical device operation.
type IOTraceEvent struct {
	Op   string // "read", "read-seq", "read-async", "write"
	Page uint32
	At   stats.Ticks
}

// IOTrace returns the recorded events in completion order.
func (db *DB) IOTrace() []IOTraceEvent {
	var out []IOTraceEvent
	for _, ev := range db.store.Disk().Trace() {
		out = append(out, IOTraceEvent{Op: ev.Op, Page: uint32(ev.Page), At: ev.At})
	}
	return out
}

// ExportXML serializes the stored document back to XML by walking the
// tree in document order (random cluster loads at border crossings).
func (db *DB) ExportXML(w io.Writer) error {
	return xmlwrite.Write(w, db.dict, db.store.Export(), xmlwrite.Options{Declaration: true})
}

// ExportXMLScan serializes the stored document with one sequential scan,
// assembling per-cluster fragments in memory — the paper's outlook applied
// to export (Sec. 7); much faster than ExportXML on fragmented volumes.
func (db *DB) ExportXMLScan(w io.Writer) error {
	return db.store.ExportScanXML(w)
}

// InsertXML parses an XML fragment (one element) and inserts it as a new
// child of parent, appended after the last child. The returned Node is the
// fragment's root. Updates never relabel or move existing nodes
// (insert-friendly ORDPATH keys; overflow goes to fresh clusters), which is
// the storage property the paper's Sec. 2 holds against scan-order formats.
//
// InsertXML is a one-statement transaction: it runs through DB.Update, so
// the insert commits atomically and durably. Batch several mutations into
// one commit with DB.Update directly.
func (db *DB) InsertXML(parent Node, fragment string) (Node, error) {
	var out Node
	err := db.Update(func(tx *Tx) error {
		n, err := tx.InsertXML(parent, fragment)
		out = n
		return err
	})
	return out, err
}

// InsertXMLBefore inserts the fragment as a child of parent immediately
// before the given sibling, as a one-statement transaction.
func (db *DB) InsertXMLBefore(parent Node, before Node, fragment string) (Node, error) {
	var out Node
	err := db.Update(func(tx *Tx) error {
		n, err := tx.InsertXMLBefore(parent, before, fragment)
		out = n
		return err
	})
	return out, err
}

// Delete removes the node and its whole subtree, as a one-statement
// transaction.
func (db *DB) Delete(n Node) error {
	return db.Update(func(tx *Tx) error { return tx.Delete(n) })
}

// Query compiles a location path, or a union of location paths separated
// by '|'. The returned Query can be tuned and then executed with Count,
// Nodes or Each. Union queries share a single I/O-performing operator
// under the Schedule strategy (the multi-query extension of the paper's
// Sec. 7).
func (db *DB) Query(path string) (*Query, error) {
	branches, err := xpath.ParseUnion(db.dict, path)
	if err != nil {
		return nil, err
	}
	for _, b := range branches {
		if !b.Absolute {
			return nil, fmt.Errorf("pathdb: query %q must be absolute (use Node.Query for relative paths)", path)
		}
	}
	return &Query{db: db, path: branches[0], branches: branches, contexts: db.store.Roots()}, nil
}

// Query is a compiled, tunable location-path query.
type Query struct {
	db       *DB
	path     *xpath.Path   // first branch (all of it for non-unions)
	branches []*xpath.Path // union branches; len == 1 for plain paths
	contexts []storage.NodeID

	strategy Strategy
	sorted   bool
	opts     core.PlanOptions
	choice   *plan.Choice
}

// WithStrategy forces a physical strategy (default Auto).
func (q *Query) WithStrategy(s Strategy) *Query {
	q.strategy = s
	return q
}

// Sorted requests results in document order (Sec. 5.5 of the paper).
func (q *Query) Sorted() *Query {
	q.sorted = true
	return q
}

// WithMemoryLimit bounds the speculative structure S; exceeding it
// degrades the plan to fallback mode.
func (q *Query) WithMemoryLimit(instances int) *Query {
	q.opts.MemLimit = instances
	return q
}

// WithPredEval forces the predicate evaluator (default PredAuto: the
// cost model decides per query).
func (q *Query) WithPredEval(pe PredEval) *Query {
	q.opts.PredEval = pe.internal()
	return q
}

// Plan returns the physical operator tree the query will execute, one
// operator per line (EXPLAIN output).
func (q *Query) Plan() string {
	return q.build().Describe(q.db.dict)
}

// Explain returns the cost-model decision for this query (forcing a
// strategy bypasses the model; Explain still reports its opinion).
func (q *Query) Explain() string {
	return q.db.getChooser().Choose(q.steps()).String()
}

// PlanChoice is the cost model's full decision for a query: the chosen
// strategy, the estimated cluster coverage that drove it, and the virtual
// cost estimated for each candidate (see plan.Chooser).
type PlanChoice struct {
	Strategy     Strategy
	Coverage     float64     // estimated fraction of clusters the path touches
	PagesTouched int         // estimated clusters the path visits
	ScheduleCost stats.Ticks // estimated virtual cost of XSchedule
	ScanCost     stats.Ticks // estimated virtual cost of XScan
	SimpleCost   stats.Ticks // estimated virtual cost of the Simple baseline

	// PredEval is the chosen predicate evaluator (PredNested for paths
	// without predicates); Preds carries the per-step cost detail.
	PredEval PredEval
	Preds    []PredChoice
}

// PredChoice is the cost model's join-vs-nested detail for one
// predicate-bearing location step.
type PredChoice struct {
	Step       int         // 1-based location step index
	Candidates int64       // estimated candidate nodes reaching the step
	NestedCost stats.Ticks // estimated cost of per-candidate probing
	JoinCost   stats.Ticks // estimated cost of the structural semi-join
	Joinable   bool        // every branch expressible as a semi-join
}

func fromPlanChoice(c plan.Choice) PlanChoice {
	out := PlanChoice{
		Strategy:     fromCore(c.Strategy),
		Coverage:     c.Coverage,
		PagesTouched: c.Schedule.PagesTouched,
		ScheduleCost: c.Schedule.Cost,
		ScanCost:     c.Scan.Cost,
		SimpleCost:   c.Simple.Cost,
		PredEval:     fromCorePredEval(c.PredEval),
	}
	for _, p := range c.Preds {
		out.Preds = append(out.Preds, PredChoice{
			Step:       p.Step,
			Candidates: p.Candidates,
			NestedCost: p.Nested,
			JoinCost:   p.Join,
			Joinable:   p.Joinable,
		})
	}
	return out
}

// Choice returns the cost model's structured decision for this query —
// Explain's machine-readable counterpart.
func (q *Query) Choice() PlanChoice {
	return fromPlanChoice(q.db.getChooser().Choose(q.steps()))
}

func (q *Query) steps() []xpath.Step {
	return q.path.Simplify().Steps
}

// hasPredicates reports whether any location step carries a predicate —
// the gate that spares predicate-free forced-strategy queries a chooser
// consultation (and the statistics walk constructing one implies).
func hasPredicates(steps []xpath.Step) bool { return xpath.HasPredicates(steps) }

func (q *Query) build() *core.Plan { return q.buildWith(nil) }

// buildWith compiles the plan with pooled per-query scratch attached. The
// arena's lifetime must cover the plan's execution — Count/Nodes/Each
// borrow one around each run; Plan()/Describe pass nil (no execution).
func (q *Query) buildWith(arena *core.Arena) *core.Plan {
	steps := q.steps()
	opts := q.opts
	opts.SortResults = q.sorted
	opts.Arena = arena
	strat := q.strategy
	if strat == Auto {
		choice := q.db.getChooser().Choose(steps)
		q.choice = &choice
		if opts.PredEval == core.PredAuto {
			opts.PredEval = choice.PredEval
		}
		return core.BuildPlan(q.db.store, steps, q.contexts, choice.Strategy, opts)
	}
	if opts.PredEval == core.PredAuto && hasPredicates(steps) {
		opts.PredEval = q.db.getChooser().Choose(steps).PredEval
	}
	return core.BuildPlan(q.db.store, steps, q.contexts, strat.internal(), opts)
}

// isUnion reports whether the query has several branches.
func (q *Query) isUnion() bool { return len(q.branches) > 1 }

// runUnion evaluates every branch — with one shared XSchedule when the
// strategy allows — and merges the node sets.
func (q *Query) runUnion(arena *core.Arena) []core.Result {
	var all []core.Result
	strat := q.strategy
	opts := q.opts
	opts.Arena = arena
	if strat == Auto || strat == Schedule {
		var queries []core.MultiQuery
		for _, b := range q.branches {
			mq := core.MultiQuery{
				Path:     b.Simplify().Steps,
				Contexts: q.contexts,
			}
			if opts.PredEval == core.PredAuto && hasPredicates(mq.Path) {
				mq.PredEval = q.db.getChooser().Choose(mq.Path).PredEval
			}
			queries = append(queries, mq)
		}
		for _, rs := range core.BuildMultiPlan(q.db.store, queries, opts).Run() {
			all = append(all, rs...)
		}
	} else {
		for _, b := range q.branches {
			steps := b.Simplify().Steps
			bopts := opts
			if bopts.PredEval == core.PredAuto && hasPredicates(steps) {
				bopts.PredEval = q.db.getChooser().Choose(steps).PredEval
			}
			plan := core.BuildPlan(q.db.store, steps, q.contexts, strat.internal(), bopts)
			all = append(all, plan.Run()...)
		}
	}
	// Union semantics: a node set.
	seen := make(map[storage.NodeID]bool, len(all))
	out := all[:0]
	for _, r := range all {
		if seen[r.Node] {
			continue
		}
		seen[r.Node] = true
		out = append(out, r)
	}
	if q.sorted {
		sort.Slice(out, func(i, j int) bool {
			return ordpath.Compare(out[i].Ord, out[j].Ord) < 0
		})
	}
	return out
}

// Count executes the query and returns its cardinality.
func (q *Query) Count() int {
	arena := core.GetArena()
	defer core.PutArena(arena)
	if q.isUnion() {
		return len(q.runUnion(arena))
	}
	return q.buildWith(arena).Count()
}

// Nodes executes the query and returns handles on the result nodes.
func (q *Query) Nodes() []Node {
	arena := core.GetArena()
	defer core.PutArena(arena)
	var rs []core.Result
	if q.isUnion() {
		rs = q.runUnion(arena)
	} else {
		rs = q.buildWith(arena).Run()
	}
	out := make([]Node, len(rs))
	for i, r := range rs {
		out[i] = Node{db: q.db, id: r.Node}
	}
	return out
}

// Each executes the query, invoking f per result in production order.
// Union queries are materialized first (their branches interleave on the
// shared scheduler).
func (q *Query) Each(f func(Node) bool) {
	arena := core.GetArena()
	defer core.PutArena(arena)
	if q.isUnion() {
		for _, r := range q.runUnion(arena) {
			if !f(Node{db: q.db, id: r.Node}) {
				return
			}
		}
		return
	}
	p := q.buildWith(arena)
	root := p.Root()
	root.Open()
	defer root.Close()
	for {
		inst, ok := root.Next()
		if !ok {
			return
		}
		if !f(Node{db: q.db, id: inst.NR}) {
			return
		}
	}
}

// VolumeStats summarises the physical storage of the loaded document.
type VolumeStats struct {
	Pages       int // data pages (clusters)
	Records     int // physical records, including border nodes
	CoreNodes   int // logical nodes
	BorderNodes int // proxy records (paper Sec. 3.4)
	UsedBytes   int // payload bytes across all pages
}

// VolumeStats inspects the volume (an offline pass; call ResetStats before
// measuring queries afterwards).
func (db *DB) VolumeStats() VolumeStats {
	vs := db.store.Stats()
	return VolumeStats{
		Pages:       vs.DataPages,
		Records:     vs.Records,
		CoreNodes:   vs.CoreNodes,
		BorderNodes: vs.BorderNodes,
		UsedBytes:   vs.UsedBytes,
	}
}

// Node is a handle on a stored document node.
//
// Handles stay valid across queries and most updates; an insert that
// forces a page split may relocate records, after which handles to the
// moved nodes resolve to a border node or dangle — re-resolve nodes via a
// fresh query after heavy updates (the engine's NodeIDs are physical
// record addresses, as in the paper's Example 2).
type Node struct {
	db *DB
	id storage.NodeID
}

// ID returns the node's stable storage identifier.
func (n Node) ID() uint64 { return uint64(n.id) }

// Name returns the element or attribute name (empty for text nodes).
func (n Node) Name() string {
	c := n.db.store.Swizzle(n.id)
	return n.db.dict.Name(c.Tag())
}

// Text returns the node's own text (attribute value, text content);
// for elements it concatenates the subtree's text.
func (n Node) Text() string {
	c := n.db.store.Swizzle(n.id)
	switch c.Kind() {
	case xmltree.Element, xmltree.Document:
		return n.db.store.ExportSubtree(n.id).TextContent()
	default:
		return c.Text()
	}
}

// XML serializes the subtree rooted at this node.
func (n Node) XML() string {
	return xmlwrite.String(n.db.dict, n.db.store.ExportSubtree(n.id), xmlwrite.Options{})
}

// OrdPath returns the node's document-order key in dotted form.
func (n Node) OrdPath() string {
	return n.db.store.Swizzle(n.id).OrdKey().String()
}

// Query evaluates a relative location path with this node as context.
func (n Node) Query(path string) (*Query, error) {
	parsed, err := xpath.Parse(n.db.dict, path)
	if err != nil {
		return nil, err
	}
	if parsed.Absolute {
		return nil, fmt.Errorf("pathdb: relative path expected, got %q", path)
	}
	return &Query{db: n.db, path: parsed, contexts: []storage.NodeID{n.id}}, nil
}
