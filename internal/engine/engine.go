// Package engine executes many queries concurrently against one volume.
//
// The seed repository evaluates one query at a time on one goroutine; this
// package turns it into a servable system along the lines the paper's
// outlook sketches (Sec. 7): several sessions submit queries, admission
// control bounds the work in flight, and a batching layer coalesces the
// cluster requests of concurrently admitted XSchedule plans into the single
// asynchronous device queue (core.MultiPlan), so the I/O scheduler reorders
// across query boundaries.
//
// Execution model — parallel gang scheduling. Any number of goroutines
// submit into a bounded admission queue; a single dispatcher drains the
// queue in gangs of at most MaxInFlight queries and classifies each gang:
// batchable members are partitioned into shared-scheduler groups, the rest
// run solo. The resulting tasks execute on a pool of up to Parallel worker
// goroutines — the storage read path (buffer pool, swizzle cache, simulated
// device) is safe for concurrent readers, so independent plans make
// wall-clock progress in parallel while still sharing every physical cache.
//
// Cost accounting. Each query runs against a read-only storage view
// (storage.Store.Reader) with its own stats.Ledger: the query's CPU charges
// and I/O waits advance a private virtual clock, so per-query costs are
// independent of how workers interleave. A shared group additionally owns a
// group ledger that pays for the pooled scheduler I/O. At completion every
// ledger is folded into the volume ledger (stats.Ledger.Merge) — addition
// commutes, so the volume totals are deterministic regardless of worker
// scheduling, and with a warm buffer each query's cost is bit-identical to
// a serial run.
//
// Cancellation. Every query carries a context.Context. A query cancelled
// while queued never executes; one cancelled mid-execution stops at the
// next operator poll point, and its in-flight cluster prefetches are
// cancelled (per-view, so concurrent queries keep theirs) so they cannot
// leak into subsequent queries.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathdb/internal/core"
	"pathdb/internal/ordpath"
	"pathdb/internal/plan"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xpath"
)

// Engine errors.
var (
	// ErrClosed is returned for queries submitted to (or stranded in) a
	// closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrQueueFull is the admission-control rejection: the queue is at
	// QueueDepth and the caller chose not to wait (TrySubmit).
	ErrQueueFull = errors.New("engine: admission queue full")
)

// A Snapshot pins one version of the volume for the duration of a gang:
// every view opened from it resolves pages through the same immutable
// version map, so concurrent commits never tear an executing query.
type Snapshot interface {
	// View opens a read view of the pinned version, charging to led.
	View(led *stats.Ledger) *storage.Store
	// Epoch identifies the pinned version.
	Epoch() uint64
	// Release unpins the version (idempotent), allowing superseded pages
	// to be reclaimed.
	Release()
}

// A SnapshotSource admits readers onto a pinned version; the txn manager
// is the canonical implementation (wired through Config.Snapshots by the
// pathdb facade).
type SnapshotSource interface {
	Snapshot() Snapshot
}

// Config tunes the engine's admission control.
type Config struct {
	// MaxInFlight caps the gang size: how many admitted queries execute
	// together, sharing the I/O scheduler where possible. Default 8.
	MaxInFlight int
	// QueueDepth bounds the admission queue; TrySubmit beyond it returns
	// ErrQueueFull, Submit blocks. Default 64.
	QueueDepth int
	// Parallel is the worker-pool width per gang: how many gang tasks
	// (shared groups and solo queries) execute concurrently. Default
	// min(MaxInFlight, GOMAXPROCS); an explicit value may exceed
	// GOMAXPROCS (oversubscription — useful for exercising the concurrent
	// read path under -race on few cores).
	Parallel int
	// K overrides XSchedule's queue fill target (0 = core.DefaultK).
	K int
	// Snapshots, when set, pins one version per gang: every member view
	// resolves pages through it, isolating queries from concurrent
	// commits. Nil falls back to a view pinned at gang start (equivalent
	// on volumes without a txn manager, where the version never moves).
	Snapshots SnapshotSource
	// Chooser, when set, is an existing cost chooser to share (it is
	// concurrency-safe) instead of collecting a second set of document
	// statistics at construction. The facade passes its own so a DB pays
	// for exactly one statistics walk.
	Chooser *plan.Chooser
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
		if c.Parallel > c.MaxInFlight {
			c.Parallel = c.MaxInFlight
		}
	}
	return c
}

// Query is one unit of admitted work.
type Query struct {
	// Label identifies the query in results and load reports (typically
	// the source path text).
	Label string
	// Path is the simplified physical step list.
	Path []xpath.Step
	// Contexts are the context nodes; nil means the volume roots.
	Contexts []storage.NodeID
	// Auto asks the cost model to choose the strategy; otherwise Strategy
	// is used as given.
	Auto     bool
	Strategy core.Strategy
	// Sorted requests document-order results.
	Sorted bool
	// MemLimit bounds the speculative structure S (0 = unlimited).
	MemLimit int
	// Limit caps delivered results at N (0 = unlimited). Unsorted queries
	// stop pulling the operator tree after N matches; Sorted queries must
	// evaluate fully (order enforcement), sort, then truncate.
	Limit int
	// Stream delivers results incrementally through Pending.C instead of
	// buffering them in Result.Results. Streaming queries always run solo
	// (never on a gang-shared scheduler): their production is paced by the
	// consumer, and parking a shared group's pooled I/O behind a slow
	// consumer would stall the other members.
	Stream bool
	// PredEval forces the predicate evaluator; PredAuto defers to the
	// cost model (resolved by the dispatcher alongside the strategy).
	PredEval core.PredEval
}

// Result is the outcome of one executed query.
type Result struct {
	Results  []core.Result
	Strategy core.Strategy
	Choice   *plan.Choice // cost-model decision when Auto was set

	Gang   int  // how many queries executed in this query's gang
	Shared bool // ran on a gang-shared scheduler (batched I/O)

	// Per-query virtual costs, measured on the query's private ledger.
	// CostV = CPUV + IOWaitV is the query's own elapsed virtual time; with
	// a warm buffer it is deterministic and equal to a serial run of the
	// same query. SharedV is this query's group-scheduler clock (pooled
	// prefetch I/O paid once per shared group; the same value is reported
	// to every member, zero for solo runs).
	CostV   stats.Ticks
	CPUV    stats.Ticks
	IOWaitV stats.Ticks
	SharedV stats.Ticks

	// Virtual stamps on the volume clock (which advances as per-query
	// ledgers merge into it at completion).
	SubmitV stats.Ticks
	StartV  stats.Ticks
	DoneV   stats.Ticks

	// Wall-clock components (the simulation's real cost).
	WallQueue time.Duration
	WallExec  time.Duration
}

// Count returns the result cardinality.
func (r *Result) Count() int { return len(r.Results) }

// VirtualLatency is the submit-to-done latency on the volume clock.
func (r *Result) VirtualLatency() stats.Ticks { return r.DoneV - r.SubmitV }

// Metrics is a snapshot of the engine's counters.
type Metrics struct {
	Submitted int64       // admitted queries
	Rejected  int64       // ErrQueueFull rejections
	Completed int64       // finished without error
	Cancelled int64       // failed with a context error
	Gangs     int64       // dispatcher batches executed
	Batched   int64       // queries that ran on a shared scheduler
	Faulted   int64       // queries failed by a storage page fault (I/O or corruption)
	Updates   int64       // write transactions admitted via AdmitWrite
	OverheadV stats.Ticks // virtual CPU spent on admission/dispatch bookkeeping
}

// Engine owns the dispatcher for one volume. Create with New, then open
// sessions with NewSession; Close shuts the dispatcher down.
type Engine struct {
	store   *storage.Store
	chooser *plan.Chooser
	cfg     Config

	queue chan *Pending
	stop  chan struct{}
	drain chan struct{}
	wg    sync.WaitGroup

	// admit guards the submission fast path (read side) against shutdown
	// (write side): Close/Drain flip closed under the write lock, so once
	// either returns no goroutine can still be mid-send on queue and a
	// final sweep of the queue cannot strand a Pending.
	admit     sync.RWMutex
	closed    atomic.Bool
	drainOnce sync.Once
	stopOnce  sync.Once

	// The engine's own clock domain on the shared device: admission and
	// dispatch bookkeeping is charged here, separate from the volume clock
	// that queries pay. Future cross-volume I/O issues through dom.
	dom *vdisk.Domain

	// writers tracks admitted write transactions so shutdown waits for
	// them the way it waits for the in-flight gang.
	writers sync.WaitGroup

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	gangs     atomic.Int64
	batched   atomic.Int64
	faulted   atomic.Int64
	updates   atomic.Int64
}

// New builds an engine over store and starts its dispatcher. The cost model
// collects document statistics in an offline pass; callers measuring cold
// runs should store.ResetForRun() afterwards.
func New(store *storage.Store, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = plan.NewChooser(store)
	}
	e := &Engine{
		store:   store,
		chooser: chooser,
		cfg:     cfg,
		queue:   make(chan *Pending, cfg.QueueDepth),
		stop:    make(chan struct{}),
		drain:   make(chan struct{}),
		dom:     store.Disk().NewDomain(stats.NewLedger()),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Store returns the engine's volume.
func (e *Engine) Store() *storage.Store { return e.store }

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Submitted: e.submitted.Load(),
		Rejected:  e.rejected.Load(),
		Completed: e.completed.Load(),
		Cancelled: e.cancelled.Load(),
		Gangs:     e.gangs.Load(),
		Batched:   e.batched.Load(),
		Faulted:   e.faulted.Load(),
		Updates:   e.updates.Load(),
		OverheadV: e.dom.Ledger().Total(),
	}
}

// AdmitWrite admits one write transaction: it fails with ErrClosed once
// the engine is draining, and otherwise registers the writer so Drain and
// Close wait for it like they wait for the in-flight gang. The returned
// release must be called exactly once, when the write has committed or
// aborted.
func (e *Engine) AdmitWrite() (release func(), err error) {
	e.admit.RLock()
	defer e.admit.RUnlock()
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.writers.Add(1)
	e.updates.Add(1)
	var once sync.Once
	return func() { once.Do(e.writers.Done) }, nil
}

// Close stops the dispatcher, failing queries still queued with ErrClosed.
// Submissions racing Close fail with ErrClosed as well. Close waits for the
// in-flight gang to finish.
func (e *Engine) Close() {
	e.shutAdmission()
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	e.writers.Wait()
	e.failQueued()
}

// Drain stops admission — submissions from here on fail with ErrClosed —
// then lets the dispatcher finish every query already admitted (queued or
// in flight) before stopping it. This is the graceful half of shutdown:
// Close abandons the queue, Drain serves it. If ctx expires first, Drain
// falls back to Close (remaining queued queries fail with ErrClosed) and
// returns the context's error. Draining reports the engine's state to
// callers that shed before submitting.
func (e *Engine) Drain(ctx context.Context) error {
	e.shutAdmission()
	e.drainOnce.Do(func() { close(e.drain) })
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		e.writers.Wait() // admitted writes finish like admitted queries
		e.failQueued()   // a submission that raced shutAdmission
		return nil
	case <-ctx.Done():
		e.Close()
		return ctx.Err()
	}
}

// Draining reports whether the engine has stopped admitting queries.
func (e *Engine) Draining() bool { return e.closed.Load() }

// shutAdmission flips the closed flag under the admission write lock: when
// it returns, every future Submit/TrySubmit observes closed, and no
// goroutine is still between its closed check and its queue send.
func (e *Engine) shutAdmission() {
	e.admit.Lock()
	e.closed.Store(true)
	e.admit.Unlock()
}

// failQueued fails every query still sitting in the admission queue after
// the dispatcher has exited.
func (e *Engine) failQueued() {
	for {
		select {
		case p := <-e.queue:
			p.finish(Result{}, ErrClosed)
		default:
			return
		}
	}
}

// NewSession opens a session. Sessions are cheap handles; each submitting
// goroutine should own one.
func (e *Engine) NewSession() *Session { return &Session{e: e} }

// run is the dispatcher: it drains the admission queue in gangs, classifies
// each gang on this goroutine (the cost-model chooser is serial), and fans
// the resulting tasks out to the gang's worker pool.
func (e *Engine) run() {
	defer e.wg.Done()
	for {
		select {
		case p := <-e.queue:
			e.execute(e.gather(p))
		case <-e.stop:
			e.failQueued()
			return
		case <-e.drain:
			// Graceful drain: admission is already closed, so the queue
			// can only shrink. Serve what is left, then exit. A hard stop
			// racing the drain still wins between gangs.
			for {
				select {
				case <-e.stop:
					e.failQueued()
					return
				case p := <-e.queue:
					e.execute(e.gather(p))
				default:
					return
				}
			}
		}
	}
}

// gather greedily extends a gang up to MaxInFlight without waiting: the
// queries that arrived while the previous gang executed batch together.
func (e *Engine) gather(first *Pending) []*Pending {
	gang := []*Pending{first}
	for len(gang) < e.cfg.MaxInFlight {
		select {
		case p := <-e.queue:
			gang = append(gang, p)
		default:
			return gang
		}
	}
	return gang
}

// batchable reports whether a query can join a gang-shared scheduler: the
// shared XStep chain has no predicate filters, and only Schedule plans pool
// their cluster accesses.
func batchable(strat core.Strategy, path []xpath.Step) bool {
	if strat != core.StrategySchedule {
		return false
	}
	for _, s := range path {
		if len(s.Predicates) > 0 {
			return false
		}
	}
	return true
}

// execUnit is one gang member with its resolved strategy and predicate
// evaluator.
type execUnit struct {
	p      *Pending
	strat  core.Strategy
	pred   core.PredEval
	choice *plan.Choice
}

// view opens a read view for one gang member: through the gang's pinned
// snapshot when one exists, else pinned to the version current at call
// time (immovable on volumes without a txn manager).
func (e *Engine) view(snap Snapshot, led *stats.Ledger) *storage.Store {
	if snap != nil {
		return snap.View(led)
	}
	return e.store.SnapshotView(led)
}

// execute runs one gang: batchable members are partitioned into shared
// groups (each a MultiPlan), the rest run solo, and the resulting tasks
// execute on a worker pool of up to cfg.Parallel goroutines. The whole
// gang reads one pinned snapshot, acquired here and released when every
// member has finished.
func (e *Engine) execute(gang []*Pending) {
	e.gangs.Add(1)
	var snap Snapshot
	if e.cfg.Snapshots != nil {
		snap = e.cfg.Snapshots.Snapshot()
		defer snap.Release()
	}
	model := e.store.Disk().Model()
	// Dispatch bookkeeping is charged to the engine's own clock domain,
	// one set-op per admitted member, keeping the volume clock pure.
	e.dom.Ledger().AdvanceCPU(stats.Ticks(len(gang)) * model.CPUSetOp)

	// Commits since the last gang are folded into the chooser's statistics
	// from the rewritten clusters' synopses (the dispatcher is the only
	// Choose caller, so the refresh needs no lock). Offline bookkeeping: a
	// throwaway ledger, not the volume clock.
	if e.chooser.Epoch() != e.store.VersionEpoch() {
		e.chooser.Refresh(e.store.SnapshotView(stats.NewLedger()))
	}

	var shared, solo []execUnit
	for _, p := range gang {
		if err := p.ctx.Err(); err != nil {
			e.cancelled.Add(1)
			p.finish(Result{}, err)
			continue
		}
		u := execUnit{p: p, strat: p.q.Strategy, pred: p.q.PredEval}
		if p.q.Auto {
			c := e.chooser.Choose(p.q.Path)
			u.strat, u.choice = c.Strategy, &c
			if u.pred == core.PredAuto {
				u.pred = c.PredEval
			}
		} else if u.pred == core.PredAuto && xpath.HasPredicates(p.q.Path) {
			// A forced strategy still leaves the predicate evaluator to the
			// cost model.
			u.pred = e.chooser.Choose(p.q.Path).PredEval
		}
		if !p.q.Stream && batchable(u.strat, p.q.Path) {
			shared = append(shared, u)
		} else {
			solo = append(solo, u)
		}
	}
	// A shared group needs at least two members to be worth the demux.
	if len(shared) == 1 {
		solo = append(solo, shared[0])
		shared = nil
	}
	gangSize := len(shared) + len(solo)

	groups := splitShared(shared, e.cfg.Parallel)
	tasks := make([]func(), 0, len(groups)+len(solo))
	for _, g := range groups {
		tasks = append(tasks, func() { e.runShared(snap, g, gangSize) })
	}
	for _, u := range solo {
		tasks = append(tasks, func() { e.runSolo(snap, u, gangSize) })
	}
	e.runTasks(tasks)
}

// splitShared partitions the batchable members into up to `workers`
// contiguous shared groups of at least two members each. One group
// maximises I/O pooling but runs serially (a MultiPlan drains on one
// goroutine); several groups trade a little duplicated scheduler work for
// wall-clock parallelism — they still share loaded pages through the
// common buffer pool and deduplicated device queue.
func splitShared(units []execUnit, workers int) [][]execUnit {
	if len(units) == 0 {
		return nil
	}
	n := len(units) / 2 // each group needs ≥2 members
	if n > workers {
		n = workers
	}
	if n < 1 {
		n = 1
	}
	groups := make([][]execUnit, 0, n)
	per, extra := len(units)/n, len(units)%n
	for i, g := 0, 0; g < n; g++ {
		sz := per
		if g < extra {
			sz++
		}
		groups = append(groups, units[i:i+sz])
		i += sz
	}
	return groups
}

// runTasks executes the gang's tasks on up to cfg.Parallel workers. With a
// single worker (or task) everything runs on the calling goroutine — the
// dispatcher — preserving the fully serial execution order.
func (e *Engine) runTasks(tasks []func()) {
	n := e.cfg.Parallel
	if n > len(tasks) {
		n = len(tasks)
	}
	if n <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	next := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				t()
			}
		}()
	}
	for _, t := range tasks {
		next <- t
	}
	close(next)
	wg.Wait()
}

func (e *Engine) contextsOf(q Query) []storage.NodeID {
	if q.Contexts != nil {
		return q.Contexts
	}
	return e.store.Roots()
}

// runShared executes one shared group of a gang on a gang-shared XSchedule:
// every member's cluster accesses pool in the single device queue, so
// overlapping working sets load once and the scheduler reorders across
// query boundaries. The pooled prefetch I/O is paid by a group ledger;
// every member charges its own CPU and synchronous I/O to a private view.
func (e *Engine) runShared(snap Snapshot, units []execUnit, gangSize int) {
	e.batched.Add(int64(len(units)))
	// Every ledger of this run is seeded with the device's current instant:
	// the gang arrives now, and is billed for time past its arrival — not
	// for device history that earlier gangs and committed writers already
	// paid for. The seed is subtracted back out before folding into the
	// volume ledger, whose clock is a sum of work.
	baseV := e.store.Disk().Clock()
	gled := stats.NewLedger()
	gled.SeedAt(baseV)
	gview := e.view(snap, gled)
	startV := e.store.Ledger().Total()
	startW := time.Now()

	queries := make([]core.MultiQuery, len(units))
	qleds := make([]*stats.Ledger, len(units))
	for i, u := range units {
		qleds[i] = stats.NewLedger()
		qleds[i].SeedAt(baseV)
		queries[i] = core.MultiQuery{
			Path:     u.p.q.Path,
			Contexts: e.contextsOf(u.p.q),
			Ctx:      u.p.ctx,
			MemLimit: u.p.q.MemLimit,
			PredEval: u.pred,
			Store:    e.view(snap, qleds[i]),
		}
	}
	buckets := make([][]core.Result, len(units))
	arena := core.GetArena()
	defer core.PutArena(arena)
	ferr := func() (ferr *storage.PageError) {
		var mp *core.MultiPlan
		defer func() {
			if r := recover(); r != nil {
				// Close on the unwind path too: pooled navigation
				// iterators and arena structures must not leak with the
				// aborted run (RunEach defers its own Close; this covers
				// a fault between build and run — Close is idempotent).
				if mp != nil {
					mp.Close()
				}
				if pe, ok := storage.AsPageFault(r); ok {
					ferr = pe
					return
				}
				panic(r)
			}
		}()
		mp = core.BuildMultiPlan(gview, queries, core.PlanOptions{K: e.cfg.K, Arena: arena})
		mp.RunEach(
			func(i int) bool {
				u := units[i]
				if u.p.ctx.Err() != nil {
					return true
				}
				// An unsorted member with a result cap is done once its
				// bucket is full (a sorted member must see everything
				// before truncating).
				lim := u.p.q.Limit
				return lim > 0 && !u.p.q.Sorted && len(buckets[i]) >= lim
			},
			func(i int, r core.Result) { buckets[i] = append(buckets[i], r) },
		)
		return nil
	}()
	if ferr != nil {
		// A page fault inside the shared scheduler poisons the whole
		// group run: the partial buckets are unusable because RunEach
		// interleaves members. Withdraw the group's in-flight
		// prefetches, account the spent work, and re-run every member
		// on its own solo plan — only queries that genuinely need the
		// bad page fail with the typed error; the rest of the gang
		// completes normally off the (still warm) buffer pool.
		gview.CancelRequests()
		e.store.Ledger().Merge(gled.Sub(clockBase(baseV)))
		for i := range qleds {
			e.store.Ledger().Merge(qleds[i].Sub(clockBase(baseV)))
		}
		for _, u := range units {
			e.runSolo(snap, u, gangSize)
		}
		return
	}

	sharedV := gled.Total() - baseV
	e.store.Ledger().Merge(gled.Sub(clockBase(baseV)))
	wall := time.Since(startW)
	anyCancelled := false
	for i, u := range units {
		if err := u.p.ctx.Err(); err != nil {
			anyCancelled = true
			e.cancelled.Add(1)
			e.store.Ledger().Merge(qleds[i].Sub(clockBase(baseV)))
			u.p.finish(Result{}, err)
			continue
		}
		res := Result{
			Results:   buckets[i],
			Strategy:  core.StrategySchedule,
			Choice:    u.choice,
			Gang:      gangSize,
			Shared:    true,
			SharedV:   sharedV,
			SubmitV:   u.p.submitV,
			StartV:    startV,
			WallQueue: startW.Sub(u.p.submitW),
			WallExec:  wall,
		}
		e.deliver(u.p, res, qleds[i], baseV)
	}
	if anyCancelled {
		// Abandon the cancelled members' in-flight prefetches so they
		// cannot surface inside a later gang. Prefetches belong to the
		// group's waiter, so this leaves concurrent groups untouched.
		gview.CancelRequests()
	}
}

// runSolo executes one member on its own plan over a private storage view.
func (e *Engine) runSolo(snap Snapshot, u execUnit, gangSize int) {
	baseV := e.store.Disk().Clock()
	qled := stats.NewLedger()
	qled.SeedAt(baseV)
	view := e.view(snap, qled)
	startV := e.store.Ledger().Total()
	startW := time.Now()

	var results []core.Result
	arena := core.GetArena()
	defer core.PutArena(arena)
	ferr := func() (ferr *storage.PageError) {
		var root core.Operator
		opened := false
		defer func() {
			if r := recover(); r != nil {
				// Close on the unwind path too: pooled navigation
				// iterators and arena structures must not leak with the
				// aborted query.
				if opened {
					root.Close()
				}
				if pe, ok := storage.AsPageFault(r); ok {
					ferr = pe
					return
				}
				panic(r)
			}
		}()
		p := core.BuildPlan(view, u.p.q.Path, e.contextsOf(u.p.q), u.strat, core.PlanOptions{
			K:        e.cfg.K,
			MemLimit: u.p.q.MemLimit,
			Ctx:      u.p.ctx,
			Arena:    arena,
			PredEval: u.pred,
		})
		root = p.Root()
		root.Open()
		opened = true
		live := u.p.sink != nil && !u.p.q.Sorted
		limit := u.p.q.Limit
		for {
			inst, ok := root.Next()
			if !ok {
				break
			}
			r := core.Result{Node: inst.NR, Ord: inst.Ord}
			if live {
				// Incremental delivery: hand the match to the consumer
				// now; a false emit means the consumer is gone (context
				// cancelled or engine stopping), so stop pulling.
				if !e.emit(u.p, r) {
					break
				}
				if limit > 0 && u.p.sent >= limit {
					break
				}
				continue
			}
			results = append(results, r)
			if limit > 0 && !u.p.q.Sorted && len(results) >= limit {
				break
			}
		}
		opened = false
		root.Close()
		return nil
	}()
	if ferr != nil {
		// The fault already exhausted the storage retry budget; fail
		// just this query, withdraw its outstanding prefetches so they
		// cannot surface inside a later gang, and account its work.
		e.faulted.Add(1)
		view.CancelRequests()
		e.store.Ledger().Merge(qled.Sub(clockBase(baseV)))
		u.p.finish(Result{}, ferr)
		return
	}

	if err := u.p.ctx.Err(); err != nil {
		e.cancelled.Add(1)
		view.CancelRequests()
		e.store.Ledger().Merge(qled.Sub(clockBase(baseV)))
		u.p.finish(Result{}, err)
		return
	}
	res := Result{
		Results:   results,
		Strategy:  u.strat,
		Choice:    u.choice,
		Gang:      gangSize,
		SubmitV:   u.p.submitV,
		StartV:    startV,
		WallQueue: startW.Sub(u.p.submitW),
		WallExec:  time.Since(startW),
	}
	e.deliver(u.p, res, qled, baseV)
}

// emit hands one result to a streaming consumer, blocking when the sink is
// full (back-pressure: the producer runs at most streamDepth results ahead).
// It reports false — stop producing — when the query's context is cancelled
// or the engine is stopping, so an abandoned consumer can never wedge a
// worker or the dispatcher.
func (e *Engine) emit(p *Pending, r core.Result) bool {
	select {
	case p.sink <- r:
		p.sent++
		return true
	default:
	}
	select {
	case p.sink <- r:
		p.sent++
		return true
	case <-p.ctx.Done():
		return false
	case <-e.stop:
		return false
	}
}

// clockBase is a ledger snapshot representing a seeded arrival instant, for
// subtracting the seed back out of a per-query ledger before merging it
// into the volume ledger.
func clockBase(t stats.Ticks) stats.Ledger { return stats.Ledger{Now: t} }

// deliver applies per-query post-processing (the document-order sort stays
// off the shared path, charged to the query's own ledger), folds the query
// ledger into the volume ledger, stamps the per-query costs and completes
// the waiter. baseV is the device instant the ledger was seeded at; only
// the time past it is the query's own.
func (e *Engine) deliver(p *Pending, res Result, qled *stats.Ledger, baseV stats.Ticks) {
	if p.q.Sorted {
		rs := res.Results
		if len(rs) > 1 {
			cmp := 0
			sort.SliceStable(rs, func(i, j int) bool {
				cmp++
				return ordpath.Compare(rs[i].Ord, rs[j].Ord) < 0
			})
			qled.AdvanceCPU(stats.Ticks(cmp) * e.store.Disk().Model().CPUSetOp)
		}
		if p.q.Limit > 0 && len(rs) > p.q.Limit {
			// Order enforcement saw everything (and paid for it); the cap
			// keeps the first N in document order.
			res.Results = rs[:p.q.Limit]
		}
	}
	if p.sink != nil {
		// Streaming delivery of whatever is still buffered: sorted runs
		// buffer producer-side for order enforcement and flush here;
		// unsorted runs already emitted from the pull loop.
		for _, r := range res.Results {
			if !e.emit(p, r) {
				break
			}
		}
		res.Results = nil
	}
	snap := qled.Sub(clockBase(baseV))
	res.CostV, res.CPUV, res.IOWaitV = snap.Now, snap.CPU, snap.IOWait
	e.store.Ledger().Merge(snap)
	res.DoneV = e.store.Ledger().Total()
	e.completed.Add(1)
	p.finish(res, nil)
}
