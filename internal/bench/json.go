package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Machine-readable benchmark output. xbench -json writes one BENCH_*.json
// file per figure/table/ablation so the performance trajectory of the
// repository can be tracked across commits by diffing or plotting these
// files.

// MeasurementJSON is the serialized form of one Measurement. Virtual costs
// (total_s, cpu_s) are machine independent; wall_s and allocs_per_op track
// the simulation's real cost so wall-clock and allocation regressions are
// visible in the benchmark files.
type MeasurementJSON struct {
	Query       string  `json:"query"`
	Strategy    string  `json:"strategy"`
	SF          float64 `json:"sf"`
	Count       int     `json:"count"`
	TotalSec    float64 `json:"total_s"`
	CPUSec      float64 `json:"cpu_s"`
	WallSec     float64 `json:"wall_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// AblationRowJSON is the serialized form of one AblationRow.
type AblationRowJSON struct {
	Label    string  `json:"label"`
	Count    int     `json:"count"`
	TotalSec float64 `json:"total_s"`
	CPUSec   float64 `json:"cpu_s"`
	Clusters int64   `json:"clusters"`
	Notes    string  `json:"notes,omitempty"`
}

type benchFile struct {
	Name         string            `json:"name"`
	Title        string            `json:"title"`
	Measurements []MeasurementJSON `json:"measurements,omitempty"`
	Rows         []AblationRowJSON `json:"rows,omitempty"`
}

func writeJSON(dir, name string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(data, '\n'), 0o644)
}

// WriteMeasurementsJSON writes ms to dir/BENCH_<name>.json.
func WriteMeasurementsJSON(dir, name, title string, ms []Measurement) error {
	f := benchFile{Name: name, Title: title}
	for _, m := range ms {
		f.Measurements = append(f.Measurements, MeasurementJSON{
			Query:       m.Query,
			Strategy:    m.Strategy.String(),
			SF:          m.SF,
			Count:       m.Count,
			TotalSec:    m.Total.Seconds(),
			CPUSec:      m.CPU.Seconds(),
			WallSec:     m.Wall.Seconds(),
			AllocsPerOp: m.Allocs,
		})
	}
	return writeJSON(dir, name, f)
}

// LoadJSON is the machine-readable summary of one xload run: virtual and
// wall-clock throughput side by side, per-request allocations, and the
// engine's admission/dispatch counters so shedding and batching behavior
// are part of the tracked trajectory.
type LoadJSON struct {
	Mode        string  `json:"mode"` // "engine" (in-process) or "url" (networked)
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Mix         string  `json:"mix"`
	Strategy    string  `json:"strategy"`
	Parallel    int     `json:"parallel"`
	VirtualSec  float64 `json:"virtual_s"`
	WallSec     float64 `json:"wall_s"`
	VirtualQPS  float64 `json:"throughput_virtual_qps"`
	WallQPS     float64 `json:"throughput_wall_qps"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	P50WallSec  float64 `json:"p50_wall_s"`
	P99WallSec  float64 `json:"p99_wall_s"`
	P50VirtSec  float64 `json:"p50_virtual_s"`
	P99VirtSec  float64 `json:"p99_virtual_s"`

	// Streamed runs (-stream): the closed loop above delivered through
	// cursors (engine mode) or NDJSON (url mode), and a dedicated
	// uncontended pass measured time-to-first-result per request — TTFR
	// is a per-request property, and under the closed loop the engine's
	// gang-sequential dispatch makes queue wait dominate both the first
	// and the last node, hiding the streaming shape. The drain
	// percentiles are the same pass's full-drain times: p50_ttfr_s well
	// under p50_drain_s is the incremental-delivery win, and benchgate
	// gates TTFR regressions (streaming silently degrading to
	// buffer-then-replay shows as TTFR jumping toward drain).
	Stream      bool    `json:"stream,omitempty"`
	P50TTFRSec  float64 `json:"p50_ttfr_s,omitempty"`
	P99TTFRSec  float64 `json:"p99_ttfr_s,omitempty"`
	P50DrainSec float64 `json:"p50_drain_s,omitempty"`
	P99DrainSec float64 `json:"p99_drain_s,omitempty"`

	// Engine counters (engine.Metrics, scraped from /metrics in url mode).
	Submitted int64 `json:"engine_submitted"`
	Rejected  int64 `json:"engine_rejected"`
	Gangs     int64 `json:"engine_gangs"`
	Batched   int64 `json:"engine_batched"`

	// Client-observed flow control (url mode): 503-retry rounds and 504s.
	ShedRetries int64 `json:"shed_retries,omitempty"`
	Timeouts    int64 `json:"timeouts,omitempty"`

	// Mixed read/write workloads (-write-frac > 0): transaction outcomes
	// and commit latency. flushes_per_commit below 1 means group commit
	// batched concurrent writers onto shared WAL flushes.
	WriteFrac        float64 `json:"write_frac,omitempty"`
	Writes           int64   `json:"writes,omitempty"`
	Commits          uint64  `json:"txn_commits,omitempty"`
	Aborts           uint64  `json:"txn_aborts,omitempty"`
	Groups           uint64  `json:"txn_groups,omitempty"`
	FlushesPerCommit float64 `json:"flushes_per_commit,omitempty"`
	P50CommitSec     float64 `json:"p50_commit_s,omitempty"`
	P99CommitSec     float64 `json:"p99_commit_s,omitempty"`

	// Predicate evaluation: the evaluator the main run used ("auto",
	// "nested" or "join"), and — with xload -pred-compare — the branch
	// mix replayed under per-candidate probing vs the chooser-picked
	// structural semi-join, so the join win stays a tracked figure.
	// benchgate refuses to compare snapshots taken at different preds
	// settings.
	Preds       string           `json:"preds,omitempty"`
	PredCompare *PredCompareJSON `json:"pred_compare,omitempty"`

	// Sharded runs (-shards > 1): cluster shape, per-shard throughput and
	// degraded-shard outcomes, so cmd/benchgate can gate sharded runs and
	// refuse to compare snapshots taken at different shard counts.
	Shards         int             `json:"shards,omitempty"`
	PartialResults int64           `json:"partial_results,omitempty"` // 200s that excluded a degraded shard
	DegradedHits   int64           `json:"degraded_hits,omitempty"`   // tolerable shard faults absorbed by quorum
	PerShard       []ShardLoadJSON `json:"per_shard,omitempty"`
}

// PredCompareJSON is the join-vs-nested replay of the branching mix:
// the same request multiset evaluated with per-candidate probing
// (PredFilter) and with the chooser-picked evaluator (the structural
// semi-join where the cost model selects it). Speedup is nested wall
// over join wall — above 1 means the set-at-a-time evaluation wins.
type PredCompareJSON struct {
	Mix          string  `json:"mix"`
	Requests     int     `json:"requests"`
	NestedWallS  float64 `json:"nested_wall_s"`
	JoinWallS    float64 `json:"join_wall_s"`
	NestedAllocs int64   `json:"nested_allocs_per_op"`
	JoinAllocs   int64   `json:"join_allocs_per_op"`
	Speedup      float64 `json:"speedup"`
}

// ShardLoadJSON is one shard's slice of a sharded xload run.
type ShardLoadJSON struct {
	Shard        int     `json:"shard"`
	WallQPS      float64 `json:"wall_qps"`
	Submitted    int64   `json:"submitted"`
	Completed    int64   `json:"completed"`
	Faulted      int64   `json:"faulted"`
	DegradedHits int64   `json:"degraded_hits"`
}

// WriteLoadJSON writes l to dir/BENCH_<name>.json.
func WriteLoadJSON(dir, name string, l LoadJSON) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(data, '\n'), 0o644)
}

// WriteAblationJSON writes rows to dir/BENCH_ablation_<name>.json.
func WriteAblationJSON(dir, name, title string, rows []AblationRow) error {
	f := benchFile{Name: "ablation_" + name, Title: title}
	for _, r := range rows {
		f.Rows = append(f.Rows, AblationRowJSON{
			Label:    r.Label,
			Count:    r.Count,
			TotalSec: r.Total.Seconds(),
			CPUSec:   r.CPU.Seconds(),
			Clusters: r.Clusters,
			Notes:    r.Extra,
		})
	}
	return writeJSON(dir, "ablation_"+name, f)
}
