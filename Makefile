# CI entry points. `make` runs the full set.
GO ?= go

.PHONY: all build test race vet bench bench-json clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent layers (engine, storage, core, buffer, vdisk,
# stats) plus the facade, which exercises the engine end to end.
race:
	$(GO) test -race ./internal/engine/... ./internal/storage/... ./internal/core/... ./internal/buffer/... ./internal/vdisk/... ./internal/stats/... .

# Go micro-benchmarks with allocation counts (wall-clock; machine
# dependent, unlike the virtual-clock numbers from xbench).
bench:
	$(GO) test -bench . -benchmem -count=3 ./...

vet:
	$(GO) vet ./...

# Machine-readable benchmark snapshot (BENCH_*.json) for tracking the
# performance trajectory across commits. Slow: full evaluation.
bench-json:
	$(GO) run ./cmd/xbench -json bench-out

clean:
	rm -rf bench-out
