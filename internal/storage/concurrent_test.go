package storage

import (
	"sync"
	"testing"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

// TestConcurrentReaders hammers the concurrent read path — Swizzle/image
// decode through the sharded swizzle cache, synchronous LoadCluster fixes,
// BordersOf on shared cached slices, and the per-view async request/wait
// machinery — from several goroutines over a deliberately tiny buffer pool,
// so pages are constantly evicted, re-read and re-decoded while in use by
// other readers. Run under -race; correctness is checked against a serially
// computed ground truth per page.
func TestConcurrentReaders(t *testing.T) {
	dict, doc := buildTree(67, 3000)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)
	st.SetBufferCapacity(24) // tiny: force refaults and swizzle-cache drops

	pages := make([]vdisk.PageID, st.NumDataPages())
	for i := range pages {
		pages[i] = st.DataPage(i)
	}
	if len(pages) < 48 {
		t.Fatalf("document too small for eviction pressure: %d pages", len(pages))
	}

	// Serial ground truth: border count per page (BordersOf returns the
	// decoded image's cached slice, identical for every reader).
	wantBorders := make([]int, len(pages))
	for i, p := range pages {
		wantBorders[i] = len(st.BordersOf(p))
	}
	st.ResetForRun()

	const workers = 8
	const iters = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := st.Reader(stats.NewLedger())
			defer view.CancelRequests()
			for i := 0; i < iters; i++ {
				// Overlapping strides: all workers revisit the same hot
				// pages while eviction churns beneath them.
				pi := (i*(w+3) + w) % len(pages)
				p := pages[pi]

				view.LoadCluster(p)
				ids := view.BordersOf(p)
				if len(ids) != wantBorders[pi] {
					t.Errorf("worker %d: page %v: %d borders, want %d", w, p, len(ids), wantBorders[pi])
					return
				}
				for _, id := range ids {
					c := view.Swizzle(id)
					if got := c.Unswizzle(); got != id {
						t.Errorf("worker %d: swizzle roundtrip %v -> %v", w, id, got)
						return
					}
				}

				// Async path every few rounds: request a small batch and
				// drain it, re-requesting when a page was evicted between
				// its load and our wait.
				if i%5 == 0 {
					want := map[vdisk.PageID]bool{}
					for k := 0; k < 3; k++ {
						q := pages[(pi+k*7)%len(pages)]
						want[q] = true
						view.RequestCluster(q)
					}
					for retries := 0; len(want) > 0; {
						q, ok := view.WaitCluster()
						if !ok {
							retries++
							if retries > 1000 {
								t.Errorf("worker %d: async drain stuck with %d pages left", w, len(want))
								return
							}
							for r := range want {
								view.RequestCluster(r)
							}
							continue
						}
						if !want[q] {
							t.Errorf("worker %d: delivered page %v was not requested", w, q)
							return
						}
						delete(want, q)
						view.LoadCluster(q)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The store stays consistent for serial use afterwards.
	st.ResetForRun()
	for i, p := range pages[:16] {
		if got := len(st.BordersOf(p)); got != wantBorders[i] {
			t.Fatalf("page %v corrupted after stress: %d borders, want %d", p, got, wantBorders[i])
		}
	}
}
