package xpath

import (
	"strings"
	"testing"

	"pathdb/internal/xmltree"
)

func dict() *xmltree.Dictionary { return xmltree.NewDictionary() }

func TestParseSimpleAbsolute(t *testing.T) {
	d := dict()
	p := MustParse(d, "/site/regions")
	if !p.Absolute || p.Len() != 2 {
		t.Fatalf("path = %+v", p)
	}
	for i, want := range []string{"site", "regions"} {
		s := p.Steps[i]
		if s.Axis != Child {
			t.Fatalf("step %d axis = %v", i, s.Axis)
		}
		if got := s.Test.Render(d); got != want {
			t.Fatalf("step %d test = %q", i, got)
		}
	}
}

func TestParseDoubleSlash(t *testing.T) {
	d := dict()
	p := MustParse(d, "/site//item")
	if p.Len() != 3 {
		t.Fatalf("len = %d, want 3", p.Len())
	}
	s := p.Steps[1]
	if s.Axis != DescendantOrSelf || s.Test.Kind != KindAny {
		t.Fatalf("// expansion wrong: %+v", s)
	}
	if p.Steps[2].Axis != Child {
		t.Fatal("step after // should be child")
	}
}

func TestParseLeadingDoubleSlash(t *testing.T) {
	d := dict()
	p := MustParse(d, "//description")
	if !p.Absolute || p.Len() != 2 {
		t.Fatalf("path = %+v", p)
	}
	if p.Steps[0].Axis != DescendantOrSelf {
		t.Fatal("leading // not expanded")
	}
}

func TestParseVerboseAxes(t *testing.T) {
	d := dict()
	cases := map[string]Axis{
		"self::a":               Self,
		"child::a":              Child,
		"descendant::a":         Descendant,
		"descendant-or-self::a": DescendantOrSelf,
		"parent::a":             Parent,
		"ancestor::a":           Ancestor,
		"ancestor-or-self::a":   AncestorOrSelf,
		"following-sibling::a":  FollowingSibling,
		"preceding-sibling::a":  PrecedingSibling,
		"attribute::a":          AttributeAxis,
	}
	for src, want := range cases {
		p := MustParse(d, src)
		if p.Absolute {
			t.Fatalf("%q parsed absolute", src)
		}
		if p.Steps[0].Axis != want {
			t.Fatalf("%q axis = %v, want %v", src, p.Steps[0].Axis, want)
		}
	}
}

func TestParseAbbreviations(t *testing.T) {
	d := dict()
	p := MustParse(d, "../@id")
	if p.Steps[0].Axis != Parent || p.Steps[1].Axis != AttributeAxis {
		t.Fatalf("path = %+v", p.Steps)
	}
	p = MustParse(d, "./x")
	if p.Steps[0].Axis != Self || p.Steps[1].Axis != Child {
		t.Fatalf("path = %+v", p.Steps)
	}
}

func TestParseKindTests(t *testing.T) {
	d := dict()
	cases := map[string]KindTest{
		"node()":                   KindAny,
		"text()":                   KindText,
		"comment()":                KindComment,
		"processing-instruction()": KindPI,
	}
	for src, want := range cases {
		p := MustParse(d, src)
		if p.Steps[0].Test.Kind != want {
			t.Fatalf("%q kind = %v", src, p.Steps[0].Test.Kind)
		}
	}
}

func TestParseWildcard(t *testing.T) {
	d := dict()
	p := MustParse(d, "child::*")
	if !p.Steps[0].Test.AnyName || p.Steps[0].Test.Kind != KindElement {
		t.Fatalf("wildcard test = %+v", p.Steps[0].Test)
	}
}

func TestParseRootOnly(t *testing.T) {
	d := dict()
	p := MustParse(d, "/")
	if !p.Absolute || p.Len() != 0 {
		t.Fatalf("path = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	d := dict()
	for _, src := range []string{"", "/site/", "bogus::a", "site/%", "unknown()", "/a//"} {
		if _, err := Parse(d, src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	d := dict()
	_, err := Parse(d, "/site/!")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos != 6 {
		t.Fatalf("error pos = %d", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "offset 6") {
		t.Fatalf("error text = %q", pe.Error())
	}
}

func TestRenderRoundTrip(t *testing.T) {
	d := dict()
	srcs := []string{
		"/site/regions//item",
		"//description",
		"a/b/c",
		"parent::node()/child::x",
	}
	for _, src := range srcs {
		p := MustParse(d, src)
		rendered := p.Render(d)
		p2 := MustParse(d, rendered)
		if p2.Render(d) != rendered {
			t.Fatalf("render not stable for %q: %q vs %q", src, rendered, p2.Render(d))
		}
		if p2.Len() != p.Len() || p2.Absolute != p.Absolute {
			t.Fatalf("round trip changed shape for %q", src)
		}
	}
}

func TestSimplify(t *testing.T) {
	d := dict()
	p := MustParse(d, "/site//item")
	s := p.Simplify()
	if s.Len() != 2 {
		t.Fatalf("simplified len = %d, want 2", s.Len())
	}
	if s.Steps[1].Axis != Descendant {
		t.Fatalf("step axis = %v, want descendant", s.Steps[1].Axis)
	}
	if s.Steps[1].Test.Render(d) != "item" {
		t.Fatal("node test lost in simplify")
	}
	// Original untouched.
	if p.Len() != 3 {
		t.Fatal("Simplify mutated receiver")
	}
}

func TestSimplifyNoChange(t *testing.T) {
	d := dict()
	p := MustParse(d, "/a/b")
	s := p.Simplify()
	if s.Render(d) != p.Render(d) {
		t.Fatal("Simplify changed a plain path")
	}
	// Trailing descendant-or-self with nothing after it must be kept.
	p2 := MustParse(d, "a/descendant-or-self::node()")
	if got := p2.Simplify().Len(); got != 2 {
		t.Fatalf("trailing d-o-s simplified away: len=%d", got)
	}
}

func TestNodeTestMatches(t *testing.T) {
	d := dict()
	a, b := d.Intern("a"), d.Intern("b")
	nt := NameTest(a)
	if !nt.Matches(xmltree.Element, a) {
		t.Fatal("name test misses its tag")
	}
	if nt.Matches(xmltree.Element, b) {
		t.Fatal("name test matches wrong tag")
	}
	if nt.Matches(xmltree.Text, a) {
		t.Fatal("name test matches text")
	}
	if !Wildcard().Matches(xmltree.Element, b) {
		t.Fatal("wildcard misses element")
	}
	if Wildcard().Matches(xmltree.Text, xmltree.NoTag) {
		t.Fatal("wildcard matches text")
	}
	if !AnyNode().Matches(xmltree.Text, xmltree.NoTag) {
		t.Fatal("node() misses text")
	}
	if !TextTest().Matches(xmltree.Text, xmltree.NoTag) || TextTest().Matches(xmltree.Element, a) {
		t.Fatal("text() wrong")
	}
}

func TestNameSetTest(t *testing.T) {
	d := dict()
	x, y, z := d.Intern("x"), d.Intern("y"), d.Intern("z")
	nt := NameSetTest(z, x)
	if !nt.Matches(xmltree.Element, x) || !nt.Matches(xmltree.Element, z) {
		t.Fatal("set test misses member")
	}
	if nt.Matches(xmltree.Element, y) {
		t.Fatal("set test matches non-member")
	}
	if len(nt.Tags) != 2 || nt.Tags[0] > nt.Tags[1] {
		t.Fatal("tags not sorted")
	}
}

func TestAxisStringAndReverse(t *testing.T) {
	if Child.String() != "child" || DescendantOrSelf.String() != "descendant-or-self" {
		t.Fatal("axis names wrong")
	}
	if Child.Reverse() || Descendant.Reverse() {
		t.Fatal("forward axis marked reverse")
	}
	if !Parent.Reverse() || !Ancestor.Reverse() || !PrecedingSibling.Reverse() {
		t.Fatal("reverse axis not marked")
	}
}

func TestRenderTestVariants(t *testing.T) {
	d := dict()
	if AnyNode().Render(d) != "node()" || TextTest().Render(d) != "text()" {
		t.Fatal("render kind tests wrong")
	}
	if CommentTest().Render(d) != "comment()" || PITest().Render(d) != "processing-instruction()" {
		t.Fatal("render comment/pi wrong")
	}
	if Wildcard().Render(d) != "*" {
		t.Fatal("render wildcard wrong")
	}
	x, y := d.Intern("x"), d.Intern("y")
	if got := NameSetTest(x, y).Render(d); got != "x|y" {
		t.Fatalf("render set = %q", got)
	}
}

func TestWhitespaceTolerated(t *testing.T) {
	d := dict()
	p := MustParse(d, " /site / regions ")
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestFollowingPrecedingRewrite(t *testing.T) {
	d := dict()
	p := MustParse(d, "a/following::b")
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	want := []Axis{Child, AncestorOrSelf, FollowingSibling, DescendantOrSelf}
	for i, ax := range want {
		if p.Steps[i].Axis != ax {
			t.Fatalf("step %d axis = %v, want %v", i, p.Steps[i].Axis, ax)
		}
	}
	if p.Steps[3].Test.Render(d) != "b" {
		t.Fatal("node test lost")
	}
	q := MustParse(d, "preceding::text()")
	if q.Len() != 3 || q.Steps[1].Axis != PrecedingSibling || q.Steps[2].Test.Kind != KindText {
		t.Fatalf("preceding rewrite: %+v", q.Steps)
	}
}

func TestParsePredicates(t *testing.T) {
	d := dict()
	p := MustParse(d, `/site//item[incategory][description//keyword="gold"]/name`)
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	item := p.Steps[2]
	if len(item.Predicates) != 2 {
		t.Fatalf("predicates = %d", len(item.Predicates))
	}
	p0 := item.Predicates[0]
	if p0.HasLit || len(p0.Paths) != 1 || p0.Paths[0].Len() != 1 || p0.Paths[0].Absolute {
		t.Fatalf("pred 0 = %+v", p0)
	}
	p1 := item.Predicates[1]
	if !p1.HasLit || p1.Literal != "gold" || p1.Paths[0].Len() != 3 {
		t.Fatalf("pred 1 = %+v", p1)
	}
	if p.Steps[3].Test.Render(d) != "name" {
		t.Fatal("step after predicate lost")
	}
}

func TestParsePredicateAttribute(t *testing.T) {
	d := dict()
	p := MustParse(d, `//person[@id='p7']`)
	pred := p.Steps[1].Predicates[0]
	if pred.Paths[0].Steps[0].Axis != AttributeAxis || !pred.HasLit || pred.Literal != "p7" {
		t.Fatalf("pred = %+v", pred)
	}
}

func TestParsePredicateErrors(t *testing.T) {
	d := dict()
	for _, src := range []string{
		"a[", "a[]", "a[b", "a[/abs]", `a[b="x]`, "a[b=42]", "a[b]]",
	} {
		if _, err := Parse(d, src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestPredicateRenderRoundTrip(t *testing.T) {
	d := dict()
	src := `/a/b[c/d][e="v"]`
	p := MustParse(d, src)
	rendered := p.Render(d)
	p2 := MustParse(d, rendered)
	if p2.Render(d) != rendered {
		t.Fatalf("render unstable: %q vs %q", rendered, p2.Render(d))
	}
}

func TestSimplifyKeepsPredicates(t *testing.T) {
	d := dict()
	p := MustParse(d, "/a//b[c]").Simplify()
	if p.Len() != 2 || len(p.Steps[1].Predicates) != 1 {
		t.Fatalf("simplified = %+v", p.Steps)
	}
	// A predicated d-o-s step must not be merged away.
	q := MustParse(d, "a/descendant-or-self::node()[b]/c").Simplify()
	if q.Len() != 3 {
		t.Fatalf("predicated d-o-s merged: %d", q.Len())
	}
}

func TestParseUnion(t *testing.T) {
	d := dict()
	ps, err := ParseUnion(d, `/a/b | //c[x|y] | /d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("branches = %d", len(ps))
	}
	// '|' inside the predicate is a nested union, not a split point.
	preds := ps[1].Steps[1].Predicates
	if len(preds) != 1 || len(preds[0].Paths) != 2 {
		t.Fatalf("nested union = %+v", preds)
	}
}

func TestParseUnionErrors(t *testing.T) {
	d := dict()
	for _, src := range []string{"", "|a", "a|", "a||b"} {
		if _, err := ParseUnion(d, src); err == nil {
			t.Errorf("ParseUnion(%q) succeeded", src)
		}
	}
	if ps, err := ParseUnion(d, "/plain"); err != nil || len(ps) != 1 {
		t.Fatal("single path union failed")
	}
}
