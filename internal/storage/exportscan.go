package storage

import (
	"fmt"
	"io"
	"strings"

	"pathdb/internal/stats"

	"pathdb/internal/xmlwrite"
)

// This file implements scan-based document export — the second outlook
// item of the paper's Sec. 7: "we want to investigate how our method can
// be used to speed up document export, where our 'path instance' becomes
// the textual representation of a whole document (or subtree)".
//
// The naive Export() walks the tree in document order, paying a random
// cluster load at every border crossing. ExportScanXML instead reads the
// volume once, sequentially, serializing every cluster's fragments into
// text pieces with placeholders where edges leave the cluster — the exact
// analogue of a left-incomplete path instance: "if this fragment's anchor
// is reached, this is its serialization". A final in-memory stitch
// resolves the placeholders. One sequential pass replaces a random walk.

// piece is the partially serialized form of one fragment: literal XML text
// interleaved with references to other fragments' anchors.
type piece struct {
	segs []seg
}

type seg struct {
	text string
	ref  NodeID // anchor (ProxyParent) of the fragment to splice; 0 = text
}

// ExportScanXML serializes the (first) document using one sequential scan.
func (s *Store) ExportScanXML(w io.Writer) error {
	return s.ExportScanDocumentXML(w, 0)
}

// ExportScanDocumentXML serializes the i-th collection member using one
// sequential scan of the whole volume. Page faults raised by the scan's
// loads surface as the typed *PageError instead of a panic.
func (s *Store) ExportScanDocumentXML(w io.Writer, doc int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := AsPageFault(r); ok {
				err = pe
				return
			}
			panic(r)
		}
	}()
	pieces := make(map[NodeID]*piece)
	n := s.NumDataPages()
	for i := 0; i < n; i++ {
		page := s.DataPage(i)
		s.LoadCluster(page) // sequential
		img := s.image(page)
		for slot := range img.recs {
			r := &img.recs[slot]
			if r.dead || r.parent != noParent {
				continue
			}
			// A fragment root: the document record itself or a
			// ProxyParent anchor.
			pieces[MakeNodeID(page, uint16(slot))] = s.buildPiece(img, uint16(slot))
		}
	}
	root := s.roots[doc]
	return stitch(w, root, pieces)
}

// buildPiece serializes the fragment anchored at slot into text segments,
// leaving a placeholder wherever an edge crosses out of the cluster.
func (s *Store) buildPiece(img *pageImage, slot uint16) *piece {
	p := &piece{}
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			p.segs = append(p.segs, seg{text: sb.String()})
			sb.Reset()
		}
	}
	var emit func(slot uint16)
	emit = func(slot uint16) {
		r := &img.recs[slot]
		stats.Inc(&s.led.NodesVisited)
		s.led.AdvanceCPU(s.model.CPUNodeVisit)
		switch r.kind {
		case RecDoc, RecProxyParent:
			for _, ch := range r.children {
				emit(ch)
			}
		case RecProxyChild:
			flush()
			p.segs = append(p.segs, seg{ref: r.target})
		case RecElem:
			sb.WriteByte('<')
			sb.WriteString(s.dict.Name(r.tag))
			for _, a := range r.attrs {
				sb.WriteByte(' ')
				sb.WriteString(s.dict.Name(a.tag))
				sb.WriteString(`="`)
				sb.WriteString(xmlwrite.EscapeAttr(a.val))
				sb.WriteByte('"')
			}
			if len(r.children) == 0 {
				sb.WriteString("/>")
				return
			}
			sb.WriteByte('>')
			for _, ch := range r.children {
				emit(ch)
			}
			sb.WriteString("</")
			sb.WriteString(s.dict.Name(r.tag))
			sb.WriteByte('>')
		case RecText:
			sb.WriteString(xmlwrite.EscapeText(r.text))
		case RecComment:
			sb.WriteString("<!--")
			sb.WriteString(r.text)
			sb.WriteString("-->")
		case RecPI:
			sb.WriteString("<?")
			sb.WriteString(r.text)
			sb.WriteString("?>")
		}
	}
	emit(slot)
	flush()
	return p
}

// stitch writes the piece anchored at id, splicing referenced pieces
// depth-first. Every anchor is consumed exactly once.
func stitch(w io.Writer, id NodeID, pieces map[NodeID]*piece) error {
	p, ok := pieces[id]
	if !ok {
		return fmt.Errorf("storage: export scan missing fragment %v", id)
	}
	for _, sg := range p.segs {
		if sg.ref != 0 {
			if err := stitch(w, sg.ref, pieces); err != nil {
				return err
			}
			continue
		}
		if _, err := io.WriteString(w, sg.text); err != nil {
			return err
		}
	}
	return nil
}
