package core

import (
	"sync"

	"pathdb/internal/vdisk"
)

// Arena pools the per-query evaluation scratch of one plan's operators:
// XAssembly's R and S structures, XSchedule's cluster queue and visited
// set, XScan's pending buffer, and a freelist of instance slices used as
// map values. A steady-state query evaluated with a warm arena allocates
// O(results) instead of rebuilding every structure.
//
// An arena serves one running plan at a time — operators borrow structures
// at Open and return them at Close, and nothing inside is synchronized.
// Callers that evaluate queries concurrently keep one arena per worker
// (GetArena/PutArena wrap a shared pool) and pass it via PlanOptions.Arena.
// A nil arena is always valid and falls back to fresh allocations.
type Arena struct {
	r       map[End]bool
	s       map[End][]Instance
	q       map[vdisk.PageID][]Instance
	visited map[vdisk.PageID]bool
	ready   []Instance
	spec    []Instance
	pending []Instance
	free    [][]Instance
}

// NewArena returns an empty arena. Structures are created lazily by the
// first query that borrows them.
func NewArena() *Arena { return &Arena{} }

// arenaPool recycles arenas across queries and goroutines.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// GetArena takes a (possibly warm) arena from the shared pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the shared pool once no plan uses it.
func PutArena(a *Arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}

// takeEndSet borrows the reachable-ends map.
func (a *Arena) takeEndSet() map[End]bool {
	if a != nil && a.r != nil {
		m := a.r
		a.r = nil
		return m
	}
	return make(map[End]bool)
}

func (a *Arena) putEndSet(m map[End]bool) {
	if a == nil || m == nil {
		return
	}
	clear(m)
	if a.r == nil {
		a.r = m
	}
}

// takeEndInsts borrows the speculative-instance map (S).
func (a *Arena) takeEndInsts() map[End][]Instance {
	if a != nil && a.s != nil {
		m := a.s
		a.s = nil
		return m
	}
	return make(map[End][]Instance)
}

// putEndInsts harvests the map's value slices into the freelist and
// returns the cleared map to the arena.
func (a *Arena) putEndInsts(m map[End][]Instance) {
	if a == nil || m == nil {
		return
	}
	for _, v := range m {
		a.putInsts(v)
	}
	clear(m)
	if a.s == nil {
		a.s = m
	}
}

// takeClusterQueue borrows XSchedule's per-cluster instance queue.
func (a *Arena) takeClusterQueue() map[vdisk.PageID][]Instance {
	if a != nil && a.q != nil {
		m := a.q
		a.q = nil
		return m
	}
	return make(map[vdisk.PageID][]Instance)
}

func (a *Arena) putClusterQueue(m map[vdisk.PageID][]Instance) {
	if a == nil || m == nil {
		return
	}
	for _, v := range m {
		a.putInsts(v)
	}
	clear(m)
	if a.q == nil {
		a.q = m
	}
}

// takeClusterSet borrows XSchedule's visited set.
func (a *Arena) takeClusterSet() map[vdisk.PageID]bool {
	if a != nil && a.visited != nil {
		m := a.visited
		a.visited = nil
		return m
	}
	return make(map[vdisk.PageID]bool)
}

func (a *Arena) putClusterSet(m map[vdisk.PageID]bool) {
	if a == nil || m == nil {
		return
	}
	clear(m)
	if a.visited == nil {
		a.visited = m
	}
}

// takeReady / takeSpec / takePending borrow the named instance buffers
// (each used by exactly one operator per plan; a second borrower gets a
// fresh slice).
func (a *Arena) takeReady() []Instance {
	if a != nil {
		s := a.ready
		a.ready = nil
		return s[:0]
	}
	return nil
}

func (a *Arena) putReady(s []Instance) {
	if a != nil && a.ready == nil && cap(s) > 0 {
		a.ready = s[:0]
	}
}

func (a *Arena) takeSpec() []Instance {
	if a != nil {
		s := a.spec
		a.spec = nil
		return s[:0]
	}
	return nil
}

func (a *Arena) putSpec(s []Instance) {
	if a != nil && a.spec == nil && cap(s) > 0 {
		a.spec = s[:0]
	}
}

func (a *Arena) takePending() []Instance {
	if a != nil {
		s := a.pending
		a.pending = nil
		return s[:0]
	}
	return nil
}

func (a *Arena) putPending(s []Instance) {
	if a != nil && a.pending == nil && cap(s) > 0 {
		a.pending = s[:0]
	}
}

// takeInsts returns an empty instance slice with retained capacity from the
// freelist (nil when the freelist is dry — append grows it as usual).
func (a *Arena) takeInsts() []Instance {
	if a == nil {
		return nil
	}
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	return nil
}

// putInsts recycles an instance slice's backing array.
func (a *Arena) putInsts(s []Instance) {
	if a != nil && cap(s) > 0 {
		a.free = append(a.free, s[:0])
	}
}
