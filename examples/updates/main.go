// Incremental updates: the storage property the paper holds against
// scan-order formats (Sec. 2) — preorder numbering and enforced physical
// order "are difficult to maintain during updates", whereas this engine's
// ORDPATH-style keys and anywhere-on-disk clusters make inserts local.
//
// The example inserts new auction items into a stored XMark document,
// shows that no existing node moved (stable NodeIDs, stable order keys),
// and demonstrates that the growing fragmentation widens the gap between
// the Simple plan and the cost-sensitive ones — the paper's motivation
// playing out live.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

func main() {
	db, err := pathdb.GenerateXMark(
		pathdb.XMarkConfig{ScaleFactor: 0.5, Seed: 21, EntityScale: 0.05},
		pathdb.Options{BufferPages: 64},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before updates: %d pages\n", db.Pages())

	measure := func(label string) {
		for _, s := range []pathdb.Strategy{pathdb.Simple, pathdb.Schedule, pathdb.Scan} {
			db.ResetStats()
			q, _ := db.Query("/site/regions//item")
			n := q.WithStrategy(s).Count()
			fmt.Printf("  %-10s %-10s count=%-5d %s\n", label, s, n, db.CostReport())
		}
	}
	measure("baseline")

	// Remember an existing item's identity to prove stability.
	regions, _ := db.Query("/site/regions")
	region := regions.Nodes()[0]
	items, _ := db.Query("/site/regions//item")
	witness := items.Sorted().Nodes()[0]
	witnessID, witnessOrd := witness.ID(), witness.OrdPath()

	// Insert a batch of new items; each is a multi-node fragment.
	africa, _ := region.Query("africa")
	target := africa.Nodes()[0]
	for i := 0; i < 200; i++ {
		frag := fmt.Sprintf(
			`<item id="fresh%d"><location>here</location><quantity>1</quantity>`+
				`<name>freshly inserted thing %d</name><payment>cash</payment>`+
				`<description><text>brand new merchandise, never relabeled</text></description>`+
				`<shipping>immediate</shipping><mailbox/></item>`, i, i)
		if _, err := db.InsertXML(target, frag); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nafter 200 inserts: %d pages (extension clusters appended at the end)\n", db.Pages())

	// The witness node did not move or get relabeled.
	if witness.ID() != witnessID || witness.OrdPath() != witnessOrd {
		log.Fatal("existing node was disturbed by updates")
	}
	fmt.Printf("witness item untouched: id=%d ord=%s\n\n", witnessID, witnessOrd)

	measure("updated")
	fmt.Println("\nNote how the Simple plan absorbs the new random I/O while " +
		"XScan's sequential cost barely changes.")
}
