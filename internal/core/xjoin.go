package core

import (
	"sort"
	"strings"

	"pathdb/internal/ordpath"
	"pathdb/internal/storage"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// XJoin evaluates the predicates of location step i set-at-a-time, as
// stack-based structural semi-joins over ordpath keys, replacing
// PredFilter's per-candidate nested-loop probes.
//
// The operator buffers the step-i candidates its input produces and, when
// the input is exhausted, filters the whole batch in one pass against a
// per-predicate filter set: the document-ordered ord keys of every node
// that roots a full match of the nested branch path. The filter set is
// candidate independent, so it is computed once (on the first flush) and
// reused across rounds — a flush may emit survivors whose continuation
// through the steps above produces new border crossings, which the
// scheduler feeds back as fresh candidates, so Next keeps alternating
// between pulling and flushing until both sides are dry.
//
// Filter sets are built bottom-up over the branch's m location steps:
// D_j is every document node matching test_j (one Simple sub-plan per
// level, a whole-document enumeration that the storage layer's name-test
// bitmaps make a near-linear scan); S_m is D_m filtered by the literal
// comparison and any nested predicates; and S_j = semijoin(D_j, S_{j+1})
// marks the D_j nodes with at least one S_{j+1} partner under step j+1's
// axis — a doc-order merge with an ancestor-chain stack (Stack-Tree
// style), O(|D_j| + |S_{j+1}|) comparisons. Candidates finally merge
// against S_1 the same way. Ancestor/descendant relations are ordpath
// prefix tests; parent/child adds a level check; attributes share their
// owner's ord, so the attribute axis joins on key equality.
//
// Union branches whose axes the join cannot express (parent, ancestor,
// sibling axes) fall back to per-candidate probes, but only for
// candidates no joinable branch already accepted (the predicate is
// existential). Everything that is not a right-complete step-i instance
// passes through unchanged, exactly like PredFilter, so the
// XAssembly↔XSchedule feedback loop keeps flowing while the batch
// accumulates.
type XJoin struct {
	es    *EvalState
	input Operator
	i     int
	preds []xpath.Predicate

	compiled []joinPred // lazily built on first flush, reused across rounds
	buf      []Instance // right-complete step-i candidates awaiting the join
	out      []Instance // survivors of the last flush
	outPos   int

	// degraded switches to immediate per-candidate evaluation (the exact
	// PredFilter behaviour) when the buffer outgrows the plan's memory
	// limit — the join's analogue of XAssembly's fallback mode.
	degraded bool
}

// NewXJoin builds the structural-join filter for step i (whose predicates
// it reads from the shared state's path).
func NewXJoin(es *EvalState, input Operator, i int) *XJoin {
	return &XJoin{es: es, input: input, i: i, preds: es.Path[i-1].Predicates}
}

// Open opens the producer.
func (j *XJoin) Open() {
	j.input.Open()
	j.buf = j.buf[:0]
	j.out = j.out[:0]
	j.outPos = 0
	j.degraded = false
	j.compiled = nil
}

// Close closes the producer.
func (j *XJoin) Close() {
	j.buf, j.out = nil, nil
	j.input.Close()
}

// Next returns the next instance: pass-throughs immediately, step-i
// candidates after they survived a batch flush.
func (j *XJoin) Next() (Instance, bool) {
	for {
		if j.outPos < len(j.out) {
			out := j.out[j.outPos]
			j.outPos++
			return out, true
		}
		if j.es.Cancelled() {
			return Instance{}, false
		}
		in, ok := j.input.Next()
		if !ok {
			if len(j.buf) == 0 {
				return Instance{}, false
			}
			j.flush()
			continue
		}
		if in.SR != j.i || in.NRBorder {
			return in, true
		}
		j.es.chargeTuple()
		if j.degraded || j.es.Fallback() {
			if evalPredicates(j.es, in.NR, j.preds) {
				return in, true
			}
			continue
		}
		if in.Ord == nil {
			// Ord is normally captured by XStep while the candidate's
			// cluster was loaded; resolve it from the swizzle cache when an
			// unusual producer left it unset.
			in.Ord = j.es.Store.Swizzle(in.NR).OrdKey()
		}
		j.buf = append(j.buf, in.dropCur())
		if j.es.MemLimit > 0 && len(j.buf) > j.es.MemLimit {
			j.degrade()
		}
	}
}

// degrade abandons batching: buffered candidates are filtered with
// per-candidate probes right away and the operator stays in that mode.
func (j *XJoin) degrade() {
	j.degraded = true
	for _, in := range j.buf {
		if evalPredicates(j.es, in.NR, j.preds) {
			j.out = append(j.out, in)
		}
	}
	j.buf = j.buf[:0]
}

// flush joins the buffered batch against the per-predicate filter sets
// and moves the survivors (in arrival order) to the output queue.
func (j *XJoin) flush() {
	if j.compiled == nil {
		j.compiled = compileJoinPreds(j.es, j.preds)
	}
	cands := j.buf
	j.buf = j.buf[:0]
	j.out = j.out[:0]
	j.outPos = 0

	// Candidates sorted by document order for the merge; ord maps the
	// sorted position back to the arrival position.
	order := make([]int, len(cands))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		return ordpath.Compare(cands[order[a]].Ord, cands[order[b]].Ord) < 0
	})
	ords := make([]ordpath.Key, len(order))
	for k, idx := range order {
		ords[k] = cands[idx].Ord
	}

	keep := make([]bool, len(cands)) // by arrival position
	for k := range keep {
		keep[k] = true
	}
	pass := make([]bool, len(cands))    // by sorted position, reused per predicate
	scratch := make([]bool, len(cands)) // per-branch marks, OR-ed into pass
	for _, jp := range j.compiled {
		if jp.always {
			continue
		}
		for k := range pass {
			pass[k] = false
		}
		for bi, br := range jp.branches {
			// Each union branch marks its own zeroed array: semiJoinMark's
			// stop-at-first-mark shortcut assumes every mark it encounters
			// covers a chain suffix toward the root, which marks left by a
			// child or attribute branch of the same union do not. The first
			// branch writes straight into the freshly cleared pass.
			dst := pass
			if bi > 0 {
				dst = scratch
				for k := range scratch {
					scratch[k] = false
				}
			}
			semiJoinMark(ords, br.set, br.rel, dst)
			if bi > 0 {
				for k, v := range scratch {
					if v {
						pass[k] = true
					}
				}
			}
		}
		j.es.chargeSetOp(len(cands))
		for k, idx := range order {
			hit := pass[k]
			if !hit && keep[idx] {
				// Existential union: only candidates no joinable branch
				// accepted pay a per-candidate probe on the leftovers.
				for _, branch := range jp.fallback {
					if evalBranchProbe(j.es, cands[idx].NR, branch, jp.pred) {
						hit = true
						break
					}
				}
			}
			keep[idx] = keep[idx] && hit
		}
	}
	for k, in := range cands {
		if keep[k] {
			j.out = append(j.out, in)
		}
	}
}

// relKind is the structural relation a joinable axis induces between a
// level-(j-1) node and its level-j partner.
type relKind uint8

const (
	relChild      relKind = iota // proper ancestor exactly one level up
	relDesc                      // proper ancestor (ordpath prefix)
	relDescOrSelf                // ancestor or the node itself
	relAttr                      // attribute: shares the owner's ord key
)

// joinPred is one compiled predicate: the joinable union branches with
// their filter sets, plus the branches that need per-candidate probes.
type joinPred struct {
	pred     xpath.Predicate
	always   bool // a trivially true branch ([.]) accepts everything
	branches []joinBranch
	fallback []*xpath.Path
}

// joinBranch is one joinable union branch reduced to a filter set: the
// doc-ordered ord keys of every node that roots a full branch match, and
// the relation connecting a candidate to them (the first step's axis).
type joinBranch struct {
	rel relKind
	set []ordpath.Key
}

// compileJoinPreds builds the filter sets for every predicate of the step.
//
// Filter sets are document-only — they depend on the branch path, the
// literal, and the document, never on the candidates — so they are served
// from the volume's epoch-keyed derived cache when a prior query over the
// same version already paid for the whole-document enumerations. Hits are
// free (like swizzle-cache hits: the work was done once, not skipped); a
// commit advances the epoch and the first join after it recomputes.
func compileJoinPreds(es *EvalState, preds []xpath.Predicate) []joinPred {
	dcache, epoch, cacheable := es.Store.Derived()
	out := make([]joinPred, 0, len(preds))
	for _, p := range preds {
		jp := joinPred{pred: p}
		for _, branch := range p.Paths {
			steps := joinableSteps(branch)
			if steps == nil {
				jp.fallback = append(jp.fallback, branch)
				continue
			}
			if len(steps) == 0 {
				// The branch is the candidate itself: [.] is always true,
				// [.="lit"] compares the candidate's own string value —
				// per-candidate by nature.
				if p.HasLit {
					jp.fallback = append(jp.fallback, branch)
				} else {
					jp.always = true
				}
				continue
			}
			var set []ordpath.Key
			var key string
			cached := false
			if cacheable {
				key = joinBranchKey(es.Store.Dict(), steps, p)
				if v, ok := dcache.Get(epoch, key); ok {
					set = v.([]ordpath.Key)
					cached = true
				}
			}
			if !cached {
				set = branchFilterSet(es, steps, p)
				if cacheable {
					// Detach the keys from the decoded page images they
					// alias before publishing, so a cached generation never
					// pins whole clusters in memory.
					set = cloneKeys(set)
					dcache.Put(epoch, key, set)
				}
			}
			jp.branches = append(jp.branches, joinBranch{
				rel: relOf(steps[0].Axis),
				set: set,
			})
		}
		out = append(out, jp)
	}
	return out
}

// joinBranchKey names one branch filter set in the derived cache: the
// canonical rendition of the simplified steps (nested predicates included)
// plus the step predicate's literal comparison, if any.
func joinBranchKey(dict *xmltree.Dictionary, steps []xpath.Step, p xpath.Predicate) string {
	var b strings.Builder
	b.WriteString("xjoin:")
	for _, s := range steps {
		b.WriteByte('/')
		b.WriteString(s.Render(dict))
	}
	if p.HasLit {
		b.WriteString("\x00=")
		b.WriteString(p.Literal)
	}
	return b.String()
}

// cloneKeys copies a filter set into one private backing array. Empty
// sets come back non-nil so they survive the cache round-trip as a
// present (if hollow) value rather than decaying into a miss.
func cloneKeys(set []ordpath.Key) []ordpath.Key {
	if len(set) == 0 {
		return []ordpath.Key{}
	}
	n := 0
	for _, k := range set {
		n += len(k)
	}
	buf := make([]byte, 0, n)
	out := make([]ordpath.Key, len(set))
	for i, k := range set {
		buf = append(buf, k...)
		out[i] = ordpath.Key(buf[len(buf)-len(k):])
	}
	return out
}

// JoinBuildCached reports whether every joinable branch of the predicate
// has its filter set resident in the store's derived cache at the store's
// version epoch. The build half of the structural join — the
// whole-document enumerations — is then already paid, so a cost model
// should charge only the doc-order merges (the same way buffer-aware
// optimizers discount pages known to be resident).
func JoinBuildCached(st *storage.Store, p xpath.Predicate) bool {
	dcache, epoch, ok := st.Derived()
	if !ok {
		return false
	}
	dict := st.Dict()
	any := false
	for _, branch := range p.Paths {
		steps := joinableSteps(branch)
		if len(steps) == 0 {
			continue // non-joinable or identity branches build no set
		}
		if !dcache.Contains(epoch, joinBranchKey(dict, steps, p)) {
			return false
		}
		any = true
	}
	return any
}

// JoinCompatible reports whether XJoin evaluates every branch of the
// predicate set-at-a-time — no per-candidate fallback probes. The cost
// model (internal/plan) checks this before costing a structural join.
func JoinCompatible(p xpath.Predicate) bool {
	for _, branch := range p.Paths {
		steps := joinableSteps(branch)
		if steps == nil || (len(steps) == 0 && p.HasLit) {
			return false
		}
	}
	return true
}

// joinableSteps returns the branch's steps with identity self::node()
// steps removed, or nil when some axis the join cannot express remains.
func joinableSteps(branch *xpath.Path) []xpath.Step {
	simplified := branch.Simplify().Steps
	steps := make([]xpath.Step, 0, len(simplified))
	for _, s := range simplified {
		if s.Axis == xpath.Self && s.Test.Kind == xpath.KindAny && len(s.Predicates) == 0 {
			continue // identity step: .//a
		}
		steps = append(steps, s)
	}
	for k, s := range steps {
		switch s.Axis {
		case xpath.Child, xpath.Descendant, xpath.DescendantOrSelf:
		case xpath.AttributeAxis:
			if k != len(steps)-1 {
				return nil // attributes have no children to continue into
			}
		default:
			return nil
		}
	}
	return steps
}

func relOf(a xpath.Axis) relKind {
	switch a {
	case xpath.Child:
		return relChild
	case xpath.Descendant:
		return relDesc
	case xpath.DescendantOrSelf:
		return relDescOrSelf
	case xpath.AttributeAxis:
		return relAttr
	default:
		panic("core: axis is not joinable")
	}
}

// branchFilterSet computes S_1 for one branch: the ord keys of every
// document node matching step 1's test that roots a full match of the
// remaining steps, bottom-up as described on XJoin.
func branchFilterSet(es *EvalState, steps []xpath.Step, p xpath.Predicate) []ordpath.Key {
	m := len(steps)
	set := levelNodes(es, steps[m-1], func(r Result) bool {
		if p.HasLit && es.Store.StringValue(r.Node) != p.Literal {
			return false
		}
		return len(steps[m-1].Predicates) == 0 ||
			evalPredicates(es, r.Node, steps[m-1].Predicates)
	})
	for lvl := m - 2; lvl >= 0; lvl-- {
		if len(set) == 0 {
			return nil
		}
		djs := levelNodes(es, steps[lvl], func(r Result) bool {
			return len(steps[lvl].Predicates) == 0 ||
				evalPredicates(es, r.Node, steps[lvl].Predicates)
		})
		mark := make([]bool, len(djs))
		semiJoinMark(djs, set, relOf(steps[lvl+1].Axis), mark)
		es.chargeSetOp(len(djs))
		kept := djs[:0]
		for k, ok := range mark {
			if ok {
				kept = append(kept, djs[k])
			}
		}
		set = kept
	}
	return set
}

// levelNodes enumerates every document node matching the step's node test
// (via a whole-document Simple sub-plan) and returns the doc-ordered ord
// keys of those accepted by keepFn.
func levelNodes(es *EvalState, step xpath.Step, keepFn func(Result) bool) []ordpath.Key {
	var sub []xpath.Step
	if step.Axis == xpath.AttributeAxis {
		sub = []xpath.Step{
			{Axis: xpath.DescendantOrSelf, Test: xpath.AnyNode()},
			{Axis: xpath.AttributeAxis, Test: step.Test},
		}
	} else {
		sub = []xpath.Step{{Axis: xpath.DescendantOrSelf, Test: step.Test}}
	}
	plan := BuildPlan(es.Store, sub, es.Store.Roots(), StrategySimple, PlanOptions{Ctx: es.Ctx})
	results := plan.Run()
	out := make([]ordpath.Key, 0, len(results))
	for _, r := range results {
		if keepFn(r) {
			out = append(out, r.Ord)
		}
	}
	sort.Slice(out, func(a, b int) bool { return ordpath.Compare(out[a], out[b]) < 0 })
	return out
}

// semiJoinMark merges anc (doc-ordered candidate/ancestor-side keys) with
// desc (doc-ordered partner keys) and sets mark[k] for every anc[k] with
// at least one desc partner under rel. One pass: document order puts an
// ancestor before its descendants, so an explicit stack of the current
// anc ancestor chain replaces per-pair containment checks.
//
// The relDesc/relDescOrSelf cases stop re-marking at the first already
// marked chain entry, which is only sound while every mark in the array
// covers an ancestor-closed chain suffix — true for marks those two cases
// set themselves, false for relChild/relAttr marks. Callers combining
// union branches must therefore give each branch a zeroed array and OR
// the results, never share one array across semiJoinMark calls.
func semiJoinMark(anc, desc []ordpath.Key, rel relKind, mark []bool) {
	if len(anc) == 0 || len(desc) == 0 {
		return
	}
	if rel == relAttr {
		// Attributes carry their owner's ord key: an equality merge.
		ai := 0
		for _, d := range desc {
			for ai < len(anc) && ordpath.Compare(anc[ai], d) < 0 {
				ai++
			}
			for k := ai; k < len(anc) && ordpath.Compare(anc[k], d) == 0; k++ {
				mark[k] = true
			}
		}
		return
	}
	var stack []int // indices into anc, the current ancestor-or-self chain
	ai := 0
	for _, d := range desc {
		for ai < len(anc) && ordpath.Compare(anc[ai], d) <= 0 {
			for len(stack) > 0 && !ancestorOrSelf(anc[stack[len(stack)-1]], anc[ai]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ai)
			ai++
		}
		for len(stack) > 0 && !ancestorOrSelf(anc[stack[len(stack)-1]], d) {
			stack = stack[:len(stack)-1]
		}
		switch rel {
		case relDescOrSelf:
			// Every chain entry relates to d; entries below the first
			// marked one were marked together with it earlier (marking
			// always covers a chain suffix toward the root), so stop there.
			for t := len(stack) - 1; t >= 0 && !mark[stack[t]]; t-- {
				mark[stack[t]] = true
			}
		case relDesc:
			t := len(stack) - 1
			for t >= 0 && ordpath.Compare(anc[stack[t]], d) == 0 {
				t-- // proper ancestors only: skip the or-self entries
			}
			for ; t >= 0 && !mark[stack[t]]; t-- {
				mark[stack[t]] = true
			}
		case relChild:
			dl := d.Level()
			for t := len(stack) - 1; t >= 0; t-- {
				l := anc[stack[t]].Level()
				if l < dl-1 {
					break
				}
				if l == dl-1 && ordpath.Compare(anc[stack[t]], d) != 0 {
					mark[stack[t]] = true
				}
			}
		}
	}
}

func ancestorOrSelf(a, b ordpath.Key) bool {
	return ordpath.Compare(a, b) == 0 || a.IsAncestorOf(b)
}
