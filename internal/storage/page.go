package storage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pathdb/internal/ordpath"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// RecKind classifies physical records. Core kinds mirror logical node
// kinds; the two proxy kinds are the paper's border nodes (Sec. 3.4): a
// ProxyChild sits where an edge leaves its cluster downward, a ProxyParent
// anchors a cluster's fragment and points back up. Each stores the NodeID
// of its companion, realising the target() operation.
type RecKind uint8

// Record kinds.
const (
	RecDoc RecKind = iota
	RecElem
	RecText
	RecComment
	RecPI
	RecProxyChild
	RecProxyParent
)

// String returns a readable kind name.
func (k RecKind) String() string {
	switch k {
	case RecDoc:
		return "doc"
	case RecElem:
		return "elem"
	case RecText:
		return "text"
	case RecComment:
		return "comment"
	case RecPI:
		return "pi"
	case RecProxyChild:
		return "proxy-child"
	case RecProxyParent:
		return "proxy-parent"
	default:
		return fmt.Sprintf("rec(%d)", uint8(k))
	}
}

// IsProxy reports whether the kind is a border node kind.
func (k RecKind) IsProxy() bool { return k == RecProxyChild || k == RecProxyParent }

// LogicalKind maps a core record kind to the logical node kind.
func (k RecKind) LogicalKind() xmltree.Kind {
	switch k {
	case RecDoc:
		return xmltree.Document
	case RecElem:
		return xmltree.Element
	case RecText:
		return xmltree.Text
	case RecComment:
		return xmltree.Comment
	case RecPI:
		return xmltree.ProcInst
	default:
		panic("storage: LogicalKind of proxy record")
	}
}

const noParent = -1

// attrRec is an attribute stored inline in its element's record.
type attrRec struct {
	tag xmltree.TagID
	val string
}

// rec is the decoded form of one record.
type rec struct {
	kind   RecKind
	parent int // slot of physical parent, noParent for fragment roots
	tag    xmltree.TagID
	text   string
	ord    ordpath.Key
	target NodeID // proxies: companion border node
	attrs  []attrRec

	dead     bool     // tombstoned slot (deleted record)
	children []uint16 // derived at decode: live slots with parent == this slot
}

// deadSlotOff marks a tombstoned slot in the on-page slot table. Page
// sizes are limited to 32 KiB so the sentinel cannot collide with a real
// record offset.
const deadSlotOff = 0xFFFF

// MaxPageSize bounds page sizes (slot offsets are uint16 with a sentinel).
const MaxPageSize = 32768

// pageImage is the swizzled (decoded, directly navigable) representation of
// one page — the object-buffer side of the dual-buffer scheme of Sec. 3.6.
// Images are immutable once published by the swizzle cache (the update path
// works on private copies), so they may be shared by concurrent readers.
type pageImage struct {
	page      vdisk.PageID
	recs      []rec
	borders   []uint16 // slots of proxy records, for XScan's speculation
	borderIDs []NodeID // the same borders as NodeIDs, for BordersOf
}

// --- binary encoding -------------------------------------------------------
//
// Page layout:
//
//	[0:2)  numSlots (uint16)
//	[2:4)  free-space offset (uint16)
//	[4:…)  record data, append-only
//	[cap-2*numSlots : cap) slot table, slot i at cap-2*(i+1), value = record
//	                        offset
//
// Record encoding: kind (1 byte), parent slot + 1 as uvarint (0 = none),
// then kind-specific payload (see encodeRec).

const pageHeaderSize = 4

// pageBuilder assembles a page image for writing.
type pageBuilder struct {
	cap   int
	data  []byte
	slots []uint16
}

func newPageBuilder(pageSize int) *pageBuilder {
	// The builder fills the usable region; the checksum trailer is stamped
	// by writePage when the finished payload goes to the device.
	b := &pageBuilder{cap: usable(pageSize), data: make([]byte, pageHeaderSize, pageSize)}
	return b
}

// used returns consumed bytes including header and slot table.
func (b *pageBuilder) used() int { return len(b.data) + 2*len(b.slots) }

// free returns remaining bytes.
func (b *pageBuilder) free() int { return b.cap - b.used() }

// add appends an encoded record, returning its slot. It panics if the
// record does not fit; callers check sizes via encodedSize first.
func (b *pageBuilder) add(encoded []byte) uint16 {
	if len(encoded)+2 > b.free() {
		panic("storage: record does not fit in page")
	}
	off := len(b.data)
	b.data = append(b.data, encoded...)
	b.slots = append(b.slots, uint16(off))
	return uint16(len(b.slots) - 1)
}

// finish serializes the page into a buffer of pageSize bytes.
func (b *pageBuilder) finish() []byte {
	out := make([]byte, b.cap)
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(b.slots)))
	binary.LittleEndian.PutUint16(out[2:4], uint16(len(b.data)))
	copy(out[pageHeaderSize:], b.data[pageHeaderSize:])
	for i, off := range b.slots {
		binary.LittleEndian.PutUint16(out[b.cap-2*(i+1):], off)
	}
	return out
}

// appendUvarint appends v in LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeRec serializes r (children are not stored; they are derived from
// parent pointers at decode time, which keeps record sizes fixed once
// written).
func encodeRec(r *rec) []byte {
	out := make([]byte, 0, encodedSize(r))
	out = append(out, byte(r.kind))
	out = appendUvarint(out, uint64(r.parent+1))
	switch r.kind {
	case RecDoc:
		// Nothing further.
	case RecElem:
		out = appendUvarint(out, uint64(r.tag))
		out = appendBytes(out, r.ord)
		out = appendUvarint(out, uint64(len(r.attrs)))
		for _, a := range r.attrs {
			out = appendUvarint(out, uint64(a.tag))
			out = appendString(out, a.val)
		}
	case RecText, RecComment, RecPI:
		out = appendBytes(out, r.ord)
		out = appendString(out, r.text)
	case RecProxyChild:
		// The ord key of the far fragment's first node positions the
		// proxy within its parent's child list, so document order
		// survives updates that insert siblings out of slot order.
		out = appendBytes(out, r.ord)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(r.target))
		out = append(out, buf[:]...)
	case RecProxyParent:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(r.target))
		out = append(out, buf[:]...)
	}
	return out
}

// encodedSize returns the exact byte size encodeRec will produce.
func encodedSize(r *rec) int {
	n := 1 + uvarintLen(uint64(r.parent+1))
	switch r.kind {
	case RecDoc:
	case RecElem:
		n += uvarintLen(uint64(r.tag))
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += uvarintLen(uint64(len(r.attrs)))
		for _, a := range r.attrs {
			n += uvarintLen(uint64(a.tag))
			n += uvarintLen(uint64(len(a.val))) + len(a.val)
		}
	case RecText, RecComment, RecPI:
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += uvarintLen(uint64(len(r.text))) + len(r.text)
	case RecProxyChild:
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += 8
	case RecProxyParent:
		n += 8
	}
	return n
}

// corruptError describes a malformed page.
type corruptError struct {
	page vdisk.PageID
	msg  string
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("storage: page %d corrupt: %s", e.page, e.msg)
}

// decodePage parses raw page bytes into a pageImage. The slot table sits at
// the end of the usable region; the trailing checksum bytes (verified by the
// buffer pool before raw reaches us) are not part of the record layout.
func decodePage(page vdisk.PageID, raw []byte, pageSize int) (*pageImage, error) {
	cap := usable(pageSize)
	if len(raw) < pageHeaderSize {
		return nil, &corruptError{page, "short page"}
	}
	n := int(binary.LittleEndian.Uint16(raw[0:2]))
	if cap-2*n < pageHeaderSize {
		return nil, &corruptError{page, "slot table overlaps header"}
	}
	img := &pageImage{page: page, recs: make([]rec, n)}
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint16(raw[cap-2*(i+1):]))
		if off == deadSlotOff {
			img.recs[i].dead = true
			continue
		}
		if off < pageHeaderSize || off >= cap {
			return nil, &corruptError{page, fmt.Sprintf("slot %d offset %d out of range", i, off)}
		}
		if err := decodeRec(&img.recs[i], raw[off:]); err != nil {
			return nil, &corruptError{page, fmt.Sprintf("slot %d: %v", i, err)}
		}
	}
	// Derive children lists and the border index, then order siblings by
	// their document-order keys: the initial bulk load allocates slots in
	// DFS order, but updates may insert out of slot order.
	for i := 0; i < n; i++ {
		r := &img.recs[i]
		if r.dead {
			continue
		}
		if r.parent != noParent {
			if r.parent < 0 || r.parent >= n || img.recs[r.parent].dead {
				return nil, &corruptError{page, fmt.Sprintf("slot %d: bad parent %d", i, r.parent)}
			}
			p := &img.recs[r.parent]
			p.children = append(p.children, uint16(i))
		}
		if r.kind.IsProxy() {
			img.borders = append(img.borders, uint16(i))
		}
	}
	for i := 0; i < n; i++ {
		kids := img.recs[i].children
		if len(kids) > 1 {
			sort.SliceStable(kids, func(a, b int) bool {
				return ordpath.Compare(img.recs[kids[a]].ord, img.recs[kids[b]].ord) < 0
			})
		}
	}
	if len(img.borders) > 0 {
		// Materialized once here so BordersOf can hand out a shared slice
		// instead of allocating per call.
		img.borderIDs = make([]NodeID, len(img.borders))
		for i, slot := range img.borders {
			img.borderIDs[i] = MakeNodeID(page, slot)
		}
	}
	return img, nil
}

// encodePageImage serializes live records back to a page payload (the
// usable region; writePage adds the checksum trailer), preserving slot
// numbers (NodeIDs embed them) and tombstoning dead slots. Trailing dead
// slots are truncated so their numbers become reusable.
func encodePageImage(img *pageImage, pageSize int) ([]byte, error) {
	n := len(img.recs)
	for n > 0 && img.recs[n-1].dead {
		n--
	}
	cap := usable(pageSize)
	out := make([]byte, cap)
	dataOff := pageHeaderSize
	for i := 0; i < n; i++ {
		slotPos := cap - 2*(i+1)
		if img.recs[i].dead {
			binary.LittleEndian.PutUint16(out[slotPos:], deadSlotOff)
			continue
		}
		enc := encodeRec(&img.recs[i])
		if dataOff+len(enc) > cap-2*n {
			return nil, &corruptError{img.page, "page overflow during rewrite"}
		}
		copy(out[dataOff:], enc)
		binary.LittleEndian.PutUint16(out[slotPos:], uint16(dataOff))
		dataOff += len(enc)
	}
	binary.LittleEndian.PutUint16(out[0:2], uint16(n))
	binary.LittleEndian.PutUint16(out[2:4], uint16(dataOff))
	return out, nil
}

// pageUsage returns the bytes consumed by live records plus slot table and
// header, i.e. the fit check for in-page inserts.
func pageUsage(img *pageImage) int {
	n := len(img.recs)
	for n > 0 && img.recs[n-1].dead {
		n--
	}
	used := pageHeaderSize + 2*n
	for i := 0; i < n; i++ {
		if !img.recs[i].dead {
			used += encodedSize(&img.recs[i])
		}
	}
	return used
}

type decodeCursor struct {
	b []byte
	i int
}

func (d *decodeCursor) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for ; d.i < len(d.b); d.i++ {
		c := d.b[d.i]
		if c < 0x80 {
			if shift > 63 {
				return 0, fmt.Errorf("uvarint overflow")
			}
			d.i++
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("uvarint overflow")
		}
	}
	return 0, fmt.Errorf("truncated uvarint")
}

func (d *decodeCursor) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if d.i+int(n) > len(d.b) {
		return nil, fmt.Errorf("truncated bytes field")
	}
	out := d.b[d.i : d.i+int(n)]
	d.i += int(n)
	return out, nil
}

func decodeRec(r *rec, raw []byte) error {
	if len(raw) == 0 {
		return fmt.Errorf("empty record")
	}
	d := &decodeCursor{b: raw, i: 1}
	r.kind = RecKind(raw[0])
	r.tag = xmltree.NoTag
	p, err := d.uvarint()
	if err != nil {
		return err
	}
	r.parent = int(p) - 1
	switch r.kind {
	case RecDoc:
	case RecElem:
		tag, err := d.uvarint()
		if err != nil {
			return err
		}
		r.tag = xmltree.TagID(tag)
		ord, err := d.bytes()
		if err != nil {
			return err
		}
		r.ord = ordpath.Key(append([]byte(nil), ord...))
		na, err := d.uvarint()
		if err != nil {
			return err
		}
		if na > 0 {
			r.attrs = make([]attrRec, na)
			for i := range r.attrs {
				at, err := d.uvarint()
				if err != nil {
					return err
				}
				v, err := d.bytes()
				if err != nil {
					return err
				}
				r.attrs[i] = attrRec{tag: xmltree.TagID(at), val: string(v)}
			}
		}
	case RecText, RecComment, RecPI:
		ord, err := d.bytes()
		if err != nil {
			return err
		}
		r.ord = ordpath.Key(append([]byte(nil), ord...))
		txt, err := d.bytes()
		if err != nil {
			return err
		}
		r.text = string(txt)
	case RecProxyChild:
		ord, err := d.bytes()
		if err != nil {
			return err
		}
		r.ord = ordpath.Key(append([]byte(nil), ord...))
		if d.i+8 > len(raw) {
			return fmt.Errorf("truncated proxy target")
		}
		r.target = NodeID(binary.LittleEndian.Uint64(raw[d.i:]))
	case RecProxyParent:
		if d.i+8 > len(raw) {
			return fmt.Errorf("truncated proxy target")
		}
		r.target = NodeID(binary.LittleEndian.Uint64(raw[d.i:]))
	default:
		return fmt.Errorf("unknown record kind %d", raw[0])
	}
	return nil
}
