// Package vdisk simulates the secondary-storage device underneath the
// buffer manager.
//
// The paper evaluates its operators against a real disk accessed with
// O_DIRECT; the decisive physical effects are (a) random page accesses pay
// a seek whose cost grows with head travel distance, (b) sequential
// accesses pay only transfer time, and (c) an asynchronous request queue
// lets the device reorder pending requests (shortest-seek-time-first or
// elevator), overlapping I/O with CPU work. This package reproduces those
// three effects with a deterministic, machine-independent virtual clock.
//
// Pages are real byte arrays: the storage engine genuinely round-trips its
// data through this device, so the simulation cannot cheat by peeking at
// in-memory structures.
//
// Timing model. The disk owns a head position and a busy-until instant.
// Synchronous reads start when both the caller (virtual now) and the disk
// are free. Asynchronous requests are queued; whenever the disk is idle it
// starts the pending request chosen by the scheduling policy. The drain is
// computed lazily when the CPU looks at the disk, which makes the whole
// simulation single-threaded and reproducible while still modelling
// CPU/I-O overlap exactly.
package vdisk

import (
	"fmt"

	"pathdb/internal/stats"
)

// PageID identifies a physical page by its position on the platter; seek
// distance between two pages is the difference of their PageIDs.
type PageID uint32

// InvalidPage is the nil PageID.
const InvalidPage PageID = ^PageID(0)

// Policy selects how the device orders pending asynchronous requests.
type Policy uint8

// Scheduling policies for the asynchronous request queue.
const (
	// SSTF picks the pending request closest to the current head position
	// (shortest seek time first). This is the default and models a command
	// queue on an intelligent disk (Sec. 3.7).
	SSTF Policy = iota
	// Elevator sweeps upward through pending requests, wrapping at the end
	// (C-SCAN), trading a little locality for fairness.
	Elevator
	// FIFO processes requests in submission order; used by ablations to
	// quantify the value of reordering.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case SSTF:
		return "sstf"
	case Elevator:
		return "elevator"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// CostModel holds the device and CPU cost constants, in virtual time. The
// CPU constants are charged by the buffer and algebra layers but live here
// so one struct configures a whole experiment.
type CostModel struct {
	// Device characteristics (2005-era 7200rpm disk, 8 KiB pages).
	SeekBase    stats.Ticks // settle + average rotational latency
	SeekPerPage stats.Ticks // incremental head travel per page of distance
	SeekMax     stats.Ticks // full-stroke cap
	Transfer    stats.Ticks // per-page transfer time

	// CPU work constants charged by upper layers.
	CPUHashLookup stats.Ticks // buffer-manager hash probe + latch
	CPUSwizzle    stats.Ticks // NodeID -> pointer (buffer lookup + table)
	CPUUnswizzle  stats.Ticks // pointer -> NodeID
	CPUNodeVisit  stats.Ticks // navigation primitive touching one node
	CPUTupleMove  stats.Ticks // passing one path instance between operators
	CPUSetOp      stats.Ticks // one R/S set probe or insert
}

// DefaultCostModel returns constants calibrated so that the three plans
// of the paper's evaluation reproduce its orderings, factors and CPU
// shares (see EXPERIMENTS.md): a 2005-era disk with sub-millisecond
// near seeks growing to ~8.5 ms across the volume, ~30 MB/s effective
// media rate on 8 KiB pages, and an interpretive record-at-a-time engine
// costing ≈0.7 µs per node touched (our packed pages hold ≈330 records,
// about twice Natix's density, which is why the per-node constant is
// lower than Natix's measured ≈3.5 µs). The CPU/I-O balance, not the
// absolute numbers, is what the reproduction depends on.
func DefaultCostModel() CostModel {
	return CostModel{
		SeekBase:    800 * stats.Microsecond,
		SeekPerPage: 4 * stats.Microsecond,
		SeekMax:     8500 * stats.Microsecond,
		Transfer:    270 * stats.Microsecond,

		CPUHashLookup: 500 * stats.Nanosecond,
		CPUSwizzle:    1000 * stats.Nanosecond,
		CPUUnswizzle:  80 * stats.Nanosecond,
		CPUNodeVisit:  700 * stats.Nanosecond,
		CPUTupleMove:  250 * stats.Nanosecond,
		CPUSetOp:      400 * stats.Nanosecond,
	}
}

// SeekCost returns the repositioning cost for a head travel of dist pages.
func (m CostModel) SeekCost(dist int64) stats.Ticks {
	if dist < 0 {
		dist = -dist
	}
	c := m.SeekBase + stats.Ticks(dist)*m.SeekPerPage
	if c > m.SeekMax {
		c = m.SeekMax
	}
	return c
}

type request struct {
	page      PageID
	submitted stats.Ticks
}

type completion struct {
	page PageID
	at   stats.Ticks
}

// Disk is the simulated device. It is not safe for concurrent use.
type Disk struct {
	model    CostModel
	led      *stats.Ledger
	pageSize int
	pages    [][]byte

	policy    Policy
	head      PageID
	busyUntil stats.Ticks

	pending   []request
	completed []completion // ascending completion time

	faultArmed bool // crash fault injection (SetWriteFault)
	writesLeft int

	tracing bool
	trace   []TraceEvent
}

// TraceEvent is one device operation in an I/O trace.
type TraceEvent struct {
	Op   string // "read", "read-seq", "read-async", "write"
	Page PageID
	At   stats.Ticks // completion time on the virtual clock
}

// SetTrace enables or disables I/O tracing (disabled by default); enabling
// clears any previous trace.
func (d *Disk) SetTrace(on bool) {
	d.tracing = on
	d.trace = nil
}

// Trace returns the recorded I/O events in completion order.
func (d *Disk) Trace() []TraceEvent { return d.trace }

func (d *Disk) traceEvent(op string, p PageID, at stats.Ticks) {
	if d.tracing {
		d.trace = append(d.trace, TraceEvent{Op: op, Page: p, At: at})
	}
}

// New returns an empty disk with the given page size.
func New(model CostModel, led *stats.Ledger, pageSize int) *Disk {
	if pageSize <= 0 {
		panic("vdisk: non-positive page size")
	}
	return &Disk{model: model, led: led, pageSize: pageSize, head: InvalidPage}
}

// SetPolicy selects the asynchronous scheduling policy.
func (d *Disk) SetPolicy(p Policy) { d.policy = p }

// Model returns the disk's cost model (upper layers read the CPU constants).
func (d *Disk) Model() CostModel { return d.model }

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int { return len(d.pages) }

// Ledger returns the shared cost ledger.
func (d *Disk) Ledger() *stats.Ledger { return d.led }

// Alloc appends a fresh zeroed page and returns its id. Allocation itself
// is free; the subsequent Write pays the I/O.
func (d *Disk) Alloc() PageID {
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// SetWriteFault arms a crash fault: the first n subsequent writes succeed,
// everything after them is silently dropped — the moment the power went
// out. Pass a negative n to disarm. Reads keep working (the surviving
// medium), so recovery code can be exercised against the truncated state.
func (d *Disk) SetWriteFault(n int) {
	d.faultArmed = n >= 0
	d.writesLeft = n
}

// Write stores data (at most one page) at page p, charging a synchronous
// random write. Import code typically resets the ledger afterwards, since
// the paper measures query time only.
func (d *Disk) Write(p PageID, data []byte) {
	d.checkPage(p)
	if d.faultArmed {
		if d.writesLeft <= 0 {
			return // dropped on the floor: the crash already happened
		}
		d.writesLeft--
	}
	if len(data) > d.pageSize {
		panic("vdisk: write larger than page")
	}
	copy(d.pages[p], data)
	for i := len(data); i < d.pageSize; i++ {
		d.pages[p][i] = 0
	}
	d.led.PageWrites++
	d.access(p)
	d.traceEvent("write", p, d.busyUntil)
}

// ReadSync reads page p synchronously into buf (which must hold a page),
// blocking the virtual clock until the transfer completes. Any pending
// asynchronous requests the device would have finished first are drained.
func (d *Disk) ReadSync(p PageID, buf []byte) {
	d.checkPage(p)
	d.drainUntil(d.led.Now)
	seq := d.head != InvalidPage && p == d.head+1
	d.access(p)
	op := "read"
	if seq {
		op = "read-seq"
	}
	d.traceEvent(op, p, d.busyUntil)
	copy(buf, d.pages[p])
}

// access performs the positioning + transfer for page p starting when both
// the caller and the device are free, blocking the clock on the result.
func (d *Disk) access(p PageID) {
	start := d.led.Now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + d.cost(p)
	d.head = p
	d.busyUntil = done
	d.led.BlockUntil(done)
}

// cost computes the positioning+transfer cost of touching page p from the
// current head position and updates the seek statistics.
func (d *Disk) cost(p PageID) stats.Ticks {
	d.led.PageReads++
	if d.head != InvalidPage && p == d.head+1 {
		d.led.SeqPageReads++
		return d.model.Transfer
	}
	var dist int64
	if d.head == InvalidPage {
		dist = int64(p)
	} else {
		dist = int64(p) - int64(d.head)
	}
	d.led.Seeks++
	if dist < 0 {
		d.led.SeekDistance -= dist
	} else {
		d.led.SeekDistance += dist
	}
	return d.model.SeekCost(dist) + d.model.Transfer
}

// Submit queues an asynchronous read of page p. Submission is free on the
// virtual clock, so a burst of Submit calls is atomic: the device sees the
// whole burst before choosing what to service first, which is exactly the
// "forward many requests at once to the lower layers" behaviour of Sec. 1.
func (d *Disk) Submit(p PageID) {
	d.checkPage(p)
	d.led.AsyncSubmitted++
	d.pending = append(d.pending, request{page: p, submitted: d.led.Now})
}

// PendingAsync returns the number of submitted-but-uncompleted requests.
func (d *Disk) PendingAsync() int { return len(d.pending) + len(d.completed) }

// WaitAny blocks until some asynchronous request has completed, copies its
// page into buf and returns its id. ok is false if no request is pending.
func (d *Disk) WaitAny(buf []byte) (p PageID, ok bool) {
	d.drainUntil(d.led.Now)
	if len(d.completed) == 0 {
		if len(d.pending) == 0 {
			return InvalidPage, false
		}
		d.processNext()
	}
	c := d.completed[0]
	d.completed = d.completed[1:]
	d.led.BlockUntil(c.at)
	d.led.AsyncCompleted++
	copy(buf, d.pages[c.page])
	return c.page, true
}

// drainUntil lets the device work through pending requests in the
// background until virtual time t: every request whose service would start
// strictly before t is processed.
func (d *Disk) drainUntil(t stats.Ticks) {
	for len(d.pending) > 0 {
		start := d.busyUntil
		if earliest := d.earliestSubmit(); earliest > start {
			start = earliest
		}
		if start >= t {
			return
		}
		d.processNext()
	}
}

func (d *Disk) earliestSubmit() stats.Ticks {
	e := d.pending[0].submitted
	for _, r := range d.pending[1:] {
		if r.submitted < e {
			e = r.submitted
		}
	}
	return e
}

// processNext services one pending request according to the policy.
func (d *Disk) processNext() {
	idx := d.pickNext()
	r := d.pending[idx]
	d.pending = append(d.pending[:idx], d.pending[idx+1:]...)
	start := d.busyUntil
	if r.submitted > start {
		start = r.submitted
	}
	done := start + d.cost(r.page)
	d.head = r.page
	d.busyUntil = done
	d.completed = append(d.completed, completion{page: r.page, at: done})
	d.traceEvent("read-async", r.page, done)
}

// pickNext returns the index of the next pending request per the policy.
func (d *Disk) pickNext() int {
	switch d.policy {
	case FIFO:
		best := 0
		for i, r := range d.pending {
			if r.submitted < d.pending[best].submitted {
				best = i
			}
		}
		return best
	case Elevator:
		// C-SCAN: smallest page >= head; wrap to global smallest.
		best, bestWrap := -1, 0
		for i, r := range d.pending {
			if d.head != InvalidPage && r.page >= d.head {
				if best == -1 || r.page < d.pending[best].page {
					best = i
				}
			}
			if r.page < d.pending[bestWrap].page {
				bestWrap = i
			}
		}
		if best >= 0 {
			return best
		}
		return bestWrap
	default: // SSTF
		best := 0
		bestDist := d.distTo(d.pending[0].page)
		for i, r := range d.pending[1:] {
			if dd := d.distTo(r.page); dd < bestDist {
				best, bestDist = i+1, dd
			}
		}
		return best
	}
}

func (d *Disk) distTo(p PageID) int64 {
	if d.head == InvalidPage {
		return int64(p)
	}
	dd := int64(p) - int64(d.head)
	if dd < 0 {
		return -dd
	}
	return dd
}

func (d *Disk) checkPage(p PageID) {
	if int(p) >= len(d.pages) {
		panic(fmt.Sprintf("vdisk: page %d out of range (have %d)", p, len(d.pages)))
	}
}

// ResetClockState clears the device's temporal state (head position, busy
// time, queues) without touching page contents. Benchmarks call this
// between plan runs so each run starts from a cold, parked device.
func (d *Disk) ResetClockState() {
	d.head = InvalidPage
	d.busyUntil = 0
	d.pending = nil
	d.completed = nil
}
