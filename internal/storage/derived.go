package storage

import "sync"

// maxDerivedEntries bounds the derived cache; when a generation fills up,
// further inserts are dropped (the next epoch starts a fresh generation).
const maxDerivedEntries = 256

// DerivedCache memoizes document-only artifacts derived from a volume's
// content — today the structural-join filter sets (internal/core.XJoin),
// which depend on the document and the branch path but never on the
// candidate set. It holds exactly one generation: the entries computed at
// the highest version epoch seen so far. A commit advances the epoch, so
// the first lookup at the new epoch drops the whole generation — the same
// invalidation discipline as the epoch-keyed swizzle cache, at coarser
// (whole-volume) grain because a filter set can span every cluster.
//
// Views pinned to an older snapshot simply miss (and their results are not
// admitted), so MVCC readers can never observe entries from a version
// other than their own.
type DerivedCache struct {
	mu    sync.Mutex
	epoch uint64
	m     map[string]any

	hits, misses uint64
}

func newDerivedCache() *DerivedCache {
	return &DerivedCache{m: make(map[string]any)}
}

// Get returns the entry for key computed at exactly the given epoch.
func (c *DerivedCache) Get(epoch uint64, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.misses++
		return nil, false
	}
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put admits an entry computed at the given epoch. An epoch ahead of the
// cache's generation replaces it wholesale; an older epoch (a query pinned
// to a superseded snapshot) is dropped so stale artifacts never shadow
// current ones.
func (c *DerivedCache) Put(epoch uint64, key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case epoch > c.epoch:
		c.epoch = epoch
		c.m = make(map[string]any)
	case epoch < c.epoch:
		return
	}
	if len(c.m) >= maxDerivedEntries {
		return
	}
	c.m[key] = v
}

// Contains reports whether key is resident at the given epoch, without
// touching the hit/miss counters — cost-model probes are not lookups.
func (c *DerivedCache) Contains(epoch uint64, key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return false
	}
	_, ok := c.m[key]
	return ok
}

// Stats returns the lifetime hit/miss counters (for tests and metrics).
func (c *DerivedCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// reset drops every entry but keeps the generation epoch, so the next
// queries repopulate from scratch (measured runs start cold).
func (c *DerivedCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]any)
}

// Derived returns this view's derived-artifact cache together with the
// version epoch its entries must be keyed by, or ok=false when the view
// must not use it — a write transaction reading through its page overlay
// sees staged images the epoch does not name yet.
func (s *Store) Derived() (*DerivedCache, uint64, bool) {
	if s.derived == nil || s.overlay != nil {
		return nil, 0, false
	}
	return s.derived, s.VersionEpoch(), true
}
