// Package xmark generates XMark-shaped benchmark documents (Schmidt et
// al., VLDB 2002) deterministically, substituting for the original xmlgen
// tool, which is not available in this environment.
//
// The generator reproduces the structural features the paper's evaluation
// queries exercise:
//
//   - the region hierarchy with its skewed item distribution (Q6'),
//   - prose containers description/annotation/emailaddress spread across
//     most of the document (Q7), and
//   - the nested parlist/listitem/text/emph/keyword structure inside
//     closed-auction annotations (Q15).
//
// Entity counts scale linearly with the scale factor, using the standard
// XMark proportions (21 750 items, 25 500 persons, 12 000 open and 9 750
// closed auctions, 1 000 categories at factor 1), multiplied by
// EntityScale so experiments stay laptop-sized: with the default
// EntityScale of 0.1, a factor-1 document is roughly a tenth of the
// official 110 MB XMark document while preserving all selectivities.
package xmark

import (
	"fmt"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
)

// Config parameterises document generation.
type Config struct {
	// ScaleFactor is the XMark scale factor (the x-axis of Figs. 9-11).
	ScaleFactor float64
	// Seed makes documents reproducible; documents with different seeds
	// differ in content but not in entity counts.
	Seed uint64
	// EntityScale multiplies the standard XMark entity counts (default
	// 0.1). Set to 1.0 to reproduce full-size XMark populations.
	EntityScale float64
}

func (c Config) withDefaults() Config {
	if c.EntityScale == 0 {
		c.EntityScale = 0.1
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 1
	}
	return c
}

// Counts are the top-level entity populations for a configuration.
type Counts struct {
	Items          int // across all regions
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
	Categories     int
}

// Standard XMark populations at scale factor 1.
const (
	baseItems          = 21750
	basePersons        = 25500
	baseOpenAuctions   = 12000
	baseClosedAuctions = 9750
	baseCategories     = 1000
)

// regionShare is the fraction of items per region, from the xmlgen source.
var regionShare = []struct {
	name  string
	share float64
}{
	{"africa", 0.0253},
	{"asia", 0.092},
	{"australia", 0.1011},
	{"europe", 0.2759},
	{"namerica", 0.4598},
	{"samerica", 0.0459},
}

// CountsFor returns the entity populations for cfg.
func CountsFor(cfg Config) Counts {
	cfg = cfg.withDefaults()
	scale := cfg.ScaleFactor * cfg.EntityScale
	n := func(base int) int {
		v := int(float64(base)*scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Counts{
		Items:          n(baseItems),
		Persons:        n(basePersons),
		OpenAuctions:   n(baseOpenAuctions),
		ClosedAuctions: n(baseClosedAuctions),
		Categories:     n(baseCategories),
	}
}

// Generate builds an XMark-shaped document, interning tags into dict.
func Generate(dict *xmltree.Dictionary, cfg Config) *xmltree.Node {
	cfg = cfg.withDefaults()
	counts := CountsFor(cfg)
	g := &generator{
		b:      xmltree.NewBuilder(dict),
		r:      rng.New(cfg.Seed ^ 0x44A7C0FFEE),
		counts: counts,
	}
	return g.site()
}

type generator struct {
	b      *xmltree.Builder
	r      *rng.RNG
	counts Counts
	serial int
}

func (g *generator) id(prefix string) string {
	g.serial++
	return fmt.Sprintf("%s%d", prefix, g.serial)
}

// site emits the whole document.
func (g *generator) site() *xmltree.Node {
	b := g.b
	b.Begin("site")

	b.Begin("regions")
	remaining := g.counts.Items
	for i, reg := range regionShare {
		n := int(float64(g.counts.Items)*reg.share + 0.5)
		if i == len(regionShare)-1 {
			n = remaining
		}
		if n > remaining {
			n = remaining
		}
		remaining -= n
		b.Begin(reg.name)
		for j := 0; j < n; j++ {
			g.item()
		}
		b.End()
	}
	b.End() // regions

	b.Begin("categories")
	for i := 0; i < g.counts.Categories; i++ {
		g.category()
	}
	b.End()

	b.Begin("catgraph")
	for i := 0; i < g.counts.Categories; i++ {
		b.Begin("edge").
			Attr("from", fmt.Sprintf("category%d", g.r.Intn(g.counts.Categories))).
			Attr("to", fmt.Sprintf("category%d", g.r.Intn(g.counts.Categories))).
			End()
	}
	b.End()

	b.Begin("people")
	for i := 0; i < g.counts.Persons; i++ {
		g.person(i)
	}
	b.End()

	b.Begin("open_auctions")
	for i := 0; i < g.counts.OpenAuctions; i++ {
		g.openAuction()
	}
	b.End()

	b.Begin("closed_auctions")
	for i := 0; i < g.counts.ClosedAuctions; i++ {
		g.closedAuction()
	}
	b.End()

	b.End() // site
	return b.Doc()
}

func (g *generator) item() {
	b := g.b
	b.Begin("item").Attr("id", g.id("item"))
	b.Leaf("location", g.words(1, 2))
	b.Leaf("quantity", fmt.Sprintf("%d", g.r.IntRange(1, 10)))
	b.Leaf("name", g.words(2, 4))
	b.Begin("payment").Text(g.words(1, 3)).End()
	g.description()
	b.Begin("shipping").Text(g.words(2, 5)).End()
	for i, n := 0, g.r.IntRange(1, 3); i < n; i++ {
		b.Begin("incategory").
			Attr("category", fmt.Sprintf("category%d", g.r.Intn(g.counts.Categories))).
			End()
	}
	g.mailbox()
	b.End()
}

func (g *generator) category() {
	b := g.b
	b.Begin("category").Attr("id", g.id("category"))
	b.Leaf("name", g.words(1, 3))
	g.description()
	b.End()
}

func (g *generator) person(i int) {
	b := g.b
	b.Begin("person").Attr("id", fmt.Sprintf("person%d", i))
	b.Leaf("name", g.words(2, 2))
	b.Leaf("emailaddress", "mailto:"+g.word()+"@"+g.word()+".com")
	if g.r.Bool(0.5) {
		b.Leaf("phone", fmt.Sprintf("+%d (%d) %d", g.r.Intn(99), g.r.Intn(999), g.r.Intn(9999999)))
	}
	if g.r.Bool(0.4) {
		b.Begin("address").
			Leaf("street", g.words(2, 3)).
			Leaf("city", g.word()).
			Leaf("country", g.word()).
			Leaf("zipcode", fmt.Sprintf("%d", g.r.Intn(99999))).
			End()
	}
	if g.r.Bool(0.3) {
		b.Leaf("homepage", "http://www."+g.word()+".com/~"+g.word())
	}
	if g.r.Bool(0.25) {
		b.Leaf("creditcard", fmt.Sprintf("%d %d %d %d", g.r.Intn(9999), g.r.Intn(9999), g.r.Intn(9999), g.r.Intn(9999)))
	}
	if g.r.Bool(0.6) {
		b.Begin("profile").Attr("income", fmt.Sprintf("%d", g.r.IntRange(9, 99)*1000))
		for j, n := 0, g.r.Intn(4); j < n; j++ {
			b.Begin("interest").
				Attr("category", fmt.Sprintf("category%d", g.r.Intn(g.counts.Categories))).
				End()
		}
		if g.r.Bool(0.5) {
			b.Leaf("education", g.words(1, 2))
		}
		if g.r.Bool(0.5) {
			b.Leaf("gender", []string{"male", "female"}[g.r.Intn(2)])
		}
		b.Leaf("business", []string{"Yes", "No"}[g.r.Intn(2)])
		if g.r.Bool(0.5) {
			b.Leaf("age", fmt.Sprintf("%d", g.r.IntRange(18, 90)))
		}
		b.End()
	}
	if g.r.Bool(0.3) {
		b.Begin("watches")
		for j, n := 0, g.r.IntRange(1, 4); j < n; j++ {
			b.Begin("watch").
				Attr("open_auction", fmt.Sprintf("open_auction%d", g.r.Intn(g.counts.OpenAuctions))).
				End()
		}
		b.End()
	}
	b.End()
}

func (g *generator) openAuction() {
	b := g.b
	b.Begin("open_auction").Attr("id", g.id("open_auction"))
	b.Leaf("initial", g.money())
	if g.r.Bool(0.4) {
		b.Leaf("reserve", g.money())
	}
	for i, n := 0, g.r.Intn(5); i < n; i++ {
		b.Begin("bidder").
			Leaf("date", g.date()).
			Leaf("time", g.time()).
			Begin("personref").Attr("person", fmt.Sprintf("person%d", g.r.Intn(g.counts.Persons))).End().
			Leaf("increase", g.money()).
			End()
	}
	b.Leaf("current", g.money())
	if g.r.Bool(0.3) {
		b.Leaf("privacy", "Yes")
	}
	b.Begin("itemref").Attr("item", fmt.Sprintf("item%d", g.r.IntRange(1, g.counts.Items))).End()
	b.Begin("seller").Attr("person", fmt.Sprintf("person%d", g.r.Intn(g.counts.Persons))).End()
	g.annotation()
	b.Leaf("quantity", fmt.Sprintf("%d", g.r.IntRange(1, 5)))
	b.Leaf("type", []string{"Regular", "Featured", "Dutch"}[g.r.Intn(3)])
	b.Begin("interval").Leaf("start", g.date()).Leaf("end", g.date()).End()
	b.End()
}

func (g *generator) closedAuction() {
	b := g.b
	b.Begin("closed_auction")
	b.Begin("seller").Attr("person", fmt.Sprintf("person%d", g.r.Intn(g.counts.Persons))).End()
	b.Begin("buyer").Attr("person", fmt.Sprintf("person%d", g.r.Intn(g.counts.Persons))).End()
	b.Begin("itemref").Attr("item", fmt.Sprintf("item%d", g.r.IntRange(1, g.counts.Items))).End()
	b.Leaf("price", g.money())
	b.Leaf("date", g.date())
	b.Leaf("quantity", fmt.Sprintf("%d", g.r.IntRange(1, 5)))
	b.Leaf("type", []string{"Regular", "Featured", "Dutch"}[g.r.Intn(3)])
	g.annotation()
	b.End()
}

// annotation = (author, description, happiness), the prose container of
// Q7 and the entry point of Q15's long child path.
func (g *generator) annotation() {
	b := g.b
	b.Begin("annotation")
	b.Begin("author").Attr("person", fmt.Sprintf("person%d", g.r.Intn(g.counts.Persons))).End()
	g.description()
	b.Leaf("happiness", fmt.Sprintf("%d", g.r.IntRange(1, 10)))
	b.End()
}

// description = (text | parlist).
func (g *generator) description() {
	g.b.Begin("description")
	if g.r.Bool(0.3) {
		g.parlist(0)
	} else {
		g.text()
	}
	g.b.End()
}

// parlist = (listitem)*; listitem = (text | parlist)*.
func (g *generator) parlist(depth int) {
	b := g.b
	b.Begin("parlist")
	for i, n := 0, g.r.IntRange(1, 3); i < n; i++ {
		b.Begin("listitem")
		if depth < 2 && g.r.Bool(0.3) {
			g.parlist(depth + 1)
		} else {
			g.text()
		}
		b.End()
	}
	b.End()
}

// text is mixed content with keyword/bold/emph markup; emph may nest a
// keyword, completing Q15's .../text/emph/keyword tail.
func (g *generator) text() {
	b := g.b
	b.Begin("text")
	for i, n := 0, g.r.IntRange(1, 4); i < n; i++ {
		b.Text(g.words(4, 12) + " ")
		switch g.r.Intn(6) {
		case 0:
			b.Leaf("bold", g.words(1, 3))
		case 1:
			b.Leaf("keyword", g.words(1, 2))
		case 2:
			b.Begin("emph")
			b.Text(g.words(1, 2))
			if g.r.Bool(0.5) {
				b.Leaf("keyword", g.words(1, 2))
			}
			b.End()
		}
	}
	b.End()
}

func (g *generator) mailbox() {
	b := g.b
	b.Begin("mailbox")
	for i, n := 0, g.r.Intn(3); i < n; i++ {
		b.Begin("mail").
			Leaf("from", g.words(2, 2)).
			Leaf("to", g.words(2, 2)).
			Leaf("date", g.date())
		g.text()
		b.End()
	}
	b.End()
}

func (g *generator) money() string {
	return fmt.Sprintf("%d.%02d", g.r.IntRange(1, 300), g.r.Intn(100))
}

func (g *generator) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", g.r.IntRange(1, 12), g.r.IntRange(1, 28), g.r.IntRange(1998, 2001))
}

func (g *generator) time() string {
	return fmt.Sprintf("%02d:%02d:%02d", g.r.Intn(24), g.r.Intn(60), g.r.Intn(60))
}
