// Command xbench regenerates the tables and figures of the paper's
// evaluation (Sec. 6) plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	xbench                     # everything: Figs. 9-11, Table 3, ablations
//	xbench -fig 10             # one figure (Q7 across scale factors)
//	xbench -table 3            # Table 3 at scale factor 1
//	xbench -ablation k         # one ablation (k, layout, speculative,
//	                           # fallback, multiquery, policy, firststep)
//	xbench -scale 0.02 -quick  # smaller populations / fewer scale factors
//
// Times are virtual seconds from the calibrated disk/CPU model, which is
// deterministic and machine independent; compare shapes against the
// paper's figures, not absolute values.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathdb/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (9, 10 or 11)")
	table := flag.Int("table", 0, "regenerate one table (3)")
	ablation := flag.String("ablation", "", "run one ablation: k, layout, speculative, fallback, multiquery, policy, firststep, updates, buffer")
	scale := flag.Float64("scale", 0.2, "entity scale (0.2 ≈ one tenth of official XMark by bytes)")
	seed := flag.Uint64("seed", 42, "workload seed")
	quick := flag.Bool("quick", false, "use fewer scale factors (0.25, 0.5, 1)")
	flag.Parse()

	cfg := bench.Config{EntityScale: *scale, Seed: *seed}
	w := bench.NewWorkload(cfg)
	sfs := bench.PaperScaleFactors
	if *quick {
		sfs = []float64{0.25, 0.5, 1}
	}

	figures := map[int]bench.Query{9: bench.Q6, 10: bench.Q7, 11: bench.Q15}

	ran := false
	if *fig != 0 {
		q, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "xbench: no figure %d (have 9, 10, 11)\n", *fig)
			os.Exit(1)
		}
		bench.RenderFigure(os.Stdout, figName(*fig, q), w.Figure(q, sfs))
		ran = true
	}
	if *table != 0 {
		if *table != 3 {
			fmt.Fprintln(os.Stderr, "xbench: only table 3 exists")
			os.Exit(1)
		}
		bench.RenderTable3(os.Stdout, w.Table3(1))
		ran = true
	}
	if *ablation != "" {
		runAblation(w, cfg, *ablation)
		ran = true
	}
	if ran {
		return
	}

	// Default: the full evaluation.
	for _, f := range []int{9, 10, 11} {
		bench.RenderFigure(os.Stdout, figName(f, figures[f]), w.Figure(figures[f], sfs))
		fmt.Println()
	}
	bench.RenderTable3(os.Stdout, w.Table3(1))
	fmt.Println()
	for _, a := range []string{"k", "layout", "speculative", "fallback", "multiquery", "policy", "firststep", "updates", "buffer"} {
		runAblation(w, cfg, a)
		fmt.Println()
	}
}

func figName(f int, q bench.Query) string {
	return fmt.Sprintf("Figure %d — %s: %v", f, q.Name, q.Paths)
}

func runAblation(w *bench.Workload, cfg bench.Config, name string) {
	switch name {
	case "k":
		bench.RenderAblation(os.Stdout, "XSchedule queue fill target k (Q6', sf 1)",
			w.AblationK(1, []int{1, 10, 100, 1000}))
	case "layout":
		bench.RenderAblation(os.Stdout, "physical layout vs plan (Q6', sf 1)",
			bench.AblationLayout(cfg, 1, bench.Q6))
	case "speculative":
		bench.RenderAblation(os.Stdout, "speculative XSchedule on a revisit-prone path (sf 1)",
			w.AblationSpeculative(1))
	case "fallback":
		bench.RenderAblation(os.Stdout, "memory-limit fallback on an XScan plan (sf 1)",
			w.AblationFallback(1, []int{0, 1000, 100, 10}))
	case "multiquery":
		bench.RenderAblation(os.Stdout, "Q7's three paths: concurrent plans vs one shared scheduler (sf 1)",
			w.AblationMultiQuery(1))
	case "policy":
		bench.RenderAblation(os.Stdout, "device queue scheduling policy (Q6' XSchedule, sf 1)",
			w.AblationDiskPolicy(1))
	case "firststep":
		bench.RenderAblation(os.Stdout, "'//' first-step optimisation (XScan, //description, sf 1)",
			w.AblationFirstStepAll(1))
	case "updates":
		bench.RenderAblation(os.Stdout, "plan gap before/after 500 incremental inserts (Q6', sf 1)",
			w.AblationUpdates(1, 500))
	case "buffer":
		bench.RenderAblation(os.Stdout, "buffer pool size across a 3-query session (Q7, sf 1)",
			w.AblationBufferSize(1, []int{12, 45, 90, 360, 1440}))
	default:
		fmt.Fprintf(os.Stderr, "xbench: unknown ablation %q\n", name)
		os.Exit(1)
	}
}
