// Package xmlparse implements a small, fast, non-validating XML parser that
// produces xmltree documents.
//
// It supports the subset of XML that the XMark benchmark documents (and
// typical database-stored XML) use: elements, attributes (single- or
// double-quoted), character data, CDATA sections, comments, processing
// instructions, the XML declaration, a DOCTYPE declaration (skipped), and
// the five predefined entities plus decimal/hex character references.
// Namespaces are treated lexically: a qualified name is interned verbatim.
//
// The parser checks well-formedness (tag balance, attribute quoting, name
// syntax) and reports errors with line/column positions.
package xmlparse

import (
	"fmt"
	"strings"

	"pathdb/internal/xmltree"
)

// SyntaxError describes a well-formedness violation.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses the document in src, interning names into dict.
func Parse(dict *xmltree.Dictionary, src []byte) (*xmltree.Node, error) {
	p := &parser{dict: dict, src: src, line: 1, col: 1}
	return p.parseDocument()
}

// ParseString is Parse over a string.
func ParseString(dict *xmltree.Dictionary, src string) (*xmltree.Node, error) {
	return Parse(dict, []byte(src))
}

type parser struct {
	dict *xmltree.Dictionary
	src  []byte
	pos  int
	line int
	col  int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off >= len(p.src) {
		return 0
	}
	return p.src[p.pos+off]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) skipWS() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n':
			p.advance()
		default:
			return
		}
	}
}

func (p *parser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *parser) consume(s string) bool {
	if !p.hasPrefix(s) {
		return false
	}
	for range s {
		p.advance()
	}
	return true
}

// skipUntil advances past the first occurrence of s, returning false at EOF.
func (p *parser) skipUntil(s string) bool {
	for !p.eof() {
		if p.hasPrefix(s) {
			p.consume(s)
			return true
		}
		p.advance()
	}
	return false
}

// readUntil returns the bytes before the first occurrence of s and consumes
// the delimiter.
func (p *parser) readUntil(s string) (string, bool) {
	start := p.pos
	for !p.eof() {
		if p.hasPrefix(s) {
			out := string(p.src[start:p.pos])
			p.consume(s)
			return out, true
		}
		p.advance()
	}
	return "", false
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) readName() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	return string(p.src[start:p.pos]), nil
}

func (p *parser) parseDocument() (*xmltree.Node, error) {
	doc := xmltree.NewDocument()
	sawRoot := false
	for {
		p.skipWS()
		if p.eof() {
			break
		}
		if p.peek() != '<' {
			return nil, p.errf("content outside root element")
		}
		switch {
		case p.hasPrefix("<?"):
			if err := p.parseProcInst(doc); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!--"):
			if err := p.parseComment(doc); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!"):
			return nil, p.errf("unexpected markup declaration")
		default:
			if sawRoot {
				return nil, p.errf("multiple root elements")
			}
			if err := p.parseElement(doc); err != nil {
				return nil, err
			}
			sawRoot = true
		}
	}
	if !sawRoot {
		return nil, p.errf("document has no root element")
	}
	return doc, nil
}

func (p *parser) skipDoctype() error {
	p.consume("<!DOCTYPE")
	depth := 1
	for !p.eof() {
		switch p.advance() {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated DOCTYPE")
}

func (p *parser) parseProcInst(parent *xmltree.Node) error {
	p.consume("<?")
	body, ok := p.readUntil("?>")
	if !ok {
		return p.errf("unterminated processing instruction")
	}
	// The XML declaration is recognised and dropped; other PIs are kept.
	if strings.HasPrefix(body, "xml") && (len(body) == 3 || body[3] == ' ' || body[3] == '\t') {
		return nil
	}
	parent.AppendChild(&xmltree.Node{Kind: xmltree.ProcInst, Tag: xmltree.NoTag, Text: body})
	return nil
}

func (p *parser) parseComment(parent *xmltree.Node) error {
	p.consume("<!--")
	body, ok := p.readUntil("-->")
	if !ok {
		return p.errf("unterminated comment")
	}
	parent.AppendChild(&xmltree.Node{Kind: xmltree.Comment, Tag: xmltree.NoTag, Text: body})
	return nil
}

func (p *parser) parseElement(parent *xmltree.Node) error {
	if !p.consume("<") {
		return p.errf("expected '<'")
	}
	name, err := p.readName()
	if err != nil {
		return err
	}
	elem := xmltree.NewElement(p.dict.Intern(name))
	parent.AppendChild(elem)

	// Attributes.
	for {
		p.skipWS()
		if p.eof() {
			return p.errf("unterminated start tag <%s", name)
		}
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		aname, err := p.readName()
		if err != nil {
			return p.errf("bad attribute name in <%s>", name)
		}
		p.skipWS()
		if !p.consume("=") {
			return p.errf("attribute %s in <%s> missing '='", aname, name)
		}
		p.skipWS()
		quote := p.peek()
		if quote != '"' && quote != '\'' {
			return p.errf("attribute %s in <%s> not quoted", aname, name)
		}
		p.advance()
		raw, ok := p.readUntil(string(quote))
		if !ok {
			return p.errf("unterminated attribute value for %s", aname)
		}
		val, err := p.expandEntities(raw)
		if err != nil {
			return err
		}
		elem.SetAttr(p.dict.Intern(aname), val)
	}

	if p.consume("/>") {
		return nil
	}
	if !p.consume(">") {
		return p.errf("malformed start tag <%s", name)
	}
	return p.parseContent(elem, name)
}

func (p *parser) parseContent(elem *xmltree.Node, name string) error {
	var textBuf strings.Builder
	flushText := func() error {
		if textBuf.Len() == 0 {
			return nil
		}
		s, err := p.expandEntities(textBuf.String())
		if err != nil {
			return err
		}
		elem.AppendChild(xmltree.NewText(s))
		textBuf.Reset()
		return nil
	}
	for {
		if p.eof() {
			return p.errf("unterminated element <%s>", name)
		}
		if p.peek() != '<' {
			textBuf.WriteByte(p.advance())
			continue
		}
		switch {
		case p.hasPrefix("</"):
			if err := flushText(); err != nil {
				return err
			}
			p.consume("</")
			end, err := p.readName()
			if err != nil {
				return err
			}
			if end != name {
				return p.errf("mismatched end tag </%s>, open element is <%s>", end, name)
			}
			p.skipWS()
			if !p.consume(">") {
				return p.errf("malformed end tag </%s", end)
			}
			return nil
		case p.hasPrefix("<!--"):
			if err := flushText(); err != nil {
				return err
			}
			if err := p.parseComment(elem); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			p.consume("<![CDATA[")
			body, ok := p.readUntil("]]>")
			if !ok {
				return p.errf("unterminated CDATA section")
			}
			// CDATA is literal text; bypass entity expansion.
			if err := flushText(); err != nil {
				return err
			}
			elem.AppendChild(xmltree.NewText(body))
		case p.hasPrefix("<?"):
			if err := flushText(); err != nil {
				return err
			}
			if err := p.parseProcInst(elem); err != nil {
				return err
			}
		case p.hasPrefix("<!"):
			return p.errf("unexpected markup declaration in content")
		default:
			if err := flushText(); err != nil {
				return err
			}
			if err := p.parseElement(elem); err != nil {
				return err
			}
		}
	}
}

// expandEntities resolves the predefined entities and character references.
func (p *parser) expandEntities(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", p.errf("unterminated entity reference")
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "quot":
			b.WriteByte('"')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			r, err := parseUint(ent[2:], 16)
			if err != nil {
				return "", p.errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(r))
		case strings.HasPrefix(ent, "#"):
			r, err := parseUint(ent[1:], 10)
			if err != nil {
				return "", p.errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(r))
		default:
			return "", p.errf("unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return b.String(), nil
}

func parseUint(s string, base uint32) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var v uint32
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		if d >= base {
			return 0, fmt.Errorf("digit %q out of base", c)
		}
		v = v*base + d
		if v > 0x10FFFF {
			return 0, fmt.Errorf("rune out of range")
		}
	}
	return v, nil
}
