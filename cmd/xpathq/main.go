// Command xpathq evaluates one location path against a document and
// reports the results together with the physical cost ledger, making the
// effect of the three plan strategies visible.
//
// Usage:
//
//	xpathq -xml doc.xml -q '/site//item' [-strategy auto|simple|xschedule|xscan]
//	xpathq -xmark 1 -q '/site//description' -strategy xscan -stats
//
// With -print the result nodes are serialized; otherwise the cardinality
// is reported (count(...) semantics, as in the paper's Q6' and Q7).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pathdb"
)

func main() {
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document with this scale factor instead")
	seed := flag.Uint64("seed", 42, "seed for -xmark and fragmented layouts")
	scale := flag.Float64("scale", 0.1, "entity scale for -xmark")
	query := flag.String("q", "", "location path to evaluate (required)")
	strategy := flag.String("strategy", "auto", "plan strategy: auto, simple, xschedule, xscan")
	preds := flag.String("preds", "auto", "predicate evaluator: auto, nested, join")
	layoutName := flag.String("layout", "natural", "physical layout: natural, contiguous, shuffled")
	buffer := flag.Int("buffer", 0, "buffer pool pages (default 1000)")
	sorted := flag.Bool("sorted", false, "return results in document order")
	limit := flag.Int("limit", 0, "stop after N results (0 = all)")
	timeoutMS := flag.Int64("timeout", 0, "per-query budget in milliseconds (0 = none)")
	print := flag.Bool("print", false, "serialize result nodes instead of counting")
	explain := flag.Bool("explain", false, "show the cost-model decision")
	showPlan := flag.Bool("plan", false, "show the physical operator tree")
	stats := flag.Bool("stats", true, "show the physical cost report")
	trace := flag.Int("trace", 0, "print the first N I/O trace events")
	flag.Parse()

	if *query == "" {
		fail("missing -q")
	}
	strat, err := pathdb.ParseStrategy(*strategy)
	if err != nil {
		fail("%v", err)
	}
	predEval, err := pathdb.ParsePredEval(*preds)
	if err != nil {
		fail("%v", err)
	}
	layout, ok := map[string]pathdb.Layout{
		"natural": pathdb.Natural, "contiguous": pathdb.Contiguous, "shuffled": pathdb.Shuffled,
	}[*layoutName]
	if !ok {
		fail("unknown -layout %q", *layoutName)
	}

	opts := pathdb.Options{Layout: layout, LayoutSeed: *seed, BufferPages: *buffer}
	var db *pathdb.DB
	switch {
	case *xmlFile != "":
		data, rerr := os.ReadFile(*xmlFile)
		if rerr != nil {
			fail("%v", rerr)
		}
		db, err = pathdb.LoadXML(data, opts)
	case *xmarkSF > 0:
		db, err = pathdb.GenerateXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts)
	default:
		fail("need -xml or -xmark")
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("document: %d pages\n", db.Pages())

	// The whole query configuration travels in one QueryOptions — the same
	// struct Session.Do, Session.Stream, QueryCtx and the /v1 API take.
	qopts := pathdb.QueryOptions{
		Strategy: strat,
		Sorted:   *sorted,
		Limit:    *limit,
		Timeout:  time.Duration(*timeoutMS) * time.Millisecond,
		PredEval: predEval,
	}

	if *explain || *showPlan {
		q, qerr := db.Query(*query)
		if qerr != nil {
			fail("%v", qerr)
		}
		if *explain {
			c := q.Choice()
			fmt.Println("cost model:", q.Explain())
			fmt.Printf("  chosen:   %s\n", c.Strategy)
			fmt.Printf("  coverage: %.1f%% (~%d of %d pages touched)\n",
				100*c.Coverage, c.PagesTouched, db.Pages())
			fmt.Printf("  estimate: xschedule=%v xscan=%v simple=%v\n",
				c.ScheduleCost, c.ScanCost, c.SimpleCost)
			for _, p := range c.Preds {
				fmt.Printf("  preds:    step %d → %s (C=%d: nested=%v join=%v, joinable=%v)\n",
					p.Step, c.PredEval, p.Candidates, p.NestedCost, p.JoinCost, p.Joinable)
			}
		}
		if *showPlan {
			fmt.Print(q.WithStrategy(strat).Plan())
		}
	}

	db.ResetStats()
	if *trace > 0 {
		db.SetIOTrace(true)
	}
	if *print {
		// Streamed delivery: nodes print as the cursor produces them, and
		// -limit stops evaluation instead of trimming a buffered result.
		cur, cerr := db.QueryStream(context.Background(), *query, qopts)
		if cerr != nil {
			fail("%v", cerr)
		}
		n := 0
		for cur.Next() {
			fmt.Println(cur.Node().XML())
			n++
		}
		cur.Close()
		if cerr := cur.Err(); cerr != nil {
			fail("%v", cerr)
		}
		fmt.Printf("-- %d results (%s)\n", n, strat)
	} else {
		res, qerr := db.QueryCtx(context.Background(), *query, qopts)
		if qerr != nil {
			fail("%v", qerr)
		}
		fmt.Printf("count(%s) = %d  [%s]\n", *query, res.Count(), strat)
	}
	if *stats {
		fmt.Println("cost:", db.CostReport())
	}
	if *trace > 0 {
		events := db.IOTrace()
		fmt.Printf("I/O trace (%d events, showing %d):\n", len(events), min(*trace, len(events)))
		for i, ev := range events {
			if i >= *trace {
				break
			}
			fmt.Printf("  %-10s page %-6d at %v\n", ev.Op, ev.Page, ev.At)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xpathq: "+format+"\n", args...)
	os.Exit(1)
}
