// Package txn makes mixed read/write traffic on one volume safe and
// durable: snapshot reads over immutable version maps, copy-on-write
// staging for writers, and a group-commit redo log.
//
// Reads. Every query pins the version that is current at admission
// (Manager.Snapshot) and resolves pages through it for its whole run;
// writers never touch a page any pinned version can see, so readers are
// never torn, locked, or retried. Superseded physical pages are reclaimed
// once the last snapshot that could see them drains (and the commit that
// superseded them is durable), then recycled as copy targets.
//
// Writes. Update runs the caller's function under the staging lock —
// writers are serialized, the classic single-writer/many-readers MVCC
// shape — staging mutations against a private WriteTxn. At commit the
// write set is relocated to copy-on-write targets, the successor version
// is published (readers admitted from now on see it), and the commit
// enters the group pipeline.
//
// Group commit. The pipeline batches concurrent commits into one log
// chain whose final page write is the single fsync-equivalent for every
// member; all members are acked together when it lands. There is no
// flusher goroutine: the first committer to reach the pipeline becomes
// the *leader*, waits one batching window for stragglers while they
// stage behind it, flushes the whole group, and acks everyone — so the
// package never leaks goroutines and needs no Close for correctness.
// With a single sequential writer every group has one member (mean
// flushes per commit = 1); with two or more concurrent writers groups
// grow and the mean drops below one, which /metrics and BENCH_xload
// report.
//
// Durability semantics are group-commit standard: a commit is visible to
// new snapshots as soon as it is published (possibly before it is
// durable) and guaranteed to survive a crash only once its group's ack
// was issued with no write yet dropped by the fault plane. Recovery
// (storage.Open) replays whole groups in order, so the durable prefix is
// always transaction-consistent.
package txn

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// ErrClosed is returned by Update after Close.
var ErrClosed = errors.New("txn: manager closed")

// Options configures a Manager.
type Options struct {
	// GroupWindow is how long a commit leader waits for concurrent
	// committers to join its group before flushing (wall clock; the
	// virtual cost of the flush itself is the log chain's page writes).
	// Every commit pays at most one window of ack latency; in exchange
	// commits arriving within a window share one flush. Default 500µs;
	// negative disables batching (flush immediately, groups of one).
	GroupWindow time.Duration
	// CheckpointEvery folds the version map into a fresh checkpoint after
	// this many groups, bounding recovery's redo scan and recycling log
	// pages. Default 64.
	CheckpointEvery int
}

func (o Options) withDefaults() Options {
	if o.GroupWindow == 0 {
		o.GroupWindow = 500 * time.Microsecond
	}
	if o.GroupWindow < 0 {
		o.GroupWindow = 0
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	return o
}

// Metrics is a point-in-time snapshot of the manager's counters.
type Metrics struct {
	Commits  uint64 // committed transactions (acked durable-at-issue groups included)
	Aborts   uint64 // rolled-back transactions (caller error or staging failure)
	Groups   uint64 // commit groups flushed
	Flushes  uint64 // log pages written (fsync-equivalents); ≤ one per group chain page
	MaxGroup uint64 // largest group size seen
	Epoch    uint64 // latest published epoch
	Pinned   int    // live snapshots
	FreePage int    // reclaimable physical pages on the free list
}

// FlushesPerCommit is the group-commit batching figure of merit: < 1 means
// commits genuinely shared flushes.
func (m Metrics) FlushesPerCommit() float64 {
	if m.Commits == 0 {
		return 0
	}
	return float64(m.Flushes) / float64(m.Commits)
}

// commitReq is one member of a commit group.
type commitReq struct {
	epoch  uint64
	deltas map[vdisk.PageID]vdisk.PageID
	fresh  []vdisk.PageID
	freed  []vdisk.PageID
	done   chan struct{}
}

type pendingFree struct {
	epoch uint64 // commit that superseded these pages
	pages []vdisk.PageID
}

// Manager owns the transactional state of one volume.
type Manager struct {
	st   *storage.Store
	opts Options

	// staging serializes writers: held from Update entry through version
	// publication. Also guards epoch, free, reclaim, logPages.
	staging  sync.Mutex
	epoch    uint64
	free     []vdisk.PageID // reclaimed, safe-to-reuse physical pages
	reclaim  []pendingFree  // superseded pages awaiting durability + snapshot drain
	logPages []vdisk.PageID // group-chain pages since the last checkpoint

	cur atomic.Pointer[storage.VersionMap] // latest published version

	// pins tracks live snapshots per epoch.
	pinMu sync.Mutex
	pins  map[uint64]int

	// The commit pipeline: pending members and the leader gate.
	qmu     sync.Mutex
	pending []*commitReq
	flushMu sync.Mutex
	logHead vdisk.PageID
	groups  int // since last checkpoint

	closed  atomic.Bool
	durable atomic.Uint64 // highest epoch whose group flush was issued

	commits  atomic.Uint64
	aborts   atomic.Uint64
	groupsN  atomic.Uint64
	flushes  atomic.Uint64
	maxGroup atomic.Uint64
}

// NewManager adopts the store into transactional mode (persisting the
// initial checkpoint if the volume has none) and returns its manager.
// There must be at most one Manager per volume.
func NewManager(st *storage.Store, opts Options) (*Manager, error) {
	state, err := st.InitTxn()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		st:      st,
		opts:    opts.withDefaults(),
		epoch:   state.Epoch,
		free:    append([]vdisk.PageID(nil), state.Free...),
		logHead: state.LogHead,
		pins:    map[uint64]int{},
	}
	m.durable.Store(state.Epoch)
	m.cur.Store(st.CurrentVersion())
	return m, nil
}

// Close rejects future Updates and waits for in-flight ones to drain.
// Reads (snapshots) keep working.
func (m *Manager) Close() {
	m.closed.Store(true)
	m.staging.Lock() // wait out the staging writer…
	m.staging.Unlock()
	m.flushMu.Lock() // …and the flush leader
	m.flushMu.Unlock()
}

// Snap is one pinned snapshot. Release it when the query drains.
type Snap struct {
	m        *Manager
	vm       *storage.VersionMap
	released atomic.Bool
}

// Snapshot pins the current version for a reader.
func (m *Manager) Snapshot() *Snap {
	m.pinMu.Lock()
	vm := m.cur.Load()
	m.pins[vm.Epoch()]++
	m.pinMu.Unlock()
	return &Snap{m: m, vm: vm}
}

// Epoch returns the snapshot's version epoch.
func (s *Snap) Epoch() uint64 { return s.vm.Epoch() }

// View returns a store view pinned to this snapshot, charging to led.
func (s *Snap) View(led *stats.Ledger) *storage.Store {
	return s.m.st.WithSnapshot(s.vm, led)
}

// Release unpins the snapshot (idempotent), allowing page versions it
// kept alive to be reclaimed.
func (s *Snap) Release() {
	if s.released.Swap(true) {
		return
	}
	s.m.pinMu.Lock()
	e := s.vm.Epoch()
	if n := s.m.pins[e]; n > 1 {
		s.m.pins[e] = n - 1
	} else {
		delete(s.m.pins, e)
	}
	s.m.pinMu.Unlock()
}

// minPinned returns the lowest pinned epoch, or ^0 when nothing is pinned.
func (m *Manager) minPinned() uint64 {
	m.pinMu.Lock()
	defer m.pinMu.Unlock()
	min := ^uint64(0)
	for e := range m.pins {
		if e < min {
			min = e
		}
	}
	return min
}

// Tx is one write transaction, valid inside an Update callback.
type Tx struct {
	wt  *storage.WriteTxn
	led *stats.Ledger
}

// InsertSubtree stages an insert of frag as a child of parent (before
// `before`, or appended when before == storage.InvalidNodeID). The
// returned NodeID is logical, hence stable across the commit. Semantics
// match storage.Store.InsertSubtree.
func (t *Tx) InsertSubtree(parent, before storage.NodeID, frag *xmltree.Node) (storage.NodeID, error) {
	return t.wt.InsertSubtree(parent, before, frag)
}

// DeleteSubtree stages a delete; see storage.Store.DeleteSubtree.
func (t *Tx) DeleteSubtree(id storage.NodeID) error {
	return t.wt.DeleteSubtree(id)
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.pinMu.Lock()
	pinned := 0
	for _, n := range m.pins {
		pinned += n
	}
	m.pinMu.Unlock()
	m.staging.Lock()
	freeN := len(m.free)
	m.staging.Unlock()
	return Metrics{
		Commits:  m.commits.Load(),
		Aborts:   m.aborts.Load(),
		Groups:   m.groupsN.Load(),
		Flushes:  m.flushes.Load(),
		MaxGroup: m.maxGroup.Load(),
		Epoch:    m.cur.Load().Epoch(),
		Pinned:   pinned,
		FreePage: freeN,
	}
}

// Update runs fn inside a write transaction and commits its staged
// mutations; any error aborts with the volume untouched. The commit is
// acknowledged when its group's log chain has been written (see the
// package comment for what that guarantees under an armed crash fault).
func (m *Manager) Update(fn func(*Tx) error) error {
	_, err := m.UpdateEpoch(fn)
	return err
}

// UpdateEpoch is Update, but additionally returns the publish epoch of
// the committed version — the exact epoch this transaction's mutations
// became visible at, assigned under the staging lock so concurrent
// commits can attribute epochs unambiguously. A transaction that staged
// nothing returns the epoch it read (no version was published).
func (m *Manager) UpdateEpoch(fn func(*Tx) error) (uint64, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	led := stats.NewLedger()

	m.staging.Lock()
	if m.closed.Load() {
		m.staging.Unlock()
		return 0, ErrClosed
	}
	base := m.cur.Load()
	tx := &Tx{wt: m.st.BeginWrite(base, led), led: led}
	if err := fn(tx); err != nil {
		m.abortLocked(tx)
		m.staging.Unlock()
		m.st.Ledger().Merge(led.Snapshot())
		return 0, err
	}
	ws, err := tx.wt.WriteSet()
	if err != nil {
		m.abortLocked(tx)
		m.staging.Unlock()
		m.st.Ledger().Merge(led.Snapshot())
		return 0, err
	}
	if len(ws.Images) == 0 { // read-only transaction
		m.staging.Unlock()
		m.st.Ledger().Merge(led.Snapshot())
		return base.Epoch(), nil
	}

	// Publish and enqueue before releasing the staging lock: the pending
	// queue must stay in epoch order so every flushed group is a
	// contiguous epoch range — that is what makes the durable log a
	// transaction-consistent prefix of commit order.
	req := m.stageCommitLocked(base, ws)
	m.qmu.Lock()
	m.pending = append(m.pending, req)
	m.qmu.Unlock()
	m.staging.Unlock()
	m.st.Ledger().Merge(led.Snapshot())

	m.flush(req)
	m.commits.Add(1)
	return req.epoch, nil
}

// abortLocked recycles the pages an aborted staging allocated. Caller
// holds m.staging.
func (m *Manager) abortLocked(tx *Tx) {
	m.free = append(m.free, tx.wt.FreshPages()...)
	m.aborts.Add(1)
}

// stageCommitLocked relocates the write set to copy-on-write targets,
// publishes the successor version, and builds the group-pipeline request.
// Caller holds m.staging.
func (m *Manager) stageCommitLocked(base *storage.VersionMap, ws storage.WriteSet) *commitReq {
	isFresh := make(map[vdisk.PageID]bool, len(ws.Fresh))
	for _, p := range ws.Fresh {
		isFresh[p] = true
	}
	logicals := make([]vdisk.PageID, 0, len(ws.Images))
	for p := range ws.Images {
		logicals = append(logicals, p)
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })

	deltas := map[vdisk.PageID]vdisk.PageID{}
	var freed []vdisk.PageID
	for _, l := range logicals {
		if isFresh[l] {
			// Fresh logical pages live at their identity location; no
			// version can see them yet, so writing in place is safe.
			m.st.WriteData(l, ws.Images[l])
			continue
		}
		phys := m.allocPhysLocked()
		m.st.WriteData(phys, ws.Images[l])
		freed = append(freed, base.Resolve(l))
		deltas[l] = phys
	}

	m.epoch++
	next := base.Apply(m.epoch, deltas, ws.Fresh)
	m.cur.Store(next)
	m.st.PublishVersion(next)
	// Register the committed clusters' synopses at the new epoch so
	// cluster-skip and chooser refresh stay current without a rebuild.
	m.st.RefreshSynopses(m.epoch, ws.Images)

	return &commitReq{
		epoch:  m.epoch,
		deltas: deltas,
		fresh:  ws.Fresh,
		freed:  freed,
		done:   make(chan struct{}),
	}
}

// allocPhysLocked returns an unreferenced physical page: a reclaimed one
// if available, else a fresh allocation. Caller holds m.staging.
func (m *Manager) allocPhysLocked() vdisk.PageID {
	m.drainReclaimLocked()
	for i := len(m.free) - 1; i >= 0; i-- {
		p := m.free[i]
		// Evict any stale frame/image of the superseded version before
		// the slot is rewritten; keep the page for a later pass if a
		// lagging reader still pins the frame.
		if m.st.DropVersion(p) {
			m.free = append(m.free[:i], m.free[i+1:]...)
			return p
		}
	}
	return m.st.Disk().Alloc()
}

// logAlloc grants a page for a log chain. Recycled pages are zeroed before
// return so they read back as invalid until the chain write lands — the
// contract storage.PageAlloc demands (a stale record on a preallocated
// head would derail recovery). Takes m.staging; called by the flush leader
// (flushMu → staging is the one nesting order in this package).
func (m *Manager) logAlloc() vdisk.PageID {
	m.staging.Lock()
	defer m.staging.Unlock()
	m.drainReclaimLocked()
	for i := len(m.free) - 1; i >= 0; i-- {
		p := m.free[i]
		if m.st.DropVersion(p) {
			m.free = append(m.free[:i], m.free[i+1:]...)
			m.st.ZeroPage(p)
			return p
		}
	}
	return m.st.Disk().Alloc()
}

// drainReclaimLocked moves superseded pages to the free list once their
// superseding commit is durable and no snapshot old enough to see them
// remains. Caller holds m.staging.
func (m *Manager) drainReclaimLocked() {
	if len(m.reclaim) == 0 {
		return
	}
	durable := m.durable.Load()
	minPin := m.minPinned()
	keep := m.reclaim[:0]
	for _, pf := range m.reclaim {
		if pf.epoch <= durable && pf.epoch <= minPin {
			m.free = append(m.free, pf.pages...)
		} else {
			keep = append(keep, pf)
		}
	}
	m.reclaim = keep
}

// flush drives req (already enqueued) through the group pipeline: either
// be absorbed into a concurrent leader's group or become the leader.
func (m *Manager) flush(req *commitReq) {
	m.flushMu.Lock()
	select {
	case <-req.done:
		// A previous leader flushed us while we waited for the gate.
		m.flushMu.Unlock()
		return
	default:
	}
	// Leader: wait one batching window so concurrent committers can stage
	// and join the group. The wait is unconditional (a group-commit
	// timer): on a busy system it is what creates the pile-up — on a
	// single-core box concurrent writers only get scheduled while the
	// leader blocks, so gating the wait on observed concurrency would
	// never batch exactly when batching matters.
	if m.opts.GroupWindow > 0 {
		time.Sleep(m.opts.GroupWindow)
	}
	m.qmu.Lock()
	batch := m.pending
	m.pending = nil
	m.qmu.Unlock()
	if len(batch) == 0 {
		m.flushMu.Unlock()
		return
	}

	g := foldGroup(batch)
	used, next := m.st.AppendGroup(m.logHead, g, m.logAlloc)
	m.flushes.Add(uint64(len(used)))
	m.groupsN.Add(1)
	if n := uint64(len(batch)); n > m.maxGroup.Load() {
		m.maxGroup.Store(n)
	}
	m.durable.Store(g.Epoch)

	m.staging.Lock()
	m.logHead = next
	m.logPages = append(m.logPages, used...)
	for _, r := range batch {
		if len(r.freed) > 0 {
			m.reclaim = append(m.reclaim, pendingFree{epoch: r.epoch, pages: r.freed})
		}
	}
	m.groups++
	ckpt := m.groups >= m.opts.CheckpointEvery
	m.staging.Unlock()

	if ckpt {
		m.checkpoint()
	}

	for _, r := range batch {
		close(r.done)
	}
	m.flushMu.Unlock()
}

// foldGroup merges a batch (ascending epochs) into one group record:
// newest relocation per logical page wins, freed and fresh sets union.
func foldGroup(batch []*commitReq) storage.GroupRecord {
	g := storage.GroupRecord{Commits: uint32(len(batch))}
	folded := map[vdisk.PageID]vdisk.PageID{}
	for _, r := range batch {
		for l, p := range r.deltas {
			folded[l] = p
		}
		g.Fresh = append(g.Fresh, r.fresh...)
		g.Freed = append(g.Freed, r.freed...)
		if r.epoch > g.Epoch {
			g.Epoch = r.epoch
		}
	}
	logicals := make([]vdisk.PageID, 0, len(folded))
	for l := range folded {
		logicals = append(logicals, l)
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
	for _, l := range logicals {
		g.Deltas = append(g.Deltas, storage.MapDelta{Logical: l, Physical: folded[l]})
	}
	return g
}

// checkpoint folds the durable state into a fresh checkpoint chain and
// recycles the consumed log pages. Called by the flush leader (holding
// flushMu), so the durable version equals the published one.
func (m *Manager) checkpoint() {
	m.staging.Lock()
	vm := m.cur.Load()
	m.drainReclaimLocked()
	st := storage.TxnState{
		Epoch:  vm.Epoch(),
		Map:    vm.Entries(),
		Extras: append([]vdisk.PageID(nil), vm.Extras()...),
		Free:   append([]vdisk.PageID(nil), m.free...),
	}
	oldLog := m.logPages
	oldHead := m.logHead
	m.staging.Unlock()

	freedCkpt, next, err := m.st.WriteCheckpoint(st, m.logAlloc)
	if err != nil {
		return // meta unreadable mid-crash; recovery will redo the log
	}

	m.staging.Lock()
	m.logHead = next
	m.logPages = nil
	m.groups = 0
	// Old checkpoint pages, consumed log pages, and the orphaned
	// preallocated head are free as soon as the new meta write is issued:
	// if that write was dropped (crash), every later reuse write is
	// dropped with it, so the old chain survives intact for recovery.
	m.free = append(m.free, freedCkpt...)
	m.free = append(m.free, oldLog...)
	m.free = append(m.free, oldHead)
	m.staging.Unlock()
}
