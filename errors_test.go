package pathdb

import (
	"context"
	"errors"
	"testing"
)

func TestErrorKindRoundTrip(t *testing.T) {
	kinds := []ErrorKind{KindUnknown, KindTimeout, KindOverloaded, KindClosed, KindIO, KindCorrupt, KindCanceled}
	for _, k := range kinds {
		if got := ParseErrorKind(k.String()); got != k {
			t.Errorf("ParseErrorKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if ParseErrorKind("no-such-kind") != KindUnknown {
		t.Error("unknown names must parse as KindUnknown")
	}
}

func TestErrorTaxonomyMatching(t *testing.T) {
	cases := []struct {
		kind     ErrorKind
		sentinel error
	}{
		{KindTimeout, ErrTimeout},
		{KindOverloaded, ErrOverloaded},
		{KindClosed, ErrClosed},
		{KindIO, ErrIO},
		{KindCorrupt, ErrCorrupt},
		{KindCanceled, ErrCanceled},
	}
	for _, c := range cases {
		err := &Error{Kind: c.kind, Op: "query", Path: "/a", Err: errors.New("cause")}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("kind %v does not match its sentinel", c.kind)
		}
		for _, other := range cases {
			if other.kind != c.kind && errors.Is(err, other.sentinel) {
				t.Errorf("kind %v wrongly matches sentinel of %v", c.kind, other.kind)
			}
		}
		if KindOf(err) != c.kind {
			t.Errorf("KindOf = %v, want %v", KindOf(err), c.kind)
		}
		var pe *Error
		if !errors.As(err, &pe) || pe.Path != "/a" {
			t.Errorf("errors.As lost the typed error for kind %v", c.kind)
		}
	}
	if KindOf(errors.New("plain")) != KindUnknown || KindOf(nil) != KindUnknown {
		t.Error("KindOf of non-taxonomy errors must be KindUnknown")
	}
}

func TestWrapErrClassification(t *testing.T) {
	deadline := wrapErr("query", "/a", context.DeadlineExceeded)
	if KindOf(deadline) != KindTimeout || !errors.Is(deadline, context.DeadlineExceeded) {
		t.Errorf("deadline wrap: kind=%v, Is(DeadlineExceeded)=%v", KindOf(deadline), errors.Is(deadline, context.DeadlineExceeded))
	}
	if !errors.Is(deadline, ErrTimeout) {
		t.Error("deadline wrap must match the ErrTimeout sentinel")
	}
	canceled := wrapErr("query", "/a", context.Canceled)
	if KindOf(canceled) != KindCanceled {
		t.Errorf("canceled wrap: kind=%v", KindOf(canceled))
	}
	if wrapErr("query", "/a", nil) != nil {
		t.Error("wrapErr(nil) must be nil")
	}
	// Idempotent: an already-typed error passes through.
	if inner := wrapErr("submit", "/a", deadline); inner != deadline {
		t.Error("wrapErr must not double-wrap taxonomy errors")
	}
}

func TestQueryCtxMatchesQuery(t *testing.T) {
	db := mustLoad(t, `<a><b><c/></b><b/><d><b/></d></a>`)
	for _, path := range []string{"/a/b", "/a//b", "/a/b | /a/d/b"} {
		q, err := db.Query(path)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Count()
		res, err := db.QueryCtx(context.Background(), path, QueryOptions{Sorted: true})
		if err != nil {
			t.Fatalf("QueryCtx(%q): %v", path, err)
		}
		if res.Count() != want {
			t.Errorf("QueryCtx(%q) = %d nodes, want %d", path, res.Count(), want)
		}
	}
	if _, err := db.QueryCtx(context.Background(), "b/c", QueryOptions{}); err == nil {
		t.Error("relative path must be rejected")
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	db := mustLoad(t, `<a><b/><b/></a>`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryCtx(ctx, "/a/b", QueryOptions{})
	if KindOf(err) != KindCanceled {
		t.Fatalf("cancelled QueryCtx: err=%v kind=%v, want canceled", err, KindOf(err))
	}
}

func TestQueryCtxFaultsReturnTypedErrors(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.1, Seed: 7, EntityScale: 0.1},
		Options{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.QueryCtx(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()

	// Persistent I/O failure: typed KindIO.
	db.SetFaults(FaultConfig{Seed: 1, ReadError: 1})
	_, err = db.QueryCtx(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	if !errors.Is(err, ErrIO) {
		t.Fatalf("under ReadError=1: err=%v, want ErrIO match", err)
	}

	// Moderate transient faults: retries recover the exact answer.
	db.SetFaults(FaultConfig{Seed: 2, ReadError: 0.1, Corrupt: 0.05})
	db.ResetStats()
	res, err := db.QueryCtx(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	if err != nil {
		if KindOf(err) != KindIO && KindOf(err) != KindCorrupt {
			t.Fatalf("fault sweep err=%v kind=%v, want io/corrupt", err, KindOf(err))
		}
	} else if res.Count() != ref.Count() {
		t.Fatalf("faulty run returned %d nodes, fault-free %d", res.Count(), ref.Count())
	}

	db.SetFaults(FaultConfig{})
	db.ResetStats()
	res, err = db.QueryCtx(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	if err != nil || res.Count() != ref.Count() {
		t.Fatalf("after disarm: err=%v count=%d want %d", err, res.Count(), ref.Count())
	}
}

const itemPath = "/site/regions//item"

func TestSessionFaultReturnsTypedError(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.1, Seed: 7, EntityScale: 0.1},
		Options{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	db.ResetStats()
	db.SetFaults(FaultConfig{Seed: 3, ReadError: 1})
	_, err = eng.NewSession().Do(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	db.SetFaults(FaultConfig{})
	if !errors.Is(err, ErrIO) {
		t.Fatalf("session query under ReadError=1: err=%v, want ErrIO", err)
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Path != itemPath || pe.Kind != KindIO {
		t.Fatalf("typed error missing op/path context: %+v", err)
	}
	if m := eng.Metrics(); m.Faulted != 1 {
		t.Fatalf("EngineMetrics.Faulted = %d, want 1", m.Faulted)
	}
}
