package pathdb

import (
	"context"
	"hash/fnv"
	"sort"
	"testing"
)

// splitTestPlace is a deterministic stand-in for the consistent-hash ring
// (internal/shard cannot be imported here without a cycle).
func splitTestPlace(n int) func(string) int {
	return func(key string) int {
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return int(h.Sum32()) % n
	}
}

func splitTestSet(t *testing.T, n int) *ShardSet {
	t.Helper()
	set, err := GenerateXMarkSharded(
		XMarkConfig{ScaleFactor: 0.25, Seed: 42, EntityScale: 0.1},
		Options{Layout: Shuffled, LayoutSeed: 42, BufferPages: 256},
		n, splitTestPlace(n))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func countOn(t *testing.T, db *DB, path string) int {
	t.Helper()
	res, err := db.QueryCtx(context.Background(), path, QueryOptions{})
	if err != nil {
		t.Fatalf("query %q: %v", path, err)
	}
	return res.Count()
}

// The split model's arithmetic: every path's cluster-wide count is the sum
// of the per-shard counts minus (n-1) times the spine count, because spine
// matches are replicated on every shard and entity matches on exactly one.
// That must reproduce the single-volume count for the same corpus.
func TestShardSplitCountInvariant(t *testing.T) {
	single, err := GenerateXMark(
		XMarkConfig{ScaleFactor: 0.25, Seed: 42, EntityScale: 0.1},
		Options{Layout: Shuffled, LayoutSeed: 42, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	set := splitTestSet(t, 4)
	if set.Spine == nil {
		t.Fatal("4-shard set has no spine volume")
	}
	paths := []string{
		"/site/regions//item",
		"/site//description",
		"/site//annotation",
		"/site/people/person/name",
		"/site/regions",
		"/site",
	}
	for _, path := range paths {
		want := countOn(t, single, path)
		spine := countOn(t, set.Spine, path)
		sum := 0
		for _, db := range set.Shards {
			sum += countOn(t, db, path)
		}
		got := sum - (len(set.Shards)-1)*spine
		if got != want {
			t.Errorf("%q: shards sum %d, spine %d -> merged %d, single volume %d",
				path, sum, spine, got, want)
		}
	}
}

// A spine node must carry the identical order key on every shard and on
// the spine volume — the invariant that lets a scatter-gather merge count
// replicated matches exactly once by key.
func TestShardSplitSpineOrdIdentity(t *testing.T) {
	set := splitTestSet(t, 4)
	for _, path := range []string{"/site/regions", "/site/regions/africa", "/site/people"} {
		ordsOf := func(db *DB) []string {
			res, err := db.QueryCtx(context.Background(), path, QueryOptions{})
			if err != nil {
				t.Fatalf("query %q: %v", path, err)
			}
			out := make([]string, len(res.Nodes))
			for i, n := range res.Nodes {
				out[i] = n.OrdPath()
			}
			sort.Strings(out)
			return out
		}
		want := ordsOf(set.Spine)
		if len(want) == 0 {
			t.Fatalf("%q matches nothing on the spine volume", path)
		}
		for s, db := range set.Shards {
			got := ordsOf(db)
			if len(got) != len(want) {
				t.Fatalf("%q: shard %d has %d matches, spine %d", path, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%q: shard %d order key %s, spine %s — replicas diverge",
						path, s, got[i], want[i])
				}
			}
		}
	}
}

// CompareDocOrder must order nodes across the volumes of one set
// consistently: antisymmetric, zero exactly for replicated spine nodes,
// and usable as a sort key for a cross-shard merge.
func TestCompareDocOrderAcrossShards(t *testing.T) {
	set := splitTestSet(t, 2)
	ctx := context.Background()

	spineA, err := set.Shards[0].QueryCtx(ctx, "/site/regions", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spineB, err := set.Shards[1].QueryCtx(ctx, "/site/regions", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spineA.Nodes) != 1 || len(spineB.Nodes) != 1 {
		t.Fatalf("/site/regions resolves to %d/%d nodes, want 1/1", len(spineA.Nodes), len(spineB.Nodes))
	}
	if d := CompareDocOrder(spineA.Nodes[0], spineB.Nodes[0]); d != 0 {
		t.Fatalf("replicated spine node compares %d across shards, want 0", d)
	}

	itemsA, err := set.Shards[0].QueryCtx(ctx, "/site/regions//item", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	itemsB, err := set.Shards[1].QueryCtx(ctx, "/site/regions//item", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged := append(append([]Node{}, itemsA.Nodes...), itemsB.Nodes...)
	if len(merged) == 0 {
		t.Fatal("no items to merge")
	}
	for _, a := range merged[:min(len(merged), 50)] {
		for _, b := range merged[:min(len(merged), 50)] {
			if CompareDocOrder(a, b) != -CompareDocOrder(b, a) {
				t.Fatalf("CompareDocOrder not antisymmetric for %s vs %s", a.OrdPath(), b.OrdPath())
			}
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return CompareDocOrder(merged[i], merged[j]) < 0 })
	for i := 1; i < len(merged); i++ {
		if CompareDocOrder(merged[i-1], merged[i]) > 0 {
			t.Fatalf("merged slice not sorted at %d", i)
		}
	}
}
