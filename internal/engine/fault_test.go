package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathdb/internal/core"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// TestFaultSweep is the fault-isolation acceptance test: concurrent
// queries run against a disk injecting seeded transient read errors and
// torn page images at increasing rates. Every query must either return
// exactly the fault-free node count or fail with the typed
// *storage.PageError — no panics, no wrong answers — and a faulting
// member must not take its gang down with it. Meant to run under -race.
func TestFaultSweep(t *testing.T) {
	st, dict := testStore(t)
	paths := []string{srcQ6, srcQ7a, srcQ7b, srcQ7c, srcQ15}

	// Fault-free ground truth per path.
	want := map[string]int{}
	for _, src := range paths {
		st.ResetForRun()
		rs := core.BuildPlan(st, parsePath(t, dict, src), st.Roots(), core.StrategySchedule, core.PlanOptions{}).Run()
		want[src] = len(rs)
	}

	for _, rate := range []float64{0.01, 0.05, 0.20} {
		t.Run(fmt.Sprintf("rate=%g", rate), func(t *testing.T) {
			st.ResetForRun()
			st.Disk().SetFaults(vdisk.Faults{
				Seed:      uint64(rate * 1000),
				ReadError: rate,
				Corrupt:   rate / 2,
				Latency:   rate,
			})
			defer func() {
				st.Disk().SetFaults(vdisk.Faults{})
				st.ResetForRun()
			}()

			goroutines := runtime.NumGoroutine()
			e := New(st, Config{MaxInFlight: 4, QueueDepth: 32})

			const workers = 6
			type outcome struct {
				src   string
				count int
				err   error
			}
			results := make(chan outcome, workers*2*len(paths))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := e.NewSession()
					for i := 0; i < 2*len(paths); i++ {
						src := paths[(i+w)%len(paths)]
						res, err := s.Do(context.Background(), Query{
							Label:    src,
							Path:     parsePath(t, dict, src),
							Strategy: core.StrategySchedule,
						})
						results <- outcome{src: src, count: res.Count(), err: err}
					}
				}(w)
			}
			wg.Wait()
			close(results)

			total, failed := 0, 0
			for o := range results {
				total++
				if o.err != nil {
					failed++
					var pe *storage.PageError
					if !errors.As(o.err, &pe) {
						t.Fatalf("query %q failed with untyped error %T: %v", o.src, o.err, o.err)
					}
					if pe.Kind != storage.PageIO && pe.Kind != storage.PageCorrupt {
						t.Fatalf("query %q: unexpected kind %v", o.src, pe.Kind)
					}
					continue
				}
				if o.count != want[o.src] {
					t.Errorf("query %q: %d results, want %d (silent wrong answer)", o.src, o.count, want[o.src])
				}
			}
			if m := e.Metrics(); m.Faulted != int64(failed) {
				t.Errorf("Metrics.Faulted = %d, but %d queries returned page errors", m.Faulted, failed)
			}
			led := st.Ledger()
			if led.ReadFaults == 0 || led.LatencySpikes == 0 {
				t.Errorf("fault counters flat: faults=%d spikes=%d", led.ReadFaults, led.LatencySpikes)
			}
			if rate >= 0.05 && led.ReadRetries == 0 {
				t.Errorf("no retries recorded at rate %g", rate)
			}
			t.Logf("rate=%g: %d/%d queries failed typed, retries=%d checksum_fails=%d",
				rate, failed, total, led.ReadRetries, led.ChecksumFails)

			e.Close()
			// Goroutine-leak check: everything the engine and its queries
			// spawned must wind down after Close.
			deadline := time.Now().Add(3 * time.Second)
			for runtime.NumGoroutine() > goroutines && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > goroutines {
				t.Errorf("goroutine leak: %d before, %d after drain", goroutines, g)
			}
		})
	}
}

// TestStepIterLeakUnderFaults audits StepIter.Release on the typed-panic
// unwind path: every navigation iterator checked out of the pool must be
// returned even when a page fault aborts the operator chain mid-step.
// Runs each strategy against a disk injecting a high fault rate and
// asserts the live-iterator counter returns to its starting level once
// all queries — successful and faulted — have finished.
func TestStepIterLeakUnderFaults(t *testing.T) {
	st, dict := testStore(t)
	paths := []string{srcQ6, srcQ7a, srcQ7b, srcQ7c, srcQ15}

	for _, strat := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
		t.Run(strat.String(), func(t *testing.T) {
			st.ResetForRun()
			st.Disk().SetFaults(vdisk.Faults{
				Seed:      42,
				ReadError: 0.15,
				Corrupt:   0.10,
			})
			defer func() {
				st.Disk().SetFaults(vdisk.Faults{})
				st.ResetForRun()
			}()

			base := storage.LiveStepIters()
			e := New(st, Config{MaxInFlight: 4, QueueDepth: 32})

			const workers = 4
			var wg sync.WaitGroup
			var faulted atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := e.NewSession()
					for i := 0; i < 3*len(paths); i++ {
						src := paths[(i+w)%len(paths)]
						_, err := s.Do(context.Background(), Query{
							Label:    src,
							Path:     parsePath(t, dict, src),
							Strategy: strat,
						})
						if err != nil {
							faulted.Add(1)
							var pe *storage.PageError
							if !errors.As(err, &pe) {
								t.Errorf("query %q: untyped error %T: %v", src, err, err)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			e.Close()

			if live := storage.LiveStepIters(); live != base {
				t.Errorf("StepIter leak: %d live before, %d after (%d queries faulted)",
					base, live, faulted.Load())
			}
			if faulted.Load() == 0 {
				t.Logf("warning: no queries faulted at this rate; unwind path not exercised")
			}
		})
	}
}

// pagesRead runs src once on a cold store and returns the set of pages
// its evaluation read from the device.
func pagesRead(t *testing.T, st *storage.Store, dict *xmltree.Dictionary, src string) map[vdisk.PageID]bool {
	t.Helper()
	st.ResetForRun()
	st.Disk().SetTrace(true)
	core.BuildPlan(st, parsePath(t, dict, src), st.Roots(), core.StrategySchedule, core.PlanOptions{}).Run()
	set := make(map[vdisk.PageID]bool)
	for _, ev := range st.Disk().Trace() {
		set[ev.Page] = true
	}
	st.Disk().SetTrace(false)
	return set
}

// TestFaultIsolationInGang pins the tentpole guarantee directly: a gang
// whose shared scheduler hits a persistently damaged page must fail only
// the queries that need that page; the other members complete with
// correct results.
func TestFaultIsolationInGang(t *testing.T) {
	st, dict := testStore(t)
	st.ResetForRun()
	q15Want := len(core.BuildPlan(st, parsePath(t, dict, srcQ15), st.Roots(), core.StrategySchedule, core.PlanOptions{}).Run())

	// Damage a page Q6 reads but Q15 does not.
	q6Pages := pagesRead(t, st, dict, srcQ6)
	q15Pages := pagesRead(t, st, dict, srcQ15)
	bad := vdisk.InvalidPage
	for p := range q6Pages {
		if !q15Pages[p] {
			bad = p
			break
		}
	}
	if bad == vdisk.InvalidPage {
		t.Fatal("no page separates the Q6 and Q15 working sets")
	}
	// Build the engine (whose chooser scans the whole volume) before
	// damaging the medium.
	e := newStoppedEngine(st, Config{MaxInFlight: 2, QueueDepth: 4, Parallel: 1})
	st.ResetForRun()
	st.Disk().CorruptPage(bad, 3)
	defer func() {
		// Heal the shared volume for later tests: rewrite the damaged
		// page from a fresh import is overkill — corrupt it back and
		// forth is impossible, so re-damage+verify is skipped; instead
		// the page is restored by re-running CorruptPage with the same
		// seed (XOR damage is an involution).
		st.Disk().CorruptPage(bad, 3)
		st.ResetForRun()
	}()

	// One gang with both queries, run deterministically on the stopped
	// engine so they share a scheduler.
	s := e.NewSession()
	p6, err6 := s.TrySubmit(context.Background(), Query{Label: srcQ6, Path: parsePath(t, dict, srcQ6), Strategy: core.StrategySchedule})
	p15, err15 := s.TrySubmit(context.Background(), Query{Label: srcQ15, Path: parsePath(t, dict, srcQ15), Strategy: core.StrategySchedule})
	if err6 != nil || err15 != nil {
		t.Fatalf("submit: %v / %v", err6, err15)
	}
	e.execute(e.gather(<-e.queue))

	_, got6 := p6.Wait(context.Background())
	var pe *storage.PageError
	if !errors.As(got6, &pe) || pe.Kind != storage.PageCorrupt {
		t.Fatalf("Q6 over the damaged page: err = %v, want corrupt *storage.PageError", got6)
	}
	res15, got15 := p15.Wait(context.Background())
	if got15 != nil {
		t.Fatalf("Q15 must survive its gang-mate's fault, got %v", got15)
	}
	if res15.Count() != q15Want {
		t.Fatalf("Q15 count = %d, want %d", res15.Count(), q15Want)
	}
	if e.faulted.Load() != 1 {
		t.Fatalf("faulted counter = %d, want 1", e.faulted.Load())
	}
}
