package xmlparse

import (
	"testing"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
)

// corpus is the seed input set for mutation and fuzz testing.
var corpus = []string{
	`<a/>`,
	`<a><b x="1">text</b><!-- c --><?pi d?></a>`,
	`<?xml version="1.0"?><!DOCTYPE r SYSTEM "x"><r><![CDATA[<raw>]]></r>`,
	`<a t="a&amp;b">x &lt; y &#65; &#x42;</a>`,
	`<日本語 属性="値">混合<b/>内容</日本語>`,
	`<deep><deep><deep><deep><deep>x</deep></deep></deep></deep></deep>`,
}

// TestParserNeverPanicsOnMutations mutates corpus entries aggressively;
// the parser must return (tree, nil) or (nil, error) but never panic, and
// any accepted input must survive a serialize/reparse round trip.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	r := rng.New(0xF422)
	for trial := 0; trial < 4000; trial++ {
		base := []byte(corpus[r.Intn(len(corpus))])
		mut := append([]byte(nil), base...)
		for k, n := 0, r.IntRange(1, 5); k < n && len(mut) > 0; k++ {
			switch r.Intn(4) {
			case 0: // flip a byte
				mut[r.Intn(len(mut))] = byte(r.Intn(256))
			case 1: // delete a byte
				i := r.Intn(len(mut))
				mut = append(mut[:i], mut[i+1:]...)
			case 2: // insert a random byte
				i := r.Intn(len(mut) + 1)
				mut = append(mut[:i], append([]byte{byte(r.Intn(256))}, mut[i:]...)...)
			case 3: // truncate
				mut = mut[:r.Intn(len(mut)+1)]
			}
		}
		dict := xmltree.NewDictionary()
		doc, err := Parse(dict, mut)
		if err != nil {
			continue
		}
		// Accepted: must serialize and reparse losslessly (after adjacent
		// text merging, which serialization cannot distinguish).
		out := xmlwrite.String(dict, doc, xmlwrite.Options{})
		dict2 := xmltree.NewDictionary()
		if _, err := ParseString(dict2, out); err != nil {
			t.Fatalf("accepted input %q reserialized to unparseable %q: %v", mut, out, err)
		}
	}
}

// FuzzParse is the native fuzzing entry point (run with
// `go test -fuzz FuzzParse ./internal/xmlparse`); in normal test runs it
// executes the seed corpus only.
func FuzzParse(f *testing.F) {
	for _, s := range corpus {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dict := xmltree.NewDictionary()
		doc, err := Parse(dict, data)
		if err != nil {
			return
		}
		out := xmlwrite.String(dict, doc, xmlwrite.Options{})
		if _, err := ParseString(xmltree.NewDictionary(), out); err != nil {
			t.Fatalf("round trip broke: %v", err)
		}
	})
}
