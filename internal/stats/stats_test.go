package stats

import (
	"strings"
	"testing"
)

func TestAdvanceCPU(t *testing.T) {
	l := NewLedger()
	l.AdvanceCPU(5 * Millisecond)
	if l.Now != 5*Millisecond || l.CPU != 5*Millisecond {
		t.Fatalf("ledger = %+v", l)
	}
	if l.IOWait != 0 {
		t.Fatal("CPU work must not add IOWait")
	}
}

func TestAdvanceCPUNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedger().AdvanceCPU(-1)
}

func TestBlockUntil(t *testing.T) {
	l := NewLedger()
	l.AdvanceCPU(2 * Millisecond)
	l.BlockUntil(10 * Millisecond)
	if l.Now != 10*Millisecond {
		t.Fatalf("Now = %v", l.Now)
	}
	if l.IOWait != 8*Millisecond {
		t.Fatalf("IOWait = %v", l.IOWait)
	}
	// Blocking on a past instant is free (overlapped I/O).
	l.BlockUntil(3 * Millisecond)
	if l.Now != 10*Millisecond || l.IOWait != 8*Millisecond {
		t.Fatal("past BlockUntil changed the clock")
	}
}

func TestCPUFraction(t *testing.T) {
	l := NewLedger()
	if l.CPUFraction() != 0 {
		t.Fatal("empty ledger fraction != 0")
	}
	l.AdvanceCPU(1 * Second)
	l.BlockUntil(4 * Second)
	if f := l.CPUFraction(); f != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", f)
	}
}

func TestSub(t *testing.T) {
	l := NewLedger()
	l.AdvanceCPU(Second)
	l.PageReads = 10
	base := l.Snapshot()
	l.AdvanceCPU(Second)
	l.BlockUntil(5 * Second)
	l.PageReads = 17
	d := l.Sub(base)
	if d.CPU != Second || d.Now != 4*Second || d.PageReads != 7 {
		t.Fatalf("diff = now=%v cpu=%v reads=%d", d.Now, d.CPU, d.PageReads)
	}
}

func TestReset(t *testing.T) {
	l := NewLedger()
	l.AdvanceCPU(Second)
	l.Seeks = 3
	l.Reset()
	if l.Now != 0 || l.Seeks != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestTicksString(t *testing.T) {
	cases := map[Ticks]string{
		500:               "500ns",
		2 * Microsecond:   "2.000µs",
		3 * Millisecond:   "3.000ms",
		Second + Second/2: "1.500s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestTicksSeconds(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Fatalf("Seconds = %v", s)
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger()
	l.AdvanceCPU(Second)
	if s := l.String(); !strings.Contains(s, "cpu=1.000s") {
		t.Fatalf("String = %q", s)
	}
}
