package buffer

import (
	"sync"
	"testing"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

func newConcurrentPool(t *testing.T, pages, capacity int) *Manager {
	t.Helper()
	d := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 32)
	buf := make([]byte, 32)
	for i := 0; i < pages; i++ {
		p := d.Alloc()
		buf[0] = byte(i)
		d.Write(p, buf)
	}
	d.Ledger().Reset()
	d.ResetClockState()
	return New(d, capacity)
}

// TestConcurrentFixUnfix drives the pool from many goroutines with a
// capacity small enough to force constant eviction pressure. Assertions
// are structural (right data, pins balanced); -race validates the latching.
func TestConcurrentFixUnfix(t *testing.T) {
	const pages = 48
	m := newConcurrentPool(t, pages, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := vdisk.PageID((w*13 + i*7) % pages)
				f := fix(m, p)
				if f.Page != p {
					t.Errorf("Fix(%d) returned frame for page %d", p, f.Page)
					m.Unfix(f)
					return
				}
				if f.Data[0] != byte(p) {
					t.Errorf("page %d holds data %d", p, f.Data[0])
					m.Unfix(f)
					return
				}
				m.Unfix(f)
			}
		}(w)
	}
	wg.Wait()

	if m.Len() > m.Capacity() {
		t.Fatalf("pool over capacity after quiesce: len=%d cap=%d", m.Len(), m.Capacity())
	}
	// Every pin must have been released.
	if _, err := func() (r any, err any) {
		defer func() { err = recover() }()
		m.FlushAll() // panics if anything is still pinned
		return nil, nil
	}(); err != nil {
		t.Fatalf("pins leaked: %v", err)
	}
	led := m.Disk().Ledger()
	if led.BufferHits+led.BufferMisses != 8*200 {
		t.Fatalf("probe accounting: hits=%d misses=%d want sum %d",
			led.BufferHits, led.BufferMisses, 8*200)
	}
}

// TestConcurrentHitsShareOneLoad: when many goroutines fix the same page,
// exactly one disk read must happen; everyone else hits the loaded frame
// and sees complete data.
func TestConcurrentHitsShareOneLoad(t *testing.T) {
	m := newConcurrentPool(t, 4, 4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := fix(m, 2)
			if f.Data[0] != 2 {
				t.Errorf("incomplete frame observed: %d", f.Data[0])
			}
			m.Unfix(f)
		}()
	}
	wg.Wait()
	led := m.Disk().Ledger()
	if led.PageReads != 1 {
		t.Fatalf("PageReads = %d, want 1 (one load shared by all)", led.PageReads)
	}
	if led.BufferMisses != 1 || led.BufferHits != 15 {
		t.Fatalf("hits=%d misses=%d, want 15/1", led.BufferHits, led.BufferMisses)
	}
}

func TestCancelRequests(t *testing.T) {
	m := newConcurrentPool(t, 8, 8)
	m.Request(1)
	m.Request(3)
	m.Unfix(fix(m, 5)) // cache page 5
	m.Request(5)       // ready immediately
	if m.OutstandingRequests() != 3 {
		t.Fatalf("outstanding = %d, want 3", m.OutstandingRequests())
	}
	m.CancelRequests()
	if m.OutstandingRequests() != 0 {
		t.Fatal("CancelRequests left requests")
	}
	if p, ok, _ := m.WaitLoaded(); ok {
		t.Fatalf("cancelled request delivered page %d", p)
	}
	// The pool keeps working normally afterwards.
	m.Request(3)
	p, ok, _ := m.WaitLoaded()
	if !ok || p != 3 {
		t.Fatalf("post-cancel request: got %v,%v", p, ok)
	}
}
