package core

import (
	"context"

	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// EvalState is the per-query evaluation context shared by the operators of
// one plan: the store, the location path, and the memory-pressure fallback
// switch of Sec. 5.4.6.
type EvalState struct {
	Store *storage.Store
	Path  []xpath.Step // Path[i-1] is location step πᵢ

	// Ctx, when non-nil, carries the query's deadline and cancellation.
	// The I/O-performing operators poll it between productions and end
	// their streams early once it is done; the caller distinguishes a
	// cancelled run from an exhausted one via Ctx.Err.
	Ctx context.Context

	// MemLimit bounds the number of speculative instances XAssembly may
	// hold in S; 0 means unlimited. When exceeded, the plan degrades to
	// fallback mode: S is discarded, the XStep chain crosses borders like
	// plain Unnest-Maps, XSchedule stops speculating and XScan restarts
	// its producer.
	MemLimit int

	// Arena, when non-nil, supplies pooled scratch structures to the
	// plan's operators (borrowed at Open, returned at Close). Exactly one
	// running plan may use an arena at a time.
	Arena *Arena

	fallback bool
}

// NewEvalState builds the shared state for evaluating path over store.
func NewEvalState(store *storage.Store, path []xpath.Step) *EvalState {
	return &EvalState{Store: store, Path: path}
}

// Len returns |π|.
func (es *EvalState) Len() int { return len(es.Path) }

// Cancelled reports whether the query's context has been cancelled or has
// exceeded its deadline. It is cooperative-cancellation's poll point:
// cheap enough for operator Next loops (one atomic load inside ctx).
func (es *EvalState) Cancelled() bool {
	return es.Ctx != nil && es.Ctx.Err() != nil
}

// Fallback reports whether the plan has degraded to fallback mode.
func (es *EvalState) Fallback() bool { return es.fallback }

// EnterFallback switches the plan to fallback mode (idempotent).
func (es *EvalState) EnterFallback() {
	if !es.fallback {
		es.fallback = true
		stats.Inc(&es.Store.Ledger().FallbackEvents)
	}
}

func (es *EvalState) ledger() *stats.Ledger { return es.Store.Ledger() }

func (es *EvalState) chargeTuple() {
	led := es.ledger()
	stats.Inc(&led.TuplesMoved)
	led.AdvanceCPU(es.Store.Disk().Model().CPUTupleMove)
}

func (es *EvalState) chargeSetOp(n int) {
	led := es.ledger()
	led.AdvanceCPU(stats.Ticks(n) * es.Store.Disk().Model().CPUSetOp)
}

// ContextOp is the leaf operator enumerating context nodes as non-full,
// complete path instances with S_L = S_R = 0.
type ContextOp struct {
	es  *EvalState
	ids []storage.NodeID
	pos int
}

// NewContextOp returns a context operator over the given nodes. For XScan
// plans the ids must be sorted by cluster; SortContexts does that.
func NewContextOp(es *EvalState, ids []storage.NodeID) *ContextOp {
	return &ContextOp{es: es, ids: ids}
}

// SortContexts orders context NodeIDs by cluster id (XScan's input
// requirement, Sec. 5.4.3.1).
func SortContexts(ids []storage.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1].Page() > ids[j].Page(); j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// Open resets the enumeration.
func (c *ContextOp) Open() { c.pos = 0 }

// Next emits the next context instance.
func (c *ContextOp) Next() (Instance, bool) {
	if c.pos >= len(c.ids) {
		return Instance{}, false
	}
	id := c.ids[c.pos]
	c.pos++
	c.es.chargeTuple()
	return ContextInstance(id), true
}

// Close releases nothing; contexts are caller-owned.
func (c *ContextOp) Close() {}

// Rewind restarts the enumeration (used by XScan's fallback, Sec. 5.4.6).
func (c *ContextOp) Rewind() { c.pos = 0 }
