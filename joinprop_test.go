package pathdb

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"pathdb/internal/rng"
	"pathdb/internal/storage"
)

// propTags is the tag alphabet of the generated documents — small enough
// that random branching paths hit real matches, large enough that
// predicates discriminate.
var propTags = []string{"a", "b", "c", "d", "e"}

// randDoc generates a random XML document: element tree over propTags,
// depth-bounded, with occasional k="v" attributes and t0..t2 leaf texts,
// wrapped in a fixed root <r>. Deterministic in the RNG.
func randDoc(r *rng.RNG) string {
	var b strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		tag := propTags[r.Intn(len(propTags))]
		b.WriteString("<" + tag)
		if r.Bool(0.3) {
			b.WriteString(` k="v"`)
		}
		b.WriteString(">")
		if depth < 5 && r.Bool(0.7) {
			for i, n := 0, r.IntRange(1, 4); i < n; i++ {
				emit(depth + 1)
			}
		} else {
			b.WriteString("t" + strconv.Itoa(r.Intn(3)))
		}
		b.WriteString("</" + tag + ">")
	}
	b.WriteString(`<r k="v">`)
	for i, n := 0, r.IntRange(4, 8); i < n; i++ {
		emit(1)
	}
	b.WriteString("</r>")
	return b.String()
}

// randPredicate draws one predicate over the grammar the structural join
// handles (plus shapes that force its fallback): existence, multi-level,
// recursive, literal, union (same-axis and mixed-axis), attribute,
// bounded repetition, and nested. The mixed-axis unions matter: a child
// or attribute branch marks join positions a following .// branch must
// not mistake for its own ancestor-closed marks.
func randPredicate(r *rng.RNG) string {
	tag := func() string { return propTags[r.Intn(len(propTags))] }
	switch r.Intn(10) {
	case 0:
		return "[" + tag() + "]"
	case 1:
		return "[" + tag() + "/" + tag() + "]"
	case 2:
		return "[.//" + tag() + "]"
	case 3:
		return `[` + tag() + `="t` + strconv.Itoa(r.Intn(3)) + `"]`
	case 4:
		return "[" + tag() + "|" + tag() + "]"
	case 5:
		return "[@k]"
	case 6:
		return "[(" + tag() + "){1,2}]"
	case 7:
		return "[" + tag() + "/" + tag() + "|.//" + tag() + "]"
	case 8:
		return "[@k|.//" + tag() + "]"
	default:
		return "[" + tag() + "[" + tag() + "]]"
	}
}

// randBranchingPath draws a 1-3 step location path over the generated
// documents, guaranteed to carry at least one predicate.
func randBranchingPath(r *rng.RNG) string {
	var b strings.Builder
	b.WriteString("/r")
	preds := 0
	for i, n := 0, r.IntRange(1, 3); i < n; i++ {
		if r.Bool(0.5) {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		if r.Bool(0.15) {
			b.WriteString("*")
		} else {
			b.WriteString(propTags[r.Intn(len(propTags))])
		}
		for p, np := 0, r.Intn(3); p < np; p++ {
			b.WriteString(randPredicate(r))
			preds++
		}
	}
	if preds == 0 {
		b.WriteString(randPredicate(r))
	}
	return b.String()
}

// TestJoinPropertyInvariants drives randomly generated documents and
// branching paths through both predicate evaluators and checks the
// invariants no counterexample may violate:
//
//   - the join and nested evaluators agree byte-exactly,
//   - the result set is duplicate-free,
//   - sorted results come back in strictly increasing document order,
//   - Limit truncation is a pure prefix of the sorted result, and
//   - closing a cursor early leaks no navigation iterators.
//
// Everything is seeded through internal/rng, so a failure names its
// (doc, path) pair and replays exactly.
func TestJoinPropertyInvariants(t *testing.T) {
	ctx := context.Background()
	baseIters := storage.LiveStepIters()

	for trial := 0; trial < 40; trial++ {
		r := rng.New(uint64(1000 + trial))
		doc := randDoc(r)
		db, err := LoadXMLString(doc, Options{})
		if err != nil {
			t.Fatalf("trial %d: load: %v", trial, err)
		}
		for pi := 0; pi < 4; pi++ {
			path := randBranchingPath(r)
			label := fmt.Sprintf("trial %d path %q", trial, path)

			ref, err := db.QueryCtx(ctx, path, QueryOptions{Sorted: true, PredEval: PredNested})
			if err != nil {
				t.Fatalf("%s [nested]: %v", label, err)
			}
			got, err := db.QueryCtx(ctx, path, QueryOptions{Sorted: true, PredEval: PredJoin})
			if err != nil {
				t.Fatalf("%s [join]: %v", label, err)
			}

			// Differential: identical node streams.
			refIDs := make([]uint64, len(ref.Nodes))
			for i, n := range ref.Nodes {
				refIDs[i] = n.ID()
			}
			gotIDs := make([]uint64, len(got.Nodes))
			for i, n := range got.Nodes {
				gotIDs[i] = n.ID()
			}
			if fmt.Sprint(refIDs) != fmt.Sprint(gotIDs) {
				t.Fatalf("%s: join diverges\nnested %v\njoin   %v", label, refIDs, gotIDs)
			}

			// Duplicate-free and strictly doc-ordered.
			seen := make(map[uint64]bool, len(got.Nodes))
			for i, n := range got.Nodes {
				if seen[n.ID()] {
					t.Fatalf("%s: duplicate node %d in result", label, n.ID())
				}
				seen[n.ID()] = true
				if i > 0 && CompareDocOrder(got.Nodes[i-1], n) >= 0 {
					t.Fatalf("%s: results not in strict document order at %d", label, i)
				}
			}

			// Limit truncation is a pure prefix.
			for _, k := range []int{1, len(got.Nodes) / 2} {
				if k == 0 || k >= len(got.Nodes) {
					continue
				}
				lim, err := db.QueryCtx(ctx, path, QueryOptions{Sorted: true, PredEval: PredJoin, Limit: k})
				if err != nil {
					t.Fatalf("%s [limit %d]: %v", label, k, err)
				}
				if len(lim.Nodes) != k {
					t.Fatalf("%s: limit %d returned %d nodes", label, k, len(lim.Nodes))
				}
				for i, n := range lim.Nodes {
					if n.ID() != got.Nodes[i].ID() {
						t.Fatalf("%s: limit %d result is not a prefix at %d", label, k, i)
					}
				}
			}

			// Early cursor Close releases every navigation iterator.
			cur, err := db.QueryStream(ctx, path, QueryOptions{PredEval: PredJoin})
			if err != nil {
				t.Fatalf("%s [stream]: %v", label, err)
			}
			for i, n := 0, r.Intn(3); i < n && cur.Next(); i++ {
			}
			if err := cur.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			if iters := storage.LiveStepIters(); iters != baseIters {
				t.Fatalf("%s: early Close leaked navigation iterators: %d live, baseline %d",
					label, iters, baseIters)
			}
		}
	}
}
