// Package cmd_test runs the command-line tools end to end through `go
// run`, checking that every binary builds and produces sane output on a
// real document. These are integration tests; skip with -short.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// run executes a tool via `go run` from the repository root.
func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".." // repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")

	// xmarkgen writes a document.
	out := run(t, "./cmd/xmarkgen", "-sf", "0.2", "-scale", "0.01", "-seed", "5", "-o", docPath)
	if out != "" {
		t.Fatalf("xmarkgen output: %q", out)
	}
	data, err := os.ReadFile(docPath)
	if err != nil || !strings.Contains(string(data), "<site>") {
		t.Fatalf("generated doc bad: %v", err)
	}

	// xpathq evaluates a query against it, for each strategy plus auto.
	var counts []string
	for _, strat := range []string{"simple", "xschedule", "xscan", "auto"} {
		out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions//item",
			"-strategy", strat, "-explain", "-plan")
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "count(") {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("xpathq (%s) printed no count:\n%s", strat, out)
		}
		counts = append(counts, strings.Fields(line)[2])
		if !strings.Contains(out, "cost:") {
			t.Fatalf("xpathq (%s) printed no cost report", strat)
		}
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("strategies disagree across CLI runs: %v", counts)
		}
	}

	// xpathq -print serializes results.
	out = run(t, "./cmd/xpathq", "-xml", docPath, "-q", "/site/regions/africa/item", "-print")
	if !strings.Contains(out, "<item") {
		t.Fatalf("xpathq -print produced no items:\n%.300s", out)
	}

	// xvolume inspects the volume.
	out = run(t, "./cmd/xvolume", "-xml", docPath, "-tags")
	for _, want := range []string{"volume:", "records:", "dictionary:", "item"} {
		if !strings.Contains(out, want) {
			t.Fatalf("xvolume missing %q:\n%s", want, out)
		}
	}

	// xbench runs a tiny figure and emits machine-readable JSON.
	jsonDir := filepath.Join(dir, "bench")
	out = run(t, "./cmd/xbench", "-scale", "0.01", "-quick", "-fig", "11", "-json", jsonDir)
	if !strings.Contains(out, "xschedule") || !strings.Contains(out, "0.25") {
		t.Fatalf("xbench figure output:\n%s", out)
	}
	data, err = os.ReadFile(filepath.Join(jsonDir, "BENCH_fig11.json"))
	if err != nil {
		t.Fatalf("xbench -json wrote no file: %v", err)
	}
	var benchFile struct {
		Name         string `json:"name"`
		Measurements []struct {
			Query    string  `json:"query"`
			Strategy string  `json:"strategy"`
			SF       float64 `json:"sf"`
			TotalSec float64 `json:"total_s"`
		} `json:"measurements"`
	}
	if err := json.Unmarshal(data, &benchFile); err != nil {
		t.Fatalf("BENCH_fig11.json invalid: %v\n%s", err, data)
	}
	if benchFile.Name != "fig11" || len(benchFile.Measurements) != 9 {
		t.Fatalf("BENCH_fig11.json content: name %q, %d measurements",
			benchFile.Name, len(benchFile.Measurements))
	}

	// xbench -strategy restricts the sweep through ParseStrategy.
	out = run(t, "./cmd/xbench", "-scale", "0.01", "-quick", "-fig", "11", "-strategy", "xscan")
	if !strings.Contains(out, "xscan") {
		t.Fatalf("xbench -strategy output:\n%s", out)
	}
}

// TestLoadGenerator runs the closed-loop load generator and checks the
// acceptance property of the concurrent engine: per-query result counts
// are identical for 1 and 8 clients on the same volume.
func TestLoadGenerator(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	countLines := func(out string) []string {
		var counts []string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "count(") {
				counts = append(counts, l)
			}
		}
		return counts
	}
	base := []string{"./cmd/xload", "-xmark", "0.25", "-scale", "0.05", "-requests", "12", "-mix", "all"}
	seq := run(t, append(base, "-clients", "1")...)
	conc := run(t, append(base, "-clients", "8")...)

	seqCounts, concCounts := countLines(seq), countLines(conc)
	// q6 (1) + q7 (3) + q15 (1) + branch (3) paths in the "all" mix.
	if len(seqCounts) != 8 {
		t.Fatalf("xload -clients 1 reported %d paths, want 8:\n%s", len(seqCounts), seq)
	}
	if strings.Join(seqCounts, "\n") != strings.Join(concCounts, "\n") {
		t.Fatalf("per-query results differ between 1 and 8 clients:\n%v\nvs\n%v", seqCounts, concCounts)
	}
	for _, out := range []string{seq, conc} {
		for _, want := range []string{"throughput:", "latency virtual", "latency wall", "engine: gangs="} {
			if !strings.Contains(out, want) {
				t.Fatalf("xload output missing %q:\n%s", want, out)
			}
		}
	}
}

// TestQueryServer drives xserved over real sockets: xload -url as a
// client, then the protocol-level contracts one by one — an expired
// timeout_ms answers 504 and withdraws the query's prefetches, a full
// admission queue answers 503 with Retry-After, /metrics stays a valid
// Prometheus text exposition throughout, and SIGTERM drains cleanly.
func TestQueryServer(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := filepath.Join(t.TempDir(), "xserved")
	build := exec.Command("go", "build", "-o", bin, "./cmd/xserved")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build xserved: %v\n%s", err, out)
	}

	// Small buffer so heavy queries always reach the simulated device
	// (prefetches in flight to withdraw), tight engine limits so a burst
	// overflows admission.
	srv := exec.Command(bin, "-xmark", "0.5", "-buffer", "64",
		"-inflight", "2", "-queue", "2", "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatalf("start xserved: %v", err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("xserved never reported its address: %v", sc.Err())
	}
	var rest strings.Builder
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
	}()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /query: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	metrics := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		vals := make(map[string]float64)
		seenType := make(map[string]bool)
		ms := bufio.NewScanner(resp.Body)
		for ms.Scan() {
			line := ms.Text()
			if line == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				seenType[strings.Fields(rest)[0]] = true
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("/metrics sample not `name value`: %q", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("/metrics value of %s: %v", fields[0], err)
			}
			if !seenType[fields[0]] {
				t.Fatalf("/metrics sample %s has no preceding # TYPE", fields[0])
			}
			if _, dup := vals[fields[0]]; dup {
				t.Fatalf("/metrics duplicate series %s", fields[0])
			}
			vals[fields[0]] = v
		}
		return vals
	}

	// xload -url drives the server end to end — reads through POST /query,
	// write transactions through POST /update — and records engine counters.
	// The pads written under /site are invisible to the query mixes, so the
	// read counts stay stable.
	jsonDir := t.TempDir()
	out := run(t, "./cmd/xload", "-url", base, "-clients", "4", "-requests", "16",
		"-write-frac", "0.25", "-json", jsonDir)
	for _, want := range []string{"mode=url", "count(/site/regions//item) =", "engine: gangs=", "txn: commits="} {
		if !strings.Contains(out, want) {
			t.Fatalf("xload -url output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(jsonDir, "BENCH_xload.json"))
	if err != nil {
		t.Fatalf("xload -url -json wrote no file: %v", err)
	}
	var load struct {
		Mode      string `json:"mode"`
		Submitted int64  `json:"engine_submitted"`
		Writes    int64  `json:"writes"`
		Commits   uint64 `json:"txn_commits"`
	}
	if err := json.Unmarshal(data, &load); err != nil {
		t.Fatalf("BENCH_xload.json invalid: %v\n%s", err, data)
	}
	if load.Mode != "url" || load.Submitted < 8 {
		t.Fatalf("BENCH_xload.json: mode %q, submitted %d", load.Mode, load.Submitted)
	}
	if load.Writes < 1 || load.Commits < uint64(load.Writes) {
		t.Fatalf("BENCH_xload.json: writes %d, txn_commits %d", load.Writes, load.Commits)
	}

	// An expired timeout_ms is a 504 and the cancelled query's prefetches
	// are withdrawn from the device queue — both visible in /metrics.
	timedOut := false
	for i := 0; i < 10 && !timedOut; i++ {
		resp, data := post(`{"path": "/site//description", "timeout_ms": 1, "strategy": "xschedule"}`)
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			timedOut = true
		case http.StatusOK, http.StatusServiceUnavailable:
		default:
			t.Fatalf("timeout probe: status %d: %s", resp.StatusCode, data)
		}
	}
	if !timedOut {
		t.Fatal("no 504 despite a 1ms budget on a heavy query")
	}
	// The 504 is written when the client's deadline fires; the engine
	// registers the cancellation at the query's next operator poll point,
	// which can land just after the response. Poll briefly.
	m := metrics()
	for i := 0; i < 50 && m["pathdb_engine_cancelled_total"] == 0; i++ {
		time.Sleep(20 * time.Millisecond)
		m = metrics()
	}
	if m["pathdb_engine_cancelled_total"] == 0 {
		t.Fatal("504 served but engine cancelled_total is 0")
	}
	if m["pathdb_ledger_async_withdrawn_total"] == 0 {
		t.Fatal("cancelled query's prefetches were not withdrawn")
	}
	if m["pathdb_server_timeouts_total"] == 0 {
		t.Fatal("server timeouts_total is 0 after a 504")
	}

	// A burst past MaxInFlight+QueueDepth sheds with 503 + Retry-After.
	var mu sync.Mutex
	codes := make(map[int]int)
	retryAfter := ""
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/query", "application/json",
				strings.NewReader(`{"path": "/site//description"}`))
			if err != nil {
				t.Errorf("burst POST: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			if resp.StatusCode == http.StatusServiceUnavailable {
				retryAfter = resp.Header.Get("Retry-After")
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[http.StatusOK] == 0 || codes[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("burst of 16 on a depth-4 engine: status codes %v", codes)
	}
	if _, err := strconv.Atoi(retryAfter); err != nil {
		t.Fatalf("503 Retry-After %q is not an integer", retryAfter)
	}
	m = metrics()
	if m["pathdb_engine_rejected_total"] == 0 {
		t.Fatal("503s served but engine rejected_total is 0")
	}
	if m["pathdb_server_shed_total"] == 0 {
		t.Fatal("503s served but server shed_total is 0")
	}

	// SIGTERM drains: the process exits 0 and reports completion.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("xserved did not exit within 30s of SIGTERM")
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("xserved exit: %v\n%s", err, rest.String())
	}
	if !strings.Contains(rest.String(), "drained") {
		t.Fatalf("xserved shutdown output:\n%s", rest.String())
	}
}

func TestShellSession(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", "run", "./cmd/xshell", "-xmark", "0.2", "-scale", "0.01")
	cmd.Dir = ".."
	cmd.Stdin = strings.NewReader(
		"/site/regions//item\n" +
			"\\strategy xscan\n" +
			"\\plan /site\n" +
			"\\insert /site <extra/>\n" +
			"/site/extra\n" +
			"\\quit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("xshell: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"pathdb shell", "count = ", "XScan(", "inserted", "count = 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("shell output missing %q:\n%s", want, s)
		}
	}
}
