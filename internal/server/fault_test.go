package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pathdb"
)

func decodeError(t *testing.T, data []byte) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("error body not valid JSON: %v\n%s", err, data)
	}
	return er
}

// TestQueryFaultMapsTo500 drives the fault plane through the HTTP layer:
// a query that exhausts the storage retry budget must answer 500 with a
// structured body whose kind round-trips the pathdb taxonomy, and the
// fault counters must surface on /metrics.
func TestQueryFaultMapsTo500(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	db.SetFaults(pathdb.FaultConfig{Seed: 4, ReadError: 1})
	resp, data := postQuery(t, ts.URL, QueryRequest{Path: itemQuery, Strategy: "xschedule"})
	db.SetFaults(pathdb.FaultConfig{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, data)
	}
	er := decodeError(t, data)
	if pathdb.ParseErrorKind(er.Kind) != pathdb.KindIO {
		t.Fatalf("error kind %q does not round-trip to KindIO: %+v", er.Kind, er)
	}
	if er.Error == "" {
		t.Fatal("error body missing message")
	}

	// The same query succeeds once the plane is disarmed.
	resp, data = postQuery(t, ts.URL, QueryRequest{Path: itemQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disarm status %d: %s", resp.StatusCode, data)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"pathdb_engine_faulted_total 1",
		"pathdb_server_io_errors_total 1",
		"pathdb_ledger_read_faults_total",
		"pathdb_ledger_read_retries_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
