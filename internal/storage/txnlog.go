package storage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pathdb/internal/vdisk"
)

// Durable state for the transaction subsystem (internal/txn): a chained
// checkpoint record plus a forward-linked redo log of commit groups.
//
// Layout. The meta page gains one trailing field, the checkpoint head. A
// checkpoint is the folded transaction state (epoch, relocation table,
// extension directory, free list) serialized across a chain of pages; the
// last chain page's next pointer is the *log head* — a page preallocated
// for the first commit group after the checkpoint. Each commit group is
// serialized across its own chain, whose final next pointer is again a
// preallocated page for the following group. The log is therefore a single
// forward-linked list rooted at the meta page:
//
//	meta → checkpoint chain → group₁ chain → group₂ chain → … → (zeroed page)
//
// Commit point. Chain pages are written in order and the simulated crash
// drops a strict suffix of writes, so a chain is durable exactly when its
// last page (the only one with the last flag) verifies. Writing that page
// is the group's single fsync-equivalent — one page write commits every
// transaction in the group, which is what makes mean flushes per commit
// drop below one under concurrent writers.
//
// Recovery (ARIES-lite, redo only). Open reads the checkpoint, then walks
// the group chains forward, applying each complete group's relocations to
// the folded state. The scan stops at the first chain that fails to verify:
// a zeroed preallocated page (allocation zero-fills), a torn write (page
// trailer mismatch), or a foreign magic. A verified group whose epoch is
// not newer than the folded state is skipped but the walk continues — a
// checkpoint may fold commits that were published but whose group had not
// yet flushed when the checkpoint was cut, so the first chains after it
// can lag the checkpoint epoch while later ones carry new commits. Cycles
// are impossible: every chain head is a fresh allocation, so heads occur
// in strictly increasing page order. Undo is never needed: copy-on-write
// staging writes only to unreferenced pages, so an unlogged transaction
// simply never becomes visible.

const (
	ckptMagic  = "PATHCKP1"
	groupMagic = "PATHGRP1"

	// chainHeaderSize is the per-page header of a chained record:
	// magic 8, epoch 8, seq 4, flags 4, next 4, payload length 4.
	chainHeaderSize = 32

	chainFlagLast = 1
)

// chainPayloadCapacity is the payload room of one chain page.
func chainPayloadCapacity(pageSize int) int {
	return usable(pageSize) - chainHeaderSize
}

// A PageAlloc hands out unreferenced pages for log chains. The allocator
// must guarantee that a returned page reads back as *invalid* until the
// chain write lands on it: either a fresh allocation (zero-filled) or a
// recycled page zeroed before return. Recovery depends on this — a stale
// but well-formed record on a preallocated head would send the redo walk
// into garbage.
type PageAlloc func() vdisk.PageID

// writeChain serializes payload across a chain of pages starting at first
// (which must be preallocated and unreferenced), drawing continuation
// pages from alloc as needed. It returns the pages written and the
// preallocated head for the next chain (stored in the last page's next
// field). The last page's write is the chain's commit point.
func writeChain(disk *vdisk.Disk, first vdisk.PageID, magic string, epoch uint64, payload []byte, alloc PageAlloc) (used []vdisk.PageID, next vdisk.PageID) {
	cap := chainPayloadCapacity(disk.PageSize())
	nPages := (len(payload) + cap - 1) / cap
	if nPages == 0 {
		nPages = 1
	}
	pages := make([]vdisk.PageID, nPages)
	pages[0] = first
	for i := 1; i < nPages; i++ {
		pages[i] = alloc()
	}
	next = alloc()
	for i := 0; i < nPages; i++ {
		lo := i * cap
		hi := lo + cap
		if hi > len(payload) {
			hi = len(payload)
		}
		chunk := payload[lo:hi]
		buf := make([]byte, chainHeaderSize+len(chunk))
		copy(buf, magic)
		binary.LittleEndian.PutUint64(buf[8:], epoch)
		binary.LittleEndian.PutUint32(buf[16:], uint32(i))
		flags := uint32(0)
		link := next
		if i < nPages-1 {
			link = pages[i+1]
		} else {
			flags |= chainFlagLast
		}
		binary.LittleEndian.PutUint32(buf[20:], flags)
		binary.LittleEndian.PutUint32(buf[24:], uint32(link))
		binary.LittleEndian.PutUint32(buf[28:], uint32(len(chunk)))
		copy(buf[chainHeaderSize:], chunk)
		writePage(disk, pages[i], buf)
	}
	return pages, next
}

// readChain reads one chained record rooted at first. ok is false when the
// chain is absent or incomplete (the normal end-of-log condition); the
// other values are meaningful only when ok.
func readChain(disk *vdisk.Disk, first vdisk.PageID, magic string) (payload []byte, epoch uint64, used []vdisk.PageID, next vdisk.PageID, ok bool) {
	buf := make([]byte, disk.PageSize())
	page := first
	for seq := uint32(0); ; seq++ {
		if page == 0 || int(page) >= disk.NumPages() {
			return nil, 0, nil, 0, false
		}
		if err := readPageVerified(disk, page, buf); err != nil {
			return nil, 0, nil, 0, false
		}
		if string(buf[:8]) != magic {
			return nil, 0, nil, 0, false
		}
		e := binary.LittleEndian.Uint64(buf[8:])
		if seq == 0 {
			epoch = e
		} else if e != epoch {
			return nil, 0, nil, 0, false
		}
		if binary.LittleEndian.Uint32(buf[16:]) != seq {
			return nil, 0, nil, 0, false
		}
		flags := binary.LittleEndian.Uint32(buf[20:])
		link := vdisk.PageID(binary.LittleEndian.Uint32(buf[24:]))
		n := int(binary.LittleEndian.Uint32(buf[28:]))
		if n < 0 || chainHeaderSize+n > usable(disk.PageSize()) {
			return nil, 0, nil, 0, false
		}
		payload = append(payload, buf[chainHeaderSize:chainHeaderSize+n]...)
		used = append(used, page)
		if flags&chainFlagLast != 0 {
			return payload, epoch, used, link, true
		}
		page = link
	}
}

// TxnState is the folded durable transaction state of a volume: what a
// checkpoint stores and what recovery reconstructs.
type TxnState struct {
	Epoch   uint64                        // last committed epoch
	Map     map[vdisk.PageID]vdisk.PageID // logical → physical relocations
	Extras  []vdisk.PageID                // extension directory (logical ids)
	Free    []vdisk.PageID                // reclaimable physical pages
	LogHead vdisk.PageID                  // preallocated head of the next group chain
}

// Version builds the VersionMap this state describes.
func (st *TxnState) Version() *VersionMap {
	m := make(map[vdisk.PageID]vdisk.PageID, len(st.Map))
	for l, p := range st.Map {
		m[l] = p
	}
	return NewVersionMap(st.Epoch, m, append([]vdisk.PageID(nil), st.Extras...))
}

func encodeTxnState(st *TxnState) []byte {
	logicals := make([]vdisk.PageID, 0, len(st.Map))
	for l := range st.Map {
		logicals = append(logicals, l)
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })

	buf := make([]byte, 0, 16+8*len(st.Map)+4*(len(st.Extras)+len(st.Free)))
	var tmp [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	u32(uint32(len(logicals)))
	for _, l := range logicals {
		u32(uint32(l))
		u32(uint32(st.Map[l]))
	}
	u32(uint32(len(st.Extras)))
	for _, p := range st.Extras {
		u32(uint32(p))
	}
	u32(uint32(len(st.Free)))
	for _, p := range st.Free {
		u32(uint32(p))
	}
	return buf
}

func decodeTxnState(raw []byte) (*TxnState, error) {
	d := struct {
		b   []byte
		off int
	}{b: raw}
	u32 := func() (uint32, error) {
		if d.off+4 > len(d.b) {
			return 0, fmt.Errorf("storage: truncated checkpoint payload")
		}
		v := binary.LittleEndian.Uint32(d.b[d.off:])
		d.off += 4
		return v, nil
	}
	st := &TxnState{Map: map[vdisk.PageID]vdisk.PageID{}}
	n, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		l, err := u32()
		if err != nil {
			return nil, err
		}
		p, err := u32()
		if err != nil {
			return nil, err
		}
		st.Map[vdisk.PageID(l)] = vdisk.PageID(p)
	}
	n, err = u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		p, err := u32()
		if err != nil {
			return nil, err
		}
		st.Extras = append(st.Extras, vdisk.PageID(p))
	}
	n, err = u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		p, err := u32()
		if err != nil {
			return nil, err
		}
		st.Free = append(st.Free, vdisk.PageID(p))
	}
	return st, nil
}

// MapDelta is one logical-page relocation carried by a commit group.
type MapDelta struct {
	Logical, Physical vdisk.PageID
}

// GroupRecord is one durable commit group: the folded effects of every
// transaction flushed together. Within a group all commits become durable
// or none do; acking after the chain's last write preserves exactly that.
type GroupRecord struct {
	Epoch   uint64 // epoch of the newest commit in the group
	Commits uint32
	Deltas  []MapDelta     // relocations, newest commit wins (pre-folded)
	Fresh   []vdisk.PageID // identity-mapped extension pages appended
	Freed   []vdisk.PageID // physical pages superseded by the group
}

func encodeGroupRecord(g GroupRecord) []byte {
	buf := make([]byte, 0, 16+8*len(g.Deltas)+4*(len(g.Fresh)+len(g.Freed)))
	var tmp [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	u32(g.Commits)
	u32(uint32(len(g.Deltas)))
	for _, d := range g.Deltas {
		u32(uint32(d.Logical))
		u32(uint32(d.Physical))
	}
	u32(uint32(len(g.Fresh)))
	for _, p := range g.Fresh {
		u32(uint32(p))
	}
	u32(uint32(len(g.Freed)))
	for _, p := range g.Freed {
		u32(uint32(p))
	}
	return buf
}

func decodeGroupRecord(epoch uint64, raw []byte) (GroupRecord, bool) {
	g := GroupRecord{Epoch: epoch}
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		return v, true
	}
	var ok bool
	if g.Commits, ok = u32(); !ok {
		return g, false
	}
	n, ok := u32()
	if !ok {
		return g, false
	}
	for i := uint32(0); i < n; i++ {
		l, ok1 := u32()
		p, ok2 := u32()
		if !ok1 || !ok2 {
			return g, false
		}
		g.Deltas = append(g.Deltas, MapDelta{Logical: vdisk.PageID(l), Physical: vdisk.PageID(p)})
	}
	if n, ok = u32(); !ok {
		return g, false
	}
	for i := uint32(0); i < n; i++ {
		p, ok := u32()
		if !ok {
			return g, false
		}
		g.Fresh = append(g.Fresh, vdisk.PageID(p))
	}
	if n, ok = u32(); !ok {
		return g, false
	}
	for i := uint32(0); i < n; i++ {
		p, ok := u32()
		if !ok {
			return g, false
		}
		g.Freed = append(g.Freed, vdisk.PageID(p))
	}
	return g, true
}

// AppendGroup writes one commit group's chain at head (the preallocated
// log head) and returns the pages consumed plus the next log head. The
// final page write is the group's commit point and single fsync-equivalent.
func (s *Store) AppendGroup(head vdisk.PageID, g GroupRecord, alloc PageAlloc) (used []vdisk.PageID, next vdisk.PageID) {
	return writeChain(s.disk, head, groupMagic, g.Epoch, encodeGroupRecord(g), alloc)
}

// WriteCheckpoint folds st into a fresh checkpoint chain, points the meta
// page at it, and returns the previous checkpoint's pages (now garbage,
// reclaimable by the caller) plus the new log head. Crash-safe: the old
// chain stays intact until the meta write lands, and any post-crash reuse
// of the returned pages is itself dropped by the same crash.
func (s *Store) WriteCheckpoint(st TxnState, alloc PageAlloc) (freed []vdisk.PageID, next vdisk.PageID, err error) {
	m, err := readMeta(s.disk)
	if err != nil {
		return nil, 0, err
	}
	first := alloc()
	used, next := writeChain(s.disk, first, ckptMagic, st.Epoch, encodeTxnState(&st), alloc)
	m.ckptPage = first
	writeMeta(s.disk, 0, m)
	freed = s.ckptPages
	s.ckptPages = used
	return freed, next, nil
}

// InitTxn adopts a volume that has no transaction state yet: it persists
// the initial checkpoint (epoch 0, identity map, the current extension
// directory) and publishes the initial version, switching the volume into
// transactional mode (the legacy single-writer update path refuses to run
// from then on). Idempotent: an already-adopted volume returns its state.
func (s *Store) InitTxn() (*TxnState, error) {
	if s.txnState != nil {
		return s.txnState, nil
	}
	st := &TxnState{
		Map:    map[vdisk.PageID]vdisk.PageID{},
		Extras: append([]vdisk.PageID(nil), s.extras...),
	}
	_, next, err := s.WriteCheckpoint(*st, s.disk.Alloc)
	if err != nil {
		return nil, err
	}
	st.LogHead = next
	s.txnState = st
	s.PublishVersion(st.Version())
	return st, nil
}

// recoverTxn reconstructs the transaction state from the checkpoint and a
// forward redo scan over the group chains. Returns nil when the volume has
// no transaction state. The scan's stopping conditions are documented at
// the top of this file; LogHead ends up at the first chain that is not
// durable, which is exactly where the next commit group must go.
func recoverTxn(disk *vdisk.Disk, m *metaInfo) (*TxnState, error) {
	if m.ckptPage == 0 {
		return nil, nil
	}
	payload, epoch, used, next, ok := readChain(disk, m.ckptPage, ckptMagic)
	if !ok {
		return nil, fmt.Errorf("storage: checkpoint chain at page %d unreadable", m.ckptPage)
	}
	st, err := decodeTxnState(payload)
	if err != nil {
		return nil, err
	}
	st.Epoch = epoch
	ckptPages := used

	head := next
	visited := make(map[vdisk.PageID]bool, len(used))
	for _, p := range used {
		visited[p] = true
	}
	for {
		if visited[head] {
			break // defensive: never walk a page twice
		}
		payload, gEpoch, gUsed, gNext, ok := readChain(disk, head, groupMagic)
		if !ok {
			break // end of durable log
		}
		for _, p := range gUsed {
			visited[p] = true
		}
		g, ok := decodeGroupRecord(gEpoch, payload)
		if !ok {
			break
		}
		if gEpoch > st.Epoch {
			for _, d := range g.Deltas {
				st.Map[d.Logical] = d.Physical
			}
			st.Extras = append(st.Extras, g.Fresh...)
			st.Free = append(st.Free, g.Freed...)
			st.Epoch = gEpoch
		}
		// Whether applied or already folded into the checkpoint, the
		// chain's pages are consumed; the fresh checkpoint written after
		// recovery folds them into the free list.
		st.Free = append(st.Free, gUsed...)
		head = gNext
	}
	st.LogHead = head
	// Old checkpoint pages become free once the post-recovery checkpoint's
	// meta write is issued; the caller rewrites the checkpoint, so hand
	// them over through the free list only after that happens. Stash them
	// in the state for the caller.
	st.Free = append(st.Free, ckptPages...)

	// Commits that landed after the checkpoint was cut may have reused
	// pages from the very free list the checkpoint captured (the manager
	// pops copy targets from it concurrently with the checkpoint write).
	// A page the recovered version map references must not resurface as
	// free; drop those, and duplicates, from the list.
	ref := make(map[vdisk.PageID]bool, len(st.Map))
	for _, p := range st.Map {
		ref[p] = true
	}
	seen := make(map[vdisk.PageID]bool, len(st.Free))
	free := st.Free[:0]
	for _, p := range st.Free {
		if ref[p] || seen[p] {
			continue
		}
		seen[p] = true
		free = append(free, p)
	}
	st.Free = free
	return st, nil
}
