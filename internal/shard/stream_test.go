package shard

import (
	"context"
	"errors"
	"testing"

	"pathdb"
)

// drainStream consumes a StreamCursor fully, failing the test on a merge
// error, and returns the yielded nodes in order.
func drainStream(t *testing.T, sc *StreamCursor) []ShardNode {
	t.Helper()
	var nodes []ShardNode
	for sc.Next() {
		nodes = append(nodes, sc.Node())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream merge failed: %v", err)
	}
	sc.Close()
	return nodes
}

// sameMerge reports whether two merged sequences are identical — same
// nodes, same shards, same order.
func sameMerge(a []ShardNode, b []ShardNode) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Shard != b[i].Shard || a[i].Node.ID() != b[i].Node.ID() {
			return false
		}
	}
	return true
}

// The streamed k-way merge must yield byte-for-byte the buffered merge's
// node sequence: same global document order, same shard attribution, spine
// replicas contributed exactly once, cross-shard order-key collisions (two
// distinct entities sharing a local key) kept apart.
func TestStreamMatchesBufferedMerge(t *testing.T) {
	cl := newTestCluster(t, Config{})
	for _, path := range testPaths {
		want := mustQuery(t, cl, path, true)
		sc, err := cl.Stream(context.Background(), path, pathdb.QueryOptions{})
		if err != nil {
			t.Fatalf("Stream(%q): %v", path, err)
		}
		got := drainStream(t, sc)
		if !sameMerge(got, want.Nodes) {
			t.Errorf("%q: streamed merge (%d nodes) differs from buffered merge (%d nodes)",
				path, len(got), len(want.Nodes))
		}
		sum, ok := sc.Summary()
		if !ok {
			t.Fatalf("%q: no summary after drain", path)
		}
		if sum.Count != want.Count {
			t.Errorf("%q: streamed count %d, buffered %d", path, sum.Count, want.Count)
		}
		if sum.SpineMatches != want.SpineMatches {
			t.Errorf("%q: streamed spine matches %d, buffered %d", path, sum.SpineMatches, want.SpineMatches)
		}
		if sum.Partial || len(sum.Degraded) != 0 {
			t.Errorf("%q: healthy cluster reported partial/degraded", path)
		}
	}
}

// A pure-spine path is replicated on every shard; the streamed merge must
// still emit it exactly once.
func TestStreamSpineDedup(t *testing.T) {
	cl := newTestCluster(t, Config{})
	sc, err := cl.Stream(context.Background(), "/site/regions", pathdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := drainStream(t, sc)
	if len(nodes) != 1 {
		t.Fatalf("/site/regions streamed %d nodes, want 1 (replicas merged once)", len(nodes))
	}
	if sum, _ := sc.Summary(); sum.SpineMatches != 1 {
		t.Fatalf("spine matches %d, want 1", sum.SpineMatches)
	}
}

// Limit caps the merged sequence at exactly the first N of the buffered
// merge — the pushed-down per-shard limit must never starve the true
// global prefix.
func TestStreamLimit(t *testing.T) {
	cl := newTestCluster(t, Config{})
	const path = "/site//description"
	want := mustQuery(t, cl, path, true)
	if len(want.Nodes) < 20 {
		t.Fatalf("fixture too small: %d nodes", len(want.Nodes))
	}
	for _, limit := range []int{1, 7, 19} {
		sc, err := cl.Stream(context.Background(), path, pathdb.QueryOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		got := drainStream(t, sc)
		if !sameMerge(got, want.Nodes[:limit]) {
			t.Fatalf("limit %d: streamed prefix differs from buffered merge's first %d", limit, limit)
		}
	}
}

// Closing the merge mid-stream settles every shard cursor without error,
// and the summary reports what each shard contributed so far.
func TestStreamEarlyClose(t *testing.T) {
	cl := newTestCluster(t, Config{})
	sc, err := cl.Stream(context.Background(), "/site//description", pathdb.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && sc.Next(); i++ {
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if sc.Next() {
		t.Fatal("Next after Close must report false")
	}
	if err := sc.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	sum, ok := sc.Summary()
	if !ok {
		t.Fatal("closed stream must still summarize")
	}
	if sum.Count != 5 {
		t.Fatalf("summary count %d, want 5", sum.Count)
	}
	if len(sum.PerShard) != cl.Shards() {
		t.Fatalf("summary covers %d shards, want %d", len(sum.PerShard), cl.Shards())
	}
}

// Under the quorum policy a shard lost to storage faults drops out of the
// merge — at open or mid-stream — and the stream completes with the
// trailing summary reporting the degradation, never a merge error.
func TestStreamDegradedShard(t *testing.T) {
	const bad = 2
	cl := faultedCluster(t, Config{}, bad, 1)
	sc, err := cl.Stream(context.Background(), "/site//description", pathdb.QueryOptions{})
	if err != nil {
		t.Fatalf("stream open under one dead shard: %v (quorum must absorb it)", err)
	}
	prev := ShardNode{}
	n := 0
	for sc.Next() {
		cur := sc.Node()
		if cur.Shard == bad {
			t.Fatalf("node %d attributed to the dead shard", n)
		}
		if n > 0 && pathdb.CompareDocOrder(prev.Node, cur.Node) > 0 {
			t.Fatalf("nodes %d and %d out of document order in degraded merge", n-1, n)
		}
		prev = cur
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("degraded merge errored: %v", err)
	}
	sc.Close()
	sum, _ := sc.Summary()
	if !sum.Partial || len(sum.Degraded) != 1 || sum.Degraded[0].Shard != bad {
		t.Fatalf("summary %+v, want partial with shard %d degraded", sum, bad)
	}
	if k := sum.Degraded[0].Kind; k != pathdb.KindIO && k != pathdb.KindCorrupt {
		t.Fatalf("degradation kind %v, want a storage kind", k)
	}
	if n == 0 {
		t.Fatal("degraded merge yielded nothing")
	}
}

// Losing more shards than the quorum tolerates fails the stream with a
// QuorumError; PolicyAll refuses degradation outright.
func TestStreamQuorumAndPolicyAll(t *testing.T) {
	cl := faultedCluster(t, Config{}, 1, 1)
	cl.SetFaults(2, pathdb.FaultConfig{Seed: 11, ReadError: 1})
	sc, err := cl.Stream(context.Background(), "/site//description", pathdb.QueryOptions{})
	if err == nil {
		for sc.Next() {
		}
		err = sc.Err()
		sc.Close()
	}
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("two dead shards of four: err=%v (%T), want *QuorumError", err, err)
	}

	cl2 := faultedCluster(t, Config{Policy: PolicyAll}, 3, 1)
	sc, err = cl2.Stream(context.Background(), "/site//description", pathdb.QueryOptions{})
	if err == nil {
		for sc.Next() {
		}
		err = sc.Err()
		sc.Close()
	}
	if err == nil {
		t.Fatal("PolicyAll streamed past a dead shard")
	}
	if k := pathdb.KindOf(err); k != pathdb.KindIO && k != pathdb.KindCorrupt {
		t.Fatalf("PolicyAll stream error classifies as %v, want a storage kind", k)
	}
}
