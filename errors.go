package pathdb

import (
	"context"
	"errors"
	"fmt"

	"pathdb/internal/engine"
	"pathdb/internal/storage"
	"pathdb/internal/txn"
)

// ErrorKind classifies a query failure. Every error returned by the
// engine, session and server paths is (or wraps) a *pathdb.Error carrying
// one of these kinds, so callers can branch on failure class without
// string matching — errors.Is against the exported sentinels below, or
// errors.As(*pathdb.Error) to read the kind directly.
type ErrorKind uint8

const (
	// KindUnknown is an unclassified failure (parse errors, internal
	// invariant violations).
	KindUnknown ErrorKind = iota
	// KindTimeout is a deadline expiry: the query's context deadline
	// passed before the result was ready. Retriable later (HTTP 504).
	KindTimeout
	// KindOverloaded is an admission-control rejection: the engine's
	// queue was full and the submission chose not to wait (HTTP 503).
	KindOverloaded
	// KindClosed means the engine was closed or draining (HTTP 503).
	KindClosed
	// KindIO is a persistent read failure: the device kept erroring past
	// the storage layer's retry budget (HTTP 500).
	KindIO
	// KindCorrupt is a verified-read failure: a page's checksum never
	// matched across the retry budget, i.e. the stored bytes are damaged
	// (HTTP 500).
	KindCorrupt
	// KindCanceled means the query's context was canceled by the caller.
	KindCanceled
)

// String returns the kind's stable wire name, round-tripped by
// ParseErrorKind and used in the HTTP server's structured error bodies.
func (k ErrorKind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindOverloaded:
		return "overloaded"
	case KindClosed:
		return "closed"
	case KindIO:
		return "io"
	case KindCorrupt:
		return "corrupt"
	case KindCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// ParseErrorKind maps a wire name back to its kind; unrecognized names
// parse as KindUnknown.
func ParseErrorKind(s string) ErrorKind {
	switch s {
	case "timeout":
		return KindTimeout
	case "overloaded":
		return KindOverloaded
	case "closed":
		return KindClosed
	case "io":
		return KindIO
	case "corrupt":
		return KindCorrupt
	case "canceled":
		return KindCanceled
	default:
		return KindUnknown
	}
}

// Sentinel classification targets for errors.Is. These carry no context
// themselves — the errors actually returned are *pathdb.Error values whose
// Is method matches the sentinel of their kind:
//
//	res, err := sess.Do(ctx, "/site//item", pathdb.QueryOptions{})
//	switch {
//	case errors.Is(err, pathdb.ErrTimeout):    // retry with a longer deadline
//	case errors.Is(err, pathdb.ErrOverloaded): // back off, engine is shedding
//	case errors.Is(err, pathdb.ErrCorrupt):    // page failed checksum verification
//	}
//
// ErrOverloaded and ErrClosed are declared in engine.go (they predate the
// taxonomy and wrap the internal engine sentinels); *Error matches them
// the same way.
var (
	ErrTimeout  = errors.New("pathdb: deadline exceeded")
	ErrIO       = errors.New("pathdb: i/o error")
	ErrCorrupt  = errors.New("pathdb: data corruption")
	ErrCanceled = errors.New("pathdb: query canceled")
)

// Error is the typed failure returned by engine, session and server query
// paths: a kind for programmatic classification, the operation and query
// path for context, and the underlying cause on the Unwrap chain.
type Error struct {
	Kind ErrorKind
	Op   string // the failing operation, e.g. "query", "submit", "shutdown"
	Path string // the location path being evaluated, if any
	Err  error  // underlying cause; never nil
}

// Error renders "pathdb: <op> <path>: <cause>".
func (e *Error) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("pathdb: %s %q: %v", e.Op, e.Path, e.Err)
	}
	return fmt.Sprintf("pathdb: %s: %v", e.Op, e.Err)
}

// Unwrap exposes the cause, so errors.Is still sees the original context
// error, *storage.PageError, or engine sentinel underneath.
func (e *Error) Unwrap() error { return e.Err }

// Timeout implements the net.Error-style probe used by generic callers.
func (e *Error) Timeout() bool { return e.Kind == KindTimeout }

// Is matches the sentinel corresponding to the error's kind, making
// errors.Is(err, pathdb.ErrTimeout) etc. work without the sentinel
// appearing on the Unwrap chain.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrTimeout:
		return e.Kind == KindTimeout
	case ErrOverloaded:
		return e.Kind == KindOverloaded
	case ErrClosed:
		return e.Kind == KindClosed
	case ErrIO:
		return e.Kind == KindIO
	case ErrCorrupt:
		return e.Kind == KindCorrupt
	case ErrCanceled:
		return e.Kind == KindCanceled
	}
	return false
}

// KindOf classifies err: the Kind of the innermost *pathdb.Error, or
// KindUnknown when err is not from the taxonomy (or nil).
func KindOf(err error) ErrorKind {
	var pe *Error
	if errors.As(err, &pe) {
		return pe.Kind
	}
	return KindUnknown
}

// wrapErr classifies an internal failure into the typed taxonomy. Errors
// already carrying a *pathdb.Error pass through untouched.
func wrapErr(op, path string, err error) error {
	if err == nil {
		return nil
	}
	var pe *Error
	if errors.As(err, &pe) {
		return err
	}
	kind := KindUnknown
	var spe *storage.PageError
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		kind = KindOverloaded
	case errors.Is(err, engine.ErrClosed), errors.Is(err, txn.ErrClosed):
		kind = KindClosed
	case errors.Is(err, context.DeadlineExceeded):
		kind = KindTimeout
	case errors.Is(err, context.Canceled):
		kind = KindCanceled
	case errors.As(err, &spe):
		if spe.Kind == storage.PageCorrupt {
			kind = KindCorrupt
		} else {
			kind = KindIO
		}
	default:
		var t interface{ Timeout() bool }
		if errors.As(err, &t) && t.Timeout() {
			kind = KindTimeout
		}
	}
	return &Error{Kind: kind, Op: op, Path: path, Err: err}
}
