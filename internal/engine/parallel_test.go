package engine

import (
	"context"
	"testing"

	"pathdb/internal/bench"
	"pathdb/internal/core"
	"pathdb/internal/stats"
)

// TestParallelCostsMatchSequential asserts the determinism contract of the
// parallel engine: with a warm buffer, each query's private virtual clock
// (Result.CostV) is bit-identical whether the gang runs on one worker or
// eight, and equal to a solo baseline of the same query on a private view.
func TestParallelCostsMatchSequential(t *testing.T) {
	wl := bench.NewWorkload(bench.Config{EntityScale: 0.1, Seed: 7})
	st, dict := wl.Store(0.1)
	st.SetBufferCapacity(1 << 14) // hold the whole document
	defer st.SetBufferCapacity(wl.Config().BufferPages)

	type spec struct {
		src   string
		strat core.Strategy
	}
	// Exactly one Schedule member: a single batchable query is demoted to
	// solo, so every member runs on its own plan and the solo baseline is
	// the exact expected cost.
	specs := []spec{
		{srcQ6, core.StrategySchedule},
		{srcQ6, core.StrategySimple},
		{srcQ7a, core.StrategyScan},
		{srcQ7b, core.StrategySimple},
		{srcQ7c, core.StrategyScan},
		{srcQ15, core.StrategySimple},
		{srcQ15, core.StrategyScan},
		{srcQ7a, core.StrategySimple},
	}

	// Warm every working set on the base store.
	for _, sp := range specs {
		core.BuildPlan(st, parsePath(t, dict, sp.src), st.Roots(), sp.strat, core.PlanOptions{}).Run()
	}

	// Solo baseline: each query on a private view with a fresh ledger.
	base := make([]stats.Ticks, len(specs))
	for i, sp := range specs {
		view := st.Reader(stats.NewLedger())
		core.BuildPlan(view, parsePath(t, dict, sp.src), st.Roots(), sp.strat, core.PlanOptions{}).Run()
		base[i] = view.Ledger().Total()
		if base[i] == 0 {
			t.Fatalf("spec %d (%s %v): zero baseline cost", i, sp.src, sp.strat)
		}
	}

	runGang := func(parallel int) []Result {
		t.Helper()
		e := newStoppedEngine(st, Config{MaxInFlight: len(specs), QueueDepth: len(specs), Parallel: parallel})
		s := e.NewSession()
		pendings := make([]*Pending, len(specs))
		for i, sp := range specs {
			p, err := s.TrySubmit(context.Background(), Query{
				Label:    sp.src,
				Path:     parsePath(t, dict, sp.src),
				Strategy: sp.strat,
			})
			if err != nil {
				t.Fatalf("parallel=%d submit %d: %v", parallel, i, err)
			}
			pendings[i] = p
		}
		e.execute(e.gather(<-e.queue))
		out := make([]Result, len(specs))
		for i, p := range pendings {
			res, err := p.Wait(context.Background())
			if err != nil {
				t.Fatalf("parallel=%d query %d: %v", parallel, i, err)
			}
			out[i] = res
		}
		return out
	}

	serial := runGang(1)
	wide := runGang(8)
	for i, sp := range specs {
		for _, r := range []struct {
			name string
			res  Result
		}{{"parallel=1", serial[i]}, {"parallel=8", wide[i]}} {
			if r.res.IOWaitV != 0 {
				t.Errorf("%s %s %v: IOWaitV %v on a warm buffer, want 0",
					r.name, sp.src, sp.strat, r.res.IOWaitV)
			}
			if r.res.CostV != base[i] {
				t.Errorf("%s %s %v: CostV %v, want solo baseline %v",
					r.name, sp.src, sp.strat, r.res.CostV, base[i])
			}
			if r.res.CostV != r.res.CPUV+r.res.IOWaitV {
				t.Errorf("%s %s %v: CostV %v != CPUV %v + IOWaitV %v",
					r.name, sp.src, sp.strat, r.res.CostV, r.res.CPUV, r.res.IOWaitV)
			}
		}
	}

	// Shared groups: an all-batchable gang splits into different group
	// shapes at different Parallel settings (one group of 6 vs groups of
	// 2—3), but each member's private clock only ever pays for its own
	// work, so per-member costs must not depend on the grouping either.
	sharedSpecs := []string{srcQ6, srcQ7a, srcQ7b, srcQ6, srcQ7a, srcQ7b}
	runSharedGang := func(parallel int) []Result {
		t.Helper()
		e := newStoppedEngine(st, Config{MaxInFlight: len(sharedSpecs), QueueDepth: len(sharedSpecs), Parallel: parallel})
		s := e.NewSession()
		pendings := make([]*Pending, len(sharedSpecs))
		for i, src := range sharedSpecs {
			p, err := s.TrySubmit(context.Background(), Query{
				Label:    src,
				Path:     parsePath(t, dict, src),
				Strategy: core.StrategySchedule,
			})
			if err != nil {
				t.Fatalf("parallel=%d submit %d: %v", parallel, i, err)
			}
			pendings[i] = p
		}
		e.execute(e.gather(<-e.queue))
		out := make([]Result, len(sharedSpecs))
		for i, p := range pendings {
			res, err := p.Wait(context.Background())
			if err != nil {
				t.Fatalf("parallel=%d shared query %d: %v", parallel, i, err)
			}
			if !res.Shared {
				t.Fatalf("parallel=%d shared query %d did not batch", parallel, i)
			}
			out[i] = res
		}
		return out
	}
	sharedSerial := runSharedGang(1)
	sharedWide := runSharedGang(8)
	for i, src := range sharedSpecs {
		if a, b := sharedSerial[i].CostV, sharedWide[i].CostV; a != b {
			t.Errorf("shared member %d (%s): CostV %v at parallel=1, %v at parallel=8", i, src, a, b)
		}
		if w := sharedSerial[i].IOWaitV; w != 0 {
			t.Errorf("shared member %d (%s): IOWaitV %v on a warm buffer, want 0", i, src, w)
		}
	}
}
