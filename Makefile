# CI entry points. `make` runs the full set.
GO ?= go

.PHONY: all build test race vet fmt api-check bench bench-load bench-load-sharded bench-compare bench-compare-sharded bench-json profile test-faults test-txn test-shard fuzz-short clean

all: build fmt vet api-check test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent layers (engine, server, storage, core,
# buffer, vdisk, stats) plus the facade, which exercises the engine end
# to end.
race:
	$(GO) test -race ./internal/engine/... ./internal/server/... ./internal/storage/... ./internal/core/... ./internal/buffer/... ./internal/vdisk/... ./internal/stats/... .

# Go micro-benchmarks with allocation counts (wall-clock; machine
# dependent, unlike the virtual-clock numbers from xbench), plus the
# closed-loop load snapshot.
bench: bench-load
	$(GO) test -bench . -benchmem -count=3 ./...

# Closed-loop load-generator snapshot: writes BENCH_xload.json at the
# repo root with wall+virtual throughput, tail latencies, the engine's
# admission/dispatch counters, and — with the mixed workload below —
# commit latency and WAL flushes per commit (group-commit batching).
# -stream is the default delivery mode: the heavy-tailed mix is replayed
# through cursors, and a dedicated uncontended pass after the closed
# loop records time-to-first-result percentiles alongside the same
# pass's full-drain times (ttfr << drain is the streaming win; under
# the closed loop queue wait would hide it).
bench-load:
	$(GO) run ./cmd/xload -xmark 0.5 -clients 8 -requests 384 \
		-mix q6,q7,q15 -write-frac 0.25 -parallel 8 -stream -pred-compare -json .

# Same closed loop against a 4-shard scatter-gather cluster: writes
# BENCH_xload_sharded.json with per-shard throughput alongside the
# aggregate, so scale-out is part of the tracked trajectory.
bench-load-sharded:
	$(GO) run ./cmd/xload -xmark 0.5 -shards 4 -clients 8 -requests 384 \
		-mix q6,q7,q15 -write-frac 0.25 -parallel 8 -json .

# Allocation regression gate (run by CI): regenerates the load snapshot
# into a scratch directory and fails if allocs/op exceeds the committed
# BENCH_xload.json baseline by more than 10% (plus a small absolute
# slack for pool warm-up jitter). Allocs/op is workload-determined, not
# machine-speed-determined, so this gates code changes without flaking
# on hardware; wall-clock throughput is printed for context only.
# TTFR is gated loosely (2x) — it is wall-clock and machine dependent,
# so only order-of-magnitude regressions (streaming silently degrading
# to buffer-then-replay) should trip CI.
bench-compare:
	@rm -rf bench-cmp && mkdir -p bench-cmp
	$(GO) run ./cmd/xload -xmark 0.5 -clients 8 -requests 384 \
		-mix q6,q7,q15 -write-frac 0.25 -parallel 8 -stream -json bench-cmp
	$(GO) run ./cmd/benchgate -old BENCH_xload.json \
		-new bench-cmp/BENCH_xload.json -max-alloc-regress 0.10 \
		-max-ttfr-regress 1.0
	@rm -rf bench-cmp

# Sharded counterpart of bench-compare: regenerates the 4-shard snapshot
# and gates allocs/op against the committed BENCH_xload_sharded.json
# (benchgate refuses to compare snapshots at different shard counts).
bench-compare-sharded:
	@rm -rf bench-cmp-sharded && mkdir -p bench-cmp-sharded
	$(GO) run ./cmd/xload -xmark 0.5 -shards 4 -clients 8 -requests 384 \
		-mix q6,q7,q15 -write-frac 0.25 -parallel 8 -json bench-cmp-sharded
	$(GO) run ./cmd/benchgate -old BENCH_xload_sharded.json \
		-new bench-cmp-sharded/BENCH_xload_sharded.json -max-alloc-regress 0.10
	@rm -rf bench-cmp-sharded

# CPU + heap profiles of the load workload, for digging into hot-path
# regressions bench-compare flags: `go tool pprof profiles/cpu.pprof`.
profile: PROFILES ?= profiles
profile:
	@mkdir -p $(PROFILES)
	$(GO) run ./cmd/xload -xmark 0.5 -clients 8 -requests 384 \
		-mix q6,q7,q15 -write-frac 0.25 -parallel 8 \
		-cpuprofile $(PROFILES)/cpu.pprof -memprofile $(PROFILES)/heap.pprof

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Public-surface gate: fails when the exported API of the root pathdb
# package drifts from the committed API_pathdb.txt baseline. Intended
# changes are landed by committing the regenerated baseline:
# `go run ./cmd/apigate -update`.
api-check:
	$(GO) run ./cmd/apigate

# Transaction subsystem: WAL/group-commit/recovery unit tests and the
# seeded crash matrix (internal/txn), the facade's mixed read/write
# gauntlet (snapshot isolation + goroutine-leak check), and the HTTP
# update path, all under -race.
test-txn:
	$(GO) test -race ./internal/txn/
	$(GO) test -race -run 'TestUpdate|TestQueryChoice' ./internal/server/ .

# Sharding subsystem: ring placement/skew/degradation, the split
# invariants, the scatter-gather coordinator, and the HTTP router
# (labeled metrics, quotas, degraded partials), all under -race.
test-shard:
	$(GO) test -race ./internal/shard/
	$(GO) test -race -run 'TestShardSplit|TestCompareDocOrder' .
	$(GO) test -race -run 'TestRouter|TestSharded' ./internal/server/

# Fault matrix: seeded fault-plane sweeps under -race. Covers the
# device schedule itself (vdisk), retry/poison fanout (buffer),
# checksum escalation (storage), per-query gang isolation at 1%/5%/20%
# read-fault rates (engine), the typed facade (pathdb), the HTTP
# mapping (server), and the randomized WAL crash-point recovery sweep.
test-faults:
	$(GO) test -race -run 'Fault|Corrupt|Retry|Poison|Crash' \
		./internal/vdisk/ ./internal/buffer/ ./internal/storage/ \
		./internal/engine/ ./internal/server/ .

# Short fuzz pass over every parser that consumes untrusted or
# pre-checksum bytes: the XML scanner, the XPath parser, and the WAL
# header decoder on the recovery path. `go test -fuzz` takes one
# target per invocation, hence the three runs.
fuzz-short: FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmlparse/
	$(GO) test -run '^$$' -fuzz FuzzParsePath -fuzztime $(FUZZTIME) ./internal/xpath/
	$(GO) test -run '^$$' -fuzz FuzzDecodeWalHeader -fuzztime $(FUZZTIME) ./internal/storage/

# Machine-readable benchmark snapshot (BENCH_*.json) for tracking the
# performance trajectory across commits. Slow: full evaluation.
bench-json:
	$(GO) run ./cmd/xbench -json bench-out

clean:
	rm -rf bench-out bench-cmp profiles
