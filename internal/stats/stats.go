// Package stats provides the virtual clock and the cost ledger shared by
// the storage, buffer and algebra layers.
//
// The paper's evaluation reports total execution time and CPU time of plans
// running against a real disk (Linux, O_DIRECT). We do not have the authors'
// testbed, so the repository runs against a simulated disk with a calibrated
// cost model (package vdisk). All layers charge their work to a single
// Ledger in virtual nanoseconds: CPU work advances the clock directly, I/O
// completions advance it when the query has to block, and asynchronous I/O
// that finishes while the CPU is busy costs no wall time at all — exactly
// the overlap effect the XSchedule operator exploits (Sec. 3.7, 5.3.4).
package stats

import "fmt"

// Ticks is a duration or instant in virtual nanoseconds.
type Ticks int64

// Common tick units.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1000
	Millisecond Ticks = 1000 * 1000
	Second      Ticks = 1000 * 1000 * 1000
)

// Seconds converts ticks to float seconds (for reporting).
func (t Ticks) Seconds() float64 { return float64(t) / float64(Second) }

// String renders ticks with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Counters aggregates event counts from all layers.
type Counters struct {
	PageReads    int64 // pages transferred from disk
	SeqPageReads int64 // of which sequential (scan) reads
	PageWrites   int64
	Seeks        int64 // repositioning operations
	SeekDistance int64 // total page distance sought across

	BufferHits   int64
	BufferMisses int64
	HashLookups  int64 // buffer-manager hash-table probes
	Evictions    int64

	Swizzles   int64 // NodeID -> pointer conversions
	Unswizzles int64 // pointer -> NodeID conversions

	NodesVisited int64 // navigation primitive node touches
	TuplesMoved  int64 // path instances passed between operators
	SetInserts   int64 // R/S set maintenance
	SetLookups   int64

	AsyncSubmitted int64
	AsyncCompleted int64

	ClustersVisited int64 // distinct cluster activations by I/O operators
	SpecInstances   int64 // speculative left-incomplete instances created
	FallbackEvents  int64 // low-memory fallback activations
}

// Ledger is the virtual clock plus counters. It is not safe for concurrent
// use; each query evaluation owns one.
type Ledger struct {
	Now    Ticks // current virtual time
	CPU    Ticks // total CPU ticks charged
	IOWait Ticks // total time spent blocked on I/O
	Counters
}

// NewLedger returns a zeroed ledger.
func NewLedger() *Ledger { return &Ledger{} }

// AdvanceCPU charges t ticks of CPU work, advancing the clock.
func (l *Ledger) AdvanceCPU(t Ticks) {
	if t < 0 {
		panic("stats: negative CPU charge")
	}
	l.Now += t
	l.CPU += t
}

// BlockUntil advances the clock to at least t, accounting the gap as I/O
// wait. A t in the past is a no-op (the I/O had already completed while the
// CPU was busy).
func (l *Ledger) BlockUntil(t Ticks) {
	if t <= l.Now {
		return
	}
	l.IOWait += t - l.Now
	l.Now = t
}

// Total returns the total elapsed virtual time.
func (l *Ledger) Total() Ticks { return l.Now }

// CPUFraction returns CPU/Total, or 0 for an empty ledger.
func (l *Ledger) CPUFraction() float64 {
	if l.Now == 0 {
		return 0
	}
	return float64(l.CPU) / float64(l.Now)
}

// Reset zeroes the ledger for reuse.
func (l *Ledger) Reset() { *l = Ledger{} }

// Snapshot returns a copy of the ledger's current state.
func (l *Ledger) Snapshot() Ledger { return *l }

// Sub returns the difference l - base, for measuring a phase that started at
// the base snapshot.
func (l *Ledger) Sub(base Ledger) Ledger {
	d := *l
	d.Now -= base.Now
	d.CPU -= base.CPU
	d.IOWait -= base.IOWait
	d.PageReads -= base.PageReads
	d.SeqPageReads -= base.SeqPageReads
	d.PageWrites -= base.PageWrites
	d.Seeks -= base.Seeks
	d.SeekDistance -= base.SeekDistance
	d.BufferHits -= base.BufferHits
	d.BufferMisses -= base.BufferMisses
	d.HashLookups -= base.HashLookups
	d.Evictions -= base.Evictions
	d.Swizzles -= base.Swizzles
	d.Unswizzles -= base.Unswizzles
	d.NodesVisited -= base.NodesVisited
	d.TuplesMoved -= base.TuplesMoved
	d.SetInserts -= base.SetInserts
	d.SetLookups -= base.SetLookups
	d.AsyncSubmitted -= base.AsyncSubmitted
	d.AsyncCompleted -= base.AsyncCompleted
	d.ClustersVisited -= base.ClustersVisited
	d.SpecInstances -= base.SpecInstances
	d.FallbackEvents -= base.FallbackEvents
	return d
}

// String summarizes the ledger for logs and the cost report of cmd/xpathq.
func (l *Ledger) String() string {
	return fmt.Sprintf(
		"total=%v cpu=%v (%.0f%%) iowait=%v reads=%d (seq=%d) seeks=%d dist=%d hits=%d misses=%d spec=%d",
		l.Now, l.CPU, 100*l.CPUFraction(), l.IOWait,
		l.PageReads, l.SeqPageReads, l.Seeks, l.SeekDistance,
		l.BufferHits, l.BufferMisses, l.SpecInstances)
}
