// The paper's running example, executable: the four-cluster document of
// Fig. 2/3/5, the query /A//B from context d1, and both plan families.
//
//   - The XSchedule plan (Example 6 / Fig. 6) visits only clusters d, a
//     and c — cluster b is never loaded because node d4 fails the node
//     test A, so the border below it is never produced as an XStep result.
//   - The XScan plan (Example 7 / Fig. 8) reads the clusters in physical
//     order a, b, c, d, creates speculative left-incomplete path instances
//     in a and c, and merges them into the results a3 and c4 when the scan
//     finally reaches the context cluster d.
package main

import (
	"fmt"
	"log"

	"pathdb/internal/core"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

func main() {
	dict := xmltree.NewDictionary()
	A, B := dict.Intern("A"), dict.Intern("B")

	// Logical tree (Fig. 2): context d1 with two A children whose B
	// descendants are the results, plus a C child shielding cluster b.
	doc := xmltree.NewDocument()
	d1 := xmltree.NewElement(dict.Intern("R"))
	doc.AppendChild(d1)
	a2 := xmltree.NewElement(A)
	d1.AppendChild(a2)
	a3 := xmltree.NewElement(B)
	a2.AppendChild(a3)
	d4 := xmltree.NewElement(dict.Intern("C"))
	d1.AppendChild(d4)
	b2 := xmltree.NewElement(dict.Intern("X"))
	d4.AppendChild(b2)
	c2 := xmltree.NewElement(A)
	d1.AppendChild(c2)
	c4 := xmltree.NewElement(B)
	c2.AppendChild(c4)

	// Physical clusters (Fig. 3), pages in the scan order of Fig. 8:
	// a=1, b=2, c=3, d=4.
	assign := func(n *xmltree.Node) int {
		switch n {
		case a2, a3:
			return 0
		case b2:
			return 1
		case c2, c4:
			return 2
		default:
			return 3
		}
	}
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 512)
	st, err := storage.ImportManual(disk, dict, doc, assign, storage.ImportOptions{PageSize: 512})
	if err != nil {
		log.Fatal(err)
	}

	// /A//B with the paper's two-step reading.
	path := []xpath.Step{
		{Axis: xpath.Child, Test: xpath.NameTest(A)},
		{Axis: xpath.Descendant, Test: xpath.NameTest(B)},
	}
	// Resolve the context node d1.
	ctx := core.BuildPlan(st, []xpath.Step{{Axis: xpath.Child, Test: xpath.Wildcard()}},
		[]storage.NodeID{st.Root()}, core.StrategySimple, core.PlanOptions{}).Run()[0].Node

	clusterName := map[vdisk.PageID]string{1: "a", 2: "b", 3: "c", 4: "d"}
	run := func(name string, strat core.Strategy) {
		st.ResetForRun()
		st.Disk().SetTrace(true)
		plan := core.BuildPlan(st, path, []storage.NodeID{ctx}, strat, core.PlanOptions{})
		rs := plan.Run()
		led := st.Ledger()
		fmt.Printf("%s plan for /A//B from d1:\n", name)
		for _, r := range rs {
			fmt.Printf("  result %s at NodeID %v (cluster %s)\n",
				dict.Name(st.Swizzle(r.Node).Tag()), r.Node, clusterName[r.Node.Page()])
		}
		order := ""
		for _, ev := range st.Disk().Trace() {
			if order != "" {
				order += " → "
			}
			order += clusterName[ev.Page] + " (" + ev.Op + ")"
		}
		fmt.Printf("  physical access order: %s\n", order)
		fmt.Printf("  clusters visited: %d, page reads: %d (sequential %d), async: %d, speculative instances: %d\n",
			led.ClustersVisited, led.PageReads, led.SeqPageReads, led.AsyncSubmitted, led.SpecInstances)
		fmt.Printf("  cluster b (page 2) loaded: %v\n\n", st.Loaded(2))
		st.Disk().SetTrace(false)
	}

	run("XSchedule (Example 6)", core.StrategySchedule)
	run("XScan (Example 7)", core.StrategyScan)
}
