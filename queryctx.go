package pathdb

import (
	"context"
	"sort"

	"pathdb/internal/core"
	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
)

// QueryCtx evaluates an absolute location path (or a '|' union of paths)
// directly on the DB — the one-shot, engine-free counterpart of
// Session.Do, sharing its QueryOptions. The context cancels or deadlines
// the evaluation at the next operator poll point; page faults raised by
// the fault plane surface as the typed *Error (KindIO or KindCorrupt)
// instead of a panic.
//
// QueryCtx is not safe for use concurrently with other queries on the
// same DB (it runs on the volume's own clock); use an Engine for
// concurrent execution.
func (db *DB) QueryCtx(ctx context.Context, path string, opts QueryOptions) (res ExecResult, err error) {
	branches, err := xpathParseUnion(db, path)
	if err != nil {
		return ExecResult{}, err
	}
	ctx, cancel := opts.context(ctx)
	defer cancel()
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := storage.AsPageFault(r); ok {
				res, err = ExecResult{}, wrapErr("query", path, pe)
				return
			}
			panic(r)
		}
	}()

	led := db.store.Ledger()
	start := led.Snapshot()
	arena := core.GetArena()
	defer core.PutArena(arena)
	popts := core.PlanOptions{MemLimit: opts.MemLimit, Ctx: ctx, Arena: arena,
		PredEval: opts.PredEval.internal()}

	strat := opts.Strategy
	out := ExecResult{Strategy: strat}
	var all []core.Result
	if len(branches) == 1 {
		if strat == Auto {
			c := db.getChooser().Choose(branches[0])
			strat = fromCore(c.Strategy)
			out.Strategy = strat
			pc := fromPlanChoice(c)
			out.Choice = &pc
			if popts.PredEval == core.PredAuto {
				popts.PredEval = c.PredEval
			}
		} else if popts.PredEval == core.PredAuto && hasPredicates(branches[0]) {
			popts.PredEval = db.getChooser().Choose(branches[0]).PredEval
		}
		popts.SortResults = opts.Sorted
		all = core.BuildPlan(db.store, branches[0], db.store.Roots(), strat.internal(), popts).Run()
	} else {
		if strat == Auto {
			strat = Schedule
			out.Strategy = Schedule
		}
		if strat == Schedule {
			queries := make([]core.MultiQuery, len(branches))
			for i, b := range branches {
				queries[i] = core.MultiQuery{Path: b, Contexts: db.store.Roots()}
				if popts.PredEval == core.PredAuto && hasPredicates(b) {
					queries[i].PredEval = db.getChooser().Choose(b).PredEval
				}
			}
			for _, rs := range core.BuildMultiPlan(db.store, queries, popts).Run() {
				all = append(all, rs...)
			}
			out.Shared = true
		} else {
			for _, b := range branches {
				bopts := popts
				if bopts.PredEval == core.PredAuto && hasPredicates(b) {
					bopts.PredEval = db.getChooser().Choose(b).PredEval
				}
				p := core.BuildPlan(db.store, b, db.store.Roots(), strat.internal(), bopts)
				all = append(all, p.Run()...)
			}
		}
		// Union semantics: a node set.
		seen := make(map[storage.NodeID]bool, len(all))
		dedup := all[:0]
		for _, r := range all {
			if seen[r.Node] {
				continue
			}
			seen[r.Node] = true
			dedup = append(dedup, r)
		}
		all = dedup
		if opts.Sorted {
			sort.Slice(all, func(i, j int) bool {
				return ordpath.Compare(all[i].Ord, all[j].Ord) < 0
			})
		}
	}

	// A cancelled plan ends its result stream early rather than erroring;
	// surface the context failure as the typed taxonomy error.
	if cerr := ctx.Err(); cerr != nil {
		return ExecResult{}, wrapErr("query", path, cerr)
	}

	if opts.Limit > 0 && len(all) > opts.Limit {
		all = all[:opts.Limit]
	}
	end := led.Snapshot()
	out.CostV = end.Now - start.Now
	out.CPUV = end.CPU - start.CPU
	out.IOWaitV = end.IOWait - start.IOWait
	out.VirtualLatency = out.CostV
	out.Gang = 1
	out.Nodes = make([]Node, len(all))
	for i, r := range all {
		out.Nodes[i] = Node{db: db, id: r.Node}
	}
	return out, nil
}

// FaultConfig arms the DB's deterministic fault plane — the facade over
// the simulated disk's seeded per-operation fault schedule. Probabilities
// are per page read; the zero value disarms all faults. Identical seeds
// reproduce identical fault sequences, so failing runs replay exactly.
type FaultConfig struct {
	// Seed drives the fault plane's private RNG.
	Seed uint64
	// ReadError is the probability a read fails with a transient I/O
	// error (storage retries with backoff before escalating to KindIO).
	ReadError float64
	// Corrupt is the probability a read returns a torn page image
	// (caught by checksum verification; persistent damage escalates to
	// KindCorrupt).
	Corrupt float64
	// Latency is the probability a read is delayed by Spike.
	Latency float64
	// Spike is the added virtual latency per spike (default 5ms).
	Spike stats.Ticks
}

// SetFaults arms (or, with the zero FaultConfig, disarms) fault injection
// on the DB's simulated disk. Call between queries, not concurrently with
// them.
func (db *DB) SetFaults(f FaultConfig) {
	db.store.Disk().SetFaults(vdisk.Faults{
		Seed:      f.Seed,
		ReadError: f.ReadError,
		Corrupt:   f.Corrupt,
		Latency:   f.Latency,
		Spike:     f.Spike,
	})
}
