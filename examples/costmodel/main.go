// Cost-based operator choice (the paper's outlook, Sec. 7): the chooser
// estimates each query's physical coverage from offline tag statistics and
// picks XScan for low-selectivity paths and XSchedule for selective ones.
// The example prints the decision and then verifies it by measuring both.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

func main() {
	db, err := pathdb.GenerateXMark(
		pathdb.XMarkConfig{ScaleFactor: 1, Seed: 7, EntityScale: 0.05},
		pathdb.Options{BufferPages: 100},
	)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"/site//description", // touches nearly everything -> scan
		"/site/closed_auctions/closed_auction/annotation/description" +
			"/parlist/listitem/parlist/listitem/text/emph/keyword", // selective -> schedule
		"/site/regions//item",              // near the crossover
		"/site/people/person/emailaddress", // selective child chain
	}

	for _, src := range queries {
		q, err := db.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n", src, q.Explain())

		// Verify against measurement.
		measure := func(s pathdb.Strategy) float64 {
			db.ResetStats()
			qq, _ := db.Query(src)
			qq.WithStrategy(s).Count()
			return db.CostReport().Total.Seconds()
		}
		sched, scan := measure(pathdb.Schedule), measure(pathdb.Scan)
		winner := "xschedule"
		if scan < sched {
			winner = "xscan"
		}
		fmt.Printf("  measured: xschedule %.2fs, xscan %.2fs -> %s wins\n\n", sched, scan, winner)
	}
}
