package stats

import (
	"sync"
	"testing"
)

// TestConcurrentMutation hammers one ledger from many goroutines — the
// sharing pattern of the concurrent engine, where a gang of queries charges
// work to a single volume ledger while monitors snapshot it. Run under
// -race; the count assertions also catch lost updates.
func TestConcurrentMutation(t *testing.T) {
	l := NewLedger()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.AdvanceCPU(Microsecond)
				Inc(&l.PageReads)
				Add(&l.SeekDistance, 3)
				l.BlockUntil(Ticks(i) * Millisecond)
			}
		}(w)
	}
	// Concurrent readers.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := l.Snapshot()
			if s.Now < s.CPU {
				t.Error("snapshot: Now < CPU")
				return
			}
			_ = l.Total()
			_ = l.CPUFraction()
			_ = l.String()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := l.PageReads; got != workers*iters {
		t.Fatalf("PageReads = %d, want %d (lost updates)", got, workers*iters)
	}
	if got := l.SeekDistance; got != 3*workers*iters {
		t.Fatalf("SeekDistance = %d, want %d", got, 3*workers*iters)
	}
	if l.CPU != Ticks(workers*iters)*Microsecond {
		t.Fatalf("CPU = %v", l.CPU)
	}
	// Now = CPU + IOWait must hold exactly: every forward tick is either
	// charged CPU or attributed to IOWait once by the BlockUntil CAS loop.
	if l.Now != l.CPU+l.IOWait {
		t.Fatalf("clock identity violated: now=%v cpu=%v iowait=%v", l.Now, l.CPU, l.IOWait)
	}
}

func TestBlockUntilConcurrentIdentity(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.BlockUntil(Ticks((i*4 + w)) * Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if l.Now != l.IOWait {
		t.Fatalf("pure-wait ledger must have Now == IOWait: now=%v iowait=%v", l.Now, l.IOWait)
	}
}
