package buffer

import (
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

func newPool(t testing.TB, npages, capacity int) (*Manager, *stats.Ledger) {
	led := stats.NewLedger()
	d := vdisk.New(vdisk.DefaultCostModel(), led, 256)
	for i := 0; i < npages; i++ {
		p := d.Alloc()
		d.Write(p, []byte{byte(i), byte(i >> 8)})
	}
	led.Reset()
	d.ResetClockState()
	return New(d, capacity), led
}

func TestFixReadsCorrectPage(t *testing.T) {
	m, _ := newPool(t, 10, 4)
	for i := 9; i >= 0; i-- {
		f := fix(m, vdisk.PageID(i))
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d data = %d", i, f.Data[0])
		}
		m.Unfix(f)
	}
}

func TestHitAvoidsDisk(t *testing.T) {
	m, led := newPool(t, 10, 4)
	f := fix(m, 3)
	m.Unfix(f)
	reads := led.PageReads
	f = fix(m, 3)
	m.Unfix(f)
	if led.PageReads != reads {
		t.Fatal("hit caused a disk read")
	}
	if led.BufferHits != 1 || led.BufferMisses != 1 {
		t.Fatalf("hits=%d misses=%d", led.BufferHits, led.BufferMisses)
	}
}

func TestLRUEviction(t *testing.T) {
	m, led := newPool(t, 10, 2)
	for i := 0; i < 3; i++ {
		m.Unfix(fix(m, vdisk.PageID(i)))
	}
	// Page 0 is LRU and must be gone; 1 and 2 remain.
	if m.Contains(0) {
		t.Fatal("LRU page not evicted")
	}
	if !m.Contains(1) || !m.Contains(2) {
		t.Fatal("wrong page evicted")
	}
	if led.Evictions != 1 {
		t.Fatalf("evictions = %d", led.Evictions)
	}
}

func TestTouchRefreshesLRU(t *testing.T) {
	m, _ := newPool(t, 10, 2)
	m.Unfix(fix(m, 0))
	m.Unfix(fix(m, 1))
	m.Unfix(fix(m, 0)) // 0 becomes MRU
	m.Unfix(fix(m, 2)) // evicts 1
	if !m.Contains(0) || m.Contains(1) {
		t.Fatal("LRU order not refreshed by hit")
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	m, _ := newPool(t, 10, 2)
	f0 := fix(m, 0)
	f1 := fix(m, 1)
	m.Unfix(fix(m, 2)) // all frames pinned: must overflow, not evict
	if !m.Contains(0) || !m.Contains(1) {
		t.Fatal("pinned page evicted")
	}
	if m.Overflow() == 0 {
		t.Fatal("overflow not recorded")
	}
	m.Unfix(f0)
	m.Unfix(f1)
}

func TestUnfixUnpinnedPanics(t *testing.T) {
	m, _ := newPool(t, 2, 2)
	f := fix(m, 0)
	m.Unfix(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Unfix(f)
}

func TestRequestWaitLoaded(t *testing.T) {
	m, led := newPool(t, 20, 8)
	m.Request(5)
	m.Request(15)
	got := map[vdisk.PageID]bool{}
	for i := 0; i < 2; i++ {
		p, ok, _ := m.WaitLoaded()
		if !ok {
			t.Fatal("WaitLoaded failed")
		}
		got[p] = true
		if !m.Contains(p) {
			t.Fatal("loaded page not in pool")
		}
	}
	if !got[5] || !got[15] {
		t.Fatalf("got %v", got)
	}
	if _, ok, _ := m.WaitLoaded(); ok {
		t.Fatal("WaitLoaded returned a third page")
	}
	if led.AsyncSubmitted != 2 {
		t.Fatalf("async submitted = %d", led.AsyncSubmitted)
	}
}

func TestRequestCachedIsImmediatelyReady(t *testing.T) {
	m, led := newPool(t, 10, 4)
	m.Unfix(fix(m, 7))
	reads := led.PageReads
	m.Request(7)
	p, ok, _ := m.WaitLoaded()
	if !ok || p != 7 {
		t.Fatalf("WaitLoaded = %d, %v", p, ok)
	}
	if led.PageReads != reads {
		t.Fatal("cached request hit the disk")
	}
}

func TestRequestDeduplicated(t *testing.T) {
	m, led := newPool(t, 10, 4)
	m.Request(3)
	m.Request(3)
	if led.AsyncSubmitted != 1 {
		t.Fatalf("duplicate request submitted: %d", led.AsyncSubmitted)
	}
	if p, ok, _ := m.WaitLoaded(); !ok || p != 3 {
		t.Fatalf("WaitLoaded = %d %v", p, ok)
	}
	if _, ok, _ := m.WaitLoaded(); ok {
		t.Fatal("dedup delivered twice")
	}
}

func TestSyncReadSupersedesPending(t *testing.T) {
	m, _ := newPool(t, 10, 4)
	m.Request(3)
	m.Unfix(fix(m, 3)) // sync read wins the race
	// The async completion may still surface, but must terminate cleanly.
	for {
		_, ok, _ := m.WaitLoaded()
		if !ok {
			break
		}
	}
	if m.OutstandingRequests() != 0 {
		t.Fatal("requests left outstanding")
	}
}

func TestWaitLoadedEmpty(t *testing.T) {
	m, _ := newPool(t, 5, 2)
	if _, ok, _ := m.WaitLoaded(); ok {
		t.Fatal("WaitLoaded on empty queue succeeded")
	}
}

func TestFlushAll(t *testing.T) {
	m, _ := newPool(t, 10, 4)
	m.Unfix(fix(m, 1))
	m.Unfix(fix(m, 2))
	m.FlushAll()
	if m.Len() != 0 || m.Contains(1) {
		t.Fatal("FlushAll incomplete")
	}
}

func TestFlushAllPinnedPanics(t *testing.T) {
	m, _ := newPool(t, 10, 4)
	fix(m, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.FlushAll()
}

func TestCapacityNeverExceededWhenUnpinned(t *testing.T) {
	f := func(seed uint64) bool {
		m, _ := newPool(t, 64, 8)
		r := rng.New(seed)
		for i := 0; i < 200; i++ {
			fr := fix(m, vdisk.PageID(r.Intn(64)))
			m.Unfix(fr)
			if m.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrityUnderChurn(t *testing.T) {
	f := func(seed uint64) bool {
		m, _ := newPool(t, 32, 4)
		r := rng.New(seed)
		for i := 0; i < 300; i++ {
			p := vdisk.PageID(r.Intn(32))
			fr := fix(m, p)
			if fr.Data[0] != byte(p) || fr.Data[1] != byte(p>>8) {
				return false
			}
			m.Unfix(fr)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncRequestsOverlapWithCPU(t *testing.T) {
	m, led := newPool(t, 100, 50)
	for i := 0; i < 10; i++ {
		m.Request(vdisk.PageID(i * 7))
	}
	led.AdvanceCPU(stats.Ticks(10) * 100 * stats.Millisecond)
	waitBefore := led.IOWait
	for {
		if _, ok, _ := m.WaitLoaded(); !ok {
			break
		}
	}
	if led.IOWait != waitBefore {
		t.Fatalf("fully overlapped async work charged %v wait", led.IOWait-waitBefore)
	}
}

func BenchmarkFixHit(b *testing.B) {
	m, _ := newPool(b, 4, 4)
	m.Unfix(fix(m, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Unfix(fix(m, 0))
	}
}

func TestEvictHandlerFires(t *testing.T) {
	m, _ := newPool(t, 10, 2)
	var evicted []vdisk.PageID
	m.SetEvictHandler(func(p vdisk.PageID) { evicted = append(evicted, p) })
	for i := 0; i < 3; i++ {
		m.Unfix(fix(m, vdisk.PageID(i)))
	}
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evicted = %v, want [0]", evicted)
	}
	m.FlushAll()
	if len(evicted) != 3 {
		t.Fatalf("FlushAll notified %d evictions, want 3 total", len(evicted))
	}
}

func TestInvalidateDropsFrame(t *testing.T) {
	m, led := newPool(t, 10, 4)
	m.Unfix(fix(m, 3))
	m.Invalidate(3)
	if m.Contains(3) {
		t.Fatal("page survived invalidation")
	}
	m.Invalidate(3) // absent: no-op
	reads := led.PageReads
	m.Unfix(fix(m, 3))
	if led.PageReads != reads+1 {
		t.Fatal("invalidated page served from cache")
	}
}

func TestInvalidatePinnedPanics(t *testing.T) {
	m, _ := newPool(t, 10, 4)
	fix(m, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Invalidate(2)
}

// fix is the test shorthand for a Fix that must succeed.
func fix(m *Manager, p vdisk.PageID) *Frame {
	f, err := m.Fix(p)
	if err != nil {
		panic(err)
	}
	return f
}
