package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"pathdb"
	"pathdb/internal/shard"
)

// openStream POSTs req to url negotiating NDJSON and returns the live
// response (caller closes Body).
func openStream(t *testing.T, url string, req QueryRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream drains an NDJSON response into node lines plus the trailing
// summary, which must be present and last.
func readStream(t *testing.T, body io.Reader) ([]NodeJSON, StreamSummaryJSON) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var nodes []NodeJSON
	var sum StreamSummaryJSON
	sawSum := false
	for sc.Scan() {
		if sawSum {
			t.Fatalf("line after the summary record: %s", sc.Bytes())
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Bytes())
		}
		if probe.Summary {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			sawSum = true
			continue
		}
		var n NodeJSON
		if err := json.Unmarshal(sc.Bytes(), &n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSum {
		t.Fatalf("stream ended without a summary line (%d nodes)", len(nodes))
	}
	return nodes, sum
}

// drainShutdown tears down a hand-built server and asserts the goroutine
// count settles back to the pre-construction baseline.
func drainShutdown(t *testing.T, ts *httptest.Server, shut func(context.Context) error, baseline int) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := shut(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
			g, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// The streamed node sequence must be identical — same IDs, same order —
// to the buffered /v1/query response for the same sorted query.
func TestStreamQueryMatchesBuffered(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{MaxNodes: 1 << 20})

	// Buffered mode echoes min(limit, MaxNodes) nodes; ask for everything.
	resp, data := postQuery(t, ts.URL, QueryRequest{Path: itemQuery, Sorted: true, Limit: 1 << 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", resp.StatusCode, data)
	}
	want := decodeResponse(t, data)
	if len(want.Nodes) == 0 || len(want.Nodes) != want.Count {
		t.Fatalf("buffered fixture unusable: %d nodes of count %d", len(want.Nodes), want.Count)
	}

	sresp := openStream(t, ts.URL, QueryRequest{Path: itemQuery, Sorted: true})
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != ndjsonType {
		t.Fatalf("Content-Type %q, want %q", ct, ndjsonType)
	}
	nodes, sum := readStream(t, sresp.Body)
	if len(nodes) != len(want.Nodes) {
		t.Fatalf("streamed %d nodes, buffered %d", len(nodes), len(want.Nodes))
	}
	for i := range nodes {
		if nodes[i].ID != want.Nodes[i].ID || nodes[i].Ord != want.Nodes[i].Ord {
			t.Fatalf("node %d differs: streamed %+v, buffered %+v", i, nodes[i], want.Nodes[i])
		}
	}
	if sum.Count != want.Count {
		t.Fatalf("summary count %d, buffered %d", sum.Count, want.Count)
	}
	if sum.Error != "" || sum.Kind != "" {
		t.Fatalf("clean stream carries error %q/%q", sum.Error, sum.Kind)
	}
	if sum.Strategy == "" || sum.Strategy == "auto" {
		t.Fatalf("summary strategy %q unresolved", sum.Strategy)
	}
}

// The request's limit truncates production in stream mode: exactly N node
// lines, truncated flagged, count N.
func TestStreamQueryLimit(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	resp := openStream(t, ts.URL, QueryRequest{Path: itemQuery, Sorted: true, Limit: 5})
	defer resp.Body.Close()
	nodes, sum := readStream(t, resp.Body)
	if len(nodes) != 5 || sum.Count != 5 || !sum.Truncated {
		t.Fatalf("limited stream: %d nodes, count %d, truncated %v; want 5/5/true",
			len(nodes), sum.Count, sum.Truncated)
	}
}

// A storage fault mid-stream is reported in-band: HTTP 200 (the status
// line is long gone), node lines stop, and the trailing summary carries
// the typed kind; the server's io-error counter moves.
func TestStreamQueryFaultInBand(t *testing.T) {
	db := newTestDB(t, 0.1)
	srv, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})
	db.SetFaults(pathdb.FaultConfig{Seed: 3, ReadError: 1})
	defer db.SetFaults(pathdb.FaultConfig{})

	resp := openStream(t, ts.URL, QueryRequest{Path: itemQuery, Strategy: "xschedule"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200 with in-band failure", resp.StatusCode)
	}
	_, sum := readStream(t, resp.Body)
	if sum.Error == "" || (sum.Kind != "io" && sum.Kind != "corrupt") {
		t.Fatalf("summary error %q kind %q, want in-band io/corrupt", sum.Error, sum.Kind)
	}
	if srv.ioErrors.Load() == 0 {
		t.Fatal("in-band fault did not move the io error counter")
	}
}

// A client that disconnects mid-stream cancels the query server-side: the
// handler stops pulling the cursor, the disconnect is counted, and no
// goroutine outlives the teardown (run with -race).
func TestStreamClientDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db := newTestDB(t, 0.5)
	eng := db.NewEngine(pathdb.EngineConfig{MaxInFlight: 2})
	db.ResetStats()
	srv := New(db, eng, Options{})
	ts := httptest.NewServer(srv)

	// Unsorted streams are live, but a warm-cache result can land entirely
	// in socket buffers before the hang-up is visible server-side, in which
	// case the handler legitimately finishes without a failed write. As in
	// the router-mode test below, an attempt that loses that race is
	// retried: keep hanging up after k lines until three disconnects were
	// provably noticed mid-stream.
	deadline := time.Now().Add(15 * time.Second)
	for k := 0; srv.gone.Load() < 3 && time.Now().Before(deadline); k = (k + 1) % 3 {
		resp := openStream(t, ts.URL, QueryRequest{Path: descQuery})
		sc := bufio.NewScanner(resp.Body)
		for i := 0; i <= k && sc.Scan(); i++ {
		}
		resp.Body.Close() // hang up mid-stream
		time.Sleep(2 * time.Millisecond)
	}
	if g := srv.gone.Load(); g < 3 {
		t.Fatalf("client_gone = %d after repeated mid-stream disconnects", g)
	}

	drainShutdown(t, ts, srv.Shutdown, baseline)
}

// Legacy unversioned endpoints answer a Deprecation header pointing at
// their /v1 successor; the /v1 mounts answer none.
func TestDeprecationHeaders(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	body, _ := json.Marshal(QueryRequest{Path: itemQuery})
	legacy, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, legacy.Body)
	legacy.Body.Close()
	if legacy.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy /query missing Deprecation header")
	}
	if link := legacy.Header.Get("Link"); link != `</v1/query>; rel="successor-version"` {
		t.Fatalf("legacy /query Link = %q", link)
	}

	v1, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, v1.Body)
	v1.Body.Close()
	if v1.Header.Get("Deprecation") != "" {
		t.Fatal("/v1/query must not be deprecated")
	}

	for _, name := range []string{"metrics", "healthz"} {
		resp, err := http.Get(ts.URL + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("legacy /%s missing Deprecation header", name)
		}
	}
}

// Router mode: the streamed NDJSON sequence must match the buffered
// router response node for node — same global document order, same shard
// attribution — with the cluster summary in the trailing record.
func TestRouterStreamMatchesBuffered(t *testing.T) {
	_, ts := newTestRouter(t, shard.Config{}, 256, shard.QuotaConfig{})

	resp, data := postRouterQuery(t, ts.URL,
		QueryRequest{Path: itemQuery, Sorted: true, Limit: 1000}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", resp.StatusCode, data)
	}
	want := decodeRouterResponse(t, data)
	if len(want.Nodes) == 0 || len(want.Nodes) != want.Count {
		t.Fatalf("buffered fixture unusable: %d nodes of count %d", len(want.Nodes), want.Count)
	}

	sresp := openStream(t, ts.URL, QueryRequest{Path: itemQuery, Sorted: true})
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	nodes, sum := readStream(t, sresp.Body)
	if len(nodes) != len(want.Nodes) {
		t.Fatalf("streamed %d nodes, buffered %d", len(nodes), len(want.Nodes))
	}
	for i := range nodes {
		if nodes[i].ID != want.Nodes[i].ID || nodes[i].Ord != want.Nodes[i].Ord ||
			nodes[i].Shard != want.Nodes[i].Shard {
			t.Fatalf("node %d differs: streamed %+v, buffered %+v", i, nodes[i], want.Nodes[i])
		}
	}
	if sum.Count != want.Count {
		t.Fatalf("summary count %d, buffered %d", sum.Count, want.Count)
	}
	if sum.Partial || len(sum.Degraded) != 0 {
		t.Fatalf("healthy cluster streamed partial/degraded: %+v", sum)
	}
}

// Router mode disconnect: hanging up mid-merge closes every shard cursor
// (the scatter is cancelled) and leaves no goroutines behind.
func TestRouterStreamClientDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cl, err := shard.NewXMark(
		pathdb.XMarkConfig{ScaleFactor: 0.25, Seed: 42, EntityScale: 0.1},
		pathdb.Options{Layout: pathdb.Shuffled, LayoutSeed: 42, BufferPages: 64},
		shard.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, Options{}, shard.QuotaConfig{})
	ts := httptest.NewServer(rt)

	// The merge's per-shard sort barrier means the whole scatter runs
	// before the first byte, so a disconnect is only provably mid-query
	// when it lands during that execution window: cancel the request
	// context while Do is still waiting on headers. An attempt that loses
	// the race (the scatter finished first) is retried.
	body, _ := json.Marshal(QueryRequest{Path: descQuery})
	deadline := time.Now().Add(15 * time.Second)
	for rt.gone.Load() < 3 && time.Now().Before(deadline) {
		ctx, cancel := context.WithCancel(context.Background())
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Accept", "application/x-ndjson")
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.DefaultClient.Do(hreq)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		time.Sleep(3 * time.Millisecond) // let the request reach the handler
		cancel()
		<-done
	}
	if g := rt.gone.Load(); g < 3 {
		t.Fatalf("router client_gone = %d after repeated mid-scatter disconnects", g)
	}

	drainShutdown(t, ts, rt.Shutdown, baseline)
}
