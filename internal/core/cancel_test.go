package core

import (
	"context"
	"testing"

	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// cancelFixture builds a store plus a path with enough results to cancel
// mid-stream.
func cancelFixture(t *testing.T) (*storage.Store, []xpath.Step, []storage.NodeID) {
	t.Helper()
	dict, doc := buildTree(7, 600)
	st := importTree(t, dict, doc, 512, storage.LayoutNatural)
	path := xpath.MustParse(dict, "//b").Simplify().Steps
	return st, path, st.Roots()
}

func TestPlanCancelledMidStream(t *testing.T) {
	for _, strat := range []Strategy{StrategySimple, StrategySchedule, StrategyScan} {
		t.Run(strat.String(), func(t *testing.T) {
			st, path, roots := cancelFixture(t)
			full := BuildPlan(st, path, roots, strat, PlanOptions{}).Run()
			if len(full) < 10 {
				t.Fatalf("fixture too small: %d results", len(full))
			}

			st.ResetForRun()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			p := BuildPlan(st, path, roots, strat, PlanOptions{Ctx: ctx})
			root := p.Root()
			root.Open()
			got := 0
			for {
				_, ok := root.Next()
				if !ok {
					break
				}
				got++
				if got == 5 {
					cancel()
				}
			}
			root.Close()
			st.CancelRequests()
			// Simple plans have no I/O-performing operator polling the
			// context, so only the scheduler/scan strategies truncate; for
			// them the stream must end well short of the full result.
			if strat != StrategySimple && got >= len(full) {
				t.Fatalf("cancellation ignored: got all %d results", got)
			}
			if ctx.Err() == nil {
				t.Fatal("context not cancelled")
			}

			// The volume stays usable: a fresh run returns the full result.
			st.ResetForRun()
			again := BuildPlan(st, path, roots, strat, PlanOptions{}).Run()
			if len(again) != len(full) {
				t.Fatalf("post-cancel run: %d results, want %d", len(again), len(full))
			}
		})
	}
}

func TestPreCancelledPlanEmitsNothing(t *testing.T) {
	st, path, roots := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := BuildPlan(st, path, roots, StrategySchedule, PlanOptions{Ctx: ctx})
	if got := p.Run(); len(got) != 0 {
		t.Fatalf("pre-cancelled plan produced %d results", len(got))
	}
	st.CancelRequests()
}

// TestMultiPlanMemberCancellation: cancelling one member of a shared-
// scheduler gang must not disturb the others' results.
func TestMultiPlanMemberCancellation(t *testing.T) {
	st, path, roots := cancelFixture(t)
	pathC := xpath.MustParse(st.Dict(), "//c").Simplify().Steps

	queries := []MultiQuery{
		{Path: path, Contexts: roots},
		{Path: pathC, Contexts: roots},
	}
	want := BuildMultiPlan(st, queries, PlanOptions{}).Counts()

	st.ResetForRun()
	ctx, cancel := context.WithCancel(context.Background())
	queries[0].Ctx = ctx
	mp := BuildMultiPlan(st, queries, PlanOptions{})
	counts := make([]int, len(queries))
	mp.RunEach(nil, func(i int, r Result) {
		counts[i]++
		if i == 0 && counts[0] == 3 {
			cancel()
		}
	})
	st.CancelRequests()
	if counts[0] >= want[0] {
		t.Fatalf("cancelled member produced full result (%d)", counts[0])
	}
	if counts[1] != want[1] {
		t.Fatalf("surviving member: %d results, want %d", counts[1], want[1])
	}
}
