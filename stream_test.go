package pathdb

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pathdb/internal/storage"
)

// streamIDs drains a cursor and returns the yielded node IDs in order.
func streamIDs(t *testing.T, c *Cursor) []uint64 {
	t.Helper()
	var ids []uint64
	for c.Next() {
		ids = append(ids, c.Node().ID())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return ids
}

func resultIDs(res ExecResult) []uint64 {
	ids := make([]uint64, len(res.Nodes))
	for i, n := range res.Nodes {
		ids[i] = n.ID()
	}
	return ids
}

func sameSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[uint64]int, len(a))
	for _, id := range a {
		set[id]++
	}
	for _, id := range b {
		if set[id] == 0 {
			return false
		}
		set[id]--
	}
	return true
}

func sameSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamMatchesDo: Session.Stream yields exactly Do's node set (and,
// sorted, Do's node sequence), for plain paths and unions.
func TestStreamMatchesDo(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{MaxInFlight: 4})
	defer eng.Close()
	ses := eng.NewSession()

	paths := []string{
		"/site/regions//item",
		"/site//description",
		"/site/people/person/name | /site/regions//item/name",
		"/site//item | /site/regions//item", // overlapping union: dedup matters
	}
	for _, path := range paths {
		for _, sorted := range []bool{false, true} {
			opts := QueryOptions{Sorted: sorted}
			want, err := ses.Do(context.Background(), path, opts)
			if err != nil {
				t.Fatalf("Do(%q): %v", path, err)
			}
			cur, err := ses.Stream(context.Background(), path, opts)
			if err != nil {
				t.Fatalf("Stream(%q): %v", path, err)
			}
			got := streamIDs(t, cur)
			if sorted {
				if !sameSeq(got, resultIDs(want)) {
					t.Errorf("sorted stream of %q: sequence differs from Do (%d vs %d nodes)",
						path, len(got), len(want.Nodes))
				}
			} else if !sameSet(got, resultIDs(want)) {
				t.Errorf("stream of %q: node set differs from Do (%d vs %d nodes)",
					path, len(got), len(want.Nodes))
			}
			if sum, ok := cur.Summary(); !ok {
				t.Errorf("stream of %q: no summary after drain", path)
			} else if sum.Strategy == Auto {
				t.Errorf("stream of %q: summary strategy unresolved", path)
			}
		}
	}
}

// TestStreamLimit: Limit stops production after N nodes; a sorted limited
// stream yields exactly the first N of the full sorted result.
func TestStreamLimit(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	ses := eng.NewSession()

	full, err := ses.Do(context.Background(), itemPath, QueryOptions{Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Nodes) < 10 {
		t.Fatalf("fixture too small: %d items", len(full.Nodes))
	}

	const limit = 7
	cur, err := ses.Stream(context.Background(), itemPath, QueryOptions{Sorted: true, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	got := streamIDs(t, cur)
	if !sameSeq(got, resultIDs(full)[:limit]) {
		t.Fatalf("limited sorted stream: got %d nodes, want the first %d of the sorted result", len(got), limit)
	}

	// Unsorted: the limit caps production without a guaranteed prefix.
	cur, err = ses.Stream(context.Background(), itemPath, QueryOptions{Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if got := streamIDs(t, cur); len(got) != limit {
		t.Fatalf("limited stream yielded %d nodes, want %d", len(got), limit)
	}

	// Do shares the same Limit semantics (it is stream-then-drain).
	res, err := ses.Do(context.Background(), itemPath, QueryOptions{Sorted: true, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSeq(resultIDs(res), resultIDs(full)[:limit]) {
		t.Fatalf("Do with Limit: got %d nodes, want first %d sorted", len(res.Nodes), limit)
	}
}

// TestStreamEarlyClose: closing a cursor mid-stream (including immediately)
// unblocks the producer, returns pooled navigation iterators, and leaves no
// goroutines behind — the leak-free property Close promises.
func TestStreamEarlyClose(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{MaxInFlight: 4})
	defer eng.Close()
	ses := eng.NewSession()

	baseline := runtime.NumGoroutine()
	baseIters := storage.LiveStepIters()

	for _, k := range []int{0, 1, 3, 17} {
		cur, err := ses.Stream(context.Background(), "/site//description", QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k && cur.Next(); i++ {
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if cur.Next() {
			t.Fatal("Next after Close must report false")
		}
		if err := cur.Close(); err != nil {
			t.Fatal("Close must be idempotent")
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("early Close leaked goroutines: %d > %d\n%s",
			g, baseline, buf[:runtime.Stack(buf, true)])
	}
	if iters := storage.LiveStepIters(); iters != baseIters {
		t.Fatalf("early Close leaked navigation iterators: %d live, baseline %d", iters, baseIters)
	}
}

// TestStreamFaultTyped: a mid-stream storage fault surfaces as the typed
// taxonomy error on Err, and the failed cursor still cleans up. Seeds
// sweep the fault plane so the cancel path runs at varying depths.
func TestStreamFaultTyped(t *testing.T) {
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.1, Seed: 7, EntityScale: 0.1},
		Options{BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	ses := eng.NewSession()
	baseIters := storage.LiveStepIters()

	// Certain failure: the stream must end with a typed ErrIO.
	db.SetFaults(FaultConfig{Seed: 3, ReadError: 1})
	cur, err := ses.Stream(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
	if err == nil {
		for cur.Next() {
		}
		err = cur.Err()
		cur.Close()
	}
	if !errors.Is(err, ErrIO) {
		t.Fatalf("stream under ReadError=1: err=%v, want ErrIO", err)
	}

	// Seeded sweep at moderate rates: every outcome must be either clean or
	// typed io/corrupt, with no iterator leaks either way.
	for seed := uint64(1); seed <= 5; seed++ {
		db.SetFaults(FaultConfig{Seed: seed, ReadError: 0.05, Corrupt: 0.02})
		cur, err := ses.Stream(context.Background(), itemPath, QueryOptions{Strategy: Schedule})
		if err == nil {
			for i := 0; i < 10 && cur.Next(); i++ {
			}
			cur.Close() // early close mid-fault-sweep
			err = cur.Err()
		}
		if err != nil && KindOf(err) != KindIO && KindOf(err) != KindCorrupt {
			t.Fatalf("seed %d: err=%v kind=%v, want io/corrupt", seed, err, KindOf(err))
		}
	}
	db.SetFaults(FaultConfig{})
	if iters := storage.LiveStepIters(); iters != baseIters {
		t.Fatalf("fault sweep leaked navigation iterators: %d live, baseline %d", iters, baseIters)
	}
}

// TestQueryStreamMatchesQueryCtx: the engine-free direct cursor agrees
// with QueryCtx on set, order and limit, and an early Close returns its
// pooled resources.
func TestQueryStreamMatchesQueryCtx(t *testing.T) {
	db := mustLoad(t, `<a><b><c/><c/></b><b/><d><b><c/></b></d></a>`)
	paths := []string{"/a/b", "/a//c", "/a/b | /a/d/b", "/a//b | /a/b"}
	for _, path := range paths {
		for _, sorted := range []bool{false, true} {
			opts := QueryOptions{Sorted: sorted}
			want, err := db.QueryCtx(context.Background(), path, opts)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := db.QueryStream(context.Background(), path, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := streamIDs(t, cur)
			if sorted {
				if !sameSeq(got, resultIDs(want)) {
					t.Errorf("sorted QueryStream(%q) differs from QueryCtx", path)
				}
			} else if !sameSet(got, resultIDs(want)) {
				t.Errorf("QueryStream(%q) node set differs from QueryCtx", path)
			}
		}
	}

	// Limit on the direct cursor stops pulling the operator tree.
	cur, err := db.QueryStream(context.Background(), "/a//c", QueryOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := streamIDs(t, cur); len(got) != 2 {
		t.Fatalf("direct limited stream yielded %d nodes, want 2", len(got))
	}

	// Early close releases pooled iterators.
	baseIters := storage.LiveStepIters()
	cur, err = db.QueryStream(context.Background(), "/a//c", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	cur.Close()
	if iters := storage.LiveStepIters(); iters != baseIters {
		t.Fatalf("direct early Close leaked iterators: %d live, baseline %d", iters, baseIters)
	}
}

// TestStreamCancelMidStream: cancelling the caller's context terminates a
// live stream with the typed canceled/timeout error instead of hanging.
func TestStreamCancelMidStream(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	ses := eng.NewSession()

	ctx, cancel := context.WithCancel(context.Background())
	cur, err := ses.Stream(ctx, "/site//description", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first node: %v", cur.Err())
	}
	cancel()
	for cur.Next() {
	}
	if k := KindOf(cur.Err()); cur.Err() != nil && k != KindCanceled && k != KindTimeout {
		t.Fatalf("cancelled stream err=%v kind=%v, want canceled", cur.Err(), k)
	}
	cur.Close()
}
