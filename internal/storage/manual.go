package storage

import (
	"errors"
	"fmt"

	"pathdb/internal/ordpath"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// ImportManual stores doc with an explicit cluster assignment: assign maps
// every element/text/comment/PI node to a cluster number (0-based,
// contiguous). The document record lives in the cluster of the root
// element. Proxy pairs are created wherever a child's cluster differs from
// its parent's, exactly as in Fig. 3 of the paper.
//
// Cluster k is placed on data page 1+k (no layout permutation), so tests
// can reason about physical positions. It returns an error if any cluster
// overflows a page.
func ImportManual(disk *vdisk.Disk, dict *xmltree.Dictionary, doc *xmltree.Node, assign func(*xmltree.Node) int, opts ImportOptions) (*Store, error) {
	if doc.Kind != xmltree.Document {
		return nil, errors.New("storage: ImportManual requires a document node")
	}
	if disk.NumPages() != 0 {
		return nil, errors.New("storage: ImportManual requires an empty disk")
	}
	opts = opts.withDefaults()
	if opts.PageSize != disk.PageSize() {
		return nil, fmt.Errorf("storage: option page size %d != disk page size %d", opts.PageSize, disk.PageSize())
	}
	if len(doc.Children) == 0 {
		return nil, errors.New("storage: empty document")
	}

	im := &importer{opts: opts}
	m := &manualImporter{im: im, assign: assign, byID: map[int]*draftCluster{}}

	rootCluster := m.cluster(assign(doc.Children[0]))
	docSlot := rootCluster.add(rec{kind: RecDoc, parent: noParent})
	if err := m.walk(doc, rootCluster, docSlot, ordpath.Root()); err != nil {
		return nil, err
	}

	// Verify fit and write pages in cluster order.
	const firstData = 1
	n := len(im.clusters)
	for _, c := range im.clusters {
		if c.used > c.cap {
			return nil, fmt.Errorf("%w: manual cluster %d needs %d bytes", ErrRecordTooLarge, c.id, c.used)
		}
	}
	for _, l := range im.links {
		im.clusters[l.ca].recs[l.sa].target = MakeNodeID(vdisk.PageID(firstData+l.cb), l.sb)
		im.clusters[l.cb].recs[l.sb].target = MakeNodeID(vdisk.PageID(firstData+l.ca), l.sa)
	}
	disk.Alloc() // meta
	for i := 0; i < n; i++ {
		disk.Alloc()
	}
	for i, c := range im.clusters {
		pb := newPageBuilder(opts.PageSize)
		for j := range c.recs {
			pb.add(encodeRec(&c.recs[j]))
		}
		writePage(disk, vdisk.PageID(firstData+i), pb.finish())
	}
	dictStart, dictCount := writeDictionary(disk, dict)
	rootID := MakeNodeID(vdisk.PageID(firstData+rootCluster.id), docSlot)
	writeMeta(disk, 0, metaInfo{
		roots:     []NodeID{rootID},
		firstData: firstData,
		nData:     uint32(n),
		dictStart: dictStart,
		dictCount: dictCount,
	})
	disk.Ledger().Reset()
	disk.ResetClockState()
	return newStore(disk, dict, []NodeID{rootID}, firstData, uint32(n), nil), nil
}

type manualImporter struct {
	im     *importer
	assign func(*xmltree.Node) int
	byID   map[int]*draftCluster
}

// cluster returns the draft cluster with the given user id, creating
// intermediate ids as needed so numbering stays contiguous.
func (m *manualImporter) cluster(id int) *draftCluster {
	if id < 0 {
		panic("storage: negative manual cluster id")
	}
	for len(m.im.clusters) <= id {
		m.im.newCluster()
	}
	if c, ok := m.byID[id]; ok {
		return c
	}
	c := m.im.clusters[id]
	m.byID[id] = c
	return c
}

// walk places the children of logical node n, whose record lives at
// (c, ps), honouring the manual assignment.
func (m *manualImporter) walk(n *xmltree.Node, c *draftCluster, ps uint16, ord ordpath.Key) error {
	childIdx := 0
	for _, ch := range n.Children {
		recs, err := m.im.draftRecs(ch, ord, &childIdx)
		if err != nil {
			return err
		}
		target := m.cluster(m.assign(ch))
		for _, dr := range recs {
			placeIn, placePS := c, ps
			if target != c {
				pcSlot := c.add(rec{kind: RecProxyChild, parent: int(ps), ord: dr.r.ord})
				ppSlot := target.add(rec{kind: RecProxyParent, parent: noParent})
				m.im.linkProxies(c.id, pcSlot, target.id, ppSlot)
				placeIn, placePS = target, ppSlot
			}
			dr.r.parent = int(placePS)
			slot := placeIn.add(dr.r)
			if dr.r.kind == RecElem {
				if err := m.walk(dr.node, placeIn, slot, dr.r.ord); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
