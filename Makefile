# CI entry points. `make` runs the full set.
GO ?= go

.PHONY: all build test race vet bench bench-load bench-json clean

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent layers (engine, server, storage, core,
# buffer, vdisk, stats) plus the facade, which exercises the engine end
# to end.
race:
	$(GO) test -race ./internal/engine/... ./internal/server/... ./internal/storage/... ./internal/core/... ./internal/buffer/... ./internal/vdisk/... ./internal/stats/... .

# Go micro-benchmarks with allocation counts (wall-clock; machine
# dependent, unlike the virtual-clock numbers from xbench), plus the
# closed-loop load snapshot.
bench: bench-load
	$(GO) test -bench . -benchmem -count=3 ./...

# Closed-loop load-generator snapshot: writes BENCH_xload.json at the
# repo root with wall+virtual throughput, tail latencies, and the
# engine's admission/dispatch counters.
bench-load:
	$(GO) run ./cmd/xload -xmark 0.5 -clients 8 -requests 64 -json .

vet:
	$(GO) vet ./...

# Machine-readable benchmark snapshot (BENCH_*.json) for tracking the
# performance trajectory across commits. Slow: full evaluation.
bench-json:
	$(GO) run ./cmd/xbench -json bench-out

clean:
	rm -rf bench-out
