package engine

import (
	"context"
	"time"

	"pathdb/internal/core"
	"pathdb/internal/stats"
)

// Session is a submission handle on an engine. Many sessions submit
// concurrently; each session's methods may also be called from several
// goroutines (the session carries no mutable state).
type Session struct {
	e *Engine
}

// streamDepth is the per-query sink buffer: a streaming producer runs
// ahead of its consumer by at most this many results before the channel
// send blocks (back-pressure at the operator poll point). Queries at or
// under this cardinality complete without ever waiting on the consumer.
const streamDepth = 64

// Pending is an admitted query waiting for (or holding) its outcome.
type Pending struct {
	ctx context.Context
	q   Query

	submitW time.Time
	submitV stats.Ticks // volume clock at submission

	// sink carries results incrementally for streaming queries (Query.
	// Stream); nil for buffered queries. It is closed by finish, so a
	// consumer ranging over C() always unblocks when the query settles.
	sink chan core.Result
	sent int // results emitted into sink (producer side)

	done chan struct{}
	res  Result
	err  error
}

// finish completes the waiter exactly once (dispatcher side).
func (p *Pending) finish(res Result, err error) {
	p.res, p.err = res, err
	close(p.done)
	if p.sink != nil {
		close(p.sink)
	}
}

// C is the result stream of a streaming query: one core.Result per match,
// closed when the query settles. Nil for buffered queries. The summary
// Result (costs, strategy, gang) is available from Wait after C closes.
func (p *Pending) C() <-chan core.Result { return p.sink }

// Wait blocks until the query finishes or ctx is done. A Wait abandoned by
// its caller does not cancel the query — cancel the submission context for
// that.
func (p *Pending) Wait(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

func (s *Session) newPending(ctx context.Context, q Query) *Pending {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &Pending{
		ctx:     ctx,
		q:       q,
		submitW: time.Now(),
		submitV: s.e.store.Ledger().Total(),
		done:    make(chan struct{}),
	}
	if q.Stream {
		p.sink = make(chan core.Result, streamDepth)
	}
	return p
}

// TrySubmit admits q without blocking. It returns ErrQueueFull when the
// admission queue is at capacity — the load-shedding half of admission
// control — and ErrClosed after Close.
func (s *Session) TrySubmit(ctx context.Context, q Query) (*Pending, error) {
	p := s.newPending(ctx, q)
	if err := p.ctx.Err(); err != nil {
		return nil, err
	}
	s.e.admit.RLock()
	defer s.e.admit.RUnlock()
	if s.e.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case s.e.queue <- p:
		s.e.submitted.Add(1)
		return p, nil
	default:
		s.e.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Submit admits q, blocking while the admission queue is full — the
// backpressure half of admission control. It fails with the context's
// error if ctx is done first, and with ErrClosed if the engine shuts down.
func (s *Session) Submit(ctx context.Context, q Query) (*Pending, error) {
	p := s.newPending(ctx, q)
	if err := p.ctx.Err(); err != nil {
		return nil, err
	}
	// The read lock pairs with Engine.shutAdmission: a submission holds it
	// across the closed check and the queue send, so shutdown cannot slip
	// between them and strand the Pending. The dispatcher stays live until
	// shutAdmission returns, so a send blocked on a full queue still
	// drains.
	s.e.admit.RLock()
	defer s.e.admit.RUnlock()
	if s.e.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case s.e.queue <- p:
		s.e.submitted.Add(1)
		return p, nil
	case <-p.ctx.Done():
		return nil, p.ctx.Err()
	case <-s.e.stop:
		return nil, ErrClosed
	}
}

// Do submits q and waits for its result.
func (s *Session) Do(ctx context.Context, q Query) (Result, error) {
	p, err := s.Submit(ctx, q)
	if err != nil {
		return Result{}, err
	}
	return p.Wait(ctx)
}
