// Command xload is a closed-loop load generator for the concurrent query
// engine: N client goroutines each submit queries back-to-back through one
// pathdb.Engine and the tool reports throughput and latency percentiles in
// both clocks — virtual (the calibrated disk/CPU model, machine
// independent) and wall (what the simulation itself cost).
//
// Usage:
//
//	xload -xmark 0.5 -clients 8 -requests 64
//	xload -xmark 0.5 -clients 1 -requests 64      # same work, sequential
//	xload -xml doc.xml -mix q7 -strategy xschedule
//	xload -xmark 0.5 -clients 8 -parallel 8 -cpuprofile cpu.pprof -json .
//
// The request multiset is fixed by -requests and -mix and distributed
// round-robin, so per-query result counts are independent of -clients —
// the tool self-checks this and exits non-zero if any path's count varies
// between requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pathdb"
	"pathdb/internal/bench"
	"pathdb/internal/stats"
)

var mixes = map[string][]string{
	"q6": {"/site/regions//item"},
	"q7": {"/site//description", "/site//annotation", "/site//emailaddress"},
	"q15": {
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	},
}

func main() {
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document with this scale factor instead")
	scale := flag.Float64("scale", 0.1, "entity scale for -xmark")
	seed := flag.Uint64("seed", 42, "seed for -xmark and fragmented layouts")
	layoutName := flag.String("layout", "natural", "physical layout: natural, contiguous, shuffled")
	buffer := flag.Int("buffer", 0, "buffer pool pages (default 1000)")

	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 64, "total queries across all clients")
	mixName := flag.String("mix", "q6", "query mix: q6, q7, q15, all")
	strategy := flag.String("strategy", "auto", "plan strategy: auto, simple, xschedule, xscan")
	inflight := flag.Int("inflight", 0, "engine MaxInFlight (default 8)")
	queue := flag.Int("queue", 0, "engine QueueDepth (default 64)")
	parallel := flag.Int("parallel", 0, "engine worker-pool width per gang (default min(MaxInFlight, GOMAXPROCS))")
	sorted := flag.Bool("sorted", false, "request document-order results")
	jsonDir := flag.String("json", "", "write BENCH_xload.json into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	flag.Parse()

	strat, err := pathdb.ParseStrategy(*strategy)
	if err != nil {
		fail("%v", err)
	}
	layout, ok := map[string]pathdb.Layout{
		"natural": pathdb.Natural, "contiguous": pathdb.Contiguous, "shuffled": pathdb.Shuffled,
	}[*layoutName]
	if !ok {
		fail("unknown -layout %q", *layoutName)
	}
	paths, ok := mixes[*mixName]
	if !ok && *mixName == "all" {
		for _, name := range []string{"q6", "q7", "q15"} {
			paths = append(paths, mixes[name]...)
		}
		ok = true
	}
	if !ok {
		fail("unknown -mix %q (want q6, q7, q15 or all)", *mixName)
	}
	if *clients < 1 || *requests < 1 {
		fail("-clients and -requests must be positive")
	}

	opts := pathdb.Options{Layout: layout, LayoutSeed: *seed, BufferPages: *buffer}
	var db *pathdb.DB
	switch {
	case *xmlFile != "":
		data, rerr := os.ReadFile(*xmlFile)
		if rerr != nil {
			fail("%v", rerr)
		}
		db, err = pathdb.LoadXML(data, opts)
	case *xmarkSF > 0:
		db, err = pathdb.GenerateXMark(pathdb.XMarkConfig{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale}, opts)
	default:
		fail("need -xml or -xmark")
	}
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("document: %d pages\n", db.Pages())

	// Resolve the effective worker-pool width for reporting (the engine
	// applies the same default).
	effParallel := *parallel
	if effParallel <= 0 {
		effParallel = *inflight
		if effParallel <= 0 {
			effParallel = 8
		}
		if g := runtime.GOMAXPROCS(0); effParallel > g {
			effParallel = g
		}
	}

	eng := db.NewEngine(pathdb.EngineConfig{MaxInFlight: *inflight, QueueDepth: *queue, Parallel: *parallel})
	defer eng.Close()
	db.ResetStats() // cold start after the cost model's offline pass

	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *cpuprofile != "" {
		f, cerr := os.Create(*cpuprofile)
		if cerr != nil {
			fail("%v", cerr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fail("cpu profile: %v", perr)
		}
	}

	// Request i evaluates paths[i%len(paths)]; client c takes the requests
	// with i%clients == c. The multiset of executed queries is therefore
	// the same for every -clients value.
	type sample struct {
		path  string
		count int
		virt  stats.Ticks
		wall  time.Duration
	}
	samples := make([]sample, *requests)
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wallStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := eng.NewSession()
			for i := c; i < *requests; i += *clients {
				p := paths[i%len(paths)]
				t0 := time.Now()
				res, err := s.Do(context.Background(), p, pathdb.QueryOptions{Strategy: strat, Sorted: *sorted})
				if err != nil {
					fail("request %d (%s): %v", i, p, err)
				}
				samples[i] = sample{path: p, count: res.Count(), virt: res.VirtualLatency, wall: time.Since(t0)}
			}
		}(c)
	}
	wg.Wait()
	wallTotal := time.Since(wallStart)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	allocsPerOp := int64(ms1.Mallocs-ms0.Mallocs) / int64(*requests)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	virtTotal := db.CostReport().Total

	// Per-path counts, self-checked for consistency across requests.
	counts := map[string]int{}
	countOK := true
	for _, s := range samples {
		if prev, seen := counts[s.path]; seen && prev != s.count {
			fmt.Fprintf(os.Stderr, "xload: count(%s) varies between requests: %d vs %d\n", s.path, prev, s.count)
			countOK = false
		}
		counts[s.path] = s.count
	}
	for _, p := range sortedKeys(counts) {
		fmt.Printf("count(%s) = %d\n", p, counts[p])
	}

	virtLat := make([]float64, len(samples))
	wallLat := make([]float64, len(samples))
	for i, s := range samples {
		virtLat[i] = s.virt.Seconds()
		wallLat[i] = s.wall.Seconds()
	}
	fmt.Printf("clients=%d requests=%d strategy=%s mix=%s\n", *clients, *requests, strat, *mixName)
	fmt.Printf("throughput: %.2f q/s virtual (%d in %.3fs), %.1f q/s wall (%.3fs)\n",
		float64(*requests)/virtTotal.Seconds(), *requests, virtTotal.Seconds(),
		float64(*requests)/wallTotal.Seconds(), wallTotal.Seconds())
	fmt.Printf("latency virtual [s]: %s\n", percentiles(virtLat))
	fmt.Printf("latency wall    [s]: %s\n", percentiles(wallLat))
	fmt.Printf("allocs/op: %d\n", allocsPerOp)
	m := eng.Metrics()
	fmt.Printf("engine: gangs=%d batched=%d/%d overhead=%v\n", m.Gangs, m.Batched, m.Submitted, m.OverheadV)

	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fail("%v", merr)
		}
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			fail("heap profile: %v", perr)
		}
		f.Close()
	}
	if *mutexprofile != "" {
		f, merr := os.Create(*mutexprofile)
		if merr != nil {
			fail("%v", merr)
		}
		if perr := pprof.Lookup("mutex").WriteTo(f, 0); perr != nil {
			fail("mutex profile: %v", perr)
		}
		f.Close()
	}
	if *jsonDir != "" {
		pick := func(xs []float64, p float64) float64 {
			return xs[int(p*float64(len(xs)-1))]
		}
		jerr := bench.WriteLoadJSON(*jsonDir, "xload", bench.LoadJSON{
			Clients:     *clients,
			Requests:    *requests,
			Mix:         *mixName,
			Strategy:    strat.String(),
			Parallel:    effParallel,
			VirtualSec:  virtTotal.Seconds(),
			WallSec:     wallTotal.Seconds(),
			VirtualQPS:  float64(*requests) / virtTotal.Seconds(),
			WallQPS:     float64(*requests) / wallTotal.Seconds(),
			AllocsPerOp: allocsPerOp,
			P50WallSec:  pick(wallLat, 0.50),
			P99WallSec:  pick(wallLat, 0.99),
			P50VirtSec:  pick(virtLat, 0.50),
			P99VirtSec:  pick(virtLat, 0.99),
		})
		if jerr != nil {
			fail("%v", jerr)
		}
	}

	if !countOK {
		os.Exit(1)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// percentiles renders p50/p90/p99/max of xs.
func percentiles(xs []float64) string {
	sort.Float64s(xs)
	pick := func(p float64) float64 {
		i := int(p * float64(len(xs)-1))
		return xs[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "p50=%.4f p90=%.4f p99=%.4f max=%.4f",
		pick(0.50), pick(0.90), pick(0.99), xs[len(xs)-1])
	return b.String()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xload: "+format+"\n", args...)
	os.Exit(1)
}
