// Command xbench regenerates the tables and figures of the paper's
// evaluation (Sec. 6) plus the ablation studies listed in DESIGN.md.
//
// Usage:
//
//	xbench                     # everything: Figs. 9-11, Table 3, ablations
//	xbench -fig 10             # one figure (Q7 across scale factors)
//	xbench -table 3            # Table 3 at scale factor 1
//	xbench -ablation k         # one ablation (k, layout, speculative,
//	                           # fallback, multiquery, policy, firststep)
//	xbench -scale 0.02 -quick  # smaller populations / fewer scale factors
//	xbench -strategy xscan     # restrict figures/tables to one strategy
//	xbench -json out/          # also write machine-readable BENCH_*.json
//
// Times are virtual seconds from the calibrated disk/CPU model, which is
// deterministic and machine independent; compare shapes against the
// paper's figures, not absolute values. The -json files track the
// performance trajectory across commits.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathdb"
	"pathdb/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (9, 10 or 11)")
	table := flag.Int("table", 0, "regenerate one table (3)")
	ablation := flag.String("ablation", "", "run one ablation: k, layout, speculative, fallback, multiquery, policy, firststep, updates, buffer")
	scale := flag.Float64("scale", 0.2, "entity scale (0.2 ≈ one tenth of official XMark by bytes)")
	seed := flag.Uint64("seed", 42, "workload seed")
	quick := flag.Bool("quick", false, "use fewer scale factors (0.25, 0.5, 1)")
	strategy := flag.String("strategy", "", "restrict figures/tables to one strategy (simple, xschedule, xscan)")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_*.json output")
	flag.Parse()

	var stratName string
	if *strategy != "" {
		strat, err := pathdb.ParseStrategy(*strategy)
		if err != nil {
			fail("%v", err)
		}
		if strat == pathdb.Auto {
			fail("-strategy auto: figures measure concrete strategies; pick simple, xschedule or xscan")
		}
		stratName = strat.String()
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fail("%v", err)
		}
	}

	cfg := bench.Config{EntityScale: *scale, Seed: *seed}
	w := bench.NewWorkload(cfg)
	sfs := bench.PaperScaleFactors
	if *quick {
		sfs = []float64{0.25, 0.5, 1}
	}

	figures := map[int]bench.Query{9: bench.Q6, 10: bench.Q7, 11: bench.Q15}
	emitFigure := func(f int) {
		ms := filterStrategy(w.Figure(figures[f], sfs), stratName)
		bench.RenderFigure(os.Stdout, figName(f, figures[f]), ms)
		writeJSON(*jsonDir, fmt.Sprintf("fig%d", f), figName(f, figures[f]), ms)
	}
	emitTable3 := func() {
		ms := filterStrategy(w.Table3(1), stratName)
		bench.RenderTable3(os.Stdout, ms)
		writeJSON(*jsonDir, "table3", "Table 3 — CPU usage", ms)
	}

	ran := false
	if *fig != 0 {
		if _, ok := figures[*fig]; !ok {
			fail("no figure %d (have 9, 10, 11)", *fig)
		}
		emitFigure(*fig)
		ran = true
	}
	if *table != 0 {
		if *table != 3 {
			fail("only table 3 exists")
		}
		emitTable3()
		ran = true
	}
	if *ablation != "" {
		runAblation(w, cfg, *ablation, *jsonDir)
		ran = true
	}
	if ran {
		return
	}

	// Default: the full evaluation.
	for _, f := range []int{9, 10, 11} {
		emitFigure(f)
		fmt.Println()
	}
	emitTable3()
	fmt.Println()
	for _, a := range []string{"k", "layout", "speculative", "fallback", "multiquery", "policy", "firststep", "updates", "buffer"} {
		runAblation(w, cfg, a, *jsonDir)
		fmt.Println()
	}
}

// filterStrategy keeps only measurements of the named strategy ("" keeps
// all). Strategy names round-trip through pathdb.ParseStrategy, so the
// flag accepts exactly what the reports print.
func filterStrategy(ms []bench.Measurement, name string) []bench.Measurement {
	if name == "" {
		return ms
	}
	var out []bench.Measurement
	for _, m := range ms {
		if m.Strategy.String() == name {
			out = append(out, m)
		}
	}
	return out
}

func writeJSON(dir, name, title string, ms []bench.Measurement) {
	if dir == "" {
		return
	}
	if err := bench.WriteMeasurementsJSON(dir, name, title, ms); err != nil {
		fail("writing %s json: %v", name, err)
	}
}

func figName(f int, q bench.Query) string {
	return fmt.Sprintf("Figure %d — %s: %v", f, q.Name, q.Paths)
}

func runAblation(w *bench.Workload, cfg bench.Config, name, jsonDir string) {
	var title string
	var rows []bench.AblationRow
	switch name {
	case "k":
		title = "XSchedule queue fill target k (Q6', sf 1)"
		rows = w.AblationK(1, []int{1, 10, 100, 1000})
	case "layout":
		title = "physical layout vs plan (Q6', sf 1)"
		rows = bench.AblationLayout(cfg, 1, bench.Q6)
	case "speculative":
		title = "speculative XSchedule on a revisit-prone path (sf 1)"
		rows = w.AblationSpeculative(1)
	case "fallback":
		title = "memory-limit fallback on an XScan plan (sf 1)"
		rows = w.AblationFallback(1, []int{0, 1000, 100, 10})
	case "multiquery":
		title = "Q7's three paths: concurrent plans vs one shared scheduler (sf 1)"
		rows = w.AblationMultiQuery(1)
	case "policy":
		title = "device queue scheduling policy (Q6' XSchedule, sf 1)"
		rows = w.AblationDiskPolicy(1)
	case "firststep":
		title = "'//' first-step optimisation (XScan, //description, sf 1)"
		rows = w.AblationFirstStepAll(1)
	case "updates":
		title = "plan gap before/after 500 incremental inserts (Q6', sf 1)"
		rows = w.AblationUpdates(1, 500)
	case "buffer":
		title = "buffer pool size across a 3-query session (Q7, sf 1)"
		rows = w.AblationBufferSize(1, []int{12, 45, 90, 360, 1440})
	default:
		fail("unknown ablation %q", name)
	}
	bench.RenderAblation(os.Stdout, title, rows)
	if jsonDir != "" {
		if err := bench.WriteAblationJSON(jsonDir, name, title, rows); err != nil {
			fail("writing ablation json: %v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xbench: "+format+"\n", args...)
	os.Exit(1)
}
