package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathdb/internal/buffer"
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

// PageErrorKind classifies a failed page access.
type PageErrorKind uint8

// Page error kinds.
const (
	// PageIO: the device kept failing the read within the retry policy
	// (transient faults that never yielded a good transfer).
	PageIO PageErrorKind = iota
	// PageCorrupt: the page was transferred but its content is bad — the
	// checksum trailer kept failing, or the record structure is malformed.
	PageCorrupt
)

func (k PageErrorKind) String() string {
	switch k {
	case PageIO:
		return "io"
	case PageCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("page-error(%d)", uint8(k))
	}
}

// PageError is the typed failure of a page access, after the verified-read
// retry path has been exhausted. It is the storage layer's contribution to
// the pathdb error taxonomy: the facade maps PageIO to KindIO and
// PageCorrupt to KindCorrupt.
type PageError struct {
	Page vdisk.PageID
	Kind PageErrorKind
	Err  error // last underlying failure (device error or checksum detail)
}

func (e *PageError) Error() string {
	return fmt.Sprintf("storage: page %d %s error: %v", e.Page, e.Kind, e.Err)
}

func (e *PageError) Unwrap() error { return e.Err }

// pageFault transports a *PageError across the error-free navigation
// interfaces (Cursor methods, operator Next loops) as a typed panic; the
// query boundaries (engine workers, QueryCtx, exports) recover it via
// AsPageFault. Keeping the fault typed means an unrelated panic — a real
// bug — still crashes loudly instead of masquerading as an I/O error.
type pageFault struct {
	err *PageError
}

// AsPageFault reports whether a recovered panic value is a transported
// page fault and returns the underlying typed error.
func AsPageFault(r any) (*PageError, bool) {
	if f, ok := r.(pageFault); ok {
		return f.err, true
	}
	return nil, false
}

// throwPageError escalates err as a page fault panic (see pageFault).
func throwPageError(p vdisk.PageID, err error) {
	panic(pageFault{pageErrorFrom(p, err)})
}

// pageErrorFrom wraps err into a *PageError for page p, classifying device
// read errors as PageIO and everything else (checksum trailer mismatches,
// malformed records) as PageCorrupt. An err that already is a *PageError
// passes through unchanged.
func pageErrorFrom(p vdisk.PageID, err error) *PageError {
	var pe *PageError
	if errors.As(err, &pe) {
		return pe
	}
	var re *vdisk.ReadError
	if errors.As(err, &re) {
		return &PageError{Page: p, Kind: PageIO, Err: err}
	}
	return &PageError{Page: p, Kind: PageCorrupt, Err: err}
}

// --- page checksum trailer -------------------------------------------------
//
// Every page written by the storage layer ends in an 8-byte FNV-64a
// checksum over the rest of the page, verified on every read (the buffer
// pool runs verifyPageTrailer against each image it loads). The trailer
// shrinks the usable page capacity by pageTrailerSize bytes; all layout
// computations (page builder, live-page fit checks, WAL header capacity,
// meta and dictionary chunking) work against usable(pageSize).

// pageTrailerSize is the size of the per-page checksum trailer.
const pageTrailerSize = 8

// usable returns the page capacity available to payload bytes.
func usable(pageSize int) int { return pageSize - pageTrailerSize }

// finalizePage pads payload to a full page and stamps the checksum trailer.
func finalizePage(payload []byte, pageSize int) []byte {
	if len(payload) > usable(pageSize) {
		panic(fmt.Sprintf("storage: page payload of %d bytes exceeds usable size %d",
			len(payload), usable(pageSize)))
	}
	out := make([]byte, pageSize)
	copy(out, payload)
	binary.LittleEndian.PutUint64(out[pageSize-pageTrailerSize:],
		pageChecksum(out[:pageSize-pageTrailerSize]))
	return out
}

// writePage writes payload to page p with the checksum trailer stamped.
func writePage(disk *vdisk.Disk, p vdisk.PageID, payload []byte) {
	disk.Write(p, finalizePage(payload, disk.PageSize()))
}

// verifyPageTrailer checks a full page image against its checksum trailer.
// Its signature matches the buffer pool's verifier hook.
func verifyPageTrailer(p vdisk.PageID, data []byte) error {
	n := len(data)
	want := binary.LittleEndian.Uint64(data[n-pageTrailerSize:])
	if got := pageChecksum(data[:n-pageTrailerSize]); got != want {
		return &PageError{Page: p, Kind: PageCorrupt,
			Err: fmt.Errorf("checksum trailer mismatch (got %#x, want %#x)", got, want)}
	}
	return nil
}

// readPageVerified reads page p directly from the device (bypassing the
// buffer pool — for the meta page, dictionary and WAL pages) under the
// default retry policy, verifying the checksum trailer on every attempt.
func readPageVerified(disk *vdisk.Disk, p vdisk.PageID, buf []byte) error {
	led := disk.Ledger()
	pol := buffer.DefaultRetryPolicy()
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			stats.Inc(&led.ReadRetries)
			led.BlockUntil(led.Total() + backoff)
			backoff *= 2
		}
		if err := disk.ReadSync(p, buf); err != nil {
			lastErr = err
			continue
		}
		if err := verifyPageTrailer(p, buf); err != nil {
			stats.Inc(&led.ChecksumFails)
			lastErr = err
			continue
		}
		return nil
	}
	return pageErrorFrom(p, lastErr)
}
