package storage

import (
	"sync"
	"sync/atomic"

	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// PageSynopsis summarizes one decoded cluster for whole-cluster decisions:
// which record kinds and tags occur (and how often), and whether the
// cluster has outgoing downward borders. It is derived from the cluster's
// navigation bitmaps at decode time and registered under the page's write
// epoch, so a consumer can tell whether a summary still describes the
// bytes its version would read. All slices alias the immutable pageNav;
// callers must not mutate them.
type PageSynopsis struct {
	Epoch         uint64
	Tags          []xmltree.TagID // sorted distinct record tags (NoTag bucket included)
	TagCounts     []int32         // live records per Tags[i]
	Elems         int32
	Texts         int32
	Comments      int32
	PIs           int32
	ProxyChildren int32 // outgoing downward borders
	Borders       int32 // all proxy records
	Live          int32 // all live records
}

// TagCount returns the number of live records tagged t.
func (sy *PageSynopsis) TagCount(t xmltree.TagID) int32 {
	lo, hi := 0, len(sy.Tags)
	for lo < hi {
		mid := (lo + hi) / 2
		if sy.Tags[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sy.Tags) && sy.Tags[lo] == t {
		return sy.TagCounts[lo]
	}
	return 0
}

// CanMatch reports whether any core record of the cluster could satisfy
// test. Conservative: false only when the synopsis proves zero matches.
func (sy *PageSynopsis) CanMatch(test xpath.NodeTest) bool {
	var kindTotal int32
	switch test.Kind {
	case xpath.KindAny:
		kindTotal = sy.Live - sy.Borders
	case xpath.KindElement:
		kindTotal = sy.Elems
	case xpath.KindText:
		kindTotal = sy.Texts
	case xpath.KindComment:
		kindTotal = sy.Comments
	case xpath.KindPI:
		kindTotal = sy.PIs
	default:
		return true
	}
	if kindTotal == 0 {
		return false
	}
	if test.AnyName {
		return true
	}
	for _, t := range test.Tags {
		if sy.TagCount(t) > 0 {
			return true
		}
	}
	return false
}

// synTable is the persistent synopsis registry, shared (by pointer) across
// a base store and every view. Unlike the swizzle cache it survives buffer
// eviction: summaries are tiny and alias already-allocated nav slices, so
// keeping them lets XSchedule skip clusters that were decoded once in any
// earlier query.
type synTable struct {
	mu sync.RWMutex
	m  map[vdisk.PageID]*PageSynopsis
}

func newSynTable() *synTable {
	return &synTable{m: make(map[vdisk.PageID]*PageSynopsis)}
}

func (t *synTable) get(p vdisk.PageID) *PageSynopsis {
	t.mu.RLock()
	sy := t.m[p]
	t.mu.RUnlock()
	return sy
}

// publish registers sy for p unless a newer-epoch summary is already
// present (a lagging snapshot must not clobber the current one; its stale
// summary would fail the reader-side epoch check anyway).
func (t *synTable) publish(p vdisk.PageID, sy *PageSynopsis) {
	t.mu.Lock()
	if cur, ok := t.m[p]; !ok || sy.Epoch >= cur.Epoch {
		t.m[p] = sy
	}
	t.mu.Unlock()
}

func (t *synTable) drop(p vdisk.PageID) {
	t.mu.Lock()
	delete(t.m, p)
	t.mu.Unlock()
}

func (t *synTable) reset() {
	t.mu.Lock()
	t.m = make(map[vdisk.PageID]*PageSynopsis)
	t.mu.Unlock()
}

// synopsisOf builds the registry entry from a decoded image.
func synopsisOf(img *pageImage, epoch uint64) *PageSynopsis {
	nav := img.nav
	return &PageSynopsis{
		Epoch:         epoch,
		Tags:          nav.tags,
		TagCounts:     nav.tagCnt,
		Elems:         int32(nav.elemCount),
		Texts:         int32(nav.textCount),
		Comments:      int32(nav.commentCount),
		PIs:           int32(nav.piCount),
		ProxyChildren: int32(nav.proxyChildCount),
		Borders:       int32(len(img.borders)),
		Live:          int32(len(nav.byPre)),
	}
}

// navBitmapsOff disables bitmap-batched navigation and cluster skipping,
// forcing the per-node reference path — the lever the differential tests
// flip to prove the two paths agree byte for byte.
var navBitmapsOff atomic.Bool

// EnableBitmapNav toggles bitmap-batched navigation (on by default). Only
// tests should turn it off; toggling while queries run is safe but makes
// cost accounting of in-flight queries path-dependent.
func EnableBitmapNav(on bool) { navBitmapsOff.Store(!on) }

// BitmapNavEnabled reports the current setting.
func BitmapNavEnabled() bool { return !navBitmapsOff.Load() }

// Synopsis returns the registered summary of cluster p as of this view's
// version, or ok=false when the cluster has not been decoded at the
// version's write epoch yet (the summary on file, if any, describes other
// bytes).
func (s *Store) Synopsis(p vdisk.PageID) (*PageSynopsis, bool) {
	sy := s.syn.get(p)
	if sy == nil || sy.Epoch != s.pageEpoch(p) {
		return nil, false
	}
	return sy, true
}

// EnsureSynopsis decodes cluster p if needed and returns its summary at
// this view's version. Used by the plan chooser's incremental refresh; the
// decode charges this view's ledger.
func (s *Store) EnsureSynopsis(p vdisk.PageID) *PageSynopsis {
	if sy, ok := s.Synopsis(p); ok {
		return sy
	}
	img := s.image(p)
	return synopsisOf(img, s.pageEpoch(p))
}

// RefreshSynopses decodes the after-images of a commit and registers their
// summaries at the commit epoch. The txn manager calls this right after
// publishing the successor version, so the registry tracks commits eagerly:
// skip decisions stay deterministic (a current-version reader always finds
// a current-epoch summary for every page that ever had one) instead of
// depending on which queries happened to decode which clusters first.
// Payloads are unfinalized page images (as produced by WriteTxn.WriteSet);
// undecodable ones are skipped — the read path will fault on them properly.
func (s *Store) RefreshSynopses(epoch uint64, images map[vdisk.PageID][]byte) {
	ps := s.disk.PageSize()
	for p, raw := range images {
		img, err := decodePage(p, finalizePage(raw, ps), ps)
		if err != nil {
			continue
		}
		s.syn.publish(p, synopsisOf(img, epoch))
	}
}

// SkippableCluster reports whether pooling cluster p for a pending
// downward step (axis, test) is provably useless: the summary is current
// for this view's version, the cluster has no outgoing downward borders
// (so the enumeration cannot continue elsewhere), and no record can match
// the test. Downward axes only — the enumeration of child/descendant steps
// arriving over a border emits exclusively core records of the cluster
// plus its ProxyChild borders, so an empty test mask and a zero ProxyChild
// count together prove the continuation is dead. False means "load it and
// look", never "skip".
func (s *Store) SkippableCluster(p vdisk.PageID, axis xpath.Axis, test xpath.NodeTest) bool {
	if navBitmapsOff.Load() {
		return false
	}
	switch axis {
	case xpath.Child, xpath.Descendant, xpath.DescendantOrSelf:
	default:
		return false
	}
	sy, ok := s.Synopsis(p)
	if !ok || sy.ProxyChildren > 0 {
		return false
	}
	return !sy.CanMatch(test)
}
