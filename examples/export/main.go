// Document export (the paper's outlook, Sec. 7): "we want to investigate
// how our method can be used to speed up document export, where our 'path
// instance' becomes the textual representation of a whole document". This
// example stores a document, queries a subtree, and serializes both the
// subtree results and the complete document back to XML through the
// storage layer — crossing cluster borders transparently.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"pathdb"
)

const doc = `<orders>
  <order id="1"><customer>ada</customer><total>15.00</total></order>
  <order id="2"><customer>grace</customer><total>42.50</total></order>
  <order id="3"><customer>edsger</customer><total>7.25</total></order>
</orders>`

func main() {
	db, err := pathdb.LoadXMLString(doc, pathdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Export selected subtrees: each result node serializes its fragment.
	q, _ := db.Query("/orders/order")
	fmt.Println("-- selected fragments --")
	for _, n := range q.Sorted().Nodes() {
		fmt.Println(n.XML())
	}

	// Export the whole document (round trip through the page store).
	fmt.Println("-- full export --")
	if err := db.ExportXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// On a large fragmented volume, the scan-based export replaces the
	// random walk with one sequential pass — the paper's Sec. 7 outlook.
	big, err := pathdb.GenerateXMark(
		pathdb.XMarkConfig{ScaleFactor: 0.5, Seed: 3, EntityScale: 0.05},
		pathdb.Options{Layout: pathdb.Shuffled, BufferPages: 32},
	)
	if err != nil {
		log.Fatal(err)
	}
	big.ResetStats()
	var walk strings.Builder
	if err := big.ExportXML(&walk); err != nil {
		log.Fatal(err)
	}
	walkCost := big.CostReport()
	big.ResetStats()
	var scan strings.Builder
	if err := big.ExportXMLScan(&scan); err != nil {
		log.Fatal(err)
	}
	scanCost := big.CostReport()
	fmt.Printf("-- export of %d fragmented pages --\n", big.Pages())
	fmt.Println("walk export:", walkCost)
	fmt.Println("scan export:", scanCost)
}
