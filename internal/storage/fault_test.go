package storage

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pathdb/internal/vdisk"
)

// faultFixture imports a multi-page document and returns its fault-free
// scan export as the reference output.
func faultFixture(t testing.TB) (*Store, string) {
	t.Helper()
	dict, doc := buildTree(21, 400)
	st := importDoc(t, doc, dict, 512, LayoutContiguous)
	var ref strings.Builder
	if err := st.ExportScanXML(&ref); err != nil {
		t.Fatalf("fault-free export: %v", err)
	}
	st.ResetForRun()
	return st, ref.String()
}

func TestPageTrailerStamped(t *testing.T) {
	st, _ := faultFixture(t)
	d := st.Disk()
	buf := make([]byte, d.PageSize())
	for i := 0; i < st.NumDataPages(); i++ {
		p := st.DataPage(i)
		if err := d.ReadSync(p, buf); err != nil {
			t.Fatal(err)
		}
		if err := verifyPageTrailer(p, buf); err != nil {
			t.Fatalf("page %d fails its own trailer: %v", p, err)
		}
	}
	// Meta and dictionary pages carry trailers too.
	if err := d.ReadSync(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := verifyPageTrailer(0, buf); err != nil {
		t.Fatalf("meta page fails its trailer: %v", err)
	}
}

func TestCorruptPageEscalatesTyped(t *testing.T) {
	st, _ := faultFixture(t)
	bad := st.DataPage(3)
	st.Disk().CorruptPage(bad, 5)
	err := st.ExportScanXML(new(bytes.Buffer))
	if err == nil {
		t.Fatal("scan over damaged medium succeeded")
	}
	var pe *PageError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PageError", err)
	}
	if pe.Kind != PageCorrupt || pe.Page != bad {
		t.Fatalf("PageError = {%v, %v}, want {corrupt, %d}", pe.Kind, pe.Page, bad)
	}
	if st.Ledger().ChecksumFails == 0 {
		t.Fatal("corruption detected but ChecksumFails = 0")
	}
}

func TestTransientReadFaultsRetried(t *testing.T) {
	st, ref := faultFixture(t)
	st.Disk().SetFaults(vdisk.Faults{Seed: 13, ReadError: 0.2, Corrupt: 0.1})
	var out strings.Builder
	if err := st.ExportScanXML(&out); err != nil {
		t.Fatalf("export did not survive 20%% transient faults: %v", err)
	}
	if out.String() != ref {
		t.Fatal("retried export differs from fault-free output")
	}
	led := st.Ledger()
	if led.ReadRetries == 0 {
		t.Fatal("no retries recorded")
	}
	if led.ReadFaults == 0 {
		t.Fatal("no faults drawn")
	}
}

func TestPersistentReadErrorEscalatesIO(t *testing.T) {
	st, _ := faultFixture(t)
	st.Disk().SetFaults(vdisk.Faults{Seed: 1, ReadError: 1})
	err := st.ExportScanXML(new(bytes.Buffer))
	var pe *PageError
	if !errors.As(err, &pe) || pe.Kind != PageIO {
		t.Fatalf("err = %v, want *PageError with io kind", err)
	}
	var re *vdisk.ReadError
	if !errors.As(err, &re) {
		t.Fatal("device ReadError missing from the unwrap chain")
	}
}

func TestOpenRejectsCorruptMeta(t *testing.T) {
	st, _ := faultFixture(t)
	st.Disk().CorruptPage(0, 9)
	_, err := Open(st.Disk())
	if err == nil {
		t.Fatal("Open over a damaged meta page succeeded")
	}
	var pe *PageError
	if !errors.As(err, &pe) || pe.Kind != PageCorrupt || pe.Page != 0 {
		t.Fatalf("err = %v, want corrupt PageError for page 0", err)
	}
}

func TestSwizzleRetriesAfterFault(t *testing.T) {
	st, ref := faultFixture(t)
	st.Disk().SetFaults(vdisk.Faults{Seed: 1, ReadError: 1})
	if err := st.ExportScanXML(new(bytes.Buffer)); err == nil {
		t.Fatal("expected a fault under ReadError=1")
	}
	// Failed loads must not be cached: disarm and the same scan succeeds.
	st.Disk().SetFaults(vdisk.Faults{})
	var out strings.Builder
	if err := st.ExportScanXML(&out); err != nil {
		t.Fatalf("scan after disarm: %v", err)
	}
	if out.String() != ref {
		t.Fatal("post-fault export differs from reference")
	}
}
