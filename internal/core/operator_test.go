package core

import (
	"strings"
	"testing"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"

	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// miniTree reuses the paper's four-cluster tree as an operator-level
// fixture: context d1, the two steps of /A//B.
func miniTree(t testing.TB) (*storage.Store, storage.NodeID, xpath.Step, xpath.Step) {
	t.Helper()
	_, st, path := paperTree(t)
	ctx := paperContext(t, st)
	return st, ctx, path[0], path[1]
}

func TestXStepPassesThroughInapplicable(t *testing.T) {
	st, ctx, _, _ := miniTree(t)
	es := NewEvalState(st, []xpath.Step{
		{Axis: xpath.Child, Test: xpath.Wildcard()},
		{Axis: xpath.Child, Test: xpath.Wildcard()},
	})
	// Feed an instance with S_R = 1 into XStep_1 (applicable only to
	// S_R = 0): it must come out unchanged.
	in := Instance{SL: 0, NL: ctx, SR: 1, NR: ctx}
	x := NewXStep(es, &sliceOp{es: es, items: []Instance{in}}, 1)
	x.Open()
	out, ok := x.Next()
	if !ok || out.SL != in.SL || out.SR != in.SR || out.NL != in.NL || out.NR != in.NR {
		t.Fatalf("passthrough failed: %v %v", out, ok)
	}
	if _, ok := x.Next(); ok {
		t.Fatal("extra output")
	}
	x.Close()
}

func TestXStepExtendsAndStopsAtBorders(t *testing.T) {
	st, ctx, step1, _ := miniTree(t)
	es := NewEvalState(st, []xpath.Step{step1})
	x := NewXStep(es, &sliceOp{es: es, items: []Instance{ContextInstance(ctx)}}, 1)
	x.Open()
	defer x.Close()

	borders, cores := 0, 0
	for {
		out, ok := x.Next()
		if !ok {
			break
		}
		if out.NRBorder {
			borders++
			if out.SR != 0 {
				t.Fatalf("border instance has S_R = %d, want 0 (= i-1)", out.SR)
			}
			if out.TargetR == 0 {
				t.Fatal("border instance missing TargetR")
			}
		} else {
			cores++
			if out.SR != 1 {
				t.Fatalf("core instance has S_R = %d, want 1", out.SR)
			}
			if len(out.Ord) == 0 {
				t.Fatal("core instance missing ord key")
			}
		}
	}
	// d1's A children both live across borders (clusters a and c): the
	// intra-cluster step yields exactly two right-incomplete instances
	// and no core results (d4 fails the test and stays unreported).
	if borders != 2 || cores != 0 {
		t.Fatalf("borders=%d cores=%d, want 2/0", borders, cores)
	}
}

func TestXStepCrossBordersProducesFinals(t *testing.T) {
	st, ctx, step1, _ := miniTree(t)
	es := NewEvalState(st, []xpath.Step{step1})
	x := NewXStep(es, &sliceOp{es: es, items: []Instance{ContextInstance(ctx)}}, 1)
	x.CrossBorders = true
	x.Open()
	defer x.Close()
	cores := 0
	for {
		out, ok := x.Next()
		if !ok {
			break
		}
		if out.NRBorder {
			t.Fatal("crossing XStep emitted a border")
		}
		cores++
	}
	if cores != 2 {
		t.Fatalf("cores = %d, want 2 (a2 and c2)", cores)
	}
}

func TestXAssemblyDeduplicatesFinals(t *testing.T) {
	st, ctx, _, _ := miniTree(t)
	es := NewEvalState(st, []xpath.Step{{Axis: xpath.Child, Test: xpath.Wildcard()}})
	full := Instance{SL: 0, NL: ctx, SR: 1, NR: storage.MakeNodeID(1, 1)}
	a := NewXAssembly(es, &sliceOp{es: es, items: []Instance{full, full, full}}, nil)
	a.Open()
	defer a.Close()
	n := 0
	for {
		if _, ok := a.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("duplicates returned: %d", n)
	}
}

func TestXAssemblyMergesSpeculativeChains(t *testing.T) {
	// Hand-built merge: speculative x says "reachable(1, b) => result r",
	// then a right-incomplete path makes (1, b) reachable; XAssembly must
	// emit r exactly once. The border NodeIDs come from the paper tree.
	st, ctx, _, step2 := miniTree(t)
	_ = step2
	es := NewEvalState(st, []xpath.Step{
		{Axis: xpath.Child, Test: xpath.Wildcard()},
		{Axis: xpath.Child, Test: xpath.Wildcard()},
	})

	// Find a real border pair (pc in cluster d, pp elsewhere).
	var pc, pp storage.NodeID
	for _, b := range st.BordersOf(ctx.Page()) {
		cur := st.Swizzle(b)
		if cur.RecKind() == storage.RecProxyChild {
			pc, pp = b, cur.Target()
			break
		}
	}
	if pc == 0 || pp == 0 {
		t.Fatal("no border pair found")
	}

	result := storage.MakeNodeID(1, 1)
	spec := Instance{SL: 1, NL: pp, NLBorder: true, SR: 2, NR: result}
	crossing := Instance{SL: 0, NL: ctx, SR: 1, NR: pc, NRBorder: true, TargetR: pp}

	a := NewXAssembly(es, &sliceOp{es: es, items: []Instance{spec, crossing}}, nil)
	a.Open()
	defer a.Close()
	var got []Instance
	for {
		out, ok := a.Next()
		if !ok {
			break
		}
		got = append(got, out)
	}
	if len(got) != 1 || got[0].NR != result {
		t.Fatalf("merge failed: %v", got)
	}
	if a.SLen() != 0 {
		t.Fatalf("S not drained: %d", a.SLen())
	}
}

func TestXAssemblySpeculativeStaysParkedWhenUnreachable(t *testing.T) {
	st, _, _, _ := miniTree(t)
	es := NewEvalState(st, []xpath.Step{{Axis: xpath.Child, Test: xpath.Wildcard()}})
	ghost := storage.MakeNodeID(2, 0)
	spec := Instance{SL: 1, NL: ghost, NLBorder: true, SR: 1, NR: storage.MakeNodeID(1, 1)}
	a := NewXAssembly(es, &sliceOp{es: es, items: []Instance{spec}}, nil)
	a.Open()
	defer a.Close()
	if _, ok := a.Next(); ok {
		t.Fatal("unreachable speculation produced a result")
	}
	if a.SLen() != 1 {
		t.Fatalf("S len = %d, want 1", a.SLen())
	}
}

func TestXScheduleGroupsByCluster(t *testing.T) {
	// Instances for interleaved clusters must come back grouped.
	st, ctx, _, _ := miniTree(t)
	es := NewEvalState(st, nil)
	pageA := storage.MakeNodeID(1, 1)
	pageC := storage.MakeNodeID(3, 1)
	seeds := []Instance{
		ContextInstance(pageA), ContextInstance(pageC),
		ContextInstance(pageA), ContextInstance(pageC),
		ContextInstance(ctx),
	}
	x := NewXSchedule(es, &sliceOp{es: es, items: seeds})
	x.Open()
	defer x.Close()
	var pages []uint32
	for {
		out, ok := x.Next()
		if !ok {
			break
		}
		pages = append(pages, uint32(out.NR.Page()))
	}
	if len(pages) != 5 {
		t.Fatalf("returned %d instances", len(pages))
	}
	// Count cluster switches: grouped output switches at most twice.
	switches := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1] {
			switches++
		}
	}
	if switches > 2 {
		t.Fatalf("instances not grouped by cluster: %v", pages)
	}
}

func TestXScheduleShortestPathsFirstWithinCluster(t *testing.T) {
	st, _, _, _ := miniTree(t)
	es := NewEvalState(st, nil)
	target := storage.MakeNodeID(1, 1)
	long := Instance{SL: 0, NL: target, SR: 2, NR: target}
	short := Instance{SL: 0, NL: target, SR: 1, NR: target}
	x := NewXSchedule(es, &sliceOp{es: es, items: []Instance{long, short}})
	x.Open()
	defer x.Close()
	first, _ := x.Next()
	if first.SR != 1 {
		t.Fatalf("expected smallest S_R first, got %d", first.SR)
	}
}

func TestXScanSpeculatesPerBorderAndStep(t *testing.T) {
	st, ctx, step1, step2 := miniTree(t)
	es := NewEvalState(st, []xpath.Step{step1, step2})
	ids := []storage.NodeID{ctx}
	SortContexts(ids)
	x := NewXScan(es, NewContextOp(es, ids))
	x.Open()
	defer x.Close()
	spec, ctxs := 0, 0
	for {
		out, ok := x.Next()
		if !ok {
			break
		}
		if out.NLBorder {
			spec++
			if out.SL != out.SR || out.NL != out.NR {
				t.Fatalf("malformed speculative seed %v", out)
			}
			if out.SL < 0 || out.SL >= 2 {
				t.Fatalf("seed step out of range: %v", out)
			}
		} else {
			ctxs++
		}
	}
	// 6 border records (3 proxy pairs) × 2 steps = 12 seeds + 1 context.
	if spec != 12 || ctxs != 1 {
		t.Fatalf("spec=%d ctxs=%d, want 12/1", spec, ctxs)
	}
}

func TestMultiPlanMatchesSeparatePlans(t *testing.T) {
	dict, doc := buildTree(99, 300)
	st := importTree(t, dict, doc, 512, storage.LayoutShuffled)
	paths := []string{"//b", "/a//c", "//d/.."}

	var want []int
	for _, src := range paths {
		st.ResetForRun()
		steps := xpath.MustParse(dict, src).Simplify().Steps
		want = append(want, BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule, PlanOptions{}).Count())
	}

	st.ResetForRun()
	var queries []MultiQuery
	for _, src := range paths {
		queries = append(queries, MultiQuery{
			Path:     xpath.MustParse(dict, src).Simplify().Steps,
			Contexts: []storage.NodeID{st.Root()},
		})
	}
	got := BuildMultiPlan(st, queries, PlanOptions{}).Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multi plan count[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMultiPlanResultsDetailed(t *testing.T) {
	dict, doc := buildTree(7, 200)
	st := importTree(t, dict, doc, 512, storage.LayoutNatural)
	queries := []MultiQuery{
		{Path: xpath.MustParse(dict, "//b").Simplify().Steps, Contexts: []storage.NodeID{st.Root()}},
		{Path: xpath.MustParse(dict, "//c").Simplify().Steps, Contexts: []storage.NodeID{st.Root()}},
	}
	st.ResetForRun()
	rs := BuildMultiPlan(st, queries, PlanOptions{}).Run()
	if len(rs) != 2 {
		t.Fatal("result arity")
	}
	for qi, results := range rs {
		seen := map[storage.NodeID]bool{}
		for _, r := range results {
			if seen[r.Node] {
				t.Fatalf("query %d returned duplicate %v", qi, r.Node)
			}
			seen[r.Node] = true
		}
	}
}

func BenchmarkXStepIntraCluster(b *testing.B) {
	dict, doc := buildTree(1, 500)
	st := importTree(b, dict, doc, 8192, storage.LayoutContiguous)
	steps := xpath.MustParse(dict, "/a//b").Simplify().Steps
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{}).Count()
	}
}

func BenchmarkSimplePlan(b *testing.B) {
	dict, doc := buildTree(1, 500)
	st := importTree(b, dict, doc, 512, storage.LayoutShuffled)
	steps := xpath.MustParse(dict, "//c").Simplify().Steps
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySimple, PlanOptions{}).Count()
	}
}

func TestDescribeRendersOperatorTree(t *testing.T) {
	dict, doc := buildTree(4, 100)
	st := importTree(t, dict, doc, 512, storage.LayoutNatural)
	steps := xpath.MustParse(dict, "/a//b").Simplify().Steps

	sched := BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule, PlanOptions{}).Describe(dict)
	for _, want := range []string{"XAssembly", "XStep₂(descendant::b)", "XStep₁(child::a)", "XSchedule(k=100", "Context(1 nodes)"} {
		if !strings.Contains(sched, want) {
			t.Fatalf("schedule describe missing %q:\n%s", want, sched)
		}
	}
	scan := BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{SortResults: true}).Describe(dict)
	for _, want := range []string{"SortByDocumentOrder", "XScan(", "feedback→none"} {
		if !strings.Contains(scan, want) {
			t.Fatalf("scan describe missing %q:\n%s", want, scan)
		}
	}
	simple := BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySimple, PlanOptions{}).Describe(dict)
	for _, want := range []string{"Distinct", "unnest-map"} {
		if !strings.Contains(simple, want) {
			t.Fatalf("simple describe missing %q:\n%s", want, simple)
		}
	}
}

func TestQueriesOverCollection(t *testing.T) {
	dict := xmltree.NewDictionary()
	var docs []*xmltree.Node
	wantB := 0
	r := rng.New(77)
	for i := 0; i < 4; i++ {
		_, doc := buildTree(uint64(i)*13+1, 80)
		// Rebuild with shared dict: buildTree uses its own dict; instead
		// construct directly here.
		_ = doc
		b := xmltree.NewBuilder(dict)
		b.Begin("a")
		n := 5 + int(r.Uint64()%10)
		for j := 0; j < n; j++ {
			b.Leaf("b", "x")
		}
		b.End()
		docs = append(docs, b.Doc())
		wantB += n
	}
	disk := newDisk(512)
	st, err := storage.ImportCollection(disk, dict, docs, storage.ImportOptions{PageSize: 512, Layout: storage.LayoutShuffled})
	if err != nil {
		t.Fatal(err)
	}
	steps := xpath.MustParse(dict, "//b").Simplify().Steps
	for _, strat := range allStrategies {
		st.ResetForRun()
		plan := BuildPlan(st, steps, st.Roots(), strat, PlanOptions{})
		if got := plan.Count(); got != wantB {
			t.Fatalf("%v over collection = %d, want %d", strat, got, wantB)
		}
	}
}

// --- micro-benchmarks per operator -------------------------------------------

func benchStore(b *testing.B) (*storage.Store, *xmltree.Dictionary) {
	dict, doc := buildTree(1, 2000)
	st := importTree(b, dict, doc, 8192, storage.LayoutNatural)
	return st, dict
}

func BenchmarkXScheduleQ(b *testing.B) {
	st, dict := benchStore(b)
	steps := xpath.MustParse(dict, "//b").Simplify().Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule, PlanOptions{}).Count()
	}
}

func BenchmarkXScanQ(b *testing.B) {
	st, dict := benchStore(b)
	steps := xpath.MustParse(dict, "//b").Simplify().Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategyScan, PlanOptions{}).Count()
	}
}

func BenchmarkSortedResults(b *testing.B) {
	st, dict := benchStore(b)
	steps := xpath.MustParse(dict, "//b").Simplify().Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategyScan,
			PlanOptions{SortResults: true}).Run()
	}
}

func BenchmarkPredicateFilter(b *testing.B) {
	st, dict := benchStore(b)
	steps := xpath.MustParse(dict, "//b[c]").Simplify().Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ResetForRun()
		BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule, PlanOptions{}).Count()
	}
}
