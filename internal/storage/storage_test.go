package storage

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/ordpath"
	"pathdb/internal/rng"
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
	"pathdb/internal/xpath"
)

// --- helpers ----------------------------------------------------------------

func newDisk(pageSize int) *vdisk.Disk {
	return vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), pageSize)
}

func importDoc(t testing.TB, doc *xmltree.Node, dict *xmltree.Dictionary, pageSize int, layout Layout) *Store {
	t.Helper()
	disk := newDisk(pageSize)
	st, err := Import(disk, dict, doc, ImportOptions{PageSize: pageSize, Layout: layout, Seed: 7})
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	return st
}

// buildTree builds a deterministic pseudo-random document with n elements.
func buildTree(seed uint64, n int) (*xmltree.Dictionary, *xmltree.Node) {
	r := rng.New(seed)
	dict := xmltree.NewDictionary()
	tags := []xmltree.TagID{dict.Intern("a"), dict.Intern("b"), dict.Intern("c"), dict.Intern("d")}
	attrTag := dict.Intern("k")
	doc := xmltree.NewDocument()
	root := xmltree.NewElement(tags[0])
	doc.AppendChild(root)
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		e := xmltree.NewElement(tags[r.Intn(len(tags))])
		parent.AppendChild(e)
		if r.Bool(0.25) {
			e.SetAttr(attrTag, fmt.Sprintf("v%d", i))
		}
		if r.Bool(0.4) {
			e.AppendChild(xmltree.NewText(strings.Repeat("x", r.IntRange(1, 40))))
		}
		nodes = append(nodes, e)
	}
	return dict, doc
}

// assignOrds computes the ord keys Import assigns (no long-text splits).
func assignOrds(doc *xmltree.Node) map[*xmltree.Node]ordpath.Key {
	out := map[*xmltree.Node]ordpath.Key{doc: ordpath.Root()}
	var walk func(n *xmltree.Node, ord ordpath.Key)
	walk = func(n *xmltree.Node, ord ordpath.Key) {
		for i, ch := range n.Children {
			k := ord.BulkChild(i)
			out[ch] = k
			walk(ch, k)
		}
	}
	walk(doc, ordpath.Root())
	return out
}

// nodeKey is a cross-representation identity for comparing result sets.
func logicalNodeKey(n *xmltree.Node, ords map[*xmltree.Node]ordpath.Key) string {
	if n.Kind == xmltree.Attribute {
		return fmt.Sprintf("attr|%s|%d|%s", ords[n.Parent], n.Tag, n.Text)
	}
	return fmt.Sprintf("%d|%s|%d|%s", n.Kind, ords[n], n.Tag, n.Text)
}

func cursorKey(c Cursor) string {
	if c.Kind() == xmltree.Attribute {
		return fmt.Sprintf("attr|%s|%d|%s", c.OrdKey(), c.Tag(), c.Text())
	}
	return fmt.Sprintf("%d|%s|%d|%s", c.Kind(), c.OrdKey(), c.Tag(), c.Text())
}

// evalStepFull applies one step to ctx, crossing all borders synchronously
// (a miniature Simple evaluation of one step, used as ground truth access).
func evalStepFull(s *Store, ctx Cursor, axis xpath.Axis, test xpath.NodeTest) []Cursor {
	var out []Cursor
	var run func(c Cursor)
	run = func(c Cursor) {
		it := s.Step(c, axis, test)
		for {
			r, ok := it.Next()
			if !ok {
				return
			}
			if r.IsBorder() {
				run(s.Swizzle(r.Target()))
				continue
			}
			out = append(out, r)
		}
	}
	run(ctx)
	return out
}

// logicalAxis evaluates an axis on the logical tree.
func logicalAxis(n *xmltree.Node, axis xpath.Axis) []*xmltree.Node {
	var out []*xmltree.Node
	collectDesc := func(root *xmltree.Node, includeSelf bool) {
		root.Walk(func(m *xmltree.Node) bool {
			if m != root || includeSelf {
				out = append(out, m)
			}
			return true
		})
	}
	switch axis {
	case xpath.Self:
		out = []*xmltree.Node{n}
	case xpath.Child:
		out = append(out, n.Children...)
	case xpath.Descendant:
		collectDesc(n, false)
	case xpath.DescendantOrSelf:
		collectDesc(n, true)
	case xpath.Parent:
		if n.Parent != nil {
			out = []*xmltree.Node{n.Parent}
		}
	case xpath.Ancestor:
		for p := n.Parent; p != nil; p = p.Parent {
			out = append(out, p)
		}
	case xpath.AncestorOrSelf:
		for p := n; p != nil; p = p.Parent {
			out = append(out, p)
		}
	case xpath.FollowingSibling, xpath.PrecedingSibling:
		if n.Parent == nil {
			return nil
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
			}
		}
		if idx < 0 {
			return nil // attribute node
		}
		if axis == xpath.FollowingSibling {
			out = append(out, sibs[idx+1:]...)
		} else {
			for i := idx - 1; i >= 0; i-- {
				out = append(out, sibs[i])
			}
		}
	case xpath.AttributeAxis:
		out = append(out, n.Attrs...)
	}
	return out
}

func filterLogical(nodes []*xmltree.Node, test xpath.NodeTest) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range nodes {
		if test.Matches(n.Kind, n.Tag) {
			out = append(out, n)
		}
	}
	return out
}

func sortedKeys(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

// --- NodeID -----------------------------------------------------------------

func TestNodeIDPacking(t *testing.T) {
	id := MakeNodeID(123456, 789)
	if id.Page() != 123456 || id.Slot() != 789 {
		t.Fatalf("packing broken: %v", id)
	}
	if _, ok := id.AttrIndex(); ok {
		t.Fatal("plain id has attr")
	}
	a := id.WithAttr(3)
	if idx, ok := a.AttrIndex(); !ok || idx != 3 {
		t.Fatalf("attr index = %v", a)
	}
	if a.WithoutAttr() != id {
		t.Fatal("WithoutAttr failed")
	}
	if id.String() != "123456.789" || a.String() != "123456.789@3" {
		t.Fatalf("String = %q / %q", id, a)
	}
	if InvalidNodeID.String() != "invalid" {
		t.Fatal("invalid id string")
	}
}

func TestNodeIDProperty(t *testing.T) {
	f := func(page uint32, slot uint16, attr uint8) bool {
		id := MakeNodeID(vdisk.PageID(page), slot)
		if id.Page() != vdisk.PageID(page) || id.Slot() != slot {
			return false
		}
		a := id.WithAttr(int(attr))
		idx, ok := a.AttrIndex()
		return ok && idx == int(attr) && a.Page() == vdisk.PageID(page) && a.Slot() == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- import / export round trips ---------------------------------------------

func TestImportExportTiny(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("site").
		Begin("item").Attr("id", "i1").Leaf("name", "thing").End().
		Begin("item").Leaf("name", "other").End().
		End()
	doc := b.Doc()
	st := importDoc(t, doc, dict, 8192, LayoutContiguous)
	got := st.Export()
	if !xmltree.Equal(doc, got) {
		t.Fatal("tiny round trip failed")
	}
}

func TestImportExportFragmented(t *testing.T) {
	// A page size small enough that almost every element crosses borders.
	dict, doc := buildTree(42, 300)
	for _, layout := range []Layout{LayoutContiguous, LayoutShuffled, LayoutReverse} {
		st := importDoc(t, doc, dict, 512, layout)
		if _, n := st.DataPages(); n < 10 {
			t.Fatalf("layout %v: expected fragmentation, got %d pages", layout, n)
		}
		got := st.Export()
		if !xmltree.Equal(doc, got) {
			t.Fatalf("layout %v: round trip failed", layout)
		}
	}
}

func TestImportRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8, psRaw uint8) bool {
		n := int(sizeRaw%200) + 1
		pageSize := []int{256, 512, 1024, 4096}[psRaw%4]
		dict, doc := buildTree(seed, n)
		disk := newDisk(pageSize)
		st, err := Import(disk, dict, doc, ImportOptions{PageSize: pageSize, Layout: LayoutShuffled, Seed: seed})
		if err != nil {
			t.Logf("seed=%d n=%d ps=%d: %v", seed, n, pageSize, err)
			return false
		}
		return xmltree.Equal(doc, st.Export())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLongTextSplit(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	long := strings.Repeat("lorem ipsum ", 400) // ~4.8 KB
	b.Begin("doc").Text(long).End()
	doc := b.Doc()
	st := importDoc(t, doc, dict, 1024, LayoutContiguous)
	got := st.Export()
	if got.TextContent() != long {
		t.Fatal("split text content mangled")
	}
	// The exported tree has several text children where the original had 1.
	if len(got.Children[0].Children) < 4 {
		t.Fatalf("expected text split, got %d children", len(got.Children[0].Children))
	}
}

func TestPersistAndOpen(t *testing.T) {
	dict, doc := buildTree(5, 120)
	disk := newDisk(512)
	st, err := Import(disk, dict, doc, ImportOptions{PageSize: 512, Layout: LayoutShuffled, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := st.Export()

	// Re-open the same volume from disk alone: dictionary and meta must
	// round-trip through their on-disk form.
	st2, err := Open(disk)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := st2.Export()
	if !xmltree.Equal(want, got) {
		t.Fatal("reopened volume differs")
	}
	if st2.Dict().Len() != dict.Len() {
		t.Fatalf("dict len %d != %d", st2.Dict().Len(), dict.Len())
	}
	for i := 0; i < dict.Len(); i++ {
		if st2.Dict().Name(xmltree.TagID(i)) != dict.Name(xmltree.TagID(i)) {
			t.Fatalf("dict entry %d differs", i)
		}
	}
}

func TestOpenBadMagic(t *testing.T) {
	disk := newDisk(256)
	disk.Write(disk.Alloc(), []byte("not a volume"))
	if _, err := Open(disk); err == nil {
		t.Fatal("Open accepted garbage")
	}
}

func TestImportErrors(t *testing.T) {
	dict := xmltree.NewDictionary()
	disk := newDisk(256)
	if _, err := Import(disk, dict, xmltree.NewElement(dict.Intern("x")), ImportOptions{PageSize: 256}); err == nil {
		t.Fatal("Import accepted a non-document root")
	}
	// Element with attributes too large for any page.
	b := xmltree.NewBuilder(dict)
	b.Begin("x").Attr("big", strings.Repeat("v", 1000)).End()
	if _, err := Import(newDisk(256), dict, b.Doc(), ImportOptions{PageSize: 256}); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestLayoutsPermutePages(t *testing.T) {
	dict, doc := buildTree(9, 200)
	stC := importDoc(t, doc, dict, 512, LayoutContiguous)
	stR := importDoc(t, doc, dict, 512, LayoutReverse)
	// Root element cluster is first in DFS order: page 1 contiguous, last
	// page under reverse.
	_, n := stC.DataPages()
	if stC.Root().Page() != 1 {
		t.Fatalf("contiguous root page = %d", stC.Root().Page())
	}
	if stR.Root().Page() != vdisk.PageID(n) {
		t.Fatalf("reverse root page = %d, want %d", stR.Root().Page(), n)
	}
}

// --- navigation --------------------------------------------------------------

func TestNavigationAgainstLogicalReference(t *testing.T) {
	axes := []xpath.Axis{
		xpath.Self, xpath.Child, xpath.Descendant, xpath.DescendantOrSelf,
		xpath.Parent, xpath.Ancestor, xpath.AncestorOrSelf,
		xpath.FollowingSibling, xpath.PrecedingSibling, xpath.AttributeAxis,
	}
	dict, doc := buildTree(77, 150)
	ords := assignOrds(doc)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)

	tests := []xpath.NodeTest{
		xpath.AnyNode(),
		xpath.Wildcard(),
		xpath.NameTest(dict.Intern("b")),
		xpath.TextTest(),
	}

	// Map logical nodes to stored cursors by walking both trees: compare
	// via ord keys. Collect all core element cursors by a full descendant
	// walk from the document node.
	rootCur := st.Swizzle(st.Root())
	all := evalStepFull(st, rootCur, xpath.DescendantOrSelf, xpath.AnyNode())
	byOrd := map[string]Cursor{}
	for _, c := range all {
		byOrd[c.OrdKey().String()] = c
	}

	var logicalNodes []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) bool {
		logicalNodes = append(logicalNodes, n)
		return true
	})

	r := rng.New(123)
	for trial := 0; trial < 120; trial++ {
		n := logicalNodes[r.Intn(len(logicalNodes))]
		axis := axes[r.Intn(len(axes))]
		test := tests[r.Intn(len(tests))]

		var ctx Cursor
		if n.Kind == xmltree.Document {
			ctx = st.Swizzle(st.Root())
		} else {
			c, ok := byOrd[ords[n].String()]
			if !ok {
				t.Fatalf("no cursor for logical node with ord %s", ords[n])
			}
			ctx = c
		}

		want := filterLogical(logicalAxis(n, axis), test)
		wantKeys := make([]string, len(want))
		for i, w := range want {
			wantKeys[i] = logicalNodeKey(w, ords)
		}
		got := evalStepFull(st, ctx, axis, test)
		gotKeys := make([]string, len(got))
		for i, g := range got {
			gotKeys[i] = cursorKey(g)
		}
		ws, gs := sortedKeys(wantKeys), sortedKeys(gotKeys)
		if strings.Join(ws, "\n") != strings.Join(gs, "\n") {
			t.Fatalf("trial %d: axis=%v test=%s ctx ord=%s\nwant(%d):\n%s\ngot(%d):\n%s",
				trial, axis, test.Render(dict), ords[n], len(ws), strings.Join(ws, "\n"), len(gs), strings.Join(gs, "\n"))
		}
	}
}

func TestNavigationRandomTreesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		dict, doc := buildTree(seed, 60)
		ords := assignOrds(doc)
		st := importDoc(t, doc, dict, 256, LayoutShuffled)
		ctx := st.Swizzle(st.Root())
		// count of descendant-or-self elements must equal logical count.
		got := evalStepFull(st, ctx, xpath.DescendantOrSelf, xpath.Wildcard())
		wantCount := doc.Count(func(n *xmltree.Node) bool { return n.Kind == xmltree.Element })
		if len(got) != wantCount {
			return false
		}
		// every result has a distinct ord key
		seen := map[string]bool{}
		for _, c := range got {
			k := c.OrdKey().String()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		_ = ords
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStepDoesNotLeaveCluster(t *testing.T) {
	// A single StepIter must never touch a page other than its own: the
	// buffer miss count may not grow during iteration.
	dict, doc := buildTree(3, 200)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)
	led := st.Ledger()
	ctx := st.Swizzle(st.Root())
	misses := led.BufferMisses
	it := st.Step(ctx, xpath.DescendantOrSelf, xpath.AnyNode())
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if led.BufferMisses != misses {
		t.Fatalf("intra-cluster step caused %d misses", led.BufferMisses-misses)
	}
}

func TestBordersHaveCompanions(t *testing.T) {
	dict, doc := buildTree(11, 150)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)
	first, n := st.DataPages()
	borders := 0
	for i := 0; i < n; i++ {
		img := st.image(first + vdisk.PageID(i))
		for _, slot := range img.borders {
			borders++
			b := Cursor{st: st, img: img, page: img.page, slot: slot, attr: -1}
			target := b.Target()
			far := st.Swizzle(target)
			if !far.IsBorder() {
				t.Fatalf("companion of %v is not a border", b.ID())
			}
			if far.Target() != b.ID() {
				t.Fatalf("companion link not symmetric: %v -> %v -> %v", b.ID(), target, far.Target())
			}
			if b.RecKind() == far.RecKind() {
				t.Fatal("companions have the same proxy kind")
			}
		}
	}
	if borders == 0 {
		t.Fatal("test document has no borders; increase size")
	}
}

func TestSwizzleCosts(t *testing.T) {
	dict, doc := buildTree(1, 50)
	st := importDoc(t, doc, dict, 8192, LayoutContiguous)
	led := st.Ledger()
	st.ResetForRun()
	c := st.Swizzle(st.Root())
	if led.Swizzles != 1 || led.CPU == 0 {
		t.Fatalf("swizzle not charged: %+v", led)
	}
	c.Unswizzle()
	if led.Unswizzles != 1 {
		t.Fatal("unswizzle not counted")
	}
}

func TestResetForRunColdStart(t *testing.T) {
	dict, doc := buildTree(2, 100)
	st := importDoc(t, doc, dict, 512, LayoutContiguous)
	_ = st.Export() // touch everything
	st.ResetForRun()
	led := st.Ledger()
	if led.Now != 0 || led.PageReads != 0 {
		t.Fatal("ledger not reset")
	}
	if st.Buffer().Len() != 0 {
		t.Fatal("buffer not flushed")
	}
	// First access after reset must be a miss.
	st.Swizzle(st.Root())
	if led.BufferMisses != 1 {
		t.Fatalf("misses = %d, want 1", led.BufferMisses)
	}
}

func TestStats(t *testing.T) {
	dict, doc := buildTree(8, 150)
	st := importDoc(t, doc, dict, 512, LayoutContiguous)
	vs := st.Stats()
	if vs.DataPages < 5 || vs.CoreNodes == 0 || vs.BorderNodes == 0 {
		t.Fatalf("stats = %+v", vs)
	}
	// Borders come in pairs.
	if vs.BorderNodes%2 != 0 {
		t.Fatalf("odd border count %d", vs.BorderNodes)
	}
	wantCore := doc.Size() - doc.Count(func(n *xmltree.Node) bool { return n.Kind == xmltree.Attribute })
	if vs.CoreNodes != wantCore {
		t.Fatalf("core nodes = %d, want %d", vs.CoreNodes, wantCore)
	}
}

func TestManualImportMatchesAssignment(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("R").
		Begin("A").Begin("B").End().End().
		Begin("C").End().
		End()
	doc := b.Doc()
	root := doc.Children[0]
	a := root.Children[0]
	bb := a.Children[0]
	c := root.Children[1]
	assign := func(n *xmltree.Node) int {
		switch n {
		case root:
			return 0
		case a:
			return 1
		case bb:
			return 1
		case c:
			return 2
		}
		t.Fatalf("unexpected node")
		return 0
	}
	disk := newDisk(256)
	st, err := ImportManual(disk, dict, doc, assign, ImportOptions{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, st.Export()) {
		t.Fatal("manual round trip failed")
	}
	if _, n := st.DataPages(); n != 3 {
		t.Fatalf("clusters = %d, want 3", n)
	}
	// Root R on page 1, A and B together on page 2, C on page 3.
	rootCur := st.Swizzle(st.Root())
	if rootCur.ID().Page() != 1 {
		t.Fatal("doc record not on page 1")
	}
	results := evalStepFull(st, rootCur, xpath.Descendant, xpath.Wildcard())
	pages := map[string]vdisk.PageID{}
	for _, r := range results {
		pages[dict.Name(r.Tag())] = r.ID().Page()
	}
	if pages["R"] != 1 || pages["A"] != 2 || pages["B"] != 2 || pages["C"] != 3 {
		t.Fatalf("placement = %v", pages)
	}
}

func TestDecodeCorruptPage(t *testing.T) {
	if _, err := decodePage(0, []byte{1}, 8); err == nil {
		t.Fatal("short page accepted")
	}
	// A slot offset pointing outside the usable region (the slot table sits
	// at the end of usable(pageSize), before the checksum trailer).
	raw := make([]byte, 64)
	slotPos := usable(64) - 2
	raw[0] = 1        // one slot
	raw[slotPos] = 60 // offset 60 > usable size 56
	if _, err := decodePage(0, raw, 64); err == nil {
		t.Fatal("bad slot offset accepted")
	}
	// The dead-slot sentinel is legal and yields a tombstone.
	raw[slotPos], raw[slotPos+1] = 0xFF, 0xFF
	img, err := decodePage(0, raw, 64)
	if err != nil || !img.recs[0].dead {
		t.Fatalf("dead slot not tolerated: %v", err)
	}
}

func TestRecKindStrings(t *testing.T) {
	for k, want := range map[RecKind]string{
		RecDoc: "doc", RecElem: "elem", RecText: "text",
		RecComment: "comment", RecPI: "pi",
		RecProxyChild: "proxy-child", RecProxyParent: "proxy-parent",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if !RecProxyChild.IsProxy() || RecElem.IsProxy() {
		t.Fatal("IsProxy wrong")
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutContiguous.String() != "contiguous" || LayoutShuffled.String() != "shuffled" || LayoutReverse.String() != "reverse" {
		t.Fatal("layout names")
	}
}

func TestImportCollectionRoundTrip(t *testing.T) {
	dict := xmltree.NewDictionary()
	var docs []*xmltree.Node
	var wants []*xmltree.Node
	for i := 0; i < 3; i++ {
		b := xmltree.NewBuilder(dict)
		b.Begin("doc").Attr("n", fmt.Sprintf("%d", i)).
			Leaf("title", fmt.Sprintf("member %d", i)).
			End()
		docs = append(docs, b.Doc())
		b2 := xmltree.NewBuilder(dict)
		b2.Begin("doc").Attr("n", fmt.Sprintf("%d", i)).
			Leaf("title", fmt.Sprintf("member %d", i)).
			End()
		wants = append(wants, b2.Doc())
	}
	disk := newDisk(512)
	st, err := ImportCollection(disk, dict, docs, ImportOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Roots()) != 3 {
		t.Fatalf("roots = %d", len(st.Roots()))
	}
	for i := range docs {
		if !xmltree.Equal(wants[i], st.ExportDocument(i)) {
			t.Fatalf("member %d round trip failed", i)
		}
	}
	// Persistence across Open.
	st2, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Roots()) != 3 {
		t.Fatal("roots lost on reopen")
	}
	if !xmltree.Equal(wants[2], st2.ExportDocument(2)) {
		t.Fatal("member 2 lost on reopen")
	}
}

func TestCollectionOrdKeysDisjoint(t *testing.T) {
	dict := xmltree.NewDictionary()
	var docs []*xmltree.Node
	for i := 0; i < 2; i++ {
		b := xmltree.NewBuilder(dict)
		b.Begin("r").Leaf("x", "v").End()
		docs = append(docs, b.Doc())
	}
	st, err := ImportCollection(newDisk(512), dict, docs, ImportOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Gather all element ord keys across both documents; they must be
	// pairwise distinct.
	seen := map[string]bool{}
	for _, root := range st.Roots() {
		for _, c := range evalStepFull(st, st.Swizzle(root), xpath.DescendantOrSelf, xpath.Wildcard()) {
			k := c.OrdKey().String()
			if seen[k] {
				t.Fatalf("duplicate ord key %s across documents", k)
			}
			seen[k] = true
		}
	}
}

func TestImportCollectionErrors(t *testing.T) {
	dict := xmltree.NewDictionary()
	if _, err := ImportCollection(newDisk(256), dict, nil, ImportOptions{PageSize: 256}); err == nil {
		t.Fatal("empty collection accepted")
	}
	if _, err := ImportCollection(newDisk(256), dict,
		[]*xmltree.Node{xmltree.NewElement(dict.Intern("x"))}, ImportOptions{PageSize: 256}); err == nil {
		t.Fatal("non-document member accepted")
	}
}

func TestAttributeContextAxes(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").Begin("b").Attr("x", "1").Attr("y", "2").End().End()
	st := importDoc(t, b.Doc(), dict, 8192, LayoutContiguous)

	// Resolve the attribute cursor @x of <b>.
	bCur := evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("b")))[0]
	attrs := evalStepFull(st, bCur, xpath.AttributeAxis, xpath.AnyNode())
	if len(attrs) != 2 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	x := attrs[0]

	// self::node() yields the attribute itself.
	self := evalStepFull(st, x, xpath.Self, xpath.AnyNode())
	if len(self) != 1 || self[0].Kind() != xmltree.Attribute {
		t.Fatalf("self from attribute = %v", self)
	}
	// self with non-matching name test yields nothing.
	if got := evalStepFull(st, x, xpath.Self, xpath.NameTest(dict.Intern("zz"))); len(got) != 0 {
		t.Fatal("name-filtered self matched")
	}
	// parent is the owning element.
	par := evalStepFull(st, x, xpath.Parent, xpath.AnyNode())
	if len(par) != 1 || par[0].Tag() != dict.Intern("b") {
		t.Fatalf("parent from attribute = %v", par)
	}
	// ancestors: b, a, document.
	anc := evalStepFull(st, x, xpath.Ancestor, xpath.AnyNode())
	if len(anc) != 3 {
		t.Fatalf("ancestors from attribute = %d", len(anc))
	}
	// ancestor-or-self additionally includes the attribute.
	aos := evalStepFull(st, x, xpath.AncestorOrSelf, xpath.AnyNode())
	if len(aos) != 4 {
		t.Fatalf("ancestor-or-self from attribute = %d", len(aos))
	}
	// child from an attribute is empty.
	if got := evalStepFull(st, x, xpath.Child, xpath.AnyNode()); len(got) != 0 {
		t.Fatal("attribute has children")
	}
}

func TestStepUnsupportedAxisPanics(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").End()
	st := importDoc(t, b.Doc(), dict, 8192, LayoutContiguous)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported axis")
		}
	}()
	st.Step(st.Swizzle(st.Root()), xpath.Axis(200), xpath.AnyNode())
}

func TestCursorAccessorsAndValid(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").Attr("k", "v").Text("body").End()
	st := importDoc(t, b.Doc(), dict, 8192, LayoutContiguous)
	var zero Cursor
	if zero.Valid() {
		t.Fatal("zero cursor valid")
	}
	a := evalStepFull(st, st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard())[0]
	if !a.Valid() || a.AttrCount() != 1 {
		t.Fatalf("accessors: valid=%v attrs=%d", a.Valid(), a.AttrCount())
	}
	if a.RecKind() != RecElem || a.Kind() != xmltree.Element {
		t.Fatal("kind accessors")
	}
	if ClusterOf(a.ID()) != a.ID().Page() {
		t.Fatal("ClusterOf")
	}
	// Unswizzle/Swizzle round trip.
	id := a.Unswizzle()
	if st.Swizzle(id).Tag() != a.Tag() {
		t.Fatal("swizzle round trip")
	}
}

func TestExportScanMatchesWalkExport(t *testing.T) {
	dict, doc := buildTree(61, 250)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)

	// Reference: serialize the walk-based export.
	want := xmlwriteString(dict, st.Export())

	st.ResetForRun()
	var sb strings.Builder
	if err := st.ExportScanXML(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("scan export differs:\nwant %.200s\ngot  %.200s", want, sb.String())
	}
	led := st.Ledger()
	// One sequential pass: almost every read continues the pattern.
	if led.SeqPageReads < led.PageReads-2 {
		t.Fatalf("scan export not sequential: %d of %d reads", led.SeqPageReads, led.PageReads)
	}
}

func TestExportScanFasterOnFragmentedVolume(t *testing.T) {
	dict, doc := buildTree(67, 400)
	st := importDoc(t, doc, dict, 512, LayoutShuffled)
	st.SetBufferCapacity(8) // force refaults on the random walk

	st.ResetForRun()
	var a strings.Builder
	if err := st.ExportScanXML(&a); err != nil {
		t.Fatal(err)
	}
	scanTime := st.Ledger().Total()

	st.ResetForRun()
	b := xmlwriteString(dict, st.Export())
	walkTime := st.Ledger().Total()

	if a.String() != b {
		t.Fatal("exports differ")
	}
	if scanTime >= walkTime {
		t.Fatalf("scan export (%v) not faster than walk export (%v) on fragmented volume", scanTime, walkTime)
	}
}

func TestExportScanCollection(t *testing.T) {
	dict := xmltree.NewDictionary()
	var docs []*xmltree.Node
	for i := 0; i < 2; i++ {
		b := xmltree.NewBuilder(dict)
		b.Begin("m").Leaf("v", fmt.Sprintf("%d", i)).End()
		docs = append(docs, b.Doc())
	}
	st, err := ImportCollection(newDisk(512), dict, docs, ImportOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var sb strings.Builder
		if err := st.ExportScanDocumentXML(&sb, i); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("<m><v>%d</v></m>", i)
		if sb.String() != want {
			t.Fatalf("member %d = %q, want %q", i, sb.String(), want)
		}
	}
}

// xmlwriteString serializes via the xmlwrite package (test helper).
func xmlwriteString(dict *xmltree.Dictionary, doc *xmltree.Node) string {
	return xmlwrite.String(dict, doc, xmlwrite.Options{})
}
