// Package ordpath implements insert-friendly document-order keys in the
// spirit of ORDPATH labels (O'Neil et al., SIGMOD 2004), which the paper
// assumes for re-establishing document order after its operators have
// processed nodes in physical order (Sec. 5.5).
//
// A Key is a sequence of unsigned components, one per tree level, encoded
// as LEB128 varints. Initial bulk-load assigns even ordinals (2, 4, 6, …)
// to siblings, leaving odd ordinals and component extension free for later
// insertions without relabeling — the property that makes these keys
// update-friendly where plain preorder numbers are not (the criticism of
// Sec. 2 against scan-order formats).
package ordpath

import (
	"fmt"
	"strings"
)

// Key is an encoded document-order label. The root element's key is the
// single component [2]; the virtual document node has the empty key. Keys
// compare in document order via Compare.
type Key []byte

// Root returns the key of the virtual document root (empty).
func Root() Key { return Key{} }

// FromComponents builds a key from explicit components.
func FromComponents(comps ...uint64) Key {
	var k Key
	for _, c := range comps {
		k = appendUvarint(k, c)
	}
	return k
}

// Child returns the key of a child of k with the given ordinal.
func (k Key) Child(ordinal uint64) Key {
	out := make(Key, len(k), len(k)+2)
	copy(out, k)
	return appendUvarint(out, ordinal)
}

// BulkChild returns the key for the i-th (0-based) child during initial
// load, using even ordinals so gaps remain for future insertions.
func (k Key) BulkChild(i int) Key {
	return k.Child(uint64(i+1) * 2)
}

// Components decodes the key into its component list.
func (k Key) Components() []uint64 {
	var out []uint64
	for i := 0; i < len(k); {
		v, n := uvarint(k[i:])
		if n <= 0 {
			panic("ordpath: corrupt key")
		}
		out = append(out, v)
		i += n
	}
	return out
}

// Level returns the number of components (the node's depth).
func (k Key) Level() int {
	lvl := 0
	for i := 0; i < len(k); {
		_, n := uvarint(k[i:])
		if n <= 0 {
			panic("ordpath: corrupt key")
		}
		lvl++
		i += n
	}
	return lvl
}

// Compare orders keys in document order: component-wise numeric comparison,
// with a proper prefix (the ancestor) ordering before its extensions.
func Compare(a, b Key) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, an := uvarint(a[i:])
		bv, bn := uvarint(b[j:])
		if an <= 0 || bn <= 0 {
			panic("ordpath: corrupt key")
		}
		if av < bv {
			return -1
		}
		if av > bv {
			return 1
		}
		i += an
		j += bn
	}
	switch {
	case i < len(a):
		return 1 // a extends b: descendant follows ancestor
	case j < len(b):
		return -1
	default:
		return 0
	}
}

// IsAncestorOf reports whether k is a proper ancestor of other, i.e. k's
// components are a proper prefix of other's.
func (k Key) IsAncestorOf(other Key) bool {
	if len(k) >= len(other) {
		return false
	}
	// Component boundaries align iff the shorter key is a byte prefix that
	// ends exactly on a boundary; with LEB128 a byte prefix ending on a
	// component boundary is exactly a component prefix.
	for i := range k {
		if k[i] != other[i] {
			return false
		}
	}
	// len(k) must be a boundary in other: continuation bytes have the high
	// bit set, so the previous byte (if any) must terminate a varint.
	return len(k) == 0 || k[len(k)-1]&0x80 == 0
}

// Between returns a key strictly between a and b in document order,
// suitable for inserting a new sibling. It requires Compare(a, b) < 0 and
// that b is not a descendant of a (nothing fits between a node and its
// first descendant position only when a careting level is added, which
// this function handles by extending a).
func Between(a, b Key) Key {
	if Compare(a, b) >= 0 {
		panic("ordpath: Between requires a < b")
	}
	ac, bc := a.Components(), b.Components()
	// Find first differing component index.
	i := 0
	for i < len(ac) && i < len(bc) && ac[i] == bc[i] {
		i++
	}
	switch {
	case i == len(ac):
		// a is a proper ancestor (prefix) of b: go just before b's next
		// component by descending below a with a component smaller than
		// bc[i]. If bc[i] > 1 we can use bc[i]-1 careted; for bc[i] == 1 we
		// caret below ordinal 0; for bc[i] == 0 we must recurse one level
		// deeper into b (keys produced by this package never end in a 0
		// component, so the recursion terminates before exhausting b).
		prefix := FromComponents(ac...)
		switch {
		case bc[i] > 1:
			return prefix.Child(bc[i] - 1).Child(2)
		case bc[i] == 1:
			return prefix.Child(0).Child(2)
		default:
			return Between(prefix.Child(0), b)
		}
	case i == len(bc):
		panic("ordpath: Between with b ancestor of a (a < b violated)")
	default:
		if bc[i]-ac[i] >= 2 {
			// Room for a whole ordinal between them.
			mid := ac[i] + (bc[i]-ac[i])/2
			return FromComponents(append(append([]uint64{}, ac[:i]...), mid)...)
		}
		// Adjacent ordinals: caret below a's position. Any key of the form
		// ac[:i+1] ++ [x] with x larger than a's continuation sorts after a
		// (if a ends here) and before b.
		if i == len(ac)-1 {
			// a ends at this component: extend it.
			return FromComponents(ac...).Child(2)
		}
		// a continues below: pick a component after a's next one.
		return FromComponents(append(append([]uint64{}, ac[:i+1]...), ac[i+1]+1)...).Child(2)
	}
}

// After returns a key that sorts after k and after every descendant of k,
// but before k's current following siblings' successors — the key for
// appending a new sibling right after the subtree rooted at k. It bumps
// k's final component by 2.
func After(k Key) Key {
	comps := k.Components()
	if len(comps) == 0 {
		panic("ordpath: After of the root key")
	}
	comps[len(comps)-1] += 2
	return FromComponents(comps...)
}

// String renders the key as dotted components, e.g. "2.4.2".
func (k Key) String() string {
	comps := k.Components()
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ".")
}

// appendUvarint appends v as LEB128.
func appendUvarint(k Key, v uint64) Key {
	for v >= 0x80 {
		k = append(k, byte(v)|0x80)
		v >>= 7
	}
	return append(k, byte(v))
}

// uvarint decodes a LEB128 value, returning the value and byte length
// (0 if the input is empty or truncated).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || (i == 9 && c > 1) {
				return 0, 0 // overflow
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}
