package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/ordpath"
	"pathdb/internal/storage"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// xjoinPaths exercises every join-relevant shape: child/descendant/
// attribute branches, literals, nested predicates, unions, multi-level
// branches, recursion under predicates, bounded repetition, and the
// non-joinable axes that force the per-candidate fallback inside XJoin.
var xjoinPaths = []string{
	`/lib/book[meta]`,
	`/lib/book[@lang]`,
	`/lib/book[@lang="en"]/title`,
	`//book[meta/year="1992"]`,
	`//book[meta][@lang]`,
	`//book[title="t9"]`,
	`//book[meta/year]`,
	`//book[//year]`,
	`//book[.//year="1991"]`,
	`//book[meta[year]]`,
	`//book[title|meta]`,
	`//book[(meta/year){1}]`,
	`/lib/book[..]`,          // parent axis: fallback branch
	`//year[ancestor::book]`, // ancestor axis: fallback branch
	`//book[.]`,
	`//book[.="x"]`,
}

func xjoinFixture(t testing.TB) (*xmltree.Dictionary, *xmltree.Node, *storage.Store) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("lib")
	for i := 0; i < 40; i++ {
		b.Begin("book")
		if i%3 == 0 {
			b.Attr("lang", "en")
		}
		b.Leaf("title", fmt.Sprintf("t%d", i))
		if i%2 == 0 {
			b.Begin("meta").Leaf("year", fmt.Sprintf("%d", 1990+i%5)).End()
		}
		b.End()
	}
	b.End()
	doc := b.Doc()
	return dict, doc, importTree(t, dict, doc, 256, storage.LayoutShuffled)
}

// TestXJoinMatchesReferenceAllStrategies drives the structural-join
// evaluator across every strategy and path shape and compares against the
// logical-tree reference (and hence, transitively, against PredFilter,
// which TestPredicatesAllStrategies holds to the same reference).
func TestXJoinMatchesReferenceAllStrategies(t *testing.T) {
	dict, doc, st := xjoinFixture(t)
	for _, src := range xjoinPaths {
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogicalPred(doc, parsed.Steps))
		for _, strat := range allStrategies {
			got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, PlanOptions{PredEval: PredJoin}))
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("%v on %q:\nwant %v\ngot  %v", strat, src, want, got)
			}
		}
	}
}

// TestXJoinPropertyRandomTrees mirrors TestPredicatesPropertyRandomTrees
// with the join evaluator.
func TestXJoinPropertyRandomTrees(t *testing.T) {
	srcs := []string{"//a[b]", "/a//c[d]", "//a[b/c]", `//b[.="t"]`, "//a[.//c]", "//a[b|c]", "//a[(b){1,2}]"}
	f := func(seed uint64, pi uint8) bool {
		dict, doc := buildTree(seed, 120)
		st := importTree(t, dict, doc, 256, storage.LayoutShuffled)
		src := srcs[int(pi)%len(srcs)]
		parsed := xpath.MustParse(dict, src).Simplify()
		want := logicalKeySet(doc, evalPathLogicalPred(doc, parsed.Steps))
		for _, strat := range allStrategies {
			got := resultKeySet(st, runStrategy(t, st, parsed.Steps, strat, PlanOptions{PredEval: PredJoin}))
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Logf("seed=%d src=%q strat=%v\nwant %v\ngot  %v", seed, src, strat, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestXJoinCachesEmptyFilterSets pins the empty-set round-trip through
// the derived cache: a branch with zero matches must be cached as a
// present (empty, non-nil) set — resident for JoinBuildCached and served
// on the next compile — not silently rebuilt with a whole-document
// enumeration on every query while the chooser prices the build as free.
func TestXJoinCachesEmptyFilterSets(t *testing.T) {
	dict, _, st := xjoinFixture(t)
	// Two levels with an empty lower level: branchFilterSet's bottom-up
	// loop returns its nil early-exit, the shape that used to decay into a
	// cache miss on every Get.
	parsed := xpath.MustParse(dict, `//book[meta/zzz]`).Simplify()
	run := func() int {
		plan := BuildPlan(st, parsed.Steps, []storage.NodeID{st.Root()}, StrategySimple,
			PlanOptions{PredEval: PredJoin})
		return len(plan.Run())
	}
	if n := run(); n != 0 {
		t.Fatalf("query over absent tag returned %d nodes", n)
	}
	var pred xpath.Predicate
	found := false
	for _, s := range parsed.Steps {
		if len(s.Predicates) > 0 {
			pred, found = s.Predicates[0], true
		}
	}
	if !found {
		t.Fatal("no predicate on parsed path")
	}
	if !JoinBuildCached(st, pred) {
		t.Fatal("empty filter set not resident in the derived cache after the first join")
	}
	dcache, epoch, ok := st.Derived()
	if !ok {
		t.Fatal("store has no derived cache")
	}
	// The cached value must be a present empty slice, not a typed nil:
	// compileJoinPreds once used `set == nil` as its miss test, so a nil
	// round-trip silently redid the whole-document enumeration every query.
	key := joinBranchKey(dict, joinableSteps(pred.Paths[0]), pred)
	v, ok := dcache.Get(epoch, key)
	if !ok {
		t.Fatalf("filter set key %q missing from the derived cache", key)
	}
	if set, ok := v.([]ordpath.Key); !ok || set == nil {
		t.Fatalf("empty filter set cached as %#v; a nil value decays every Get into a rebuild", v)
	}
	if n := run(); n != 0 {
		t.Fatalf("second run returned %d nodes", n)
	}
}

// TestXJoinDegradesUnderMemLimit forces the buffer over the plan's memory
// limit so the operator switches to per-candidate evaluation mid-run.
func TestXJoinDegradesUnderMemLimit(t *testing.T) {
	dict, doc, st := xjoinFixture(t)
	parsed := xpath.MustParse(dict, `//book[meta]`).Simplify()
	want := logicalKeySet(doc, evalPathLogicalPred(doc, parsed.Steps))
	got := resultKeySet(st, runStrategy(t, st, parsed.Steps, StrategySimple,
		PlanOptions{PredEval: PredJoin, MemLimit: 3}))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("degraded run diverged:\nwant %v\ngot  %v", want, got)
	}
}

// TestMultiPlanHonorsPredicates is the regression test for the
// shared-scheduler predicate gap: BuildMultiPlan used to build bare XStep
// chains, silently dropping every predicate of a union branch. Both
// evaluators must filter inside a multi-plan exactly as in a solo plan.
func TestMultiPlanHonorsPredicates(t *testing.T) {
	dict, doc, st := xjoinFixture(t)
	srcs := []string{`//book[meta/year="1992"]`, `//book[@lang]`, `//title`}
	for _, pe := range []PredEval{PredNested, PredJoin} {
		var queries []MultiQuery
		var want [][]string
		for _, src := range srcs {
			steps := xpath.MustParse(dict, src).Simplify().Steps
			queries = append(queries, MultiQuery{Path: steps, Contexts: []storage.NodeID{st.Root()}})
			want = append(want, logicalKeySet(doc, evalPathLogicalPred(doc, steps)))
		}
		st.ResetForRun()
		results := BuildMultiPlan(st, queries, PlanOptions{PredEval: pe}).Run()
		for i, rs := range results {
			got := resultKeySet(st, rs)
			if strings.Join(got, "\n") != strings.Join(want[i], "\n") {
				t.Fatalf("%v multi-plan member %q:\nwant %v\ngot  %v", pe, srcs[i], want[i], got)
			}
		}
	}
}

func TestXJoinDescribe(t *testing.T) {
	dict, doc := buildTree(4, 50)
	st := importTree(t, dict, doc, 512, storage.LayoutNatural)
	steps := xpath.MustParse(dict, "/a//b[c]").Simplify().Steps
	desc := BuildPlan(st, steps, []storage.NodeID{st.Root()}, StrategySchedule,
		PlanOptions{PredEval: PredJoin}).Describe(dict)
	if !strings.Contains(desc, "XJoin(step 2, 1 predicates, structural semi-join)") {
		t.Fatalf("describe missing join:\n%s", desc)
	}
}
