package bench

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"pathdb/internal/core"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// Tests use a small entity scale so the whole suite stays fast; the
// figure-level assertions are about orderings, which hold across scales.
func testWorkload() *Workload {
	return NewWorkload(Config{EntityScale: 0.02, Seed: 11})
}

func TestStrategiesReturnSameCounts(t *testing.T) {
	w := testWorkload()
	for _, q := range AllQueries {
		var counts []int
		for _, s := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
			counts = append(counts, w.Run(1, q, s).Count)
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("%s counts diverge: %v", q.Name, counts)
		}
		if counts[0] == 0 {
			t.Fatalf("%s returned no results", q.Name)
		}
	}
}

// TestTable3Shape asserts the paper's qualitative Table 3 findings. It
// runs at the calibrated workload scale (a tenth of full XMark), where the
// crossovers of the paper reproduce; smaller toy scales shift them.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated-scale workload")
	}
	w := NewWorkload(Config{EntityScale: 0.1, Seed: 11})
	get := func(q Query, s core.Strategy) Measurement { return w.Run(1, q, s) }

	// Q6': XSchedule fastest, Simple slowest.
	q6s, q6d, q6c := get(Q6, core.StrategySimple), get(Q6, core.StrategySchedule), get(Q6, core.StrategyScan)
	if !(q6d.Total < q6c.Total && q6c.Total < q6s.Total) {
		t.Errorf("Q6' ordering wrong: simple=%v sched=%v scan=%v", q6s.Total, q6d.Total, q6c.Total)
	}

	// Q7: XScan fastest by a clear margin; Simple slowest.
	q7s, q7d, q7c := get(Q7, core.StrategySimple), get(Q7, core.StrategySchedule), get(Q7, core.StrategyScan)
	if !(q7c.Total < q7d.Total && q7d.Total < q7s.Total) {
		t.Errorf("Q7 ordering wrong: simple=%v sched=%v scan=%v", q7s.Total, q7d.Total, q7c.Total)
	}
	if float64(q7s.Total) < 2*float64(q7c.Total) {
		t.Errorf("Q7 scan advantage too small: simple=%v scan=%v", q7s.Total, q7c.Total)
	}

	// Q15: XScan much slower than the others; XSchedule still beats Simple.
	q15s, q15d, q15c := get(Q15, core.StrategySimple), get(Q15, core.StrategySchedule), get(Q15, core.StrategyScan)
	if !(q15d.Total < q15s.Total && q15s.Total < q15c.Total) {
		t.Errorf("Q15 ordering wrong: simple=%v sched=%v scan=%v", q15s.Total, q15d.Total, q15c.Total)
	}

	// CPU fractions: XScan plans are CPU-heavy (paper: 62-77%).
	if q7c.CPUFraction() < 0.3 {
		t.Errorf("Q7 scan CPU fraction %v too low", q7c.CPUFraction())
	}
	if q15c.CPUFraction() < q15s.CPUFraction() {
		t.Error("Q15 scan should be more CPU-bound than simple")
	}
}

func TestXScheduleAlwaysBeatsSimple(t *testing.T) {
	// The paper: "the XSchedule plan was always faster than the Simple
	// plan". Check across queries and scale factors.
	w := testWorkload()
	for _, q := range AllQueries {
		for _, sf := range []float64{0.5, 1, 2} {
			s := w.Run(sf, q, core.StrategySimple)
			d := w.Run(sf, q, core.StrategySchedule)
			if d.Total >= s.Total {
				t.Errorf("%s sf=%v: schedule (%v) not faster than simple (%v)", q.Name, sf, d.Total, s.Total)
			}
		}
	}
}

func TestFigureGrowsWithScaleFactor(t *testing.T) {
	w := testWorkload()
	ms := w.Figure(Q7, []float64{0.5, 1, 2})
	byKey := map[string]Measurement{}
	for _, m := range ms {
		byKey[m.Strategy.String()+"@"+fmtSF(m.SF)] = m
	}
	for _, s := range []string{"simple", "xschedule", "xscan"} {
		if !(byKey[s+"@0.5"].Total < byKey[s+"@1"].Total && byKey[s+"@1"].Total < byKey[s+"@2"].Total) {
			t.Errorf("%s not monotone in scale factor", s)
		}
	}
}

func fmtSF(sf float64) string {
	switch sf {
	case 0.5:
		return "0.5"
	case 1:
		return "1"
	case 2:
		return "2"
	}
	return "?"
}

func TestRenderFigureAndTable(t *testing.T) {
	w := testWorkload()
	var sb strings.Builder
	RenderFigure(&sb, "Fig 9 (Q6')", w.Figure(Q6, []float64{0.5, 1}))
	if !strings.Contains(sb.String(), "xschedule") || !strings.Contains(sb.String(), "0.50") {
		t.Fatalf("figure rendering: %q", sb.String())
	}
	sb.Reset()
	RenderTable3(&sb, w.Table3(1))
	if !strings.Contains(sb.String(), "Q15") || !strings.Contains(sb.String(), "total[s]") {
		t.Fatalf("table rendering: %q", sb.String())
	}
}

func TestAblationK(t *testing.T) {
	w := testWorkload()
	rows := w.AblationK(1, []int{1, 100})
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	if rows[0].Count != rows[1].Count {
		t.Fatalf("k changed results: %v", rows)
	}
}

func TestAblationLayoutShufflePenalizesSimple(t *testing.T) {
	rows := AblationLayout(Config{EntityScale: 0.05, Seed: 11}, 1, Q6)
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// Fragmentation hurts Simple hard, XScan barely.
	simpleContig := byLabel["contiguous/simple"].Total
	simpleShuffle := byLabel["shuffled/simple"].Total
	if float64(simpleShuffle) < 1.5*float64(simpleContig) {
		t.Errorf("shuffle should slow simple: contiguous=%v shuffled=%v", simpleContig, simpleShuffle)
	}
	scanContig := byLabel["contiguous/xscan"].Total
	scanShuffle := byLabel["shuffled/xscan"].Total
	if float64(scanShuffle) > 1.2*float64(scanContig) {
		t.Errorf("shuffle should not slow scan: contiguous=%v shuffled=%v", scanContig, scanShuffle)
	}
}

func TestAblationSpeculativeReducesRevisits(t *testing.T) {
	w := testWorkload()
	rows := w.AblationSpeculative(1)
	if rows[0].Count != rows[1].Count {
		t.Fatalf("speculation changed results: %v", rows)
	}
	if rows[1].Clusters > rows[0].Clusters {
		t.Errorf("speculation should not increase cluster visits: %v vs %v", rows[1].Clusters, rows[0].Clusters)
	}
}

func TestAblationFallbackCorrectUnderPressure(t *testing.T) {
	w := testWorkload()
	rows := w.AblationFallback(0.5, []int{0, 8})
	if rows[0].Count != rows[1].Count {
		t.Fatalf("fallback changed results: %v", rows)
	}
	if !strings.Contains(rows[1].Extra, "fallbacks=1") {
		t.Fatalf("limited run did not fall back: %v", rows[1])
	}
}

func TestAblationMultiQuerySharesIO(t *testing.T) {
	// Use a larger document: the interference between concurrent plans
	// only shows once the working set clearly exceeds the buffer pool.
	w := NewWorkload(Config{EntityScale: 0.1, Seed: 11})
	rows := w.AblationMultiQuery(1)
	if rows[0].Count != rows[1].Count {
		t.Fatalf("multi-query changed results: %v", rows)
	}
	// Note: Clusters counts queue activations, which the shared scheduler
	// may have more of; the decisive metric is total time.
	if float64(rows[1].Total) > 0.9*float64(rows[0].Total) {
		t.Errorf("shared scheduler not clearly faster: %v vs %v", rows[1].Total, rows[0].Total)
	}
}

func TestAblationDiskPolicy(t *testing.T) {
	w := testWorkload()
	rows := w.AblationDiskPolicy(1)
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["policy=sstf"].Total > byLabel["policy=fifo"].Total {
		t.Errorf("SSTF slower than FIFO: %v vs %v",
			byLabel["policy=sstf"].Total, byLabel["policy=fifo"].Total)
	}
	if byLabel["policy=sstf"].Count != byLabel["policy=fifo"].Count {
		t.Fatal("policy changed results")
	}
}

func TestAblationFirstStepAll(t *testing.T) {
	w := testWorkload()
	rows := w.AblationFirstStepAll(0.5)
	if rows[0].Count != rows[1].Count {
		t.Fatalf("// optimisation changed results: %v", rows)
	}
	// The optimisation avoids storing step-1 right ends.
	if rows[0].CPU > rows[1].CPU {
		t.Errorf("optimised run used more CPU: %v vs %v", rows[0].CPU, rows[1].CPU)
	}
}

func TestAblationUpdatesWidensGap(t *testing.T) {
	w := testWorkload()
	rows := w.AblationUpdates(0.5, 150)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	fresh := byLabel["fresh/simple"]
	after := byLabel["after 150 inserts/simple"]
	if after.Count != fresh.Count+150 {
		t.Fatalf("insert count wrong: %d vs %d", after.Count, fresh.Count)
	}
	if after.Total <= fresh.Total {
		t.Error("updates should slow the simple plan")
	}
	// All strategies agree after updates.
	if byLabel["after 150 inserts/xscan"].Count != after.Count ||
		byLabel["after 150 inserts/xschedule"].Count != after.Count {
		t.Fatal("strategies disagree after updates")
	}
}

// TestDeterministicFigureOutput pins the rendered figure data against a
// golden file: the virtual-clock simulation must be bit-identical across
// runs and machines. Regenerate with -run TestDeterministicFigureOutput
// -update-golden after an intentional cost-model change.
func TestDeterministicFigureOutput(t *testing.T) {
	w := NewWorkload(Config{EntityScale: 0.01, Seed: 7})
	var sb strings.Builder
	RenderFigure(&sb, "golden", w.Figure(Q6, []float64{0.5, 1}))
	got := sb.String()

	const golden = "testdata/fig_q6_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("figure output changed:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestAblationBufferSizeSessionReuse(t *testing.T) {
	w := testWorkload()
	st, _ := w.Store(1)
	_, pages := st.DataPages()
	rows := w.AblationBufferSize(1, []int{12, pages + 10})
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	small := byLabel["buffer=12/simple"]
	big := byLabel[fmt.Sprintf("buffer=%d/simple", pages+10)]
	if small.Count != big.Count {
		t.Fatal("buffer size changed results")
	}
	if float64(big.Total) > 0.7*float64(small.Total) {
		t.Errorf("whole-document pool should speed the session: %v vs %v", big.Total, small.Total)
	}
}
