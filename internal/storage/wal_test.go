package storage

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// walFixture imports a small document and returns the store plus a handle
// for inserting under the root element.
func walFixture(t testing.TB) (*Store, *xmltree.Dictionary, NodeID) {
	t.Helper()
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root")
	for i := 0; i < 10; i++ {
		b.Leaf("x", strings.Repeat("d", 24))
	}
	b.End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)
	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	return st, dict, rootElem.ID()
}

func insertOne(t testing.TB, st *Store, dict *xmltree.Dictionary, parent NodeID, i int) error {
	e := xmltree.NewElement(dict.Intern("ins"))
	e.AppendChild(xmltree.NewText(fmt.Sprintf("v%d", i)))
	_, err := st.InsertSubtree(parent, InvalidNodeID, e)
	return err
}

func TestWALRoundTripWithoutCrash(t *testing.T) {
	st, dict, root := walFixture(t)
	for i := 0; i < 50; i++ {
		if err := insertOne(t, st, dict, root, i); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen: no pending WAL, all data present.
	st2, err := Open(st.Disk())
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Export().CountTag(dict.Intern("ins")); got != 50 {
		t.Fatalf("ins after reopen = %d", got)
	}
}

// TestWALCrashAtomicity crashes the disk after every possible number of
// writes during one multi-page update transaction. After recovery the
// document must be either entirely pre-update or entirely post-update —
// never a torn mix with dangling proxies.
func TestWALCrashAtomicity(t *testing.T) {
	for cut := 0; cut < 40; cut++ {
		st, dict, root := walFixture(t)
		// Fill the page so the next insert becomes a multi-page
		// transaction (overflow + companion + meta writes).
		for i := 0; i < 30; i++ {
			if err := insertOne(t, st, dict, root, i); err != nil {
				t.Fatal(err)
			}
		}
		before := st.Export()
		beforeCount := before.CountTag(dict.Intern("ins"))

		st.Disk().SetWriteFault(cut)
		_ = insertOne(t, st, dict, root, 999) // may or may not survive
		st.Disk().SetWriteFault(-1)

		st2, err := Open(st.Disk())
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		after := st2.Export() // must not panic on dangling structure
		got := after.CountTag(dict.Intern("ins"))
		if got != beforeCount && got != beforeCount+1 {
			t.Fatalf("cut=%d: ins count = %d, want %d or %d", cut, got, beforeCount, beforeCount+1)
		}
		// Every original node survives regardless of the crash point.
		if after.CountTag(dict.Intern("x")) != 10 {
			t.Fatalf("cut=%d: original nodes lost", cut)
		}
		// And the store keeps working: navigation + another insert.
		rootElem, _ := st2.Step(st2.Swizzle(st2.Root()), xpath.Child, xpath.Wildcard()).Next()
		if err := insertOne(t, st2, dict, rootElem.ID(), 1000); err != nil {
			t.Fatalf("cut=%d: post-recovery insert failed: %v", cut, err)
		}
		if st2.Export().CountTag(dict.Intern("ins")) != got+1 {
			t.Fatalf("cut=%d: post-recovery insert lost", cut)
		}
	}
}

func TestWALCrashDuringDelete(t *testing.T) {
	f := func(cutRaw uint8) bool {
		cut := int(cutRaw % 32)
		dict, doc := buildTree(91, 120)
		st := importDoc(t, doc, dict, 512, LayoutContiguous)
		// Pick a subtree whose deletion spans several pages.
		var victim Cursor
		for _, c := range evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.Wildcard()) {
			if len(evalStepFull(st, c, xpath.Descendant, xpath.Wildcard())) > 10 {
				victim = c
				break
			}
		}
		if !victim.Valid() {
			return true
		}
		beforeSize := st.Export().Size()
		victimSize := 0
		// Count the victim subtree's exported size (nodes incl. attrs).
		victimSize = st.ExportSubtree(victim.ID()).Size()

		st.Disk().SetWriteFault(cut)
		_ = st.DeleteSubtree(victim.ID())
		st.Disk().SetWriteFault(-1)

		st2, err := Open(st.Disk())
		if err != nil {
			t.Logf("cut=%d: %v", cut, err)
			return false
		}
		got := st2.Export().Size()
		if got != beforeSize && got != beforeSize-victimSize {
			t.Logf("cut=%d: size %d, want %d or %d", cut, got, beforeSize, beforeSize-victimSize)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}

func TestWALRecoveryIsIdempotent(t *testing.T) {
	st, dict, root := walFixture(t)
	for i := 0; i < 30; i++ {
		if err := insertOne(t, st, dict, root, i); err != nil {
			t.Fatal(err)
		}
	}
	// Crash right after the commit point (meta written, images not yet
	// applied): meta write is #1..? Use a cut that lands between commit
	// and apply for a multi-page txn; sweep a few cuts and re-open TWICE.
	for cut := 1; cut < 12; cut++ {
		st.Disk().SetWriteFault(cut)
		_ = insertOne(t, st, dict, root, 100+cut)
		st.Disk().SetWriteFault(-1)
		st1, err := Open(st.Disk())
		if err != nil {
			t.Fatalf("first recovery: %v", err)
		}
		st2, err := Open(st.Disk())
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if st1.Export().Size() != st2.Export().Size() {
			t.Fatal("recovery not idempotent")
		}
		st = st2
		root = func() NodeID {
			re, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
			return re.ID()
		}()
	}
}

func TestWALHeaderCodec(t *testing.T) {
	entries := []walEntry{
		{target: 3, logPage: 100, checksum: 0xDEADBEEF},
		{target: 7, logPage: 101, checksum: 42},
	}
	raw := encodeWalHeader(512, entries)
	buf := make([]byte, 512)
	copy(buf, raw)
	got, ok := decodeWalHeader(buf)
	if !ok || len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Fatalf("codec round trip: %v %v", got, ok)
	}
	if _, ok := decodeWalHeader([]byte("garbage")); ok {
		t.Fatal("garbage accepted")
	}
}

// TestWALRandomCrashSequence interleaves random updates with random crash
// points: after each recovery the volume must equal the shadow tree of
// either all committed operations or all-but-the-interrupted one, and the
// engine must keep accepting updates.
func TestWALRandomCrashSequence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dict, doc := buildTree(seed^0xC4A5, 80)
		shadow := cloneTree(doc)
		st := importDoc(t, doc, dict, 512, LayoutNatural)
		insTag := dict.Intern("w")

		for op := 0; op < 8; op++ {
			// Choose an insertion parent: the root element (stable target
			// regardless of relocations).
			rootElem, ok := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
			if !ok {
				t.Log("root element missing")
				return false
			}
			frag := xmltree.NewElement(insTag)
			frag.AppendChild(xmltree.NewText(fmt.Sprintf("op%d", op)))

			cut := -1 // no fault
			if r.Bool(0.5) {
				cut = r.Intn(12)
				st.Disk().SetWriteFault(cut)
			}
			_, insErr := st.InsertSubtree(rootElem.ID(), InvalidNodeID, cloneTree(frag))
			st.Disk().SetWriteFault(-1)

			// Re-open (recovery) after any faulted op.
			if cut >= 0 {
				st2, err := Open(st.Disk())
				if err != nil {
					t.Logf("seed %d op %d: recovery: %v", seed, op, err)
					return false
				}
				st = st2
			}

			// The shadow advances only if the operation survived. Decide by
			// counting: the insert survived iff the count grew.
			got := st.Export().CountTag(insTag)
			want := shadow.CountTag(insTag)
			switch got {
			case want + 1:
				insertAtShadow(shadow.Children[0], nil, cloneTree(frag))
			case want:
				// Lost to the crash; insErr may or may not be set.
			default:
				t.Logf("seed %d op %d: count %d, want %d or %d (err %v)", seed, op, got, want, want+1, insErr)
				return false
			}
			if !xmltree.Equal(shadow, st.Export()) {
				t.Logf("seed %d op %d: tree diverged", seed, op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
