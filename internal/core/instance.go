// Package core implements the paper's contribution: the physical path
// algebra over partial path instances.
//
// A partial path instance (Sec. 4.3) represents an incomplete evaluation of
// a location path π: a consecutive range of steps [l, r] mapped to nodes,
// where either end may be a border node standing for an un-traversed
// inter-cluster edge. Following Sec. 4.4, instances are represented as
// 4-attribute tuples (S_L, N_L, S_R, N_R); right-incomplete instances carry
// S_R = r-1 ("the final step has not been fully evaluated").
//
// The operators — XStep, XAssembly(R), XSchedule(R), XScan (Sec. 5) — are
// iterators in the classic Open/Next/Close style. A plan is a chain
//
//	context → I/O operator (XSchedule | XScan) → XStep₁ … XStepₙ → XAssembly
//
// in which the single I/O operator performs every cluster load for the
// path, enabling asynchronous reordering or a single sequential scan, while
// the XStep operators perform only intra-cluster navigation. The Simple
// baseline (Sec. 5.1) is the same XStep chain with border crossing enabled
// (nested-loop Unnest-Map behaviour), which is also the fallback mode of
// Sec. 5.4.6.
package core

import (
	"fmt"

	"pathdb/internal/ordpath"
	"pathdb/internal/storage"
)

// Instance is a partial path instance in its 4-attribute tuple form.
//
// Invariants: 0 ≤ SL ≤ SR; NL/NR name nodes (core or border per the flags).
// When NRBorder is set, the instance is right-incomplete and SR is r-1.
// When NLBorder is set, the instance is left-incomplete (speculative).
type Instance struct {
	SL int
	NL storage.NodeID
	SR int
	NR storage.NodeID

	// Path tags the location path this instance belongs to when several
	// paths share one I/O-performing operator (the multi-query extension
	// of Sec. 7); single-path plans leave it 0.
	Path int

	NLBorder bool
	NRBorder bool

	// TargetR caches target(N_R) for right-incomplete instances, resolved
	// by XStep while the border's cluster was loaded (the companion NodeID
	// is stored inside the border record, Sec. 3.4). XAssembly reads it
	// without any further I/O. Zero when not applicable.
	TargetR storage.NodeID

	// Ord is the document-order key of NR, captured while its cluster was
	// loaded, so a final sort needs no further I/O (Sec. 5.5). Only set on
	// right-complete instances.
	Ord ordpath.Key

	// cur caches the swizzled representation of NR while the instance
	// flows between XStep operators (Sec. 5.3.2.3); operators that park
	// instances in memory structures drop it (unswizzle).
	cur    storage.Cursor
	curSet bool
}

// ContextInstance returns the instance representing a context node n:
// non-full, complete, with S_L = S_R = 0 (Sec. 5.1).
func ContextInstance(n storage.NodeID) Instance {
	return Instance{SL: 0, NL: n, SR: 0, NR: n}
}

// LeftComplete reports whether the left end is a core node.
func (p Instance) LeftComplete() bool { return !p.NLBorder }

// RightComplete reports whether the right end is a core node.
func (p Instance) RightComplete() bool { return !p.NRBorder }

// Complete reports whether both ends are core nodes.
func (p Instance) Complete() bool { return !p.NLBorder && !p.NRBorder }

// Full reports whether the instance is a full path instance for a path of
// the given length: complete with l = 0 and r = |π| (Sec. 4.2).
func (p Instance) Full(pathLen int) bool {
	return p.Complete() && p.SL == 0 && p.SR == pathLen
}

// EndL returns the left end (step, node) pair.
func (p Instance) EndL() End { return End{Step: p.SL, Node: p.NL} }

// EndR returns the right end (step, node) pair.
func (p Instance) EndR() End { return End{Step: p.SR, Node: p.NR} }

// dropCur strips the swizzled cache (used when parking the instance in a
// memory structure).
func (p Instance) dropCur() Instance {
	p.cur = storage.Cursor{}
	p.curSet = false
	return p
}

// String renders the tuple for debugging.
func (p Instance) String() string {
	lb, rb := "", ""
	if p.NLBorder {
		lb = "*"
	}
	if p.NRBorder {
		rb = "*"
	}
	return fmt.Sprintf("[%d:%v%s … %d:%v%s]", p.SL, p.NL, lb, p.SR, p.NR, rb)
}

// End identifies one end of a path instance: a (step, node) pair. Ends are
// the keys of the R and S structures in XAssembly.
type End struct {
	Step int
	Node storage.NodeID
}

// String renders the end pair.
func (e End) String() string { return fmt.Sprintf("(%d,%v)", e.Step, e.Node) }

// Operator is the iterator interface (Sec. 5.2) shared by all physical
// operators. Next returns ok=false when the sequence is exhausted. Open
// must be called before Next; Close releases state and may be called once
// after processing.
//
// Data corruption in the storage layer surfaces as a panic rather than an
// error return: the operators evaluate over an immutable, freshly imported
// volume, so I/O-level failures are programming errors in this codebase.
type Operator interface {
	Open()
	Next() (Instance, bool)
	Close()
}
