package storage

import (
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// WriteTxn stages one transaction's updates against a pinned snapshot.
// All reads — validation, ord-key derivation, placement — go through a
// snapshot view of the base version, augmented with an overlay of the
// transaction's own staged page images so later operations observe earlier
// ones (read-your-writes). Nothing is written to the device until the txn
// manager relocates the write set to copy-on-write targets and logs the
// commit group; an abandoned WriteTxn leaves the volume untouched.
//
// A WriteTxn is single-goroutine; the txn manager serializes writers.
type WriteTxn struct {
	base    *Store
	view    *Store
	u       *updater
	overlay map[vdisk.PageID]*pageImage
}

// BeginWrite starts staging a transaction against base version vm,
// charging reads to led. The txn manager calls this under its staging
// lock with vm = the current version.
func (s *Store) BeginWrite(vm *VersionMap, led *stats.Ledger) *WriteTxn {
	view := s.WithSnapshot(vm, led)
	t := &WriteTxn{base: s, view: view, overlay: map[vdisk.PageID]*pageImage{}}
	view.overlay = t.overlay
	t.u = newUpdater(view)
	return t
}

// catchFault converts a transported page fault into the returned error —
// staging reads the snapshot through the error-free navigation interfaces,
// so a bad page surfaces here, not at a query boundary.
func catchFault(err *error) {
	if r := recover(); r != nil {
		if pe, ok := AsPageFault(r); ok {
			*err = pe
			return
		}
		panic(r)
	}
}

// InsertSubtree stages an insert (same contract as Store.InsertSubtree,
// but deferred until the manager commits the transaction).
func (t *WriteTxn) InsertSubtree(parent NodeID, before NodeID, frag *xmltree.Node) (id NodeID, err error) {
	defer catchFault(&err)
	id, err = t.view.insertSubtreeWith(t.u, parent, before, frag)
	if err != nil {
		return InvalidNodeID, err
	}
	return id, t.refreshOverlay()
}

// DeleteSubtree stages a delete (same contract as Store.DeleteSubtree).
func (t *WriteTxn) DeleteSubtree(id NodeID) (err error) {
	defer catchFault(&err)
	if err := t.view.deleteSubtreeWith(t.u, id); err != nil {
		return err
	}
	return t.refreshOverlay()
}

// refreshOverlay republishes every staged dirty page into the overlay, so
// the next operation's reads see this one's mutations. Encode + decode
// round-trips through the page format, which keeps the overlay images
// structurally identical to what a committed read would produce.
func (t *WriteTxn) refreshOverlay() error {
	ps := t.base.disk.PageSize()
	for p, lp := range t.u.pages {
		if !lp.dirty {
			continue
		}
		raw, err := encodePageImage(lp.img, ps)
		if err != nil {
			return err
		}
		img, err := decodePage(p, finalizePage(raw, ps), ps)
		if err != nil {
			return err
		}
		t.overlay[p] = img
	}
	return nil
}

// WriteSet is the staged outcome of a transaction: the after-image of
// every touched logical page plus the fresh (identity-mapped) extension
// pages the staging allocated.
type WriteSet struct {
	Images map[vdisk.PageID][]byte
	Fresh  []vdisk.PageID
}

// WriteSet encodes the staged pages. Called once, at commit.
func (t *WriteTxn) WriteSet() (WriteSet, error) {
	images, err := t.u.stage()
	if err != nil {
		return WriteSet{}, err
	}
	return WriteSet{Images: images, Fresh: append([]vdisk.PageID(nil), t.u.fresh...)}, nil
}

// FreshPages returns the pages allocated by staging so far — on abort the
// manager recycles them as copy targets instead of leaking them.
func (t *WriteTxn) FreshPages() []vdisk.PageID {
	return append([]vdisk.PageID(nil), t.u.fresh...)
}

// Ledger returns the staging view's cost ledger.
func (t *WriteTxn) Ledger() *stats.Ledger { return t.view.led }
