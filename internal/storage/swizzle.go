package storage

import (
	"sync"
	"sync/atomic"

	"pathdb/internal/vdisk"
)

// swizShards is the number of latch shards of the swizzle cache; a power of
// two, sized like the buffer manager's page-table shards.
const swizShards = 64

// swizEntry is one cached page image. The mutex serializes the decode:
// losers of the publication race block until the winner has decoded, then
// share its image — decode-once semantics under contention. Unlike a
// sync.Once, a failed load (the fault plane's terminal errors) publishes
// nothing, so the next access retries instead of inheriting a nil image.
type swizEntry struct {
	mu  sync.Mutex
	img atomic.Pointer[pageImage]
}

// swizCache is the sharded, double-checked cache of decoded (swizzled) page
// images, shared by a base Store and all its Reader views. The shard latch
// covers only the map probe and insert; the buffer Fix and the decode run
// outside it (under the entry's mutex), so a slow decode never blocks
// lookups of other pages in the same shard and the lock order stays
// buffer-manager locks → swizzle shard (the eviction handler calls drop
// while holding manager locks; the decode path never holds a shard latch
// while calling into the pool).
type swizCache struct {
	shards [swizShards]struct {
		mu      sync.RWMutex
		entries map[vdisk.PageID]*swizEntry
	}
}

func newSwizCache() *swizCache {
	c := &swizCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[vdisk.PageID]*swizEntry)
	}
	return c
}

// entry returns the cache entry for p, creating it if absent.
func (c *swizCache) entry(p vdisk.PageID) *swizEntry {
	sh := &c.shards[uint32(p)&(swizShards-1)]
	sh.mu.RLock()
	e := sh.entries[p]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	sh.mu.Lock()
	if e = sh.entries[p]; e == nil {
		e = &swizEntry{}
		sh.entries[p] = e
	}
	sh.mu.Unlock()
	return e
}

// drop discards the cached image of p (buffer eviction, update
// invalidation). Readers already holding the image keep using it — images
// are immutable and self-contained — while the next entry(p) re-decodes.
func (c *swizCache) drop(p vdisk.PageID) {
	sh := &c.shards[uint32(p)&(swizShards-1)]
	sh.mu.Lock()
	delete(sh.entries, p)
	sh.mu.Unlock()
}

// reset empties every shard in place (keeping the cache's identity, which
// Reader views share by pointer).
func (c *swizCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[vdisk.PageID]*swizEntry)
		sh.mu.Unlock()
	}
}
