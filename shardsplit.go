package pathdb

import (
	"fmt"
	"strconv"

	"pathdb/internal/ordpath"
	"pathdb/internal/xmark"
	"pathdb/internal/xmlparse"
	"pathdb/internal/xmltree"
)

// SplitEntityFanout is the minimum number of same-tag element siblings a
// container must hold before those children are treated as a partitioned
// entity collection. Containers below the threshold stay on the spine (and
// are therefore replicated on every shard), so small structural elements
// never fragment while large homogeneous collections — XMark's items,
// persons, auctions — spread across shards.
const SplitEntityFanout = 8

// ShardSet is one corpus partitioned across independent volumes: the
// outcome of GenerateXMarkSharded / LoadXMLSharded. Each member of Shards
// is a fully independent DB — its own simulated disk (clock domain),
// buffer pool, cost ledger, transaction manager and plan chooser — holding
// the replicated container spine plus the entity subtrees the placement
// function assigned to it.
//
// Spine is a volume holding the spine alone (nil for single-shard sets and
// document-collection sets, which replicate nothing). Because every shard
// imports the identical spine tree with spine children placed before
// entities, a spine node has the same order key on every shard and on
// Spine itself; a scatter-gather coordinator uses that to count replicated
// matches exactly once (see internal/shard).
type ShardSet struct {
	Shards []*DB
	Spine  *DB

	// Keys are the placement keys of every entity (or collection member)
	// in document order; Placement[i] is the shard Keys[i] was assigned
	// to. Both are deterministic for a fixed corpus and placement
	// function, so tests can verify distribution skew and restart-stable
	// routing.
	Keys      []string
	Placement []int
}

// Documents returns per-shard entity counts (how many placement units each
// shard received) — the distribution the consistent-hash ring produced.
func (s *ShardSet) EntityCounts() []int {
	counts := make([]int, len(s.Shards))
	for _, p := range s.Placement {
		counts[p]++
	}
	return counts
}

// GenerateXMarkSharded builds the XMark corpus once and partitions it
// across n volumes. place maps a placement key (a stable
// container-path/tag#ordinal string) to a shard in [0, n); the
// consistent-hash ring in internal/shard is the intended implementation.
func GenerateXMarkSharded(cfg XMarkConfig, opts Options, n int, place func(key string) int) (*ShardSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathdb: sharded load needs n >= 1, got %d", n)
	}
	opts = opts.withDefaults()
	dict := xmltree.NewDictionary()
	doc := xmark.Generate(dict, xmark.Config{
		ScaleFactor: cfg.ScaleFactor,
		Seed:        cfg.Seed,
		EntityScale: cfg.EntityScale,
	})
	return splitAndLoad(dict, doc, opts, n, place)
}

// LoadXMLSharded parses one XML document and partitions it across n
// volumes, exactly as GenerateXMarkSharded does for the generated corpus.
func LoadXMLSharded(data []byte, opts Options, n int, place func(key string) int) (*ShardSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathdb: sharded load needs n >= 1, got %d", n)
	}
	opts = opts.withDefaults()
	dict := xmltree.NewDictionary()
	doc, err := xmlparse.Parse(dict, data)
	if err != nil {
		return nil, err
	}
	return splitAndLoad(dict, doc, opts, n, place)
}

// splitAndLoad partitions doc and imports each piece into its own volume.
// All volumes share one tag dictionary so a query string parses to the
// same tag tests everywhere.
func splitAndLoad(dict *xmltree.Dictionary, doc *xmltree.Node, opts Options, n int, place func(key string) int) (*ShardSet, error) {
	trees, spineTree, keys, placement := splitDoc(dict, doc, n, place)
	set := &ShardSet{Keys: keys, Placement: placement}
	for _, t := range trees {
		db, err := loadTree(dict, t, opts)
		if err != nil {
			return nil, err
		}
		set.Shards = append(set.Shards, db)
	}
	if n > 1 {
		spine, err := loadTree(dict, spineTree, opts)
		if err != nil {
			return nil, err
		}
		set.Spine = spine
	}
	return set, nil
}

// splitDoc partitions one document tree into n shard trees plus the spine
// tree. The spine — every node that is not part of a partitioned entity
// collection — is replicated on all shards; entity subtrees move (not
// copy) to the shard place assigns.
//
// Within each container the spine children are emitted first, in original
// relative order, and the shard's entities after them, also in original
// relative order. Spine children therefore occupy the same sibling
// positions on every shard, which makes a spine node's order key identical
// across shards and on the spine volume — the invariant the scatter-gather
// merge relies on. Entities keep document order within their shard.
func splitDoc(dict *xmltree.Dictionary, doc *xmltree.Node, n int, place func(key string) int) (shards []*xmltree.Node, spine *xmltree.Node, keys []string, placement []int) {
	shards = make([]*xmltree.Node, n)
	for i := range shards {
		shards[i] = xmltree.NewDocument()
	}
	spine = xmltree.NewDocument()

	var walk func(src *xmltree.Node, copies []*xmltree.Node, sp *xmltree.Node, key string)
	walk = func(src *xmltree.Node, copies []*xmltree.Node, sp *xmltree.Node, key string) {
		// A child is an entity when at least SplitEntityFanout element
		// siblings share its tag — a homogeneous collection worth
		// spreading. Everything else (including text and comments at
		// container level) is spine.
		tagCount := make(map[xmltree.TagID]int)
		for _, ch := range src.Children {
			if ch.Kind == xmltree.Element {
				tagCount[ch.Tag]++
			}
		}
		isEntity := func(ch *xmltree.Node) bool {
			return ch.Kind == xmltree.Element && tagCount[ch.Tag] >= SplitEntityFanout
		}

		// Spine children first (identical positions everywhere).
		spinePos := 0
		for _, ch := range src.Children {
			if isEntity(ch) {
				continue
			}
			clones := make([]*xmltree.Node, len(copies))
			for s := range copies {
				clones[s] = shallowClone(ch)
				copies[s].AppendChild(clones[s])
			}
			spClone := shallowClone(ch)
			sp.AppendChild(spClone)
			if ch.Kind == xmltree.Element {
				childKey := key + "/" + dict.Name(ch.Tag) + "[" + strconv.Itoa(spinePos) + "]"
				walk(ch, clones, spClone, childKey)
			}
			spinePos++
		}

		// Then the entities, moved wholesale to their placed shard.
		entIdx := make(map[xmltree.TagID]int)
		for _, ch := range src.Children {
			if !isEntity(ch) {
				continue
			}
			i := entIdx[ch.Tag]
			entIdx[ch.Tag]++
			k := key + "/" + dict.Name(ch.Tag) + "#" + strconv.Itoa(i)
			s := place(k)
			if s < 0 || s >= n {
				s = 0
			}
			copies[s].AppendChild(ch)
			keys = append(keys, k)
			placement = append(placement, s)
		}
	}
	walk(doc, shards, spine, "")
	return shards, spine, keys, placement
}

// shallowClone copies one node without its children (attributes included —
// they belong to the node, not the child sequence).
func shallowClone(n *xmltree.Node) *xmltree.Node {
	c := &xmltree.Node{Kind: n.Kind, Tag: n.Tag, Text: n.Text}
	for _, a := range n.Attrs {
		c.SetAttr(a.Tag, a.Text)
	}
	return c
}

// CompareDocOrder orders two nodes by their document-order keys. The nodes
// may come from different volumes of one ShardSet: splitting preserves
// per-volume document order and replicated spine nodes carry identical
// keys everywhere, so a cross-shard merge sorted by (CompareDocOrder,
// shard) is deterministic and spine-consistent.
func CompareDocOrder(a, b Node) int {
	ka := a.db.store.Swizzle(a.id).OrdKey()
	kb := b.db.store.Swizzle(b.id).OrdKey()
	return ordpath.Compare(ka, kb)
}
