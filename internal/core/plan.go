package core

import (
	"context"
	"fmt"

	"pathdb/internal/ordpath"
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// Strategy selects the physical evaluation method for a location path —
// the three plan alternatives of the paper's evaluation (Sec. 6.2).
type Strategy uint8

// Plan strategies.
const (
	// StrategySimple is the nested-loop Unnest-Map baseline (Sec. 5.1).
	StrategySimple Strategy = iota
	// StrategySchedule uses XSchedule with asynchronous I/O (Sec. 5.3.4).
	StrategySchedule
	// StrategyScan uses XScan with one sequential scan (Sec. 5.4.3).
	StrategyScan
)

func (s Strategy) String() string {
	switch s {
	case StrategySimple:
		return "simple"
	case StrategySchedule:
		return "xschedule"
	case StrategyScan:
		return "xscan"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// PredEval selects the physical evaluator for step predicates.
type PredEval uint8

const (
	// PredAuto defers to the cost model (internal/plan); a plan built
	// without a chooser treats it as PredNested.
	PredAuto PredEval = iota
	// PredNested probes each candidate with a per-node Simple sub-plan
	// (PredFilter) — the safe default, linear in candidates × probe cost.
	PredNested
	// PredJoin evaluates predicates set-at-a-time with ordpath structural
	// semi-joins (XJoin); branches the join cannot express still fall back
	// to per-candidate probes inside the operator.
	PredJoin
)

func (p PredEval) String() string {
	switch p {
	case PredNested:
		return "nested"
	case PredJoin:
		return "join"
	default:
		return "auto"
	}
}

// PlanOptions tunes plan construction.
type PlanOptions struct {
	// K is XSchedule's queue fill target; 0 means DefaultK (100).
	K int
	// Speculative turns on left-incomplete generation in XSchedule
	// (Sec. 5.4.4); XScan always speculates.
	Speculative bool
	// MemLimit bounds XAssembly's S structure (0 = unlimited); exceeding
	// it triggers fallback mode (Sec. 5.4.6).
	MemLimit int
	// SortResults appends a document-order sort (Sec. 5.5).
	SortResults bool
	// NoFirstStepAllOpt disables the '//' optimisation of Sec. 5.4.5.4
	// even when it applies (for ablations).
	NoFirstStepAllOpt bool
	// Ctx, when non-nil, threads a deadline/cancellation context through
	// the plan's operators; a cancelled plan ends its result stream early.
	Ctx context.Context
	// Arena supplies pooled per-query scratch to the plan's operators.
	// Optional; one arena may serve only one running plan at a time.
	Arena *Arena
	// PredEval picks the predicate evaluator (default PredNested). The
	// cost model (internal/plan) decides per query from the synopsis.
	PredEval PredEval
}

// Plan is an executable physical plan for one location path.
type Plan struct {
	es   *EvalState
	root Operator

	Strategy Strategy
	Assembly *XAssembly // nil for Simple plans
	Schedule *XSchedule // nil unless StrategySchedule
}

// BuildPlan compiles a plan evaluating path from the given context nodes
// over store. The path is the physical step list (apply xpath.Simplify
// beforehand if desired); absolute paths pass the document root as the
// single context.
func BuildPlan(store *storage.Store, path []xpath.Step, contexts []storage.NodeID, strat Strategy, opts PlanOptions) *Plan {
	es := NewEvalState(store, path)
	es.MemLimit = opts.MemLimit
	es.Ctx = opts.Ctx
	es.Arena = opts.Arena

	ctxIDs := append([]storage.NodeID(nil), contexts...)
	p := &Plan{es: es, Strategy: strat}

	// chain appends XStepᵢ (plus a predicate evaluator when the step
	// carries predicates) for every location step.
	chain := func(op Operator, crossBorders bool) Operator {
		for i := 1; i <= len(path); i++ {
			xs := NewXStep(es, op, i)
			xs.CrossBorders = crossBorders
			op = xs
			if len(path[i-1].Predicates) > 0 {
				if opts.PredEval == PredJoin {
					op = NewXJoin(es, op, i)
				} else {
					op = NewPredFilter(es, op, i)
				}
			}
		}
		return op
	}

	var top Operator
	switch strat {
	case StrategySimple:
		top = NewDistinct(es, chain(NewContextOp(es, ctxIDs), true))

	case StrategySchedule:
		sched := NewXSchedule(es, NewContextOp(es, ctxIDs))
		if opts.K > 0 {
			sched.K = opts.K
		}
		sched.Speculative = opts.Speculative
		sched.Paths = [][]xpath.Step{path}
		asm := NewXAssembly(es, chain(sched, false), sched)
		p.Assembly, p.Schedule = asm, sched
		top = asm

	case StrategyScan:
		SortContexts(ctxIDs)
		scan := NewXScan(es, NewContextOp(es, ctxIDs))
		asm := NewXAssembly(es, chain(scan, false), nil)
		if !opts.NoFirstStepAllOpt && len(path) > 0 &&
			path[0].Axis == xpath.DescendantOrSelf && path[0].Test.Kind == xpath.KindAny &&
			len(path[0].Predicates) == 0 {
			// '//' optimisation: every node is reachable after step 1
			// because the scan visits all clusters (Sec. 5.4.5.4).
			asm.FirstStepAll = true
		}
		p.Assembly = asm
		top = asm

	default:
		panic("core: unknown strategy")
	}

	if opts.SortResults {
		top = NewSortByDocumentOrder(es, top)
	}
	p.root = top
	return p
}

// State exposes the shared evaluation state (tests, stats).
func (p *Plan) State() *EvalState { return p.es }

// Root returns the top operator for custom consumption.
func (p *Plan) Root() Operator { return p.root }

// Result is one result node of a path evaluation.
type Result struct {
	Node storage.NodeID
	Ord  ordpath.Key
}

// Run executes the plan and collects all result nodes.
func (p *Plan) Run() []Result {
	p.root.Open()
	defer p.root.Close()
	var out []Result
	for {
		inst, ok := p.root.Next()
		if !ok {
			return out
		}
		out = append(out, Result{Node: inst.NR, Ord: inst.Ord})
	}
}

// Count executes the plan and returns the number of results — the
// aggregate form used by XMark Q6' and Q7, where no sort is needed
// (Sec. 5.5).
func (p *Plan) Count() int {
	p.root.Open()
	defer p.root.Close()
	n := 0
	for {
		if _, ok := p.root.Next(); !ok {
			return n
		}
		n++
	}
}
