// Package buffer implements the page buffer manager between the storage
// engine and the virtual disk.
//
// It models the costs the paper attributes to this layer (Sec. 1, 3.6): a
// page access requires a hash-table probe (with its latch), a miss adds a
// disk read and possibly an eviction, and translating a NodeID into an
// in-memory pointer ("swizzling") is charged separately by the storage
// layer on top of Fix.
//
// The manager also fronts the asynchronous interface the XSchedule operator
// expects (Sec. 3.7): Request enqueues a cluster load without blocking, and
// WaitLoaded returns some cluster whose load has completed — already-cached
// clusters complete immediately.
package buffer

import (
	"fmt"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
)

// Frame is a buffered page. Data aliases the manager's internal copy; it is
// valid while the frame is pinned (and until eviction otherwise).
type Frame struct {
	Page vdisk.PageID
	Data []byte

	pins       int
	prev, next *Frame // LRU list, most recent at head
}

// Pinned reports whether the frame is currently pinned.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// Manager is the buffer pool. Not safe for concurrent use; the virtual
// clock is single-threaded by design.
type Manager struct {
	disk     *vdisk.Disk
	led      *stats.Ledger
	capacity int

	frames map[vdisk.PageID]*Frame
	head   *Frame // MRU
	tail   *Frame // LRU

	pendingAsync map[vdisk.PageID]bool
	ready        []vdisk.PageID // requests satisfied from cache
	overflow     int64          // frames allocated beyond capacity (all pinned)

	onEvict func(vdisk.PageID) // notifies upper layers (swizzle caches)
}

// New returns a buffer pool over disk holding at most capacity pages.
func New(disk *vdisk.Disk, capacity int) *Manager {
	if capacity <= 0 {
		panic("buffer: non-positive capacity")
	}
	return &Manager{
		disk:         disk,
		led:          disk.Ledger(),
		capacity:     capacity,
		frames:       make(map[vdisk.PageID]*Frame, capacity),
		pendingAsync: make(map[vdisk.PageID]bool),
	}
}

// SetEvictHandler registers f to be called whenever a page leaves the pool
// (eviction or FlushAll). The storage layer uses this to invalidate its
// swizzled in-memory representations, the "swapping out" concern of
// Sec. 5.3.2.3.
func (m *Manager) SetEvictHandler(f func(vdisk.PageID)) { m.onEvict = f }

// Capacity returns the configured page capacity.
func (m *Manager) Capacity() int { return m.capacity }

// Len returns the number of buffered pages.
func (m *Manager) Len() int { return len(m.frames) }

// Overflow returns how many times the pool had to exceed its capacity
// because every frame was pinned.
func (m *Manager) Overflow() int64 { return m.overflow }

// Contains reports whether page p is buffered, without charging costs or
// touching the LRU order (for tests and the scheduler's bookkeeping).
func (m *Manager) Contains(p vdisk.PageID) bool {
	_, ok := m.frames[p]
	return ok
}

// Disk exposes the underlying device (the storage layer needs its cost
// model and page size).
func (m *Manager) Disk() *vdisk.Disk { return m.disk }

// Fix returns a pinned frame for page p, reading it from disk on a miss.
// The caller must Unfix it. Each call charges one hash probe.
func (m *Manager) Fix(p vdisk.PageID) *Frame {
	m.led.HashLookups++
	m.led.AdvanceCPU(m.disk.Model().CPUHashLookup)
	if f, ok := m.frames[p]; ok {
		m.led.BufferHits++
		m.touch(f)
		f.pins++
		return f
	}
	m.led.BufferMisses++
	f := m.newFrame(p)
	m.disk.ReadSync(p, f.Data)
	f.pins++
	delete(m.pendingAsync, p) // a sync read supersedes a pending request
	return f
}

// Unfix releases a pin taken by Fix.
func (m *Manager) Unfix(f *Frame) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unfix of unpinned page %d", f.Page))
	}
	f.pins--
}

// Request schedules an asynchronous load of page p. If p is already
// buffered or already requested, the request is recorded so that a later
// WaitLoaded can still deliver it.
func (m *Manager) Request(p vdisk.PageID) {
	if _, ok := m.frames[p]; ok {
		m.ready = append(m.ready, p)
		return
	}
	if m.pendingAsync[p] {
		return
	}
	m.pendingAsync[p] = true
	m.disk.Submit(p)
}

// WaitLoaded blocks until some requested page is available and returns it.
// ok is false when nothing is outstanding. Cache-satisfied requests are
// delivered first (they are ready immediately).
func (m *Manager) WaitLoaded() (p vdisk.PageID, ok bool) {
	if len(m.ready) > 0 {
		p = m.ready[0]
		m.ready = m.ready[1:]
		return p, true
	}
	if len(m.pendingAsync) == 0 {
		return vdisk.InvalidPage, false
	}
	f := m.newFrame(vdisk.InvalidPage) // placeholder; page set below
	page, got := m.disk.WaitAny(f.Data)
	if !got {
		// All pending requests were superseded by sync reads.
		m.unlink(f)
		m.pendingAsync = make(map[vdisk.PageID]bool)
		return vdisk.InvalidPage, false
	}
	delete(m.pendingAsync, page)
	if old, exists := m.frames[page]; exists {
		// Already (re)loaded synchronously in the meantime; keep the
		// existing frame and discard the fresh buffer.
		m.unlink(f)
		m.touch(old)
		return page, true
	}
	f.Page = page
	m.frames[page] = f
	return page, true
}

// OutstandingRequests returns the number of async requests not yet
// delivered by WaitLoaded.
func (m *Manager) OutstandingRequests() int {
	return len(m.pendingAsync) + len(m.ready)
}

// Invalidate drops page p from the pool after an out-of-band write (the
// update path rewrites pages directly). It panics if the frame is pinned.
func (m *Manager) Invalidate(p vdisk.PageID) {
	f, ok := m.frames[p]
	if !ok {
		return
	}
	if f.Pinned() {
		panic(fmt.Sprintf("buffer: invalidate of pinned page %d", p))
	}
	m.unlink(f)
	delete(m.frames, p)
	if m.onEvict != nil {
		m.onEvict(p)
	}
}

// FlushAll drops every unpinned frame (used between benchmark runs to
// start cold). It panics if any frame is still pinned.
func (m *Manager) FlushAll() {
	for p, f := range m.frames {
		if f.Pinned() {
			panic(fmt.Sprintf("buffer: FlushAll with pinned page %d", p))
		}
	}
	if m.onEvict != nil {
		for p := range m.frames {
			m.onEvict(p)
		}
	}
	m.frames = make(map[vdisk.PageID]*Frame, m.capacity)
	m.head, m.tail = nil, nil
	m.pendingAsync = make(map[vdisk.PageID]bool)
	m.ready = nil
}

// newFrame allocates (or steals via eviction) a frame, links it at MRU and
// registers it under page p (unless p is InvalidPage, for placeholders).
func (m *Manager) newFrame(p vdisk.PageID) *Frame {
	if len(m.frames) >= m.capacity {
		if !m.evictOne() {
			m.overflow++
		}
	}
	f := &Frame{Page: p, Data: make([]byte, m.disk.PageSize())}
	m.linkFront(f)
	if p != vdisk.InvalidPage {
		m.frames[p] = f
	}
	return f
}

// evictOne drops the least recently used unpinned frame. It returns false
// if every frame is pinned.
func (m *Manager) evictOne() bool {
	for f := m.tail; f != nil; f = f.prev {
		if !f.Pinned() {
			m.unlink(f)
			delete(m.frames, f.Page)
			m.led.Evictions++
			if m.onEvict != nil {
				m.onEvict(f.Page)
			}
			return true
		}
	}
	return false
}

func (m *Manager) touch(f *Frame) {
	if m.head == f {
		return
	}
	m.unlink(f)
	m.linkFront(f)
}

func (m *Manager) linkFront(f *Frame) {
	f.prev = nil
	f.next = m.head
	if m.head != nil {
		m.head.prev = f
	}
	m.head = f
	if m.tail == nil {
		m.tail = f
	}
}

func (m *Manager) unlink(f *Frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if m.head == f {
		m.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if m.tail == f {
		m.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
