package xmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
)

func mustParse(t *testing.T, src string) (*xmltree.Dictionary, *xmltree.Node) {
	t.Helper()
	d := xmltree.NewDictionary()
	doc, err := ParseString(d, src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return d, doc
}

func TestSimpleElement(t *testing.T) {
	d, doc := mustParse(t, `<a/>`)
	if len(doc.Children) != 1 {
		t.Fatal("no root element")
	}
	root := doc.Children[0]
	if root.Kind != xmltree.Element || d.Name(root.Tag) != "a" {
		t.Fatalf("root = %v %q", root.Kind, d.Name(root.Tag))
	}
}

func TestNestedElementsAndText(t *testing.T) {
	d, doc := mustParse(t, `<a><b>hi</b><c>there</c></a>`)
	a := doc.Children[0]
	if len(a.Children) != 2 {
		t.Fatalf("a has %d children", len(a.Children))
	}
	b, c := a.Children[0], a.Children[1]
	if d.Name(b.Tag) != "b" || b.TextContent() != "hi" {
		t.Fatalf("b wrong: %q %q", d.Name(b.Tag), b.TextContent())
	}
	if d.Name(c.Tag) != "c" || c.TextContent() != "there" {
		t.Fatal("c wrong")
	}
}

func TestAttributes(t *testing.T) {
	d, doc := mustParse(t, `<item id="item0" featured='yes'/>`)
	item := doc.Children[0]
	if len(item.Attrs) != 2 {
		t.Fatalf("got %d attrs", len(item.Attrs))
	}
	if d.Name(item.Attrs[0].Tag) != "id" || item.Attrs[0].Text != "item0" {
		t.Fatal("first attr wrong")
	}
	if d.Name(item.Attrs[1].Tag) != "featured" || item.Attrs[1].Text != "yes" {
		t.Fatal("second attr wrong")
	}
}

func TestEntities(t *testing.T) {
	_, doc := mustParse(t, `<a foo="&lt;x&gt;">a &amp; b &#65;&#x42;</a>`)
	a := doc.Children[0]
	if a.Attrs[0].Text != "<x>" {
		t.Fatalf("attr = %q", a.Attrs[0].Text)
	}
	if got := a.TextContent(); got != "a & b AB" {
		t.Fatalf("text = %q", got)
	}
}

func TestCDATA(t *testing.T) {
	_, doc := mustParse(t, `<a><![CDATA[<raw> & stuff]]></a>`)
	if got := doc.Children[0].TextContent(); got != "<raw> & stuff" {
		t.Fatalf("CDATA = %q", got)
	}
}

func TestCommentsAndPIs(t *testing.T) {
	_, doc := mustParse(t, `<?xml version="1.0"?><!-- top --><a><!-- in --><?target data?></a>`)
	if len(doc.Children) != 2 { // comment + root
		t.Fatalf("doc has %d children", len(doc.Children))
	}
	if doc.Children[0].Kind != xmltree.Comment || doc.Children[0].Text != " top " {
		t.Fatal("top comment wrong")
	}
	a := doc.Children[1]
	if a.Children[0].Kind != xmltree.Comment {
		t.Fatal("inner comment missing")
	}
	if a.Children[1].Kind != xmltree.ProcInst || a.Children[1].Text != "target data" {
		t.Fatal("PI missing")
	}
}

func TestDoctypeSkipped(t *testing.T) {
	_, doc := mustParse(t, `<!DOCTYPE site SYSTEM "auction.dtd"><site/>`)
	if len(doc.Children) != 1 {
		t.Fatal("DOCTYPE not skipped")
	}
}

func TestMixedContent(t *testing.T) {
	_, doc := mustParse(t, `<p>one <b>two</b> three</p>`)
	p := doc.Children[0]
	if len(p.Children) != 3 {
		t.Fatalf("p has %d children", len(p.Children))
	}
	if p.TextContent() != "one two three" {
		t.Fatalf("text = %q", p.TextContent())
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`<a>`, "unterminated"},
		{`<a></b>`, "mismatched"},
		{`<a b=c/>`, "not quoted"},
		{`<a b="x/>`, "unterminated attribute"},
		{`hello`, "outside root"},
		{``, "no root"},
		{`<a/><b/>`, "multiple root"},
		{`<a>&bogus;</a>`, "unknown entity"},
		{`<a>&#xZZ;</a>`, "bad character reference"},
		{`<a><![CDATA[x</a>`, "unterminated CDATA"},
		{`<!-- x <a/>`, "unterminated comment"},
		{`<1bad/>`, "expected name"},
	}
	for _, c := range cases {
		d := xmltree.NewDictionary()
		_, err := ParseString(d, c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	d := xmltree.NewDictionary()
	_, err := ParseString(d, "<a>\n<b>\n</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Fatalf("error line = %d, want 3", se.Line)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	_, doc := mustParse(t, "<a>\n  <b/>\n</a>")
	a := doc.Children[0]
	// Whitespace-only text nodes are preserved (no validation => no
	// ignorable whitespace), which keeps round trips exact.
	if len(a.Children) != 3 {
		t.Fatalf("a has %d children, want 3 (ws, b, ws)", len(a.Children))
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a><b>hi</b><c x="1"/></a>`,
		`<p>one <b>two</b> three</p>`,
		`<a t="a&amp;b">x &lt; y</a>`,
	}
	for _, src := range srcs {
		d, doc := mustParse(t, src)
		out := xmlwrite.String(d, doc, xmlwrite.Options{})
		d2 := xmltree.NewDictionary()
		doc2, err := ParseString(d2, out)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v (serialized %q)", src, err, out)
		}
		if !treesEquivalent(d, doc, d2, doc2) {
			t.Fatalf("round trip changed tree for %q: got %q", src, out)
		}
	}
}

// treesEquivalent compares trees across two dictionaries by name.
func treesEquivalent(da *xmltree.Dictionary, a *xmltree.Node, db *xmltree.Dictionary, b *xmltree.Node) bool {
	if a.Kind != b.Kind || a.Text != b.Text {
		return false
	}
	if a.Kind == xmltree.Element || a.Kind == xmltree.Attribute {
		if da.Name(a.Tag) != db.Name(b.Tag) {
			return false
		}
	}
	if len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if !treesEquivalent(da, a.Attrs[i], db, b.Attrs[i]) {
			return false
		}
	}
	for i := range a.Children {
		if !treesEquivalent(da, a.Children[i], db, b.Children[i]) {
			return false
		}
	}
	return true
}

// genXML builds a random tree and returns it; the property test serializes
// and reparses it, checking equivalence.
func genTree(r *rng.RNG, d *xmltree.Dictionary) *xmltree.Node {
	doc := xmltree.NewDocument()
	tags := []string{"a", "b", "c", "data", "x-y"}
	texts := []string{"", "plain", "a<b", "x & y", `quo"te`, "tab\tchar"}
	var build func(parent *xmltree.Node, depth int)
	build = func(parent *xmltree.Node, depth int) {
		e := xmltree.NewElement(d.Intern(tags[r.Intn(len(tags))]))
		parent.AppendChild(e)
		if r.Bool(0.5) {
			e.SetAttr(d.Intern("k"), texts[r.Intn(len(texts))])
		}
		n := r.Intn(4)
		for i := 0; i < n && depth < 5; i++ {
			if r.Bool(0.4) {
				if s := texts[r.Intn(len(texts))]; s != "" {
					e.AppendChild(xmltree.NewText(s))
				}
			} else {
				build(e, depth+1)
			}
		}
	}
	build(doc, 0)
	return doc
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := xmltree.NewDictionary()
		doc := genTree(rng.New(seed), d)
		out := xmlwrite.String(d, doc, xmlwrite.Options{})
		d2 := xmltree.NewDictionary()
		doc2, err := ParseString(d2, out)
		if err != nil {
			t.Logf("serialized: %q err: %v", out, err)
			return false
		}
		// Serializer merges adjacent text nodes on reparse; normalise both.
		return normalizedEqual(d, doc, d2, doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalizedEqual compares trees after merging adjacent text children.
func normalizedEqual(da *xmltree.Dictionary, a *xmltree.Node, db *xmltree.Dictionary, b *xmltree.Node) bool {
	na, nb := mergeText(a), mergeText(b)
	if na.Kind != nb.Kind || na.Text != nb.Text {
		return false
	}
	if na.Kind == xmltree.Element || na.Kind == xmltree.Attribute {
		if da.Name(na.Tag) != db.Name(nb.Tag) {
			return false
		}
	}
	if len(na.Children) != len(nb.Children) || len(na.Attrs) != len(nb.Attrs) {
		return false
	}
	for i := range na.Attrs {
		if !normalizedEqual(da, na.Attrs[i], db, nb.Attrs[i]) {
			return false
		}
	}
	for i := range na.Children {
		if !normalizedEqual(da, na.Children[i], db, nb.Children[i]) {
			return false
		}
	}
	return true
}

func mergeText(n *xmltree.Node) *xmltree.Node {
	out := &xmltree.Node{Kind: n.Kind, Tag: n.Tag, Text: n.Text, Attrs: n.Attrs}
	for _, c := range n.Children {
		if c.Kind == xmltree.Text && len(out.Children) > 0 && out.Children[len(out.Children)-1].Kind == xmltree.Text {
			prev := out.Children[len(out.Children)-1]
			merged := *prev
			merged.Text = prev.Text + c.Text
			out.Children[len(out.Children)-1] = &merged
			continue
		}
		out.Children = append(out.Children, c)
	}
	return out
}

func TestUTF8Names(t *testing.T) {
	d, doc := mustParse(t, `<日本語>text</日本語>`)
	if d.Name(doc.Children[0].Tag) != "日本語" {
		t.Fatal("multibyte name mangled")
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		sb.WriteString(`<item id="x"><name>thing</name><desc>some text here</desc></item>`)
	}
	sb.WriteString("</root>")
	src := []byte(sb.String())
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := xmltree.NewDictionary()
		if _, err := Parse(d, src); err != nil {
			b.Fatal(err)
		}
	}
}
