package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	av, cv := a.Uint64(), c.Uint64()
	if av == cv {
		t.Fatal("split stream equals parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLnAgainstMath(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 0.9, 1, 1.5, 2, 10, 123.456, 1e6} {
		got := ln(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("ln(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestExpAgainstMath(t *testing.T) {
	for _, x := range []float64{-5, -1, -0.1, 0, 0.1, 1, 2.5, 7} {
		got := exp(x)
		want := math.Exp(x)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("exp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPowAgainstMath(t *testing.T) {
	for _, c := range []struct{ x, y float64 }{{2, 3}, {10, 0.5}, {1.5, 2.2}, {7, 0}} {
		got := pow(c.x, c.y)
		want := math.Pow(c.x, c.y)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("pow(%v,%v) = %v, want %v", c.x, c.y, got, want)
		}
	}
}

func TestExpDistributionMean(t *testing.T) {
	r := New(19)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("Exp(4) sample mean = %v", mean)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("rank %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfSkewed(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 99 (%d)", counts[0], counts[99])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 5, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 5 {
			t.Fatalf("Zipf.Next() = %d out of [0,5)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
