package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathdb"
)

// The query set the equivalence tests sweep: the xload mix plus a spine
// path and an attribute path.
var testPaths = []string{
	"/site/regions//item",
	"/site//description",
	"/site//annotation",
	"/site//emailaddress",
	"/site/people/person/name",
	"/site/regions",
}

func testXMarkConfig() pathdb.XMarkConfig {
	return pathdb.XMarkConfig{ScaleFactor: 0.25, Seed: 42, EntityScale: 0.1}
}

func testOptions(buffer int) pathdb.Options {
	return pathdb.Options{Layout: pathdb.Shuffled, LayoutSeed: 42, BufferPages: buffer}
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	cl, err := NewXMark(testXMarkConfig(), testOptions(256), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cl.Shutdown(ctx)
	})
	return cl
}

func singleVolume(t *testing.T) *pathdb.DB {
	t.Helper()
	db, err := pathdb.GenerateXMark(testXMarkConfig(), testOptions(256))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustQuery(t *testing.T, cl *Cluster, path string, wantNodes bool) *Merged {
	t.Helper()
	m, err := cl.Query(context.Background(), path, pathdb.QueryOptions{}, wantNodes)
	if err != nil {
		t.Fatalf("query %q: %v", path, err)
	}
	return m
}

// Scatter-gather counts must equal a single volume holding the same
// corpus, for every path, both on the executing pass and on the cached
// pass that follows it.
func TestClusterCountEquivalence(t *testing.T) {
	cl := newTestCluster(t, Config{})
	db := singleVolume(t)
	for _, path := range testPaths {
		res, err := db.QueryCtx(context.Background(), path, pathdb.QueryOptions{})
		if err != nil {
			t.Fatalf("single volume %q: %v", path, err)
		}
		want := res.Count()
		if got := mustQuery(t, cl, path, false).Count; got != want {
			t.Errorf("%q: merged count %d, single volume %d", path, got, want)
		}
		// Second pass: all shards unchanged, so counts may come from the
		// epoch-keyed cache — and must be identical.
		m := mustQuery(t, cl, path, false)
		if m.Count != want {
			t.Errorf("%q: cached merged count %d, single volume %d", path, m.Count, want)
		}
		for _, ps := range m.PerShard {
			if !ps.Cached {
				t.Errorf("%q: shard %d executed on the second pass (cache miss with no commits)", path, ps.Shard)
			}
		}
	}
}

// Node merges must come back in global document order with each
// replicated spine match contributed exactly once.
func TestClusterNodeMergeDocOrder(t *testing.T) {
	cl := newTestCluster(t, Config{})
	for _, path := range testPaths {
		m := mustQuery(t, cl, path, true)
		if len(m.Nodes) != m.Count {
			t.Fatalf("%q: %d nodes but count %d", path, len(m.Nodes), m.Count)
		}
		for i := 1; i < len(m.Nodes); i++ {
			a, b := m.Nodes[i-1], m.Nodes[i]
			d := pathdb.CompareDocOrder(a.Node, b.Node)
			if d > 0 {
				t.Fatalf("%q: nodes %d and %d out of document order", path, i-1, i)
			}
			// Entities on different shards may share a local order key (the
			// shard tiebreak makes the merge deterministic), but within one
			// shard keys are unique.
			if d == 0 && a.Shard == b.Shard {
				t.Fatalf("%q: shard %d contributed order key %s twice",
					path, a.Shard, a.Node.OrdPath())
			}
			if d == 0 && a.Shard > b.Shard {
				t.Fatalf("%q: equal-key nodes %d and %d not shard-ordered", path, i-1, i)
			}
		}
	}

	// A spine match is replicated on every shard; len(Nodes) == Count above
	// proves the merge emits it once, and a pure-spine path pins it down.
	m := mustQuery(t, cl, "/site/regions", true)
	if m.SpineMatches != 1 || m.Count != 1 || len(m.Nodes) != 1 {
		t.Fatalf("/site/regions: spine=%d count=%d nodes=%d, want 1/1/1 (replicas merged once)",
			m.SpineMatches, m.Count, len(m.Nodes))
	}
}

// An insert with a spine parent lands on exactly one ring-chosen shard and
// becomes visible cluster-wide; /site keeps resolving to one node.
func TestClusterInsertRouting(t *testing.T) {
	cl := newTestCluster(t, Config{})
	ctx := context.Background()

	before := mustQuery(t, cl, "/site//padtest", false).Count
	if before != 0 {
		t.Fatalf("corpus already has %d padtest nodes", before)
	}
	res, err := cl.Insert(ctx, "/site", "<padtest/>")
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard < 0 || res.Shard >= cl.Shards() {
		t.Fatalf("insert reported owner shard %d of %d", res.Shard, cl.Shards())
	}
	if res.Epoch == 0 {
		t.Fatalf("insert reported no publish epoch")
	}

	m := mustQuery(t, cl, "/site//padtest", false)
	if m.Count != 1 {
		t.Fatalf("after insert: cluster count %d, want 1", m.Count)
	}
	for _, ps := range m.PerShard {
		want := 0
		if ps.Shard == res.Shard {
			want = 1
		}
		if ps.Count != want {
			t.Fatalf("shard %d reports %d padtest matches, want %d (owner %d)",
				ps.Shard, ps.Count, want, res.Shard)
		}
	}
	if m := mustQuery(t, cl, "/site", false); m.Count != 1 {
		t.Fatalf("/site resolves to %d nodes after insert", m.Count)
	}
}

// The epoch-keyed cache must stay exactly consistent across commits: an
// update-independent insert leaves cached counts valid (and the owner
// shard's entries are revalidated, not just invalidated), while an insert
// that can affect a path forces re-execution and the new count.
func TestClusterCountCacheRevalidation(t *testing.T) {
	cl := newTestCluster(t, Config{})
	ctx := context.Background()
	const itemPath = "/site//item"

	itemsBefore := mustQuery(t, cl, itemPath, false).Count
	regionItems := mustQuery(t, cl, "/site/regions//item", false).Count

	// Independent insert: fragment shares no name token with either path.
	if _, err := cl.Insert(ctx, "/site", "<cachepad/>"); err != nil {
		t.Fatal(err)
	}
	m := mustQuery(t, cl, "/site/regions//item", false)
	if m.Count != regionItems {
		t.Fatalf("independent insert changed cached count %d -> %d", regionItems, m.Count)
	}
	for _, ps := range m.PerShard {
		if !ps.Cached {
			t.Errorf("shard %d re-executed after an update-independent insert (revalidation failed)", ps.Shard)
		}
	}

	// Dependent insert: <item/> shares the path's final step name, so the
	// owner's cache entry must be dropped and the new count observed.
	res, err := cl.Insert(ctx, "/site", "<item><name>cache-test</name></item>")
	if err != nil {
		t.Fatal(err)
	}
	m = mustQuery(t, cl, itemPath, false)
	if m.Count != itemsBefore+1 {
		t.Fatalf("dependent insert: count %d, want %d", m.Count, itemsBefore+1)
	}
	for _, ps := range m.PerShard {
		if ps.Shard == res.Shard && ps.Cached {
			t.Errorf("owner shard %d served a cached count across a dependent insert", ps.Shard)
		}
	}
}

// Deletes fan out to every shard (and the spine volume) so replicas never
// diverge; the cluster-wide deleted count de-duplicates spine matches.
func TestClusterDeleteFanout(t *testing.T) {
	cl := newTestCluster(t, Config{})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := cl.Insert(ctx, "/site", "<fanpad/>"); err != nil {
			t.Fatal(err)
		}
	}
	if got := mustQuery(t, cl, "/site//fanpad", false).Count; got != 3 {
		t.Fatalf("inserted 3 fanpad nodes, cluster counts %d", got)
	}
	res, err := cl.Delete(ctx, "/site//fanpad")
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 3 {
		t.Fatalf("delete removed %d, want 3", res.Deleted)
	}
	if got := mustQuery(t, cl, "/site//fanpad", false).Count; got != 0 {
		t.Fatalf("%d fanpad nodes survive the fan-out delete", got)
	}

	// A spine-replicated delete must count once cluster-wide.
	if got := mustQuery(t, cl, "/site/catgraph", false); got.Count == 1 && got.SpineMatches == 1 {
		res, err := cl.Delete(ctx, "/site/catgraph")
		if err != nil {
			t.Fatal(err)
		}
		if res.Deleted != 1 {
			t.Fatalf("spine delete counted %d, want 1 (replicas must merge)", res.Deleted)
		}
	}
}

// faultedCluster builds a 4-shard cluster with a tiny buffer pool (so
// queries keep reading the device) and a heavy read-fault schedule on one
// shard. The count cache is disabled: cached counts at an unchanged epoch
// are legitimately served without touching storage, which would let the
// degraded shard answer from memory.
func faultedCluster(t *testing.T, cfg Config, shard int, readError float64) *Cluster {
	t.Helper()
	cfg.Shards = 4
	cfg.NoCountCache = true
	cl, err := NewXMark(testXMarkConfig(), testOptions(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cl.Shutdown(ctx)
	})
	cl.SetFaults(shard, pathdb.FaultConfig{Seed: 7, ReadError: readError})
	return cl
}

// Under the quorum policy, a shard lost to storage faults yields a typed
// partial result whose count is exactly the merge of the answering shards
// — not an error, and never a wrong total.
func TestClusterDegradedShardPartial(t *testing.T) {
	const bad = 2
	cl := faultedCluster(t, Config{}, bad, 0) // faults installed below
	ctx := context.Background()
	const path = "/site//description"

	// Fault-free baseline: per-shard counts and the spine count.
	base := mustQuery(t, cl, path, false)
	perShard := make([]int, cl.Shards())
	for _, ps := range base.PerShard {
		perShard[ps.Shard] = ps.Count
	}
	expectPartial := 0
	answered := 0
	for s, c := range perShard {
		if s == bad {
			continue
		}
		expectPartial += c
		answered++
	}
	expectPartial -= (answered - 1) * base.SpineMatches

	cl.SetFaults(bad, pathdb.FaultConfig{Seed: 7, ReadError: 0.5})
	partials := 0
	for i := 0; i < 40; i++ {
		m, err := cl.Query(ctx, path, pathdb.QueryOptions{}, false)
		if err != nil {
			t.Fatalf("query %d under faults: %v (quorum policy must absorb one shard)", i, err)
		}
		if !m.Partial {
			if m.Count != base.Count {
				t.Fatalf("query %d: complete result count %d, want %d", i, m.Count, base.Count)
			}
			continue
		}
		partials++
		if len(m.Degraded) != 1 || m.Degraded[0].Shard != bad {
			t.Fatalf("query %d: degraded set %+v, want shard %d only", i, m.Degraded, bad)
		}
		if k := m.Degraded[0].Kind; k != pathdb.KindIO && k != pathdb.KindCorrupt {
			t.Fatalf("query %d: degradation kind %v, want a storage kind", i, k)
		}
		if m.Count != expectPartial {
			t.Fatalf("query %d: partial count %d, want %d (merge must stay exact)",
				i, m.Count, expectPartial)
		}
	}
	if partials == 0 {
		t.Fatalf("no partial results in 40 queries at 50%% read faults")
	}
	if hits := cl.Metrics()[bad].DegradedHits; hits < int64(partials) {
		t.Fatalf("shard %d records %d degraded hits, saw %d partials", bad, hits, partials)
	}
	if cl.Partials() != int64(partials) {
		t.Fatalf("cluster counts %d partials, saw %d", cl.Partials(), partials)
	}
}

// Losing more shards than the quorum tolerates fails the query with a
// QuorumError that still classifies under the typed taxonomy.
func TestClusterQuorumLoss(t *testing.T) {
	cl := faultedCluster(t, Config{}, 1, 1)
	cl.SetFaults(2, pathdb.FaultConfig{Seed: 11, ReadError: 1})

	_, err := cl.Query(context.Background(), "/site//description", pathdb.QueryOptions{}, false)
	if err == nil {
		t.Fatal("two dead shards of four: query succeeded past the quorum")
	}
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v (%T), want *QuorumError", err, err)
	}
	if qe.Healthy != 2 || qe.Needed != 3 {
		t.Fatalf("quorum error reports %d healthy need %d, want 2/3", qe.Healthy, qe.Needed)
	}
	if k := pathdb.KindOf(err); k != pathdb.KindIO && k != pathdb.KindCorrupt {
		t.Fatalf("quorum error classifies as %v, want a storage kind", k)
	}
}

// PolicyAll refuses partial results: one faulted shard fails the whole
// query with the shard's typed storage error.
func TestClusterPolicyAllFailsFast(t *testing.T) {
	cl := faultedCluster(t, Config{Policy: PolicyAll}, 3, 1)

	_, err := cl.Query(context.Background(), "/site//description", pathdb.QueryOptions{}, false)
	if err == nil {
		t.Fatal("PolicyAll returned a result with a dead shard")
	}
	if k := pathdb.KindOf(err); k != pathdb.KindIO && k != pathdb.KindCorrupt {
		t.Fatalf("PolicyAll error classifies as %v, want a storage kind", k)
	}
	if cl.Partials() != 0 {
		t.Fatalf("PolicyAll recorded %d partial results", cl.Partials())
	}
}
