// Document collections (Sec. 5.4.3 of the paper: XScan's input is "a
// document or collection of documents"): several documents live in one
// volume, absolute queries evaluate over all of them, and a single
// sequential scan serves the whole collection — compare the per-document
// random-access alternative below.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

func main() {
	// A little digital library: one document per journal issue.
	var docs [][]byte
	for issue := 1; issue <= 12; issue++ {
		doc := fmt.Sprintf(`<issue n="%d">`, issue)
		for a := 0; a < 8; a++ {
			doc += fmt.Sprintf(
				`<article><title>Issue %d, article %d</title><pages>%d</pages></article>`,
				issue, a, 4+a)
		}
		doc += `</issue>`
		docs = append(docs, []byte(doc))
	}
	db, err := pathdb.LoadXMLCollection(docs, pathdb.Options{BufferPages: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d documents, %d pages\n", db.Documents(), db.Pages())

	// One query over the whole collection.
	q, _ := db.Query("/issue/article/title")
	fmt.Println("titles across the collection:", q.Count())

	// Results arrive in collection order when sorted.
	first := q.Sorted().Nodes()[0]
	fmt.Println("first title:", first.Text())

	// Predicates work across members too.
	q, _ = db.Query(`/issue/article[pages="7"]`)
	fmt.Println("articles with 7 pages:", q.Count())

	// One sequential scan serves all members at once.
	db.ResetStats()
	q, _ = db.Query("//title")
	q.WithStrategy(pathdb.Scan).Count()
	fmt.Println("scan over collection:", db.CostReport())
}
