// Package stats provides the virtual clock and the cost ledger shared by
// the storage, buffer and algebra layers.
//
// The paper's evaluation reports total execution time and CPU time of plans
// running against a real disk (Linux, O_DIRECT). We do not have the authors'
// testbed, so the repository runs against a simulated disk with a calibrated
// cost model (package vdisk). All layers charge their work to a single
// Ledger in virtual nanoseconds: CPU work advances the clock directly, I/O
// completions advance it when the query has to block, and asynchronous I/O
// that finishes while the CPU is busy costs no wall time at all — exactly
// the overlap effect the XSchedule operator exploits (Sec. 3.7, 5.3.4).
//
// Concurrency: all mutations (AdvanceCPU, BlockUntil, Inc, Add) and the
// aggregate readers (Total, Snapshot, Sub, String) use atomic operations,
// so a ledger may be shared by the engine's dispatcher and any number of
// monitoring goroutines without data races. Direct field reads remain valid
// — and allocation-free — in single-threaded contexts (a quiesced ledger
// after a run); concurrent readers must go through Snapshot or Total.
// Reset is not atomic as a whole: callers must quiesce writers first.
package stats

import (
	"fmt"
	"sync/atomic"
)

// Ticks is a duration or instant in virtual nanoseconds.
type Ticks int64

// Common tick units.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1000
	Millisecond Ticks = 1000 * 1000
	Second      Ticks = 1000 * 1000 * 1000
)

// Seconds converts ticks to float seconds (for reporting).
func (t Ticks) Seconds() float64 { return float64(t) / float64(Second) }

// String renders ticks with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Inc atomically increments a ledger counter. All layers mutate counters
// through Inc/Add so that a ledger shared across goroutines stays race-free
// while the single-threaded fast path stays allocation-free.
func Inc(c *int64) { atomic.AddInt64(c, 1) }

// Add atomically adds n to a ledger counter.
func Add(c *int64, n int64) { atomic.AddInt64(c, n) }

// Load atomically reads a ledger counter.
func Load(c *int64) int64 { return atomic.LoadInt64(c) }

// Counters aggregates event counts from all layers. Fields are mutated via
// Inc/Add and may be read directly once the ledger is quiesced.
type Counters struct {
	PageReads    int64 // pages transferred from disk
	SeqPageReads int64 // of which sequential (scan) reads
	PageWrites   int64
	Seeks        int64 // repositioning operations
	SeekDistance int64 // total page distance sought across

	BufferHits   int64
	BufferMisses int64
	HashLookups  int64 // buffer-manager hash-table probes
	Evictions    int64

	Swizzles   int64 // NodeID -> pointer conversions
	Unswizzles int64 // pointer -> NodeID conversions

	NodesVisited int64 // navigation primitive node touches
	TuplesMoved  int64 // path instances passed between operators
	SetInserts   int64 // R/S set maintenance
	SetLookups   int64

	AsyncSubmitted int64
	AsyncCompleted int64
	AsyncWithdrawn int64 // prefetches cancelled before delivery

	ClustersVisited int64 // distinct cluster activations by I/O operators
	ClustersSkipped int64 // pooled accesses avoided via cluster synopses
	SpecInstances   int64 // speculative left-incomplete instances created
	FallbackEvents  int64 // low-memory fallback activations

	// Fault plane (vdisk fault injection and the verified-read path).
	ReadFaults    int64 // transient read errors injected by the device
	ReadRetries   int64 // bounded re-reads after a fault or checksum failure
	ChecksumFails int64 // page images that failed trailer verification
	LatencySpikes int64 // injected latency spikes observed by reads
}

// Ledger is the virtual clock plus counters. One ledger may be shared by
// several operators of one query — or, under the concurrent engine, by
// every query of a gang — because all mutation paths are atomic.
type Ledger struct {
	Now    Ticks // current virtual time
	CPU    Ticks // total CPU ticks charged
	IOWait Ticks // total time spent blocked on I/O
	Counters
}

// NewLedger returns a zeroed ledger.
func NewLedger() *Ledger { return &Ledger{} }

// fields returns the addresses of every int64-backed field in declaration
// order, so Snapshot/Sub/Reset need not enumerate them by name. Cold path
// only (reporting); the hot mutation path never calls it.
func (l *Ledger) fields() [numFields]*int64 {
	return [numFields]*int64{
		(*int64)(&l.Now), (*int64)(&l.CPU), (*int64)(&l.IOWait),
		&l.PageReads, &l.SeqPageReads, &l.PageWrites, &l.Seeks, &l.SeekDistance,
		&l.BufferHits, &l.BufferMisses, &l.HashLookups, &l.Evictions,
		&l.Swizzles, &l.Unswizzles,
		&l.NodesVisited, &l.TuplesMoved, &l.SetInserts, &l.SetLookups,
		&l.AsyncSubmitted, &l.AsyncCompleted, &l.AsyncWithdrawn,
		&l.ClustersVisited, &l.ClustersSkipped, &l.SpecInstances, &l.FallbackEvents,
		&l.ReadFaults, &l.ReadRetries, &l.ChecksumFails, &l.LatencySpikes,
	}
}

// numFields is the number of int64-backed ledger fields.
const numFields = 29

// fieldNames are the exported snapshot names of every ledger field, in
// fields() order. The first three are virtual clocks in nanoseconds; the
// rest are event counters. Names are stable: the metrics surface
// (internal/server's Prometheus exposition) derives its series from them.
var fieldNames = [numFields]string{
	"now_ns", "cpu_ns", "iowait_ns",
	"page_reads", "seq_page_reads", "page_writes", "seeks", "seek_distance",
	"buffer_hits", "buffer_misses", "hash_lookups", "evictions",
	"swizzles", "unswizzles",
	"nodes_visited", "tuples_moved", "set_inserts", "set_lookups",
	"async_submitted", "async_completed", "async_withdrawn",
	"clusters_visited", "clusters_skipped", "spec_instances", "fallback_events",
	"read_faults", "read_retries", "checksum_fails", "latency_spikes",
}

// NamedValue is one ledger field under its exported snapshot name.
type NamedValue struct {
	Name  string
	Value int64
}

// Named returns every ledger field as a name/value pair, built from atomic
// loads (same consistency as Snapshot). Names ending in "_ns" are virtual
// clocks in nanoseconds; the rest are monotonic event counters.
func (l *Ledger) Named() []NamedValue {
	fs := l.fields()
	out := make([]NamedValue, numFields)
	for i, f := range fs {
		out[i] = NamedValue{Name: fieldNames[i], Value: atomic.LoadInt64(f)}
	}
	return out
}

// AdvanceCPU charges t ticks of CPU work, advancing the clock.
func (l *Ledger) AdvanceCPU(t Ticks) {
	if t < 0 {
		panic("stats: negative CPU charge")
	}
	atomic.AddInt64((*int64)(&l.Now), int64(t))
	atomic.AddInt64((*int64)(&l.CPU), int64(t))
}

// BlockUntil advances the clock to at least t, accounting the gap as I/O
// wait. A t in the past is a no-op (the I/O had already completed while the
// CPU was busy). Under concurrent callers the CAS loop guarantees each tick
// of forward motion is attributed to IOWait exactly once.
func (l *Ledger) BlockUntil(t Ticks) {
	for {
		now := Ticks(atomic.LoadInt64((*int64)(&l.Now)))
		if t <= now {
			return
		}
		if atomic.CompareAndSwapInt64((*int64)(&l.Now), int64(now), int64(t)) {
			atomic.AddInt64((*int64)(&l.IOWait), int64(t-now))
			return
		}
	}
}

// SeedAt advances the clock to at least t without charging anything: the
// ledger's owner "arrives" at device instant t. The concurrent engine seeds
// every per-query ledger with the device clock at execution start, so a
// query is billed only for time past its arrival — not for the device
// history that writers and earlier gangs already paid for.
func (l *Ledger) SeedAt(t Ticks) {
	for {
		now := Ticks(atomic.LoadInt64((*int64)(&l.Now)))
		if t <= now {
			return
		}
		if atomic.CompareAndSwapInt64((*int64)(&l.Now), int64(now), int64(t)) {
			return
		}
	}
}

// Advance charges t ticks of device work, advancing the clock without
// attributing CPU or I/O wait. The virtual disk uses it for synchronous
// writes billed to the volume ledger, whose clock is a sum of work rather
// than an instant.
func (l *Ledger) Advance(t Ticks) {
	if t < 0 {
		panic("stats: negative advance")
	}
	atomic.AddInt64((*int64)(&l.Now), int64(t))
}

// Total returns the total elapsed virtual time (atomic; safe concurrently).
func (l *Ledger) Total() Ticks { return Ticks(atomic.LoadInt64((*int64)(&l.Now))) }

// CPUFraction returns CPU/Total, or 0 for an empty ledger.
func (l *Ledger) CPUFraction() float64 {
	now := atomic.LoadInt64((*int64)(&l.Now))
	if now == 0 {
		return 0
	}
	return float64(atomic.LoadInt64((*int64)(&l.CPU))) / float64(now)
}

// Reset zeroes the ledger for reuse. Writers must be quiesced: concurrent
// mutations interleaved with Reset leave a mix of old and new values.
func (l *Ledger) Reset() {
	for _, f := range l.fields() {
		atomic.StoreInt64(f, 0)
	}
}

// Merge atomically adds every field of the snapshot s into l. The engine
// uses it to fold a per-query ledger into the volume ledger at query
// completion: addition commutes, so the volume totals are deterministic (the
// sum of all queries' charges) no matter in which order parallel workers
// finish. Merging a live ledger is safe but folds in whatever its writers
// had charged at snapshot time; quiesce the source first for exact totals.
func (l *Ledger) Merge(s Ledger) {
	src, dst := s.fields(), l.fields()
	for i := range src {
		if v := *src[i]; v != 0 {
			atomic.AddInt64(dst[i], v)
		}
	}
}

// Snapshot returns a consistent-enough copy of the ledger built from atomic
// loads of every field. Individual fields are each exact; cross-field skew
// is bounded by whatever mutations race with the loads.
func (l *Ledger) Snapshot() Ledger {
	var s Ledger
	src, dst := l.fields(), s.fields()
	for i := range src {
		*dst[i] = atomic.LoadInt64(src[i])
	}
	return s
}

// Sub returns the difference l - base, for measuring a phase that started at
// the base snapshot.
func (l *Ledger) Sub(base Ledger) Ledger {
	d := l.Snapshot()
	df, bf := d.fields(), base.fields()
	for i := range df {
		*df[i] -= *bf[i]
	}
	return d
}

// String summarizes the ledger for logs and the cost report of cmd/xpathq.
func (l *Ledger) String() string {
	s := l.Snapshot()
	return fmt.Sprintf(
		"total=%v cpu=%v (%.0f%%) iowait=%v reads=%d (seq=%d) seeks=%d dist=%d hits=%d misses=%d spec=%d",
		s.Now, s.CPU, 100*s.CPUFraction(), s.IOWait,
		s.PageReads, s.SeqPageReads, s.Seeks, s.SeekDistance,
		s.BufferHits, s.BufferMisses, s.SpecInstances)
}
