package core

import (
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// PredFilter evaluates the predicates of location step i on every path
// instance whose right end was produced by that step.
//
// The paper defers predicates to "a more expressive algebra" and notes in
// its outlook that nested predicate paths would need path instances with
// more than two incomplete ends (Sec. 7). This operator takes the
// baseline route the paper's Sec. 5.1 sketches for full XPath support: the
// nested path is evaluated per candidate with an Unnest-Map (Simple)
// sub-plan, synchronously, with an existence-style early exit. The outer
// path still enjoys cost-sensitive reordering; only the nested probes pay
// on-demand I/O.
//
// Placement in the chain is right above XStepᵢ. Instances with S_R ≠ i —
// pass-throughs, right-incomplete borders awaiting their crossing,
// speculative seeds — flow unchanged; each of their eventual extensions
// re-enters the chain below and is filtered here once it reaches step i.
type PredFilter struct {
	es    *EvalState
	input Operator
	i     int
	preds []xpath.Predicate
}

// NewPredFilter builds the filter for step i (whose predicates it reads
// from the shared state's path).
func NewPredFilter(es *EvalState, input Operator, i int) *PredFilter {
	return &PredFilter{es: es, input: input, i: i, preds: es.Path[i-1].Predicates}
}

// Open opens the producer.
func (f *PredFilter) Open() { f.input.Open() }

// Close closes the producer.
func (f *PredFilter) Close() { f.input.Close() }

// Next returns the next instance, dropping step-i instances whose node
// fails any predicate.
func (f *PredFilter) Next() (Instance, bool) {
	for {
		in, ok := f.input.Next()
		if !ok {
			return Instance{}, false
		}
		if in.SR != f.i || in.NRBorder {
			return in, true
		}
		f.es.chargeTuple()
		if f.matches(in.NR) {
			return in, true
		}
	}
}

// matches evaluates every predicate of the step on the candidate node.
func (f *PredFilter) matches(ctx storage.NodeID) bool {
	return evalPredicates(f.es, ctx, f.preds)
}

// evalPredicates is the shared per-candidate probe: it reports whether the
// node passes every predicate in preds. PredFilter uses it on every
// step-i candidate; XJoin uses it for non-joinable union branches, for
// nested predicates on branch steps, and in its degraded mode.
func evalPredicates(es *EvalState, ctx storage.NodeID, preds []xpath.Predicate) bool {
	for _, p := range preds {
		if !evalPredicate(es, ctx, p) {
			return false
		}
	}
	return true
}

// evalPredicate runs each nested union branch from ctx with a Simple
// sub-plan, early-exiting on the first (matching) result.
func evalPredicate(es *EvalState, ctx storage.NodeID, p xpath.Predicate) bool {
	for _, branch := range p.Paths {
		if evalBranchProbe(es, ctx, branch, p) {
			return true
		}
	}
	return false
}

func evalBranchProbe(es *EvalState, ctx storage.NodeID, branch *xpath.Path, p xpath.Predicate) bool {
	steps := branch.Simplify().Steps
	sub := NewEvalState(es.Store, steps)
	// The probe inherits the outer query's cancellation (but never its
	// arena: exactly one running plan may borrow an arena at a time).
	sub.Ctx = es.Ctx
	var op Operator = NewContextOp(sub, []storage.NodeID{ctx})
	for i := 1; i <= len(steps); i++ {
		xs := NewXStep(sub, op, i)
		xs.CrossBorders = true
		op = xs
		if len(steps[i-1].Predicates) > 0 {
			op = NewPredFilter(sub, op, i) // nested predicates recurse
		}
	}
	op.Open()
	defer op.Close()
	for {
		out, ok := op.Next()
		if !ok {
			return false
		}
		if !p.HasLit {
			return true
		}
		if es.Store.StringValue(out.NR) == p.Literal {
			return true
		}
	}
}

// hasPredicates reports whether any step of the path carries predicates.
func hasPredicates(path []xpath.Step) bool {
	for _, s := range path {
		if len(s.Predicates) > 0 {
			return true
		}
	}
	return false
}
