package pathdb

import (
	"context"
	"fmt"
	"time"

	"pathdb/internal/core"
	"pathdb/internal/engine"
	"pathdb/internal/stats"
	"pathdb/internal/xpath"
)

// Typed engine errors. Callers (and the HTTP server's status-code mapping)
// classify failures with errors.Is against these sentinels instead of
// string-matching internal errors.
var (
	// ErrOverloaded is the admission-control rejection: the engine's queue
	// is at QueueDepth and the submission chose not to wait (TryDo). It
	// wraps the internal engine.ErrQueueFull, so errors.Is sees both.
	ErrOverloaded = fmt.Errorf("pathdb: engine overloaded: %w", engine.ErrQueueFull)
	// ErrClosed is returned for queries submitted to (or stranded in) an
	// engine that has been closed or is draining.
	ErrClosed = fmt.Errorf("pathdb: engine closed: %w", engine.ErrClosed)
)

// EngineConfig tunes the concurrent engine's admission control.
type EngineConfig struct {
	// MaxInFlight caps how many admitted queries execute together as one
	// gang, sharing the I/O scheduler where possible (default 8).
	MaxInFlight int
	// QueueDepth bounds the admission queue: TrySubmit beyond it is
	// rejected, Do/Submit block (default 64).
	QueueDepth int
	// Parallel is the worker-pool width per gang: how many gang tasks
	// (shared scheduler groups and solo queries) execute concurrently.
	// Default min(MaxInFlight, GOMAXPROCS).
	Parallel int
}

// Engine executes queries from many goroutines concurrently against one
// loaded document — the concurrent counterpart of DB.Query. Open sessions
// with NewSession; Close shuts the dispatcher down.
//
// See internal/engine for the execution model: submissions are admitted
// into a bounded queue, gathered into gangs by a single dispatcher, and
// executed on a worker pool over concurrent read-only storage views, with
// compatible XSchedule plans batched onto shared schedulers so the
// asynchronous I/O layer reorders cluster loads across query boundaries.
// Every query pays its costs on a private virtual clock that is folded
// into the volume clock at completion.
type Engine struct {
	// The engine's write/transaction surface is the same volumeAPI the DB
	// embeds, parameterized with the engine's write-admission hook: Update
	// through an Engine respects drain/close and is waited for by
	// shutdown, but the transaction semantics cannot drift from DB.Update.
	volumeAPI

	db *DB
	e  *engine.Engine
}

// NewEngine starts a concurrent engine over the document. The cost model's
// offline statistics pass runs here; call ResetStats afterwards when
// measuring cold runs. Close the engine before using blocking single-query
// DB methods again.
func (db *DB) NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{
		db: db,
		e: engine.New(db.store, engine.Config{
			MaxInFlight: cfg.MaxInFlight,
			QueueDepth:  cfg.QueueDepth,
			Parallel:    cfg.Parallel,
			// Each gang pins one MVCC snapshot for all its members, so
			// concurrent Updates never tear a gang's reads (see txn.go).
			Snapshots: dbSnapshots{db: db},
			// Share the facade's chooser (concurrency-safe) so the volume
			// collects document statistics exactly once.
			Chooser: db.getChooser(),
		}),
	}
	e.volumeAPI = volumeAPI{vol: db, admit: e.e.AdmitWrite}
	return e
}

// Close stops the engine; queries still queued fail with ErrClosed.
func (e *Engine) Close() { e.e.Close() }

// Shutdown drains the engine gracefully: admission stops immediately (new
// submissions fail with ErrClosed), every query already admitted — queued
// or in flight — runs to completion, then the dispatcher exits. If ctx
// expires first the engine hard-closes (remaining queued queries fail with
// ErrClosed) and Shutdown returns the context's error.
func (e *Engine) Shutdown(ctx context.Context) error {
	return wrapErr("shutdown", "", e.e.Drain(ctx))
}

// Draining reports whether the engine has stopped admitting queries
// (Shutdown or Close has begun).
func (e *Engine) Draining() bool { return e.e.Draining() }

// CostLedger returns an atomic snapshot of the volume's cost ledger — the
// clocks and physical counters accumulated by every query since the last
// ResetStats. stats.Ledger.Named enumerates the fields under stable
// exported names; the HTTP server's /metrics endpoint is built on it.
func (e *Engine) CostLedger() stats.Ledger { return e.db.store.Ledger().Snapshot() }

// EngineMetrics is a snapshot of the engine's counters.
type EngineMetrics struct {
	Submitted int64       // admitted queries
	Rejected  int64       // admission-queue rejections
	Completed int64       // finished without error
	Cancelled int64       // failed with a context error
	Gangs     int64       // dispatcher batches executed
	Batched   int64       // queries that ran on a gang-shared scheduler
	Faulted   int64       // queries failed by a page fault (I/O or corruption)
	Updates   int64       // write transactions admitted
	OverheadV stats.Ticks // virtual time spent on dispatch bookkeeping
}

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() EngineMetrics {
	m := e.e.Metrics()
	return EngineMetrics{
		Submitted: m.Submitted,
		Rejected:  m.Rejected,
		Completed: m.Completed,
		Cancelled: m.Cancelled,
		Gangs:     m.Gangs,
		Batched:   m.Batched,
		Faulted:   m.Faulted,
		Updates:   m.Updates,
		OverheadV: m.OverheadV,
	}
}

// NewSession opens a submission handle. Sessions are cheap; give each
// client goroutine its own.
func (e *Engine) NewSession() *Session { return &Session{eng: e, s: e.e.NewSession()} }

// Session submits queries to an Engine. Its methods are safe for
// concurrent use.
type Session struct {
	eng *Engine
	s   *engine.Session
}

// QueryOptions tunes one query. It is the single options struct for every
// evaluation surface — Session.Do/TryDo/Stream/TryStream, DB.QueryCtx and
// DB.QueryStream — so callers plumb one value instead of per-call-site
// flags.
type QueryOptions struct {
	// Strategy forces a physical strategy (default Auto: the cost model
	// decides per query).
	Strategy Strategy
	// Sorted requests results in document order. A sorted result must be
	// fully evaluated before the first node is delivered (order
	// enforcement buffers at the producer), so sorted streams trade
	// time-to-first-result for ordering.
	Sorted bool
	// MemLimit bounds the speculative structure S (0 = unlimited).
	MemLimit int
	// Timeout, when positive, bounds the whole evaluation (queue wait
	// included): the query fails with ErrTimeout when it expires. It
	// composes with the caller's context — whichever deadline is sooner
	// wins.
	Timeout time.Duration
	// Limit caps the result at N nodes (0 = unlimited). Unsorted
	// evaluation stops pulling the operator tree after N matches; sorted
	// evaluation sees everything, sorts, and keeps the first N in
	// document order.
	Limit int
	// PredEval forces the predicate evaluator (default PredAuto: the
	// cost model decides per query between per-candidate probing and the
	// set-at-a-time structural semi-join).
	PredEval PredEval
}

// context derives the evaluation context: the caller's ctx, additionally
// bounded by opts.Timeout when set. The returned cancel must always be
// called.
func (opts QueryOptions) context(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		return context.WithTimeout(ctx, opts.Timeout)
	}
	return context.WithCancel(ctx)
}

// ExecResult is the outcome of one engine query.
type ExecResult struct {
	Nodes    []Node
	Strategy Strategy // resolved strategy (meaningful when Auto was used)
	Shared   bool     // ran on a gang-shared scheduler (batched I/O)
	Gang     int      // gang size this query executed in

	// Choice is the cost model's full decision — strategy, coverage and
	// per-candidate cost estimates. Nil when a strategy was forced (the
	// model never ran). Union queries report the first branch's choice.
	Choice *PlanChoice

	// VirtualLatency is submit-to-done on the volume's virtual clock.
	VirtualLatency stats.Ticks
	// CostV is the query's own elapsed virtual time (CPUV + IOWaitV),
	// measured on its private ledger — deterministic on a warm buffer
	// regardless of how many workers the gang ran on. SharedV is the
	// gang-shared scheduler's clock (pooled prefetch I/O, reported to
	// every member of the group; zero for solo runs). Union queries sum
	// their branches.
	CostV   stats.Ticks
	CPUV    stats.Ticks
	IOWaitV stats.Ticks
	SharedV stats.Ticks
	// WallQueue and WallExec split the real (simulation) latency into
	// time queued and time executing.
	WallQueue time.Duration
	WallExec  time.Duration
}

// Count returns the result cardinality.
func (r *ExecResult) Count() int { return len(r.Nodes) }

func fromCore(s core.Strategy) Strategy {
	switch s {
	case core.StrategySimple:
		return Simple
	case core.StrategyScan:
		return Scan
	default:
		return Schedule
	}
}

// Do evaluates an absolute location path (or a '|' union of paths) through
// the engine, blocking until the result is ready or ctx is done.
// Cancelling ctx abandons the query: if still queued it never runs, if
// running it stops at the next operator poll point. A full admission queue
// makes Do wait (backpressure); use TryDo to shed instead.
//
// Do is sugar over Stream: it opens a cursor in buffered delivery mode and
// drains it, so the virtual-cost accounting of the two surfaces is
// identical by construction.
func (s *Session) Do(ctx context.Context, path string, opts QueryOptions) (ExecResult, error) {
	return s.drain(ctx, path, opts, false)
}

// TryDo is Do with non-blocking admission: when the engine's queue is at
// QueueDepth it fails immediately with ErrOverloaded instead of waiting —
// the load-shedding half of admission control, which a front end maps to
// "try again later". For union queries the shedding decision is made on
// the first branch; once that is admitted the remaining branches submit
// blocking (the union is committed).
func (s *Session) TryDo(ctx context.Context, path string, opts QueryOptions) (ExecResult, error) {
	return s.drain(ctx, path, opts, true)
}

func (s *Session) drain(ctx context.Context, path string, opts QueryOptions, try bool) (ExecResult, error) {
	c, err := s.stream(ctx, path, opts, try, false)
	if err != nil {
		return ExecResult{}, err
	}
	defer c.Close()
	return c.Drain()
}

// compile parses the path and maps it onto engine queries, one per union
// branch. live requests incremental delivery through the engine sink; the
// returned flag is the effective mode — a sorted union demotes to buffered
// delivery, because its global document order only exists after every
// branch has landed and merged (per-branch sinks would interleave).
func (s *Session) compile(path string, opts QueryOptions, live bool) ([]engine.Query, bool, error) {
	branches, err := xpathParseUnion(s.eng.db, path)
	if err != nil {
		return nil, false, err
	}
	if opts.Sorted && len(branches) > 1 {
		live = false
	}
	queries := make([]engine.Query, len(branches))
	for i, b := range branches {
		limit := opts.Limit
		if opts.Sorted && len(branches) > 1 {
			// A sorted union is merged and truncated after all branches
			// land (the global first-N needs every branch's matches); a
			// per-branch cap would cut the wrong nodes.
			limit = 0
		}
		queries[i] = engine.Query{
			Label:    path,
			Path:     b,
			Auto:     opts.Strategy == Auto,
			Strategy: opts.Strategy.internal(),
			// Union branches are merged and re-sorted by the cursor; plain
			// paths sort inside the engine.
			Sorted:   opts.Sorted && len(branches) == 1,
			MemLimit: opts.MemLimit,
			Limit:    limit,
			Stream:   live,
			PredEval: opts.PredEval.internal(),
		}
	}
	return queries, live, nil
}

// xpathParseUnion parses an absolute location path (or union) into
// simplified step lists.
func xpathParseUnion(db *DB, path string) ([][]xpath.Step, error) {
	branches, err := xpath.ParseUnion(db.dict, path)
	if err != nil {
		return nil, err
	}
	out := make([][]xpath.Step, len(branches))
	for i, b := range branches {
		if !b.Absolute {
			return nil, fmt.Errorf("pathdb: engine query %q must be absolute", path)
		}
		out[i] = b.Simplify().Steps
	}
	return out, nil
}
