package shard

import (
	"fmt"
	"testing"

	"pathdb"
)

// xmarkSet generates the XMark corpus split over a fresh n-shard ring,
// returning both so tests can inspect placement.
func xmarkSet(t *testing.T, n int) (*Ring, *pathdb.ShardSet) {
	t.Helper()
	ring := NewRing(n, 0)
	set, err := pathdb.GenerateXMarkSharded(
		pathdb.XMarkConfig{ScaleFactor: 0.5, Seed: 42, EntityScale: 0.1},
		pathdb.Options{Layout: pathdb.Shuffled, LayoutSeed: 42},
		n, ring.Place)
	if err != nil {
		t.Fatal(err)
	}
	return ring, set
}

// Placement must be a pure function of (shards, replicas, key): a restart
// rebuilds the ring from scratch and must route every key identically, or
// entities silently change owners.
func TestRingPlacementDeterministicAcrossRestarts(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0) // a "restarted" process rebuilding the same ring
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("/site/people/person#%d", i)
		if a.Place(key) != b.Place(key) {
			t.Fatalf("key %q: placements diverge across rebuilds (%d vs %d)",
				key, a.Place(key), b.Place(key))
		}
	}

	// The split itself is deterministic too: two sharded loads of the same
	// corpus assign every placement key to the same shard.
	_, s1 := xmarkSet(t, 4)
	_, s2 := xmarkSet(t, 4)
	if len(s1.Keys) != len(s2.Keys) {
		t.Fatalf("key counts differ across loads: %d vs %d", len(s1.Keys), len(s2.Keys))
	}
	for i := range s1.Keys {
		if s1.Keys[i] != s2.Keys[i] || s1.Placement[i] != s2.Placement[i] {
			t.Fatalf("entity %d: (%q -> %d) vs (%q -> %d) across loads",
				i, s1.Keys[i], s1.Placement[i], s2.Keys[i], s2.Placement[i])
		}
	}
}

// The ring must spread the real corpus evenly: over 4 shards on the XMark
// entity keys, no shard may deviate from the mean entity count by more
// than 15%.
func TestRingSkewXMarkCorpus(t *testing.T) {
	_, set := xmarkSet(t, 4)
	counts := set.EntityCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no entities were split")
	}
	mean := float64(total) / float64(len(counts))
	for s, c := range counts {
		skew := (float64(c) - mean) / mean
		if skew < 0 {
			skew = -skew
		}
		t.Logf("shard %d: %d entities (mean %.1f, skew %.1f%%)", s, c, mean, skew*100)
		if skew > 0.15 {
			t.Errorf("shard %d holds %d of %d entities: skew %.1f%% exceeds 15%%",
				s, c, total, skew*100)
		}
	}
}

// Degrading a shard must not move any existing key (reads still find their
// owner), while PlaceWrite routes new writes around the degraded shard
// without disturbing keys owned by healthy shards.
func TestRingStableRoutingWhenDegraded(t *testing.T) {
	ring := NewRing(4, 0)
	const degraded = 2

	keys := make([]string, 2000)
	owner := make([]int, len(keys))
	writeOwner := make([]int, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("/site/open_auctions/open_auction#%d", i)
		owner[i] = ring.Place(keys[i])
		writeOwner[i] = ring.PlaceWrite(keys[i])
	}

	ring.SetDegraded(degraded, true)
	for i, k := range keys {
		if got := ring.Place(k); got != owner[i] {
			t.Fatalf("key %q: Place moved %d -> %d under degradation (ownership must be stable)",
				k, owner[i], got)
		}
		w := ring.PlaceWrite(k)
		if w == degraded {
			t.Fatalf("key %q: PlaceWrite still targets degraded shard %d", k, degraded)
		}
		if writeOwner[i] != degraded && w != writeOwner[i] {
			t.Fatalf("key %q: PlaceWrite moved %d -> %d though its owner is healthy",
				k, writeOwner[i], w)
		}
	}

	ring.SetDegraded(degraded, false)
	for i, k := range keys {
		if got := ring.PlaceWrite(k); got != writeOwner[i] {
			t.Fatalf("key %q: PlaceWrite did not recover after un-degrading (%d vs %d)",
				k, got, writeOwner[i])
		}
	}
}
