package plan

import (
	"testing"

	"pathdb/internal/core"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmark"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

func xmarkStore(t testing.TB, sf float64) (*xmltree.Dictionary, *storage.Store) {
	t.Helper()
	dict := xmltree.NewDictionary()
	doc := xmark.Generate(dict, xmark.Config{ScaleFactor: sf, Seed: 17, EntityScale: 0.02})
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 8192)
	st, err := storage.Import(disk, dict, doc, storage.ImportOptions{
		PageSize: 8192, Layout: storage.LayoutNatural, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dict, st
}

func TestChooserPicksScanForLowSelectivity(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	// Q7-style: //description touches most of the document.
	path := xpath.MustParse(dict, "/site//description").Simplify().Steps
	choice := ch.Choose(path)
	if choice.Strategy != core.StrategyScan {
		t.Fatalf("want scan for //description, got %v (%v)", choice.Strategy, choice)
	}
	if choice.Coverage < 0.3 {
		t.Fatalf("coverage estimate %v too low for //description", choice.Coverage)
	}
}

func TestChooserPicksScheduleForHighSelectivity(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	// Q15-style: a long selective child path.
	path := xpath.MustParse(dict,
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword").Steps
	choice := ch.Choose(path)
	if choice.Strategy != core.StrategySchedule {
		t.Fatalf("want schedule for Q15, got %v (%v)", choice.Strategy, choice)
	}
}

func TestChooserScheduleNeverWorseThanSimpleEstimate(t *testing.T) {
	dict, st := xmarkStore(t, 0.5)
	ch := NewChooser(st)
	for _, src := range []string{"/site//item", "//keyword", "/site/people/person/emailaddress"} {
		path := xpath.MustParse(dict, src).Simplify().Steps
		choice := ch.Choose(path)
		if choice.Schedule.Cost > choice.Simple.Cost {
			t.Fatalf("%s: schedule estimate (%v) worse than simple (%v)", src, choice.Schedule.Cost, choice.Simple.Cost)
		}
	}
}

func TestChooserDecisionMatchesMeasurement(t *testing.T) {
	// The chooser must agree with actual simulated cost on the paper's
	// extreme queries (Q7-like scan win, Q15-like schedule win).
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	st.SetBufferCapacity(64)

	queries := []string{
		"/site//description",
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	}
	for _, src := range queries {
		path := xpath.MustParse(dict, src).Simplify().Steps
		choice := ch.Choose(path)

		measure := func(s core.Strategy) stats.Ticks {
			st.ResetForRun()
			core.BuildPlan(st, path, []storage.NodeID{st.Root()}, s, core.PlanOptions{}).Count()
			return st.Ledger().Total()
		}
		sched := measure(core.StrategySchedule)
		scan := measure(core.StrategyScan)
		var fasterIs core.Strategy
		if scan < sched {
			fasterIs = core.StrategyScan
		} else {
			fasterIs = core.StrategySchedule
		}
		if choice.Strategy != fasterIs {
			t.Errorf("%s: chooser picked %v but %v measured faster (sched=%v scan=%v)",
				src, choice.Strategy, fasterIs, sched, scan)
		}
	}
}

func TestBuildReturnsRunnablePlan(t *testing.T) {
	dict, st := xmarkStore(t, 0.5)
	ch := NewChooser(st)
	path := xpath.MustParse(dict, "/site//item").Simplify().Steps
	st.ResetForRun()
	p, choice := ch.Build(path, []storage.NodeID{st.Root()}, core.PlanOptions{})
	if p.Strategy != choice.Strategy {
		t.Fatal("plan strategy mismatch")
	}
	if n := p.Count(); n == 0 {
		t.Fatal("plan returned no items")
	}
}

func TestChoiceString(t *testing.T) {
	dict, st := xmarkStore(t, 0.2)
	ch := NewChooser(st)
	choice := ch.Choose(xpath.MustParse(dict, "//keyword").Simplify().Steps)
	if choice.String() == "" {
		t.Fatal("empty choice string")
	}
}
