package pathdb

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// joinDiffPaths exercises every join-relevant branching shape over the
// XMark corpus: existence and literal predicates, child/descendant/
// attribute branches, multi-level branches, nested predicates, unions and
// bounded repetition inside predicates, recursion under predicates,
// multi-predicate conjunctions, and the reverse axes that force XJoin's
// per-candidate fallback.
var joinDiffPaths = []string{
	"/site//text[keyword]",
	"/site//text[keyword][emph]",
	"/site//listitem[.//keyword]",
	"/site/regions//item[mailbox/mail]",
	"/site//item[mailbox/mail/from]",
	"/site//open_auction[bidder/increase]",
	`/site//open_auction[privacy="Yes"]`,
	`/site//closed_auction[type="Regular"]`,
	"/site//person[@id]",
	"/site//person[profile[interest]]",
	"/site//person[profile/@income]",
	"/site//text[keyword|bold]",
	// Mixed-axis unions over nested same-name elements: a child or
	// attribute branch marks positions that are not ancestor-closed, and
	// the .// branch joining the same candidate batch must not stop its
	// chain walk at them (see semiJoinMark).
	"/site//listitem[parlist/listitem|.//keyword]",
	"/site//item[@id|.//keyword]",
	"/site//parlist[listitem/text|.//parlist]",
	"/site//parlist[(listitem/parlist){1,2}]",
	"/site//item[payment][quantity]",
	"/site//annotation[description//keyword]",
	"/site//person[watches/watch]",
	"/site//item[incategory/@category]",
	"/site//bidder[personref][increase]",
	"/site//keyword[ancestor::listitem]", // ancestor branch: fallback probes
	"/site//mail[..]",                    // parent branch: fallback probes
}

// joinDiffStrategies: every physical strategy the evaluators run under.
var joinDiffStrategies = []Strategy{Simple, Schedule, Scan}

// joinFingerprint runs path with the given strategy and predicate
// evaluator and returns a byte-exact rendition of the sorted result set.
func joinFingerprint(t *testing.T, db *DB, path string, strat Strategy, pe PredEval) string {
	t.Helper()
	res, err := db.QueryCtx(context.Background(), path,
		QueryOptions{Sorted: true, Strategy: strat, PredEval: pe})
	if err != nil {
		t.Fatalf("%s [%v/%v]: %v", path, strat, pe, err)
	}
	var b strings.Builder
	for _, n := range res.Nodes {
		fmt.Fprintf(&b, "%d|%s|%s\n", n.ID(), n.OrdPath(), n.Name())
	}
	return b.String()
}

// TestJoinDifferential pins the tentpole's correctness contract: the
// set-at-a-time structural semi-join (XJoin) must be a pure optimization
// over per-candidate probing (PredFilter). For every branching shape,
// under every physical strategy, the node sets of the nested, join, and
// cost-chosen evaluators are byte-identical — on the freshly loaded
// volume, and again after mixed MVCC writes have rewritten clusters and
// advanced epochs.
func TestJoinDifferential(t *testing.T) {
	db := engineFixture(t)

	compare := func(label string) {
		t.Helper()
		nonEmpty := 0
		for _, p := range joinDiffPaths {
			for _, strat := range joinDiffStrategies {
				ref := joinFingerprint(t, db, p, strat, PredNested)
				for _, pe := range []PredEval{PredJoin, PredAuto} {
					if got := joinFingerprint(t, db, p, strat, pe); got != ref {
						t.Errorf("%s: %s [%v] diverges with %v:\nnested %d bytes, %v %d bytes",
							label, p, strat, pe, len(ref), pe, len(got))
					}
				}
				if ref != "" {
					nonEmpty++
				}
			}
		}
		if nonEmpty < len(joinDiffPaths)*len(joinDiffStrategies)/2 {
			t.Fatalf("%s: only %d/%d differential queries matched nodes; fixture too small to be meaningful",
				label, nonEmpty, len(joinDiffPaths)*len(joinDiffStrategies))
		}
	}

	compare("fresh volume")

	// Mixed writes: insert branching probes (so join-relevant subtrees grow),
	// across several commits so page epochs advance and synopses rebuild,
	// then delete one so clusters shrink too.
	regions := mustOne(t, db, "/site/regions")
	var probes []Node
	for i := 0; i < 3; i++ {
		err := db.Update(func(tx *Tx) error {
			n, err := tx.InsertXML(regions, fmt.Sprintf(
				`<item id='probe%d'><mailbox><mail><from>a b</from></mail></mailbox>`+
					`<payment>cash</payment><quantity>1</quantity>`+
					`<description><text><keyword>delta</keyword><emph><keyword>gamma</keyword></emph></text></description></item>`, i))
			if err != nil {
				return err
			}
			probes = append(probes, n)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Update(func(tx *Tx) error { return tx.Delete(probes[0]) }); err != nil {
		t.Fatal(err)
	}

	compare("after mixed writes")
}

// TestJoinUnionMixedAxisNesting pins the minimal counterexample for the
// mark-sharing hazard in semiJoinMark: with nested same-name candidates,
// a child branch marks the inner <s> (not an ancestor-closed position),
// and a .// branch sharing the mark array would stop its chain walk there
// and silently drop the outer <s>. Both evaluators must return both.
func TestJoinUnionMixedAxisNesting(t *testing.T) {
	db, err := LoadXMLString("<r><s><s><b><c>t</c></b><x>t</x></s></s></r>", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const path = "//s[b/c|.//x]"
	for _, pe := range []PredEval{PredNested, PredJoin, PredAuto} {
		res, err := db.QueryCtx(context.Background(), path, QueryOptions{Sorted: true, PredEval: pe})
		if err != nil {
			t.Fatalf("%v: %v", pe, err)
		}
		if len(res.Nodes) != 2 {
			ids := make([]uint64, len(res.Nodes))
			for i, n := range res.Nodes {
				ids[i] = n.ID()
			}
			t.Errorf("%v: want both nested <s> elements, got %d nodes %v", pe, len(res.Nodes), ids)
		}
	}
}

// TestJoinDifferentialUnderFaults re-runs the differential with the seeded
// fault plane armed: transient read errors and latency spikes must never
// make the join evaluator disagree with the nested one. Terminal typed
// faults are retried (the schedule is seeded, so a retry draws new
// outcomes); a silent divergence fails the test.
func TestJoinDifferentialUnderFaults(t *testing.T) {
	db := engineFixture(t)
	db.SetFaults(FaultConfig{Seed: 99, ReadError: 0.03, Latency: 0.05})
	defer db.SetFaults(FaultConfig{})

	faulty := func(path string, strat Strategy, pe PredEval) string {
		t.Helper()
		for attempt := 0; ; attempt++ {
			res, err := db.QueryCtx(context.Background(), path,
				QueryOptions{Sorted: true, Strategy: strat, PredEval: pe})
			if err != nil {
				if attempt > 50 {
					t.Fatalf("%s: still faulting after %d attempts: %v", path, attempt, err)
				}
				continue
			}
			var b strings.Builder
			for _, n := range res.Nodes {
				fmt.Fprintf(&b, "%d|%s|%s\n", n.ID(), n.OrdPath(), n.Name())
			}
			return b.String()
		}
	}

	for _, p := range joinDiffPaths {
		for _, strat := range []Strategy{Schedule, Scan} {
			ref := faulty(p, strat, PredNested)
			got := faulty(p, strat, PredJoin)
			if got != ref {
				t.Errorf("%s [%v]: join evaluator diverges under faults (%d vs %d bytes)",
					p, strat, len(ref), len(got))
			}
		}
	}
}
