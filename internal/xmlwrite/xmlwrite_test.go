package xmlwrite

import (
	"strings"
	"testing"

	"pathdb/internal/xmltree"
)

func sample() (*xmltree.Dictionary, *xmltree.Node) {
	d := xmltree.NewDictionary()
	b := xmltree.NewBuilder(d)
	b.Begin("site").
		Begin("item").Attr("id", "i1").Leaf("name", "a & b").End().
		Begin("empty").End().
		End()
	return d, b.Doc()
}

func TestBasicSerialization(t *testing.T) {
	d, doc := sample()
	got := String(d, doc, Options{})
	want := `<site><item id="i1"><name>a &amp; b</name></item><empty/></site>`
	if got != want {
		t.Fatalf("got %q\nwant %q", got, want)
	}
}

func TestDeclaration(t *testing.T) {
	d, doc := sample()
	got := String(d, doc, Options{Declaration: true})
	if !strings.HasPrefix(got, `<?xml version="1.0"`) {
		t.Fatalf("missing declaration: %q", got)
	}
}

func TestIndent(t *testing.T) {
	d, doc := sample()
	got := String(d, doc, Options{Indent: "  "})
	if !strings.Contains(got, "\n  <item") {
		t.Fatalf("no indentation: %q", got)
	}
	// Mixed/text content must remain inline.
	if strings.Contains(got, "\n    a &") {
		t.Fatalf("text content was indented: %q", got)
	}
}

func TestEscapeText(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"a<b":    "a&lt;b",
		"a>b":    "a&gt;b",
		"a&b":    "a&amp;b",
		`quo"te`: `quo"te`, // quotes are fine in text
		"<&>mix": "&lt;&amp;&gt;mix",
		"":       "",
	}
	for in, want := range cases {
		if got := EscapeText(in); got != want {
			t.Errorf("EscapeText(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeAttr(t *testing.T) {
	if got := EscapeAttr(`a"b<c&d`); got != `a&quot;b&lt;c&amp;d` {
		t.Fatalf("EscapeAttr = %q", got)
	}
}

func TestCommentAndPI(t *testing.T) {
	d := xmltree.NewDictionary()
	doc := xmltree.NewDocument()
	doc.AppendChild(&xmltree.Node{Kind: xmltree.Comment, Tag: xmltree.NoTag, Text: " c "})
	e := xmltree.NewElement(d.Intern("a"))
	doc.AppendChild(e)
	e.AppendChild(&xmltree.Node{Kind: xmltree.ProcInst, Tag: xmltree.NoTag, Text: "t d"})
	got := String(d, doc, Options{})
	if got != "<!-- c --><a><?t d?></a>" {
		t.Fatalf("got %q", got)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n <= 0 {
		return 0, errBoom
	}
	return len(p), nil
}

var errBoom = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "boom" }

func TestWriteErrorPropagates(t *testing.T) {
	d, doc := sample()
	err := Write(&failWriter{n: 10}, d, doc, Options{})
	if err != errBoom {
		t.Fatalf("err = %v, want boom", err)
	}
}
