package pathdb

import (
	"fmt"
	"time"

	"pathdb/internal/engine"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/txn"
	"pathdb/internal/xmlparse"
	"pathdb/internal/xmltree"
)

// ErrGone is returned by Tx mutations whose target node no longer exists —
// an earlier transaction (or statement of the same transaction) deleted it.
// The HTTP front end maps it to 409 Conflict.
var ErrGone = storage.ErrGone

// CheckFragment reports whether fragment parses as exactly one root
// element — the shape Tx.InsertXML accepts. The HTTP front end uses it to
// reject malformed update bodies with a 400 before admitting the write.
func (db *DB) CheckFragment(fragment string) error {
	_, err := parseFragment(db.dict, fragment)
	return err
}

// TxnOptions tunes the MVCC transaction subsystem that backs DB.Update.
// Zero values select the defaults documented on each field.
type TxnOptions struct {
	// GroupWindow is the group-commit window: how long a commit leader
	// waits for more commits to join its WAL flush. Every commit pays at
	// most one window of acknowledgement latency; in exchange commits
	// arriving within a window share one flush. Default 500µs; negative
	// disables batching (one flush per commit).
	GroupWindow time.Duration
	// CheckpointEvery folds the version map into a fresh checkpoint after
	// this many flushed groups, truncating the log (default 64).
	CheckpointEvery int
}

// volumeAPI is the write/transaction surface of one volume, embedded by
// both DB and Engine so the two facades share a single implementation of
// Update/UpdateEpoch/TxnMetrics/SetTxnOptions and cannot drift. The engine
// parameterizes it with an admission hook (engine.AdmitWrite) so writes
// respect the engine lifecycle — that gating is the only difference between
// the two facades.
type volumeAPI struct {
	vol *DB
	// admit, when set, gates each write against a lifecycle (the engine's
	// drain/close state) and registers it so shutdown waits for it. Errors
	// from an admission-gated path are wrapped into the typed taxonomy.
	admit func() (release func(), err error)
}

// Update runs fn inside a write transaction with snapshot isolation: fn
// stages mutations through the Tx, and when it returns nil the whole batch
// commits atomically — copy-on-write page images are published as one new
// volume version, and the call returns once the commit's group has been
// logged durably (group commit: concurrent Updates share one WAL flush).
// Any error from fn aborts the transaction with the volume untouched.
//
// Readers — blocking Query calls and engine sessions alike — never see a
// partial transaction: queries in flight keep reading the version they
// started on, and queries submitted after Update returns see everything it
// staged. Through an Engine the write is additionally admitted against the
// engine's lifecycle: once Close or Shutdown has begun it fails with
// ErrClosed, and the engine waits for admitted writers before its storage
// goes away.
func (v volumeAPI) Update(fn func(*Tx) error) error {
	_, err := v.UpdateEpoch(fn)
	return err
}

// UpdateEpoch is Update, but additionally returns the publish epoch of the
// committed version — the exact epoch at which this transaction's mutations
// became visible. Under group commit, concurrent writers each learn their
// own epoch, so callers can attribute epoch transitions to transactions
// unambiguously. A transaction that staged nothing returns the epoch it
// read (no new version was published).
func (v volumeAPI) UpdateEpoch(fn func(*Tx) error) (uint64, error) {
	if v.admit == nil {
		return v.vol.updateEpoch(fn)
	}
	release, err := v.admit()
	if err != nil {
		return 0, wrapErr("update", "", err)
	}
	defer release()
	epoch, uerr := v.vol.updateEpoch(fn)
	return epoch, wrapErr("update", "", uerr)
}

// TxnMetrics returns a snapshot of the transaction subsystem's counters.
// All zeros before the first write (the manager is created lazily).
func (v volumeAPI) TxnMetrics() TxnMetrics { return v.vol.txnMetrics() }

// SetTxnOptions configures the transaction manager that the first write
// creates. It fails once the manager exists (the first Update, InsertXML
// or Delete froze the options).
func (v volumeAPI) SetTxnOptions(o TxnOptions) error {
	db := v.vol
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.mgr.Load() != nil {
		return fmt.Errorf("pathdb: transaction manager already running; set options before the first write")
	}
	db.txnOpts = txn.Options{GroupWindow: o.GroupWindow, CheckpointEvery: o.CheckpointEvery}
	return nil
}

// manager returns the transaction manager if one has been created, without
// creating it.
func (db *DB) manager() *txn.Manager { return db.mgr.Load() }

// txnMgr returns the volume's transaction manager, adopting the store into
// transactional mode on first use (which persists an initial checkpoint).
func (db *DB) txnMgr() (*txn.Manager, error) {
	if m := db.mgr.Load(); m != nil {
		return m, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if m := db.mgr.Load(); m != nil {
		return m, nil
	}
	m, err := txn.NewManager(db.store, db.txnOpts)
	if err != nil {
		return nil, err
	}
	db.mgr.Store(m)
	return m, nil
}

// Tx is one open write transaction, valid only inside the DB.Update
// callback that created it. Mutations stage against a private copy-on-write
// overlay; nothing is visible to readers until Update returns nil and the
// commit publishes a new volume version.
type Tx struct {
	db *DB
	tx *txn.Tx
}

// InsertXML parses an XML fragment (one element) and stages it as a new
// child of parent, appended after the last child. The returned Node handle
// is valid after the transaction commits.
func (t *Tx) InsertXML(parent Node, fragment string) (Node, error) {
	return t.insertXML(parent, storage.InvalidNodeID, fragment)
}

// InsertXMLBefore stages the fragment as a child of parent immediately
// before the given sibling.
func (t *Tx) InsertXMLBefore(parent, before Node, fragment string) (Node, error) {
	return t.insertXML(parent, before.id, fragment)
}

func (t *Tx) insertXML(parent Node, before storage.NodeID, fragment string) (Node, error) {
	frag, err := parseFragment(t.db.dict, fragment)
	if err != nil {
		return Node{}, err
	}
	id, err := t.tx.InsertSubtree(parent.id, before, frag)
	if err != nil {
		return Node{}, err
	}
	return Node{db: t.db, id: id}, nil
}

// Delete stages removal of the node and its whole subtree.
func (t *Tx) Delete(n Node) error {
	return t.tx.DeleteSubtree(n.id)
}

// parseFragment parses an XML fragment and checks it has exactly one root
// element.
func parseFragment(dict *xmltree.Dictionary, fragment string) (*xmltree.Node, error) {
	frag, err := xmlparse.Parse(dict, []byte(fragment))
	if err != nil {
		return nil, err
	}
	if len(frag.Children) != 1 {
		return nil, fmt.Errorf("pathdb: fragment must have exactly one root element")
	}
	return frag.Children[0], nil
}

// updateEpoch is the single write-transaction implementation behind both
// facades (volumeAPI.Update / volumeAPI.UpdateEpoch).
func (db *DB) updateEpoch(fn func(*Tx) error) (uint64, error) {
	m, err := db.txnMgr()
	if err != nil {
		return 0, err
	}
	epoch, err := m.UpdateEpoch(func(t *txn.Tx) error {
		return fn(&Tx{db: db, tx: t})
	})
	if err != nil {
		return 0, err
	}
	// No chooser invalidation: the next getChooser call folds the commit's
	// rewritten clusters into the statistics incrementally (plan.Refresh).
	return epoch, nil
}

// TxnMetrics is a snapshot of the transaction subsystem's counters. All
// zeros before the first write (the manager is created lazily).
type TxnMetrics struct {
	Commits  uint64 // transactions committed
	Aborts   uint64 // transactions rolled back
	Groups   uint64 // commit groups flushed to the WAL
	Flushes  uint64 // WAL page writes across all groups
	MaxGroup uint64 // largest commit group observed
	Epoch    uint64 // current published version epoch
	Pinned   int    // snapshots currently pinned by readers
	FreePage int    // reclaimed pages awaiting reuse

	// FlushesPerCommit is Flushes/Commits — group commit drives it below
	// 1.0 once concurrent writers batch.
	FlushesPerCommit float64
}

func (db *DB) txnMetrics() TxnMetrics {
	m := db.manager()
	if m == nil {
		return TxnMetrics{}
	}
	tm := m.Metrics()
	return TxnMetrics{
		Commits:          tm.Commits,
		Aborts:           tm.Aborts,
		Groups:           tm.Groups,
		Flushes:          tm.Flushes,
		MaxGroup:         tm.MaxGroup,
		Epoch:            tm.Epoch,
		Pinned:           tm.Pinned,
		FreePage:         tm.FreePage,
		FlushesPerCommit: tm.FlushesPerCommit(),
	}
}

// dbSnapshots adapts the DB's transaction manager to the engine's snapshot
// source: every gang pins one version for all its members. Before the first
// write there is no manager and no version history, so it degrades to a
// plain view pinned at gang start — the engine's nil-source behaviour.
type dbSnapshots struct{ db *DB }

func (s dbSnapshots) Snapshot() engine.Snapshot {
	if m := s.db.manager(); m != nil {
		return m.Snapshot()
	}
	return plainSnap{st: s.db.store}
}

// plainSnap is the no-manager fallback: an unpinned view of the only
// version there is.
type plainSnap struct{ st *storage.Store }

func (p plainSnap) View(led *stats.Ledger) *storage.Store { return p.st.SnapshotView(led) }
func (p plainSnap) Epoch() uint64                         { return 0 }
func (p plainSnap) Release()                              {}
