package core

import (
	"fmt"

	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
	"pathdb/internal/xpath"
)

// XSchedule is the I/O-performing operator based on asynchronous I/O
// (Sec. 5.3.4, 5.4.4). It pools every cluster access of one location path:
// context instances arrive from its producer, continuation instances are
// fed back by XAssembly via Enqueue, and all cluster loads are submitted
// to the asynchronous I/O subsystem, which reorders them. Instances are
// returned grouped by loaded cluster, shortest (smallest S_R) first — the
// lexicographic (cluster, S_R) order of Sec. 5.3.4.2.
//
// With Speculative set (Sec. 5.4.4), visiting a cluster additionally emits
// left-incomplete instances for its border nodes so the cluster never has
// to be revisited; XAssembly merges them later. XScheduleR of the paper is
// this operator with Speculative = false.
type XSchedule struct {
	es       *EvalState
	producer Operator

	// K is the desired minimum queue fill (paper default 100): enough
	// pending requests for the I/O layers to reorder profitably.
	K int
	// Speculative enables left-incomplete instance generation per visited
	// cluster (general XSchedule; off reproduces XScheduleR).
	Speculative bool
	// Paths lists the location paths whose instances flow through this
	// scheduler, indexed by Instance.Path (single-path plans have one
	// entry). Enqueue uses it to resolve an instance's pending step and
	// consult the target cluster's synopsis: a cluster that provably
	// cannot contribute to the step is dropped before it is pooled.
	Paths [][]xpath.Step

	q            map[vdisk.PageID][]Instance
	qLen         int
	producerDone bool

	current      vdisk.PageID
	currentValid bool
	visited      map[vdisk.PageID]bool
	spec         []Instance // speculative instances of the current cluster
}

// DefaultK is the paper's default queue fill target.
const DefaultK = 100

// NewXSchedule builds the operator reading context instances from producer.
func NewXSchedule(es *EvalState, producer Operator) *XSchedule {
	return &XSchedule{es: es, producer: producer, K: DefaultK}
}

// Open opens the producer and resets all queues (borrowed from the arena
// when the plan has one).
func (x *XSchedule) Open() {
	x.producer.Open()
	ar := x.es.Arena
	x.q = ar.takeClusterQueue()
	x.qLen = 0
	x.producerDone = false
	x.currentValid = false
	x.visited = ar.takeClusterSet()
	x.spec = ar.takeSpec()
}

// Close closes the producer and returns the queues to the arena.
func (x *XSchedule) Close() {
	x.producer.Close()
	ar := x.es.Arena
	ar.putClusterQueue(x.q)
	ar.putClusterSet(x.visited)
	ar.putSpec(x.spec)
	x.q, x.visited, x.spec = nil, nil, nil
}

// Enqueue adds a continuation instance whose target cluster must be
// visited (called by XAssembly, Sec. 5.3.3.2). The access is scheduled
// immediately with the asynchronous I/O subsystem — unless the cluster's
// synopsis proves the instance's pending downward step matches nothing
// there and no border could carry the enumeration further, in which case
// the instance is dropped without any I/O.
func (x *XSchedule) Enqueue(p Instance) {
	cluster := p.NR.Page()
	if step, ok := x.pendingStep(p); ok &&
		x.es.Store.SkippableCluster(cluster, step.Axis, step.Test) {
		stats.Inc(&x.es.ledger().ClustersSkipped)
		x.es.chargeSetOp(1)
		return
	}
	lst, ok := x.q[cluster]
	if !ok {
		lst = x.es.Arena.takeInsts()
	}
	x.q[cluster] = append(lst, p.dropCur())
	x.qLen++
	x.es.chargeSetOp(1)
	x.es.Store.RequestCluster(cluster)
}

// pendingStep resolves the location step an enqueued instance evaluates
// next: seeds (S_L = S_R = 0) and continuations interrupted during step
// S_R+1 both resume at Paths[p.Path][p.SR].
func (x *XSchedule) pendingStep(p Instance) (xpath.Step, bool) {
	if p.Path < 0 || p.Path >= len(x.Paths) {
		return xpath.Step{}, false
	}
	steps := x.Paths[p.Path]
	if p.SR < 0 || p.SR >= len(steps) {
		return xpath.Step{}, false
	}
	return steps[p.SR], true
}

// QLen reports the number of queued instances (tests, ablations).
func (x *XSchedule) QLen() int { return x.qLen }

// Next implements the XSchedule next method (Sec. 5.3.4.2): replenish the
// queue, schedule cluster accesses, and return a path whose cluster is
// loaded.
func (x *XSchedule) Next() (Instance, bool) {
	for {
		// Cooperative cancellation: end the stream early. Requests already
		// submitted stay with the I/O subsystem; the plan's owner cancels
		// them (Store.CancelRequests) so they cannot leak into a later run.
		if x.es.Cancelled() {
			return Instance{}, false
		}
		x.replenish()

		// Return a queued path for the current cluster, shortest first.
		if x.currentValid {
			if insts := x.q[x.current]; len(insts) > 0 {
				best := 0
				for i := range insts {
					if insts[i].SR < insts[best].SR {
						best = i
					}
				}
				out := insts[best]
				insts[best] = insts[len(insts)-1]
				rest := insts[:len(insts)-1]
				if len(rest) == 0 {
					delete(x.q, x.current)
					x.es.Arena.putInsts(rest)
				} else {
					x.q[x.current] = rest
				}
				x.qLen--
				x.es.chargeTuple()
				return out, true
			}
			// Queued paths drained: emit this cluster's speculative
			// instances, if any remain.
			if n := len(x.spec); n > 0 {
				out := x.spec[n-1]
				x.spec = x.spec[:n-1]
				x.es.chargeTuple()
				return out, true
			}
		}

		// Advance to the next loaded cluster.
		c, ok := x.es.Store.WaitCluster()
		if ok {
			x.setCurrent(c)
			continue
		}
		// No outstanding I/O. Done when nothing remains anywhere.
		if x.qLen == 0 && x.producerDone {
			return Instance{}, false
		}
		if x.qLen > 0 {
			// Queued clusters without outstanding requests can occur only
			// through request/visit races; re-request them.
			for cluster := range x.q {
				x.es.Store.RequestCluster(cluster)
			}
			continue
		}
		// Producer not exhausted but queue empty: force replenish to make
		// progress even when k is already satisfied by... (cannot happen:
		// replenish fills until k or exhaustion; if qLen == 0 the producer
		// is exhausted). Defensive:
		panic(fmt.Sprintf("core: XSchedule stalled (qLen=%d, producerDone=%v)", x.qLen, x.producerDone))
	}
}

// replenish reads context instances from the producer until the queue
// holds at least K items or the producer is exhausted (Sec. 5.3.4.2,
// "Queue Processing"). In fallback mode the producer remains the only
// source (Sec. 5.4.6), which this code already guarantees structurally.
func (x *XSchedule) replenish() {
	for !x.producerDone && x.qLen < x.K {
		in, ok := x.producer.Next()
		if !ok {
			x.producerDone = true
			return
		}
		x.Enqueue(in)
	}
}

// setCurrent makes c the current cluster and prepares its speculative
// instances when enabled.
func (x *XSchedule) setCurrent(c vdisk.PageID) {
	x.current = c
	x.currentValid = true
	stats.Inc(&x.es.ledger().ClustersVisited)
	x.spec = x.spec[:0]
	if !x.Speculative || x.es.Fallback() || x.visited[c] {
		x.visited[c] = true
		return
	}
	x.visited[c] = true
	pathLen := x.es.Len()
	for _, b := range x.es.Store.BordersOf(c) {
		for i := 0; i < pathLen; i++ {
			x.spec = append(x.spec, Instance{SL: i, NL: b, NLBorder: true, SR: i, NR: b, NRBorder: true})
			stats.Inc(&x.es.ledger().SpecInstances)
		}
	}
}
