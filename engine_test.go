package pathdb

import (
	"context"
	"sync"
	"testing"

	"pathdb/internal/ordpath"
)

// engineFixture loads a small generated document for facade-level engine
// tests.
func engineFixture(t *testing.T) *DB {
	t.Helper()
	db, err := GenerateXMark(XMarkConfig{ScaleFactor: 0.1, Seed: 7, EntityScale: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Auto, Simple, Schedule, Scan} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	for name, want := range map[string]Strategy{
		"XSchedule": Schedule, "schedule": Schedule, " scan ": Scan, "AUTO": Auto,
	} {
		if got, err := ParseStrategy(name); err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("fastest"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestEngineMatchesQuery: concurrent sessions through the facade engine
// return the same counts as the blocking DB.Query API, including unions.
func TestEngineMatchesQuery(t *testing.T) {
	db := engineFixture(t)
	paths := []string{
		"/site/regions//item",
		"/site//description",
		"/site/people/person/name | /site/regions//item/name",
	}
	want := map[string]int{}
	for _, p := range paths {
		q, err := db.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = q.Count()
	}

	eng := db.NewEngine(EngineConfig{MaxInFlight: 4})
	defer eng.Close()

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := eng.NewSession()
			for _, p := range paths {
				res, err := s.Do(context.Background(), p, QueryOptions{Sorted: true})
				if err != nil {
					errs <- err
					return
				}
				if res.Count() != want[p] {
					t.Errorf("engine count(%s) = %d, want %d", p, res.Count(), want[p])
				}
				key := func(n Node) ordpath.Key {
					return db.store.Swizzle(n.id).OrdKey()
				}
				for i := 1; i < len(res.Nodes); i++ {
					if ordpath.Compare(key(res.Nodes[i-1]), key(res.Nodes[i])) > 0 {
						t.Errorf("results of %s not in document order", p)
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := eng.Metrics()
	if m.Completed == 0 || m.Cancelled != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestEngineCancelledContext(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.NewSession().Do(ctx, "/site//item", QueryOptions{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestEngineRelativePathRejected(t *testing.T) {
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{})
	defer eng.Close()
	if _, err := eng.NewSession().Do(context.Background(), "regions//item", QueryOptions{}); err == nil {
		t.Fatal("relative path accepted")
	}
}
