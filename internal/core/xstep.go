package core

import (
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// XStep is the intra-cluster navigation operator (Sec. 5.3.2): XStepᵢ
// extends path instances whose right end was produced by step i-1 by one
// location step, stopping at cluster borders. Instances it is not
// applicable to (S_R ≠ i-1) pass through unchanged.
//
// With CrossBorders set, the operator instead behaves as a classic
// Unnest-Map (Sec. 5.1): border nodes are traversed immediately with
// synchronous I/O and never surface. This single switch turns an
// XSchedule/XScan plan into the Simple baseline and implements the
// fallback mode of Sec. 5.4.6 (the switch also flips at runtime when the
// shared state enters fallback).
type XStep struct {
	es    *EvalState
	input Operator
	i     int // step number (1-based)
	step  xpath.Step

	// CrossBorders makes the operator a full Unnest-Map.
	CrossBorders bool

	base  Instance            // input instance currently being extended
	iters []*storage.StepIter // navigation stack; >1 only when crossing
}

// NewXStep builds XStepᵢ for location step es.Path[i-1] reading from input.
func NewXStep(es *EvalState, input Operator, i int) *XStep {
	return &XStep{es: es, input: input, i: i, step: es.Path[i-1]}
}

// Open opens the producer.
func (x *XStep) Open() {
	x.input.Open()
	x.releaseIters()
}

// Close closes the producer, returning any live iterators to the pool
// (early close: K-limit reached or the query cancelled mid-navigation).
func (x *XStep) Close() {
	x.releaseIters()
	x.input.Close()
}

func (x *XStep) releaseIters() {
	for _, it := range x.iters {
		it.Release()
	}
	x.iters = x.iters[:0]
}

// Next implements the XStep next method (Sec. 5.3.2.2).
func (x *XStep) Next() (Instance, bool) {
	crossing := x.CrossBorders || x.es.Fallback()
	for {
		// Drain the current navigation (possibly across borders).
		for len(x.iters) > 0 {
			it := x.iters[len(x.iters)-1]
			res, ok := it.Next()
			if !ok {
				it.Release()
				x.iters = x.iters[:len(x.iters)-1]
				continue
			}
			if res.IsBorder() {
				if crossing {
					// Unnest-Map behaviour: traverse the inter-cluster
					// edge immediately (synchronous, possibly random I/O)
					// and continue enumerating on the far side.
					far := x.es.Store.Swizzle(res.Target())
					x.iters = append(x.iters, x.es.Store.Step(far, x.step.Axis, x.step.Test))
					continue
				}
				// Defer the crossing: emit a right-incomplete instance.
				// S_R stays i-1 — the step is not fully evaluated yet.
				out := x.base
				out.SR = x.i - 1
				out.NR = res.Unswizzle()
				out.NRBorder = true
				out.TargetR = res.Target()
				out.Ord = nil
				out.cur = res
				out.curSet = true
				return out, true
			}
			// A core result: the instance is extended to step i.
			out := x.base
			out.SR = x.i
			out.NR = res.Unswizzle()
			out.NRBorder = false
			out.TargetR = 0
			out.Ord = res.OrdKey()
			out.cur = res
			out.curSet = true
			return out, true
		}

		in, ok := x.input.Next()
		if !ok {
			return Instance{}, false
		}
		x.es.chargeTuple()
		if in.SR != x.i-1 {
			// Not applicable: hand the instance to the consumer untouched.
			return in, true
		}
		// Applicable: enumerate π_i results from the right end. The right
		// end may be a core node (fresh enumeration) or a border companion
		// (continuation on the far side), which storage.Step dispatches on.
		ctx := in.cur
		if !in.curSet {
			ctx = x.es.Store.Swizzle(in.NR)
		}
		x.base = in
		x.iters = append(x.iters[:0], x.es.Store.Step(ctx, x.step.Axis, x.step.Test))
	}
}
