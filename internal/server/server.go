// Package server is the networked front end of the query engine: an
// HTTP/JSON service wrapping pathdb.Engine, giving the reproduction the
// operational shape of the standalone XML servers the paper's Sec. 7
// outlook points at — one I/O-performing operator serving many concurrent
// location paths, now across real sockets.
//
// Endpoints (versioned under /v1/; the unversioned paths remain as
// deprecated aliases answering a Deprecation header):
//
//	POST /v1/query    evaluate {path, strategy, limit, timeout_ms, sorted};
//	                  with Accept: application/x-ndjson the response is a
//	                  stream — one node record per line plus a trailing
//	                  summary record
//	POST /v1/update   mutate {op, parent, xml, path, timeout_ms}
//	GET  /v1/metrics  Prometheus text exposition: engine counters + cost ledger
//	GET  /v1/healthz  200 while serving, 503 once draining
//
// The three operational properties the engine already provides in-process
// are surfaced as HTTP semantics:
//
//   - Deadline propagation. Each request's context (the client connection)
//     is the query's context, optionally bounded by timeout_ms. A client
//     that disconnects or times out cancels the in-flight query at its
//     next operator poll point, and its outstanding cluster prefetches are
//     withdrawn from the simulated device (visible as async_withdrawn in
//     /metrics). Deadline expiry maps to 504 Gateway Timeout.
//
//   - Load shedding. Queries are admitted with non-blocking admission
//     (Session.TryDo): when the engine's queue is at QueueDepth the
//     request fails fast with 503 Service Unavailable and a Retry-After
//     header instead of stacking up — admission control made visible.
//
//   - Graceful drain. Shutdown flips the drain flag (healthz turns 503 so
//     load balancers stop routing, new queries are refused with 503),
//     waits for every in-flight request to complete, then drains and
//     closes the engine.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathdb"
)

// Options tunes the HTTP front end.
type Options struct {
	// MaxNodes caps how many result nodes one response may carry,
	// whatever the request's limit asks for (default 1000).
	MaxNodes int
	// MaxTimeout caps the per-request timeout_ms (default 30s). Requests
	// without a timeout run under it too, so a stuck client cannot hold a
	// query slot forever.
	MaxTimeout time.Duration
	// RetryAfter is the value of the Retry-After header on shed requests,
	// in seconds (default 1).
	RetryAfter int
	// MaxBody bounds the request body in bytes (default 1 MiB).
	MaxBody int64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 1000
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	return o
}

// Server is the HTTP front end over one engine. Create with New, mount it
// as an http.Handler, and call Shutdown to drain.
type Server struct {
	db   *pathdb.DB
	eng  *pathdb.Engine
	ses  *pathdb.Session
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	// Server-level counters for /metrics (the engine keeps its own).
	inflightN atomic.Int64
	requests  atomic.Int64 // /query requests accepted into a handler
	served    atomic.Int64 // 200s
	shed      atomic.Int64 // 503s from admission control or drain
	timeouts  atomic.Int64 // 504s
	badReqs   atomic.Int64 // 400s
	gone      atomic.Int64 // client disconnected mid-query
	ioErrors  atomic.Int64 // 500s from storage faults (KindIO/KindCorrupt)

	// Update counters (the transaction subsystem keeps the commit-side
	// ones; these count HTTP outcomes).
	updates    atomic.Int64 // /update requests accepted into a handler
	updated    atomic.Int64 // update requests answered 200
	updateErrs atomic.Int64 // update requests answered 4xx/5xx
}

// New builds a server over db's engine. The engine must outlive the
// server; Shutdown closes it.
func New(db *pathdb.DB, eng *pathdb.Engine, opts Options) *Server {
	s := &Server{
		db:   db,
		eng:  eng,
		ses:  eng.NewSession(),
		opts: opts.withDefaults(),
		mux:  http.NewServeMux(),
	}
	registerVersioned(s.mux, "query", s.handleQuery)
	registerVersioned(s.mux, "update", s.handleUpdate)
	registerVersioned(s.mux, "metrics", s.handleMetrics)
	registerVersioned(s.mux, "healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InFlight returns the number of /query requests currently executing.
func (s *Server) InFlight() int64 { return s.inflightN.Load() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: new queries are refused with 503 (and
// healthz flips to 503 so load balancers stop routing), every request
// already in a handler runs to completion, then the engine itself is
// drained and closed. If ctx expires first the engine hard-closes and
// Shutdown returns the context's error. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.eng.Close()
		return ctx.Err()
	}
	return s.eng.Shutdown(ctx)
}

// enter registers a request against the drain gate. It fails once
// Shutdown has begun; on success the caller must leave().
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	return true
}

func (s *Server) leave() {
	s.inflightN.Add(-1)
	s.inflight.Done()
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Path is an absolute location path, or a '|' union of them.
	Path string `json:"path"`
	// Strategy forces a physical strategy ("auto", "simple", "xschedule",
	// "xscan"); empty means auto.
	Strategy string `json:"strategy,omitempty"`
	// Limit caps the nodes echoed back in the response; 0 returns the
	// count only.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS bounds the query's execution; 0 means the server cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Sorted requests document-order results.
	Sorted bool `json:"sorted,omitempty"`
	// Preds forces the predicate evaluator ("auto", "nested", "join");
	// empty means auto (the cost model decides per query).
	Preds string `json:"preds,omitempty"`
}

// NodeJSON is one result node in a QueryResponse.
type NodeJSON struct {
	ID   uint64 `json:"id"`
	Name string `json:"name,omitempty"`
	Ord  string `json:"ord"`
	// Shard is the source shard in router mode (omitted by the
	// single-volume server, whose only volume is shard 0 anyway).
	Shard int `json:"shard,omitempty"`
}

// QueryResponse is the POST /query result body.
type QueryResponse struct {
	Path      string     `json:"path"`
	Count     int        `json:"count"`
	Strategy  string     `json:"strategy"`
	Shared    bool       `json:"shared"`
	Gang      int        `json:"gang"`
	Nodes     []NodeJSON `json:"nodes,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`

	// Choice surfaces the cost model's decision when the query ran under
	// the auto strategy: the strategy it picked, the estimated cluster
	// coverage that drove the pick, and the virtual cost estimated for
	// each candidate operator. Absent when a strategy was forced.
	Choice *ChoiceJSON `json:"choice,omitempty"`

	// Virtual costs (calibrated cost model, machine independent) and the
	// wall-clock split, all in nanoseconds.
	CostVNs          int64 `json:"cost_v_ns"`
	CPUVNs           int64 `json:"cpu_v_ns"`
	IOWaitVNs        int64 `json:"iowait_v_ns"`
	SharedVNs        int64 `json:"shared_v_ns,omitempty"`
	VirtualLatencyNs int64 `json:"virtual_latency_ns"`
	WallQueueNs      int64 `json:"wall_queue_ns"`
	WallExecNs       int64 `json:"wall_exec_ns"`
}

// ChoiceJSON is the cost-model decision echoed in a QueryResponse.
type ChoiceJSON struct {
	ChosenStrategy string  `json:"chosen_strategy"`
	Coverage       float64 `json:"coverage"`
	PagesTouched   int     `json:"pages_touched"`
	ScheduleCostNs int64   `json:"schedule_cost_ns"`
	ScanCostNs     int64   `json:"scan_cost_ns"`
	SimpleCostNs   int64   `json:"simple_cost_ns"`
	// PredEval is the chosen predicate evaluator ("nested" or "join");
	// omitted when the path carries no predicates.
	PredEval string `json:"pred_eval,omitempty"`
}

// ErrorResponse is the JSON body of every non-200 response. Kind
// round-trips the pathdb error taxonomy (pathdb.ParseErrorKind), so
// clients classify failures structurally instead of matching messages.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// errKind extracts the taxonomy kind of err for the response body; errors
// from outside the taxonomy report no kind.
func errKind(err error) string {
	var pe *pathdb.Error
	if errors.As(err, &pe) {
		return pe.Kind.String()
	}
	return ""
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if !s.enter() {
		s.shed.Add(1)
		s.unavailable(w, "draining", pathdb.KindClosed.String())
		return
	}
	defer s.leave()
	s.requests.Add(1)

	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Path == "" {
		s.badRequest(w, "missing \"path\"")
		return
	}
	if req.Limit < 0 || req.TimeoutMS < 0 {
		s.badRequest(w, "\"limit\" and \"timeout_ms\" must be non-negative")
		return
	}
	opts := pathdb.QueryOptions{Sorted: req.Sorted}
	if req.Strategy != "" {
		strat, err := pathdb.ParseStrategy(req.Strategy)
		if err != nil {
			s.badRequest(w, err.Error())
			return
		}
		opts.Strategy = strat
	}
	if req.Preds != "" {
		pe, err := pathdb.ParsePredEval(req.Preds)
		if err != nil {
			s.badRequest(w, err.Error())
			return
		}
		opts.PredEval = pe
	}
	// Compile first so a malformed path is a 400, not a failed engine
	// submission (the engine re-parses on submit; parsing is cheap).
	if _, err := s.db.Query(req.Path); err != nil {
		s.badRequest(w, err.Error())
		return
	}

	// Deadline propagation: the request context (cancelled when the client
	// disconnects) bounded by the request's timeout, capped by the server.
	timeout := s.opts.MaxTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Content negotiation: Accept: application/x-ndjson selects streamed
	// delivery — one node record per line as the cursor produces them, a
	// trailing summary record, bounded chunked flushes in between.
	if wantsStream(r) {
		s.streamQuery(ctx, w, r, req, opts)
		return
	}

	res, err := s.ses.TryDo(ctx, req.Path, opts)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, s.response(req, &res))
}

// UpdateRequest is the POST /update body.
type UpdateRequest struct {
	// Op is the mutation: "insert" puts XML under the node Parent
	// matches; "delete" removes every node Path matches.
	Op string `json:"op"`
	// Parent is the location path selecting the insert target. It must
	// match exactly one node (anything else is a 400: an ambiguous
	// insert target is a client error, not a fan-out).
	Parent string `json:"parent,omitempty"`
	// XML is the fragment to insert — exactly one root element.
	XML string `json:"xml,omitempty"`
	// Path selects the nodes to delete; all matches are removed in one
	// transaction.
	Path string `json:"path,omitempty"`
	// TimeoutMS bounds the target lookup; 0 means the server cap. The
	// commit itself is not abandoned mid-flight (it is atomic).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// UpdateResponse is the POST /update result body.
type UpdateResponse struct {
	Op       string    `json:"op"`
	Inserted *NodeJSON `json:"inserted,omitempty"` // the fragment root (insert)
	Deleted  int       `json:"deleted"`            // nodes removed (delete)
	// Epoch is the volume version current after the commit.
	Epoch uint64 `json:"epoch"`
	// CommitWallNs is the wall-clock time of the whole transaction —
	// staging plus the group-commit acknowledgement (under concurrent
	// writers, dominated by the shared WAL flush window).
	CommitWallNs int64 `json:"commit_wall_ns"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if !s.enter() {
		s.shed.Add(1)
		s.unavailable(w, "draining", pathdb.KindClosed.String())
		return
	}
	defer s.leave()
	s.updates.Add(1)

	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.updateBadRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.TimeoutMS < 0 {
		s.updateBadRequest(w, "\"timeout_ms\" must be non-negative")
		return
	}
	timeout := s.opts.MaxTimeout
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	switch req.Op {
	case "insert":
		s.handleInsert(ctx, w, r, req)
	case "delete":
		s.handleDelete(ctx, w, r, req)
	default:
		s.updateBadRequest(w, fmt.Sprintf("unknown op %q (want \"insert\" or \"delete\")", req.Op))
	}
}

// handleInsert resolves the parent path (it must match exactly one node)
// and commits the fragment under it.
func (s *Server) handleInsert(ctx context.Context, w http.ResponseWriter, r *http.Request, req UpdateRequest) {
	if req.Parent == "" || req.XML == "" {
		s.updateBadRequest(w, "insert needs \"parent\" and \"xml\"")
		return
	}
	if err := s.db.CheckFragment(req.XML); err != nil {
		s.updateBadRequest(w, err.Error())
		return
	}
	res, err := s.ses.Do(ctx, req.Parent, pathdb.QueryOptions{})
	if err != nil {
		s.updateError(w, r, err)
		return
	}
	if res.Count() != 1 {
		s.updateBadRequest(w, fmt.Sprintf("parent path %q matches %d nodes; need exactly 1", req.Parent, res.Count()))
		return
	}

	start := time.Now()
	var node pathdb.Node
	err = s.eng.Update(func(tx *pathdb.Tx) error {
		n, err := tx.InsertXML(res.Nodes[0], req.XML)
		node = n
		return err
	})
	if err != nil {
		s.updateError(w, r, err)
		return
	}
	s.updated.Add(1)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Op:           "insert",
		Inserted:     &NodeJSON{ID: node.ID(), Name: node.Name(), Ord: node.OrdPath()},
		Epoch:        s.db.TxnMetrics().Epoch,
		CommitWallNs: time.Since(start).Nanoseconds(),
	})
}

// handleDelete resolves the path and removes every match in one
// transaction (zero matches commit nothing and answer deleted: 0).
func (s *Server) handleDelete(ctx context.Context, w http.ResponseWriter, r *http.Request, req UpdateRequest) {
	if req.Path == "" {
		s.updateBadRequest(w, "delete needs \"path\"")
		return
	}
	res, err := s.ses.Do(ctx, req.Path, pathdb.QueryOptions{})
	if err != nil {
		s.updateError(w, r, err)
		return
	}

	start := time.Now()
	if res.Count() > 0 {
		err = s.eng.Update(func(tx *pathdb.Tx) error {
			for _, n := range res.Nodes {
				if derr := tx.Delete(n); derr != nil {
					return derr
				}
			}
			return nil
		})
		if err != nil {
			s.updateError(w, r, err)
			return
		}
	}
	s.updated.Add(1)
	writeJSON(w, http.StatusOK, UpdateResponse{
		Op:           "delete",
		Deleted:      res.Count(),
		Epoch:        s.db.TxnMetrics().Epoch,
		CommitWallNs: time.Since(start).Nanoseconds(),
	})
}

// updateBadRequest answers 400 and counts it against both the bad-request
// and update-error series.
func (s *Server) updateBadRequest(w http.ResponseWriter, msg string) {
	s.updateErrs.Add(1)
	s.badRequest(w, msg)
}

// updateError maps update failures onto HTTP statuses: drain/overload are
// 503, a vanished target (already deleted by a racing transaction) is 409,
// storage faults are 500, lookup deadline expiry is 504.
func (s *Server) updateError(w http.ResponseWriter, r *http.Request, err error) {
	s.updateErrs.Add(1)
	switch {
	case errors.Is(err, pathdb.ErrOverloaded):
		s.shed.Add(1)
		s.unavailable(w, "overloaded: admission queue full", pathdb.KindOverloaded.String())
	case errors.Is(err, pathdb.ErrClosed):
		s.shed.Add(1)
		s.unavailable(w, "draining", pathdb.KindClosed.String())
	case errors.Is(err, pathdb.ErrGone):
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		s.ioErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrTimeout) && r.Context().Err() == nil:
		s.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "update timed out", Kind: errKind(err)})
	case r.Context().Err() != nil:
		s.gone.Add(1)
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	}
}

// queryError maps the typed error taxonomy onto HTTP statuses: overload
// and drain are 503 (with Retry-After), deadline expiry is 504, storage
// faults (I/O exhaustion, checksum corruption) are 500 with the kind in
// the structured body, a vanished client is logged but unanswerable.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, pathdb.ErrOverloaded):
		s.shed.Add(1)
		s.unavailable(w, "overloaded: admission queue full", pathdb.KindOverloaded.String())
	case errors.Is(err, pathdb.ErrClosed):
		s.shed.Add(1)
		s.unavailable(w, "draining", pathdb.KindClosed.String())
	case errors.Is(err, pathdb.ErrIO) || errors.Is(err, pathdb.ErrCorrupt):
		// The fault plane exhausted the storage retry budget; the query
		// failed alone (its gang completed). Surface the typed kind so
		// clients can distinguish transient I/O from medium damage.
		s.ioErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	case errors.Is(err, pathdb.ErrTimeout) && r.Context().Err() == nil:
		// The per-request timeout fired while the client is still there.
		s.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "query timed out", Kind: errKind(err)})
	case r.Context().Err() != nil:
		// Client disconnected; the response is written into the void, but
		// net/http wants the handler to return normally.
		s.gone.Add(1)
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: errKind(err)})
	}
}

func (s *Server) unavailable(w http.ResponseWriter, msg, kind string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfter))
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: msg, Kind: kind})
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.badReqs.Add(1)
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: msg})
}

// response shapes an ExecResult, echoing at most min(limit, MaxNodes)
// nodes.
func (s *Server) response(req QueryRequest, res *pathdb.ExecResult) QueryResponse {
	out := QueryResponse{
		Path:             req.Path,
		Count:            res.Count(),
		Strategy:         res.Strategy.String(),
		Shared:           res.Shared,
		Gang:             res.Gang,
		CostVNs:          int64(res.CostV),
		CPUVNs:           int64(res.CPUV),
		IOWaitVNs:        int64(res.IOWaitV),
		SharedVNs:        int64(res.SharedV),
		VirtualLatencyNs: int64(res.VirtualLatency),
		WallQueueNs:      res.WallQueue.Nanoseconds(),
		WallExecNs:       res.WallExec.Nanoseconds(),
	}
	if c := res.Choice; c != nil {
		out.Choice = &ChoiceJSON{
			ChosenStrategy: c.Strategy.String(),
			Coverage:       c.Coverage,
			PagesTouched:   c.PagesTouched,
			ScheduleCostNs: int64(c.ScheduleCost),
			ScanCostNs:     int64(c.ScanCost),
			SimpleCostNs:   int64(c.SimpleCost),
		}
		if len(c.Preds) > 0 {
			out.Choice.PredEval = c.PredEval.String()
		}
	}
	limit := req.Limit
	if limit > s.opts.MaxNodes {
		limit = s.opts.MaxNodes
	}
	if limit > len(res.Nodes) {
		limit = len(res.Nodes)
	}
	if limit > 0 {
		out.Nodes = make([]NodeJSON, limit)
		for i := range out.Nodes {
			n := res.Nodes[i]
			out.Nodes[i] = NodeJSON{ID: n.ID(), Name: n.Name(), Ord: n.OrdPath()}
		}
		out.Truncated = limit < len(res.Nodes)
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client may be gone; nothing useful to do
}
