// Package xmlwrite serializes xmltree documents back to XML text.
//
// It is the counterpart of xmlparse and also serves the paper's
// document-export outlook (Sec. 7): the export example streams a stored
// document through the navigation layer and serializes it with this
// package.
package xmlwrite

import (
	"io"
	"strings"

	"pathdb/internal/xmltree"
)

// Options controls serialization.
type Options struct {
	// Indent, when non-empty, pretty-prints with one Indent per depth level.
	// Pretty-printing inserts whitespace and is therefore not round-trip
	// safe for mixed content; leave it empty for canonical output.
	Indent string
	// Declaration, when true, emits an <?xml version="1.0"?> header.
	Declaration bool
}

// Write serializes the subtree rooted at n (usually a document node) to w.
func Write(w io.Writer, dict *xmltree.Dictionary, n *xmltree.Node, opt Options) error {
	sw := &writer{w: w, dict: dict, opt: opt}
	if opt.Declaration {
		sw.raw(`<?xml version="1.0" encoding="UTF-8"?>`)
		sw.nl(0)
	}
	sw.node(n, 0)
	return sw.err
}

// String serializes to a string, panicking on writer errors (strings.Builder
// never fails).
func String(dict *xmltree.Dictionary, n *xmltree.Node, opt Options) string {
	var b strings.Builder
	if err := Write(&b, dict, n, opt); err != nil {
		panic("xmlwrite: " + err.Error())
	}
	return b.String()
}

type writer struct {
	w    io.Writer
	dict *xmltree.Dictionary
	opt  Options
	err  error
}

func (sw *writer) raw(s string) {
	if sw.err != nil {
		return
	}
	_, sw.err = io.WriteString(sw.w, s)
}

func (sw *writer) nl(depth int) {
	if sw.opt.Indent == "" {
		return
	}
	sw.raw("\n")
	for i := 0; i < depth; i++ {
		sw.raw(sw.opt.Indent)
	}
}

func (sw *writer) node(n *xmltree.Node, depth int) {
	switch n.Kind {
	case xmltree.Document:
		for i, c := range n.Children {
			if i > 0 {
				sw.nl(0)
			}
			sw.node(c, depth)
		}
	case xmltree.Element:
		sw.element(n, depth)
	case xmltree.Text:
		sw.raw(EscapeText(n.Text))
	case xmltree.Comment:
		sw.raw("<!--")
		sw.raw(n.Text)
		sw.raw("-->")
	case xmltree.ProcInst:
		sw.raw("<?")
		sw.raw(n.Text)
		sw.raw("?>")
	case xmltree.Attribute:
		// Attributes are emitted by their owning element.
	}
}

func (sw *writer) element(n *xmltree.Node, depth int) {
	name := sw.dict.Name(n.Tag)
	sw.raw("<")
	sw.raw(name)
	for _, a := range n.Attrs {
		sw.raw(" ")
		sw.raw(sw.dict.Name(a.Tag))
		sw.raw(`="`)
		sw.raw(EscapeAttr(a.Text))
		sw.raw(`"`)
	}
	if len(n.Children) == 0 {
		sw.raw("/>")
		return
	}
	sw.raw(">")
	// Pretty-print only element-only content; mixed content stays inline.
	pretty := sw.opt.Indent != "" && !hasTextChild(n)
	for _, c := range n.Children {
		if pretty {
			sw.nl(depth + 1)
		}
		sw.node(c, depth+1)
	}
	if pretty {
		sw.nl(depth)
	}
	sw.raw("</")
	sw.raw(name)
	sw.raw(">")
}

func hasTextChild(n *xmltree.Node) bool {
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			return true
		}
	}
	return false
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes an attribute value for a double-quoted attribute.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<>&"`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
