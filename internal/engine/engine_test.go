package engine

import (
	"context"
	"sync"
	"testing"

	"pathdb/internal/bench"
	"pathdb/internal/core"
	"pathdb/internal/ordpath"
	"pathdb/internal/plan"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// The XMark paths of the benchmark mix (Q6', the three Q7 branches, Q15).
const (
	srcQ6  = "/site/regions//item"
	srcQ7a = "/site//description"
	srcQ7b = "/site//annotation"
	srcQ7c = "/site//emailaddress"
	srcQ15 = "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword"
)

var (
	smallOnce  sync.Once
	smallWL    *bench.Workload
	smallStore *storage.Store
	smallDict  *xmltree.Dictionary
)

// testStore returns a shared small XMark volume (tests run sequentially and
// reset it as needed).
func testStore(t *testing.T) (*storage.Store, *xmltree.Dictionary) {
	t.Helper()
	smallOnce.Do(func() {
		smallWL = bench.NewWorkload(bench.Config{EntityScale: 0.1, Seed: 7})
		smallStore, smallDict = smallWL.Store(0.1)
	})
	return smallStore, smallDict
}

func parsePath(t *testing.T, dict *xmltree.Dictionary, src string) []xpath.Step {
	t.Helper()
	return xpath.MustParse(dict, src).Simplify().Steps
}

// newStoppedEngine builds an engine without starting its dispatcher, so
// tests can fill the admission queue and run gangs deterministically.
func newStoppedEngine(st *storage.Store, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		store:   st,
		chooser: plan.NewChooser(st),
		cfg:     cfg,
		queue:   make(chan *Pending, cfg.QueueDepth),
		stop:    make(chan struct{}),
		drain:   make(chan struct{}),
		dom:     st.Disk().NewDomain(stats.NewLedger()),
	}
}

func startDispatcher(e *Engine) {
	e.wg.Add(1)
	go e.run()
}

// nodeSet reduces a result list to its unique node IDs.
func nodeSet(rs []core.Result) map[storage.NodeID]bool {
	set := make(map[storage.NodeID]bool, len(rs))
	for _, r := range rs {
		set[r.Node] = true
	}
	return set
}

// TestConcurrentMixMatchesSequential is the stress / equivalence test: N
// goroutines submit the Q6'/Q7/Q15 mix with mixed strategies through one
// engine; every query's result must be identical to a sequential
// single-query run. Meant to run under -race.
func TestConcurrentMixMatchesSequential(t *testing.T) {
	st, dict := testStore(t)

	type spec struct {
		src    string
		strat  core.Strategy
		auto   bool
		sorted bool
	}
	specs := []spec{
		{src: srcQ6, strat: core.StrategySchedule},
		{src: srcQ6, strat: core.StrategyScan, sorted: true},
		{src: srcQ6, strat: core.StrategySimple},
		{src: srcQ7a, strat: core.StrategySchedule},
		{src: srcQ7b, strat: core.StrategySchedule},
		{src: srcQ7c, strat: core.StrategyScan},
		{src: srcQ15, strat: core.StrategySchedule},
		{src: srcQ15, auto: true},
		{src: srcQ7a, auto: true, sorted: true},
	}

	// Sequential ground truth: result count per (path, strategy) and node
	// set per path (sets are strategy-independent).
	wantCount := map[string]int{}
	wantSet := map[string]map[storage.NodeID]bool{}
	for _, src := range []string{srcQ6, srcQ7a, srcQ7b, srcQ7c, srcQ15} {
		steps := parsePath(t, dict, src)
		for _, strat := range []core.Strategy{core.StrategySimple, core.StrategySchedule, core.StrategyScan} {
			st.ResetForRun()
			rs := core.BuildPlan(st, steps, st.Roots(), strat, core.PlanOptions{}).Run()
			wantCount[src+"|"+strat.String()] = len(rs)
			if wantSet[src] == nil {
				wantSet[src] = nodeSet(rs)
			}
		}
	}

	e := New(st, Config{MaxInFlight: 4, QueueDepth: 16})
	defer e.Close()
	st.ResetForRun()

	const workers = 6
	type outcome struct {
		spec spec
		res  Result
		err  error
	}
	results := make(chan outcome, workers*len(specs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			for i := range specs {
				sp := specs[(i+w)%len(specs)] // vary gang composition
				res, err := s.Do(context.Background(), Query{
					Label:    sp.src,
					Path:     parsePath(t, dict, sp.src),
					Auto:     sp.auto,
					Strategy: sp.strat,
					Sorted:   sp.sorted,
				})
				results <- outcome{spec: sp, res: res, err: err}
			}
		}(w)
	}
	wg.Wait()
	close(results)

	n := 0
	for o := range results {
		n++
		if o.err != nil {
			t.Fatalf("query %q failed: %v", o.spec.src, o.err)
		}
		key := o.spec.src + "|" + o.res.Strategy.String()
		want, ok := wantCount[key]
		if !ok {
			t.Fatalf("query %q resolved to unexpected strategy %v", o.spec.src, o.res.Strategy)
		}
		if o.res.Count() != want {
			t.Errorf("query %q (%v): %d results, want %d",
				o.spec.src, o.res.Strategy, o.res.Count(), want)
		}
		set := nodeSet(o.res.Results)
		if len(set) != len(wantSet[o.spec.src]) {
			t.Errorf("query %q: %d unique nodes, want %d",
				o.spec.src, len(set), len(wantSet[o.spec.src]))
		}
		for id := range set {
			if !wantSet[o.spec.src][id] {
				t.Errorf("query %q: unexpected node %v", o.spec.src, id)
				break
			}
		}
		if o.spec.sorted {
			rs := o.res.Results
			for i := 1; i < len(rs); i++ {
				if ordpath.Compare(rs[i-1].Ord, rs[i].Ord) > 0 {
					t.Errorf("query %q: results not in document order at %d", o.spec.src, i)
					break
				}
			}
		}
		if o.res.Gang < 1 || o.res.Gang > 4 {
			t.Errorf("query %q: gang size %d outside [1,4]", o.spec.src, o.res.Gang)
		}
	}
	if n != workers*len(specs) {
		t.Fatalf("got %d outcomes, want %d", n, workers*len(specs))
	}

	m := e.Metrics()
	if m.Submitted != int64(n) || m.Completed != int64(n) {
		t.Errorf("metrics: submitted %d completed %d, want %d", m.Submitted, m.Completed, n)
	}
	if m.Rejected != 0 || m.Cancelled != 0 {
		t.Errorf("metrics: rejected %d cancelled %d, want 0", m.Rejected, m.Cancelled)
	}
	if m.Gangs < 1 || m.Gangs > m.Submitted {
		t.Errorf("metrics: gangs %d outside [1,%d]", m.Gangs, m.Submitted)
	}
}

// TestSharedBatchingBeatsSequential is the acceptance experiment: eight
// concurrent Q6' clients through one engine must finish in less virtual
// time than eight cold sequential runs, because the gang-shared scheduler
// loads every cluster once for all members.
func TestSharedBatchingBeatsSequential(t *testing.T) {
	wl := bench.NewWorkload(bench.Config{EntityScale: 0.1, Seed: 7})
	st, dict := wl.Store(0.5)
	steps := parsePath(t, dict, srcQ6)
	const clients = 8

	// Eight independent single-query sessions, run back to back, each cold.
	var seqTotal stats.Ticks
	wantCount := -1
	for i := 0; i < clients; i++ {
		st.ResetForRun()
		rs := core.BuildPlan(st, steps, st.Roots(), core.StrategySchedule, core.PlanOptions{}).Run()
		if wantCount == -1 {
			wantCount = len(rs)
		} else if len(rs) != wantCount {
			t.Fatalf("sequential run %d: %d results, want %d", i, len(rs), wantCount)
		}
		seqTotal += st.Ledger().Total()
	}

	// The same eight queries as one gang on a stopped engine (deterministic
	// gang composition: all eight are queued before the dispatcher runs).
	// Parallel is pinned to 1 so the whole gang forms a single shared group:
	// this experiment measures the virtual-cost batching win, which parallel
	// group splitting deliberately trades away for wall-clock throughput
	// (each extra group re-pays device queueing on its own clock).
	e := newStoppedEngine(st, Config{MaxInFlight: clients, QueueDepth: clients, Parallel: 1})
	s := e.NewSession()
	var pendings []*Pending
	for i := 0; i < clients; i++ {
		p, err := s.TrySubmit(context.Background(), Query{
			Label:    srcQ6,
			Path:     steps,
			Strategy: core.StrategySchedule,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pendings = append(pendings, p)
	}
	st.ResetForRun()
	e.execute(e.gather(<-e.queue))
	engTotal := st.Ledger().Total()

	for i, p := range pendings {
		res, err := p.Wait(context.Background())
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if res.Count() != wantCount {
			t.Fatalf("client %d: %d results, want %d", i, res.Count(), wantCount)
		}
		if !res.Shared || res.Gang != clients {
			t.Errorf("client %d: shared=%v gang=%d, want shared gang of %d",
				i, res.Shared, res.Gang, clients)
		}
	}
	if engTotal >= seqTotal {
		t.Fatalf("batched gang not faster: engine %v >= sequential %v", engTotal, seqTotal)
	}
	t.Logf("Q6' ×%d: sequential %.3fs, batched gang %.3fs (%.1fx)",
		clients, seqTotal.Seconds(), engTotal.Seconds(),
		float64(seqTotal)/float64(engTotal))

	m := e.Metrics()
	if m.Batched != clients || m.Gangs != 1 {
		t.Errorf("metrics: batched %d gangs %d, want %d and 1", m.Batched, m.Gangs, clients)
	}
	if m.OverheadV <= 0 {
		t.Errorf("metrics: no dispatch overhead recorded")
	}
}

// TestAdmissionQueueFull: TrySubmit sheds load once the queue is at
// QueueDepth; Submit-ted queries still complete when the dispatcher starts.
func TestAdmissionQueueFull(t *testing.T) {
	st, dict := testStore(t)
	st.ResetForRun()
	e := newStoppedEngine(st, Config{MaxInFlight: 2, QueueDepth: 2})
	s := e.NewSession()
	q := Query{Label: srcQ15, Path: parsePath(t, dict, srcQ15), Strategy: core.StrategySchedule}

	p1, err1 := s.TrySubmit(context.Background(), q)
	p2, err2 := s.TrySubmit(context.Background(), q)
	if err1 != nil || err2 != nil {
		t.Fatalf("admission failed below capacity: %v, %v", err1, err2)
	}
	if _, err := s.TrySubmit(context.Background(), q); err != ErrQueueFull {
		t.Fatalf("overfull TrySubmit: err %v, want ErrQueueFull", err)
	}
	if m := e.Metrics(); m.Submitted != 2 || m.Rejected != 1 {
		t.Fatalf("metrics: submitted %d rejected %d, want 2 and 1", m.Submitted, m.Rejected)
	}

	startDispatcher(e)
	defer e.Close()
	for i, p := range []*Pending{p1, p2} {
		if _, err := p.Wait(context.Background()); err != nil {
			t.Fatalf("queued query %d: %v", i, err)
		}
	}
}

func TestCancellation(t *testing.T) {
	st, dict := testStore(t)
	q := Query{Label: srcQ6, Path: parsePath(t, dict, srcQ6), Strategy: core.StrategySchedule}

	t.Run("pre-cancelled submit", func(t *testing.T) {
		st.ResetForRun()
		e := New(st, Config{})
		defer e.Close()
		s := e.NewSession()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.Submit(ctx, q); err != context.Canceled {
			t.Fatalf("Submit: err %v, want context.Canceled", err)
		}
		if _, err := s.TrySubmit(ctx, q); err != context.Canceled {
			t.Fatalf("TrySubmit: err %v, want context.Canceled", err)
		}
		if m := e.Metrics(); m.Submitted != 0 {
			t.Fatalf("pre-cancelled queries were admitted: %d", m.Submitted)
		}
	})

	t.Run("cancelled while queued", func(t *testing.T) {
		st.ResetForRun()
		e := newStoppedEngine(st, Config{})
		s := e.NewSession()
		ctx, cancel := context.WithCancel(context.Background())
		p, err := s.TrySubmit(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		e.execute(e.gather(<-e.queue))
		if _, err := p.Wait(context.Background()); err != context.Canceled {
			t.Fatalf("Wait: err %v, want context.Canceled", err)
		}
		if m := e.Metrics(); m.Cancelled != 1 || m.Completed != 0 {
			t.Fatalf("metrics: cancelled %d completed %d, want 1 and 0", m.Cancelled, m.Completed)
		}
		// The volume stays usable after the cancellation.
		st.ResetForRun()
		if n := core.BuildPlan(st, q.Path, st.Roots(), core.StrategySchedule, core.PlanOptions{}).Count(); n == 0 {
			t.Fatal("store unusable after cancellation")
		}
	})

	t.Run("wait context", func(t *testing.T) {
		st.ResetForRun()
		e := newStoppedEngine(st, Config{})
		s := e.NewSession()
		p, err := s.TrySubmit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := p.Wait(ctx); err != context.Canceled {
			t.Fatalf("Wait with cancelled context: err %v, want context.Canceled", err)
		}
		// The query itself is unaffected; run it to completion.
		e.execute(e.gather(<-e.queue))
		if _, err := p.Wait(context.Background()); err != nil {
			t.Fatalf("query after abandoned Wait: %v", err)
		}
	})
}

func TestClose(t *testing.T) {
	st, dict := testStore(t)
	st.ResetForRun()
	e := New(st, Config{})
	s := e.NewSession()
	q := Query{Label: srcQ15, Path: parsePath(t, dict, srcQ15), Strategy: core.StrategySimple}

	e.Close()
	e.Close() // idempotent
	if _, err := s.Submit(context.Background(), q); err != ErrClosed {
		t.Fatalf("Submit after Close: err %v, want ErrClosed", err)
	}
	if _, err := s.TrySubmit(context.Background(), q); err != ErrClosed {
		t.Fatalf("TrySubmit after Close: err %v, want ErrClosed", err)
	}
}

// TestDrain checks graceful shutdown at the engine level: every query
// admitted before Drain completes (including ones still queued when the
// drain starts), new submissions fail with ErrClosed, and Drain only
// returns once the dispatcher goroutine has exited.
func TestDrain(t *testing.T) {
	st, dict := testStore(t)
	st.ResetForRun()
	// A stopped engine lets us stack queries in the admission queue before
	// the dispatcher ever runs, so the drain provably serves the backlog.
	e := newStoppedEngine(st, Config{MaxInFlight: 2, QueueDepth: 16})
	s := e.NewSession()
	q := Query{Label: srcQ6, Path: parsePath(t, dict, srcQ6), Strategy: core.StrategySchedule}

	const n = 6
	pendings := make([]*Pending, n)
	for i := range pendings {
		p, err := s.Submit(context.Background(), q)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		pendings[i] = p
	}
	startDispatcher(e)
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !e.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	for i, p := range pendings {
		res, err := p.Wait(context.Background())
		if err != nil {
			t.Fatalf("query %d failed during drain: %v", i, err)
		}
		if res.Count() == 0 {
			t.Fatalf("query %d returned no results", i)
		}
	}
	if _, err := s.Submit(context.Background(), q); err != ErrClosed {
		t.Fatalf("Submit after Drain: err %v, want ErrClosed", err)
	}
	if m := e.Metrics(); m.Completed != n {
		t.Fatalf("Completed = %d, want %d", m.Completed, n)
	}
	e.Close() // Close after Drain is a no-op
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}
