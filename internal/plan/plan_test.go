package plan

import (
	"strings"
	"testing"

	"pathdb/internal/core"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/txn"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmark"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

func xmarkStore(t testing.TB, sf float64) (*xmltree.Dictionary, *storage.Store) {
	t.Helper()
	dict := xmltree.NewDictionary()
	doc := xmark.Generate(dict, xmark.Config{ScaleFactor: sf, Seed: 17, EntityScale: 0.02})
	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), 8192)
	st, err := storage.Import(disk, dict, doc, storage.ImportOptions{
		PageSize: 8192, Layout: storage.LayoutNatural, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dict, st
}

func TestChooserPicksScanForLowSelectivity(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	// Q7-style: //description touches most of the document.
	path := xpath.MustParse(dict, "/site//description").Simplify().Steps
	choice := ch.Choose(path)
	if choice.Strategy != core.StrategyScan {
		t.Fatalf("want scan for //description, got %v (%v)", choice.Strategy, choice)
	}
	if choice.Coverage < 0.3 {
		t.Fatalf("coverage estimate %v too low for //description", choice.Coverage)
	}
}

func TestChooserPicksScheduleForHighSelectivity(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	// Q15-style: a long selective child path.
	path := xpath.MustParse(dict,
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword").Steps
	choice := ch.Choose(path)
	if choice.Strategy != core.StrategySchedule {
		t.Fatalf("want schedule for Q15, got %v (%v)", choice.Strategy, choice)
	}
}

func TestChooserScheduleNeverWorseThanSimpleEstimate(t *testing.T) {
	dict, st := xmarkStore(t, 0.5)
	ch := NewChooser(st)
	for _, src := range []string{"/site//item", "//keyword", "/site/people/person/emailaddress"} {
		path := xpath.MustParse(dict, src).Simplify().Steps
		choice := ch.Choose(path)
		if choice.Schedule.Cost > choice.Simple.Cost {
			t.Fatalf("%s: schedule estimate (%v) worse than simple (%v)", src, choice.Schedule.Cost, choice.Simple.Cost)
		}
	}
}

func TestChooserDecisionMatchesMeasurement(t *testing.T) {
	// The chooser must agree with actual simulated cost on the paper's
	// extreme queries (Q7-like scan win, Q15-like schedule win).
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	st.SetBufferCapacity(64)

	queries := []string{
		"/site//description",
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	}
	for _, src := range queries {
		path := xpath.MustParse(dict, src).Simplify().Steps
		choice := ch.Choose(path)

		measure := func(s core.Strategy) stats.Ticks {
			st.ResetForRun()
			core.BuildPlan(st, path, []storage.NodeID{st.Root()}, s, core.PlanOptions{}).Count()
			return st.Ledger().Total()
		}
		sched := measure(core.StrategySchedule)
		scan := measure(core.StrategyScan)
		var fasterIs core.Strategy
		if scan < sched {
			fasterIs = core.StrategyScan
		} else {
			fasterIs = core.StrategySchedule
		}
		if choice.Strategy != fasterIs {
			t.Errorf("%s: chooser picked %v but %v measured faster (sched=%v scan=%v)",
				src, choice.Strategy, fasterIs, sched, scan)
		}
	}
}

func TestBuildReturnsRunnablePlan(t *testing.T) {
	dict, st := xmarkStore(t, 0.5)
	ch := NewChooser(st)
	path := xpath.MustParse(dict, "/site//item").Simplify().Steps
	st.ResetForRun()
	p, choice := ch.Build(path, []storage.NodeID{st.Root()}, core.PlanOptions{})
	if p.Strategy != choice.Strategy {
		t.Fatal("plan strategy mismatch")
	}
	if n := p.Count(); n == 0 {
		t.Fatal("plan returned no items")
	}
}

func TestChoiceString(t *testing.T) {
	dict, st := xmarkStore(t, 0.2)
	ch := NewChooser(st)
	choice := ch.Choose(xpath.MustParse(dict, "//keyword").Simplify().Steps)
	if choice.String() == "" {
		t.Fatal("empty choice string")
	}
}

// TestChooserRefreshMatchesFreshWalk validates the incremental statistics
// path: after a series of committed inserts and deletes, Refresh (which
// folds in only the rewritten clusters via their synopses) must agree
// with a from-scratch NewChooser walk of the same version — exactly on
// per-tag record counts, border totals, and live records; within the
// documented SubtreePages approximation on page footprints; and on the
// final strategy decision for the benchmark paths.
func TestChooserRefreshMatchesFreshWalk(t *testing.T) {
	dict, st := xmarkStore(t, 0.25)
	ch := NewChooser(st)

	mgr, err := txn.NewManager(st, txn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	parentPath := xpath.MustParse(dict, "/site/regions").Simplify().Steps
	rs := core.BuildPlan(st, parentPath, st.Roots(), core.StrategySimple, core.PlanOptions{}).Run()
	if len(rs) == 0 {
		t.Fatal("no /site/regions in fixture")
	}
	parent := rs[0].Node

	probe := dict.Intern("refreshprobe")
	kw := dict.Intern("keyword")
	var inserted []storage.NodeID
	for i := 0; i < 5; i++ {
		err := mgr.Update(func(tx *txn.Tx) error {
			e := xmltree.NewElement(probe)
			k := xmltree.NewElement(kw)
			k.AppendChild(xmltree.NewText("delta"))
			e.AppendChild(k)
			id, err := tx.InsertSubtree(parent, storage.InvalidNodeID, e)
			inserted = append(inserted, id)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range inserted[:2] {
		if err := mgr.Update(func(tx *txn.Tx) error { return tx.DeleteSubtree(id) }); err != nil {
			t.Fatal(err)
		}
	}

	snap := mgr.Snapshot()
	defer snap.Release()
	view := snap.View(stats.NewLedger())

	// Pages rewritten since the chooser's base epoch bound the documented
	// SubtreePages drift below.
	changed := 0
	view.WrittenSince(ch.Epoch(), func(vdisk.PageID, uint64) { changed++ })

	ch.Refresh(view)
	fresh := NewChooser(view)

	if ch.Epoch() != fresh.Epoch() {
		t.Fatalf("epoch: refreshed %d, fresh %d", ch.Epoch(), fresh.Epoch())
	}
	if ch.ds.Borders != fresh.ds.Borders {
		t.Errorf("borders: refreshed %d, fresh %d", ch.ds.Borders, fresh.ds.Borders)
	}
	if ch.live != fresh.live {
		t.Errorf("live records: refreshed %d, fresh %d", ch.live, fresh.live)
	}
	if ch.ds.Pages != fresh.ds.Pages {
		t.Errorf("pages: refreshed %d, fresh %d", ch.ds.Pages, fresh.ds.Pages)
	}
	for tag, fs := range fresh.ds.Tags {
		is, ok := ch.ds.Tags[tag]
		if !ok {
			t.Errorf("tag %v missing after refresh (fresh count %d)", dict.Name(tag), fs.Count)
			continue
		}
		if is.Count != fs.Count {
			t.Errorf("tag %v count: refreshed %d, fresh %d", dict.Name(tag), is.Count, fs.Count)
		}
		if is.Pages != fs.Pages {
			t.Errorf("tag %v pages: refreshed %d, fresh %d", dict.Name(tag), is.Pages, fs.Pages)
		}
		// SubtreePages is documented as approximate under refresh: the
		// presence delta can drift from the exact whole-document value by
		// at most the number of rewritten clusters per commit direction.
		if d := is.SubtreePages - fs.SubtreePages; d < -changed || d > changed {
			t.Errorf("tag %v subtree pages: refreshed %d, fresh %d (drift beyond %d rewritten pages)",
				dict.Name(tag), is.SubtreePages, fs.SubtreePages, changed)
		}
	}
	for tag, is := range ch.ds.Tags {
		if _, ok := fresh.ds.Tags[tag]; !ok && is.Count > 0 {
			t.Errorf("stale tag %v survives refresh with count %d", dict.Name(tag), is.Count)
		}
	}

	for _, src := range []string{
		"/site/regions//item",
		"/site//description",
		"/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
	} {
		p := xpath.MustParse(dict, src).Simplify().Steps
		if a, b := ch.Choose(p), fresh.Choose(p); a.Strategy != b.Strategy {
			t.Errorf("%s: refreshed chooser picks %v, fresh walk picks %v\nrefreshed: %v\nfresh:     %v",
				src, a.Strategy, b.Strategy, a, b)
		}
	}
}

// TestChooserPredEval checks the join-vs-nested decision: a branching
// predicate over a wide candidate set must pick the structural join, a
// non-joinable (reverse-axis) predicate must stay nested, and the chosen
// evaluator must be no slower than the rejected one on simulated cost.
func TestChooserPredEval(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)

	joinSrc := "//text[keyword]"
	choice := ch.Choose(xpath.MustParse(dict, joinSrc).Simplify().Steps)
	if choice.PredEval != core.PredJoin {
		t.Fatalf("want join for %s, got %v (%v)", joinSrc, choice.PredEval, choice)
	}
	if len(choice.Preds) != 1 || !choice.Preds[0].Joinable || choice.Preds[0].Candidates == 0 {
		t.Fatalf("bad predicate detail: %+v", choice.Preds)
	}

	nestedSrc := "//mail[ancestor::item]"
	choice = ch.Choose(xpath.MustParse(dict, nestedSrc).Simplify().Steps)
	if choice.PredEval != core.PredNested {
		t.Fatalf("want nested for reverse-axis %s, got %v (%v)", nestedSrc, choice.PredEval, choice)
	}
	if len(choice.Preds) != 1 || choice.Preds[0].Joinable {
		t.Fatalf("reverse-axis branch must not be joinable: %+v", choice.Preds)
	}

	// A path without predicates reports no detail and stays nested.
	choice = ch.Choose(xpath.MustParse(dict, "//keyword").Simplify().Steps)
	if choice.PredEval != core.PredNested || len(choice.Preds) != 0 {
		t.Fatalf("predicate-free path: %v %+v", choice.PredEval, choice.Preds)
	}
}

// TestChooserPredEvalMatchesMeasurement runs both evaluators on
// branching queries from both sides of the crossover and verifies the
// chooser's pick is the faster one on the simulated cost ledger.
func TestChooserPredEvalMatchesMeasurement(t *testing.T) {
	dict, st := xmarkStore(t, 1)
	ch := NewChooser(st)
	for _, src := range []string{
		"//text[keyword]",        // wide candidate set: join territory
		"//listitem[.//keyword]", // overlapping subtree probes: join
		"//item[mailbox/mail]",   // few candidates, cheap probes: nested
		"//open_auction[bidder/increase]",
	} {
		path := xpath.MustParse(dict, src).Simplify().Steps
		choice := ch.Choose(path)

		measure := func(pe core.PredEval) stats.Ticks {
			st.ResetForRun()
			core.BuildPlan(st, path, []storage.NodeID{st.Root()}, choice.Strategy,
				core.PlanOptions{PredEval: pe}).Count()
			return st.Ledger().Total()
		}
		nested := measure(core.PredNested)
		join := measure(core.PredJoin)
		faster := core.PredNested
		if join < nested {
			faster = core.PredJoin
		}
		if choice.PredEval != faster {
			t.Errorf("%s: chooser picked %v but %v measured faster (nested=%v join=%v)",
				src, choice.PredEval, faster, nested, join)
		}
	}
}

// TestBuildAppliesPredChoice verifies Chooser.Build threads the predicate
// decision into the plan (PredAuto resolves to the chooser's pick, an
// explicit setting wins).
func TestBuildAppliesPredChoice(t *testing.T) {
	dict, st := xmarkStore(t, 0.5)
	ch := NewChooser(st)
	path := xpath.MustParse(dict, "//text[keyword]").Simplify().Steps
	st.ResetForRun()
	p, choice := ch.Build(path, []storage.NodeID{st.Root()}, core.PlanOptions{})
	if choice.PredEval != core.PredJoin {
		t.Fatalf("expected join pick, got %v", choice.PredEval)
	}
	if n := p.Count(); n == 0 {
		t.Fatal("plan returned no items")
	}
	desc := p.Describe(dict)
	if !strings.Contains(desc, "XJoin") {
		t.Fatalf("PredAuto did not resolve to the chooser's join pick:\n%s", desc)
	}
	st.ResetForRun()
	p, _ = ch.Build(path, []storage.NodeID{st.Root()}, core.PlanOptions{PredEval: core.PredNested})
	if desc := p.Describe(dict); strings.Contains(desc, "XJoin") {
		t.Fatalf("explicit PredNested overridden:\n%s", desc)
	}
}
