package storage

import (
	"errors"
	"fmt"

	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// This file implements incremental updates — the capability the paper
// holds against scan-order storage formats (Sec. 2: preorder numbering
// and enforced physical order "are difficult to maintain during
// updates"). Our format needs neither: document order lives in
// ORDPATH-style keys with insertion gaps, and clusters may sit anywhere
// on disk, so an insert touches only the affected page (plus fresh pages
// for overflow) and never relabels or moves existing nodes.
//
// Updates deliberately create the fragmentation the paper's introduction
// describes: overflow clusters are appended at the end of the volume, far
// from their logical neighbours — exactly the situation in which
// cost-sensitive reordering beats encounter-order navigation.

// Update errors.
var (
	ErrNotElement   = errors.New("storage: target is not an element or document node")
	ErrNotChild     = errors.New("storage: 'before' node is not a child of the parent")
	ErrIsRoot       = errors.New("storage: cannot delete the document node or root element anchor")
	ErrGone         = errors.New("storage: target node was deleted")
	ErrMetaOverflow = errors.New("storage: too many update-extension pages for the meta page")
	// ErrLegacyUpdate rejects the single-writer in-place update path on a
	// volume that has transactional state; such volumes must be written
	// through internal/txn, whose snapshots the in-place path would tear.
	ErrLegacyUpdate = errors.New("storage: volume has transaction state; update it through the txn manager")
)

// InsertSubtree stores the logical fragment (an element, text, comment or
// PI node, with its subtree) as a new child of parent. With before ==
// InvalidNodeID the fragment is appended after the last child; otherwise
// it is inserted immediately before that child. It returns the NodeID of
// the new node.
//
// This is the legacy single-writer entry point: staging and the in-place
// WAL commit in one call. Transactional writers stage the same mutation
// through a WriteTxn (see writetxn.go) and commit via internal/txn.
func (s *Store) InsertSubtree(parent NodeID, before NodeID, frag *xmltree.Node) (NodeID, error) {
	u := newUpdater(s)
	newID, err := s.insertSubtreeWith(u, parent, before, frag)
	if err != nil {
		return InvalidNodeID, err
	}
	if err := u.commit(); err != nil {
		return InvalidNodeID, err
	}
	return newID, nil
}

// swizzleTarget resolves a caller-supplied handle for an update: a slot
// that an earlier delete compacted away means the handle is merely stale,
// so it reports ErrGone instead of the page-corruption panic Swizzle
// reserves for genuinely impossible ids.
func (s *Store) swizzleTarget(id NodeID) (Cursor, error) {
	stats.Inc(&s.led.Swizzles)
	s.led.AdvanceCPU(s.model.CPUSwizzle)
	img := s.image(id.Page())
	if int(id.Slot()) >= len(img.recs) {
		return Cursor{}, ErrGone
	}
	attr := -1
	if i, ok := id.AttrIndex(); ok {
		attr = i
	}
	return Cursor{st: s, img: img, page: id.Page(), slot: id.Slot(), attr: attr}, nil
}

// insertSubtreeWith stages the insert into u without committing; reads go
// through s, which may be a snapshot view with a staging overlay.
func (s *Store) insertSubtreeWith(u *updater, parent NodeID, before NodeID, frag *xmltree.Node) (NodeID, error) {
	if _, isAttr := parent.AttrIndex(); isAttr {
		return InvalidNodeID, ErrNotElement
	}
	pc, err := s.swizzleTarget(parent)
	if err != nil {
		return InvalidNodeID, err
	}
	if pc.rec().dead {
		return InvalidNodeID, ErrGone
	}
	if k := pc.rec().kind; k != RecElem && k != RecDoc {
		return InvalidNodeID, ErrNotElement
	}
	ord, err := s.insertionOrd(pc, before)
	if err != nil {
		return InvalidNodeID, err
	}

	// Physical placement: under `before`'s physical parent when given
	// (keeps the record next to its siblings), else under the parent
	// record itself. The ord key alone determines logical position.
	placePage, placeSlot := pc.page, pc.slot
	if before != InvalidNodeID {
		bc, err := s.swizzleTarget(before)
		if err != nil {
			return InvalidNodeID, err
		}
		placePage, placeSlot = bc.page, uint16(bc.rec().parent)
	}
	return u.placeSubtree(s.Swizzle(MakeNodeID(placePage, placeSlot)), frag, ord)
}

// DeleteSubtree removes the node and its entire subtree, across clusters.
// Deleting the document node or the root element is rejected. Legacy
// single-writer entry point (see InsertSubtree).
func (s *Store) DeleteSubtree(id NodeID) error {
	u := newUpdater(s)
	if err := s.deleteSubtreeWith(u, id); err != nil {
		return err
	}
	return u.commit()
}

// deleteSubtreeWith stages the delete into u without committing.
func (s *Store) deleteSubtreeWith(u *updater, id NodeID) error {
	c, err := s.swizzleTarget(id)
	if err != nil {
		return err
	}
	r := c.rec()
	if r.dead {
		return ErrGone
	}
	if r.kind == RecDoc || r.kind.IsProxy() {
		return ErrIsRoot
	}
	if r.parent == noParent {
		return ErrIsRoot
	}
	lp := u.live(c.page)
	u.deleteRec(lp, c.slot)
	// If the physical parent was a ProxyParent that just lost its only
	// fragment, collapse the whole proxy pair.
	u.collapseAnchors(lp, uint16(r.parent))
	return nil
}

// insertionOrd computes the document-order key for the new node: strictly
// between its logical neighbours, never relabeling anything.
func (s *Store) insertionOrd(parent Cursor, before NodeID) (ordpath.Key, error) {
	kids := parent.rec().children
	if before == InvalidNodeID {
		// Append: after the last logical child, which may live across a
		// chain of proxies.
		if len(kids) == 0 {
			return parent.rec().ord.BulkChild(0), nil
		}
		last := Cursor{st: s, img: parent.img, page: parent.page, slot: kids[len(kids)-1], attr: -1}
		return ordpath.After(s.lastOrdUnder(last)), nil
	}

	bc := s.Swizzle(before)
	right := bc.rec().ord
	if len(right) == 0 {
		return nil, ErrNotChild
	}
	left, err := s.logicalLeftOrd(bc)
	if err != nil {
		return nil, err
	}
	if left == nil {
		// First child: anything below parentOrd.Child(0) sorts before all
		// existing children (generated keys never end in component 0).
		return ordpath.Between(parent.rec().ord.Child(0), right), nil
	}
	return ordpath.Between(left, right), nil
}

// lastOrdUnder resolves the ord key of the last logical node in sibling
// order reachable from child entry c: for a ProxyChild, the far fragment's
// last member; for core records, the record itself.
func (s *Store) lastOrdUnder(c Cursor) ordpath.Key {
	for c.rec().kind == RecProxyChild {
		far := s.Swizzle(c.rec().target) // ProxyParent anchor
		kids := far.rec().children
		if len(kids) == 0 {
			return c.rec().ord // degenerate empty fragment
		}
		c = Cursor{st: s, img: far.img, page: far.page, slot: kids[len(kids)-1], attr: -1}
	}
	return c.rec().ord
}

// logicalLeftOrd finds the ord key of the node immediately preceding c in
// its parent's child order, following proxy chains; nil if c is the first
// child.
func (s *Store) logicalLeftOrd(c Cursor) (ordpath.Key, error) {
	for {
		r := c.rec()
		if r.parent == noParent {
			return nil, ErrNotChild
		}
		siblings := c.img.recs[r.parent].children
		idx := -1
		for i, slot := range siblings {
			if slot == c.slot {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, ErrNotChild
		}
		if idx > 0 {
			leftEntry := Cursor{st: c.st, img: c.img, page: c.page, slot: siblings[idx-1], attr: -1}
			return c.st.lastOrdUnder(leftEntry), nil
		}
		// First in this physical segment: if anchored by a ProxyParent,
		// the logical predecessor lives before the companion ProxyChild.
		anchor := &c.img.recs[r.parent]
		if anchor.kind != RecProxyParent {
			return nil, nil // genuinely the first child
		}
		c = c.st.Swizzle(anchor.target)
	}
}

// --- updater ----------------------------------------------------------------

// updater batches page mutations for one logical update and writes them
// back atomically (in the single-threaded sense of this engine).
type updater struct {
	st    *Store
	pages map[vdisk.PageID]*livePage
	fresh []vdisk.PageID
}

type livePage struct {
	page     vdisk.PageID
	img      *pageImage
	used     int
	reserved int // spill headroom claimed by open elements (importer protocol)
	dirty    bool
	isNew    bool
}

func newUpdater(s *Store) *updater {
	return &updater{st: s, pages: map[vdisk.PageID]*livePage{}}
}

// live returns the mutable view of page p, based on a private copy of the
// decoded image.
func (u *updater) live(p vdisk.PageID) *livePage {
	if lp, ok := u.pages[p]; ok {
		return lp
	}
	src := u.st.image(p)
	cp := &pageImage{page: p, recs: append([]rec(nil), src.recs...)}
	// Copy the child lists through one slab (they must not alias the shared
	// immutable image). Each carved list has exact capacity, so an insert
	// that grows it reallocates just that list.
	nk := 0
	for i := range cp.recs {
		nk += len(cp.recs[i].children)
	}
	if nk > 0 {
		slab := make([]uint16, 0, nk)
		for i := range cp.recs {
			if kids := cp.recs[i].children; len(kids) > 0 {
				o := len(slab)
				slab = append(slab, kids...)
				cp.recs[i].children = slab[o:len(slab):len(slab)]
			}
		}
	}
	lp := &livePage{page: p, img: cp, used: pageUsage(cp)}
	u.pages[p] = lp
	return lp
}

// freshPage allocates a new, empty data page at the end of the volume.
func (u *updater) freshPage() *livePage {
	p := u.st.disk.Alloc()
	lp := &livePage{
		page:  p,
		img:   &pageImage{page: p},
		used:  pageHeaderSize,
		dirty: true,
		isNew: true,
	}
	u.pages[p] = lp
	u.fresh = append(u.fresh, p)
	return lp
}

// fits reports whether a record of sz bytes (plus slot entry) fits beside
// the claimed headroom, within the page's usable (checksummed) region.
func (lp *livePage) fits(sz int, pageSize int) bool {
	return lp.used+lp.reserved+sz+2 <= usable(pageSize)
}

// addRec stores r, reusing a dead slot when possible.
func (u *updater) addRec(lp *livePage, r rec) uint16 {
	sz := encodedSize(&r)
	for i := range lp.img.recs {
		if lp.img.recs[i].dead {
			lp.img.recs[i] = r
			lp.used += sz // slot entry already accounted
			lp.dirty = true
			u.linkChild(lp, uint16(i), r.parent)
			return uint16(i)
		}
	}
	lp.img.recs = append(lp.img.recs, r)
	lp.used += sz + 2
	lp.dirty = true
	slot := uint16(len(lp.img.recs) - 1)
	u.linkChild(lp, slot, r.parent)
	return slot
}

// linkChild inserts slot into its parent's children list, ord-ordered.
func (u *updater) linkChild(lp *livePage, slot uint16, parent int) {
	if parent == noParent {
		return
	}
	p := &lp.img.recs[parent]
	ord := lp.img.recs[slot].ord
	pos := len(p.children)
	for i, k := range p.children {
		if ordpath.Compare(ord, lp.img.recs[k].ord) < 0 {
			pos = i
			break
		}
	}
	p.children = append(p.children, 0)
	copy(p.children[pos+1:], p.children[pos:])
	p.children[pos] = slot
}

// placeSubtree stores the logical fragment with root ord `ord` as a child
// of the record at parent, overflowing to fresh pages through proxy pairs.
// It follows the importer's reserve protocol so every open element can
// always afford a continuation proxy.
func (u *updater) placeSubtree(parent Cursor, frag *xmltree.Node, ord ordpath.Key) (NodeID, error) {
	lp := u.live(parent.page)
	r, err := draftRecFor(frag, ord)
	if err != nil {
		return InvalidNodeID, err
	}
	// Placement must follow the same route enumeration takes: if the new
	// key falls after a ProxyChild entry, it belongs inside that entry's
	// fragment, not beside it — otherwise fragment key ranges would
	// overlap and streamed sibling order would break.
	lp, parentSlot := u.descendToFragment(lp, parent.slot, ord)
	cur, slot, err := u.placeRec(lp, parentSlot, r)
	if err != nil {
		return InvalidNodeID, err
	}
	id := MakeNodeID(cur.page, slot)
	if frag.Kind == xmltree.Element {
		cur.reserved += proxyReserve
		final, err := u.placeChildren(cur, slot, frag.Children, ord)
		if err != nil {
			return InvalidNodeID, err
		}
		final.reserved -= proxyReserve
	}
	return id, nil
}

// descendToFragment follows ProxyChild entries whose key range covers ord,
// returning the page and parent slot the new record must physically join.
func (u *updater) descendToFragment(lp *livePage, parentSlot uint16, ord ordpath.Key) (*livePage, uint16) {
	for {
		kids := lp.img.recs[parentSlot].children
		prev := -1
		for _, k := range kids {
			if ordpath.Compare(lp.img.recs[k].ord, ord) < 0 {
				prev = int(k)
			} else {
				break
			}
		}
		if prev < 0 || lp.img.recs[prev].kind != RecProxyChild {
			return lp, parentSlot
		}
		target := lp.img.recs[prev].target
		far := u.live(target.Page())
		lp, parentSlot = far, target.Slot()
	}
}

// placeChildren stores the children of an open element whose record lives
// at (c, ps), switching to continuation pages on overflow (the spill case
// consumes and re-establishes the element's reserve). It returns the page
// holding the element's reserve at the end.
func (u *updater) placeChildren(c *livePage, ps uint16, children []*xmltree.Node, ord ordpath.Key) (*livePage, error) {
	cur, curPS := c, ps
	for i, ch := range children {
		r, err := draftRecFor(ch, ord.BulkChild(i))
		if err != nil {
			return cur, err
		}
		next, slot, err := u.placeRecSpilling(&cur, &curPS, r)
		if err != nil {
			return cur, err
		}
		if ch.Kind == xmltree.Element {
			next.reserved += proxyReserve
			final, err := u.placeChildren(next, slot, ch.Children, r.ord)
			if err != nil {
				return cur, err
			}
			final.reserved -= proxyReserve
		}
	}
	return cur, nil
}

// placeRec stores r under (lp, parentSlot), using a dedicated proxy pair
// to a fresh page when it does not fit. It returns the page and slot the
// record landed in.
func (u *updater) placeRec(lp *livePage, parentSlot uint16, r rec) (*livePage, uint16, error) {
	ps := u.st.disk.PageSize()
	needsReserve := 0
	if r.kind == RecElem {
		needsReserve = proxyReserve
	}
	if lp.fits(encodedSize(&r)+needsReserve, ps) {
		r.parent = int(parentSlot)
		return lp, u.addRec(lp, r), nil
	}
	proxySz := encodedSize(&rec{kind: RecProxyChild, parent: int(parentSlot), ord: r.ord})
	if !lp.fits(proxySz, ps) && !u.makeRoom(lp, proxySz, parentSlot) {
		return nil, 0, fmt.Errorf("%w: page %d full", ErrRecordTooLarge, lp.page)
	}
	far, ppSlot := u.proxyPair(lp, parentSlot, r.ord, encodedSize(&r)+needsReserve)
	if !far.fits(encodedSize(&r)+needsReserve, ps) {
		return nil, 0, ErrRecordTooLarge
	}
	r.parent = int(ppSlot)
	return far, u.addRec(far, r), nil
}

// placeRecSpilling is placeRec for a sibling sequence: when not even a
// dedicated proxy fits, the open element's reserve pays for a continuation
// proxy and all following siblings move to the fresh page (*cur/*curPS are
// redirected).
func (u *updater) placeRecSpilling(cur **livePage, curPS *uint16, r rec) (*livePage, uint16, error) {
	ps := u.st.disk.PageSize()
	lp := *cur
	needsReserve := 0
	if r.kind == RecElem {
		needsReserve = proxyReserve
	}
	sz := encodedSize(&r)
	proxySz := encodedSize(&rec{kind: RecProxyChild, parent: int(*curPS), ord: r.ord})
	switch {
	case lp.fits(sz+needsReserve, ps):
		r.parent = int(*curPS)
		return lp, u.addRec(lp, r), nil
	case lp.fits(proxySz, ps):
		// Dedicated proxy: later siblings retry the current page.
		far, ppSlot := u.proxyPair(lp, *curPS, r.ord, sz+needsReserve)
		if !far.fits(sz+needsReserve, ps) {
			return nil, 0, ErrRecordTooLarge
		}
		r.parent = int(ppSlot)
		return far, u.addRec(far, r), nil
	default:
		// Spill: the open element's reserve funds the continuation.
		lp.reserved -= proxyReserve
		far, ppSlot := u.proxyPair(lp, *curPS, r.ord, sz+needsReserve+proxyReserve)
		far.reserved += proxyReserve
		*cur, *curPS = far, ppSlot
		if !far.fits(sz+needsReserve, ps) {
			return nil, 0, ErrRecordTooLarge
		}
		r.parent = int(ppSlot)
		return far, u.addRec(far, r), nil
	}
}

// makeRoom frees at least `need` bytes in lp by moving local subtrees to
// overflow pages behind proxy pairs — the slotted-page equivalent of a
// page split. Two candidate shapes are tried: whole subtrees (cheapest
// proxy per byte freed), and, when every subtree contains the protected
// slot, the tail of some record's child list behind a single continuation
// proxy (which handles pages saturated with proxies). Moved nodes get new
// NodeIDs; their old position holds the proxy, so navigation stays
// correct. Subtrees containing avoid are never moved (it anchors the
// in-flight insertion). Reports whether enough space was freed.
func (u *updater) makeRoom(lp *livePage, need int, avoid uint16) bool {
	ps := u.st.disk.PageSize()
	maxMove := usable(ps) - pageHeaderSize - 64 // must fit one overflow page
	for !lp.fits(need, ps) {
		if u.moveBestSubtree(lp, avoid, maxMove) {
			continue
		}
		if u.splitTail(lp, avoid, maxMove) {
			continue
		}
		return false
	}
	return true
}

// localSubtree collects the slots of the page-local subtree rooted at
// slot, in preorder, plus its total record bytes. ok is false when the
// subtree contains the avoid slot (pass deadSlotOff for "no avoid").
func localSubtree(img *pageImage, slot, avoid uint16) (members []uint16, bytes int, ok bool) {
	stack := []uint16{slot}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == avoid {
			return nil, 0, false
		}
		members = append(members, s)
		bytes += encodedSize(&img.recs[s])
		kids := img.recs[s].children
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return members, bytes, true
}

// moveBestSubtree relocates the single local subtree with the best
// bytes-freed-per-proxy ratio; false if no candidate frees space.
func (u *updater) moveBestSubtree(lp *livePage, avoid uint16, maxMove int) bool {
	best, bestGain := -1, 0
	for i := range lp.img.recs {
		r := &lp.img.recs[i]
		if r.dead || r.kind == RecDoc || r.kind == RecProxyParent || r.parent == noParent {
			continue
		}
		members, bytes, ok := localSubtree(lp.img, uint16(i), avoid)
		if !ok || bytes+2*len(members) > maxMove {
			continue
		}
		pcSz := encodedSize(&rec{kind: RecProxyChild, parent: r.parent, ord: r.ord})
		if g := bytes - pcSz; g > bestGain {
			best, bestGain = i, g
		}
	}
	if best < 0 {
		return false
	}
	root := uint16(best)
	u.moveFragment(lp, uint16(lp.img.recs[root].parent), []uint16{root})
	return true
}

// splitTail moves the tail of the child list of the record with the most
// local children behind one continuation proxy — the update-time
// equivalent of the importer's spill. It tolerates avoid among the kept
// head but never moves it.
func (u *updater) splitTail(lp *livePage, avoid uint16, maxMove int) bool {
	bestParent, bestKids := -1, 3 // need at least 4 children to split
	for i := range lp.img.recs {
		r := &lp.img.recs[i]
		if r.dead {
			continue
		}
		if len(r.children) > bestKids {
			bestParent, bestKids = i, len(r.children)
		}
	}
	if bestParent < 0 {
		return false
	}
	kids := lp.img.recs[bestParent].children
	// Accumulate a tail, newest-first, that fits one overflow page.
	cut := len(kids)
	bytes, slots := 0, 0
	for idx := len(kids) - 1; idx >= len(kids)/2; idx-- {
		m, b, ok := localSubtree(lp.img, kids[idx], avoid)
		if !ok {
			break
		}
		if bytes+b+2*(slots+len(m)) > maxMove {
			break
		}
		bytes += b
		slots += len(m)
		cut = idx
	}
	if len(kids)-cut < 2 {
		return false
	}
	tail := append([]uint16(nil), kids[cut:]...)
	u.moveFragment(lp, uint16(bestParent), tail)
	return true
}

// moveFragment moves the local subtrees rooted at roots (all children of
// parentSlot, in child order) to an overflow page behind a single proxy
// pair. The ProxyChild inherits the first root's ord key, so the sibling
// order is preserved.
func (u *updater) moveFragment(lp *livePage, parentSlot uint16, roots []uint16) {
	total := 0
	var perRoot [][]uint16
	for _, root := range roots {
		m, b, ok := localSubtree(lp.img, root, deadSlotOff) // no avoid here
		if !ok {
			panic("storage: moveFragment over protected slot")
		}
		perRoot = append(perRoot, m)
		total += b + 2*len(m)
	}
	far := u.overflowPage(total + encodedSize(&rec{kind: RecProxyParent}) + 4)
	ppSlot := u.addRec(far, rec{kind: RecProxyParent, parent: noParent})
	firstOrd := lp.img.recs[roots[0]].ord

	for ri, members := range perRoot {
		newSlot := map[uint16]uint16{}
		for _, s := range members {
			moved := lp.img.recs[s] // copy
			moved.children = nil
			if s == roots[ri] {
				moved.parent = int(ppSlot)
			} else {
				moved.parent = int(newSlot[uint16(lp.img.recs[s].parent)])
			}
			ns := u.addRec(far, moved)
			newSlot[s] = ns
			if moved.kind == RecProxyChild {
				comp := u.live(moved.target.Page())
				comp.img.recs[moved.target.Slot()].target = MakeNodeID(far.page, ns)
				comp.dirty = true
			}
		}
	}
	for _, members := range perRoot {
		for _, s := range members {
			u.tombstone(lp, s)
		}
	}
	// The replacement proxy takes the first root's (now dead) slot, so a
	// stale NodeID for that root degrades to the border that leads to it.
	pcSlot := roots[0]
	pc := rec{kind: RecProxyChild, parent: int(parentSlot), ord: firstOrd,
		target: MakeNodeID(far.page, ppSlot)}
	lp.img.recs[pcSlot] = pc
	lp.used += encodedSize(&pc)
	u.linkChild(lp, pcSlot, int(parentSlot))
	far.img.recs[ppSlot].target = MakeNodeID(lp.page, pcSlot)
}

// overflowPage returns an extension page with at least `need` bytes free:
// first the pages this update already touched, then the newest extension
// page from earlier updates, then a freshly allocated one. Reuse keeps the
// extension directory small.
func (u *updater) overflowPage(need int) *livePage {
	ps := u.st.disk.PageSize()
	if len(u.fresh) > 0 {
		lp := u.pages[u.fresh[len(u.fresh)-1]]
		if lp.fits(need, ps) {
			return lp
		}
	}
	if extras := u.st.extrasList(); len(extras) > 0 {
		lp := u.live(extras[len(extras)-1])
		if lp.fits(need, ps) {
			return lp
		}
	}
	return u.freshPage()
}

// proxyPair creates a linked ProxyChild (under lp/parentSlot, carrying
// ord) and ProxyParent in an extension page with room for `need` more
// bytes, returning the far page and the anchor slot.
func (u *updater) proxyPair(lp *livePage, parentSlot uint16, ord ordpath.Key, need int) (*livePage, uint16) {
	far := u.overflowPage(need + encodedSize(&rec{kind: RecProxyParent}) + 4)
	ppSlot := u.addRec(far, rec{kind: RecProxyParent, parent: noParent})
	pcSlot := u.addRec(lp, rec{kind: RecProxyChild, parent: int(parentSlot), ord: ord,
		target: MakeNodeID(far.page, ppSlot)})
	far.img.recs[ppSlot].target = MakeNodeID(lp.page, pcSlot)
	return far, ppSlot
}

// draftRecFor converts one logical node into a record (attributes inline).
func draftRecFor(n *xmltree.Node, ord ordpath.Key) (rec, error) {
	switch n.Kind {
	case xmltree.Element:
		r := rec{kind: RecElem, tag: n.Tag, ord: ord}
		for _, a := range n.Attrs {
			r.attrs = append(r.attrs, attrRec{tag: a.Tag, val: a.Text})
		}
		return r, nil
	case xmltree.Text:
		return rec{kind: RecText, text: n.Text, ord: ord}, nil
	case xmltree.Comment:
		return rec{kind: RecComment, text: n.Text, ord: ord}, nil
	case xmltree.ProcInst:
		return rec{kind: RecPI, text: n.Text, ord: ord}, nil
	default:
		return rec{}, fmt.Errorf("storage: cannot insert %v node", n.Kind)
	}
}

// deleteRec tombstones the record at (lp, slot) and its whole physical
// subtree, following proxies into other clusters.
func (u *updater) deleteRec(lp *livePage, slot uint16) {
	r := &lp.img.recs[slot]
	if r.dead {
		return
	}
	// Children tombstones unlink themselves from r.children; iterate a
	// snapshot so the shifting slice does not skip entries.
	kids := append([]uint16(nil), r.children...)
	for _, ch := range kids {
		u.deleteRec(lp, ch)
	}
	if r.kind == RecProxyChild {
		far := u.live(r.target.Page())
		u.deleteRec(far, r.target.Slot()) // the ProxyParent + fragment
	}
	u.tombstone(lp, slot)
}

// tombstone marks one record dead and unlinks it from its parent.
func (u *updater) tombstone(lp *livePage, slot uint16) {
	r := &lp.img.recs[slot]
	if r.parent != noParent {
		p := &lp.img.recs[r.parent]
		for i, k := range p.children {
			if k == slot {
				p.children = append(p.children[:i], p.children[i+1:]...)
				break
			}
		}
	}
	lp.used -= encodedSize(r)
	r.dead = true
	r.children = nil
	lp.dirty = true
}

// collapseAnchors removes a ProxyParent that lost all children, together
// with its companion ProxyChild (recursively, should that empty another
// anchor).
func (u *updater) collapseAnchors(lp *livePage, slot uint16) {
	r := &lp.img.recs[slot]
	if r.dead || r.kind != RecProxyParent || len(r.children) > 0 {
		return
	}
	companion := r.target
	u.tombstone(lp, slot)
	far := u.live(companion.Page())
	fr := &far.img.recs[companion.Slot()]
	parent := fr.parent
	u.tombstone(far, companion.Slot())
	if parent != noParent {
		u.collapseAnchors(far, uint16(parent))
	}
}

// stage encodes every dirty page of the update: the write set a
// transactional commit relocates to copy-on-write targets. Keys are
// logical page ids; payloads are unfinalized (no checksum trailer yet).
func (u *updater) stage() (map[vdisk.PageID][]byte, error) {
	images := map[vdisk.PageID][]byte{}
	for _, lp := range u.pages {
		if !lp.dirty {
			continue
		}
		raw, err := encodePageImage(lp.img, u.st.disk.PageSize())
		if err != nil {
			return nil, err
		}
		images[lp.page] = raw
	}
	return images, nil
}

// commit applies every dirty page through the write-ahead log (see
// wal.go), so a crash between page writes never leaves dangling proxy
// pairs, and registers fresh pages in the volume directory (meta page).
// It writes in place, which only the single-writer legacy path may do;
// volumes with a published version map must commit through internal/txn.
func (u *updater) commit() error {
	if u.st.version() != nil {
		return ErrLegacyUpdate
	}
	images, err := u.stage()
	if err != nil {
		return err
	}
	if len(images) == 0 {
		return nil
	}

	m, err := readMeta(u.st.disk)
	if err != nil {
		return err
	}
	newExtras := append(append([]vdisk.PageID(nil), u.st.extras...), u.fresh...)
	if 32+4*len(newExtras)+4+8*len(m.roots)+8 > usable(u.st.disk.PageSize()) {
		return ErrMetaOverflow
	}
	m.extras = newExtras

	if err := u.st.commitWAL(images, m); err != nil {
		return err
	}
	u.st.extras = newExtras
	for p := range images {
		u.st.cache.drop(p)     // invalidate the swizzled view…
		u.st.buf.Invalidate(p) // …and the stale buffered bytes
		u.st.syn.drop(p)       // …and the cluster synopsis (no epoch move here)
	}
	return nil
}
