package storage

import (
	"sync"
	"sync/atomic"

	"pathdb/internal/vdisk"
)

// swizShards is the number of latch shards of the swizzle cache; a power of
// two, sized like the buffer manager's page-table shards.
const swizShards = 64

// swizKey names one immutable byte image of a cluster across versions: the
// *logical* page (what NodeIDs embed) plus the epoch of the last commit
// that rewrote it in the reading view's version. Pages never written carry
// epoch 0, so every snapshot that sees the unchanged bytes shares one
// entry; a commit moves the page's epoch forward and later readers key a
// fresh entry while pinned snapshots keep hitting the old one — MVCC
// invalidation by construction, no flush required.
type swizKey struct {
	page  vdisk.PageID
	epoch uint64
}

// swizEntry is one cached page image. The mutex serializes the decode:
// losers of the publication race block until the winner has decoded, then
// share its image — decode-once semantics under contention. Unlike a
// sync.Once, a failed load (the fault plane's terminal errors) publishes
// nothing, so the next access retries instead of inheriting a nil image.
type swizEntry struct {
	mu  sync.Mutex
	img atomic.Pointer[pageImage]
}

// swizCache is the sharded, double-checked cache of decoded (swizzled) page
// images, shared by a base Store and all its Reader views. The shard latch
// covers only the map probe and insert; the buffer Fix and the decode run
// outside it (under the entry's mutex), so a slow decode never blocks
// lookups of other pages in the same shard and the lock order stays
// buffer-manager locks → swizzle shard (the eviction handler calls drop
// while holding manager locks; the decode path never holds a shard latch
// while calling into the pool).
//
// Entries are keyed by swizKey; the phys index maps the *physical* page a
// decoded image came from back to its key, because the two invalidation
// callers — buffer eviction and the version reclaimer (DropVersion) —
// identify frames physically. The version map is injective, so at any
// moment one physical page backs at most one key.
type swizCache struct {
	shards [swizShards]struct {
		mu      sync.RWMutex
		entries map[swizKey]*swizEntry
	}
	physMu sync.Mutex
	phys   map[vdisk.PageID]swizKey
}

func newSwizCache() *swizCache {
	c := &swizCache{phys: make(map[vdisk.PageID]swizKey)}
	for i := range c.shards {
		c.shards[i].entries = make(map[swizKey]*swizEntry)
	}
	return c
}

func (c *swizCache) shard(k swizKey) *struct {
	mu      sync.RWMutex
	entries map[swizKey]*swizEntry
} {
	return &c.shards[uint32(k.page)&(swizShards-1)]
}

// entry returns the cache entry for k, creating it if absent.
func (c *swizCache) entry(k swizKey) *swizEntry {
	sh := c.shard(k)
	sh.mu.RLock()
	e := sh.entries[k]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	sh.mu.Lock()
	if e = sh.entries[k]; e == nil {
		e = &swizEntry{}
		sh.entries[k] = e
	}
	sh.mu.Unlock()
	return e
}

// track records that the image published under k was decoded from physical
// page phys, so physically-addressed invalidation can find it.
func (c *swizCache) track(phys vdisk.PageID, k swizKey) {
	c.physMu.Lock()
	c.phys[phys] = k
	c.physMu.Unlock()
}

// drop discards the cached image decoded from physical page p (buffer
// eviction, version reclamation, legacy in-place update). Readers already
// holding the image keep using it — images are immutable and
// self-contained — while the next access re-decodes.
func (c *swizCache) drop(p vdisk.PageID) {
	c.physMu.Lock()
	k, ok := c.phys[p]
	if ok {
		delete(c.phys, p)
	}
	c.physMu.Unlock()
	if !ok {
		// Nothing was published from this frame (decode raced an eviction,
		// or the frame held a non-data page).
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	delete(sh.entries, k)
	sh.mu.Unlock()
}

// reset empties every shard in place (keeping the cache's identity, which
// Reader views share by pointer).
func (c *swizCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[swizKey]*swizEntry)
		sh.mu.Unlock()
	}
	c.physMu.Lock()
	c.phys = make(map[vdisk.PageID]swizKey)
	c.physMu.Unlock()
}
