package storage

import (
	"errors"
	"fmt"

	"pathdb/internal/ordpath"
	"pathdb/internal/rng"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// Layout selects how clusters are mapped to physical page positions at
// import time. The paper deliberately supports arbitrary layouts (Sec. 1,
// Sec. 3.3): real databases accumulate fragmentation through incremental
// updates and space-saving import heuristics, which is exactly when
// cost-sensitive reordering pays off.
type Layout uint8

// Cluster-to-page layouts. LayoutNatural is the zero value and therefore
// the default everywhere.
const (
	// LayoutNatural models a realistically aged database: clusters keep
	// their time-of-creation (DFS) order, but a fraction of them —
	// NaturalDisplacedFraction — has been displaced to random positions by
	// a history of updates and space-reuse decisions (the situation the
	// paper's introduction describes). This is the default layout and the
	// one the paper-reproduction experiments use.
	LayoutNatural Layout = iota
	// LayoutContiguous places clusters in document (DFS) order — the best
	// case for the Simple plan (a freshly bulk-loaded database).
	LayoutContiguous
	// LayoutShuffled permutes cluster positions pseudo-randomly, modelling
	// heavy fragmentation.
	LayoutShuffled
	// LayoutReverse places clusters in reverse document order, an
	// adversarial but deterministic fragmentation.
	LayoutReverse
)

// NaturalDisplacedFraction is the share of clusters LayoutNatural moves
// away from their creation-order position.
const NaturalDisplacedFraction = 0.5

func (l Layout) String() string {
	switch l {
	case LayoutContiguous:
		return "contiguous"
	case LayoutShuffled:
		return "shuffled"
	case LayoutReverse:
		return "reverse"
	case LayoutNatural:
		return "natural"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// ImportOptions configures Import.
type ImportOptions struct {
	PageSize      int    // bytes per page; default 8192
	Layout        Layout // cluster placement; default LayoutNatural
	Seed          uint64 // permutation seed for fragmented layouts
	MaxTextRecord int    // split text nodes longer than this; default 1024
}

func (o ImportOptions) withDefaults() ImportOptions {
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.MaxTextRecord == 0 {
		o.MaxTextRecord = 1024
	}
	// A text record must always fit a fresh cluster alongside the page
	// header, a proxy-parent anchor and the spill headroom.
	if limit := o.PageSize/2 - 64; o.MaxTextRecord > limit {
		o.MaxTextRecord = limit
	}
	return o
}

// ErrRecordTooLarge is returned when a single node cannot fit in a page.
var ErrRecordTooLarge = errors.New("storage: record exceeds page capacity")

// proxyReserve is the headroom reserved per open element so that a
// continuation proxy can always be spilled into its cluster: an encoded
// proxy record (header, ord key, 8-byte target) plus its slot entry. Ord
// keys grow with tree depth; 48 bytes covers depths well beyond XMark's.
const proxyReserve = 48

// draftCluster is a cluster being assembled during partitioning.
type draftCluster struct {
	id       int
	recs     []rec
	used     int // bytes incl. header and slot entries
	reserved int // headroom claimed by open elements
	cap      int
}

func (c *draftCluster) fits(recBytes int) bool {
	return c.used+c.reserved+recBytes+2 <= c.cap
}

func (c *draftCluster) add(r rec) uint16 {
	c.used += encodedSize(&r) + 2
	c.recs = append(c.recs, r)
	return uint16(len(c.recs) - 1)
}

// proxyLink records a companion pair to be patched with real NodeIDs after
// layout: the records at (ca, sa) and (cb, sb) point at each other.
type proxyLink struct {
	ca, cb int
	sa, sb uint16
}

type importer struct {
	opts     ImportOptions
	clusters []*draftCluster
	links    []proxyLink
	cur      *draftCluster // active output cluster of the bulk load
}

func (im *importer) newCluster() *draftCluster {
	c := &draftCluster{id: len(im.clusters), used: pageHeaderSize, cap: usable(im.opts.PageSize)}
	im.clusters = append(im.clusters, c)
	return c
}

func (im *importer) linkProxies(ca int, sa uint16, cb int, sb uint16) {
	im.links = append(im.links, proxyLink{ca: ca, cb: cb, sa: sa, sb: sb})
}

// Import stores the logical document doc (whose tags are interned in dict)
// onto disk and returns an opened Store. The ledger is reset afterwards:
// the paper measures query cost, not load cost.
func Import(disk *vdisk.Disk, dict *xmltree.Dictionary, doc *xmltree.Node, opts ImportOptions) (*Store, error) {
	return ImportCollection(disk, dict, []*xmltree.Node{doc}, opts)
}

// ImportCollection stores several documents in one volume — the
// "collection of documents" XScan covers (Sec. 5.4.3): one scan serves
// paths over the whole collection. Documents get disjoint order-key
// ranges, so cross-document result sets still sort deterministically.
func ImportCollection(disk *vdisk.Disk, dict *xmltree.Dictionary, docs []*xmltree.Node, opts ImportOptions) (*Store, error) {
	if len(docs) == 0 {
		return nil, errors.New("storage: empty collection")
	}
	for _, doc := range docs {
		if doc.Kind != xmltree.Document {
			return nil, errors.New("storage: Import requires document nodes")
		}
	}
	if disk.NumPages() != 0 {
		return nil, errors.New("storage: Import requires an empty disk")
	}
	opts = opts.withDefaults()
	if opts.PageSize != disk.PageSize() {
		return nil, fmt.Errorf("storage: option page size %d != disk page size %d", opts.PageSize, disk.PageSize())
	}

	im := &importer{opts: opts}

	// Place one document record per member and walk each tree. Every
	// document starts its own cluster; multi-document volumes give each
	// member a distinct order-key prefix.
	type rootRef struct {
		cluster int
		slot    uint16
	}
	var rootRefs []rootRef
	for i, doc := range docs {
		base := ordpath.Root()
		if len(docs) > 1 {
			base = ordpath.Root().BulkChild(i)
		}
		if im.cur == nil {
			im.advance()
		}
		docSlot := im.cur.add(rec{kind: RecDoc, parent: noParent, ord: base})
		im.cur.reserved += proxyReserve
		attach := attachPoint{c: im.cur, slot: docSlot}
		rootRefs = append(rootRefs, rootRef{cluster: im.cur.id, slot: docSlot})
		if err := im.walkChildren(doc, &attach, base); err != nil {
			return nil, err
		}
		attach.c.reserved -= proxyReserve
	}

	// Layout: permute clusters onto physical pages.
	n := len(im.clusters)
	order := make([]int, n) // order[i] = cluster placed at data page i
	for i := range order {
		order[i] = i
	}
	switch opts.Layout {
	case LayoutShuffled:
		r := rng.New(opts.Seed ^ 0xD0C5EED)
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case LayoutReverse:
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	case LayoutNatural:
		// Displace a fraction of positions by permuting them among
		// themselves; the rest keep creation order.
		r := rng.New(opts.Seed ^ 0xFA6)
		var moved []int
		for i := 0; i < n; i++ {
			if r.Bool(NaturalDisplacedFraction) {
				moved = append(moved, i)
			}
		}
		perm := r.Perm(len(moved))
		orig := make([]int, len(moved))
		for i, pos := range moved {
			orig[i] = order[pos]
		}
		for i, pos := range moved {
			order[pos] = orig[perm[i]]
		}
	}
	// pageOf[clusterID] = physical data page.
	const firstData = 1 // page 0 is the meta page
	pageOf := make([]vdisk.PageID, n)
	for pos, cid := range order {
		pageOf[cid] = vdisk.PageID(firstData + pos)
	}

	// Patch proxy companion NodeIDs.
	for _, l := range im.links {
		im.clusters[l.ca].recs[l.sa].target = MakeNodeID(pageOf[l.cb], l.sb)
		im.clusters[l.cb].recs[l.sb].target = MakeNodeID(pageOf[l.ca], l.sa)
	}

	// Write pages: meta placeholder, data, dictionary, then the real meta.
	meta := disk.Alloc()
	for i := 0; i < n; i++ {
		if got := disk.Alloc(); got != vdisk.PageID(firstData+i) {
			return nil, fmt.Errorf("storage: unexpected page allocation %d", got)
		}
	}
	for pos, cid := range order {
		c := im.clusters[cid]
		pb := newPageBuilder(opts.PageSize)
		for i := range c.recs {
			pb.add(encodeRec(&c.recs[i]))
		}
		writePage(disk, vdisk.PageID(firstData+pos), pb.finish())
	}
	dictStart, dictCount := writeDictionary(disk, dict)
	roots := make([]NodeID, len(rootRefs))
	for i, rr := range rootRefs {
		roots[i] = MakeNodeID(pageOf[rr.cluster], rr.slot)
	}
	writeMeta(disk, meta, metaInfo{
		roots:     roots,
		firstData: firstData,
		nData:     uint32(n),
		dictStart: dictStart,
		dictCount: dictCount,
	})

	// Loading is free: the evaluation clock starts at zero.
	disk.Ledger().Reset()
	disk.ResetClockState()

	return newStore(disk, dict, roots, firstData, uint32(n), nil), nil
}

// The partitioner streams the document in DFS order into a single active
// cluster, opening a fresh one whenever the active cluster fills — the
// classic bulk-load cut that keeps pages densely packed. Each open element
// carries an *attach point*: the (cluster, slot) its next child physically
// hangs from. When the active cluster has moved on since the element last
// placed a child, a proxy pair re-anchors it: a ProxyChild at the old
// attach point and a ProxyParent fragment root in the active cluster.
// Every open element holds proxyReserve headroom in its attach cluster so
// the re-anchoring proxy always fits.
type attachPoint struct {
	c    *draftCluster
	slot uint16
}

// advance opens a fresh active cluster.
func (im *importer) advance() {
	im.cur = im.newCluster()
}

// walkChildren places every child of logical node n, whose record sits at
// the given attach point (which the children mutate as the stream moves
// on).
func (im *importer) walkChildren(n *xmltree.Node, attach *attachPoint, ord ordpath.Key) error {
	childIdx := 0
	for _, ch := range n.Children {
		recs, err := im.draftRecs(ch, ord, &childIdx)
		if err != nil {
			return err
		}
		for _, dr := range recs {
			if err := im.placeChild(attach, dr.r, dr.node); err != nil {
				return err
			}
		}
	}
	return nil
}

// placeChild stores one record as a child of *attach, advancing the active
// cluster and re-anchoring as needed, then recurses into element children.
func (im *importer) placeChild(attach *attachPoint, r rec, node *xmltree.Node) error {
	sz := encodedSize(&r)
	needsReserve := 0
	if r.kind == RecElem {
		needsReserve = proxyReserve
	}
	advanced := false
	for {
		extra := 0
		if attach.c != im.cur {
			// Re-anchoring adds a ProxyParent plus the migrated reserve.
			extra = encodedSize(&rec{kind: RecProxyParent, parent: noParent}) + 2 + proxyReserve
		}
		if im.cur.used+im.cur.reserved+sz+2+needsReserve+extra <= im.cur.cap {
			break
		}
		if advanced {
			return ErrRecordTooLarge
		}
		im.advance()
		advanced = true
	}
	if attach.c != im.cur {
		// Re-anchor: the element's reserve in the old cluster pays for the
		// ProxyChild; the reserve migrates to the active cluster.
		attach.c.reserved -= proxyReserve
		pcSlot := attach.c.add(rec{kind: RecProxyChild, parent: int(attach.slot), ord: r.ord})
		ppSlot := im.cur.add(rec{kind: RecProxyParent, parent: noParent})
		im.linkProxies(attach.c.id, pcSlot, im.cur.id, ppSlot)
		im.cur.reserved += proxyReserve
		attach.c, attach.slot = im.cur, ppSlot
	}
	r.parent = int(attach.slot)
	slot := im.cur.add(r)
	if r.kind == RecElem {
		im.cur.reserved += proxyReserve
		childAttach := attachPoint{c: im.cur, slot: slot}
		if err := im.walkChildren(node, &childAttach, r.ord); err != nil {
			return err
		}
		childAttach.c.reserved -= proxyReserve
	}
	return nil
}

// draftRec pairs a prepared record with its logical node (nil for the
// synthetic continuation pieces of split text).
type draftRec struct {
	r    rec
	node *xmltree.Node
}

// draftRecs converts one logical child into one or more records (long text
// is split so every record fits a page).
func (im *importer) draftRecs(ch *xmltree.Node, parentOrd ordpath.Key, childIdx *int) ([]draftRec, error) {
	mk := func() ordpath.Key {
		k := parentOrd.BulkChild(*childIdx)
		*childIdx++
		return k
	}
	switch ch.Kind {
	case xmltree.Element:
		r := rec{kind: RecElem, tag: ch.Tag, ord: mk()}
		for _, a := range ch.Attrs {
			r.attrs = append(r.attrs, attrRec{tag: a.Tag, val: a.Text})
		}
		if encodedSize(&r)+2+2*proxyReserve+pageHeaderSize+encodedSize(&rec{kind: RecProxyChild, parent: 0, ord: r.ord})+16 > usable(im.opts.PageSize) {
			return nil, fmt.Errorf("%w: element with %d attributes", ErrRecordTooLarge, len(ch.Attrs))
		}
		return []draftRec{{r: r, node: ch}}, nil
	case xmltree.Text, xmltree.Comment, xmltree.ProcInst:
		kind := map[xmltree.Kind]RecKind{
			xmltree.Text:     RecText,
			xmltree.Comment:  RecComment,
			xmltree.ProcInst: RecPI,
		}[ch.Kind]
		text := ch.Text
		var out []draftRec
		for first := true; first || len(text) > 0; first = false {
			chunk := text
			if len(chunk) > im.opts.MaxTextRecord {
				chunk = chunk[:im.opts.MaxTextRecord]
			}
			text = text[len(chunk):]
			out = append(out, draftRec{r: rec{kind: kind, text: chunk, ord: mk()}})
			if kind != RecText {
				break // only text is split; comments/PIs are capped by parse
			}
		}
		return out, nil
	case xmltree.Attribute:
		return nil, errors.New("storage: attribute in child list")
	default:
		return nil, fmt.Errorf("storage: cannot store %v node", ch.Kind)
	}
}
