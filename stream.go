package pathdb

import (
	"context"
	"sort"

	"pathdb/internal/core"
	"pathdb/internal/engine"
	"pathdb/internal/ordpath"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// Cursor is a pull-based result stream: the primitive evaluation surface
// that both the buffered calls (Session.Do, DB.QueryCtx) and the streaming
// ones (Session.Stream, DB.QueryStream) are built on.
//
//	c, err := sess.Stream(ctx, "//item", pathdb.QueryOptions{})
//	if err != nil { ... }
//	defer c.Close()
//	for c.Next() {
//	    use(c.Node())
//	}
//	if err := c.Err(); err != nil { ... }
//
// Close is mandatory (like sql.Rows): an abandoned cursor would otherwise
// hold its producer blocked on back-pressure. Close is idempotent, safe
// mid-stream — it cancels the query, which withdraws its in-flight cluster
// prefetches and returns pooled arenas/iterators at the next poll point —
// and after it Next reports false.
//
// Delivery is incremental for unsorted queries: each match is handed over
// as the operator tree produces it, with the producer at most a bounded
// channel ahead (back-pressure). Sorted queries are order-enforced: the
// producer must see every match before the first can be delivered, so the
// stream starts only when evaluation finishes (the buffering is charged to
// the query like any other work).
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	db   *DB
	path string
	opts QueryOptions

	ctx    context.Context
	cancel context.CancelFunc

	// Engine-backed state: one Pending per union branch, drained in
	// submission order. Live cursors read the sinks; buffered cursors wait
	// the summaries and iterate the merged node list.
	pend []*engine.Pending
	live bool
	cur  int             // branch currently being drained (live)
	bres []engine.Result // clean branch summaries harvested so far

	// Direct state (DB.QueryStream): the operator tree is pulled on the
	// caller's goroutine, engine-free.
	direct *directCursor

	// Buffered iteration state (engine-buffered and direct-sorted): the
	// merged result, yielded one node at a time.
	merged bool
	sum    ExecResult
	sumOK  bool
	idx    int

	seen    map[storage.NodeID]bool // union dedup (live modes)
	node    Node
	yielded int
	capped  bool // Limit reached; next Next() terminates the stream
	done    bool
	closed  bool
	err     error
}

// Stream opens a cursor over the path's results. Unsorted queries deliver
// incrementally (the first node is available long before the last is
// computed); a sorted single path is order-enforced at the producer (the
// engine sees every match before the first is delivered) and then streams
// the sorted sequence; a sorted union is delivered buffered, after the
// cross-branch merge. Streaming queries execute solo — they never join a
// gang-shared scheduler, since their production is paced by the consumer.
// A full admission queue makes Stream wait; TryStream sheds instead.
func (s *Session) Stream(ctx context.Context, path string, opts QueryOptions) (*Cursor, error) {
	return s.stream(ctx, path, opts, false, true)
}

// TryStream is Stream with non-blocking admission: it fails immediately
// with ErrOverloaded when the engine's queue is full. Union shedding
// matches TryDo: the decision is made on the first branch.
func (s *Session) TryStream(ctx context.Context, path string, opts QueryOptions) (*Cursor, error) {
	return s.stream(ctx, path, opts, true, true)
}

func (s *Session) stream(ctx context.Context, path string, opts QueryOptions, try, live bool) (*Cursor, error) {
	queries, live, err := s.compile(path, opts, live)
	if err != nil {
		return nil, err
	}
	cctx, cancel := opts.context(ctx)

	// Submit every branch before reading so union branches enter one gang;
	// the dispatcher drains the queue independently of this goroutine, so
	// sequential Submit calls cannot deadlock.
	pendings := make([]*engine.Pending, 0, len(queries))
	for i, q := range queries {
		var p *engine.Pending
		var perr error
		if try && i == 0 {
			p, perr = s.s.TrySubmit(cctx, q)
		} else {
			p, perr = s.s.Submit(cctx, q)
		}
		if perr != nil {
			// Already-submitted branches settle through the cancelled
			// context; their producers unblock on it.
			cancel()
			return nil, wrapErr("submit", path, perr)
		}
		pendings = append(pendings, p)
	}
	c := &Cursor{
		db:     s.eng.db,
		path:   path,
		opts:   opts,
		ctx:    cctx,
		cancel: cancel,
		pend:   pendings,
		live:   live,
	}
	if live && len(pendings) > 1 {
		c.seen = make(map[storage.NodeID]bool)
	}
	return c, nil
}

// Next advances the cursor to the next result node, reporting false when
// the stream is exhausted, failed, closed, or capped by Limit. After a
// false, Err distinguishes completion (nil) from failure.
func (c *Cursor) Next() bool {
	if c.done || c.closed {
		return false
	}
	if c.capped {
		c.terminate()
		return false
	}
	switch {
	case c.direct != nil:
		return c.nextDirect()
	case c.live:
		return c.nextLive()
	default:
		return c.nextBuffered()
	}
}

// Node returns the node Next positioned the cursor on.
func (c *Cursor) Node() Node { return c.node }

// Err returns the error that terminated the stream, nil on clean
// completion (including a Limit cut or an explicit Close).
func (c *Cursor) Err() error { return c.err }

// Count returns how many nodes the cursor has yielded so far.
func (c *Cursor) Count() int { return c.yielded }

// Summary returns the query's aggregated execution summary — resolved
// strategy, cost-model choice, virtual costs, gang/shared info — once the
// stream has terminated (Next returned false, or Close was called). The
// summary of a live stream covers the branches that completed cleanly; its
// Nodes field is nil (nodes were delivered through the cursor).
func (c *Cursor) Summary() (ExecResult, bool) {
	if !c.sumOK {
		return ExecResult{}, false
	}
	return c.sum, true
}

// Close terminates the stream: it cancels the underlying query (stopping
// the producer at its next poll point and withdrawing in-flight cluster
// prefetches), unblocks and settles every branch, and releases pooled
// resources. Idempotent; always returns nil.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.cancel()
	if c.direct != nil {
		c.direct.close()
		if !c.sumOK {
			c.finishDirect()
		}
		return nil
	}
	// Settle every branch not yet harvested: drain sinks so producers
	// unblock, then wait for the engine to finish each Pending (it always
	// does — cancellation stops it at the next poll point). This is what
	// makes Close leak-free: no worker is left blocked on our channels
	// and no prefetch stays in flight.
	for i := c.cur; i < len(c.pend); i++ {
		p := c.pend[i]
		if ch := p.C(); ch != nil {
			for range ch {
			}
		}
		if res, err := p.Wait(context.Background()); err == nil {
			c.bres = append(c.bres, res)
		}
	}
	c.cur = len(c.pend)
	if !c.sumOK && len(c.bres) > 0 {
		c.sum = aggregateBranches(c.bres)
		c.sumOK = true
	}
	c.done = true
	return nil
}

// terminate ends a Limit-capped stream cleanly: remaining production is
// cancelled and the summary is built from the branches seen.
func (c *Cursor) terminate() {
	if c.direct != nil {
		c.direct.close()
		c.finishDirect()
		c.done = true
		return
	}
	c.cancel()
	for i := c.cur; i < len(c.pend); i++ {
		p := c.pend[i]
		if ch := p.C(); ch != nil {
			for range ch {
			}
		}
		if res, err := p.Wait(context.Background()); err == nil {
			c.bres = append(c.bres, res)
		}
	}
	c.cur = len(c.pend)
	if !c.sumOK {
		c.sum = aggregateBranches(c.bres)
		c.sumOK = true
	}
	c.done = true
}

// nextLive pulls the next node from the engine sinks, branch by branch in
// submission order, deduplicating across union branches on the fly.
func (c *Cursor) nextLive() bool {
	for {
		if c.cur >= len(c.pend) {
			c.sum = aggregateBranches(c.bres)
			c.sumOK = true
			c.done = true
			return false
		}
		r, ok := <-c.pend[c.cur].C()
		if !ok {
			res, err := c.pend[c.cur].Wait(c.ctx)
			if err != nil {
				c.fail(err)
				return false
			}
			c.bres = append(c.bres, res)
			c.cur++
			continue
		}
		if c.seen != nil {
			if c.seen[r.Node] {
				continue
			}
			c.seen[r.Node] = true
		}
		c.yield(Node{db: c.db, id: r.Node})
		return true
	}
}

// nextBuffered waits for every branch once, merges them exactly like the
// buffered call path, then yields the merged nodes one at a time.
func (c *Cursor) nextBuffered() bool {
	if !c.merged {
		c.mergeBuffered()
		if c.err != nil {
			return false
		}
	}
	if c.idx >= len(c.sum.Nodes) {
		c.done = true
		return false
	}
	c.yield(c.sum.Nodes[c.idx])
	c.idx++
	return true
}

func (c *Cursor) yield(n Node) {
	c.node = n
	c.yielded++
	if c.opts.Limit > 0 && c.yielded >= c.opts.Limit {
		c.capped = true
	}
}

func (c *Cursor) fail(err error) {
	c.err = wrapErr("query", c.path, err)
	c.done = true
	c.cancel()
	// Settle the remaining branches so nothing stays blocked on our sinks.
	for i := c.cur; i < len(c.pend); i++ {
		p := c.pend[i]
		if ch := p.C(); ch != nil {
			for range ch {
			}
		}
		p.Wait(context.Background())
	}
	c.cur = len(c.pend)
}

// mergeBuffered combines the branch results into one ExecResult — the Do
// semantics: union branches dedup as a node set, sorted unions re-sort,
// Limit truncates the final sequence.
func (c *Cursor) mergeBuffered() {
	c.merged = true
	for ; c.cur < len(c.pend); c.cur++ {
		res, err := c.pend[c.cur].Wait(c.ctx)
		if err != nil {
			c.fail(err)
			return
		}
		c.bres = append(c.bres, res)
	}
	out := aggregateBranches(c.bres)

	var all []core.Result
	for _, r := range c.bres {
		all = append(all, r.Results...)
	}
	if len(c.pend) > 1 {
		seen := make(map[storage.NodeID]bool, len(all))
		dedup := all[:0]
		for _, r := range all {
			if seen[r.Node] {
				continue
			}
			seen[r.Node] = true
			dedup = append(dedup, r)
		}
		all = dedup
		if c.opts.Sorted {
			sort.Slice(all, func(i, j int) bool {
				return ordpath.Compare(all[i].Ord, all[j].Ord) < 0
			})
		}
	}
	if c.opts.Limit > 0 && len(all) > c.opts.Limit {
		all = all[:c.opts.Limit]
	}
	out.Nodes = make([]Node, len(all))
	for i, r := range all {
		out.Nodes[i] = Node{db: c.db, id: r.Node}
	}
	c.sum = out
	c.sumOK = true
}

// drainAll consumes the whole cursor and returns the buffered-call result:
// every yielded node plus the aggregated summary.
func (c *Cursor) drainAll() (ExecResult, error) {
	if !c.live && c.direct == nil {
		// Buffered engine mode already materializes the exact Do result.
		if !c.merged {
			c.mergeBuffered()
		}
		return c.sum, c.err
	}
	var nodes []Node
	for c.Next() {
		nodes = append(nodes, c.Node())
	}
	if c.err != nil {
		return ExecResult{}, c.err
	}
	res, _ := c.Summary()
	res.Nodes = nodes
	return res, nil
}

// Drain consumes the rest of the stream and returns it as a buffered
// ExecResult — the bridge from cursor to one-shot semantics. Session.Do is
// exactly stream-then-Drain.
func (c *Cursor) Drain() (ExecResult, error) { return c.drainAll() }

// aggregateBranches folds branch summaries into one ExecResult (no nodes):
// costs sum, shared flags or, and the virtual latency spans the earliest
// submit to the latest done.
func aggregateBranches(branch []engine.Result) ExecResult {
	if len(branch) == 0 {
		return ExecResult{}
	}
	out := ExecResult{Strategy: fromCore(branch[0].Strategy), Gang: branch[0].Gang}
	if ch := branch[0].Choice; ch != nil {
		pc := fromPlanChoice(*ch)
		out.Choice = &pc
	}
	minSubmit, maxDone := branch[0].SubmitV, branch[0].DoneV
	for _, r := range branch {
		out.Shared = out.Shared || r.Shared
		out.CostV += r.CostV
		out.CPUV += r.CPUV
		out.IOWaitV += r.IOWaitV
		out.SharedV += r.SharedV
		out.WallQueue += r.WallQueue
		out.WallExec += r.WallExec
		if r.SubmitV < minSubmit {
			minSubmit = r.SubmitV
		}
		if r.DoneV > maxDone {
			maxDone = r.DoneV
		}
	}
	out.VirtualLatency = maxDone - minSubmit
	return out
}

// ---------------------------------------------------------------------------
// Direct (engine-free) streaming: DB.QueryStream.

// QueryStream opens a cursor directly over the operator tree, on the
// caller's goroutine — the streaming counterpart of DB.QueryCtx, and the
// engine-free counterpart of Session.Stream. Unsorted queries pull the
// plan incrementally: each Next advances the operators just far enough to
// produce one match. Sorted queries evaluate fully first (order
// enforcement), then stream the sorted result.
//
// Like QueryCtx, it is not safe for use concurrently with other queries on
// the same DB; use Session.Stream for concurrent streaming.
func (db *DB) QueryStream(ctx context.Context, path string, opts QueryOptions) (*Cursor, error) {
	branches, err := xpathParseUnion(db, path)
	if err != nil {
		return nil, err
	}
	cctx, cancel := opts.context(ctx)
	if opts.Sorted {
		// Order enforcement buffers anyway: evaluate through the buffered
		// path and stream the sorted nodes from the cursor.
		res, qerr := db.QueryCtx(cctx, path, opts)
		if qerr != nil {
			cancel()
			return nil, qerr
		}
		c := &Cursor{db: db, path: path, opts: opts, ctx: cctx, cancel: cancel,
			merged: true, sum: res, sumOK: true}
		return c, nil
	}
	d := &directCursor{
		db:       db,
		branches: branches,
		arena:    core.GetArena(),
		startLed: db.store.Ledger().Snapshot(),
	}
	c := &Cursor{db: db, path: path, opts: opts, ctx: cctx, cancel: cancel, direct: d}
	if len(branches) > 1 {
		c.seen = make(map[storage.NodeID]bool)
	}
	return c, nil
}

// directCursor pulls the operator tree of one branch at a time on the
// consumer's goroutine. Union branches evaluate sequentially (a streamed
// union has no shared scheduler — delivery is paced by the consumer).
type directCursor struct {
	db       *DB
	branches [][]xpath.Step
	bi       int
	root     core.Operator
	opened   bool
	arena    *core.Arena
	startLed stats.Ledger
	strat    Strategy
	choice   *PlanChoice
	strategd bool
	closed   bool
}

// open builds and opens the plan for the current branch. A page fault
// during open is returned as a typed error.
func (d *directCursor) open(ctx context.Context, opts QueryOptions) (ferr error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := storage.AsPageFault(r); ok {
				ferr = pe
				return
			}
			panic(r)
		}
	}()
	strat := opts.Strategy
	if !d.strategd {
		d.strategd = true
		if strat == Auto && len(d.branches) == 1 {
			ch := d.db.getChooser().Choose(d.branches[0])
			d.strat = fromCore(ch.Strategy)
			pc := fromPlanChoice(ch)
			d.choice = &pc
		} else if strat == Auto {
			d.strat = Schedule
		} else {
			d.strat = strat
		}
	}
	pe := opts.PredEval.internal()
	if pe == core.PredAuto && hasPredicates(d.branches[d.bi]) {
		if d.choice != nil && d.bi == 0 {
			pe = d.choice.PredEval.internal()
		} else {
			pe = d.db.getChooser().Choose(d.branches[d.bi]).PredEval
		}
	}
	p := core.BuildPlan(d.db.store, d.branches[d.bi], d.db.store.Roots(), d.strat.internal(),
		core.PlanOptions{MemLimit: opts.MemLimit, Ctx: ctx, Arena: d.arena, PredEval: pe})
	d.root = p.Root()
	d.root.Open()
	d.opened = true
	return nil
}

// pull advances the current branch by one match, converting the fault
// plane's typed panic into an error.
func (d *directCursor) pull() (inst core.Instance, ok bool, ferr error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, isPF := storage.AsPageFault(r); isPF {
				ferr = pe
				return
			}
			panic(r)
		}
	}()
	inst, ok = d.root.Next()
	return inst, ok, nil
}

// close releases the current plan and pooled resources, and withdraws the
// volume's in-flight cluster prefetches (a streamed plan abandoned
// mid-flight may have requests queued on the device).
func (d *directCursor) close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.opened {
		d.opened = false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isPF := storage.AsPageFault(r); !isPF {
						panic(r)
					}
				}
			}()
			d.root.Close()
		}()
	}
	d.root = nil
	d.db.store.CancelRequests()
	if d.arena != nil {
		core.PutArena(d.arena)
		d.arena = nil
	}
}

// nextDirect advances the direct cursor: open the next branch as needed,
// pull one match, dedup across union branches.
func (c *Cursor) nextDirect() bool {
	d := c.direct
	for {
		if cerr := c.ctx.Err(); cerr != nil {
			c.failDirect(cerr)
			return false
		}
		if !d.opened {
			if d.bi >= len(d.branches) {
				d.close()
				c.finishDirect()
				c.done = true
				return false
			}
			if ferr := d.open(c.ctx, c.opts); ferr != nil {
				c.failDirect(ferr)
				return false
			}
		}
		inst, ok, ferr := d.pull()
		if ferr != nil {
			c.failDirect(ferr)
			return false
		}
		if !ok {
			// A cancelled plan ends its stream early rather than erroring;
			// surface the context failure as the typed taxonomy error.
			if cerr := c.ctx.Err(); cerr != nil {
				c.failDirect(cerr)
				return false
			}
			d.opened = false
			d.root.Close()
			d.root = nil
			d.bi++
			continue
		}
		if c.seen != nil {
			if c.seen[inst.NR] {
				continue
			}
			c.seen[inst.NR] = true
		}
		c.yield(Node{db: c.db, id: inst.NR})
		return true
	}
}

func (c *Cursor) failDirect(err error) {
	c.err = wrapErr("query", c.path, err)
	c.done = true
	c.direct.close()
	c.cancel()
	c.finishDirect()
}

// finishDirect stamps the direct cursor's summary from the volume-ledger
// delta (the same accounting DB.QueryCtx reports).
func (c *Cursor) finishDirect() {
	if c.sumOK {
		return
	}
	d := c.direct
	end := c.db.store.Ledger().Snapshot()
	out := ExecResult{Strategy: d.strat, Choice: d.choice, Gang: 1}
	out.CostV = end.Now - d.startLed.Now
	out.CPUV = end.CPU - d.startLed.CPU
	out.IOWaitV = end.IOWait - d.startLed.IOWait
	out.VirtualLatency = out.CostV
	c.sum = out
	c.sumOK = true
}
