// Package plan implements the cost-based choice between the two
// I/O-performing operators — the open problem the paper names in its
// outlook (Sec. 7): "Further research is needed to create a cost model to
// support the choice of the I/O-performing operator."
//
// The model is deliberately simple and uses only statistics a storage
// engine maintains anyway (per-tag record and cluster counts):
//
//   - an XSchedule plan touches roughly the clusters that contain nodes
//     matching any of the path's node tests, paying a reordered random
//     access each;
//   - an XScan plan touches every cluster once, paying a sequential
//     transfer each, plus the CPU for speculative instances on every
//     border node and step.
//
// The crossover therefore depends on the path's physical coverage — the
// same effect the paper measures: Q7 (high coverage) wants the scan, Q15
// (low coverage) wants the scheduler, Q6' sits near the break-even point.
package plan

import (
	"fmt"
	"sync"

	"pathdb/internal/core"
	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// Estimate is the cost breakdown the chooser computed for one strategy.
type Estimate struct {
	Strategy     core.Strategy
	PagesTouched int
	Cost         stats.Ticks
}

// PredEstimate is the chooser's join-vs-nested decision detail for one
// predicate-bearing location step.
type PredEstimate struct {
	Step       int         // 1-based location step index
	Candidates int64       // estimated candidate nodes reaching the step
	Nested     stats.Ticks // per-candidate probing (PredFilter)
	Join       stats.Ticks // set-at-a-time structural semi-join (XJoin)
	Joinable   bool        // every branch expressible as a semi-join
	Cached     bool        // filter sets resident in the derived cache
}

// Choice is the chooser's full output, for explainability.
type Choice struct {
	Strategy core.Strategy
	Schedule Estimate
	Scan     Estimate
	Simple   Estimate
	Coverage float64 // fraction of clusters the path is estimated to touch

	// PredEval is the chosen predicate evaluator (PredNested when the
	// path carries no predicates); Preds holds the per-step cost detail.
	PredEval core.PredEval
	Preds    []PredEstimate
}

// String renders the decision for logs and the xpathq tool.
func (c Choice) String() string {
	s := fmt.Sprintf("choose %v (coverage %.0f%%: schedule %v, scan %v, simple %v)",
		c.Strategy, 100*c.Coverage, c.Schedule.Cost, c.Scan.Cost, c.Simple.Cost)
	for _, p := range c.Preds {
		s += fmt.Sprintf("; step %d preds → %v (C=%d: nested %v, join %v",
			p.Step, c.PredEval, p.Candidates, p.Nested, p.Join)
		if p.Cached {
			s += ", build cached"
		}
		s += ")"
	}
	return s
}

// Chooser estimates plan costs over one store. Construct with NewChooser
// (which collects document statistics in one offline pass) and reuse across
// queries; after commits, call Refresh with a current view to fold in only
// the rewritten clusters instead of re-walking the document. Safe for
// concurrent use: one chooser may be shared between the facade's blocking
// queries and the engine's dispatcher, so a volume pays for exactly one
// statistics walk.
type Chooser struct {
	mu    sync.Mutex
	store *storage.Store
	ds    *storage.DocStats

	// Incremental-refresh state: the synopsis each page last contributed
	// to ds, the store epoch those contributions describe, and the running
	// live-record total that calibrates the per-page CPU estimate.
	perPage map[vdisk.PageID]*storage.PageSynopsis
	epoch   uint64
	live    int64
}

// NewChooser gathers the statistics the cost model needs. Call before
// resetting the ledger for measurements: the collection pass is offline
// bookkeeping, not query work.
func NewChooser(store *storage.Store) *Chooser {
	c := &Chooser{
		store:   store,
		ds:      store.CollectDocStats(),
		perPage: make(map[vdisk.PageID]*storage.PageSynopsis),
		epoch:   store.VersionEpoch(),
	}
	// The statistics walk decoded every cluster, publishing its synopsis as
	// a side effect; record each page's contribution for later diffing.
	n := store.NumDataPages()
	for i := 0; i < n; i++ {
		p := store.DataPage(i)
		sy := store.EnsureSynopsis(p)
		c.perPage[p] = sy
		c.live += int64(sy.Live)
	}
	return c
}

// Refresh folds the clusters rewritten since the chooser's epoch into its
// statistics, using the per-cluster synopses the commit path registers: the
// old contribution of each changed page is retracted and the new one added.
// Tag record counts and own-page footprints stay exact; SubtreePages is
// approximated by the presence delta (the exact value is a whole-document
// structural property). view must be a current-version read view; decode
// charges for never-seen pages land on its ledger.
func (c *Chooser) Refresh(view *storage.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := view.VersionEpoch()
	if cur == c.epoch {
		return
	}
	view.WrittenSince(c.epoch, func(p vdisk.PageID, _ uint64) {
		sy := view.EnsureSynopsis(p)
		c.contribute(c.perPage[p], -1)
		c.contribute(sy, +1)
		c.perPage[p] = sy
	})
	c.ds.Pages = view.NumDataPages()
	c.store = view
	c.epoch = cur
}

// contribute adds (sign=+1) or retracts (sign=-1) one cluster synopsis'
// contribution to the document statistics.
func (c *Chooser) contribute(sy *storage.PageSynopsis, sign int) {
	if sy == nil {
		return
	}
	c.ds.Borders += sign * int(sy.Borders)
	c.live += int64(sign) * int64(sy.Live)
	for i, t := range sy.Tags {
		if t == xmltree.NoTag {
			continue // the non-element bucket carries no name
		}
		ts := c.ds.Tags[t]
		ts.Count += int64(sign) * int64(sy.TagCounts[i])
		ts.Pages += sign
		ts.SubtreePages += sign
		if ts.Count <= 0 && ts.Pages <= 0 {
			delete(c.ds.Tags, t)
			continue
		}
		// A leaf tag's subtree spans no clusters at all, so the only floor
		// is zero — clamping to the own-page footprint would inflate the
		// coverage estimate of every leaf test after a refresh.
		if ts.SubtreePages < 0 {
			ts.SubtreePages = 0
		}
		c.ds.Tags[t] = ts
	}
}

// Epoch returns the store epoch the chooser's statistics describe.
func (c *Chooser) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Choose picks the cheaper I/O-performing operator for the path and
// returns the full cost breakdown.
func (c *Chooser) Choose(path []xpath.Step) Choice {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.store.Disk().Model()
	n := c.ds.Pages
	if n == 0 {
		n = 1
	}

	touched := c.pagesTouched(path)
	coverage := float64(touched) / float64(n)
	span := int64(n)

	// CPU per visited page: decoding into the swizzled image (one node
	// visit per record) plus navigating the records once. The measured
	// average from the cluster synopses replaces the loader's nominal
	// ≈330 records per 8 KiB page once statistics exist.
	recsPerPage := stats.Ticks(330)
	if avg := c.live / int64(n); avg > 0 {
		recsPerPage = stats.Ticks(avg)
	}
	pageCPU := 2 * recsPerPage * m.CPUNodeVisit

	// XSchedule: one reordered random access per touched cluster. The
	// asynchronous queue lets the device choose among roughly
	// queueDepth pending requests, dividing the average travel distance.
	const queueDepth = 32
	reordered := m.SeekCost(span/queueDepth) + m.Transfer
	scheduleCost := stats.Ticks(touched) * (reordered + pageCPU)

	// Simple: the same clusters, but accessed in encounter order with no
	// overlap; average travel is a third of the span.
	random := m.SeekCost(span/3) + m.Transfer
	simpleCost := stats.Ticks(touched) * (random + pageCPU)

	// XScan: every cluster once, sequentially, plus speculative work per
	// border and step: each speculative instance crosses (on average half
	// of) the XStep chain and touches the R/S structures.
	perSpec := stats.Ticks(len(path))*m.CPUTupleMove/2 + 2*m.CPUNodeVisit + 2*m.CPUSetOp
	specCount := int64(c.ds.Borders) * int64(len(path))
	scanCost := stats.Ticks(n)*(m.Transfer+pageCPU) + stats.Ticks(specCount)*perSpec

	choice := Choice{
		Coverage: coverage,
		Schedule: Estimate{Strategy: core.StrategySchedule, PagesTouched: touched, Cost: scheduleCost},
		Scan:     Estimate{Strategy: core.StrategyScan, PagesTouched: n, Cost: scanCost},
		Simple:   Estimate{Strategy: core.StrategySimple, PagesTouched: touched, Cost: simpleCost},
	}
	// The paper's finding: XSchedule always dominates Simple, so the real
	// decision is schedule vs. scan.
	if scanCost < scheduleCost {
		choice.Strategy = core.StrategyScan
	} else {
		choice.Strategy = core.StrategySchedule
	}
	choice.PredEval, choice.Preds = c.predChoices(path, m)
	return choice
}

// predChoices costs the two predicate evaluators for every
// predicate-bearing step of the path. Nested (PredFilter) pays one probe
// sub-plan per candidate per branch, with border crossings turning into
// random reads; the structural join (XJoin) pays one bitmap-assisted
// whole-document enumeration per branch level plus doc-order semi-join
// merges, amortised over the whole candidate batch. The evaluator is a
// plan-wide setting, so the decision sums over all predicate steps, with
// non-joinable steps costed as nested on both sides (XJoin degenerates to
// per-candidate probes for them). Caller holds c.mu.
func (c *Chooser) predChoices(path []xpath.Step, m vdisk.CostModel) (core.PredEval, []PredEstimate) {
	var elems int64
	for _, ts := range c.ds.Tags {
		elems += ts.Count
	}
	live := float64(c.live)
	if live < 1 {
		live = 1
	}
	// Average fanout calibrates child-step probe walks; a candidate's
	// subtree share calibrates descendant-step walks.
	fanout := live / float64(max64(elems, 1))
	if fanout < 2 {
		fanout = 2
	}
	crossRate := float64(c.ds.Borders) / live // chance one probe hop leaves the cluster
	random := float64(m.SeekCost(int64(max64(int64(c.ds.Pages), 1))/3) + m.Transfer)

	var out []PredEstimate
	var totalNested, totalJoin float64
	anyJoinable := false
	for si, s := range path {
		if len(s.Predicates) == 0 {
			continue
		}
		cands := float64(c.testCount(s.Test))
		if cands < 1 {
			cands = 1
		}
		est := PredEstimate{Step: si + 1, Candidates: int64(cands), Joinable: true, Cached: true}
		var nested, join float64
		for _, p := range s.Predicates {
			if !core.JoinCompatible(p) {
				est.Joinable = false
			}
			// A filter set already resident in the derived cache (built by an
			// earlier join over the same version) costs nothing to rebuild:
			// charge only the merges, the way buffer-aware optimizers discount
			// resident pages. The differential suites pin that a cached set is
			// exactly what a fresh build would produce.
			cached := core.JoinBuildCached(c.store, p)
			est.Cached = est.Cached && cached
			for _, branch := range p.Paths {
				steps := branch.Simplify().Steps
				// Identity self::node() steps (the "." in ".//a") navigate
				// nowhere and join no level — skip them, as XJoin does.
				kept := steps[:0:0]
				for _, bs := range steps {
					if bs.Axis == xpath.Self && bs.Test.Kind == xpath.KindAny && len(bs.Predicates) == 0 {
						continue
					}
					kept = append(kept, bs)
				}
				steps = kept
				// Nested: per candidate, sub-plan setup plus the walk —
				// child steps visit the fanout, descendant steps the
				// candidate's subtree.
				subtree := live / cands
				if subtree < fanout {
					subtree = fanout
				}
				walk := float64(4*m.CPUTupleMove + 2*m.CPUSetOp)
				for _, bs := range steps {
					visits := fanout
					switch bs.Axis {
					case xpath.Descendant, xpath.DescendantOrSelf:
						visits = subtree
					}
					walk += visits*float64(m.CPUNodeVisit) + crossRate*random
				}
				nested += cands * walk
				// Join: one document enumeration per level — the virtual
				// clock charges a node visit per live record even under the
				// bitmap scan (it models the paper's node-at-a-time system)
				// — with D_j survivors moved into the filter set, then the
				// doc-order merges.
				var d1 float64
				for li, bs := range steps {
					dj := float64(c.testCount(bs.Test))
					if li == 0 {
						d1 = dj
					}
					if !cached {
						join += live*float64(m.CPUNodeVisit) +
							dj*float64(m.CPUTupleMove+m.CPUSetOp)
					}
				}
				join += (cands + d1) * float64(m.CPUSetOp)
			}
		}
		est.Nested = stats.Ticks(nested)
		est.Join = stats.Ticks(join)
		out = append(out, est)
		totalNested += nested
		if est.Joinable {
			anyJoinable = true
			totalJoin += join
		} else {
			totalJoin += nested
		}
	}
	pred := core.PredNested
	if anyJoinable && totalJoin < totalNested {
		pred = core.PredJoin
	}
	return pred, out
}

// testCount estimates how many document nodes match the node test; name
// tests read the synopsis tag counts, everything else conservatively
// assumes the whole document.
func (c *Chooser) testCount(t xpath.NodeTest) int64 {
	if !t.AnyName && t.Kind == xpath.KindElement {
		var n int64
		for _, tag := range t.Tags {
			n += c.ds.Tags[tag].Count
		}
		return n
	}
	return c.live
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// pagesTouched estimates how many clusters the path evaluation must load.
// It tracks the subtree coverage of the running context set (as a fraction
// of all clusters): a recursive step must traverse that whole subtree,
// while a non-recursive step only touches the clusters holding elements
// matching its name test, bounded by the current coverage. Name tests
// shrink the coverage to the tested tag's subtree footprint.
func (c *Chooser) pagesTouched(path []xpath.Step) int {
	n := float64(c.ds.Pages)
	frac := 1.0 // subtree coverage of the current context set
	touched := 1.0
	for _, s := range path {
		candidate := touched
		switch s.Axis {
		case xpath.Descendant, xpath.DescendantOrSelf:
			candidate = frac * n
		default:
			if !s.Test.AnyName && s.Test.Kind == xpath.KindElement {
				own := 0.0
				for _, tag := range s.Test.Tags {
					own += float64(c.ds.Tags[tag].Pages)
				}
				candidate = minf(own, frac*n)
			}
		}
		if candidate > touched {
			touched = candidate
		}
		// The context set narrows to nodes passing the test.
		if !s.Test.AnyName && s.Test.Kind == xpath.KindElement {
			sub := 0.0
			for _, tag := range s.Test.Tags {
				sub += float64(c.ds.Tags[tag].SubtreePages)
			}
			frac = minf(frac, sub/n)
		}
	}
	if touched > n {
		touched = n
	}
	if touched < 1 {
		touched = 1
	}
	return int(touched + 0.5)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Build compiles the path with the chosen strategy — the convenience entry
// point used by the pathdb facade.
func (c *Chooser) Build(path []xpath.Step, contexts []storage.NodeID, opts core.PlanOptions) (*core.Plan, Choice) {
	choice := c.Choose(path)
	if opts.PredEval == core.PredAuto {
		opts.PredEval = choice.PredEval
	}
	c.mu.Lock()
	st := c.store
	c.mu.Unlock()
	return core.BuildPlan(st, path, contexts, choice.Strategy, opts), choice
}
