package pathdb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestUpdateBasic drives the facade transaction API: staged mutations are
// invisible until commit, visible after, and an aborted transaction leaves
// the volume untouched.
func TestUpdateBasic(t *testing.T) {
	db := engineFixture(t)
	root := mustOne(t, db, "/site")

	if n := countPath(t, db, "/site/probe"); n != 0 {
		t.Fatalf("fresh volume has %d probes", n)
	}
	var inserted Node
	err := db.Update(func(tx *Tx) error {
		n, err := tx.InsertXML(root, `<probe kind='a'><sub/></probe>`)
		if err != nil {
			return err
		}
		inserted = n
		// Not yet visible to queries: the version publishes at commit.
		if c := countPath(t, db, "/site/probe"); c != 0 {
			return fmt.Errorf("uncommitted insert visible: %d", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := countPath(t, db, "/site/probe"); n != 1 {
		t.Fatalf("after commit: %d probes, want 1", n)
	}
	if name := inserted.Name(); name != "probe" {
		t.Fatalf("inserted handle resolves to %q", name)
	}

	boom := errors.New("boom")
	err = db.Update(func(tx *Tx) error {
		if _, err := tx.InsertXML(root, "<probe/>"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("abort error: %v", err)
	}
	if n := countPath(t, db, "/site/probe"); n != 1 {
		t.Fatalf("aborted insert leaked: %d probes", n)
	}

	if err := db.Update(func(tx *Tx) error { return tx.Delete(inserted) }); err != nil {
		t.Fatal(err)
	}
	if n := countPath(t, db, "/site/probe"); n != 0 {
		t.Fatalf("after delete: %d probes, want 0", n)
	}

	// Deleting the same node again hits ErrGone.
	err = db.Update(func(tx *Tx) error { return tx.Delete(inserted) })
	if !errors.Is(err, ErrGone) {
		t.Fatalf("double delete: %v, want ErrGone", err)
	}
}

// TestUpdateMixedWorkloadUnderFaults is the subsystem's integration gauntlet:
// 8 readers and 2 writers race through the engine while the fault plane
// injects read errors and latency spikes. Every transaction inserts TWO
// probe elements, so any reader observing an odd count has seen a torn
// snapshot. Afterwards the engine must shut down without leaking goroutines.
func TestUpdateMixedWorkloadUnderFaults(t *testing.T) {
	g0 := runtime.NumGoroutine()
	db := engineFixture(t)
	eng := db.NewEngine(EngineConfig{MaxInFlight: 8})
	root := mustOne(t, db, "/site")

	db.SetFaults(FaultConfig{Seed: 11, ReadError: 0.02, Latency: 0.05})

	const writers, perWriter, readers, perReader = 2, 8, 8, 12
	var commits int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				err := eng.Update(func(tx *Tx) error {
					if _, err := tx.InsertXML(root, fmt.Sprintf("<probe w='%d' i='%d'/>", w, i)); err != nil {
						return err
					}
					_, err := tx.InsertXML(root, fmt.Sprintf("<probe w='%d' i='%d' twin='1'/>", w, i))
					return err
				})
				if err != nil {
					// A typed storage fault aborts this transaction only;
					// atomicity means no half-inserted pair either way.
					if k := KindOf(err); k == KindIO || k == KindCorrupt {
						continue
					}
					errs <- fmt.Errorf("writer %d commit %d: %w", w, i, err)
					return
				}
				mu.Lock()
				commits++
				mu.Unlock()
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ses := eng.NewSession()
			last := -1
			for i := 0; i < perReader; i++ {
				res, err := ses.Do(context.Background(), "/site/probe", QueryOptions{})
				if err != nil {
					if k := KindOf(err); k == KindIO || k == KindCorrupt {
						continue
					}
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				n := res.Count()
				if n%2 != 0 {
					errs <- fmt.Errorf("reader %d saw a torn snapshot: %d probes (odd)", r, n)
					return
				}
				if n < last {
					errs <- fmt.Errorf("reader %d went back in time: %d after %d", r, n, last)
					return
				}
				last = n
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	db.SetFaults(FaultConfig{})

	if n := countPath(t, db, "/site/probe"); int64(n) != 2*commits {
		t.Errorf("final probe count %d, want %d (2 per commit)", n, 2*commits)
	}
	tm := db.TxnMetrics()
	if int64(tm.Commits) != commits {
		t.Errorf("TxnMetrics.Commits = %d, want %d", tm.Commits, commits)
	}
	if tm.Commits > 1 && tm.Flushes > tm.Commits {
		t.Errorf("group commit regressed: %d flushes for %d commits", tm.Flushes, tm.Commits)
	}

	eng.Close()
	// The engine's dispatcher and workers must be gone; give the runtime a
	// moment to retire them before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > g0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > g0 {
		t.Errorf("goroutine leak: %d before, %d after shutdown", g0, g)
	}
	if tm := db.TxnMetrics(); tm.Pinned != 0 {
		t.Errorf("%d snapshots still pinned after drain", tm.Pinned)
	}
}

// TestUpdateSerializesChooser: commits invalidate the plan chooser; auto
// queries racing rebuilds must stay consistent.
func TestUpdateSerializesChooser(t *testing.T) {
	db := engineFixture(t)
	root := mustOne(t, db, "/site")
	want := countPath(t, db, "/site/regions//item")

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := db.Update(func(tx *Tx) error {
					_, err := tx.InsertXML(root, "<pad/>")
					return err
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if got := countPath(t, db, "/site/regions//item"); got != want {
					errs <- fmt.Errorf("count drifted under updates: %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// mustOne resolves a path expected to match exactly one node.
func mustOne(t *testing.T, db *DB, path string) Node {
	t.Helper()
	q, err := db.Query(path)
	if err != nil {
		t.Fatal(err)
	}
	nodes := q.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("%s matched %d nodes, want 1", path, len(nodes))
	}
	return nodes[0]
}

func countPath(t *testing.T, db *DB, path string) int {
	t.Helper()
	q, err := db.Query(path)
	if err != nil {
		t.Fatal(err)
	}
	return q.Count()
}
