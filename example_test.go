package pathdb_test

import (
	"fmt"
	"log"

	"pathdb"
)

// The basic flow: load, query, read results.
func Example() {
	db, err := pathdb.LoadXMLString(
		`<library><book year="1993">Query Evaluation</book>`+
			`<book year="2004">ORDPATHs</book></library>`, pathdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.Query("/library/book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books:", q.Count())
	for _, b := range q.Sorted().Nodes() {
		fmt.Println(b.Text())
	}
	// Output:
	// books: 2
	// Query Evaluation
	// ORDPATHs
}

// Predicates filter by nested paths and string values.
func ExampleQuery_predicates() {
	db, _ := pathdb.LoadXMLString(
		`<shop><item><price>10</price></item><item><price>20</price></item></shop>`,
		pathdb.Options{})
	q, _ := db.Query(`/shop/item[price="10"]`)
	fmt.Println(q.Count())
	// Output: 1
}

// Unions merge node sets, deduplicated.
func ExampleQuery_union() {
	db, _ := pathdb.LoadXMLString(`<a><b/><c/><b/></a>`, pathdb.Options{})
	q, _ := db.Query(`/a/b | /a/c | //b`)
	fmt.Println(q.Count())
	// Output: 3
}

// Every query can be forced onto one of the paper's three physical
// strategies; results never change, only the physical cost does.
func ExampleQuery_withStrategy() {
	db, _ := pathdb.LoadXMLString(`<a><b/><b/></a>`, pathdb.Options{})
	for _, s := range []pathdb.Strategy{pathdb.Simple, pathdb.Schedule, pathdb.Scan} {
		q, _ := db.Query("/a/b")
		fmt.Println(s, q.WithStrategy(s).Count())
	}
	// Output:
	// simple 2
	// xschedule 2
	// xscan 2
}

// Plan prints the physical operator tree (EXPLAIN).
func ExampleQuery_plan() {
	db, _ := pathdb.LoadXMLString(`<a><b/></a>`, pathdb.Options{})
	q, _ := db.Query("/a/descendant::b")
	fmt.Print(q.WithStrategy(pathdb.Scan).Plan())
	// Output:
	// XAssembly(|π|=2, feedback→none (scan plan))
	//   XStep₂(descendant::b)
	//     XStep₁(child::a)
	//       XScan(1 clusters, sequential)
	//         Context(1 nodes)
}

// Relative queries start from a previously found node.
func ExampleNode_Query() {
	db, _ := pathdb.LoadXMLString(`<a><b><c>x</c></b><b/></a>`, pathdb.Options{})
	q, _ := db.Query("/a/b")
	first := q.Sorted().Nodes()[0]
	sub, _ := first.Query("c")
	fmt.Println(sub.Count())
	// Output: 1
}

// Updates insert parsed fragments without disturbing existing nodes.
func ExampleDB_InsertXML() {
	db, _ := pathdb.LoadXMLString(`<inv><item n="a"/></inv>`, pathdb.Options{})
	q, _ := db.Query("/inv")
	root := q.Nodes()[0]
	if _, err := db.InsertXML(root, `<item n="b"/>`); err != nil {
		log.Fatal(err)
	}
	q, _ = db.Query("/inv/item")
	fmt.Println(q.Count())
	// Output: 2
}
