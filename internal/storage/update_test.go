package storage

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// insertAtShadow mirrors an InsertSubtree call on the logical shadow tree.
func insertAtShadow(parent *xmltree.Node, before *xmltree.Node, frag *xmltree.Node) {
	if before == nil {
		parent.AppendChild(frag)
		return
	}
	for i, ch := range parent.Children {
		if ch == before {
			frag.Parent = parent
			parent.Children = append(parent.Children[:i],
				append([]*xmltree.Node{frag}, parent.Children[i:]...)...)
			return
		}
	}
	panic("before not found in shadow")
}

func deleteFromShadow(n *xmltree.Node) {
	p := n.Parent
	for i, ch := range p.Children {
		if ch == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			return
		}
	}
	panic("node not found in shadow")
}

// cloneTree deep-copies a logical subtree (Import consumes the original).
func cloneTree(n *xmltree.Node) *xmltree.Node {
	cp := &xmltree.Node{Kind: n.Kind, Tag: n.Tag, Text: n.Text}
	for _, a := range n.Attrs {
		cp.SetAttr(a.Tag, a.Text)
	}
	for _, ch := range n.Children {
		cp.AppendChild(cloneTree(ch))
	}
	return cp
}

func TestInsertAppendSimple(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").Leaf("b", "one").End()
	doc := b.Doc()
	shadow := cloneTree(doc)
	st := importDoc(t, doc, dict, 8192, LayoutContiguous)

	// Find <a>.
	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Child, xpath.Wildcard())
	a, _ := it.Next()

	frag := xmltree.NewElement(dict.Intern("c"))
	frag.AppendChild(xmltree.NewText("two"))
	id, err := st.InsertSubtree(a.ID(), InvalidNodeID, frag)
	if err != nil {
		t.Fatal(err)
	}
	if st.Swizzle(id).Tag() != dict.Intern("c") {
		t.Fatal("inserted node not addressable")
	}
	shadow.Children[0].AppendChild(cloneTree(frag))
	if !xmltree.Equal(shadow, st.Export()) {
		t.Fatalf("export mismatch after append:\n%v", st.Export())
	}
}

func TestInsertBeforeKeepsOrder(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").Leaf("x", "1").Leaf("x", "3").End()
	doc := b.Doc()
	st := importDoc(t, doc, dict, 8192, LayoutContiguous)

	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Child, xpath.Wildcard())
	a, _ := it.Next()
	// Second child of <a> is <x>3</x>.
	var kids []Cursor
	it = st.Step(a, xpath.Child, xpath.Wildcard())
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		kids = append(kids, c)
	}
	if len(kids) != 2 {
		t.Fatalf("kids = %d", len(kids))
	}

	frag := xmltree.NewElement(dict.Intern("x"))
	frag.AppendChild(xmltree.NewText("2"))
	if _, err := st.InsertSubtree(a.ID(), kids[1].ID(), frag); err != nil {
		t.Fatal(err)
	}
	got := st.Export()
	var texts []string
	got.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Text {
			texts = append(texts, n.Text)
		}
		return true
	})
	if strings.Join(texts, "") != "123" {
		t.Fatalf("order after insert = %v", texts)
	}
}

func TestDeleteSubtree(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").
		Begin("b").Leaf("c", "deep").End().
		Leaf("d", "keep").
		End()
	doc := b.Doc()
	st := importDoc(t, doc, dict, 8192, LayoutContiguous)

	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Descendant, xpath.NameTest(dict.Intern("b")))
	bNode, ok := it.Next()
	if !ok {
		t.Fatal("b not found")
	}
	if err := st.DeleteSubtree(bNode.ID()); err != nil {
		t.Fatal(err)
	}
	got := st.Export()
	if got.CountTag(dict.Intern("b")) != 0 || got.CountTag(dict.Intern("c")) != 0 {
		t.Fatal("subtree not deleted")
	}
	if got.CountTag(dict.Intern("d")) != 1 {
		t.Fatal("sibling lost")
	}
}

func TestDeleteGuards(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").End()
	st := importDoc(t, b.Doc(), dict, 8192, LayoutContiguous)
	if err := st.DeleteSubtree(st.Root()); err == nil {
		t.Fatal("deleted document node")
	}
	if _, err := st.InsertSubtree(st.Root().WithAttr(0), InvalidNodeID, xmltree.NewText("x")); err == nil {
		t.Fatal("inserted under an attribute")
	}
}

func TestInsertOverflowsToFreshPages(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a")
	for i := 0; i < 10; i++ {
		b.Leaf("x", strings.Repeat("f", 30))
	}
	b.End()
	doc := b.Doc()
	st := importDoc(t, doc, dict, 512, LayoutContiguous)
	before := st.NumDataPages()

	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Child, xpath.Wildcard())
	a, _ := it.Next()
	aID := a.ID()

	// Insert a fragment far larger than one page.
	frag := xmltree.NewElement(dict.Intern("big"))
	for i := 0; i < 60; i++ {
		e := xmltree.NewElement(dict.Intern("y"))
		e.AppendChild(xmltree.NewText(strings.Repeat("z", 20)))
		frag.AppendChild(e)
	}
	if _, err := st.InsertSubtree(aID, InvalidNodeID, cloneTree(frag)); err != nil {
		t.Fatal(err)
	}
	if st.NumDataPages() <= before {
		t.Fatal("no extension pages allocated")
	}
	got := st.Export()
	if got.CountTag(dict.Intern("y")) != 60 {
		t.Fatalf("y count = %d", got.CountTag(dict.Intern("y")))
	}
}

func TestUpdatesPersistAcrossOpen(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("a").Leaf("b", "1").End()
	doc := b.Doc()
	disk := newDisk(512)
	st, err := Import(disk, dict, doc, ImportOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Child, xpath.Wildcard())
	a, _ := it.Next()
	frag := xmltree.NewElement(dict.Intern("big"))
	for i := 0; i < 40; i++ {
		frag.AppendChild(xmltree.NewText(strings.Repeat("q", 30)))
	}
	if _, err := st.InsertSubtree(a.ID(), InvalidNodeID, frag); err != nil {
		t.Fatal(err)
	}
	want := st.Export()

	st2, err := Open(disk)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumDataPages() != st.NumDataPages() {
		t.Fatalf("extension pages lost: %d vs %d", st2.NumDataPages(), st.NumDataPages())
	}
	if !xmltree.Equal(want, st2.Export()) {
		t.Fatal("updates lost after reopen")
	}
}

// TestRandomUpdateSequence applies a random interleaving of inserts and
// deletes against both the store and a logical shadow tree, comparing the
// export after every few operations and at the end.
func TestRandomUpdateSequence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dict, doc := buildTree(seed^0xDEAD, 60)
		shadow := cloneTree(doc)
		st := importDoc(t, doc, dict, 512, LayoutShuffled)
		tags := []xmltree.TagID{dict.Intern("a"), dict.Intern("b"), dict.Intern("n1"), dict.Intern("n2")}

		// liveNodes pairs logical shadow nodes with stored NodeIDs by a
		// parallel walk (exports are equal, so positions correspond).
		type pair struct {
			shadow *xmltree.Node
			id     NodeID
		}
		collect := func() []pair {
			var out []pair
			var walk func(sn *xmltree.Node, c Cursor)
			walk = func(sn *xmltree.Node, c Cursor) {
				out = append(out, pair{sn, c.ID()})
				var storedKids []Cursor
				var gather func(cc Cursor)
				gather = func(cc Cursor) {
					for _, slot := range cc.rec().children {
						ch := Cursor{st: st, img: cc.img, page: cc.page, slot: slot, attr: -1}
						if ch.rec().kind == RecProxyChild {
							gather(st.Swizzle(ch.rec().target))
							continue
						}
						storedKids = append(storedKids, ch)
					}
				}
				gather(c)
				if len(storedKids) != len(sn.Children) {
					panic(fmt.Sprintf("shadow divergence: %d vs %d children", len(storedKids), len(sn.Children)))
				}
				for i, ch := range sn.Children {
					walk(ch, storedKids[i])
				}
			}
			rootCur := st.Swizzle(st.Root())
			// Document node.
			var kids []Cursor
			for _, slot := range rootCur.rec().children {
				ch := Cursor{st: st, img: rootCur.img, page: rootCur.page, slot: slot, attr: -1}
				if ch.rec().kind == RecProxyChild {
					ch = st.Swizzle(ch.rec().target)
					// fragment under anchor: single chain
					ch = Cursor{st: st, img: ch.img, page: ch.page, slot: ch.rec().children[0], attr: -1}
				}
				kids = append(kids, ch)
			}
			for i, ch := range shadow.Children {
				walk(ch, kids[i])
			}
			return out
		}

		for op := 0; op < 12; op++ {
			pairs := collect()
			// Pick an element pair for the operation.
			var elems []pair
			for _, p := range pairs {
				if p.shadow.Kind == xmltree.Element {
					elems = append(elems, p)
				}
			}
			if len(elems) == 0 {
				break
			}
			pk := elems[r.Intn(len(elems))]
			switch {
			case r.Bool(0.6):
				// Insert a small random fragment.
				frag := xmltree.NewElement(tags[r.Intn(len(tags))])
				if r.Bool(0.5) {
					frag.AppendChild(xmltree.NewText("ins"))
				}
				if r.Bool(0.3) {
					frag.AppendChild(xmltree.NewElement(tags[r.Intn(len(tags))]))
				}
				var beforeShadow *xmltree.Node
				before := InvalidNodeID
				if n := len(pk.shadow.Children); n > 0 && r.Bool(0.5) {
					// Choose an existing child as the insertion point.
					ci := r.Intn(n)
					beforeShadow = pk.shadow.Children[ci]
					// Find its NodeID from pairs.
					for _, p := range pairs {
						if p.shadow == beforeShadow {
							before = p.id
							break
						}
					}
				}
				if _, err := st.InsertSubtree(pk.id, before, cloneTree(frag)); err != nil {
					t.Logf("seed %d insert: %v", seed, err)
					return false
				}
				if beforeShadow == nil {
					insertAtShadow(pk.shadow, nil, cloneTree(frag))
				} else {
					insertAtShadow(pk.shadow, beforeShadow, cloneTree(frag))
				}
			case pk.shadow.Parent != nil && pk.shadow.Parent.Kind != xmltree.Document:
				if err := st.DeleteSubtree(pk.id); err != nil {
					t.Logf("seed %d delete: %v", seed, err)
					return false
				}
				deleteFromShadow(pk.shadow)
			}
			if !xmltree.Equal(shadow, st.Export()) {
				t.Logf("seed %d diverged after op %d", seed, op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesCorrectAfterUpdates runs all three plan strategies against an
// updated document and compares with the logical reference.
func TestQueriesCorrectAfterUpdates(t *testing.T) {
	dict, doc := buildTree(5, 80)
	shadow := cloneTree(doc)
	st := importDoc(t, doc, dict, 512, LayoutNatural)

	// Append a recognisable fragment under the root element.
	rootCur := st.Swizzle(st.Root())
	it := st.Step(rootCur, xpath.Child, xpath.Wildcard())
	rootElem, _ := it.Next()
	frag := xmltree.NewElement(dict.Intern("fresh"))
	for i := 0; i < 30; i++ {
		e := xmltree.NewElement(dict.Intern("b"))
		e.AppendChild(xmltree.NewText("new"))
		frag.AppendChild(e)
	}
	if _, err := st.InsertSubtree(rootElem.ID(), InvalidNodeID, cloneTree(frag)); err != nil {
		t.Fatal(err)
	}
	shadow.Children[0].AppendChild(cloneTree(frag))

	// Logical reference count of //b.
	want := 0
	shadow.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && n.Tag == dict.Intern("b") {
			want++
		}
		return true
	})

	test := xpath.NameTest(dict.Intern("b"))
	for _, axis := range []xpath.Axis{xpath.Descendant} {
		got := len(evalStepFull(st, st.Swizzle(st.Root()), axis, test))
		if got != want {
			t.Fatalf("descendant count after update = %d, want %d", got, want)
		}
	}
}
