package storage

import (
	"fmt"
	"strings"
	"testing"

	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// saturate inserts children under parent until the count is reached,
// forcing every overflow mechanism (dedicated proxies, sibling spills,
// subtree relocation, child-list tail splits).
func saturate(t *testing.T, st *Store, dict *xmltree.Dictionary, parent NodeID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e := xmltree.NewElement(dict.Intern("ins"))
		e.SetAttr(dict.Intern("n"), fmt.Sprintf("%d", i))
		e.AppendChild(xmltree.NewText("payload"))
		if _, err := st.InsertSubtree(parent, InvalidNodeID, e); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func TestInsertSaturationForcesPageSplits(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root")
	// Pre-fill so the root's page has little slack.
	for i := 0; i < 6; i++ {
		b.Leaf("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	}
	b.End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)

	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	rootID := rootElem.ID()

	// 300 inserts into a 512-byte page: hundreds of proxies cannot fit, so
	// tail splits must kick in repeatedly.
	saturate(t, st, dict, rootID, 300)

	got := st.Export()
	if c := got.CountTag(dict.Intern("ins")); c != 300 {
		t.Fatalf("ins count = %d, want 300", c)
	}
	if c := got.CountTag(dict.Intern("pad")); c != 6 {
		t.Fatalf("pad count = %d, want 6", c)
	}
	// Document order: inserted items must appear in insertion order.
	var last int = -1
	nTag := dict.Intern("n")
	got.Walk(func(m *xmltree.Node) bool {
		if m.Kind == xmltree.Element && m.Tag == dict.Intern("ins") {
			var v int
			fmt.Sscanf(m.Attrs[0].Text, "%d", &v)
			if m.Attrs[0].Tag != nTag || v != last+1 {
				t.Fatalf("insertion order broken: got %d after %d", v, last)
			}
			last = v
		}
		return true
	})

	// Every plan strategy still returns the same counts after the churn.
	steps := xpath.MustParse(dict, "//ins").Simplify().Steps
	for _, strat := range []string{"full-eval"} {
		_ = strat
		cnt := len(evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("ins"))))
		if cnt != 300 {
			t.Fatalf("navigation count = %d", cnt)
		}
	}
	_ = steps
}

func TestInsertBeforeUnderSaturation(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root").Leaf("anchor", "zzz").End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)

	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	rootID := rootElem.ID()

	// Keep inserting *before* the anchor; ord keys deepen via Between and
	// pages split around the anchor. Page splits may relocate records and
	// invalidate previously obtained NodeIDs, so the anchor is re-resolved
	// each round (the documented usage contract).
	for i := 0; i < 120; i++ {
		anchors := evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("anchor")))
		if len(anchors) != 1 {
			t.Fatalf("anchor lost at round %d", i)
		}
		e := xmltree.NewElement(dict.Intern("pre"))
		e.AppendChild(xmltree.NewText(fmt.Sprintf("%03d", i)))
		if _, err := st.InsertSubtree(rootID, anchors[0].ID(), e); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got := st.Export()
	kids := got.Children[0].Children
	if len(kids) != 121 {
		t.Fatalf("children = %d", len(kids))
	}
	if dict.Name(kids[len(kids)-1].Tag) != "anchor" {
		t.Fatal("anchor no longer last")
	}
	// Inserted nodes kept insertion order before the anchor.
	for i := 0; i < 120; i++ {
		if got := kids[i].TextContent(); got != fmt.Sprintf("%03d", i) {
			t.Fatalf("position %d holds %q", i, got)
		}
	}
}

func TestRelocationPreservesProxyCompanions(t *testing.T) {
	// Build a document whose root page contains proxies to child clusters,
	// then force relocation: the moved proxies' companions must be
	// repointed so cross-cluster navigation still works.
	dict, doc := buildTree(31, 200)
	st := importDoc(t, doc, dict, 512, LayoutContiguous)
	wantBefore := st.Export()

	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	saturate(t, st, dict, rootElem.ID(), 150)

	got := st.Export()
	if got.CountTag(dict.Intern("ins")) != 150 {
		t.Fatal("inserts lost")
	}
	// All original nodes survive (compare sizes minus insertions).
	wantSize := wantBefore.Size() + 150*3 // elem + attr + text per insert
	if got.Size() != wantSize {
		t.Fatalf("size = %d, want %d", got.Size(), wantSize)
	}
	// Cross-border navigation reaches every non-attribute node.
	attrs := got.Count(func(n *xmltree.Node) bool { return n.Kind == xmltree.Attribute })
	st.ResetForRun()
	n := len(evalStepFull(st, st.Swizzle(st.Root()), xpath.DescendantOrSelf, xpath.AnyNode()))
	if n != wantSize-attrs {
		t.Fatalf("navigation reached %d nodes, want %d", n, wantSize-attrs)
	}
}

func TestExportSubtreeAfterChurn(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root").Begin("keep").Leaf("v", "1").End().End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)
	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	saturate(t, st, dict, rootElem.ID(), 80)

	all := evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("keep")))
	if len(all) != 1 {
		t.Fatalf("keep not found: %d", len(all))
	}
	keepCur := all[0]
	sub := st.ExportSubtree(keepCur.ID())
	if sub.TextContent() != "1" {
		t.Fatalf("subtree export = %q", sub.TextContent())
	}
}

func TestDeleteAfterSaturationReclaimsSlots(t *testing.T) {
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root").End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)
	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	rootID := rootElem.ID()
	saturate(t, st, dict, rootID, 60)

	// Delete every inserted element.
	for {
		cands := evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("ins")))
		if len(cands) == 0 {
			break
		}
		if err := st.DeleteSubtree(cands[0].ID()); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Export()
	if got.CountTag(dict.Intern("ins")) != 0 {
		t.Fatal("inserts remain")
	}
	// Reinsert into reclaimed space; still correct.
	saturate(t, st, dict, rootID, 30)
	if st.Export().CountTag(dict.Intern("ins")) != 30 {
		t.Fatal("reinsert failed")
	}
}

func TestExportScanAfterUpdates(t *testing.T) {
	// The scan export must skip WAL pages and include extension pages.
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root").Leaf("seed", "s").End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutContiguous)
	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	saturate(t, st, dict, rootElem.ID(), 120)

	want := xmlwriteString(dict, st.Export())
	var sb strings.Builder
	if err := st.ExportScanXML(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("scan export diverged after updates:\nwant %.200s\ngot  %.200s", want, sb.String())
	}
}

func TestQueriesAllStrategiesAfterUpdates(t *testing.T) {
	// Full plan-equivalence check on an updated volume: extension pages
	// participate in scans and scheduling alike.
	dict := xmltree.NewDictionary()
	b := xmltree.NewBuilder(dict)
	b.Begin("root").End()
	st := importDoc(t, b.Doc(), dict, 512, LayoutNatural)
	rootElem, _ := st.Step(st.Swizzle(st.Root()), xpath.Child, xpath.Wildcard()).Next()
	saturate(t, st, dict, rootElem.ID(), 200)

	// Plan-level equivalence lives in core; here assert navigation + scan
	// page coverage agree on the updated volume.
	navCount := len(evalStepFull(st, st.Swizzle(st.Root()), xpath.Descendant, xpath.NameTest(dict.Intern("ins"))))
	if navCount != 200 {
		t.Fatalf("navigation count = %d", navCount)
	}
	// Every extension page is reachable through the scan directory.
	seen := 0
	for i := 0; i < st.NumDataPages(); i++ {
		st.LoadCluster(st.DataPage(i))
		seen++
	}
	if seen != st.NumDataPages() {
		t.Fatal("scan directory incomplete")
	}
}
