package core

import "pathdb/internal/stats"

// XScan is the scan-based I/O-performing operator (Sec. 5.4.3): it reads
// every cluster of the document exactly once, in physical order, with
// sequential I/O. For each cluster it first returns the producer's context
// instances located there (the producer must be sorted by cluster), then
// speculatively generates one left-incomplete instance per border node and
// step, so that all information relevant to the path is extracted in this
// single visit — no cluster is ever visited twice.
//
// In fallback mode (Sec. 5.4.6) the scan restarts its producer and becomes
// the identity: the Unnest-Map behaviour of the XStep chain re-evaluates
// the whole path, with XAssembly's R preventing duplicate results.
type XScan struct {
	es       *EvalState
	producer Operator

	n   int
	idx int

	pending  []Instance
	pendHead int // dequeue position within pending
	peeked   Instance
	hasPeek  bool
	prodEOF  bool

	fbStarted bool
}

// NewXScan builds the operator over every data page of the store, in
// physical scan order (the bulk-load range followed by update extensions).
func NewXScan(es *EvalState, producer Operator) *XScan {
	return &XScan{es: es, producer: producer, n: es.Store.NumDataPages()}
}

// Open opens the producer and rewinds the scan.
func (x *XScan) Open() {
	x.producer.Open()
	x.idx = 0
	x.pending = x.es.Arena.takePending()
	x.pendHead = 0
	x.hasPeek = false
	x.prodEOF = false
	x.fbStarted = false
}

// Close closes the producer and returns the pending buffer to the arena.
func (x *XScan) Close() {
	x.producer.Close()
	x.es.Arena.putPending(x.pending)
	x.pending = nil
}

// enterFallback implements the fallbackAware reaction (Sec. 5.4.6):
// restart the producer and stop scanning; Next becomes the identity on the
// producer.
func (x *XScan) enterFallback() {
	if x.fbStarted {
		return
	}
	x.fbStarted = true
	x.es.Arena.putPending(x.pending)
	x.pending = nil
	x.pendHead = 0
	x.hasPeek = false
	if r, ok := x.producer.(interface{ Rewind() }); ok {
		r.Rewind()
		x.prodEOF = false
	}
}

// Next returns the producer's instances and the speculative instances, one
// cluster at a time, scanning sequentially.
func (x *XScan) Next() (Instance, bool) {
	if x.es.Cancelled() {
		return Instance{}, false
	}
	if x.es.Fallback() && !x.fbStarted {
		x.enterFallback()
	}
	if x.fbStarted {
		in, ok := x.producer.Next()
		if ok {
			x.es.chargeTuple()
		}
		return in, ok
	}
	for {
		if x.pendHead < len(x.pending) {
			out := x.pending[x.pendHead]
			x.pendHead++
			x.es.chargeTuple()
			return out, true
		}
		// Drained: rewind the buffer so the next cluster's batch reuses
		// the full backing array instead of the shrinking tail.
		x.pending = x.pending[:0]
		x.pendHead = 0
		if x.idx >= x.n {
			// All clusters scanned. Any remaining producer instances would
			// violate the sorted-input contract; drain them defensively so
			// no context is silently lost.
			if in, ok := x.next(); ok {
				x.es.chargeTuple()
				return in, true
			}
			return Instance{}, false
		}
		page := x.es.Store.DataPage(x.idx)
		x.idx++
		x.es.Store.LoadCluster(page) // sequential read
		stats.Inc(&x.es.ledger().ClustersVisited)

		// Context instances located in this cluster come first.
		for {
			in, ok := x.peek()
			if !ok || in.NR.Page() != page {
				break
			}
			x.take()
			x.pending = append(x.pending, in)
		}
		// Then the speculative left-incomplete instances (Sec. 5.4.3.2):
		// one per border node and step 0 ≤ i < |π|.
		pathLen := x.es.Len()
		for _, b := range x.es.Store.BordersOf(page) {
			for i := 0; i < pathLen; i++ {
				x.pending = append(x.pending, Instance{SL: i, NL: b, NLBorder: true, SR: i, NR: b, NRBorder: true})
				stats.Inc(&x.es.ledger().SpecInstances)
			}
		}
	}
}

// peek returns the producer's next instance without consuming it.
func (x *XScan) peek() (Instance, bool) {
	if x.hasPeek {
		return x.peeked, true
	}
	if x.prodEOF {
		return Instance{}, false
	}
	in, ok := x.producer.Next()
	if !ok {
		x.prodEOF = true
		return Instance{}, false
	}
	x.peeked = in
	x.hasPeek = true
	return in, true
}

func (x *XScan) take() { x.hasPeek = false }

// next consumes the producer directly (drain path).
func (x *XScan) next() (Instance, bool) {
	if x.hasPeek {
		x.hasPeek = false
		return x.peeked, true
	}
	if x.prodEOF {
		return Instance{}, false
	}
	return x.producer.Next()
}
