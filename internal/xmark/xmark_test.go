package xmark

import (
	"strings"
	"testing"

	"pathdb/internal/xmltree"
	"pathdb/internal/xmlwrite"
)

func gen(t testing.TB, sf float64, seed uint64) (*xmltree.Dictionary, *xmltree.Node) {
	t.Helper()
	dict := xmltree.NewDictionary()
	doc := Generate(dict, Config{ScaleFactor: sf, Seed: seed, EntityScale: 0.01})
	return dict, doc
}

func countTag(dict *xmltree.Dictionary, doc *xmltree.Node, name string) int {
	id, ok := dict.Lookup(name)
	if !ok {
		return 0
	}
	return doc.CountTag(id)
}

func TestDeterministic(t *testing.T) {
	d1, doc1 := gen(t, 1, 7)
	d2, doc2 := gen(t, 1, 7)
	s1 := xmlwrite.String(d1, doc1, xmlwrite.Options{})
	s2 := xmlwrite.String(d2, doc2, xmlwrite.Options{})
	if s1 != s2 {
		t.Fatal("same config produced different documents")
	}
}

func TestSeedsChangeContent(t *testing.T) {
	d1, doc1 := gen(t, 1, 1)
	d2, doc2 := gen(t, 1, 2)
	if xmlwrite.String(d1, doc1, xmlwrite.Options{}) == xmlwrite.String(d2, doc2, xmlwrite.Options{}) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestEntityCountsMatchConfig(t *testing.T) {
	cfg := Config{ScaleFactor: 1, Seed: 3, EntityScale: 0.01}
	counts := CountsFor(cfg)
	dict := xmltree.NewDictionary()
	doc := Generate(dict, cfg)
	if got := countTag(dict, doc, "item"); got != counts.Items {
		t.Fatalf("items = %d, want %d", got, counts.Items)
	}
	if got := countTag(dict, doc, "person"); got != counts.Persons {
		t.Fatalf("persons = %d, want %d", got, counts.Persons)
	}
	if got := countTag(dict, doc, "open_auction"); got != counts.OpenAuctions {
		t.Fatalf("open auctions = %d, want %d", got, counts.OpenAuctions)
	}
	if got := countTag(dict, doc, "closed_auction"); got != counts.ClosedAuctions {
		t.Fatalf("closed auctions = %d, want %d", got, counts.ClosedAuctions)
	}
	if got := countTag(dict, doc, "category"); got != counts.Categories {
		t.Fatalf("categories = %d, want %d", got, counts.Categories)
	}
}

func TestCountsScaleLinearly(t *testing.T) {
	small := CountsFor(Config{ScaleFactor: 0.5, EntityScale: 0.1})
	big := CountsFor(Config{ScaleFactor: 2, EntityScale: 0.1})
	if big.Items < 3*small.Items || big.Items > 5*small.Items {
		t.Fatalf("items did not scale ~4x: %d vs %d", small.Items, big.Items)
	}
	if CountsFor(Config{ScaleFactor: 0.0001, EntityScale: 0.1}).Categories < 1 {
		t.Fatal("counts must be at least 1")
	}
}

func TestRegionDistributionSkewed(t *testing.T) {
	dict, doc := gen(t, 2, 5)
	na := countTag(dict, doc, "namerica")
	if na != 1 {
		t.Fatalf("namerica regions = %d", na)
	}
	// namerica holds the largest item share; africa the smallest.
	items := func(region string) int {
		id, _ := dict.Lookup(region)
		var n int
		itemID, _ := dict.Lookup("item")
		doc.Walk(func(m *xmltree.Node) bool {
			if m.Kind == xmltree.Element && m.Tag == id {
				n = m.CountTag(itemID)
				return false
			}
			return true
		})
		return n
	}
	if items("namerica") <= items("africa") {
		t.Fatalf("region skew missing: namerica=%d africa=%d", items("namerica"), items("africa"))
	}
}

func TestQueryRelevantStructure(t *testing.T) {
	dict, doc := gen(t, 2, 9)
	// Q7 prose containers must all exist.
	for _, name := range []string{"description", "annotation", "emailaddress"} {
		if countTag(dict, doc, name) == 0 {
			t.Fatalf("no %s elements generated", name)
		}
	}
	// Q15's long path must have a non-empty result: closed_auction
	// annotations containing parlist/listitem/parlist/listitem/text/emph/
	// keyword. Verify by logical navigation.
	q15 := [][]string{{"site"}, {"closed_auctions"}, {"closed_auction"}, {"annotation"},
		{"description"}, {"parlist"}, {"listitem"}, {"parlist"}, {"listitem"},
		{"text"}, {"emph"}, {"keyword"}}
	cur := []*xmltree.Node{doc}
	for _, step := range q15 {
		id, ok := dict.Lookup(step[0])
		if !ok {
			t.Fatalf("tag %s never generated", step[0])
		}
		var next []*xmltree.Node
		for _, n := range cur {
			for _, ch := range n.Children {
				if ch.Kind == xmltree.Element && ch.Tag == id {
					next = append(next, ch)
				}
			}
		}
		cur = next
	}
	if len(cur) == 0 {
		t.Fatal("Q15 path has empty result; deepen parlist nesting")
	}
	t.Logf("Q15 results at EntityScale 0.01, SF 2: %d", len(cur))
}

func TestDocumentIsSerializable(t *testing.T) {
	dict, doc := gen(t, 0.5, 11)
	out := xmlwrite.String(dict, doc, xmlwrite.Options{})
	if !strings.HasPrefix(out, "<site>") || !strings.HasSuffix(out, "</site>") {
		t.Fatalf("unexpected document frame: %.60s ... %s", out, out[len(out)-20:])
	}
}

func TestSizeGrowsWithScaleFactor(t *testing.T) {
	_, doc1 := gen(t, 0.5, 1)
	_, doc2 := gen(t, 2, 1)
	if doc2.Size() < 2*doc1.Size() {
		t.Fatalf("size did not grow: %d vs %d", doc1.Size(), doc2.Size())
	}
}

func BenchmarkGenerateSF01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dict := xmltree.NewDictionary()
		Generate(dict, Config{ScaleFactor: 0.1, Seed: 1})
	}
}
