// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement for this project: the XMark-shaped
// document generator, the fragmented storage layouts and the benchmark
// harness must all produce bit-identical output for a given seed so that
// experiments can be compared across runs and machines. The standard
// library's math/rand does not guarantee a stable stream across Go
// releases, so we implement our own generator.
//
// The core generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), a tiny, full-period,
// statistically solid 64-bit generator that is trivially seedable and
// splittable.
package rng

// RNG is a deterministic 64-bit pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of r's.
// It advances r once.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, the usual construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
// It is used to model skewed sizes (e.g. text block lengths).
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform sampling; guard against log(0).
	u := r.Float64()
	if u <= 0 {
		u = 1e-18
	}
	return -mean * ln(1-u)
}

// ln is a minimal natural-log implementation so the package stays free of
// math imports in hot paths; accuracy is more than sufficient for sampling.
func ln(x float64) float64 {
	// Use the identity ln(x) = 2*atanh((x-1)/(x+1)) with a short series,
	// after range reduction by powers of 2.
	if x <= 0 {
		return -1e308
	}
	k := 0
	for x > 1.5 {
		x /= 2
		k++
	}
	for x < 0.75 {
		x *= 2
		k--
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	s := y * (1 + y2*(1.0/3+y2*(1.0/5+y2*(1.0/7+y2*(1.0/9+y2/11)))))
	const ln2 = 0.6931471805599453
	return 2*s + float64(k)*ln2
}

// Zipf samples from a Zipf-like distribution over [0, n) with skew s >= 0.
// s == 0 degenerates to uniform. Sampling is by inverse CDF over
// precomputed weights; use NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	r   *RNG
}

// NewZipf prepares a Zipf sampler over n ranks with exponent s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / pow(float64(i+1), s)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow computes x**y for x > 0 via exp(y*ln(x)) with a small exp series.
func pow(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	return exp(y * ln(x))
}

func exp(x float64) float64 {
	// Range-reduce by ln2, then a 10-term Taylor series.
	const ln2 = 0.6931471805599453
	neg := x < 0
	if neg {
		x = -x
	}
	k := int(x / ln2)
	x -= float64(k) * ln2
	s, term := 1.0, 1.0
	for i := 1; i <= 12; i++ {
		term *= x / float64(i)
		s += term
	}
	for i := 0; i < k; i++ {
		s *= 2
	}
	if neg {
		return 1 / s
	}
	return s
}
