package core

import (
	"context"

	"pathdb/internal/storage"
	"pathdb/internal/xpath"
)

// MultiPlan evaluates several location paths with a single I/O-performing
// XSchedule operator — the multi-query extension sketched in the paper's
// outlook (Sec. 7): "Our method can be easily extended to evaluate
// multiple location paths with a single I/O-performing operator", giving
// the scheduler more pending requests to reorder and letting paths share
// cluster loads.
//
// Architecture: every path keeps its own XStep chain and XAssembly, but
// all chains read from one shared XSchedule through a demultiplexer that
// routes instances by their Path tag. Continuations enqueued by any
// XAssembly land in the same queue, so the asynchronous I/O subsystem sees
// the union of all paths' pending cluster accesses.
type MultiPlan struct {
	es     []*EvalState
	shared *XSchedule
	asms   []*XAssembly
	closed bool
}

// Close shuts every member's operator chain down, releasing pooled
// iterators and arena structures. Idempotent; RunEach arranges for it to
// run even when a member's operator panics (the storage fault plane
// escalates terminal page faults as typed panics), so an unwinding query
// cannot leak navigation iterators.
func (mp *MultiPlan) Close() {
	if mp.closed {
		return
	}
	mp.closed = true
	for _, a := range mp.asms {
		a.Close()
	}
}

// MultiQuery is one member query of a MultiPlan. Under the concurrent
// engine the members come from different sessions, so each carries its own
// cancellation context and memory limit.
type MultiQuery struct {
	Path     []xpath.Step
	Contexts []storage.NodeID

	// Ctx, when non-nil, cancels this member only; the shared scheduler
	// keeps serving the others. Zero value inherits PlanOptions.Ctx.
	Ctx context.Context
	// MemLimit overrides PlanOptions.MemLimit for this member when > 0.
	MemLimit int
	// PredEval overrides PlanOptions.PredEval for this member when not
	// PredAuto — the cost model decides per member query.
	PredEval PredEval
	// Store, when non-nil, is the storage view this member's operators
	// charge to (a per-query Reader over the group's base store). The
	// shared scheduler still runs on the store passed to BuildMultiPlan —
	// pooled I/O is group-accounted — while per-member CPU and tuple
	// movement land on the member's own ledger.
	Store *storage.Store
}

// BuildMultiPlan compiles a shared-scheduler plan for the given queries.
func BuildMultiPlan(store *storage.Store, queries []MultiQuery, opts PlanOptions) *MultiPlan {
	mp := &MultiPlan{}

	// The shared scheduler lives on the first path's state; it only uses
	// the store, ledger and queue machinery, which all paths share.
	// Contexts of all paths are multiplexed into its producer, tagged.
	var seeds []Instance
	for pi, q := range queries {
		for _, id := range q.Contexts {
			inst := ContextInstance(id)
			inst.Path = pi
			seeds = append(seeds, inst)
		}
	}
	es0 := NewEvalState(store, nil)
	es0.Arena = opts.Arena
	shared := NewXSchedule(es0, &sliceOp{es: es0, items: seeds})
	if opts.K > 0 {
		shared.K = opts.K
	}
	shared.Paths = make([][]xpath.Step, len(queries))
	for pi, q := range queries {
		shared.Paths[pi] = q.Path
	}
	mp.shared = shared

	d := &demux{shared: shared, buffers: make([][]Instance, len(queries))}
	for pi, q := range queries {
		st := store
		if q.Store != nil {
			st = q.Store
		}
		es := NewEvalState(st, q.Path)
		es.MemLimit = opts.MemLimit
		if q.MemLimit > 0 {
			es.MemLimit = q.MemLimit
		}
		es.Ctx = opts.Ctx
		if q.Ctx != nil {
			es.Ctx = q.Ctx
		}
		// Assemblies of one multi-plan run interleaved on one goroutine, so
		// they may share the arena: the first borrower gets the pooled
		// structures, later ones fall back to fresh ones.
		es.Arena = opts.Arena
		mp.es = append(mp.es, es)
		pe := opts.PredEval
		if q.PredEval != PredAuto {
			pe = q.PredEval
		}
		var op Operator = &demuxPort{d: d, path: pi}
		for i := 1; i <= len(q.Path); i++ {
			op = NewXStep(es, op, i)
			if len(q.Path[i-1].Predicates) > 0 {
				if pe == PredJoin {
					op = NewXJoin(es, op, i)
				} else {
					op = NewPredFilter(es, op, i)
				}
			}
		}
		mp.asms = append(mp.asms, NewXAssembly(es, op, shared))
	}
	return mp
}

// Run evaluates all member queries and returns one result list per query.
func (mp *MultiPlan) Run() [][]Result {
	out := make([][]Result, len(mp.asms))
	mp.RunEach(nil, func(i int, r Result) {
		out[i] = append(out[i], r)
	})
	return out
}

// RunEach evaluates all member queries, streaming each result to emit as it
// is assembled. Queries are drained in round-robin fashion so their cluster
// accesses interleave in the shared queue — the engine's gang execution
// uses this to serve several sessions from one scheduler.
//
// cancelled, when non-nil, is polled before each pull for member i; once it
// reports true the member stops producing (its instances already in the
// shared queue are pulled and buffered by the surviving ports — bounded by
// the queue fill K — and its submitted cluster requests stay with the I/O
// subsystem until the owner cancels them). Both callbacks run on the
// calling goroutine.
func (mp *MultiPlan) RunEach(cancelled func(i int) bool, emit func(i int, r Result)) {
	defer mp.Close()
	for _, a := range mp.asms {
		a.Open()
	}
	done := make([]bool, len(mp.asms))
	remaining := len(mp.asms)
	for remaining > 0 {
		for i, a := range mp.asms {
			if done[i] {
				continue
			}
			if cancelled != nil && cancelled(i) {
				done[i] = true
				remaining--
				continue
			}
			inst, ok := a.Next()
			if !ok {
				done[i] = true
				remaining--
				continue
			}
			emit(i, Result{Node: inst.NR, Ord: inst.Ord})
		}
	}
}

// Counts evaluates all member queries and returns their cardinalities.
func (mp *MultiPlan) Counts() []int {
	rs := mp.Run()
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = len(r)
	}
	return out
}

// sliceOp replays a fixed instance list (the multiplexed context seeds).
type sliceOp struct {
	es    *EvalState
	items []Instance
	pos   int
}

func (s *sliceOp) Open() { s.pos = 0 }
func (s *sliceOp) Next() (Instance, bool) {
	if s.pos >= len(s.items) {
		return Instance{}, false
	}
	out := s.items[s.pos]
	s.pos++
	s.es.chargeTuple()
	return out, true
}
func (s *sliceOp) Close() {}

// demux routes instances from the shared scheduler to per-path ports,
// buffering instances that belong to other paths.
type demux struct {
	shared  *XSchedule
	buffers [][]Instance
	opened  bool
	closed  bool
}

// demuxPort is the per-path view of the demux; it implements Operator.
type demuxPort struct {
	d    *demux
	path int
}

func (p *demuxPort) Open() {
	if !p.d.opened {
		p.d.opened = true
		p.d.shared.Open()
	}
}

func (p *demuxPort) Close() {
	if !p.d.closed {
		p.d.closed = true
		p.d.shared.Close()
	}
}

func (p *demuxPort) Next() (Instance, bool) {
	d := p.d
	if buf := d.buffers[p.path]; len(buf) > 0 {
		out := buf[0]
		d.buffers[p.path] = buf[1:]
		return out, true
	}
	for {
		inst, ok := d.shared.Next()
		if !ok {
			// The shared queue is drained *for now*; another path's
			// assembly may still enqueue more later, at which point this
			// port's Next will be called again and resume.
			return Instance{}, false
		}
		if inst.Path == p.path {
			return inst, true
		}
		d.buffers[inst.Path] = append(d.buffers[inst.Path], inst)
	}
}
