// The paper's experiment in miniature: generate an XMark-shaped document,
// evaluate Q6', Q7 and Q15 under all three plan strategies, and print a
// Table-3-style comparison. Orderings should match the paper: XSchedule
// wins Q6', XScan wins Q7 by a wide margin and loses Q15 badly.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

var queries = []struct {
	name  string
	paths []string
}{
	{"Q6'", []string{"/site/regions//item"}},
	{"Q7", []string{"/site//description", "/site//annotation", "/site//emailaddress"}},
	{"Q15", []string{"/site/closed_auctions/closed_auction/annotation/description" +
		"/parlist/listitem/parlist/listitem/text/emph/keyword"}},
}

func main() {
	db, err := pathdb.GenerateXMark(
		pathdb.XMarkConfig{ScaleFactor: 1, Seed: 42, EntityScale: 0.05},
		pathdb.Options{BufferPages: 100},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XMark document: %d pages\n\n", db.Pages())
	fmt.Printf("%-5s %-10s %10s %10s %6s %8s\n", "query", "plan", "total[s]", "CPU[s]", "CPU%", "count")

	for _, q := range queries {
		for _, strat := range []pathdb.Strategy{pathdb.Simple, pathdb.Schedule, pathdb.Scan} {
			total := 0.0
			cpu := 0.0
			count := 0
			for _, path := range q.paths {
				db.ResetStats()
				query, err := db.Query(path)
				if err != nil {
					log.Fatal(err)
				}
				count += query.WithStrategy(strat).Count()
				r := db.CostReport()
				total += r.Total.Seconds()
				cpu += r.CPU.Seconds()
			}
			fmt.Printf("%-5s %-10s %10.2f %10.2f %5.0f%% %8d\n",
				q.name, strat, total, cpu, 100*cpu/total, count)
		}
		fmt.Println()
	}
}
