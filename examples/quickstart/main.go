// Quickstart: load a small XML document, run a few location paths, and
// inspect the physical cost report.
package main

import (
	"fmt"
	"log"

	"pathdb"
)

const doc = `<?xml version="1.0"?>
<library>
  <shelf floor="1">
    <book id="b1"><title>Query Evaluation Techniques</title><year>1993</year></book>
    <book id="b2"><title>Anatomy of a Native XML Base</title><year>2003</year></book>
  </shelf>
  <shelf floor="2">
    <book id="b3"><title>ORDPATHs</title><year>2004</year></book>
  </shelf>
</library>`

func main() {
	db, err := pathdb.LoadXMLString(doc, pathdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Count books anywhere in the library.
	q, err := db.Query("/library//book")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books:", q.Count())

	// List titles in document order.
	q, _ = db.Query("//book/title")
	for _, n := range q.Sorted().Nodes() {
		fmt.Printf("  %-40s ord=%s\n", n.Text(), n.OrdPath())
	}

	// Attribute access and relative navigation.
	q, _ = db.Query("/library/shelf")
	for _, shelf := range q.Sorted().Nodes() {
		floor, _ := shelf.Query("@floor")
		count, _ := shelf.Query("book")
		fmt.Printf("shelf on floor %s: %d books\n", floor.Nodes()[0].Text(), count.Count())
	}

	// Every query runs against a simulated disk; the ledger shows what the
	// evaluation cost physically.
	db.ResetStats()
	q, _ = db.Query("//year")
	fmt.Println("years:", q.Count())
	fmt.Println("cost:", db.CostReport())
}
