package ordpath

import (
	"sort"
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
)

func TestRootAndChild(t *testing.T) {
	r := Root()
	if len(r) != 0 || r.Level() != 0 {
		t.Fatal("root key not empty")
	}
	c := r.Child(2)
	if c.Level() != 1 || c.Components()[0] != 2 {
		t.Fatalf("child = %v", c.Components())
	}
}

func TestBulkChildOrdinals(t *testing.T) {
	r := Root()
	for i := 0; i < 5; i++ {
		k := r.BulkChild(i)
		if got := k.Components()[0]; got != uint64(i+1)*2 {
			t.Fatalf("BulkChild(%d) ordinal = %d", i, got)
		}
	}
}

func TestComponentsRoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{2},
		{2, 4, 6},
		{0, 1, 127, 128, 300, 1 << 20, 1 << 40},
	}
	for _, comps := range cases {
		k := FromComponents(comps...)
		got := k.Components()
		if len(got) != len(comps) {
			t.Fatalf("round trip of %v = %v", comps, got)
		}
		for i := range comps {
			if got[i] != comps[i] {
				t.Fatalf("round trip of %v = %v", comps, got)
			}
		}
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	// Document order: ancestor before descendant, siblings by ordinal.
	ordered := []Key{
		FromComponents(2),
		FromComponents(2, 2),
		FromComponents(2, 2, 2),
		FromComponents(2, 2, 4),
		FromComponents(2, 4),
		FromComponents(4),
		FromComponents(4, 2),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	a := FromComponents(2, 4)
	d := FromComponents(2, 4, 6)
	if !a.IsAncestorOf(d) {
		t.Fatal("direct ancestor not detected")
	}
	if !Root().IsAncestorOf(a) {
		t.Fatal("root not ancestor")
	}
	if a.IsAncestorOf(a) {
		t.Fatal("self is not a proper ancestor")
	}
	if d.IsAncestorOf(a) {
		t.Fatal("descendant claimed as ancestor")
	}
	if FromComponents(2, 5).IsAncestorOf(FromComponents(2, 50)) {
		t.Fatal("sibling-prefix confusion (2.5 vs 2.50)")
	}
	// Multi-byte component boundary: 300 encodes to two bytes.
	big := FromComponents(300)
	if FromComponents(44).IsAncestorOf(big) {
		t.Fatal("byte-prefix of a multi-byte component misdetected")
	}
	if !big.IsAncestorOf(FromComponents(300, 2)) {
		t.Fatal("multi-byte ancestor missed")
	}
}

func TestBetweenSimpleGap(t *testing.T) {
	a, b := FromComponents(2), FromComponents(6)
	m := Between(a, b)
	if Compare(a, m) >= 0 || Compare(m, b) >= 0 {
		t.Fatalf("Between(%v,%v) = %v not strictly between", a, b, m)
	}
}

func TestBetweenAdjacent(t *testing.T) {
	a, b := FromComponents(2), FromComponents(3)
	m := Between(a, b)
	if Compare(a, m) >= 0 || Compare(m, b) >= 0 {
		t.Fatalf("Between adjacent = %v", m)
	}
}

func TestBetweenAncestorChild(t *testing.T) {
	a, b := FromComponents(2), FromComponents(2, 2)
	m := Between(a, b)
	if Compare(a, m) >= 0 || Compare(m, b) >= 0 {
		t.Fatalf("Between(%v,%v) = %v", a, b, m)
	}
}

func TestBetweenRequiresOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Between(FromComponents(4), FromComponents(2))
}

func TestBetweenRepeatedInsertions(t *testing.T) {
	// Insert 200 keys always between the first two; order must stay strict
	// and no relabeling is ever needed.
	lo, hi := FromComponents(2), FromComponents(4)
	keys := []Key{lo, hi}
	for i := 0; i < 200; i++ {
		m := Between(keys[0], keys[1])
		if Compare(keys[0], m) >= 0 || Compare(m, keys[1]) >= 0 {
			t.Fatalf("insertion %d broke order: %v", i, m)
		}
		// Insert at position 1.
		keys = append(keys[:1], append([]Key{m}, keys[1:]...)...)
	}
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("sequence out of order at %d", i)
		}
	}
}

func TestBetweenPropertyRandomPairs(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		mk := func() Key {
			depth := r.IntRange(1, 5)
			k := Root()
			for i := 0; i < depth; i++ {
				k = k.BulkChild(r.Intn(20))
			}
			return k
		}
		a, b := mk(), mk()
		switch Compare(a, b) {
		case 0:
			return true
		case 1:
			a, b = b, a
		}
		m := Between(a, b)
		return Compare(a, m) < 0 && Compare(m, b) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenChainDeepens(t *testing.T) {
	// Keep inserting between a fixed left neighbour and the last insert.
	a := FromComponents(2)
	b := FromComponents(2, 2)
	for i := 0; i < 64; i++ {
		m := Between(a, b)
		if Compare(a, m) >= 0 || Compare(m, b) >= 0 {
			t.Fatalf("iteration %d: %v not between %v and %v", i, m, a, b)
		}
		b = m
	}
}

func TestSortUsesCompare(t *testing.T) {
	r := rng.New(99)
	var keys []Key
	for i := 0; i < 100; i++ {
		depth := r.IntRange(1, 4)
		k := Root()
		for j := 0; j < depth; j++ {
			k = k.BulkChild(r.Intn(10))
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return Compare(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		if Compare(keys[i-1], keys[i]) > 0 {
			t.Fatal("sorted sequence violates Compare")
		}
	}
}

func TestString(t *testing.T) {
	if got := FromComponents(2, 4, 6).String(); got != "2.4.6" {
		t.Fatalf("String = %q", got)
	}
	if got := Root().String(); got != "" {
		t.Fatalf("root String = %q", got)
	}
}

func TestLargeComponents(t *testing.T) {
	k := FromComponents(1 << 62)
	if k.Components()[0] != 1<<62 {
		t.Fatal("large component mangled")
	}
	if Compare(FromComponents(1<<62), FromComponents(1<<62+1)) != -1 {
		t.Fatal("large comparison wrong")
	}
}

func TestLevelMatchesDepth(t *testing.T) {
	k := Root()
	for i := 1; i <= 10; i++ {
		k = k.BulkChild(3)
		if k.Level() != i {
			t.Fatalf("level = %d, want %d", k.Level(), i)
		}
	}
}

func TestAfter(t *testing.T) {
	k := FromComponents(2, 4)
	a := After(k)
	if Compare(k, a) >= 0 {
		t.Fatal("After not greater")
	}
	// After(k) must also follow every descendant of k.
	if Compare(k.Child(1000), a) >= 0 {
		t.Fatal("After not greater than descendants")
	}
	// But still precede k's parent's next sibling.
	if Compare(a, FromComponents(4)) >= 0 {
		t.Fatal("After escaped the parent's range")
	}
}

func TestAfterOfRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	After(Root())
}
