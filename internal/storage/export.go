package storage

import (
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
)

// Export reconstructs the logical document tree from storage, crossing
// cluster borders with synchronous loads. It is used by round-trip tests
// and by the document-export extension (paper Sec. 7 outlook): exporting is
// a traversal whose "path instance" is the whole subtree. For collections
// it exports the first document; see ExportDocument.
func (s *Store) Export() *xmltree.Node {
	return s.ExportDocument(0)
}

// ExportDocument reconstructs the i-th document of the collection.
func (s *Store) ExportDocument(i int) *xmltree.Node {
	root := s.Swizzle(s.roots[i])
	doc := xmltree.NewDocument()
	s.exportChildren(root, doc)
	return doc
}

// ExportSubtree reconstructs the subtree rooted at id (which must be a core
// element).
func (s *Store) ExportSubtree(id NodeID) *xmltree.Node {
	return s.exportNode(s.Swizzle(id))
}

func (s *Store) exportNode(c Cursor) *xmltree.Node {
	r := c.rec()
	switch r.kind {
	case RecElem:
		n := xmltree.NewElement(r.tag)
		for _, a := range r.attrs {
			n.SetAttr(a.tag, a.val)
		}
		s.exportChildren(c, n)
		return n
	case RecText:
		return xmltree.NewText(r.text)
	case RecComment:
		return &xmltree.Node{Kind: xmltree.Comment, Tag: xmltree.NoTag, Text: r.text}
	case RecPI:
		return &xmltree.Node{Kind: xmltree.ProcInst, Tag: xmltree.NoTag, Text: r.text}
	default:
		panic("storage: exportNode on " + r.kind.String())
	}
}

// exportChildren appends the logical children of c (a doc, element or
// proxy-parent record) to out, following proxy chains transparently.
func (s *Store) exportChildren(c Cursor, out *xmltree.Node) {
	for _, slot := range c.rec().children {
		child := Cursor{st: s, img: c.img, page: c.page, slot: slot, attr: -1}
		if child.rec().kind == RecProxyChild {
			far := s.Swizzle(child.rec().target) // the ProxyParent anchor
			s.exportChildren(far, out)
			continue
		}
		out.AppendChild(s.exportNode(child))
	}
}

// TagStats summarises the physical footprint of one tag: how many element
// records carry it, how many distinct clusters contain at least one, and
// how many clusters hold any node *inside the subtrees* of such elements.
// The cost-based plan chooser uses the subtree footprint to estimate how
// much of the document a recursive step must traverse.
type TagStats struct {
	Count        int64 // element records with this tag
	Pages        int   // clusters containing at least one such element
	SubtreePages int   // clusters containing any node below one
}

// DocStats is the offline statistics bundle for the plan chooser.
type DocStats struct {
	Pages   int
	Borders int
	Tags    map[xmltree.TagID]TagStats
}

// CollectDocStats walks the whole document once (synchronously, offline)
// and gathers per-tag footprints plus the total border count. Reset the
// ledger afterwards when measuring queries; a live system would maintain
// these statistics incrementally.
func (s *Store) CollectDocStats() *DocStats {
	n := s.NumDataPages()
	ds := &DocStats{Pages: n, Tags: make(map[xmltree.TagID]TagStats)}
	for i := 0; i < n; i++ {
		ds.Borders += len(s.image(s.DataPage(i)).borders)
	}

	ownPages := map[xmltree.TagID]map[vdisk.PageID]bool{}
	subPages := map[xmltree.TagID]map[vdisk.PageID]bool{}
	mark := func(m map[xmltree.TagID]map[vdisk.PageID]bool, t xmltree.TagID, p vdisk.PageID) {
		set := m[t]
		if set == nil {
			set = map[vdisk.PageID]bool{}
			m[t] = set
		}
		set[p] = true
	}

	active := map[xmltree.TagID]int{}
	var walk func(c Cursor)
	walk = func(c Cursor) {
		r := c.rec()
		if r.kind == RecProxyChild {
			walk(s.Swizzle(r.target))
			return
		}
		if r.kind == RecElem {
			ts := ds.Tags[r.tag]
			ts.Count++
			ds.Tags[r.tag] = ts
			mark(ownPages, r.tag, c.page)
		}
		if r.kind != RecProxyParent {
			for t, depth := range active {
				if depth > 0 {
					mark(subPages, t, c.page)
				}
			}
		}
		if r.kind == RecElem {
			active[r.tag]++
		}
		for _, slot := range r.children {
			walk(Cursor{st: s, img: c.img, page: c.page, slot: slot, attr: -1})
		}
		if r.kind == RecElem {
			active[r.tag]--
		}
	}
	for _, root := range s.roots {
		walk(s.Swizzle(root))
	}

	for t, ts := range ds.Tags {
		ts.Pages = len(ownPages[t])
		ts.SubtreePages = len(subPages[t])
		ds.Tags[t] = ts
	}
	return ds
}

// VolumeStats summarises physical storage for reporting and tests.
type VolumeStats struct {
	DataPages   int
	Records     int
	CoreNodes   int
	BorderNodes int
	UsedBytes   int
}

// PageUtilization returns a histogram of per-page space utilisation with
// the given number of buckets (bucket i counts pages filled between
// i/buckets and (i+1)/buckets of their capacity).
func (s *Store) PageUtilization(buckets int) []int {
	hist := make([]int, buckets)
	ps := s.disk.PageSize()
	n := s.NumDataPages()
	for i := 0; i < n; i++ {
		img := s.image(s.DataPage(i))
		used := pageUsage(img)
		b := used * buckets / (ps + 1)
		if b >= buckets {
			b = buckets - 1
		}
		hist[b]++
	}
	return hist
}

// Stats scans all data pages (synchronously) and reports volume totals.
// It is intended for offline inspection; reset the ledger afterwards when
// measuring queries.
func (s *Store) Stats() VolumeStats {
	var vs VolumeStats
	n := s.NumDataPages()
	vs.DataPages = n
	for i := 0; i < n; i++ {
		img := s.image(s.DataPage(i))
		vs.Records += len(img.recs)
		vs.BorderNodes += len(img.borders)
		for j := range img.recs {
			r := &img.recs[j]
			if r.dead {
				continue
			}
			if !r.kind.IsProxy() {
				vs.CoreNodes++
			}
			vs.UsedBytes += encodedSize(r) + 2
		}
	}
	return vs
}
