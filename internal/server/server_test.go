package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pathdb"
)

// Queries of the XMark test document. itemQuery is cheap; descQuery is the
// heavy descendant scan the timeout and drain tests lean on.
const (
	itemQuery = "/site/regions//item"
	descQuery = "/site//description"
)

// newTestDB builds a fresh shuffled XMark volume with a deliberately small
// buffer pool, so queries keep doing device I/O (and therefore keep
// prefetching) no matter how often the tests run them.
func newTestDB(t *testing.T, sf float64) *pathdb.DB {
	t.Helper()
	db, err := pathdb.GenerateXMark(
		pathdb.XMarkConfig{ScaleFactor: sf, Seed: 42, EntityScale: 0.1},
		pathdb.Options{Layout: pathdb.Shuffled, LayoutSeed: 42, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer wires a DB, an engine and a Server behind httptest.
func newTestServer(t *testing.T, db *pathdb.DB, cfg pathdb.EngineConfig, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	eng := db.NewEngine(cfg)
	db.ResetStats()
	srv := New(db, eng, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func postQuery(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeResponse(t *testing.T, data []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, data)
	}
	return qr
}

func TestQueryEndpoint(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	q, err := db.Query(itemQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Count()

	resp, data := postQuery(t, ts.URL, QueryRequest{Path: itemQuery, Limit: 5, Sorted: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	qr := decodeResponse(t, data)
	if qr.Count != want {
		t.Fatalf("count = %d, want %d", qr.Count, want)
	}
	if len(qr.Nodes) != 5 || !qr.Truncated {
		t.Fatalf("nodes = %d truncated = %v, want 5 true", len(qr.Nodes), qr.Truncated)
	}
	for _, n := range qr.Nodes {
		if n.Name != "item" || n.Ord == "" {
			t.Fatalf("bad node %+v", n)
		}
	}
	if qr.Strategy == "" || qr.CostVNs <= 0 {
		t.Fatalf("missing cost/strategy: %+v", qr)
	}

	// Forced strategy is echoed back.
	resp, data = postQuery(t, ts.URL, QueryRequest{Path: itemQuery, Strategy: "xscan"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if qr := decodeResponse(t, data); qr.Strategy != "xscan" || qr.Count != want || qr.Nodes != nil {
		t.Fatalf("forced strategy response: %+v", qr)
	}

	// Union queries work over the wire.
	resp, data = postQuery(t, ts.URL, QueryRequest{Path: itemQuery + " | " + descQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("union status %d: %s", resp.StatusCode, data)
	}
}

func TestQueryValidation(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	for name, tc := range map[string]QueryRequest{
		"empty path":       {},
		"relative path":    {Path: "regions/item"},
		"bad syntax":       {Path: "/site//"},
		"bad strategy":     {Path: itemQuery, Strategy: "quantum"},
		"negative limit":   {Path: itemQuery, Limit: -1},
		"negative timeout": {Path: itemQuery, TimeoutMS: -1},
	} {
		resp, data := postQuery(t, ts.URL, tc)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, data)
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", name, data)
		}
	}

	// Unknown fields are rejected (catches client typos like "patj").
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"patj": "/site"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// GET on /query is a 405.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", resp.StatusCode)
	}
}

// TestQueryTimeout checks deadline propagation end to end: a 1ms budget on
// a query that needs tens of milliseconds maps to 504, the engine counts
// the cancellation, and the cancelled query's in-flight prefetches are
// withdrawn from the device (async_withdrawn accounting).
func TestQueryTimeout(t *testing.T) {
	db := newTestDB(t, 0.5)
	srv, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	sawTimeout := false
	for i := 0; i < 10 && !sawTimeout; i++ {
		// Force XSchedule so the query prefetches asynchronously — the
		// withdrawal accounting below is about exactly those requests.
		resp, data := postQuery(t, ts.URL, QueryRequest{Path: descQuery, TimeoutMS: 1, Strategy: "xschedule"})
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			sawTimeout = true
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Fatalf("504 body %q", data)
			}
		case http.StatusOK:
			// The machine raced the budget; try again.
		default:
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	if !sawTimeout {
		t.Fatal("no request timed out despite a 1ms budget on a heavy query")
	}

	m := srv.eng.Metrics()
	if m.Cancelled == 0 {
		t.Fatalf("engine cancelled = 0 after timeouts (metrics %+v)", m)
	}
	if w := srv.eng.CostLedger().AsyncWithdrawn; w == 0 {
		t.Fatal("async_withdrawn = 0: cancelled query's prefetches were not withdrawn")
	}
	if srv.timeouts.Load() == 0 {
		t.Fatal("server timeout counter not incremented")
	}
}

// TestLoadShedding saturates a deliberately tiny engine: admission
// rejections must surface as 503 + Retry-After, not as queueing.
func TestLoadShedding(t *testing.T) {
	db := newTestDB(t, 0.25)
	srv, ts := newTestServer(t, db,
		pathdb.EngineConfig{MaxInFlight: 1, QueueDepth: 1}, Options{RetryAfter: 7})

	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	retryAfterOK := true
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postQuery(t, ts.URL, QueryRequest{Path: descQuery})
			mu.Lock()
			defer mu.Unlock()
			statuses[resp.StatusCode]++
			if resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") != "7" {
					retryAfterOK = false
				}
				var er ErrorResponse
				if json.Unmarshal(data, &er) != nil || er.Error == "" {
					retryAfterOK = false
				}
			}
		}()
	}
	wg.Wait()

	if statuses[http.StatusOK] == 0 || statuses[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("want both 200s and 503s under saturation, got %v", statuses)
	}
	if statuses[http.StatusOK]+statuses[http.StatusServiceUnavailable] != n {
		t.Fatalf("unexpected statuses: %v", statuses)
	}
	if !retryAfterOK {
		t.Fatal("503 responses missing Retry-After: 7 or an error body")
	}
	if m := srv.eng.Metrics(); m.Rejected == 0 {
		t.Fatalf("engine rejected = 0 under saturation (metrics %+v)", m)
	}
	if srv.shed.Load() == 0 {
		t.Fatal("server shed counter not incremented")
	}
}

// promLine matches one Prometheus text-format sample: a metric name
// followed by a float value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*) (\S+)$`)

// parsePromText validates Prometheus text exposition: every sample line
// parses, every sample is preceded by matching HELP and TYPE comments, and
// the values are floats. Returns the samples by name.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[0]] = true
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("line %d: value %q not a float: %v", ln+1, m[2], err)
		}
		if !helped[m[1]] || !typed[m[1]] {
			t.Fatalf("line %d: sample %q lacks HELP/TYPE", ln+1, m[1])
		}
		if _, dup := samples[m[1]]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, m[1])
		}
		samples[m[1]] = v
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	for i := 0; i < 3; i++ {
		postQuery(t, ts.URL, QueryRequest{Path: itemQuery})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())

	for _, name := range []string{
		"pathdb_engine_submitted_total",
		"pathdb_engine_rejected_total",
		"pathdb_engine_batched_total",
		"pathdb_ledger_now_virtual_seconds_total",
		"pathdb_ledger_page_reads_total",
		"pathdb_ledger_async_withdrawn_total",
		"pathdb_server_requests_total",
		"pathdb_server_inflight",
		"pathdb_server_draining",
		"pathdb_volume_pages",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("missing series %q", name)
		}
	}
	if samples["pathdb_engine_submitted_total"] < 3 {
		t.Fatalf("submitted = %v, want >= 3", samples["pathdb_engine_submitted_total"])
	}
	if samples["pathdb_server_served_total"] != 3 {
		t.Fatalf("served = %v, want 3", samples["pathdb_server_served_total"])
	}
	if samples["pathdb_ledger_now_virtual_seconds_total"] <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	if samples["pathdb_volume_pages"] != float64(db.Pages()) {
		t.Fatalf("volume pages = %v, want %d", samples["pathdb_volume_pages"], db.Pages())
	}
}

func TestHealthz(t *testing.T) {
	db := newTestDB(t, 0.1)
	srv, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy: status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
}

// TestGracefulShutdown is the drain acceptance test: with N slow queries in
// flight, Shutdown lets every one of them complete while new requests are
// refused with 503, and afterwards the engine's dispatcher goroutine is
// gone (checked against the pre-engine goroutine baseline; run with -race).
func TestGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db := newTestDB(t, 0.5)
	eng := db.NewEngine(pathdb.EngineConfig{MaxInFlight: 2})
	db.ResetStats()
	srv := New(db, eng, Options{})
	ts := httptest.NewServer(srv)

	// Hold N heavy queries in flight (more than MaxInFlight, so some drain
	// from the engine's queue during shutdown, not just from execution).
	const n = 8
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			body, _ := json.Marshal(QueryRequest{Path: descQuery})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			results <- outcome{status: resp.StatusCode, body: buf.Bytes()}
		}()
	}
	// Wait until every request is inside a handler, so the drain provably
	// overlaps them.
	deadline := time.Now().Add(10 * time.Second)
	for srv.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests in flight", srv.InFlight(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// New requests are shed as soon as the drain flag flips.
	for !srv.Draining() {
		time.Sleep(100 * time.Microsecond)
	}
	resp, data := postQuery(t, ts.URL, QueryRequest{Path: itemQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d (%s), want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain missing Retry-After")
	}

	// Every in-flight query completes with a full, valid response.
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("in-flight request failed: %v", o.err)
		}
		if o.status != http.StatusOK {
			t.Fatalf("in-flight request: status %d (%s), want 200", o.status, o.body)
		}
		if qr := decodeResponse(t, o.body); qr.Count == 0 {
			t.Fatalf("in-flight request returned no results: %+v", qr)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The engine is closed: a direct session submission fails.
	if _, err := eng.NewSession().Do(context.Background(), itemQuery, pathdb.QueryOptions{}); err == nil {
		t.Fatal("engine still accepts queries after Shutdown")
	}

	// No goroutine leak: with the HTTP server torn down, we must settle
	// back to the baseline (the dispatcher and any worker pool are gone).
	ts.Close()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDeadline: a drain that cannot finish within its context falls
// back to a hard close and reports the context error.
func TestShutdownDeadline(t *testing.T) {
	db := newTestDB(t, 0.1)
	eng := db.NewEngine(pathdb.EngineConfig{})
	srv := New(db, eng, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	// No in-flight requests, so the handler drain succeeds instantly and
	// only the engine drain observes the dead context... which also has
	// nothing queued, so it exits cleanly before checking. Hold a query in
	// flight to force the fallback path deterministically instead.
	if err := srv.Shutdown(ctx); err != nil && err != context.Canceled {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("not draining after Shutdown")
	}
	// Either way the engine must be unusable now.
	if _, err := eng.NewSession().Do(context.Background(), itemQuery, pathdb.QueryOptions{}); err == nil {
		t.Fatal("engine alive after deadline shutdown")
	}
}

// TestConcurrentUnknownNames hammers the parser with fresh tag names from
// many goroutines: the dictionary interning path must be race-free (this
// is what makes arbitrary network queries safe).
func TestConcurrentUnknownNames(t *testing.T) {
	db := newTestDB(t, 0.1)
	_, ts := newTestServer(t, db, pathdb.EngineConfig{}, Options{})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				path := fmt.Sprintf("/site/never_seen_tag_%d_%d", i, j)
				resp, data := postQuery(t, ts.URL, QueryRequest{Path: path})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d (%s)", path, resp.StatusCode, data)
					return
				}
				if qr := decodeResponse(t, data); qr.Count != 0 {
					t.Errorf("%s: count %d, want 0", path, qr.Count)
				}
			}
		}(i)
	}
	wg.Wait()
}
