package storage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pathdb/internal/ordpath"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmltree"
	"pathdb/internal/xpath"
)

// RecKind classifies physical records. Core kinds mirror logical node
// kinds; the two proxy kinds are the paper's border nodes (Sec. 3.4): a
// ProxyChild sits where an edge leaves its cluster downward, a ProxyParent
// anchors a cluster's fragment and points back up. Each stores the NodeID
// of its companion, realising the target() operation.
type RecKind uint8

// Record kinds.
const (
	RecDoc RecKind = iota
	RecElem
	RecText
	RecComment
	RecPI
	RecProxyChild
	RecProxyParent
)

// String returns a readable kind name.
func (k RecKind) String() string {
	switch k {
	case RecDoc:
		return "doc"
	case RecElem:
		return "elem"
	case RecText:
		return "text"
	case RecComment:
		return "comment"
	case RecPI:
		return "pi"
	case RecProxyChild:
		return "proxy-child"
	case RecProxyParent:
		return "proxy-parent"
	default:
		return fmt.Sprintf("rec(%d)", uint8(k))
	}
}

// IsProxy reports whether the kind is a border node kind.
func (k RecKind) IsProxy() bool { return k == RecProxyChild || k == RecProxyParent }

// LogicalKind maps a core record kind to the logical node kind.
func (k RecKind) LogicalKind() xmltree.Kind {
	switch k {
	case RecDoc:
		return xmltree.Document
	case RecElem:
		return xmltree.Element
	case RecText:
		return xmltree.Text
	case RecComment:
		return xmltree.Comment
	case RecPI:
		return xmltree.ProcInst
	default:
		panic("storage: LogicalKind of proxy record")
	}
}

const noParent = -1

// attrRec is an attribute stored inline in its element's record.
type attrRec struct {
	tag xmltree.TagID
	val string
}

// rec is the decoded form of one record.
type rec struct {
	kind   RecKind
	parent int // slot of physical parent, noParent for fragment roots
	tag    xmltree.TagID
	text   string
	ord    ordpath.Key
	target NodeID // proxies: companion border node
	attrs  []attrRec

	dead     bool     // tombstoned slot (deleted record)
	children []uint16 // derived at decode: live slots with parent == this slot
}

// deadSlotOff marks a tombstoned slot in the on-page slot table. Page
// sizes are limited to 32 KiB so the sentinel cannot collide with a real
// record offset.
const deadSlotOff = 0xFFFF

// MaxPageSize bounds page sizes (slot offsets are uint16 with a sentinel).
const MaxPageSize = 32768

// pageImage is the swizzled (decoded, directly navigable) representation of
// one page — the object-buffer side of the dual-buffer scheme of Sec. 3.6.
// Images are immutable once published by the swizzle cache (the update path
// works on private copies), so they may be shared by concurrent readers.
type pageImage struct {
	page      vdisk.PageID
	recs      []rec
	borders   []uint16 // slots of proxy records, for XScan's speculation
	borderIDs []NodeID // the same borders as NodeIDs, for BordersOf
	nav       *pageNav // cluster-resident name-test index, built at decode
}

// pageNav is the cluster-resident navigation index: every live record gets
// a pre-order position (the exact order modeDFS enumerates, so a slot's
// subtree is the contiguous range [pre[s], subEnd[s])), and occupancy
// bitsets over those positions answer name/kind tests for a whole cluster
// at once. Immutable after decode, shared with the image.
type pageNav struct {
	pre    []uint16 // slot → pre-order position (preNone for dead slots)
	byPre  []uint16 // pre-order position → slot
	subEnd []uint16 // slot → exclusive pre-order end of its subtree
	words  int      // uint64 words per bitset

	tags    []xmltree.TagID // sorted distinct record tags (NoTag bucket included)
	tagCnt  []int32         // live records per tags[i]
	tagBits [][]uint64      // tagBits[i]: positions of records tagged tags[i]

	core    []uint64 // all live non-proxy positions
	elem    []uint64 // RecElem positions
	text    []uint64 // RecText positions
	comment []uint64 // RecComment positions
	pi      []uint64 // RecPI positions
	proxy   []uint64 // proxy (border) positions

	elemCount, textCount, commentCount, piCount int
	proxyChildCount                             int // outgoing downward borders
}

const preNone = 0xFFFF

func setBit(w []uint64, i uint16) { w[i>>6] |= 1 << (i & 63) }

func hasBit(w []uint64, i uint16) bool { return w[i>>6]&(1<<(i&63)) != 0 }

// tagIndex returns the index of t in nav.tags, or -1.
func (nav *pageNav) tagIndex(t xmltree.TagID) int {
	lo, hi := 0, len(nav.tags)
	for lo < hi {
		mid := (lo + hi) / 2
		if nav.tags[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nav.tags) && nav.tags[lo] == t {
		return lo
	}
	return -1
}

// kindMask returns the occupancy bitset for a kind test (nil means "no
// record of this kind exists", an always-empty mask).
func (nav *pageNav) kindMask(k xpath.KindTest) []uint64 {
	switch k {
	case xpath.KindAny:
		return nav.core
	case xpath.KindElement:
		// Records never carry xmltree.Attribute kind (attributes are
		// inline), so the element bitset is exact for KindElement.
		return nav.elem
	case xpath.KindText:
		return nav.text
	case xpath.KindComment:
		return nav.comment
	case xpath.KindPI:
		return nav.pi
	}
	return nil
}

// testMask materializes the occupancy bitset of records matching test,
// writing into scratch when a combination is needed. The returned slice is
// either an immutable nav-owned bitset or scratch; callers must treat it as
// read-only and not retain it past the next call with the same scratch.
// The bitset reproduces xpath.NodeTest.Matches exactly: kind check ANDed
// with the name check (tag membership; non-element records sit in the
// NoTag bucket, matching Matches' behaviour on their NoTag field).
func (nav *pageNav) testMask(test xpath.NodeTest, scratch []uint64) []uint64 {
	km := nav.kindMask(test.Kind)
	if test.AnyName {
		return km
	}
	// Named test: OR the tag buckets, then AND with the kind mask. The
	// common case (element name test, one tag) short-circuits: real tags
	// only ever appear on element records, so the bucket is already ⊆ elem.
	if len(test.Tags) == 1 && test.Kind == xpath.KindElement && test.Tags[0] != xmltree.NoTag {
		if i := nav.tagIndex(test.Tags[0]); i >= 0 {
			return nav.tagBits[i]
		}
		return nil
	}
	for i := range scratch {
		scratch[i] = 0
	}
	any := false
	for _, t := range test.Tags {
		if i := nav.tagIndex(t); i >= 0 {
			for w, v := range nav.tagBits[i] {
				scratch[w] |= v
			}
			any = true
		}
	}
	if !any || km == nil {
		return nil
	}
	if test.Kind == xpath.KindAny && (len(test.Tags) > 1 || test.Tags[0] != xmltree.NoTag) {
		// Real tags imply element records, elem ⊆ core: no AND needed
		// unless NoTag is among the names.
		hasNoTag := false
		for _, t := range test.Tags {
			if t == xmltree.NoTag {
				hasNoTag = true
			}
		}
		if !hasNoTag {
			return scratch
		}
	}
	for w := range scratch {
		scratch[w] &= km[w]
	}
	return scratch
}

// buildPageNav derives the navigation index from a decoded image. The
// pre-order walk mirrors StepIter's modeDFS (children lists are already
// sibling-sorted), so bitmap range enumeration and per-node DFS agree on
// emission order byte for byte.
func buildPageNav(img *pageImage) *pageNav {
	n := len(img.recs)
	live := 0
	for i := range img.recs {
		if !img.recs[i].dead {
			live++
		}
	}
	nav := &pageNav{
		pre:    make([]uint16, n),
		subEnd: make([]uint16, n),
		byPre:  make([]uint16, 0, live),
		words:  (live + 63) / 64,
	}
	for i := range nav.pre {
		nav.pre[i] = preNone
	}
	var walk func(s uint16)
	walk = func(s uint16) {
		nav.pre[s] = uint16(len(nav.byPre))
		nav.byPre = append(nav.byPre, s)
		for _, c := range img.recs[s].children {
			walk(c)
		}
		nav.subEnd[s] = uint16(len(nav.byPre))
	}
	for i := 0; i < n; i++ {
		if r := &img.recs[i]; !r.dead && r.parent == noParent {
			walk(uint16(i))
		}
	}

	// Distinct tags (non-element records land in the NoTag bucket, exactly
	// the field Matches inspects on them).
	tags := make([]xmltree.TagID, 0, 16)
	for p := range nav.byPre {
		r := &img.recs[nav.byPre[p]]
		if r.kind.IsProxy() {
			continue
		}
		tags = append(tags, r.tag)
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
	dst := 0
	for i, t := range tags {
		if i == 0 || t != tags[dst-1] {
			tags[dst] = t
			dst++
		}
	}
	nav.tags = tags[:dst]
	nav.tagCnt = make([]int32, len(nav.tags))

	// One backing allocation for every bitset.
	w := nav.words
	backing := make([]uint64, (len(nav.tags)+6)*w)
	cut := func() []uint64 { b := backing[:w:w]; backing = backing[w:]; return b }
	nav.core, nav.elem, nav.text = cut(), cut(), cut()
	nav.comment, nav.pi, nav.proxy = cut(), cut(), cut()
	nav.tagBits = make([][]uint64, len(nav.tags))
	for i := range nav.tagBits {
		nav.tagBits[i] = cut()
	}

	for p := range nav.byPre {
		pos := uint16(p)
		r := &img.recs[nav.byPre[p]]
		switch r.kind {
		case RecProxyChild:
			setBit(nav.proxy, pos)
			nav.proxyChildCount++
			continue
		case RecProxyParent:
			setBit(nav.proxy, pos)
			continue
		case RecElem:
			setBit(nav.elem, pos)
			nav.elemCount++
		case RecText:
			setBit(nav.text, pos)
			nav.textCount++
		case RecComment:
			setBit(nav.comment, pos)
			nav.commentCount++
		case RecPI:
			setBit(nav.pi, pos)
			nav.piCount++
		}
		setBit(nav.core, pos)
		if i := nav.tagIndex(r.tag); i >= 0 {
			setBit(nav.tagBits[i], pos)
			nav.tagCnt[i]++
		}
	}
	return nav
}

// --- binary encoding -------------------------------------------------------
//
// Page layout:
//
//	[0:2)  numSlots (uint16)
//	[2:4)  free-space offset (uint16)
//	[4:…)  record data, append-only
//	[cap-2*numSlots : cap) slot table, slot i at cap-2*(i+1), value = record
//	                        offset
//
// Record encoding: kind (1 byte), parent slot + 1 as uvarint (0 = none),
// then kind-specific payload (see encodeRec).

const pageHeaderSize = 4

// pageBuilder assembles a page image for writing.
type pageBuilder struct {
	cap   int
	data  []byte
	slots []uint16
}

func newPageBuilder(pageSize int) *pageBuilder {
	// The builder fills the usable region; the checksum trailer is stamped
	// by writePage when the finished payload goes to the device.
	b := &pageBuilder{cap: usable(pageSize), data: make([]byte, pageHeaderSize, pageSize)}
	return b
}

// used returns consumed bytes including header and slot table.
func (b *pageBuilder) used() int { return len(b.data) + 2*len(b.slots) }

// free returns remaining bytes.
func (b *pageBuilder) free() int { return b.cap - b.used() }

// add appends an encoded record, returning its slot. It panics if the
// record does not fit; callers check sizes via encodedSize first.
func (b *pageBuilder) add(encoded []byte) uint16 {
	if len(encoded)+2 > b.free() {
		panic("storage: record does not fit in page")
	}
	off := len(b.data)
	b.data = append(b.data, encoded...)
	b.slots = append(b.slots, uint16(off))
	return uint16(len(b.slots) - 1)
}

// finish serializes the page into a buffer of pageSize bytes.
func (b *pageBuilder) finish() []byte {
	out := make([]byte, b.cap)
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(b.slots)))
	binary.LittleEndian.PutUint16(out[2:4], uint16(len(b.data)))
	copy(out[pageHeaderSize:], b.data[pageHeaderSize:])
	for i, off := range b.slots {
		binary.LittleEndian.PutUint16(out[b.cap-2*(i+1):], off)
	}
	return out
}

// appendUvarint appends v in LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeRec serializes r (children are not stored; they are derived from
// parent pointers at decode time, which keeps record sizes fixed once
// written).
func encodeRec(r *rec) []byte {
	return appendRec(make([]byte, 0, encodedSize(r)), r)
}

// appendRec appends r's serialized form to out and returns the extended
// slice; callers with a pre-sized destination (the page rewrite path)
// encode without a per-record allocation.
func appendRec(out []byte, r *rec) []byte {
	out = append(out, byte(r.kind))
	out = appendUvarint(out, uint64(r.parent+1))
	switch r.kind {
	case RecDoc:
		// Nothing further.
	case RecElem:
		out = appendUvarint(out, uint64(r.tag))
		out = appendBytes(out, r.ord)
		out = appendUvarint(out, uint64(len(r.attrs)))
		for _, a := range r.attrs {
			out = appendUvarint(out, uint64(a.tag))
			out = appendString(out, a.val)
		}
	case RecText, RecComment, RecPI:
		out = appendBytes(out, r.ord)
		out = appendString(out, r.text)
	case RecProxyChild:
		// The ord key of the far fragment's first node positions the
		// proxy within its parent's child list, so document order
		// survives updates that insert siblings out of slot order.
		out = appendBytes(out, r.ord)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(r.target))
		out = append(out, buf[:]...)
	case RecProxyParent:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(r.target))
		out = append(out, buf[:]...)
	}
	return out
}

// encodedSize returns the exact byte size encodeRec will produce.
func encodedSize(r *rec) int {
	n := 1 + uvarintLen(uint64(r.parent+1))
	switch r.kind {
	case RecDoc:
	case RecElem:
		n += uvarintLen(uint64(r.tag))
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += uvarintLen(uint64(len(r.attrs)))
		for _, a := range r.attrs {
			n += uvarintLen(uint64(a.tag))
			n += uvarintLen(uint64(len(a.val))) + len(a.val)
		}
	case RecText, RecComment, RecPI:
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += uvarintLen(uint64(len(r.text))) + len(r.text)
	case RecProxyChild:
		n += uvarintLen(uint64(len(r.ord))) + len(r.ord)
		n += 8
	case RecProxyParent:
		n += 8
	}
	return n
}

// corruptError describes a malformed page.
type corruptError struct {
	page vdisk.PageID
	msg  string
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("storage: page %d corrupt: %s", e.page, e.msg)
}

// decodePage parses raw page bytes into a pageImage. The slot table sits at
// the end of the usable region; the trailing checksum bytes (verified by the
// buffer pool before raw reaches us) are not part of the record layout.
//
// Decoding is slab-allocated: one immutable string copy of the page backs
// every text and attribute value, one byte slab every ord key, and one
// uint16 slab every child list, so the per-record cost is a few appends
// into pre-sized arrays instead of hundreds of small heap objects. raw
// itself aliases a buffer frame that is recycled on eviction, so no decoded
// field may point into it.
func decodePage(page vdisk.PageID, raw []byte, pageSize int) (*pageImage, error) {
	cap := usable(pageSize)
	if len(raw) < pageHeaderSize {
		return nil, &corruptError{page, "short page"}
	}
	n := int(binary.LittleEndian.Uint16(raw[0:2]))
	if cap-2*n < pageHeaderSize {
		return nil, &corruptError{page, "slot table overlaps header"}
	}
	img := &pageImage{page: page, recs: make([]rec, n)}
	pd := pageDecoder{
		raw: raw,
		str: string(raw),
		// Ord keys are substrings of the page, so their total length can
		// never exceed it: the slab never regrows and every key aliases it.
		ords: make([]byte, 0, len(raw)),
	}
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint16(raw[cap-2*(i+1):]))
		if off == deadSlotOff {
			img.recs[i].dead = true
			continue
		}
		if off < pageHeaderSize || off >= cap {
			return nil, &corruptError{page, fmt.Sprintf("slot %d offset %d out of range", i, off)}
		}
		if err := pd.decodeRec(&img.recs[i], off); err != nil {
			return nil, &corruptError{page, fmt.Sprintf("slot %d: %v", i, err)}
		}
	}
	// Derive children lists and the border index, then order siblings by
	// their document-order keys: the initial bulk load allocates slots in
	// DFS order, but updates may insert out of slot order. Child lists are
	// carved from one slab, sized by a counting pass.
	nkids, nborders := 0, 0
	for i := 0; i < n; i++ {
		r := &img.recs[i]
		if r.dead {
			continue
		}
		if r.parent != noParent {
			if r.parent < 0 || r.parent >= n || img.recs[r.parent].dead {
				return nil, &corruptError{page, fmt.Sprintf("slot %d: bad parent %d", i, r.parent)}
			}
			nkids++
		}
		if r.kind.IsProxy() {
			nborders++
		}
	}
	if nkids > 0 {
		counts := make([]uint16, n)
		for i := 0; i < n; i++ {
			if r := &img.recs[i]; !r.dead && r.parent != noParent {
				counts[r.parent]++
			}
		}
		kidSlab := make([]uint16, nkids)
		pos := 0
		for i := 0; i < n; i++ {
			if c := int(counts[i]); c > 0 {
				img.recs[i].children = kidSlab[pos : pos : pos+c]
				pos += c
			}
		}
		for i := 0; i < n; i++ {
			if r := &img.recs[i]; !r.dead && r.parent != noParent {
				p := &img.recs[r.parent]
				p.children = append(p.children, uint16(i))
			}
		}
	}
	if nborders > 0 {
		img.borders = make([]uint16, 0, nborders)
		for i := 0; i < n; i++ {
			if r := &img.recs[i]; !r.dead && r.kind.IsProxy() {
				img.borders = append(img.borders, uint16(i))
			}
		}
	}
	for i := 0; i < n; i++ {
		sortKidsByOrd(img.recs, img.recs[i].children)
	}
	if len(img.borders) > 0 {
		// Materialized once here so BordersOf can hand out a shared slice
		// instead of allocating per call.
		img.borderIDs = make([]NodeID, len(img.borders))
		for i, slot := range img.borders {
			img.borderIDs[i] = MakeNodeID(page, slot)
		}
	}
	img.nav = buildPageNav(img)
	return img, nil
}

// encodePageImage serializes live records back to a page payload (the
// usable region; writePage adds the checksum trailer), preserving slot
// numbers (NodeIDs embed them) and tombstoning dead slots. Trailing dead
// slots are truncated so their numbers become reusable.
func encodePageImage(img *pageImage, pageSize int) ([]byte, error) {
	n := len(img.recs)
	for n > 0 && img.recs[n-1].dead {
		n--
	}
	cap := usable(pageSize)
	out := make([]byte, cap)
	dataOff := pageHeaderSize
	for i := 0; i < n; i++ {
		slotPos := cap - 2*(i+1)
		if img.recs[i].dead {
			binary.LittleEndian.PutUint16(out[slotPos:], deadSlotOff)
			continue
		}
		// Size check before encoding: appendRec writes straight into out,
		// so an overflowing record must never start (it would clobber slot
		// entries already written at the top of the region).
		sz := encodedSize(&img.recs[i])
		if dataOff+sz > cap-2*n {
			return nil, &corruptError{img.page, "page overflow during rewrite"}
		}
		appendRec(out[dataOff:dataOff], &img.recs[i])
		binary.LittleEndian.PutUint16(out[slotPos:], uint16(dataOff))
		dataOff += sz
	}
	binary.LittleEndian.PutUint16(out[0:2], uint16(n))
	binary.LittleEndian.PutUint16(out[2:4], uint16(dataOff))
	return out, nil
}

// pageUsage returns the bytes consumed by live records plus slot table and
// header, i.e. the fit check for in-page inserts.
func pageUsage(img *pageImage) int {
	n := len(img.recs)
	for n > 0 && img.recs[n-1].dead {
		n--
	}
	used := pageHeaderSize + 2*n
	for i := 0; i < n; i++ {
		if !img.recs[i].dead {
			used += encodedSize(&img.recs[i])
		}
	}
	return used
}

type decodeCursor struct {
	b []byte
	i int
}

func (d *decodeCursor) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for ; d.i < len(d.b); d.i++ {
		c := d.b[d.i]
		if c < 0x80 {
			if shift > 63 {
				return 0, fmt.Errorf("uvarint overflow")
			}
			d.i++
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("uvarint overflow")
		}
	}
	return 0, fmt.Errorf("truncated uvarint")
}

func (d *decodeCursor) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if d.i+int(n) > len(d.b) {
		return nil, fmt.Errorf("truncated bytes field")
	}
	out := d.b[d.i : d.i+int(n)]
	d.i += int(n)
	return out, nil
}

// span reads a length-prefixed bytes field and returns its [start, end)
// indexes within the cursor's buffer instead of the bytes themselves, so
// the caller can alias a stable copy of the same buffer.
func (d *decodeCursor) span() (int, int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if d.i+int(n) > len(d.b) {
		return 0, 0, fmt.Errorf("truncated bytes field")
	}
	s := d.i
	d.i += int(n)
	return s, d.i, nil
}

// pageDecoder carries the slabs one decodePage call shares across all its
// records: str is an immutable copy of the page that every string field
// aliases, ords collects ord key copies, attrs collects attribute records.
type pageDecoder struct {
	raw   []byte
	str   string
	ords  []byte
	attrs []attrRec
}

// ordKey copies b into the ord slab and returns the slab-backed key. The
// slab is pre-sized to the page length so it never regrows.
func (pd *pageDecoder) ordKey(s, e int) ordpath.Key {
	o := len(pd.ords)
	pd.ords = append(pd.ords, pd.raw[s:e]...)
	return ordpath.Key(pd.ords[o:len(pd.ords):len(pd.ords)])
}

func (pd *pageDecoder) decodeRec(r *rec, off int) error {
	raw := pd.raw
	if off >= len(raw) {
		return fmt.Errorf("empty record")
	}
	d := &decodeCursor{b: raw, i: off + 1}
	r.kind = RecKind(raw[off])
	r.tag = xmltree.NoTag
	p, err := d.uvarint()
	if err != nil {
		return err
	}
	r.parent = int(p) - 1
	switch r.kind {
	case RecDoc:
	case RecElem:
		tag, err := d.uvarint()
		if err != nil {
			return err
		}
		r.tag = xmltree.TagID(tag)
		s, e, err := d.span()
		if err != nil {
			return err
		}
		r.ord = pd.ordKey(s, e)
		na, err := d.uvarint()
		if err != nil {
			return err
		}
		if na > 0 {
			start := len(pd.attrs)
			for i := 0; i < int(na); i++ {
				at, err := d.uvarint()
				if err != nil {
					return err
				}
				s, e, err := d.span()
				if err != nil {
					return err
				}
				pd.attrs = append(pd.attrs, attrRec{tag: xmltree.TagID(at), val: pd.str[s:e]})
			}
			r.attrs = pd.attrs[start:len(pd.attrs):len(pd.attrs)]
		}
	case RecText, RecComment, RecPI:
		s, e, err := d.span()
		if err != nil {
			return err
		}
		r.ord = pd.ordKey(s, e)
		s, e, err = d.span()
		if err != nil {
			return err
		}
		r.text = pd.str[s:e]
	case RecProxyChild:
		s, e, err := d.span()
		if err != nil {
			return err
		}
		r.ord = pd.ordKey(s, e)
		if d.i+8 > len(raw) {
			return fmt.Errorf("truncated proxy target")
		}
		r.target = NodeID(binary.LittleEndian.Uint64(raw[d.i:]))
	case RecProxyParent:
		if d.i+8 > len(raw) {
			return fmt.Errorf("truncated proxy target")
		}
		r.target = NodeID(binary.LittleEndian.Uint64(raw[d.i:]))
	default:
		return fmt.Errorf("unknown record kind %d", raw[off])
	}
	return nil
}

// sortKidsByOrd stably orders one child list by document-order key. Bulk
// load emits children in DFS order, so the list is almost always already
// sorted and the insertion sort runs in linear time; unlike sort.SliceStable
// it allocates nothing (no reflection-based swapper).
func sortKidsByOrd(recs []rec, kids []uint16) {
	for i := 1; i < len(kids); i++ {
		k := kids[i]
		ord := recs[k].ord
		j := i - 1
		for j >= 0 && ordpath.Compare(recs[kids[j]].ord, ord) > 0 {
			kids[j+1] = kids[j]
			j--
		}
		kids[j+1] = k
	}
}
