// Package shard scales the single-volume engine out: N fully independent
// pathdb volumes (each with its own vdisk clock domain, buffer pool,
// engine, transaction manager and plan chooser), a consistent-hash ring
// assigning entity collections to volumes deterministically, and a
// scatter-gather coordinator that fans queries across the volumes and
// merges counts and nodes in document order (Cluster). The split model —
// replicated container spine, partitioned entity collections — lives in
// the pathdb facade (ShardSet); this package routes over it.
package shard

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultReplicas is the number of virtual nodes each shard contributes to
// the ring. More vnodes smooth the key distribution (the skew bound in the
// tests relies on it) at a small fixed setup cost.
const DefaultReplicas = 256

type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over n shards. Placement is a pure
// function of (n, replicas, key) — two processes building a ring with the
// same parameters agree on every key, which is what makes placement stable
// across restarts without any persisted routing table.
//
// Shards can be marked degraded; Place keeps returning the true owner
// (reads still try the shard and let the fault plane answer), while
// PlaceWrite walks clockwise past degraded shards so new writes land on
// healthy ones without disturbing the routing of any other key.
type Ring struct {
	n        int
	replicas int
	points   []ringPoint

	mu       sync.RWMutex
	degraded []bool
}

// NewRing builds a ring over n shards with the given virtual-node count
// per shard (DefaultReplicas when replicas <= 0).
func NewRing(n, replicas int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("shard: ring needs n >= 1, got %d", n))
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		n:        n,
		replicas: replicas,
		points:   make([]ringPoint, 0, n*replicas),
		degraded: make([]bool, n),
	}
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	// Deterministic order even under (vanishingly unlikely) hash ties.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.n }

// Place returns the owning shard for key: the shard of the first ring
// point at or clockwise after the key's hash. Degradation does not change
// the answer — ownership is stable.
func (r *Ring) Place(key string) int {
	return r.points[r.successor(hash64(key))].shard
}

// PlaceWrite returns the first healthy shard at or clockwise after the
// key's point, so writes route around degraded shards while every other
// key keeps its owner. With all shards degraded it falls back to the true
// owner.
func (r *Ring) PlaceWrite(key string) int {
	i := r.successor(hash64(key))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for probed := 0; probed < len(r.points); probed++ {
		p := r.points[(i+probed)%len(r.points)]
		if !r.degraded[p.shard] {
			return p.shard
		}
	}
	return r.points[i].shard
}

// successor returns the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// SetDegraded marks shard s degraded (or healthy again with v=false).
func (r *Ring) SetDegraded(s int, v bool) {
	r.mu.Lock()
	r.degraded[s] = v
	r.mu.Unlock()
}

// IsDegraded reports whether shard s is currently marked degraded.
func (r *Ring) IsDegraded(s int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.degraded[s]
}

// Healthy returns the shards not currently marked degraded, ascending.
func (r *Ring) Healthy() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, r.n)
	for s := 0; s < r.n; s++ {
		if !r.degraded[s] {
			out = append(out, s)
		}
	}
	return out
}

// hash64 is FNV-64a with a splitmix64 finisher. FNV alone clusters on the
// short, prefix-similar placement keys the splitter produces; the finisher
// avalanches the low bits so vnode points and keys spread uniformly.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
