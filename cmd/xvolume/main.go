// Command xvolume inspects a stored volume: physical layout, record
// population, per-tag footprints (the statistics the cost-based chooser
// runs on) and page-utilisation histogram.
//
// Usage:
//
//	xvolume -xml doc.xml [-layout shuffled] [-tags] [-util]
//	xvolume -xmark 1 -scale 0.05 -tags
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pathdb/internal/stats"
	"pathdb/internal/storage"
	"pathdb/internal/vdisk"
	"pathdb/internal/xmark"
	"pathdb/internal/xmlparse"
	"pathdb/internal/xmltree"
)

func main() {
	xmlFile := flag.String("xml", "", "XML document to load")
	xmarkSF := flag.Float64("xmark", 0, "generate an XMark document with this scale factor instead")
	seed := flag.Uint64("seed", 42, "seed")
	scale := flag.Float64("scale", 0.1, "entity scale for -xmark")
	layoutName := flag.String("layout", "natural", "physical layout: natural, contiguous, shuffled, reverse")
	pageSize := flag.Int("pagesize", 8192, "page size in bytes")
	tags := flag.Bool("tags", false, "print per-tag footprints")
	util := flag.Bool("util", false, "print the page-utilisation histogram")
	flag.Parse()

	layout, ok := map[string]storage.Layout{
		"natural": storage.LayoutNatural, "contiguous": storage.LayoutContiguous,
		"shuffled": storage.LayoutShuffled, "reverse": storage.LayoutReverse,
	}[*layoutName]
	if !ok {
		fail("unknown layout %q", *layoutName)
	}

	dict := xmltree.NewDictionary()
	var doc *xmltree.Node
	switch {
	case *xmlFile != "":
		data, err := os.ReadFile(*xmlFile)
		if err != nil {
			fail("%v", err)
		}
		doc, err = xmlparse.Parse(dict, data)
		if err != nil {
			fail("%v", err)
		}
	case *xmarkSF > 0:
		doc = xmark.Generate(dict, xmark.Config{ScaleFactor: *xmarkSF, Seed: *seed, EntityScale: *scale})
	default:
		fail("need -xml or -xmark")
	}

	disk := vdisk.New(vdisk.DefaultCostModel(), stats.NewLedger(), *pageSize)
	st, err := storage.Import(disk, dict, doc, storage.ImportOptions{
		PageSize: *pageSize, Layout: layout, Seed: *seed,
	})
	if err != nil {
		fail("%v", err)
	}

	vs := st.Stats()
	fmt.Printf("volume: %d data pages (%s layout, %d B pages)\n", vs.DataPages, layout, *pageSize)
	fmt.Printf("records: %d total, %d core nodes, %d border nodes (%d proxy pairs)\n",
		vs.Records, vs.CoreNodes, vs.BorderNodes, vs.BorderNodes/2)
	fmt.Printf("payload: %d bytes used, %.1f%% average page utilisation\n",
		vs.UsedBytes, 100*float64(vs.UsedBytes)/float64(vs.DataPages**pageSize))
	fmt.Printf("dictionary: %d distinct tags\n", dict.Len())

	if *tags {
		ds := st.CollectDocStats()
		type row struct {
			name string
			ts   storage.TagStats
		}
		var rows []row
		for tag, ts := range ds.Tags {
			rows = append(rows, row{dict.Name(tag), ts})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].ts.Count > rows[j].ts.Count })
		fmt.Printf("\n%-20s %10s %10s %14s\n", "tag", "count", "pages", "subtree-pages")
		for _, r := range rows {
			fmt.Printf("%-20s %10d %10d %14d\n", r.name, r.ts.Count, r.ts.Pages, r.ts.SubtreePages)
		}
	}

	if *util {
		hist := st.PageUtilization(10)
		fmt.Printf("\npage utilisation histogram (%d buckets):\n", len(hist))
		max := 1
		for _, c := range hist {
			if c > max {
				max = c
			}
		}
		for i, c := range hist {
			bar := ""
			for j := 0; j < 40*c/max; j++ {
				bar += "#"
			}
			fmt.Printf("%3d-%3d%% %6d %s\n", i*10, (i+1)*10, c, bar)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xvolume: "+format+"\n", args...)
	os.Exit(1)
}
