package xmltree

import (
	"testing"
	"testing/quick"

	"pathdb/internal/rng"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("site")
	b := d.Intern("item")
	a2 := d.Intern("site")
	if a != a2 {
		t.Fatalf("re-interning gave different ids: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if d.Name(a) != "site" || d.Name(b) != "item" {
		t.Fatal("Name round trip failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	d.Intern("a")
	if _, ok := d.Lookup("a"); !ok {
		t.Fatal("Lookup of interned name failed")
	}
	if id, ok := d.Lookup("missing"); ok || id != NoTag {
		t.Fatal("Lookup of missing name should fail with NoTag")
	}
	if d.Name(NoTag) != "" {
		t.Fatal("Name(NoTag) should be empty")
	}
}

func buildSample(t *testing.T) (*Dictionary, *Node) {
	t.Helper()
	d := NewDictionary()
	b := NewBuilder(d)
	b.Begin("site").
		Begin("regions").
		Begin("africa").
		Begin("item").Attr("id", "item0").Leaf("name", "widget").End().
		End().
		Begin("asia").
		Begin("item").Attr("id", "item1").Leaf("name", "gadget").End().
		Begin("item").Attr("id", "item2").Leaf("name", "sprocket").End().
		End().
		End().
		End()
	return d, b.Doc()
}

func TestBuilderStructure(t *testing.T) {
	d, doc := buildSample(t)
	if doc.Kind != Document {
		t.Fatal("root is not a document node")
	}
	if len(doc.Children) != 1 {
		t.Fatalf("document has %d children, want 1", len(doc.Children))
	}
	site := doc.Children[0]
	if d.Name(site.Tag) != "site" {
		t.Fatalf("root element is %q", d.Name(site.Tag))
	}
	item := d.Intern("item")
	if got := doc.CountTag(item); got != 3 {
		t.Fatalf("CountTag(item) = %d, want 3", got)
	}
}

func TestBuilderUnbalancedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from unbalanced builder")
		}
	}()
	b := NewBuilder(NewDictionary())
	b.Begin("open")
	b.Doc()
}

func TestEndAtRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(NewDictionary()).End()
}

func TestParentLinks(t *testing.T) {
	_, doc := buildSample(t)
	doc.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %v has wrong parent", c)
			}
		}
		for _, a := range n.Attrs {
			if a.Parent != n {
				t.Fatal("attribute has wrong parent")
			}
		}
		return true
	})
}

func TestRoot(t *testing.T) {
	_, doc := buildSample(t)
	var leaf *Node
	doc.Walk(func(n *Node) bool {
		if len(n.Children) == 0 {
			leaf = n
		}
		return true
	})
	if leaf == nil || leaf.Root() != doc {
		t.Fatal("Root() did not reach the document")
	}
}

func TestWalkPruning(t *testing.T) {
	d, doc := buildSample(t)
	regions := d.Intern("regions")
	visited := 0
	doc.Walk(func(n *Node) bool {
		visited++
		return !(n.Kind == Element && n.Tag == regions) // prune below regions
	})
	// document, site, regions only.
	if visited != 3 {
		t.Fatalf("visited %d nodes, want 3", visited)
	}
}

func TestTextContent(t *testing.T) {
	d := NewDictionary()
	b := NewBuilder(d)
	b.Begin("p").Text("hello ").Begin("b").Text("bold").End().Text(" world").End()
	if got := b.Doc().TextContent(); got != "hello bold world" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestSizeCountsAttributes(t *testing.T) {
	_, doc := buildSample(t)
	// document + site + regions + africa + asia + 3 item + 3 name + 3 text + 3 attrs
	want := 1 + 1 + 1 + 2 + 3 + 3 + 3 + 3
	if got := doc.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
}

func TestEqualReflexiveAndDetectsDiffs(t *testing.T) {
	_, a := buildSample(t)
	_, b := buildSample(t)
	if !Equal(a, b) {
		t.Fatal("identically built trees not Equal")
	}
	b.Children[0].Children[0].Children[0].AppendChild(NewText("extra"))
	if Equal(a, b) {
		t.Fatal("Equal missed a structural difference")
	}
	if !Equal(nil, nil) {
		t.Fatal("Equal(nil,nil) should be true")
	}
	if Equal(a, nil) {
		t.Fatal("Equal(tree,nil) should be false")
	}
}

// randomTree builds a pseudo-random tree with n element nodes; used for
// property tests here and reused conceptually by storage round-trip tests.
func randomTree(r *rng.RNG, d *Dictionary, n int) *Node {
	doc := NewDocument()
	tags := []TagID{d.Intern("a"), d.Intern("b"), d.Intern("c"), d.Intern("d")}
	nodes := []*Node{doc.AppendChild(NewElement(tags[0]))}
	for i := 1; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		e := NewElement(tags[r.Intn(len(tags))])
		parent.AppendChild(e)
		if r.Bool(0.3) {
			e.AppendChild(NewText("t"))
		}
		nodes = append(nodes, e)
	}
	return doc
}

func TestRandomTreeInvariants(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%100) + 1
		d := NewDictionary()
		doc := randomTree(rng.New(seed), d, n)
		// Every node reachable by Walk has a correct parent pointer and the
		// element count matches n.
		elems := 0
		ok := true
		doc.Walk(func(m *Node) bool {
			if m.Kind == Element {
				elems++
			}
			for _, c := range m.Children {
				if c.Parent != m {
					ok = false
				}
			}
			return true
		})
		return ok && elems == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Document:  "document",
		Element:   "element",
		Text:      "text",
		Attribute: "attribute",
		Comment:   "comment",
		ProcInst:  "processing-instruction",
		Kind(99):  "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestBuilderDepth(t *testing.T) {
	b := NewBuilder(NewDictionary())
	if b.Depth() != 0 {
		t.Fatal("fresh builder depth != 0")
	}
	b.Begin("a").Begin("b")
	if b.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", b.Depth())
	}
	b.End().End()
	if b.Depth() != 0 {
		t.Fatal("depth after closing != 0")
	}
}
