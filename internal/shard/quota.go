package shard

import (
	"sort"
	"sync"
)

// QuotaConfig tunes per-tenant admission quotas at the router.
type QuotaConfig struct {
	// Capacity caps requests admitted concurrently across all tenants
	// (default 64, matching the engine's default queue depth).
	Capacity int
	// MaxTenantShare caps one tenant's concurrent admissions as a fraction
	// of Capacity (default 0.5). The cap is what keeps one hot tenant from
	// occupying the whole admission window: with the default, a second
	// tenant always finds at least half the capacity available.
	MaxTenantShare float64
}

func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.MaxTenantShare <= 0 || c.MaxTenantShare > 1 {
		c.MaxTenantShare = 0.5
	}
	return c
}

// Quotas is a per-tenant concurrent-admission limiter — the router-level
// generalization of the engine's single admission queue. Each tenant may
// hold at most perTenant slots of a shared capacity; Acquire beyond either
// limit is shed (the router maps that to 429/Retry-After, kind
// "overloaded").
type Quotas struct {
	capacity  int
	perTenant int

	mu      sync.Mutex
	total   int
	tenants map[string]*tenantState
}

type tenantState struct {
	inflight int
	admitted int64
	shed     int64
}

// TenantStat is a snapshot of one tenant's admission counters.
type TenantStat struct {
	Tenant   string
	InFlight int
	Admitted int64
	Shed     int64
}

// NewQuotas builds a limiter from cfg (zero values take defaults).
func NewQuotas(cfg QuotaConfig) *Quotas {
	cfg = cfg.withDefaults()
	per := int(float64(cfg.Capacity) * cfg.MaxTenantShare)
	if per < 1 {
		per = 1
	}
	return &Quotas{
		capacity:  cfg.Capacity,
		perTenant: per,
		tenants:   make(map[string]*tenantState),
	}
}

// PerTenant returns the per-tenant concurrent-admission cap.
func (q *Quotas) PerTenant() int { return q.perTenant }

// Acquire admits one request for tenant, or reports false when either the
// shared capacity or the tenant's share is exhausted. Every successful
// Acquire must be paired with Release.
func (q *Quotas) Acquire(tenant string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		q.tenants[tenant] = t
	}
	if q.total >= q.capacity || t.inflight >= q.perTenant {
		t.shed++
		return false
	}
	q.total++
	t.inflight++
	t.admitted++
	return true
}

// Release returns tenant's slot.
func (q *Quotas) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t := q.tenants[tenant]; t != nil && t.inflight > 0 {
		t.inflight--
		q.total--
	}
}

// Stats snapshots every tenant seen so far, sorted by tenant name for
// stable /metrics output.
func (q *Quotas) Stats() []TenantStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantStat, 0, len(q.tenants))
	for name, t := range q.tenants {
		out = append(out, TenantStat{
			Tenant:   name,
			InFlight: t.inflight,
			Admitted: t.admitted,
			Shed:     t.shed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
